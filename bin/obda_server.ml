(* The OBDA query server: a Service behind TCP and/or Unix-domain
   listeners.  SIGTERM / SIGINT trigger a graceful shutdown — listeners
   close, in-flight requests drain, and the drain count is reported —
   so process supervisors get clean restarts.

   With --data-dir the server is durable: session mutations are written
   to a checksummed WAL (fsync before acknowledge) with periodic
   snapshot compaction, and on startup the directory is recovered —
   snapshot plus surviving WAL tail — before any listener opens.
   --chaos additionally accepts the FAIL wire verb, letting a test
   harness arm named failpoints in the durable commit path; the
   OBDA_FAILPOINTS environment variable arms the same failpoints
   without any wire access. *)

open Cmdliner

let run unix_path tcp_port host workers queue timeout lru presto algorithm
    classify_jobs join_threshold slow_log data_dir snapshot_every snapshot_bytes
    group_commit chaos replica_of cluster_members advertise =
  if unix_path = None && tcp_port = None then begin
    prerr_endline "error: need at least one of --unix PATH / --tcp PORT";
    exit 2
  end;
  let cluster_members =
    match cluster_members with
    | None -> []
    | Some spec ->
      String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
  in
  let clustered = replica_of <> None || cluster_members <> [] in
  if clustered && data_dir = None then begin
    prerr_endline "error: --replica-of / --cluster require --data-dir";
    exit 2
  end;
  (match Durable.Failpoint.arm_from_env () with
   | Result.Ok () -> ()
   | Result.Error e ->
     Printf.eprintf "error: OBDA_FAILPOINTS: %s\n" e;
     exit 2);
  let algorithm =
    match algorithm with
    | None -> None
    | Some s ->
      (match Graphlib.Closure.algorithm_of_string s with
       | Some a -> Some a
       | None ->
         Printf.eprintf
           "error: unknown algorithm %s (use dfs, warshall, scc, par-dfs or \
            par-scc)\n"
           s;
         exit 2)
  in
  (* block before spawning anything: domains and threads inherit the
     mask, making the wait_signal below the one delivery point *)
  ignore (Unix.sigprocmask Unix.SIG_BLOCK [ Sys.sigterm; Sys.sigint ]);
  (* every service-level knob funnels into one Config record here — the
     only place flags and Service wiring meet *)
  let service_config =
    {
      Server.Service.Config.mode =
        (if presto then Obda.Engine.Presto else Obda.Engine.Perfect_ref);
      lru;
      algorithm;
      jobs = classify_jobs;
      join_threshold;
      slow_log_s = (match slow_log with Some s -> s | None -> infinity);
      chaos;
    }
  in
  let service = Server.Service.create ~config:service_config () in
  let snapshot_exec = ref None in
  let node = ref None in
  Option.iter
    (fun dir ->
      (try
         if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
       with Unix.Unix_error (e, _, _) ->
         Printf.eprintf "error: --data-dir %s: %s\n" dir (Unix.error_message e);
         exit 2);
      match
        Durable.Store.open_dir
          ~registry:(Server.Service.registry service)
          ~group_commit ?snapshot_every ?snapshot_bytes dir
      with
      | Result.Error e ->
        Printf.eprintf "error: cannot recover %s: %s\n" dir e;
        exit 1
      | Result.Ok (store, r) ->
        (match Server.Service.restore service r.Durable.Store.mutations with
         | Result.Error e ->
           Printf.eprintf "error: replay of %s failed: %s\n" dir e;
           exit 1
         | Result.Ok replayed ->
           Server.Service.attach_store service store;
           (* snapshot compaction runs off the request path, on its own
              single-worker executor: a byte- or count-triggered
              snapshot no longer stalls the mutation that tripped it *)
           let exec =
             Parallel.Executor.create
               ~registry:(Server.Service.registry service) ~workers:1
               ~queue_capacity:1 ()
           in
           snapshot_exec := Some exec;
           Server.Service.set_snapshot_executor service exec;
           Printf.printf
             "recovered %s: %d mutation(s) (%d snapshot + %d wal), %d torn \
              byte(s) dropped, %.3fs%s\n%!"
             dir replayed r.Durable.Store.snapshot_records
             r.Durable.Store.wal_records r.Durable.Store.truncated_bytes
             r.Durable.Store.seconds
             (if group_commit then " [group commit]" else "");
           if clustered then begin
             (* the advertised endpoint defaults to the unix listener —
                it is what refusals and STATUS hand to failover clients *)
             let self =
               match advertise with
               | Some ep -> ep
               | None -> (
                 match unix_path with
                 | Some p -> "unix:" ^ p
                 | None -> "")
             in
             let role =
               match replica_of with
               | Some seed -> Cluster.Node.Replica_of seed
               | None -> Cluster.Node.Primary
             in
             let n =
               Cluster.Node.create
                 ~registry:(Server.Service.registry service) ~service ~store
                 ~endpoint:self ~members:cluster_members ~role ()
             in
             node := Some n;
             Printf.printf "cluster: %s, epoch %d, members [%s]\n%!"
               (match role with
                | Cluster.Node.Primary -> "primary"
                | Cluster.Node.Replica_of ep -> "replica of " ^ ep)
               (Cluster.Node.epoch n)
               (String.concat ", " cluster_members)
           end))
    data_dir;
  let config =
    {
      Server.Serve.default_config with
      workers;
      queue_capacity = queue;
      request_timeout_s = timeout;
    }
  in
  let repl_hooks = Option.map Cluster.Node.serve_hooks !node in
  let srv = Server.Serve.create ~config ?repl_hooks service in
  Option.iter
    (fun path ->
      ignore (Server.Serve.listen_unix srv path);
      Printf.printf "listening on unix:%s\n%!" path)
    unix_path;
  Option.iter
    (fun port ->
      let bound = Server.Serve.listen_tcp srv ~host ~port in
      Printf.printf "listening on tcp:%s:%d\n%!" host bound)
    tcp_port;
  Printf.printf "workers=%d queue=%d timeout=%.1fs lru=%d mode=%s proto=v%d\n%!"
    workers queue timeout lru
    (Obda.Engine.string_of_mode service_config.Server.Service.Config.mode)
    Server.Wire.max_version;
  Server.Serve.start srv;
  (* all worker domains / handler threads inherit the blocked mask set
     below, so TERM and INT are delivered to exactly this sigwait *)
  ignore (Thread.wait_signal [ Sys.sigterm; Sys.sigint ]);
  print_endline "shutting down: draining in-flight requests...";
  (* sever replication first: a replica stops applying, a primary stops
     shipping, before the listeners drain *)
  Option.iter Cluster.Node.stop !node;
  (* retire the snapshot executor first: any in-flight compaction
     finishes while the store is still open; snapshots requested during
     the request drain are shed (the next boot compacts instead) *)
  (match !snapshot_exec with
   | Some exec ->
     ignore (Parallel.Executor.close exec);
     Parallel.Executor.resume exec;
     Parallel.Executor.drain exec;
     Parallel.Executor.shutdown exec
   | None -> ());
  let in_flight = Server.Serve.stop srv in
  Printf.printf "drained %d in-flight request(s); bye\n%!" in_flight;
  Option.iter
    (fun path -> try Unix.unlink path with Unix.Unix_error _ -> ())
    unix_path

let () =
  let unix_arg =
    Arg.(value & opt (some string) None
         & info [ "unix" ] ~docv:"PATH" ~doc:"Listen on a Unix-domain socket.")
  in
  let tcp_arg =
    Arg.(value & opt (some int) None
         & info [ "tcp" ] ~docv:"PORT" ~doc:"Listen on a TCP port (0 = ephemeral).")
  in
  let host_arg =
    Arg.(value & opt string "127.0.0.1"
         & info [ "host" ] ~docv:"HOST" ~doc:"TCP bind address.")
  in
  let workers_arg =
    Arg.(value & opt int 2
         & info [ "jobs"; "j" ] ~docv:"N" ~doc:"Executor worker domains.")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue" ] ~docv:"N"
             ~doc:"Admission queue bound; excess requests are answered BUSY.")
  in
  let timeout_arg =
    Arg.(value & opt float 30.0
         & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Per-request timeout.")
  in
  let lru_arg =
    Arg.(value & opt int 256
         & info [ "lru" ] ~docv:"N" ~doc:"LRU capacity of the service caches.")
  in
  let presto_arg =
    Arg.(value & flag
         & info [ "presto" ] ~doc:"Use the classification-aided rewriter.")
  in
  let algorithm_arg =
    Arg.(value & opt (some string) None
         & info [ "algorithm" ] ~docv:"ALGO"
             ~doc:"Transitive-closure algorithm for CLASSIFY: dfs, warshall, \
                   scc, par-dfs or par-scc.")
  in
  let classify_jobs_arg =
    Arg.(value & opt (some int) None
         & info [ "classify-jobs" ] ~docv:"N"
             ~doc:"Domain-pool width for the parallel classification \
                   algorithms.")
  in
  let join_threshold_arg =
    Arg.(value & opt (some int) None
         & info [ "join-threshold" ] ~docv:"N"
             ~doc:"Binding-count pivot between nested-loop and hash joins in \
                   the query executor (default: the executor's built-in).")
  in
  let slow_log_arg =
    Arg.(value & opt (some float) None
         & info [ "slow-log" ] ~docv:"SECONDS"
             ~doc:"Warn-log any operation or trace span slower than this \
                   threshold (default: disabled).")
  in
  let data_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "data-dir" ] ~docv:"DIR"
             ~doc:"Durable session store: WAL + snapshots live here; on \
                   startup the directory is recovered before listening. \
                   Without it the server is in-memory only.")
  in
  let snapshot_every_arg =
    Arg.(value & opt (some int) None
         & info [ "snapshot-every" ] ~docv:"N"
             ~doc:"Write a compacting snapshot after every N WAL appends \
                   (requires --data-dir).")
  in
  let snapshot_bytes_arg =
    Arg.(value & opt (some int) None
         & info [ "snapshot-bytes" ] ~docv:"BYTES"
             ~doc:"Write a compacting snapshot once this many WAL bytes have \
                   accumulated since the last one (requires --data-dir; \
                   composes with --snapshot-every).")
  in
  let group_commit_arg =
    Arg.(value
         & vflag false
             [
               ( true,
                 info [ "group-commit" ]
                   ~doc:"Batch concurrent WAL appends into one fsync \
                         (higher write throughput; durability unchanged — \
                         a mutation is still acknowledged only after its \
                         batch is on disk)." );
               ( false,
                 info [ "no-group-commit" ]
                   ~doc:"Fsync every mutation individually (the default)." );
             ])
  in
  let chaos_arg =
    Arg.(value & flag
         & info [ "chaos" ]
             ~doc:"Accept the FAIL wire verb for arming failpoints. Test \
                   harnesses only — never in production.")
  in
  let replica_of_arg =
    Arg.(value & opt (some string) None
         & info [ "replica-of" ] ~docv:"ENDPOINT"
             ~doc:"Start as a read-only replica following this primary \
                   (requires --data-dir). The node subscribes to the \
                   primary's WAL stream, applies every record through the \
                   recovery path, and refuses mutations.")
  in
  let cluster_arg =
    Arg.(value & opt (some string) None
         & info [ "cluster" ] ~docv:"EP1,EP2,..."
             ~doc:"Comma-separated member endpoints of the replication \
                   cluster (requires --data-dir). A replica re-resolves its \
                   primary across these after a promotion; without \
                   --replica-of the node starts as the primary.")
  in
  let advertise_arg =
    Arg.(value & opt (some string) None
         & info [ "advertise" ] ~docv:"ENDPOINT"
             ~doc:"Endpoint this node advertises to peers and clients \
                   (default: unix:PATH of --unix).")
  in
  let info =
    Cmd.info "obda_server"
      ~doc:"Caching OBDA query server (LOAD/CLASSIFY/PREPARE/ASK/STATS wire protocol)."
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const run $ unix_arg $ tcp_arg $ host_arg $ workers_arg $ queue_arg
            $ timeout_arg $ lru_arg $ presto_arg $ algorithm_arg
            $ classify_jobs_arg $ join_threshold_arg $ slow_log_arg
            $ data_dir_arg $ snapshot_every_arg $ snapshot_bytes_arg
            $ group_commit_arg $ chaos_arg $ replica_of_arg $ cluster_arg
            $ advertise_arg)))
