(* Command-line front end for the OBDA toolkit.

   Subcommands mirror the Section-3 workflow:
     classify      graph-based classification (Phi_T + Omega_T)
     taxonomy      classification as an indented Hasse-diagram tree
     unsat         unsatisfiable predicates (computeUnsat)
     implies       logical implication queries
     rewrite       PerfectRef / Presto UCQ rewriting
     render        diagram export (DOT or SVG)
     modularize    horizontal / vertical modularization report
     generate      synthetic benchmark ontologies
     doc           automated documentation (Markdown / HTML)
     diff          syntactic + logical diff of two versions
     sql           rewriting + unfolding compiled to SQL text
     answer        certain answers over mapped relational data
     analyze       static mapping checks
     export-owl    OWL 2 QL functional-syntax export
     import-owl    OWL 2 QL functional-syntax import

   Ontologies are read in the ASCII DL-Lite syntax (see README). *)

open Cmdliner
open Dllite

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_tbox path =
  match Parser.tbox_of_string (read_file path) with
  | Ok t -> t
  | Error e ->
    Printf.eprintf "error: %s: %s\n" path e;
    exit 1

let tbox_arg =
  let doc = "Ontology file in the ASCII DL-Lite syntax." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"ONTOLOGY" ~doc)

(* ------------------------------ classify ----------------------------- *)

let classify_cmd =
  let run path show_equiv algorithm jobs =
    let tbox = load_tbox path in
    let algorithm =
      match Graphlib.Closure.algorithm_of_string algorithm with
      | Some a -> a
      | None ->
        Printf.eprintf
          "unknown algorithm %s (use dfs, warshall, scc, par-dfs or par-scc)\n"
          algorithm;
        exit 1
    in
    let t0 = Unix.gettimeofday () in
    let cls = Quonto.Classify.classify ~algorithm ?jobs tbox in
    let elapsed = Unix.gettimeofday () -. t0 in
    let subs = Quonto.Classify.name_level cls in
    List.iter
      (fun s -> Format.printf "%a@." Quonto.Classify.pp_name_subsumption s)
      subs;
    if show_equiv then begin
      Format.printf "@.equivalence classes:@.";
      List.iter
        (fun cls_names ->
          if List.length cls_names > 1 then
            Format.printf "  {%s}@." (String.concat ", " cls_names))
        (Quonto.Classify.equivalence_classes cls)
    end;
    Format.eprintf "%d subsumptions in %.3fs@." (List.length subs) elapsed
  in
  let equiv =
    Arg.(value & flag & info [ "equivalences" ] ~doc:"Also print equivalence classes.")
  in
  let algorithm =
    Arg.(value & opt string "scc"
         & info [ "algorithm" ]
             ~doc:"Transitive-closure algorithm: dfs, warshall, scc, par-dfs or \
                   par-scc.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs"; "j" ]
             ~doc:"Domain-pool width for the parallel algorithms (default: the \
                   host's recommended domain count).  The classification is \
                   identical at every job count.")
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify a DL-Lite ontology with the digraph method.")
    Term.(const run $ tbox_arg $ equiv $ algorithm $ jobs)

(* ------------------------------- unsat ------------------------------- *)

let unsat_cmd =
  let run path =
    let tbox = load_tbox path in
    let enc = Quonto.Encoding.build tbox in
    let unsat = Quonto.Unsat.compute enc in
    match Quonto.Unsat.unsat_exprs unsat with
    | [] -> print_endline "coherent: no unsatisfiable predicates"
    | exprs ->
      List.iter (fun e -> Format.printf "unsatisfiable: %s@." (Syntax.expr_to_string e)) exprs;
      exit 2
  in
  Cmd.v
    (Cmd.info "unsat"
       ~doc:"Run computeUnsat; exit 2 if the ontology has unsatisfiable predicates.")
    Term.(const run $ tbox_arg)

(* ------------------------------ implies ------------------------------ *)

let implies_cmd =
  let run path axiom_text on_demand =
    let tbox = load_tbox path in
    (* parse the query axiom in the context of the ontology's signature:
       prepend declarations so sorts resolve *)
    let s = Tbox.signature tbox in
    let decls =
      String.concat "\n"
        (List.map (Printf.sprintf "concept %s") (Signature.concepts s)
        @ List.map (Printf.sprintf "role %s") (Signature.roles s)
        @ List.map (Printf.sprintf "attr %s") (Signature.attributes s))
    in
    match Parser.tbox_of_string (decls ^ "\n" ^ axiom_text) with
    | Error e ->
      Printf.eprintf "query parse error: %s\n" e;
      exit 1
    | Ok query_tbox -> (
      match Tbox.axioms query_tbox with
      | [ ax ] ->
        let holds =
          if on_demand then
            Quonto.Implication.entails (Quonto.Implication.prepare tbox) ax
          else Quonto.Deductive.entails (Quonto.Deductive.compute tbox) ax
        in
        print_endline (if holds then "entailed" else "not entailed");
        if not holds then exit 3
      | _ ->
        prerr_endline "expected exactly one axiom";
        exit 1)
  in
  let axiom_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"AXIOM"
           ~doc:"Axiom in ASCII syntax, e.g. \"A [= exists p . B\".")
  in
  let on_demand =
    Arg.(value & flag
         & info [ "on-demand" ] ~doc:"Use the closure-free on-demand engine.")
  in
  Cmd.v
    (Cmd.info "implies" ~doc:"Decide whether the ontology entails an axiom.")
    Term.(const run $ tbox_arg $ axiom_arg $ on_demand)

(* ------------------------------ rewrite ------------------------------ *)

let rewrite_cmd =
  let run path query_text presto =
    let tbox = load_tbox path in
    match Obda.Qparse.parse_query ~signature:(Tbox.signature tbox) query_text with
    | exception Obda.Qparse.Parse_error e ->
      Printf.eprintf "query error: %s\n" e;
      exit 1
    | q ->
      let rewritten, stats =
        if presto then Obda.Rewrite.presto_ref tbox [ q ]
        else Obda.Rewrite.perfect_ref tbox [ q ]
      in
      List.iter (fun q' -> print_endline (Obda.Cq.to_string q')) rewritten;
      Format.eprintf "%d disjuncts (%d generated, %d rounds)@."
        stats.Obda.Rewrite.output_size stats.Obda.Rewrite.generated
        stats.Obda.Rewrite.iterations
  in
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Query, e.g. \"x <- worksFor(x, y)\".")
  in
  let presto =
    Arg.(value & flag & info [ "presto" ] ~doc:"Use the classification-aided rule base.")
  in
  Cmd.v
    (Cmd.info "rewrite" ~doc:"Compute the perfect UCQ rewriting of a query.")
    Term.(const run $ tbox_arg $ query_arg $ presto)

(* ------------------------------- render ------------------------------ *)

let render_cmd =
  let run path format output =
    let tbox = load_tbox path in
    let diagram = Graphical.Translate.of_tbox tbox in
    let contents =
      match format with
      | "dot" -> Graphical.Dot.render diagram
      | "svg" -> Graphical.Layout.to_svg diagram
      | other ->
        Printf.eprintf "unknown format %s (use dot or svg)\n" other;
        exit 1
    in
    match output with
    | None -> print_string contents
    | Some out ->
      let oc = open_out out in
      output_string oc contents;
      close_out oc
  in
  let format =
    Arg.(value & opt string "dot" & info [ "format"; "f" ] ~doc:"dot or svg.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "render" ~doc:"Render the ontology in the graphical language.")
    Term.(const run $ tbox_arg $ format $ output)

(* ----------------------------- modularize ---------------------------- *)

let modularize_cmd =
  let run path =
    let tbox = load_tbox path in
    Format.printf "== horizontal modules (connected components) ==@.";
    List.iter
      (fun m ->
        Format.printf "  %-16s %4d axioms  %4d concepts@." m.Graphical.Modular.name
          (Tbox.axiom_count m.Graphical.Modular.tbox)
          (Signature.concept_count (Tbox.signature m.Graphical.Modular.tbox)))
      (Graphical.Modular.horizontal tbox);
    Format.printf "== vertical views ==@.";
    List.iter
      (fun (name, view) ->
        Format.printf "  %-10s %4d axioms@." name (Tbox.axiom_count view))
      (Graphical.Modular.views tbox)
  in
  Cmd.v
    (Cmd.info "modularize" ~doc:"Report the 2-D modularization of the ontology.")
    Term.(const run $ tbox_arg)

(* ------------------------------ taxonomy ----------------------------- *)

let taxonomy_cmd =
  let run path sort =
    let tbox = load_tbox path in
    let cls = Quonto.Classify.classify tbox in
    let sort =
      match sort with
      | "concepts" -> Quonto.Taxonomy.Concepts
      | "roles" -> Quonto.Taxonomy.Roles
      | "attributes" -> Quonto.Taxonomy.Attributes
      | other ->
        Printf.eprintf "unknown sort %s (use concepts, roles or attributes)\n" other;
        exit 1
    in
    let taxonomy = Quonto.Taxonomy.build cls sort in
    Format.printf "%a" (fun fmt t -> Quonto.Taxonomy.pp fmt t) taxonomy
  in
  let sort =
    Arg.(value & opt string "concepts"
         & info [ "sort" ] ~doc:"concepts, roles or attributes.")
  in
  Cmd.v
    (Cmd.info "taxonomy" ~doc:"Print the classification as an indented taxonomy tree.")
    Term.(const run $ tbox_arg $ sort)

(* ------------------------------ generate ----------------------------- *)

let generate_cmd =
  let run label scale seed =
    match Ontgen.Profiles.by_label label with
    | None ->
      Printf.eprintf "unknown profile %s; known: %s\n" label
        (String.concat ", "
           (List.map (fun p -> p.Ontgen.Generator.label) Ontgen.Profiles.figure1));
      exit 1
    | Some profile ->
      let tbox =
        Ontgen.Generator.generate ~seed (Ontgen.Generator.scale scale profile)
      in
      (* print with declarations so the output reparses losslessly *)
      let s = Tbox.signature tbox in
      List.iter (Printf.printf "concept %s\n") (Signature.concepts s);
      List.iter (Printf.printf "role %s\n") (Signature.roles s);
      List.iter (Printf.printf "attr %s\n") (Signature.attributes s);
      List.iter
        (fun ax -> print_endline (Syntax.axiom_to_string ax))
        (Tbox.axioms tbox)
  in
  let label =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"PROFILE"
           ~doc:"Benchmark profile label, e.g. Galen.")
  in
  let scale =
    Arg.(value & opt float 0.05 & info [ "scale" ] ~doc:"Signature scale factor.")
  in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Generator seed.") in
  Cmd.v
    (Cmd.info "generate" ~doc:"Emit a synthetic benchmark ontology to stdout.")
    Term.(const run $ label $ scale $ seed)

(* -------------------------------- doc -------------------------------- *)

let doc_cmd =
  let run path format output =
    let tbox = load_tbox path in
    let document = Docgen.generate ~title:(Filename.basename path) tbox in
    let contents =
      match format with
      | "markdown" | "md" -> Docgen.to_markdown document
      | "html" -> Docgen.to_html document
      | other ->
        Printf.eprintf "unknown format %s (use markdown or html)\n" other;
        exit 1
    in
    match output with
    | None -> print_string contents
    | Some out ->
      let oc = open_out out in
      output_string oc contents;
      close_out oc
  in
  let format =
    Arg.(value & opt string "markdown" & info [ "format"; "f" ] ~doc:"markdown or html.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "doc" ~doc:"Generate ontology documentation (Section 8 automation).")
    Term.(const run $ tbox_arg $ format $ output)

(* -------------------------------- diff ------------------------------- *)

let diff_cmd =
  let run prev_path next_path =
    let prev = load_tbox prev_path and next = load_tbox next_path in
    let report = Evolution.diff ~prev ~next in
    Format.printf "%a" Evolution.pp report;
    if Evolution.is_conservative report then begin
      print_endline "conservative change";
      exit 0
    end
    else exit 4
  in
  let prev_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"PREV" ~doc:"Old version.")
  in
  let next_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"NEXT" ~doc:"New version.")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Logical diff of two ontology versions; exit 4 on semantic change.")
    Term.(const run $ prev_arg $ next_arg)

(* -------------------------------- sql -------------------------------- *)

let mappings_arg =
  Arg.(required & opt (some file) None
       & info [ "mappings"; "m" ] ~doc:"Mapping file (map HEAD <- ATOMS lines).")

let sql_cmd =
  let run path mappings_path query_text =
    let tbox = load_tbox path in
    let signature = Tbox.signature tbox in
    match
      let mappings = Obda.Qparse.parse_mappings ~signature (read_file mappings_path) in
      let q = Obda.Qparse.parse_query ~signature query_text in
      let rewritten, _ = Obda.Rewrite.perfect_ref tbox [ q ] in
      let unfolded = Obda.Mapping.unfold_ucq mappings rewritten in
      Obda.Sql.to_string (Obda.Sql.of_ucq unfolded)
    with
    | sql -> print_endline sql
    | exception Obda.Qparse.Parse_error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
  in
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY"
           ~doc:"Query, e.g. \"x <- Employee(x)\".")
  in
  Cmd.v
    (Cmd.info "sql"
       ~doc:"Rewrite, unfold and print the SQL for a query over the sources.")
    Term.(const run $ tbox_arg $ mappings_arg $ query_arg)

(* ------------------------------- answer ------------------------------ *)

let answer_cmd =
  let run path mappings_path data_path query_text =
    let tbox = load_tbox path in
    let signature = Tbox.signature tbox in
    match
      let mappings = Obda.Qparse.parse_mappings ~signature (read_file mappings_path) in
      let db = Obda.Database.create () in
      Obda.Qparse.load_facts db (read_file data_path);
      let q = Obda.Qparse.parse_query ~signature query_text in
      let system = Obda.Engine.create ~tbox ~mappings ~database:db () in
      (Obda.Engine.certain_answers system q, Obda.Engine.consistent system)
    with
    | answers, consistent ->
      List.iter
        (fun tuple -> print_endline (String.concat ", " tuple))
        (List.sort compare answers);
      if not consistent then begin
        prerr_endline "warning: knowledge base is inconsistent";
        exit 5
      end
    | exception Obda.Qparse.Parse_error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
  in
  let data_arg =
    Arg.(required & opt (some file) None
         & info [ "data"; "d" ] ~doc:"Fact file (rel(a, b) lines).")
  in
  let query_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"QUERY" ~doc:"Query.")
  in
  Cmd.v
    (Cmd.info "answer" ~doc:"Certain answers over mapped relational data.")
    Term.(const run $ tbox_arg $ mappings_arg $ data_arg $ query_arg)

(* ------------------------------- analyze ----------------------------- *)

let analyze_cmd =
  let run path mappings_path =
    let tbox = load_tbox path in
    let signature = Tbox.signature tbox in
    match Obda.Qparse.parse_mappings ~signature (read_file mappings_path) with
    | exception Obda.Qparse.Parse_error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
    | mappings ->
      let issues = Obda.Mapping_analysis.analyze tbox mappings in
      List.iter
        (fun issue -> Format.printf "%a@." Obda.Mapping_analysis.pp_issue issue)
        issues;
      if Obda.Mapping_analysis.errors issues <> [] then exit 6
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static mapping analysis: incoherent targets, redundancy, gaps.")
    Term.(const run $ tbox_arg $ mappings_arg)

(* -------------------------------- owl -------------------------------- *)

let export_owl_cmd =
  let run path iri output =
    let tbox = load_tbox path in
    let text = Owl2ql.to_functional ?iri tbox in
    match output with
    | None -> print_string text
    | Some out ->
      let oc = open_out out in
      output_string oc text;
      close_out oc
  in
  let iri =
    Arg.(value & opt (some string) None & info [ "iri" ] ~doc:"Ontology IRI.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "export-owl"
       ~doc:"Render the ontology in OWL 2 QL functional-style syntax.")
    Term.(const run $ tbox_arg $ iri $ output)

let import_owl_cmd =
  let run path =
    match Owl2ql.of_functional (read_file path) with
    | exception Owl2ql.Unsupported m ->
      Printf.eprintf "not in the OWL 2 QL fragment: %s\n" m;
      exit 1
    | tbox ->
      let s = Tbox.signature tbox in
      List.iter (Printf.printf "concept %s\n") (Signature.concepts s);
      List.iter (Printf.printf "role %s\n") (Signature.roles s);
      List.iter (Printf.printf "attr %s\n") (Signature.attributes s);
      List.iter
        (fun ax -> print_endline (Syntax.axiom_to_string ax))
        (Tbox.axioms tbox)
  in
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"OWL_FILE"
           ~doc:"OWL functional-syntax file (QL fragment).")
  in
  Cmd.v
    (Cmd.info "import-owl"
       ~doc:"Convert an OWL 2 QL functional-syntax file to the ASCII DL-Lite syntax.")
    Term.(const run $ file_arg)

(* -------------------------------- query ------------------------------ *)

(* Client mode: drive a running obda_server over the wire protocol.
   [--stats] fetches the versioned STATS reply through the typed client
   parser and prints one aligned `metric{labels} value` row per sample;
   [--metrics] dumps the raw Prometheus-style exposition text. *)
let query_cmd =
  let run connect retries session ontology mappings data abox bulk chunk
      prepare named stats metrics query_text =
    match Server.Client.connect ~retries connect with
    | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
    | Ok conn ->
      let rpc req =
        match Server.Client.request conn req with
        | Error e ->
          Printf.eprintf "error: %s\n" e;
          exit 1
        | Ok Server.Wire.Busy ->
          prerr_endline "server busy (admission queue full); retry later";
          exit 7
        | Ok (Server.Wire.Err m) ->
          Printf.eprintf "server error: %s\n" m;
          exit 4
        | Ok (Server.Wire.Ok lines) -> lines
      in
      let load kind path =
        ignore
          (rpc
             (Server.Wire.Load
                {
                  session;
                  kind;
                  payload = Server.Wire.payload_of_text (read_file path);
                }))
      in
      Option.iter (load Server.Wire.K_tbox) ontology;
      Option.iter (load Server.Wire.K_mappings) mappings;
      Option.iter (load Server.Wire.K_abox) abox;
      Option.iter (load Server.Wire.K_facts) data;
      Option.iter
        (fun path ->
          (* streaming ingestion: negotiate protocol v2, then feed the
             file to the server chunk by chunk — the file is never
             materialized in memory on either side *)
          (match Server.Client.hello conn with
           | Error e ->
             Printf.eprintf "error: HELLO: %s\n" e;
             exit 4
           | Ok (v, _) when v < 2 ->
             Printf.eprintf
               "server error: bulk load needs protocol v2; server granted v%d\n"
               v;
             exit 4
           | Ok _ -> ());
          let ic = open_in path in
          let rec lines () =
            match input_line ic with
            | line -> Seq.Cons (line, lines)
            | exception End_of_file -> Seq.Nil
          in
          let facts = Seq.filter (fun l -> String.trim l <> "") lines in
          (match
             Server.Client.bulk_load conn ~session ~chunk_lines:chunk facts
           with
           | Error e ->
             close_in_noerr ic;
             Printf.eprintf "server error: %s\n" e;
             exit 4
           | Ok (chunks, nfacts) ->
             close_in_noerr ic;
             Printf.printf "bulk: %d chunk(s), %d fact(s)\n%!" chunks nfacts))
        bulk;
      Option.iter
        (fun (name, text) ->
          ignore (rpc (Server.Wire.Prepare { session; name; query = text })))
        prepare;
      Option.iter
        (fun name ->
          List.iter print_endline
            (rpc (Server.Wire.Ask { session; query = Server.Wire.Named name })))
        named;
      Option.iter
        (fun q ->
          List.iter print_endline
            (rpc (Server.Wire.Ask { session; query = Server.Wire.Inline q })))
        query_text;
      if stats then begin
        match Server.Client.stats conn with
        | Error e ->
          Printf.eprintf "error: %s\n" e;
          exit 4
        | Ok samples ->
          let width =
            List.fold_left (fun w (k, _) -> max w (String.length k)) 0 samples
          in
          List.iter
            (fun (key, value) ->
              Printf.printf "%-*s %s\n" width key
                (Obs.string_of_value value))
            samples;
          (* the client's own side of the story: retries, reconnects and
             failovers live in this process's registry, not the server's *)
          List.iter
            (fun s ->
              let is_client_metric =
                String.length s.Obs.name >= 12
                && String.sub s.Obs.name 0 12 = "obda_client_"
              in
              if is_client_metric then
                Printf.printf "%-*s %s\n" width s.Obs.name
                  (Obs.string_of_value s.Obs.value))
            (Obs.Registry.samples Obs.default)
      end;
      (* with a multi-endpoint --connect, also probe and print each
         member's replication state (role, epoch, fence) *)
      if stats && String.contains connect ',' then begin
        print_endline "== endpoints ==";
        List.iter
          (fun st ->
            match st.Server.Client.es_error with
            | Some e ->
              Printf.printf "%s unreachable (%s)\n" st.Server.Client.es_endpoint
                e
            | None ->
              Printf.printf "%s %s epoch=%d fence=%d%s\n"
                st.Server.Client.es_endpoint
                (Option.value st.Server.Client.es_role ~default:"?")
                st.Server.Client.es_epoch st.Server.Client.es_fence
                (if st.Server.Client.es_fenced then " fenced" else ""))
          (Server.Client.endpoint_states conn)
      end;
      if metrics then
        List.iter print_endline (rpc Server.Wire.Metrics);
      ignore (rpc Server.Wire.Quit);
      Server.Client.close conn
  in
  let connect_arg =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"ENDPOINT"
             ~doc:"Server endpoint: unix:/path.sock or tcp:HOST:PORT. A \
                   comma-separated list makes the client failover-aware: \
                   writes chase the cluster primary, re-resolving it after \
                   a promotion.")
  in
  let retries_arg =
    Arg.(value & opt int 0
         & info [ "retries" ] ~docv:"N"
             ~doc:"Retry a failed or shed request up to N times with \
                   jittered exponential backoff, reconnecting as needed \
                   (all wire verbs are idempotent).")
  in
  let session_arg =
    Arg.(value & opt string "default"
         & info [ "session" ] ~docv:"NAME" ~doc:"Server-side session name.")
  in
  let ontology_arg =
    Arg.(value & opt (some file) None
         & info [ "ontology"; "T" ] ~doc:"Load this ontology into the session.")
  in
  let mappings_opt_arg =
    Arg.(value & opt (some file) None
         & info [ "mappings"; "m" ] ~doc:"Load this mapping file into the session.")
  in
  let data_arg =
    Arg.(value & opt (some file) None
         & info [ "data"; "d" ] ~doc:"Load raw database facts into the session.")
  in
  let abox_arg =
    Arg.(value & opt (some file) None
         & info [ "abox"; "a" ] ~doc:"Load ontology-level facts into the session.")
  in
  let bulk_arg =
    Arg.(value & opt (some file) None
         & info [ "bulk" ] ~docv:"FILE"
             ~doc:"Stream raw database facts from FILE via the v2 LOAD BULK \
                   verb: the file is sent in atomic chunks (see --chunk) \
                   without being held in memory.")
  in
  let chunk_arg =
    Arg.(value & opt int 1000
         & info [ "chunk" ] ~docv:"N"
             ~doc:"Lines per BULK chunk (with --bulk); each chunk is \
                   validated, logged and applied atomically.")
  in
  let prepare_arg =
    Arg.(value & opt (some (pair ~sep:'=' string string)) None
         & info [ "prepare" ] ~docv:"NAME=QUERY"
             ~doc:"Register a prepared query under NAME.")
  in
  let named_arg =
    Arg.(value & opt (some string) None
         & info [ "ask" ] ~docv:"NAME" ~doc:"Ask a previously prepared query.")
  in
  let stats_arg =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print the server's versioned STATS samples (caches, \
                   per-op and per-phase latencies, sessions).")
  in
  let metrics_arg =
    Arg.(value & flag
         & info [ "metrics" ]
             ~doc:"Dump the server's metrics in Prometheus text exposition \
                   format.")
  in
  let query_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Query.")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Query a running obda_server over the wire protocol.")
    Term.(
      const run $ connect_arg $ retries_arg $ session_arg $ ontology_arg
      $ mappings_opt_arg $ data_arg $ abox_arg $ bulk_arg $ chunk_arg
      $ prepare_arg $ named_arg $ stats_arg $ metrics_arg $ query_arg)

let () =
  let info = Cmd.info "obda_cli" ~doc:"DL-Lite / OBDA toolkit." in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            classify_cmd;
            taxonomy_cmd;
            unsat_cmd;
            implies_cmd;
            rewrite_cmd;
            render_cmd;
            modularize_cmd;
            generate_cmd;
            doc_cmd;
            diff_cmd;
            sql_cmd;
            answer_cmd;
            analyze_cmd;
            query_cmd;
            export_owl_cmd;
            import_owl_cmd;
          ]))
