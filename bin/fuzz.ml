(* Differential fuzzer for the reasoning stack.

   Generates seeded random cases (TBoxes, and ABox+query cases on
   roughly half the draws), runs every case through the conformance
   runner and stops at the first disagreement: the failing seed is
   printed with an exact replay command line, the case is shrunk to a
   1-minimal counterexample and emitted in the corpus format (and
   saved with --corpus DIR, ready to drop into test/corpus/).

   --inject drop-inverse sabotages one subject on purpose — a self-test
   that the harness detects and shrinks real bugs; such runs exit 0.

   Examples:
     fuzz --seed 1 --count 200
     fuzz --seed 42 --count 500 --profile galen
     fuzz --inject drop-inverse --corpus /tmp/corpus *)

open Cmdliner
module Runner = Conformance.Runner
module Subjects = Conformance.Subjects

let build_case ~profile ~case_seed =
  let rng = Ontgen.Rng.create case_seed in
  let label = Printf.sprintf "seed-%d" case_seed in
  match profile with
  | Some p ->
    Runner.case ~label (Ontgen.Casegen.profile_tbox ~seed:case_seed p)
  | None ->
    (* draw the case shape from the seed itself so a failing seed
       replays identically with --count 1 *)
    let with_data = Ontgen.Rng.bool rng 0.5 in
    let tbox = Ontgen.Casegen.tbox rng in
    let data =
      if with_data then Some (Ontgen.Casegen.abox rng, Ontgen.Casegen.query rng)
      else None
    in
    { Runner.label; tbox; data }

let run seed count profile inject no_oracle corpus_dir =
  let fault =
    match Subjects.fault_of_string inject with
    | Some f -> f
    | None ->
      Printf.eprintf "unknown fault %s (use none or drop-inverse)\n" inject;
      exit 2
  in
  let profile =
    match profile with
    | None -> None
    | Some label -> (
      match Ontgen.Profiles.by_label label with
      | Some p -> Some p
      | None ->
        Printf.eprintf "unknown profile %s; known: %s\n" label
          (String.concat ", "
             (List.map (fun p -> p.Ontgen.Generator.label) Ontgen.Profiles.figure1));
        exit 2)
  in
  (* dense profile TBoxes are exactly the inputs Figure 1's tableau
     reasoners time out on: every oracle query would burn its whole
     budget for an [Unknown], so profile runs drop the oracle *)
  let config =
    { Runner.default_config with
      with_oracle = (not no_oracle) && profile = None;
      fault }
  in
  let report = Conformance.Report.create () in
  let failure = ref None in
  let i = ref 0 in
  while !failure = None && !i < count do
    let case_seed = seed + !i in
    let case = build_case ~profile ~case_seed in
    let outcome = Runner.check ~config case in
    Conformance.Report.record report outcome;
    if outcome.Runner.disagreements <> [] then failure := Some (case_seed, case, outcome);
    incr i
  done;
  match !failure with
  | None ->
    print_endline (Conformance.Report.summary report);
    print_endline "OK: no disagreements"
  | Some (case_seed, case, outcome) ->
    let replay =
      Printf.sprintf "fuzz --seed %d --count 1%s%s%s" case_seed
        (match profile with
         | Some p -> " --profile " ^ p.Ontgen.Generator.label
         | None -> "")
        (match fault with
         | Subjects.No_fault -> ""
         | f -> " --inject " ^ Subjects.string_of_fault f)
        (if no_oracle then " --no-oracle" else "")
    in
    Printf.printf "FAILURE at seed %d  (replay: %s)\n" case_seed replay;
    List.iter
      (fun d -> print_endline (Conformance.Diff.to_string d))
      outcome.Runner.disagreements;
    let still_failing c = (Runner.check ~config c).Runner.disagreements <> [] in
    let shrunk, stats = Conformance.Shrink.minimize ~still_failing case in
    Conformance.Report.record_shrink report stats;
    Printf.printf "shrunk: %d -> %d axioms, %d -> %d assertions (%d reruns)\n"
      stats.Conformance.Shrink.initial_axioms stats.Conformance.Shrink.final_axioms
      stats.Conformance.Shrink.initial_assertions
      stats.Conformance.Shrink.final_assertions stats.Conformance.Shrink.reruns;
    print_endline "minimal counterexample:";
    print_string (Conformance.Corpus.to_string shrunk);
    (match corpus_dir with
     | Some dir ->
       let path = Conformance.Corpus.save ~dir shrunk in
       Printf.printf "saved: %s\n" path
     | None -> ());
    print_endline (Conformance.Report.summary report);
    (* an injected fault is *supposed* to be found: that run succeeded *)
    if fault = Subjects.No_fault then exit 1

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Base seed; case $(i)i uses seed+$(i)i.")

let count_arg = Arg.(value & opt int 100 & info [ "count" ] ~doc:"Number of cases.")

let profile_arg =
  Arg.(value & opt (some string) None
       & info [ "profile" ] ~doc:"Generate from a Figure-1 benchmark profile (e.g. galen).")

let inject_arg =
  Arg.(value & opt string "none"
       & info [ "inject" ]
           ~doc:"Inject a synthetic fault (drop-inverse) to self-test the harness.")

let no_oracle_arg =
  Arg.(value & flag & info [ "no-oracle" ] ~doc:"Skip the (slow) ALCHI tableau subject.")

let corpus_arg =
  Arg.(value & opt (some string) None
       & info [ "corpus" ] ~doc:"Save the shrunk counterexample into DIR.")

let () =
  let info =
    Cmd.info "fuzz"
      ~doc:"Differential fuzzing of the four classifiers and both answer paths."
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(const run $ seed_arg $ count_arg $ profile_arg $ inject_arg
                $ no_oracle_arg $ corpus_arg)))
