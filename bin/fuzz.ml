(* Differential fuzzer for the reasoning stack.

   Generates seeded random cases (TBoxes, and ABox+query cases on
   roughly half the draws), runs every case through the conformance
   runner and stops at the first disagreement: the failing seed is
   printed with an exact replay command line, the case is shrunk to a
   1-minimal counterexample and emitted in the corpus format (and
   saved with --corpus DIR, ready to drop into test/corpus/).

   --jobs N spreads the cases over a domain pool (one block of N*4
   seed-consecutive cases in flight at a time).  Each case derives its
   RNG stream from its own seed, so the failure found, the shrunk
   corpus entry and the report are identical at every job count — see
   Conformance.Drive for the determinism argument.

   --inject drop-inverse sabotages one subject on purpose — a self-test
   that the harness detects and shrinks real bugs; such runs exit 0.

   Examples:
     fuzz --seed 1 --count 200
     fuzz --seed 42 --count 500 --profile galen --jobs 4
     fuzz --inject drop-inverse --corpus /tmp/corpus *)

open Cmdliner
module Drive = Conformance.Drive
module Subjects = Conformance.Subjects

let run seed count profile inject no_oracle corpus_dir jobs =
  let fault =
    match Subjects.fault_of_string inject with
    | Some f -> f
    | None ->
      Printf.eprintf "unknown fault %s (use none or drop-inverse)\n" inject;
      exit 2
  in
  let profile =
    match profile with
    | None -> None
    | Some label -> (
      match Ontgen.Profiles.by_label label with
      | Some p -> Some p
      | None ->
        Printf.eprintf "unknown profile %s; known: %s\n" label
          (String.concat ", "
             (List.map (fun p -> p.Ontgen.Generator.label) Ontgen.Profiles.figure1));
        exit 2)
  in
  (* dense profile TBoxes are exactly the inputs Figure 1's tableau
     reasoners time out on: every oracle query would burn its whole
     budget for an [Unknown], so profile runs drop the oracle *)
  let config =
    { Conformance.Runner.default_config with
      with_oracle = (not no_oracle) && profile = None;
      fault }
  in
  let { Drive.report; failure } = Drive.run ~jobs { Drive.seed; count; profile; config } in
  match failure with
  | None ->
    print_endline (Conformance.Report.summary report);
    print_endline "OK: no disagreements"
  | Some f ->
    let replay =
      Printf.sprintf "fuzz --seed %d --count 1%s%s%s" f.Drive.case_seed
        (match profile with
         | Some p -> " --profile " ^ p.Ontgen.Generator.label
         | None -> "")
        (match fault with
         | Subjects.No_fault -> ""
         | fault -> " --inject " ^ Subjects.string_of_fault fault)
        (if no_oracle then " --no-oracle" else "")
    in
    Printf.printf "FAILURE at seed %d  (replay: %s)\n" f.Drive.case_seed replay;
    List.iter
      (fun d -> print_endline (Conformance.Diff.to_string d))
      f.Drive.outcome.Conformance.Runner.disagreements;
    Printf.printf "shrunk: %d -> %d axioms, %d -> %d assertions (%d reruns)\n"
      f.Drive.stats.Conformance.Shrink.initial_axioms
      f.Drive.stats.Conformance.Shrink.final_axioms
      f.Drive.stats.Conformance.Shrink.initial_assertions
      f.Drive.stats.Conformance.Shrink.final_assertions
      f.Drive.stats.Conformance.Shrink.reruns;
    print_endline "minimal counterexample:";
    print_string (Conformance.Corpus.to_string f.Drive.shrunk);
    (match corpus_dir with
     | Some dir ->
       let path = Conformance.Corpus.save ~dir f.Drive.shrunk in
       Printf.printf "saved: %s\n" path
     | None -> ());
    print_endline (Conformance.Report.summary report);
    (* an injected fault is *supposed* to be found: that run succeeded *)
    if fault = Subjects.No_fault then exit 1

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Base seed; case $(i)i uses seed+$(i)i.")

let count_arg = Arg.(value & opt int 100 & info [ "count" ] ~doc:"Number of cases.")

let profile_arg =
  Arg.(value & opt (some string) None
       & info [ "profile" ] ~doc:"Generate from a Figure-1 benchmark profile (e.g. galen).")

let inject_arg =
  Arg.(value & opt string "none"
       & info [ "inject" ]
           ~doc:"Inject a synthetic fault (drop-inverse) to self-test the harness.")

let no_oracle_arg =
  Arg.(value & flag & info [ "no-oracle" ] ~doc:"Skip the (slow) ALCHI tableau subject.")

let corpus_arg =
  Arg.(value & opt (some string) None
       & info [ "corpus" ] ~doc:"Save the shrunk counterexample into DIR.")

let jobs_arg =
  Arg.(value & opt int 1
       & info [ "jobs"; "j" ]
           ~doc:"Run cases across $(docv) domains; results (failure, corpus, \
                 report) are identical at every job count.")

let () =
  let info =
    Cmd.info "fuzz"
      ~doc:"Differential fuzzing of the four classifiers and both answer paths."
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(const run $ seed_arg $ count_arg $ profile_arg $ inject_arg
                $ no_oracle_arg $ corpus_arg $ jobs_arg)))
