(* Chaos harness for the durable server: spawn a server on a scratch
   data directory, feed it a randomized mutation script, kill it dead —
   [kill -9], or a crash failpoint armed in the durable commit path via
   the FAIL wire verb — then restart on the same directory and check
   that the recovered state answers exactly like the acknowledged
   prefix of the script.

   The oracle is the in-process [Server.Service] this binary links: the
   same wire requests the server acknowledged are replayed into it, and
   a battery of probe queries must answer identically over the wire and
   in process.  A crash can land between the WAL fsync and the reply,
   so the recovered state is allowed to equal either the acknowledged
   prefix or that prefix plus the single in-flight mutation — anything
   else is a divergence and the harness exits non-zero.

   This is a test tool: it spawns servers with --chaos and arms real
   crash failpoints.  Never point it at a data directory you care
   about. *)

open Cmdliner

module Wire = Server.Wire
module Client = Server.Client
module Service = Server.Service

(* ------------------------- mutation scripts -------------------------- *)

let tbox_payloads =
  [|
    [ "concept A"; "concept B"; "role r"; "A [= B" ];
    [ "concept A"; "concept B"; "concept C"; "role r"; "A [= B"; "B [= C" ];
    [ "concept A"; "concept B"; "role r"; "exists r [= B" ];
  |]

let fact_payloads =
  [| [ "src(\"a\", \"1\")" ]; [ "src(\"b\", \"2\")"; "src(\"c\", \"3\")" ] |]

let abox_payloads = [| [ "A(x1)" ]; [ "B(y1)"; "r(y1, y2)" ]; [ "r(p, q)" ] |]

let mapping_payloads = [| [ "map A(x) <- src(x, y)" ] |]

let prepare_pool =
  [| ("q1", "x <- A(x)"); ("q2", "x <- B(x)"); ("q3", "x, y <- r(x, y)") |]

let pick rng a = a.(Random.State.int rng (Array.length a))

(* every generated request is valid — the first one is always a TBOX,
   and every payload below parses under any TBOX in the pool.  A
   refused load is acknowledged but durably a no-op, while the crashed
   process may have auto-created the session in memory; keeping the
   script refusal-free keeps "acknowledged prefix" well-defined. *)
let gen_request rng session =
  match Random.State.int rng 10 with
  | 0 | 1 -> Wire.Load { session; kind = Wire.K_tbox; payload = pick rng tbox_payloads }
  | 2 | 3 -> Wire.Load { session; kind = Wire.K_facts; payload = pick rng fact_payloads }
  | 4 | 5 | 6 -> Wire.Load { session; kind = Wire.K_abox; payload = pick rng abox_payloads }
  | 7 -> Wire.Load { session; kind = Wire.K_mappings; payload = pick rng mapping_payloads }
  | _ ->
    let name, query = pick rng prepare_pool in
    Wire.Prepare { session; name; query }

let probes session =
  List.concat_map
    (fun q ->
      [ Wire.Ask { session; query = Wire.Inline q } ])
    [ "x <- A(x)"; "x <- B(x)"; "x, y <- r(x, y)"; "x <- src(x, \"1\")" ]
  @ Array.to_list
      (Array.map
         (fun (name, _) -> Wire.Ask { session; query = Wire.Named name })
         prepare_pool)

(* crash sites in the durable commit path; each round arms one with a
   random skip count, so over many rounds every site is hit at every
   depth of the script *)
let crash_sites =
  [|
    ("wal.append.before", "crash");
    ("wal.append.write", "partial:5");
    ("wal.append.write", "partial:17");
    ("wal.append.before_fsync", "crash");
    ("wal.append.after_fsync", "crash");
    ("snapshot.before_rename", "crash");
  |]

(* --------------------------- child control --------------------------- *)

let spawn_server ?(group_commit = false) ~exe ~sock ~data_dir
    ~snapshot_every () =
  let args =
    [
      exe; "--unix"; sock; "--data-dir"; data_dir; "--chaos";
      "--snapshot-every"; string_of_int snapshot_every; "--jobs"; "1";
    ]
    @ (if group_commit then [ "--group-commit" ] else [])
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe (Array.of_list args) Unix.stdin null Unix.stderr
  in
  Unix.close null;
  pid

let wait_listening sock =
  let deadline = Unix.gettimeofday () +. 10.0 in
  let rec go () =
    match Client.connect ("unix:" ^ sock) with
    | Result.Ok conn -> conn
    | Result.Error _ when Unix.gettimeofday () < deadline ->
      Thread.delay 0.05;
      go ()
    | Result.Error e -> failwith ("server did not come up: " ^ e)
  in
  go ()

let reap pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | _, Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
  | _, Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> "already reaped"

let kill_dead pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (reap pid)

let stop_gracefully pid =
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (reap pid)

(* ------------------------------ a round ------------------------------ *)

let string_of_reply = function
  | Wire.Ok lines -> "OK " ^ String.concat " | " lines
  | Wire.Err e -> "ERR " ^ e
  | Wire.Busy -> "BUSY"

let rm_rf dir = ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

(* recovered server vs oracle(s): every probe must answer identically
   over the wire and in process; returns the divergence count *)
let probe_divergences ~round conn2 oracle oracle_next plist =
  let divergences = ref 0 in
  List.iter
    (fun probe ->
      let wire =
        match Client.request conn2 probe with
        | Result.Ok reply -> string_of_reply reply
        | Result.Error e -> "TRANSPORT " ^ e
      in
      let local = string_of_reply (Service.handle oracle probe) in
      let next = Option.map (fun o -> string_of_reply (Service.handle o probe)) oracle_next in
      if wire <> local && Some wire <> next then begin
        incr divergences;
        Printf.printf "round %d DIVERGED on %s\n  recovered: %s\n  acked:     %s%s\n"
          round
          (string_of_reply (Wire.Ok (Wire.encode_request probe)))
          wire local
          (match next with
           | Some n -> "\n  acked+1:   " ^ n
           | None -> "")
      end)
    plist;
  !divergences

(* replay acknowledged wire requests into an in-process Service *)
let build_oracle reqs =
  let s = Service.create ~registry:(Obs.Registry.create ()) () in
  List.iter (fun r -> ignore (Service.handle s r)) reqs;
  s

(* returns the number of divergent probes *)
let run_round ~exe ~scratch ~snapshot_every rng round =
  let session = "chaos" in
  let data_dir = Filename.concat scratch (Printf.sprintf "round%d" round) in
  rm_rf data_dir;
  let sock = Filename.concat scratch (Printf.sprintf "sock%d" round) in
  (try Sys.remove sock with Sys_error _ -> ());
  let pid = spawn_server ~exe ~sock ~data_dir ~snapshot_every () in
  let conn = wait_listening sock in
  (* choose the failure: a crash failpoint armed over the wire, or a
     plain SIGKILL from outside after a random number of mutations *)
  let script_len = 4 + Random.State.int rng 8 in
  let sigkill_after =
    if Random.State.int rng 3 = 0 then Some (Random.State.int rng script_len)
    else begin
      let site, spec = pick rng crash_sites in
      let skip = Random.State.int rng 4 in
      (match
         Client.request conn (Wire.Fail { name = site; spec = Printf.sprintf "%s@%d" spec skip })
       with
      | Result.Ok (Wire.Ok _) -> ()
      | r -> failwith ("FAIL verb rejected: " ^
                       (match r with
                        | Result.Ok reply -> string_of_reply reply
                        | Result.Error e -> e)));
      None
    end
  in
  (* drive the script, tracking what was acknowledged *)
  let acked = ref [] and in_flight = ref None in
  (try
     for i = 0 to script_len - 1 do
       (match sigkill_after with
        | Some k when i = k -> kill_dead pid
        | _ -> ());
       let req =
         if i = 0 then
           Wire.Load
             { session; kind = Wire.K_tbox; payload = pick rng tbox_payloads }
         else gen_request rng session
       in
       in_flight := Some req;
       match Client.request conn req with
       | Result.Ok (Wire.Ok _ | Wire.Err _) ->
         (* a reply — even a refusal — is an acknowledgement *)
         acked := req :: !acked;
         in_flight := None
       | Result.Ok Wire.Busy -> in_flight := None
       | Result.Error _ -> raise Exit
     done
   with Exit -> ());
  Client.close conn;
  (* the server must be dead by now — if the armed failpoint never
     fired (skip deeper than the script wrote), put it down ourselves
     and discard the in-flight slot (there is none) *)
  let died_on_its_own = !in_flight <> None || sigkill_after <> None in
  kill_dead pid;
  let acked = List.rev !acked in
  (* restart clean on the same directory *)
  let pid2 = spawn_server ~exe ~sock ~data_dir ~snapshot_every () in
  let conn2 = wait_listening sock in
  (* oracles: acknowledged prefix, and prefix + the in-flight mutation *)
  let oracle = build_oracle acked in
  let oracle_next =
    match !in_flight with
    | Some req when died_on_its_own -> Some (build_oracle (acked @ [ req ]))
    | _ -> None
  in
  let divergences =
    probe_divergences ~round conn2 oracle oracle_next (probes session)
  in
  Client.close conn2;
  stop_gracefully pid2;
  Printf.printf "round %d: %d/%d acked, %s, %d divergence(s)\n%!" round
    (List.length acked) script_len
    (match sigkill_after with
     | Some k -> Printf.sprintf "sigkill@%d" k
     | None -> "failpoint crash")
    divergences;
  divergences

(* ---------------------- a mid-bulk-stream round ---------------------- *)

(* the script is a protocol-v2 BULK stream killed mid-flight (kill -9
   from outside, or a crash failpoint in the WAL append path, so torn
   chunk tails are exercised too).  Atomicity is per chunk: the
   recovered server must answer exactly like the acknowledged chunk
   prefix, or that prefix plus the single in-flight chunk.  The server
   runs with --group-commit so the batched fsync path is the one under
   fire. *)
let run_bulk_round ~exe ~scratch ~snapshot_every rng round =
  let session = "chaos" in
  let data_dir = Filename.concat scratch (Printf.sprintf "bulk%d" round) in
  rm_rf data_dir;
  let sock = Filename.concat scratch (Printf.sprintf "bsock%d" round) in
  (try Sys.remove sock with Sys_error _ -> ());
  let pid =
    spawn_server ~group_commit:true ~exe ~sock ~data_dir ~snapshot_every ()
  in
  let conn = wait_listening sock in
  (match Client.hello conn with
  | Result.Ok (v, _) when v >= 2 -> ()
  | Result.Ok (v, _) -> failwith (Printf.sprintf "server granted v%d, need v2" v)
  | Result.Error e -> failwith ("HELLO failed: " ^ e));
  let tbox =
    Wire.Load { session; kind = Wire.K_tbox; payload = tbox_payloads.(0) }
  in
  (match Client.request conn tbox with
  | Result.Ok (Wire.Ok _) -> ()
  | Result.Ok reply -> failwith ("TBOX load failed: " ^ string_of_reply reply)
  | Result.Error e -> failwith ("TBOX load failed: " ^ e));
  (* every chunk lands facts the src probe sees, so a lost or phantom
     chunk shows up as a divergent answer set *)
  let n_chunks = 4 + Random.State.int rng 8 in
  let chunk i =
    List.init
      (1 + Random.State.int rng 3)
      (fun j -> Printf.sprintf "src(\"r%dc%df%d\", \"1\")" round i j)
  in
  let sigkill_after =
    if Random.State.int rng 2 = 0 then Some (Random.State.int rng n_chunks)
    else begin
      let site, spec = pick rng crash_sites in
      let skip = Random.State.int rng 4 in
      (match
         Client.request conn
           (Wire.Fail { name = site; spec = Printf.sprintf "%s@%d" spec skip })
       with
      | Result.Ok (Wire.Ok _) -> ()
      | r ->
        failwith
          ("FAIL verb rejected: "
          ^ (match r with
            | Result.Ok reply -> string_of_reply reply
            | Result.Error e -> e)));
      None
    end
  in
  let acked = ref [] and in_flight = ref None in
  (try
     for i = 0 to n_chunks - 1 do
       (match sigkill_after with
       | Some k when i = k -> kill_dead pid
       | _ -> ());
       let req = Wire.Bulk_chunk { session; payload = chunk i } in
       in_flight := Some req;
       match Client.request conn req with
       | Result.Ok (Wire.Ok _ | Wire.Err _) ->
         acked := req :: !acked;
         in_flight := None
       | Result.Ok Wire.Busy -> in_flight := None
       | Result.Error _ -> raise Exit
     done
   with Exit -> ());
  Client.close conn;
  let died_on_its_own = !in_flight <> None || sigkill_after <> None in
  kill_dead pid;
  let acked_chunks = List.length !acked in
  (* the stream never ENDed: the oracle replays the acked chunks and
     then ABORTs, which keeps the applied chunks (per-chunk atomicity)
     and closes the stream, matching the recovered server where the
     stream died with its connection *)
  let acked = List.rev !acked in
  let script prefix = (tbox :: prefix) @ [ Wire.Bulk_abort { session } ] in
  let pid2 = spawn_server ~exe ~sock ~data_dir ~snapshot_every () in
  let conn2 = wait_listening sock in
  let oracle = build_oracle (script acked) in
  let oracle_next =
    match !in_flight with
    | Some req when died_on_its_own ->
      Some (build_oracle (script (acked @ [ req ])))
    | _ -> None
  in
  let divergences =
    probe_divergences ~round conn2 oracle oracle_next (probes session)
  in
  Client.close conn2;
  stop_gracefully pid2;
  Printf.printf "bulk round %d: %d/%d chunks acked, %s, %d divergence(s)\n%!"
    round acked_chunks n_chunks
    (match sigkill_after with
    | Some k -> Printf.sprintf "sigkill@%d" k
    | None -> "failpoint crash")
    divergences;
  divergences

(* --------------------------- cluster rounds --------------------------- *)

(* One primary + two replicas on scratch directories.  Feed the primary
   a script (mixed mutations, or BULK chunks with --bulk), kill it dead
   mid-script — SIGKILL from outside, a WAL crash failpoint, or a torn
   replication frame (partial write on repl.send.record) — then promote
   the best replica and check three things:

     1. the promoted replica answers exactly like the acknowledged
        prefix (or prefix + the single in-flight mutation — the ack can
        race the kill);
     2. the surviving replica re-points at the new primary and
        converges to the same answers;
     3. the fenced ex-primary rejoins as a replica of the new timeline,
        its unreplicated WAL suffix is discarded by the epoch-mismatch
        RESET, and it converges too.

   The failover time (kill acknowledged → promoted node serving as
   primary) is recorded per round and summarized as p50/p95. *)

module Harness = Cluster.Harness

let cluster_crash_sites =
  [|
    ("wal.append.before", "crash");
    ("wal.append.write", "partial:5");
    ("wal.append.after_fsync", "crash");
    ("repl.send.record", "partial:7");
    ("repl.send.record", "partial:23");
  |]

(* raw REPL STATUS against one endpoint: returns the k=v pairs *)
let repl_status ep =
  match Client.connect ep with
  | Result.Error e -> Result.Error e
  | Result.Ok conn ->
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () ->
        match Client.hello ~version:3 conn with
        | Result.Error e -> Result.Error e
        | Result.Ok _ -> (
          match Client.ok_payload (Client.request conn Wire.Repl_status) with
          | Result.Error e -> Result.Error e
          | Result.Ok [ line ] ->
            Result.Ok
              (String.split_on_char ' ' line
              |> List.filter_map (fun tok ->
                     match String.index_opt tok '=' with
                     | None -> None
                     | Some i ->
                       Some
                         ( String.sub tok 0 i,
                           String.sub tok (i + 1) (String.length tok - i - 1) )))
          | Result.Ok _ -> Result.Error "malformed STATUS reply"))

let wait_subscribers ep n ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let ok =
      match repl_status ep with
      | Result.Ok kv -> (
        match List.assoc_opt "subscribers" kv with
        | Some s -> (match int_of_string_opt s with
                     | Some k -> k >= n
                     | None -> false)
        | None -> false)
      | Result.Error _ -> false
    in
    if ok then true
    else if Unix.gettimeofday () < deadline then begin
      Thread.delay 0.05;
      go ()
    end
    else false
  in
  go ()

(* probe [ep] until its answers match one of the oracles or the
   deadline passes; returns the divergence count of the last attempt *)
let converge ~round ~who ep oracle oracle_next plist ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let quiet_probe () =
    match Client.connect ep with
    | Result.Error _ -> None
    | Result.Ok conn ->
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let diverged = ref false in
          List.iter
            (fun probe ->
              let wire =
                match Client.request conn probe with
                | Result.Ok reply -> string_of_reply reply
                | Result.Error e -> "TRANSPORT " ^ e
              in
              let local = string_of_reply (Service.handle oracle probe) in
              let next =
                Option.map
                  (fun o -> string_of_reply (Service.handle o probe))
                  oracle_next
              in
              if wire <> local && Some wire <> next then diverged := true)
            plist;
          Some !diverged)
  in
  let rec go () =
    match quiet_probe () with
    | Some false -> 0
    | (Some true | None) when Unix.gettimeofday () < deadline ->
      Thread.delay 0.1;
      go ()
    | _ -> (
      (* final, loud attempt for the autopsy *)
      match Client.connect ep with
      | Result.Error e ->
        Printf.printf "round %d: %s unreachable: %s\n" round who e;
        1
      | Result.Ok conn ->
        Fun.protect
          ~finally:(fun () -> Client.close conn)
          (fun () ->
            Printf.printf "round %d: %s did not converge:\n" round who;
            probe_divergences ~round conn oracle oracle_next plist))
  in
  go ()

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))

let run_cluster_round ~exe ~scratch ~snapshot_every ~bulk rng round times =
  let session = "chaos" in
  let mk name i =
    let dir = Filename.concat scratch (Printf.sprintf "c%d-%s%d" round name i) in
    rm_rf dir;
    let sock = Filename.concat scratch (Printf.sprintf "c%d-%s%d.sock" round name i) in
    (try Sys.remove sock with Sys_error _ -> ());
    (sock, dir)
  in
  let p_sock, p_dir = mk "p" 0 in
  let r1_sock, r1_dir = mk "r" 1 in
  let r2_sock, r2_dir = mk "r" 2 in
  let eps = [ "unix:" ^ p_sock; "unix:" ^ r1_sock; "unix:" ^ r2_sock ] in
  let p_ep = List.nth eps 0 and r1_ep = List.nth eps 1 and r2_ep = List.nth eps 2 in
  let spawn ~sock ~dir ?replica_of () =
    Harness.spawn ~exe ~sock ~data_dir:dir ~group_commit:bulk ~snapshot_every
      ?replica_of ~cluster:eps ()
  in
  let primary = spawn ~sock:p_sock ~dir:p_dir () in
  let rep1 = spawn ~sock:r1_sock ~dir:r1_dir ~replica_of:p_ep () in
  let rep2 = spawn ~sock:r2_sock ~dir:r2_dir ~replica_of:p_ep () in
  let conn = Harness.wait_listening primary in
  ignore (Harness.wait_listening rep1);
  ignore (Harness.wait_listening rep2);
  (* every acked write must be covered by the semi-sync barrier, so do
     not start writing before both replicas are subscribed *)
  if not (wait_subscribers p_ep 2 ~timeout:10.0) then
    failwith "replicas did not subscribe";
  (match Client.hello conn with
   | Result.Ok (v, _) when v >= 3 -> ()
   | Result.Ok (v, _) -> failwith (Printf.sprintf "server granted v%d, need v3" v)
   | Result.Error e -> failwith ("HELLO failed: " ^ e));
  let tbox =
    Wire.Load { session; kind = Wire.K_tbox; payload = tbox_payloads.(0) }
  in
  (match Client.request conn tbox with
   | Result.Ok (Wire.Ok _) -> ()
   | _ -> failwith "TBOX load failed");
  let script_len = 4 + Random.State.int rng 8 in
  let sigkill_after =
    if Random.State.int rng 3 = 0 then Some (Random.State.int rng script_len)
    else begin
      let site, spec = pick rng cluster_crash_sites in
      let skip = Random.State.int rng 4 in
      (match
         Client.request conn
           (Wire.Fail { name = site; spec = Printf.sprintf "%s@%d" spec skip })
       with
       | Result.Ok (Wire.Ok _) -> ()
       | _ -> failwith "FAIL verb rejected");
      None
    end
  in
  let chunk i =
    List.init
      (1 + Random.State.int rng 3)
      (fun j -> Printf.sprintf "src(\"r%dc%df%d\", \"1\")" round i j)
  in
  let acked = ref [ tbox ] and in_flight = ref None in
  (try
     for i = 0 to script_len - 1 do
       (match sigkill_after with
        | Some k when i = k -> Harness.kill_dead primary
        | _ -> ());
       let req =
         if bulk then Wire.Bulk_chunk { session; payload = chunk i }
         else gen_request rng session
       in
       in_flight := Some req;
       match Client.request conn req with
       | Result.Ok (Wire.Ok _ | Wire.Err _) ->
         acked := req :: !acked;
         in_flight := None
       | Result.Ok Wire.Busy -> in_flight := None
       | Result.Error _ -> raise Exit
     done
   with Exit -> ());
  Client.close conn;
  let died_on_its_own = !in_flight <> None || sigkill_after <> None in
  Harness.kill_dead primary;
  (* ------------------------- failover window ------------------------ *)
  let t0 = Unix.gettimeofday () in
  let promoted_ep, _epoch =
    match Cluster.Node.promote_best [ r1_ep; r2_ep ] with
    | Result.Ok (ep, e) -> (ep, e)
    | Result.Error e -> failwith ("promotion failed: " ^ e)
  in
  if not (Harness.wait_role ~timeout:10.0 promoted_ep "primary") then
    failwith "promoted node did not become primary";
  let failover_s = Unix.gettimeofday () -. t0 in
  times := failover_s :: !times;
  let other_ep = if promoted_ep = r1_ep then r2_ep else r1_ep in
  (* ----------------------------- oracles ---------------------------- *)
  let acked = List.rev !acked in
  let script prefix =
    if bulk then prefix @ [ Wire.Bulk_abort { session } ] else prefix
  in
  let oracle = build_oracle (script acked) in
  let oracle_next =
    match !in_flight with
    | Some req when died_on_its_own ->
      Some (build_oracle (script (acked @ [ req ])))
    | _ -> None
  in
  let plist = probes session in
  let d_promoted =
    converge ~round ~who:"promoted replica" promoted_ep oracle oracle_next
      plist ~timeout:10.0
  in
  (* the survivor re-resolves the primary on its own and catches up *)
  let d_survivor =
    converge ~round ~who:"surviving replica" other_ep oracle oracle_next plist
      ~timeout:15.0
  in
  (* --------------------- ex-primary rejoins fenced ------------------- *)
  let rejoined =
    Harness.spawn ~exe ~sock:p_sock ~data_dir:p_dir ~group_commit:bulk
      ~snapshot_every ~replica_of:promoted_ep ~cluster:eps ()
  in
  ignore (Harness.wait_listening rejoined);
  let d_rejoin =
    converge ~round ~who:"rejoined ex-primary" p_ep oracle oracle_next plist
      ~timeout:15.0
  in
  (* the rejoined node must be a replica of the new timeline, and the
     new primary must still accept writes *)
  let d_roles =
    if not (Harness.wait_role ~timeout:10.0 p_ep "replica") then begin
      Printf.printf "round %d: ex-primary did not rejoin as replica\n" round;
      1
    end
    else 0
  in
  let d_writes =
    match Client.connect promoted_ep with
    | Result.Error e ->
      Printf.printf "round %d: promoted primary unreachable: %s\n" round e;
      1
    | Result.Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match
            Client.request c
              (Wire.Load
                 {
                   session;
                   kind = Wire.K_facts;
                   payload = [ Printf.sprintf "src(\"post%d\", \"1\")" round ];
                 })
          with
          | Result.Ok (Wire.Ok _) -> 0
          | r ->
            Printf.printf "round %d: post-failover write refused: %s\n" round
              (match r with
               | Result.Ok reply -> string_of_reply reply
               | Result.Error e -> "TRANSPORT " ^ e);
            1)
  in
  let divergences = d_promoted + d_survivor + d_rejoin + d_roles + d_writes in
  List.iter Harness.kill_dead [ rejoined; rep1; rep2 ];
  Printf.printf
    "cluster round %d: %d/%d acked, %s, failover %.3fs, %d divergence(s)\n%!"
    round
    (List.length acked - 1)
    script_len
    (match sigkill_after with
     | Some k -> Printf.sprintf "sigkill@%d" k
     | None -> "failpoint crash")
    failover_s divergences;
  divergences

let run_cluster exe rounds seed snapshot_every bulk keep =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let scratch =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "obda-chaos-cluster-%d" (Unix.getpid ()))
  in
  rm_rf scratch;
  Unix.mkdir scratch 0o755;
  let rng = Random.State.make [| seed |] in
  let total = ref 0 in
  let times = ref [] in
  for round = 1 to rounds do
    total :=
      !total
      + run_cluster_round ~exe ~scratch ~snapshot_every ~bulk rng round times
  done;
  if not keep then rm_rf scratch;
  let sorted = Array.of_list (List.sort compare !times) in
  if Array.length sorted > 0 then
    Printf.printf "failover: p50 %.3fs p95 %.3fs over %d promotion(s)\n"
      (percentile sorted 0.50) (percentile sorted 0.95) (Array.length sorted);
  if !total = 0 then begin
    Printf.printf "chaos: %d cluster round(s), zero divergences\n" rounds;
    0
  end
  else begin
    Printf.printf "chaos: %d divergence(s) over %d cluster round(s)%s\n" !total
      rounds
      (if keep then "; scratch kept at " ^ scratch else "");
    1
  end

let run exe rounds seed snapshot_every bulk cluster keep =
  if cluster then run_cluster exe rounds seed snapshot_every bulk keep
  else begin
  (* writes race the kill -9 by design; a dead peer must surface as
     EPIPE on the request, not kill the harness *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let scratch =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "obda-chaos-%d" (Unix.getpid ()))
  in
  rm_rf scratch;
  Unix.mkdir scratch 0o755;
  let rng = Random.State.make [| seed |] in
  let total = ref 0 in
  let round_fn = if bulk then run_bulk_round else run_round in
  for round = 1 to rounds do
    total := !total + round_fn ~exe ~scratch ~snapshot_every rng round
  done;
  if not keep then rm_rf scratch;
  if !total = 0 then begin
    Printf.printf "chaos: %d round(s), zero divergences\n" rounds;
    0
  end
  else begin
    Printf.printf "chaos: %d divergence(s) over %d round(s)%s\n" !total rounds
      (if keep then "; scratch kept at " ^ scratch else "");
    1
  end
  end

let () =
  let exe_arg =
    Arg.(value & opt string "_build/default/bin/obda_server.exe"
         & info [ "server" ] ~docv:"EXE" ~doc:"Path to the obda_server binary.")
  in
  let rounds_arg =
    Arg.(value & opt int 10
         & info [ "rounds" ] ~docv:"N" ~doc:"Crash/recover rounds to run.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")
  in
  let snapshot_arg =
    Arg.(value & opt int 5
         & info [ "snapshot-every" ] ~docv:"N"
             ~doc:"Snapshot cadence passed to the server under test.")
  in
  let bulk_arg =
    Arg.(value & flag
         & info [ "bulk" ]
             ~doc:"Kill the server mid-BULK-stream (protocol v2, group \
                   commit) instead of running the mixed mutation script.")
  in
  let cluster_arg =
    Arg.(value & flag
         & info [ "cluster" ]
             ~doc:"Replication mode: 1 primary + 2 replicas; kill -9 the \
                   primary mid-script, promote the best replica, and check \
                   the promoted node serves exactly the acked prefix, the \
                   survivor re-points, and the fenced ex-primary rejoins \
                   and converges.  Composes with --bulk.")
  in
  let keep_arg =
    Arg.(value & flag
         & info [ "keep" ] ~doc:"Keep scratch data directories for autopsy.")
  in
  let info =
    Cmd.info "chaos"
      ~doc:"Kill-9/restart loop against the durable server; exits non-zero \
            on any recovery divergence."
  in
  exit
    (Cmd.eval'
       (Cmd.v info
          Term.(
            const run $ exe_arg $ rounds_arg $ seed_arg $ snapshot_arg
            $ bulk_arg $ cluster_arg $ keep_arg)))
