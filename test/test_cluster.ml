(* Replication & failover regressions: REPL frame codec round-trips and
   malformed-frame rejection, stale-epoch promotion and hub fencing,
   read-only replica enforcement, and a fork property that kill -9s a
   real primary process mid-stream and checks the promoted replica
   serves exactly the acknowledged prefix. *)

module Wire = Server.Wire
module Service = Server.Service
module Client = Server.Client
module Store = Durable.Store
module Failpoint = Durable.Failpoint
module Harness = Cluster.Harness
module Node = Cluster.Node
module Replicate = Cluster.Replicate

let registry () = Obs.Registry.create ()

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "obda-test-cluster-%d-%d" (Unix.getpid ()) !n)
    in
    Harness.rm_rf dir;
    Unix.mkdir dir 0o755;
    dir

(* dune runs this binary from [_build/default/test]; the server the
   harness spawns is the sibling build product (declared as a test dep) *)
let server_exe = "../bin/obda_server.exe"

(* ------------------------- frame codec ------------------------------- *)

let test_frame_roundtrip () =
  List.iter
    (fun frame ->
      match Wire.parse_frame (Wire.encode_frame frame) with
      | Result.Ok got ->
        Alcotest.(check bool)
          (Wire.encode_frame frame) true (got = frame)
      | Result.Error e -> Alcotest.failf "round-trip failed: %s" e)
    [
      Wire.F_record { seq = 1; epoch = 0; count = 3 };
      Wire.F_record { seq = 982451653; epoch = 17; count = 0 };
      Wire.F_reset { fence = 0; state_records = 2 };
      Wire.F_state { count = 5 };
      Wire.F_ack { seq = 42 };
      Wire.F_nack { epoch = 3 };
    ]

let test_malformed_frames () =
  List.iter
    (fun line ->
      match Wire.parse_frame line with
      | Result.Error _ -> ()
      | Result.Ok _ -> Alcotest.failf "accepted malformed frame %S" line)
    [
      "";
      "REPL";
      "REPL RECORD";
      "REPL RECORD 1 2";             (* missing count *)
      "REPL RECORD 0 1 1";           (* seq must be >= 1 *)
      "REPL RECORD x 1 1";
      "REPL RECORD 1 -1 1";          (* negative epoch *)
      "REPL RECORD 1 1 1 extra";
      "REPL RESET -1 0";
      "REPL RESET 3 x";
      "REPL STATE";
      "REPL STATE -2";
      "REPL ACK x";
      "REPL NACK";
      "REPL BOGUS 1 2";
      "LOAD s TBOX 0";               (* a request is not a frame *)
    ]

(* the request decoder must reject malformed REPL verbs loudly too *)
let test_malformed_repl_requests () =
  let decode line =
    let d = Wire.decoder () in
    Wire.feed d line
  in
  List.iter
    (fun line ->
      match decode line with
      | Wire.Error _ -> ()
      | Wire.Request _ | Wire.More ->
        Alcotest.failf "malformed REPL verb %S accepted" line)
    [
      "REPL";
      "REPL SUBSCRIBE";
      "REPL SUBSCRIBE x 3";
      "REPL SUBSCRIBE -1 0";
      "REPL PROMOTE";
      "REPL PROMOTE 0";              (* epochs start at 1 *)
      "REPL PROMOTE x";
      "REPL FLOOP";
    ];
  (match decode "REPL SUBSCRIBE 4 2" with
   | Wire.Request (Wire.Repl_subscribe { fence = 4; epoch = 2 }) -> ()
   | _ -> Alcotest.fail "well-formed REPL SUBSCRIBE rejected");
  (* the fence-only form is legal: the epoch defaults to 0 *)
  match decode "REPL SUBSCRIBE 7" with
  | Wire.Request (Wire.Repl_subscribe { fence = 7; epoch = 0 }) -> ()
  | _ -> Alcotest.fail "fence-only REPL SUBSCRIBE rejected"

(* ------------------------- epoch fencing ----------------------------- *)

let string_of_reply = function
  | Wire.Ok lines -> "OK " ^ String.concat " | " lines
  | Wire.Err e -> "ERR " ^ e
  | Wire.Busy -> "BUSY"

let test_stale_epoch_promotion () =
  let dir = fresh_dir () in
  match Store.open_dir ~registry:(registry ()) dir with
  | Result.Error e -> Alcotest.failf "open_dir: %s" e
  | Result.Ok (store, _) ->
    let service = Service.create ~registry:(registry ()) () in
    Service.attach_store service store;
    let node =
      Node.create ~registry:(registry ()) ~service ~store ~endpoint:""
        ~members:[] ~role:Node.Primary ()
    in
    (match Node.promote node ~epoch:0 with
     | Wire.Err m ->
       Alcotest.(check bool) "stale refusal names the epoch" true
         (String.length m >= 5 && String.sub m 0 5 = "stale")
     | _ -> Alcotest.fail "epoch 0 promotion must be refused (current is 0)");
    (match Node.promote node ~epoch:2 with
     | Wire.Ok _ -> ()
     | Wire.Err m -> Alcotest.failf "epoch 2 promotion refused: %s" m
     | Wire.Busy -> Alcotest.fail "epoch 2 promotion busy");
    (match Node.promote node ~epoch:1 with
     | Wire.Err _ -> ()
     | _ -> Alcotest.fail "epoch 1 must be stale after epoch 2");
    Alcotest.(check int) "epoch adopted" 2 (Node.epoch node);
    (* the epoch survives restart: persisted with the data directory *)
    Alcotest.(check int) "epoch persisted" 2 (Node.load_epoch dir);
    Node.stop node;
    Store.close store;
    Harness.rm_rf dir

let test_hub_fenced_by_higher_epoch () =
  let dir = fresh_dir () in
  match Store.open_dir ~registry:(registry ()) dir with
  | Result.Error e -> Alcotest.failf "open_dir: %s" e
  | Result.Ok (store, _) ->
    let hub =
      Replicate.Hub.create ~registry:(registry ()) ~epoch:(fun () -> 1) store
    in
    Alcotest.(check bool) "gate open before fencing" true
      (Replicate.Hub.gate hub () = Result.Ok ());
    (* a subscriber that lived under epoch 5 proves we are the stale
       primary: the subscription is refused and the hub fences itself *)
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Replicate.Hub.subscribe hub ~fence:0 ~epoch:5 ~fd:a
      ~reader:(Durable.Io.reader a);
    let reply =
      let buf = Bytes.create 256 in
      let n = Unix.read b buf 0 256 in
      Bytes.sub_string buf 0 n
    in
    Alcotest.(check bool) "subscription refused as stale" true
      (String.length reply >= 9 && String.sub reply 0 9 = "ERR stale");
    (match Replicate.Hub.gate hub () with
     | Result.Error m ->
       let p = Service.read_only_prefix in
       Alcotest.(check string) "gate refusal is machine-detectable" p
         (String.sub m 0 (String.length p))
     | Result.Ok () -> Alcotest.fail "gate still open after fencing");
    (match Replicate.Hub.wait_replicated hub 1 with
     | Result.Error _ -> ()
     | Result.Ok () -> Alcotest.fail "barrier passes on a fenced hub");
    Replicate.Hub.stop hub;
    Unix.close a;
    Unix.close b;
    Store.close store;
    Harness.rm_rf dir

(* The full fenced-ex-primary life cycle against one node directory:
   fencing persists a marker (and adopts the learned epoch) before it
   engages, a restart as primary comes back fenced, and only a
   promotion past the fenced epoch clears it and reopens the gate. *)
let test_fence_persists_and_repromotion_clears () =
  let dir = fresh_dir () in
  let open_node () =
    match Store.open_dir ~registry:(registry ()) dir with
    | Result.Error e -> Alcotest.failf "open_dir: %s" e
    | Result.Ok (store, _) ->
      let service = Service.create ~registry:(registry ()) () in
      Service.attach_store service store;
      let node =
        Node.create ~registry:(registry ()) ~service ~store ~endpoint:""
          ~members:[] ~role:Node.Primary ()
      in
      (store, service, node)
  in
  let mutate service tag =
    Service.handle service
      (Wire.Load
         { session = "s"; kind = Wire.K_tbox; payload = [ "concept " ^ tag ] })
  in
  let check_refused what = function
    | Wire.Err m ->
      let p = Service.read_only_prefix in
      Alcotest.(check string) (what ^ " refusal is machine-detectable") p
        (String.sub m 0 (String.length p))
    | r -> Alcotest.failf "%s accepted a write: %s" what (string_of_reply r)
  in
  let store, service, node = open_node () in
  (match mutate service "A" with
   | Wire.Ok _ -> ()
   | r -> Alcotest.failf "pre-fence write refused: %s" (string_of_reply r));
  (* a subscriber that lived under epoch 5 proves a newer timeline *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Node.subscribe node ~fence:0 ~epoch:5 ~fd:a ~reader:(Durable.Io.reader a);
  Unix.close a;
  Unix.close b;
  check_refused "fenced primary" (mutate service "B");
  Alcotest.(check int) "fencing adopts the learned epoch" 5 (Node.epoch node);
  Alcotest.(check (option int)) "fence marker persisted" (Some 5)
    (Node.load_fenced dir);
  Node.stop node;
  Store.close store;
  (* kill -9 equivalent: a fresh process over the same directory must
     come back fenced, not as a write-accepting stale primary *)
  let store2, service2, node2 = open_node () in
  check_refused "restarted fenced ex-primary" (mutate service2 "C");
  (match Node.promote node2 ~epoch:6 with
   | Wire.Ok _ -> ()
   | r -> Alcotest.failf "re-promotion refused: %s" (string_of_reply r));
  (match mutate service2 "D" with
   | Wire.Ok _ -> ()
   | r ->
     Alcotest.failf "re-promoted primary still refuses writes: %s"
       (string_of_reply r));
  Alcotest.(check (option int)) "fence marker cleared by promotion" None
    (Node.load_fenced dir);
  Node.stop node2;
  Store.close store2;
  Harness.rm_rf dir

(* A stale promotion must be refused without severing the replica's
   live subscription — otherwise two racing [promote_best] calls leave
   the loser silently unreplicated forever. *)
let test_stale_promotion_keeps_subscriber () =
  let dir = fresh_dir () in
  match Store.open_dir ~registry:(registry ()) dir with
  | Result.Error e -> Alcotest.failf "open_dir: %s" e
  | Result.Ok (store, _) ->
    let service = Service.create ~registry:(registry ()) () in
    Service.attach_store service store;
    let node =
      Node.create ~registry:(registry ()) ~service ~store ~endpoint:""
        ~members:[]
        ~role:(Node.Replica_of "unix:/tmp/obda-nowhere.sock")
        ()
    in
    Alcotest.(check bool) "replica starts with a subscriber" true
      (node.Node.sub <> None);
    (match Node.promote node ~epoch:0 with
     | Wire.Err _ -> ()
     | r -> Alcotest.failf "stale promotion accepted: %s" (string_of_reply r));
    Alcotest.(check bool) "subscriber survives the stale promotion" true
      (node.Node.sub <> None);
    (match
       Service.handle service
         (Wire.Load { session = "s"; kind = Wire.K_tbox; payload = [ "concept A" ] })
     with
     | Wire.Err _ -> ()
     | r ->
       Alcotest.failf "node lost its replica role: %s" (string_of_reply r));
    (* a genuine promotion severs the subscription and flips the role *)
    (match Node.promote node ~epoch:1 with
     | Wire.Ok _ -> ()
     | r -> Alcotest.failf "promotion refused: %s" (string_of_reply r));
    Alcotest.(check bool) "subscriber severed by the real promotion" true
      (node.Node.sub = None);
    (match
       Service.handle service
         (Wire.Load { session = "s"; kind = Wire.K_tbox; payload = [ "concept A" ] })
     with
     | Wire.Ok _ -> ()
     | r ->
       Alcotest.failf "promoted node refuses writes: %s" (string_of_reply r));
    Node.stop node;
    Store.close store;
    Harness.rm_rf dir

(* a canned wire member: answers HELLO / REPL STATUS / REPL PROMOTE
   from fixed strings — just enough protocol for [probe_endpoint] and
   [promote_best] to talk to *)
let fake_member ~sock ~status_line ~accept_promote =
  let srv = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind srv (Unix.ADDR_UNIX sock);
  Unix.listen srv 8;
  let stop = ref false in
  let promoted_at = ref None in
  let serve_conn fd =
    let reader = Durable.Io.reader fd in
    let send lines =
      try
        Durable.Io.write_string fd
          (String.concat "" (List.map (fun l -> l ^ "\n") lines))
      with Unix.Unix_error _ -> ()
    in
    let rec go () =
      match Durable.Io.read_line reader ~max_line:4096 with
      | None -> ()
      | Some line ->
        (match String.split_on_char ' ' line with
         | "HELLO" :: _ -> send [ "OK 1"; "v3 bulk repl" ]
         | [ "REPL"; "STATUS" ] -> send [ "OK 1"; status_line ]
         | [ "REPL"; "PROMOTE"; e ] ->
           if accept_promote then begin
             promoted_at := int_of_string_opt e;
             send [ "OK 1"; Printf.sprintf "primary epoch %s fence 0" e ]
           end
           else send [ "ERR promotion refused" ]
         | _ -> send [ "ERR unknown verb" ]);
        go ()
    in
    go ();
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let th =
    Thread.create
      (fun () ->
        while not !stop do
          match Unix.accept srv with
          | exception Unix.Unix_error _ -> ()
          | fd, _ -> serve_conn fd
        done)
      ()
  in
  let shutdown () =
    stop := true;
    (* wake the blocked accept with a throwaway dial *)
    (match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
     | exception Unix.Unix_error _ -> ()
     | fd ->
       (try Unix.connect fd (Unix.ADDR_UNIX sock) with Unix.Unix_error _ -> ());
       (try Unix.close fd with Unix.Unix_error _ -> ()));
    Thread.join th;
    try Unix.close srv with Unix.Unix_error _ -> ()
  in
  (shutdown, promoted_at)

(* A live fenced ex-primary advertises role=primary and typically holds
   the highest fence (its divergent unacked WAL suffix) — [promote_best]
   must skip it, while its epoch still raises the promotion epoch. *)
let test_promote_best_skips_fenced () =
  let scratch = fresh_dir () in
  Fun.protect ~finally:(fun () -> Harness.rm_rf scratch) @@ fun () ->
  let f_sock = Filename.concat scratch "f.sock" in
  let r_sock = Filename.concat scratch "r.sock" in
  let shutdown_f, promoted_f =
    fake_member ~sock:f_sock ~accept_promote:false
      ~status_line:
        "role=primary epoch=7 fence=99 primary=- subscribers=0 acked=-1 \
         fenced=7"
  in
  let shutdown_r, promoted_r =
    fake_member ~sock:r_sock ~accept_promote:true
      ~status_line:"role=replica epoch=7 fence=5 primary=-"
  in
  Fun.protect
    ~finally:(fun () ->
      shutdown_f ();
      shutdown_r ())
    (fun () ->
      let f_ep = "unix:" ^ f_sock and r_ep = "unix:" ^ r_sock in
      Alcotest.(check bool) "probe parses fenced=" true
        (Client.probe_endpoint f_ep).Client.es_fenced;
      Alcotest.(check bool) "unfenced member probes clean" false
        (Client.probe_endpoint r_ep).Client.es_fenced;
      (* a fenced member alone is not promotable *)
      (match Node.promote_best [ f_ep ] with
       | Result.Error m ->
         Alcotest.(check bool) "refusal names the fence" true
           (let marker = "unfenced" in
            let lm = String.length marker and l = String.length m in
            let rec scan i =
              i + lm <= l && (String.sub m i lm = marker || scan (i + 1))
            in
            scan 0)
       | Result.Ok (ep, _) ->
         Alcotest.failf "promoted a fenced ex-primary: %s" ep);
      (* with a replica present, the replica wins despite its lower
         fence, at an epoch above the fenced member's *)
      (match Node.promote_best [ f_ep; r_ep ] with
       | Result.Error e -> Alcotest.failf "promotion failed: %s" e
       | Result.Ok (ep, epoch) ->
         Alcotest.(check string) "replica chosen over fenced ex-primary" r_ep
           ep;
         Alcotest.(check int) "promotion epoch beats the fenced one" 8 epoch);
      Alcotest.(check (option int)) "replica got REPL PROMOTE" (Some 8)
        !promoted_r;
      Alcotest.(check (option int)) "fenced member was never promoted" None
        !promoted_f)

let test_replica_read_only () =
  let s = Service.create ~registry:(registry ()) () in
  Service.set_role s (Service.Replica { primary = "unix:/tmp/p.sock" });
  (match
     Service.handle s
       (Wire.Load { session = "s"; kind = Wire.K_tbox; payload = [ "concept A" ] })
   with
   | Wire.Err m ->
     let p = Service.read_only_prefix in
     Alcotest.(check string) "refusal prefix" p
       (String.sub m 0 (String.length p));
     Alcotest.(check bool) "refusal carries the primary hint" true
       (let marker = "primary is unix:/tmp/p.sock" in
        let lm = String.length marker and l = String.length m in
        let rec scan i = i + lm <= l && (String.sub m i lm = marker || scan (i + 1)) in
        scan 0)
   | _ -> Alcotest.fail "replica accepted a mutation");
  (* reads are not gated: the role check covers mutations only *)
  match Service.handle s Wire.Metrics with
  | Wire.Ok _ -> ()
  | Wire.Err e -> Alcotest.failf "replica refused a read: %s" e
  | Wire.Busy -> Alcotest.fail "replica busy on a read"

(* ---------------- fork property: promoted ≡ acked prefix ------------- *)

let repl_status ep =
  match Client.connect ep with
  | Result.Error e -> Result.Error e
  | Result.Ok conn ->
    Fun.protect
      ~finally:(fun () -> Client.close conn)
      (fun () ->
        match Client.hello ~version:3 conn with
        | Result.Error e -> Result.Error e
        | Result.Ok _ -> (
          match Client.ok_payload (Client.request conn Wire.Repl_status) with
          | Result.Error e -> Result.Error e
          | Result.Ok [ line ] ->
            Result.Ok
              (String.split_on_char ' ' line
              |> List.filter_map (fun tok ->
                     match String.index_opt tok '=' with
                     | None -> None
                     | Some i ->
                       Some
                         ( String.sub tok 0 i,
                           String.sub tok (i + 1) (String.length tok - i - 1)
                         )))
          | Result.Ok _ -> Result.Error "malformed STATUS reply"))

let wait_subscribers ep n ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let sub =
      match repl_status ep with
      | Result.Ok kv ->
        (match List.assoc_opt "subscribers" kv with
         | Some s -> int_of_string_opt s |> Option.value ~default:0
         | None -> 0)
      | Result.Error _ -> 0
    in
    if sub >= n then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

(* One full round against real server processes: spawn a primary and
   one replica, wait for the subscription (the semi-sync barrier only
   covers writes made while a subscriber is attached), drive a random
   script, then kill -9 the primary — either from outside between
   acknowledged writes or via an armed [repl.send.record] torn-frame
   failpoint that dies mid-stream.  Promote the replica and require it
   to answer every probe exactly as an in-process replay of the
   acknowledged prefix does (one in-flight write of tolerance, for the
   ack racing the kill). *)
let failover_serves_acked_prefix seed =
  let rng = Random.State.make [| seed |] in
  let scratch = fresh_dir () in
  Fun.protect ~finally:(fun () -> Harness.rm_rf scratch) @@ fun () ->
  let sock n = Filename.concat scratch (n ^ ".sock") in
  let dir n = Filename.concat scratch n in
  let eps = [ "unix:" ^ sock "p"; "unix:" ^ sock "r" ] in
  let p_ep = List.nth eps 0 and r_ep = List.nth eps 1 in
  let p =
    Harness.spawn ~exe:server_exe ~sock:(sock "p") ~data_dir:(dir "p")
      ~cluster:eps ()
  in
  let r =
    Harness.spawn ~exe:server_exe ~sock:(sock "r") ~data_dir:(dir "r")
      ~replica_of:p_ep ~cluster:eps ()
  in
  let cleanup () =
    Harness.kill_dead p;
    Harness.kill_dead r
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  Client.close (Harness.wait_listening p);
  Client.close (Harness.wait_listening r);
  if not (wait_subscribers p_ep 1 ~timeout:10.0) then
    failwith "replica never subscribed";
  let conn = Harness.wait_listening p in
  let rpc req =
    match Client.request conn req with
    | Result.Ok reply -> reply
    | Result.Error e -> Wire.Err ("transport: " ^ e)
  in
  let session = "s" in
  let tbox =
    Wire.Load
      {
        session;
        kind = Wire.K_tbox;
        payload = [ "concept A"; "concept B"; "role r"; "A [= B" ];
      }
  in
  (match rpc tbox with
   | Wire.Ok _ -> ()
   | reply -> failwith ("TBOX load failed: " ^ string_of_reply reply));
  let acked = ref [ tbox ] and in_flight = ref None in
  let n = 4 + Random.State.int rng 5 in
  let kill_at = Random.State.int rng n in
  let torn = Random.State.bool rng in
  if torn then begin
    (* arm AFTER the TBOX so the skip count lines up with the script:
       the (kill_at+1)-th record send tears mid-frame and the primary
       dies with the simulated kill -9 *)
    match
      rpc
        (Wire.Fail
           {
             name = "repl.send.record";
             spec = Printf.sprintf "partial:7@%d" kill_at;
           })
    with
    | Wire.Ok _ -> ()
    | reply -> failwith ("FAIL verb refused: " ^ string_of_reply reply)
  end;
  (let stop = ref false in
   let i = ref 0 in
   while (not !stop) && !i < n do
     if (not torn) && !i = kill_at then begin
       Harness.kill_dead p;
       stop := true
     end
     else begin
       let payload = [ Printf.sprintf "A(w%d_%d)" seed !i ] in
       let req = Wire.Load { session; kind = Wire.K_abox; payload } in
       in_flight := Some req;
       (match rpc req with
        | Wire.Ok _ ->
          acked := !acked @ [ req ];
          in_flight := None
        | Wire.Err _ ->
          (* transport death: the torn frame killed the primary *)
          stop := true
        | Wire.Busy -> stop := true);
       incr i
     end
   done);
  Client.close conn;
  Harness.kill_dead p;
  (* promote the survivor and compare against the acked-prefix oracle *)
  (match Node.promote_best [ r_ep ] with
   | Result.Ok _ -> ()
   | Result.Error e -> failwith ("promotion failed: " ^ e));
  if not (Harness.wait_role ~timeout:10.0 r_ep "primary") then
    failwith "promoted replica never became primary";
  let replay reqs =
    let s = Service.create ~registry:(registry ()) () in
    List.iter (fun req -> ignore (Service.handle s req)) reqs;
    s
  in
  let oracle = replay !acked in
  let oracle_next = Option.map (fun req -> replay (!acked @ [ req ])) !in_flight in
  let conn2 = Harness.wait_listening r in
  let ok =
    Fun.protect ~finally:(fun () -> Client.close conn2) @@ fun () ->
    List.for_all
      (fun probe ->
        let wire =
          match Client.request conn2 probe with
          | Result.Ok reply -> string_of_reply reply
          | Result.Error e -> "TRANSPORT " ^ e
        in
        let local = string_of_reply (Service.handle oracle probe) in
        let next =
          Option.map
            (fun o -> string_of_reply (Service.handle o probe))
            oracle_next
        in
        wire = local || Some wire = next)
      [
        Wire.Ask { session; query = Wire.Inline "x <- A(x)" };
        Wire.Ask { session; query = Wire.Inline "x <- B(x)" };
        Wire.Ask { session; query = Wire.Inline "x, y <- r(x, y)" };
      ]
  in
  ok

let prop_failover_acked_prefix =
  QCheck.Test.make ~count:4 ~name:"kill -9 primary -> promoted = acked prefix"
    QCheck.(int_bound 1_000_000)
    failover_serves_acked_prefix

(* ------------------------------- suite ------------------------------- *)

let () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Alcotest.run "cluster"
    [
      ( "frames",
        [
          Alcotest.test_case "codec round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "malformed frames rejected" `Quick
            test_malformed_frames;
          Alcotest.test_case "malformed REPL requests rejected" `Quick
            test_malformed_repl_requests;
        ] );
      ( "fencing",
        [
          Alcotest.test_case "stale promotion epochs refused" `Quick
            test_stale_epoch_promotion;
          Alcotest.test_case "hub fenced by higher-epoch subscriber" `Quick
            test_hub_fenced_by_higher_epoch;
          Alcotest.test_case "fence persists; re-promotion clears it" `Quick
            test_fence_persists_and_repromotion_clears;
          Alcotest.test_case "stale promotion keeps the subscriber" `Quick
            test_stale_promotion_keeps_subscriber;
          Alcotest.test_case "promote_best skips a fenced ex-primary" `Quick
            test_promote_best_skips_fenced;
          Alcotest.test_case "replica refuses mutations" `Quick
            test_replica_read_only;
        ] );
      ( "failover",
        [ QCheck_alcotest.to_alcotest ~long:false prop_failover_acked_prefix ]
      );
    ]
