(* Crash-safe durability: CRC framing, failpoint specs, WAL scan rules
   (torn tail truncated, mid-log corruption refused), the store's
   append/snapshot/recover cycle — and the property the whole subsystem
   exists for: after ANY byte-level truncation of the WAL (and any
   single flipped byte), recovery restores exactly a prefix of the
   acknowledged mutations, byte-identical in its answers to a
   never-crashed oracle replaying that prefix — or fails loudly. *)

module Crc32 = Durable.Crc32
module Failpoint = Durable.Failpoint
module Io = Durable.Io
module Wal = Durable.Wal
module Store = Durable.Store
module Wire = Server.Wire
module Service = Server.Service

(* fresh scratch directories; recursive cleanup at the end is not worth
   the risk — the files are tiny and temp-dir scoped *)
let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "obda_durable_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  dir

let registry () = Obs.Registry.create ()

let open_ok ?snapshot_every ?(group_commit = false) dir =
  match Store.open_dir ~registry:(registry ()) ?snapshot_every ~group_commit dir with
  | Result.Ok pair -> pair
  | Result.Error e -> Alcotest.fail e

(* ------------------------------- CRC-32 ------------------------------ *)

let test_crc_known_answer () =
  (* the IEEE 802.3 check value *)
  Alcotest.(check int) "123456789" 0xCBF43926 (Crc32.digest_string "123456789");
  Alcotest.(check int) "empty" 0 (Crc32.digest_string "")

let test_crc_incremental () =
  let s = "the quick brown fox jumps over the lazy dog" in
  let b = Bytes.of_string s in
  let once = Crc32.digest_bytes b ~pos:0 ~len:(Bytes.length b) in
  let split = Crc32.update (Crc32.update 0 b ~pos:0 ~len:10) b ~pos:10 ~len:(Bytes.length b - 10) in
  Alcotest.(check int) "update composes" once split

(* ----------------------------- failpoints ---------------------------- *)

let test_failpoint_specs () =
  let ok spec expect =
    match Failpoint.parse_spec spec with
    | Result.Ok got ->
      Alcotest.(check string)
        spec expect
        (match got with
         | None -> "off"
         | Some (a, after) ->
           Printf.sprintf "%s@%d" (Failpoint.string_of_action a) after)
    | Result.Error e -> Alcotest.fail (spec ^ ": " ^ e)
  in
  ok "error" "error@0";
  ok "crash" "crash@0";
  ok "off" "off";
  ok "partial:7" "partial:7@0";
  ok "delay:0.5" "delay:0.5@0";
  ok "error@3" "error@3";
  ok "partial:0@12" "partial:0@12";
  List.iter
    (fun bad ->
      match Failpoint.parse_spec bad with
      | Result.Ok _ -> Alcotest.fail (bad ^ " must be rejected")
      | Result.Error _ -> ())
    [ "boom"; "partial:"; "partial:-1"; "delay:x"; "error@"; "error@-2"; "" ]

let test_failpoint_fire_and_skip () =
  Failpoint.disarm_all ();
  (* arming rejects unknown site names loudly; synthetic test sites must
     be registered first *)
  Failpoint.register_site "t.x";
  Failpoint.register_site "t.w";
  Fun.protect ~finally:Failpoint.disarm_all @@ fun () ->
  Alcotest.(check bool) "unarmed proceeds" true (Failpoint.hit "t.x" = None);
  (match Failpoint.arm_spec "t.unknown" "error" with
   | Result.Ok () -> Alcotest.fail "unknown site must be rejected"
   | Result.Error _ -> ());
  Alcotest.check_raises "arm of unknown site raises"
    (Failpoint.Unknown_site "t.unknown") (fun () ->
      Failpoint.arm "t.unknown" (Failpoint.Inject_error));
  (* error with a skip-count of 2: two free passes, then every hit raises *)
  (match Failpoint.arm_spec "t.x" "error@2" with
   | Result.Ok () -> ()
   | Result.Error e -> Alcotest.fail e);
  Failpoint.check "t.x";
  Failpoint.check "t.x";
  Alcotest.check_raises "third hit" (Failpoint.Injected "t.x") (fun () ->
      Failpoint.check "t.x");
  Alcotest.check_raises "stays armed" (Failpoint.Injected "t.x") (fun () ->
      Failpoint.check "t.x");
  (match Failpoint.arm_spec "t.x" "off" with
   | Result.Ok () -> ()
   | Result.Error e -> Alcotest.fail e);
  Failpoint.check "t.x";
  (* partial hands its byte budget to the write site *)
  Failpoint.arm "t.w" (Failpoint.Partial 5);
  Alcotest.(check bool) "partial budget" true (Failpoint.hit "t.w" = Some 5)

let test_failpoint_env () =
  Failpoint.disarm_all ();
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "OBDA_FAILPOINTS" "";
      Failpoint.disarm_all ())
  @@ fun () ->
  Failpoint.register_site "a.b";
  Failpoint.register_site "c.d";
  Unix.putenv "OBDA_FAILPOINTS" "a.b=error@1, c.d=delay:0.01";
  (match Failpoint.arm_from_env () with
   | Result.Ok () -> ()
   | Result.Error e -> Alcotest.fail e);
  Alcotest.(check (list (pair string string)))
    "armed list"
    [ ("a.b", "error"); ("c.d", "delay:0.01") ]
    (Failpoint.armed_list ());
  Unix.putenv "OBDA_FAILPOINTS" "nonsense";
  match Failpoint.arm_from_env () with
  | Result.Ok () -> Alcotest.fail "malformed env must be rejected"
  | Result.Error _ -> ()

(* ------------------------------ WAL scan ----------------------------- *)

let wal_bytes payloads =
  let buf = Buffer.create 256 in
  List.iteri
    (fun i p -> Buffer.add_bytes buf (Wal.encode ~seq:(i + 1) p))
    payloads;
  Buffer.to_bytes buf

(* scanned entries are exactly the first [k] payloads, for some [k] *)
let prefix_length scanned payloads =
  let rec go k = function
    | [], _ -> Some k
    | e :: es, p :: ps when e.Wal.payload = p && e.Wal.seq = k + 1 ->
      go (k + 1) (es, ps)
    | _ -> None
  in
  go 0 (scanned, payloads)

let test_wal_roundtrip () =
  let payloads = [ "alpha"; ""; "payload\nwith\nnewlines"; String.make 1000 'x' ] in
  let { Wal.entries; valid_bytes; torn_bytes } = Wal.scan (wal_bytes payloads) in
  Alcotest.(check (option int))
    "all entries, in order" (Some 4)
    (prefix_length entries payloads);
  Alcotest.(check int) "no torn tail" 0 torn_bytes;
  Alcotest.(check int)
    "every byte accounted for"
    (Bytes.length (wal_bytes payloads))
    valid_bytes

(* every possible truncation point: the scan yields an exact record
   prefix and never raises — a torn tail is a crash artifact, not
   corruption *)
let test_wal_truncation_exhaustive () =
  let payloads = [ "one"; "two-longer"; ""; "four" ] in
  let whole = wal_bytes payloads in
  for cut = 0 to Bytes.length whole do
    let { Wal.entries; valid_bytes; torn_bytes } =
      Wal.scan (Bytes.sub whole 0 cut)
    in
    (match prefix_length entries payloads with
     | Some _ -> ()
     | None -> Alcotest.failf "cut at %d: not a record prefix" cut);
    Alcotest.(check int)
      (Printf.sprintf "cut at %d accounted" cut)
      cut (valid_bytes + torn_bytes)
  done

let test_wal_midlog_corruption_refused () =
  let payloads = [ "aaaa"; "bbbb"; "cccc" ] in
  let whole = wal_bytes payloads in
  (* flip a payload byte of the FIRST record: framed bytes follow, so
     this is rot under an fsync'd prefix and must refuse *)
  Bytes.set whole 16 'Z';
  (match Wal.scan whole with
   | exception Wal.Corrupt _ -> ()
   | _ -> Alcotest.fail "mid-log corruption must raise");
  (* the same damage in the LAST record is indistinguishable from a torn
     append: truncate, keep the good prefix *)
  let whole = wal_bytes payloads in
  Bytes.set whole (Bytes.length whole - 1) 'Z';
  let { Wal.entries; torn_bytes; _ } = Wal.scan whole in
  Alcotest.(check (option int))
    "good prefix kept" (Some 2)
    (prefix_length entries payloads);
  Alcotest.(check bool) "tail dropped" true (torn_bytes > 0)

let prop_wal_flip_prefix_or_refuse =
  QCheck.Test.make ~count:300 ~name:"flipped byte: record prefix or Corrupt"
    QCheck.(triple (small_list small_string) small_nat (int_bound 7))
    (fun (payloads, pos, bit) ->
      QCheck.assume (payloads <> []);
      let whole = wal_bytes payloads in
      let pos = pos mod Bytes.length whole in
      Bytes.set whole pos
        (Char.chr (Char.code (Bytes.get whole pos) lxor (1 lsl bit)));
      match Wal.scan whole with
      | exception Wal.Corrupt _ -> true (* loud refusal *)
      | { Wal.entries; _ } -> prefix_length entries payloads <> None)

(* ------------------------------- store ------------------------------- *)

let m_load ?(session = "s") kind payload =
  Store.Load { session; kind; payload }

let m_prep name query = Store.Prepare { session = "s"; name; query }

let muts_equal = Alcotest.testable (fun fmt m ->
    Format.pp_print_string fmt
      (match m with
       | Store.Load { session; kind; payload } ->
         Printf.sprintf "L %s %s [%s]" session kind (String.concat "; " payload)
       | Store.Prepare { session; name; query } ->
         Printf.sprintf "P %s %s %s" session name query))
    ( = )

let test_store_roundtrip () =
  let dir = fresh_dir () in
  let muts =
    [
      m_load "TBOX" [ "concept A"; "concept B"; "A [= B" ];
      m_load "FACTS" [ "t(\"a\")" ];
      m_prep "q" "x <- B(x)";
    ]
  in
  let store, r0 = open_ok dir in
  Alcotest.(check (list muts_equal)) "fresh dir is empty" [] r0.Store.mutations;
  List.iter (fun m -> ignore (Store.append store m)) muts;
  Store.close store;
  let store, r = open_ok dir in
  Alcotest.(check (list muts_equal)) "replayed in order" muts r.Store.mutations;
  Alcotest.(check int) "no truncation" 0 r.Store.truncated_bytes;
  Store.close store

let test_store_snapshot_fence () =
  let dir = fresh_dir () in
  let store, _ = open_ok dir in
  let before = [ m_load "FACTS" [ "t(\"a\")" ]; m_load "FACTS" [ "t(\"b\")" ] ] in
  List.iter (fun m -> ignore (Store.append store m)) before;
  (* the compacted state replaces the WAL prefix; later appends live in
     the (reset) WAL and replay after it *)
  let compact = [ m_load "FACTS" [ "t(\"a\")"; "t(\"b\")" ] ] in
  Store.write_snapshot store compact;
  let after = m_load "FACTS" [ "t(\"c\")" ] in
  ignore (Store.append store after);
  Store.close store;
  let store, r = open_ok dir in
  Alcotest.(check (list muts_equal))
    "snapshot then wal tail" (compact @ [ after ]) r.Store.mutations;
  Alcotest.(check int) "snapshot records" 1 r.Store.snapshot_records;
  Alcotest.(check int) "wal records" 1 r.Store.wal_records;
  Store.close store

let test_store_failed_append_repair () =
  Failpoint.disarm_all ();
  Fun.protect ~finally:Failpoint.disarm_all @@ fun () ->
  let dir = fresh_dir () in
  let store, _ = open_ok dir in
  let m1 = m_load "FACTS" [ "t(\"1\")" ] in
  let m3 = m_load "FACTS" [ "t(\"3\")" ] in
  ignore (Store.append store m1);
  (* the record hits the file, then the pre-fsync failpoint fires: the
     append reports failure, so the mutation was never acknowledged and
     must not resurface after the repair *)
  Failpoint.arm "wal.append.before_fsync" Failpoint.Inject_error;
  (match Store.append store (m_load "FACTS" [ "t(\"2\")" ]) with
   | (_ : int) -> Alcotest.fail "append must surface the injected error"
   | exception Failpoint.Injected _ -> ());
  Failpoint.disarm "wal.append.before_fsync";
  ignore (Store.append store m3);
  Store.close store;
  let store, r = open_ok dir in
  Alcotest.(check (list muts_equal))
    "failed append leaves no trace" [ m1; m3 ] r.Store.mutations;
  Store.close store

(* a real torn write: fork, tear the append 5 bytes in via partial:5
   (the child _exit(137)s like kill -9), recover in the parent *)
let test_store_partial_write_crash () =
  let dir = fresh_dir () in
  let m1 = m_load "FACTS" [ "t(\"committed\")" ] in
  let store, _ = open_ok dir in
  ignore (Store.append store m1);
  Store.close store;
  (match Unix.fork () with
   | 0 ->
     Failpoint.arm "wal.append.write" (Failpoint.Partial 5);
     (match Store.open_dir ~registry:(registry ()) dir with
      | Result.Ok (store, _) ->
        (try ignore (Store.append store (m_load "FACTS" [ "t(\"torn\")" ]))
         with _ -> ());
        (* partial:5 must have crashed the process before this *)
        Unix._exit 1
      | Result.Error _ -> Unix._exit 2)
   | pid ->
     let _, status = Unix.waitpid [] pid in
     Alcotest.(check bool)
       "child died at the failpoint (exit 137)" true
       (status = Unix.WEXITED 137));
  let store, r = open_ok dir in
  Alcotest.(check (list muts_equal))
    "acknowledged prefix only" [ m1 ] r.Store.mutations;
  Alcotest.(check int) "5 torn bytes dropped" 5 r.Store.truncated_bytes;
  (* the truncation is physical: reopening again finds a clean log *)
  ignore (Store.append store (m_load "FACTS" [ "t(\"after\")" ]));
  Store.close store;
  let store, r = open_ok dir in
  Alcotest.(check int) "clean after repair" 0 r.Store.truncated_bytes;
  Alcotest.(check int) "two records" 2 (List.length r.Store.mutations);
  Store.close store

(* --------------------------- group commit ---------------------------- *)

let test_store_group_concurrent_roundtrip () =
  let dir = fresh_dir () in
  let store, _ = open_ok ~group_commit:true dir in
  let sessions = 4 and per_session = 25 in
  let writer i () =
    for j = 0 to per_session - 1 do
      ignore
        (Store.append store
           (m_load ~session:(Printf.sprintf "s%d" i) "FACTS"
              [ Printf.sprintf "t(\"w%d_%d\")" i j ]))
    done
  in
  let threads = List.init sessions (fun i -> Thread.create (writer i) ()) in
  List.iter Thread.join threads;
  Store.close store;
  let store, r = open_ok dir in
  Alcotest.(check int) "every append recovered"
    (sessions * per_session)
    (List.length r.Store.mutations);
  Alcotest.(check int) "no truncation" 0 r.Store.truncated_bytes;
  (* per-writer order is commit order: each writer's own records must
     come back in its program order, whatever the interleaving *)
  List.iteri
    (fun i _ ->
      let mine =
        List.filter_map
          (function
            | Store.Load { session; payload = [ p ]; _ }
              when session = Printf.sprintf "s%d" i -> Some p
            | _ -> None)
          r.Store.mutations
      in
      Alcotest.(check (list string))
        (Printf.sprintf "writer %d in order" i)
        (List.init per_session (fun j -> Printf.sprintf "t(\"w%d_%d\")" i j))
        mine)
    (List.init sessions Fun.id);
  Store.close store

let test_store_group_failed_append_repair () =
  (* the group path must keep the single-append failure contract: an
     injected error fails the batch, nothing of it resurfaces, and the
     committer keeps serving later appends *)
  Failpoint.disarm_all ();
  Fun.protect ~finally:Failpoint.disarm_all @@ fun () ->
  let dir = fresh_dir () in
  let store, _ = open_ok ~group_commit:true dir in
  let m1 = m_load "FACTS" [ "t(\"1\")" ] in
  let m3 = m_load "FACTS" [ "t(\"3\")" ] in
  ignore (Store.append store m1);
  Failpoint.arm "wal.append.before_fsync" Failpoint.Inject_error;
  (match Store.append store (m_load "FACTS" [ "t(\"2\")" ]) with
   | (_ : int) -> Alcotest.fail "append must surface the injected error"
   | exception Failpoint.Injected _ -> ());
  Failpoint.disarm "wal.append.before_fsync";
  ignore (Store.append store m3);
  Store.close store;
  let store, r = open_ok dir in
  Alcotest.(check (list muts_equal))
    "failed batch leaves no trace" [ m1; m3 ] r.Store.mutations;
  Alcotest.(check int) "no truncation on reopen" 0 r.Store.truncated_bytes;
  Store.close store

(* --------------------- service-level crash property ------------------ *)

(* The end-to-end contract: apply a random mutation sequence through a
   durable service, damage the WAL (truncate anywhere / flip one byte),
   recover, and the recovered service answers byte-identically to a
   never-crashed oracle that applied exactly the surviving acknowledged
   prefix — or recovery refuses loudly. *)

let request_of_mutation = function
  | Store.Load { session; kind; payload } ->
    let kind =
      match Wire.kind_of_string kind with
      | Some k -> k
      | None -> Alcotest.fail ("bad kind " ^ kind)
    in
    Wire.Load { session; kind; payload }
  | Store.Prepare { session; name; query } ->
    Wire.Prepare { session; name; query }

let apply_all service muts =
  List.iter
    (fun m ->
      match Service.handle service (request_of_mutation m) with
      | Wire.Ok _ -> ()
      | Wire.Err e -> Alcotest.fail ("apply: " ^ e)
      | Wire.Busy -> Alcotest.fail "apply: busy")
    muts

let probe_queries =
  [ "x <- B(x)"; "x <- A(x)"; "x <- t(x)"; "x, y <- r(x, y)" ]

let probe service =
  List.map
    (fun q ->
      Service.handle service (Wire.Ask { session = "s"; query = Wire.Inline q }))
    probe_queries

let gen_mutations rng =
  let n = 3 + Random.State.int rng 12 in
  List.init n (fun i ->
      match Random.State.int rng 6 with
      | 0 ->
        m_load "TBOX" [ "concept A"; "concept B"; "role r"; "A [= B" ]
      | 1 ->
        m_load "TBOX"
          [ "concept A"; "concept B"; "role r"; "A [= B"; "exists r [= A" ]
      | 2 | 3 ->
        m_load "FACTS"
          [ Printf.sprintf "t(\"c%d\")" (Random.State.int rng 5) ]
      | 4 ->
        m_load "FACTS"
          [
            Printf.sprintf "r(\"c%d\", \"c%d\")" (Random.State.int rng 4) i;
            Printf.sprintf "c$A(\"c%d\")" (Random.State.int rng 4);
          ]
      | _ -> m_prep (Printf.sprintf "q%d" (Random.State.int rng 3)) "x <- B(x)")

let recovers_exact_prefix ~flip seed =
  let rng = Random.State.make [| seed |] in
  let muts = gen_mutations rng in
  let dir = fresh_dir () in
  (* the durable run: every mutation acknowledged is in the WAL *)
  let store, _ = open_ok dir in
  let service = Service.create ~config:{ Service.Config.default with lru = 8 } ~registry:(registry ()) () in
  Service.attach_store service store;
  apply_all service muts;
  Store.close store;
  (* damage *)
  let wal = Filename.concat dir "wal" in
  let content =
    let fd = Unix.openfile wal [ Unix.O_RDONLY ] 0 in
    Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Io.read_all fd)
  in
  let damaged =
    if flip then begin
      let b = Bytes.copy content in
      let pos = Random.State.int rng (Bytes.length b) in
      Bytes.set b pos
        (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl Random.State.int rng 8)));
      b
    end
    else Bytes.sub content 0 (Random.State.int rng (Bytes.length content + 1))
  in
  let fd = Unix.openfile wal [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () -> Io.write_all fd damaged ~pos:0 ~len:(Bytes.length damaged));
  (* recover *)
  match Store.open_dir ~registry:(registry ()) dir with
  | Result.Error _ -> flip  (* loud refusal: only corruption may do this *)
  | Result.Ok (store, r) ->
    Store.close store;
    let k = List.length r.Store.mutations in
    let rec take n = function
      | x :: rest when n > 0 -> x :: take (n - 1) rest
      | _ -> []
    in
    if r.Store.mutations <> take k muts then false
    else begin
      let recovered = Service.create ~config:{ Service.Config.default with lru = 8 } ~registry:(registry ()) () in
      (match Service.restore recovered r.Store.mutations with
       | Result.Ok applied when applied = k -> ()
       | _ -> Alcotest.fail "restore failed on a valid prefix");
      let oracle = Service.create ~config:{ Service.Config.default with lru = 8 } ~registry:(registry ()) () in
      apply_all oracle (take k muts);
      probe recovered = probe oracle
    end

let prop_truncated_wal_recovers =
  QCheck.Test.make ~count:60 ~name:"truncated WAL -> exact acked prefix"
    QCheck.(int_bound 1_000_000)
    (fun seed -> recovers_exact_prefix ~flip:false seed)

let prop_flipped_wal_recovers_or_refuses =
  QCheck.Test.make ~count:60 ~name:"flipped byte -> exact prefix or refusal"
    QCheck.(int_bound 1_000_000)
    (fun seed -> recovers_exact_prefix ~flip:true seed)

(* ---------------- kill -9 in the middle of a BULK stream ------------- *)

(* The streaming-ingestion contract: one chunk = one atomic WAL record.
   A process killed dead mid-stream (straight SIGKILL between chunks,
   or a torn write inside a chunk's append) must recover to exactly the
   acknowledged chunk prefix — the torn chunk is truncated away, and an
   acknowledged chunk can never be lost because acknowledgement follows
   the fsync. *)
let kill9_during_bulk seed =
  let rng = Random.State.make [| seed |] in
  let n_chunks = 2 + Random.State.int rng 7 in
  let chunks =
    List.init n_chunks (fun i ->
        List.init
          (1 + Random.State.int rng 2)
          (fun j -> Printf.sprintf "t(\"bulk%d_%d\")" i j))
  in
  let kill_at = Random.State.int rng n_chunks in
  let torn = Random.State.bool rng in
  let dir = fresh_dir () in
  let tbox = m_load "TBOX" [ "concept A"; "role r" ] in
  let r_pipe, w_pipe = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
    Unix.close r_pipe;
    (match Store.open_dir ~registry:(registry ()) ~group_commit:true dir with
     | Result.Error _ -> Unix._exit 2
     | Result.Ok (store, _) ->
       let service =
         Service.create ~config:{ Service.Config.default with lru = 8 }
           ~registry:(registry ()) ()
       in
       Service.attach_store service store;
       (match Service.handle service (request_of_mutation tbox) with
        | Wire.Ok _ -> ()
        | _ -> Unix._exit 3);
       List.iteri
         (fun i payload ->
           if i = kill_at then
             if torn then Failpoint.arm "wal.append.write" (Failpoint.Partial 7)
             else Unix.kill (Unix.getpid ()) Sys.sigkill;
           match
             Service.handle service (Wire.Bulk_chunk { session = "s"; payload })
           with
           | Wire.Ok _ -> ignore (Unix.write w_pipe (Bytes.make 1 'a') 0 1)
           | _ -> Unix._exit 4)
         chunks;
       (* the kill always fires before the stream completes *)
       Unix._exit 5)
  | pid ->
    Unix.close w_pipe;
    (* one byte per acknowledged chunk; EOF when the child dies *)
    let acked = ref 0 in
    let buf = Bytes.create 16 in
    let rec drain () =
      match Unix.read r_pipe buf 0 16 with
      | 0 -> ()
      | k ->
        acked := !acked + k;
        drain ()
    in
    drain ();
    Unix.close r_pipe;
    let _, status = Unix.waitpid [] pid in
    let died_hard =
      match status with
      | Unix.WSIGNALED s -> s = Sys.sigkill
      | Unix.WEXITED 137 -> true (* torn write: simulated kill -9 *)
      | _ -> false
    in
    if not died_hard then false
    else begin
      match Store.open_dir ~registry:(registry ()) dir with
      | Result.Error _ -> false (* a kill is not corruption *)
      | Result.Ok (store, r) ->
        Store.close store;
        let rec take n = function
          | x :: rest when n > 0 -> x :: take (n - 1) rest
          | _ -> []
        in
        let expected =
          tbox
          :: List.map
               (fun payload -> m_load "FACTS" payload)
               (take !acked chunks)
        in
        (* exactly the acknowledged prefix: the crash always lands
           before the next chunk's fsync, so nothing unacknowledged can
           have reached the disk whole *)
        r.Store.mutations = expected
    end

let prop_kill9_during_bulk =
  QCheck.Test.make ~count:20 ~name:"kill -9 mid-BULK -> acked chunk prefix"
    QCheck.(int_bound 1_000_000)
    kill9_during_bulk

(* ---------------------- durable service round-trip ------------------- *)

let test_service_recovery_roundtrip () =
  let dir = fresh_dir () in
  let store, _ = open_ok dir in
  let service = Service.create ~config:{ Service.Config.default with lru = 8 } ~registry:(registry ()) () in
  Service.attach_store service store;
  apply_all service
    [
      m_load "TBOX" [ "concept A"; "concept B"; "role r"; "A [= B" ];
      m_load "MAPPINGS" [ "map A(x) <- src(x, y)" ];
      m_load "FACTS" [ "src(\"a\", \"1\")"; "src(\"b\", \"2\")" ];
      m_load "ABOX" [ "r(c, d)" ];
      m_prep "q" "x <- B(x)";
    ];
  let before =
    match Service.handle service (Wire.Ask { session = "s"; query = Wire.Named "q" }) with
    | Wire.Ok lines -> lines
    | _ -> Alcotest.fail "ask before crash"
  in
  Alcotest.(check (list string)) "mapped answers" [ "a"; "b" ] before;
  (* with mappings installed, answers flow only through unfolding — the
     directly inserted ABox row is invisible by engine semantics.  Probe
     the live service so recovery is held to *its* answer, whatever the
     semantics says it is. *)
  let before_abox =
    match
      Service.handle service
        (Wire.Ask { session = "s"; query = Wire.Inline "x, y <- r(x, y)" })
    with
    | Wire.Ok lines -> lines
    | _ -> Alcotest.fail "abox ask before crash"
  in
  Store.close store;
  let store, r = open_ok dir in
  let recovered = Service.create ~config:{ Service.Config.default with lru = 8 } ~registry:(registry ()) () in
  (match Service.restore recovered r.Store.mutations with
   | Result.Ok 5 -> ()
   | Result.Ok n -> Alcotest.failf "replayed %d of 5" n
   | Result.Error e -> Alcotest.fail e);
  Service.attach_store recovered store;
  (match Service.handle recovered (Wire.Ask { session = "s"; query = Wire.Named "q" }) with
   | Wire.Ok lines -> Alcotest.(check (list string)) "prepared query survives" before lines
   | _ -> Alcotest.fail "ask after recovery");
  (match
     Service.handle recovered
       (Wire.Ask { session = "s"; query = Wire.Inline "x, y <- r(x, y)" })
   with
   | Wire.Ok lines ->
     Alcotest.(check (list string)) "abox answer preserved" before_abox lines
   | _ -> Alcotest.fail "abox ask after recovery");
  Store.close store

(* the compacted snapshot replays to the same state the WAL would have *)
let test_service_snapshot_compaction () =
  let dir = fresh_dir () in
  (* snapshot_every 4: the 5-mutation script triggers a snapshot, so
     recovery replays compact records (plus any WAL tail), not history *)
  let store, _ = open_ok ~snapshot_every:4 dir in
  let service = Service.create ~config:{ Service.Config.default with lru = 8 } ~registry:(registry ()) () in
  Service.attach_store service store;
  apply_all service
    [
      m_load "TBOX" [ "concept OldA" ];
      m_load "TBOX" [ "concept A"; "concept B"; "role r"; "A [= B" ];
      m_load "MAPPINGS" [ "map A(x) <- src(x, y)" ];
      m_load "FACTS" [ "src(\"a\", \"1\")" ];
      m_load "ABOX" [ "A(direct)" ];
    ];
  let before =
    match
      Service.handle service
        (Wire.Ask { session = "s"; query = Wire.Inline "x <- B(x)" })
    with
    | Wire.Ok lines -> lines
    | _ -> Alcotest.fail "ask before close"
  in
  Store.close store;
  let store, r = open_ok dir in
  Alcotest.(check bool) "state was compacted" true (r.Store.snapshot_records > 0);
  let recovered = Service.create ~config:{ Service.Config.default with lru = 8 } ~registry:(registry ()) () in
  (match Service.restore recovered r.Store.mutations with
   | Result.Ok _ -> ()
   | Result.Error e -> Alcotest.fail e);
  Service.attach_store recovered store;
  (match
     Service.handle recovered
       (Wire.Ask { session = "s"; query = Wire.Inline "x <- B(x)" })
   with
   | Wire.Ok lines ->
     Alcotest.(check (list string)) "compacted state answers" before lines
   | Wire.Err e -> Alcotest.fail e
   | Wire.Busy -> Alcotest.fail "busy");
  Store.close store

(* a WAL refusal surfaces as ERR and leaves no partial application *)
let test_service_wal_refusal_is_err () =
  Failpoint.disarm_all ();
  Fun.protect ~finally:Failpoint.disarm_all @@ fun () ->
  let dir = fresh_dir () in
  let store, _ = open_ok dir in
  let service = Service.create ~config:{ Service.Config.default with lru = 8 } ~registry:(registry ()) () in
  Service.attach_store service store;
  apply_all service
    [
      m_load "TBOX" [ "concept A"; "concept B"; "A [= B" ];
      m_load "ABOX" [ "A(a)" ];
    ];
  Failpoint.arm "wal.append.before" Failpoint.Inject_error;
  (match
     Service.handle service
       (Wire.Load { session = "s"; kind = Wire.K_abox; payload = [ "A(b)" ] })
   with
   | Wire.Err _ -> ()
   | _ -> Alcotest.fail "refused append must ERR");
  Failpoint.disarm_all ();
  (match
     Service.handle service
       (Wire.Ask { session = "s"; query = Wire.Inline "x <- A(x)" })
   with
   | Wire.Ok lines ->
     Alcotest.(check (list string)) "rejected mutation not applied" [ "a" ] lines
   | _ -> Alcotest.fail "ask");
  Store.close store

(* -------------------------------- suite ------------------------------ *)

let () =
  Alcotest.run "durable"
    [
      ( "crc32",
        [
          Alcotest.test_case "known answer" `Quick test_crc_known_answer;
          Alcotest.test_case "incremental" `Quick test_crc_incremental;
        ] );
      ( "failpoint",
        [
          Alcotest.test_case "spec grammar" `Quick test_failpoint_specs;
          Alcotest.test_case "fire and skip" `Quick test_failpoint_fire_and_skip;
          Alcotest.test_case "env arming" `Quick test_failpoint_env;
        ] );
      ( "wal",
        [
          Alcotest.test_case "roundtrip" `Quick test_wal_roundtrip;
          Alcotest.test_case "truncation exhaustive" `Quick
            test_wal_truncation_exhaustive;
          Alcotest.test_case "mid-log corruption refused" `Quick
            test_wal_midlog_corruption_refused;
          QCheck_alcotest.to_alcotest prop_wal_flip_prefix_or_refuse;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "snapshot fence" `Quick test_store_snapshot_fence;
          Alcotest.test_case "failed append repair" `Quick
            test_store_failed_append_repair;
          Alcotest.test_case "partial write + crash" `Quick
            test_store_partial_write_crash;
          Alcotest.test_case "group commit concurrent roundtrip" `Quick
            test_store_group_concurrent_roundtrip;
          Alcotest.test_case "group commit failed append repair" `Quick
            test_store_group_failed_append_repair;
        ] );
      ( "service-recovery",
        [
          Alcotest.test_case "roundtrip" `Quick test_service_recovery_roundtrip;
          Alcotest.test_case "snapshot compaction" `Quick
            test_service_snapshot_compaction;
          Alcotest.test_case "WAL refusal is ERR" `Quick
            test_service_wal_refusal_is_err;
        ] );
      ( "crash-property",
        [
          QCheck_alcotest.to_alcotest prop_truncated_wal_recovers;
          QCheck_alcotest.to_alcotest prop_flipped_wal_recovers_or_refuses;
          QCheck_alcotest.to_alcotest prop_kill9_during_bulk;
        ] );
    ]
