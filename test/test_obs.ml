(* The observability layer: histogram bucketing and quantile readout,
   counter monotonicity, registry interning, the text exposition — and
   the property that makes the registry safe to thread through the
   server's worker domains: concurrent increments lose no counts. *)

let test_counter_monotonic () =
  let c = Obs.Counter.make () in
  Alcotest.(check int) "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.incr ~by:41 c;
  Alcotest.(check int) "accumulates" 42 (Obs.Counter.value c);
  Obs.Counter.incr ~by:0 c;
  Alcotest.(check int) "by:0 is a no-op" 42 (Obs.Counter.value c);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Obs.Counter.incr: negative increment") (fun () ->
      Obs.Counter.incr ~by:(-1) c)

let test_gauge () =
  let g = Obs.Gauge.make () in
  Obs.Gauge.set g 2.5;
  Obs.Gauge.add g 0.5;
  Alcotest.(check (float 1e-9)) "set + add" 3.0 (Obs.Gauge.value g)

let test_histogram_bucketing () =
  let h = Obs.Histogram.make ~buckets:[| 1.0; 2.0; 5.0 |] () in
  Alcotest.(check (float 0.)) "empty quantile" 0.0 (Obs.Histogram.quantile h 0.5);
  List.iter (Obs.Histogram.observe h) [ 0.5; 1.5; 1.5; 4.0 ];
  let s = Obs.Histogram.summary h in
  Alcotest.(check int) "count" 4 s.Obs.Histogram.count;
  Alcotest.(check (float 1e-9)) "sum" 7.5 s.Obs.Histogram.sum;
  Alcotest.(check (float 1e-9)) "max" 4.0 s.Obs.Histogram.max;
  (* ranks: p50 -> 2nd observation -> the le=2 bucket; p99 -> 4th ->
     the le=5 bucket, clamped to the observed max *)
  Alcotest.(check (float 1e-9)) "p50" 2.0 s.Obs.Histogram.p50;
  Alcotest.(check (float 1e-9)) "p99" 4.0 s.Obs.Histogram.p99;
  Alcotest.(check (list (pair (float 0.) int)))
    "cumulative series"
    [ (1.0, 1); (2.0, 3); (5.0, 4); (infinity, 4) ]
    (Obs.Histogram.cumulative h)

let test_histogram_overflow () =
  let h = Obs.Histogram.make ~buckets:[| 1.0; 2.0 |] () in
  Obs.Histogram.observe h 99.0;
  Alcotest.(check (float 1e-9)) "overflow quantile = observed max" 99.0
    (Obs.Histogram.quantile h 0.99);
  Alcotest.(check (list (pair (float 0.) int)))
    "overflow bucket"
    [ (1.0, 0); (2.0, 0); (infinity, 1) ]
    (Obs.Histogram.cumulative h)

let test_histogram_bad_buckets () =
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Obs.Histogram.make: bounds must be strictly increasing")
    (fun () -> ignore (Obs.Histogram.make ~buckets:[| 1.0; 1.0 |] ()))

let test_registry_interning () =
  let r = Obs.Registry.create () in
  let c1 = Obs.Registry.counter r ~labels:[ ("k", "v") ] "reqs_total" in
  let c2 = Obs.Registry.counter r ~labels:[ ("k", "v") ] "reqs_total" in
  Obs.Counter.incr c1;
  Obs.Counter.incr c2;
  Alcotest.(check int) "same labels intern to one counter" 2
    (Obs.Counter.value c1);
  let c3 = Obs.Registry.counter r ~labels:[ ("k", "other") ] "reqs_total" in
  Alcotest.(check int) "distinct labels are distinct" 0 (Obs.Counter.value c3);
  (match Obs.Registry.gauge r ~labels:[ ("k", "v") ] "reqs_total" with
   | _ -> Alcotest.fail "kind clash must raise"
   | exception Invalid_argument _ -> ());
  Obs.Registry.remove r ~labels:[ ("k", "v") ] "reqs_total";
  let c4 = Obs.Registry.counter r ~labels:[ ("k", "v") ] "reqs_total" in
  Alcotest.(check int) "removed then re-created fresh" 0 (Obs.Counter.value c4)

let test_registry_samples () =
  let r = Obs.Registry.create () in
  Obs.Counter.incr ~by:3 (Obs.Registry.counter r "a_total");
  Obs.Histogram.observe (Obs.Registry.histogram r "lat_seconds") 0.5;
  let samples = Obs.Registry.samples r in
  let value name =
    List.find_map
      (fun { Obs.name = n; value; _ } -> if n = name then Some value else None)
      samples
  in
  Alcotest.(check (option (float 0.))) "counter sample" (Some 3.0)
    (value "a_total");
  Alcotest.(check (option (float 0.))) "histogram count" (Some 1.0)
    (value "lat_seconds_count");
  Alcotest.(check (option (float 1e-9))) "histogram sum" (Some 0.5)
    (value "lat_seconds_sum");
  Alcotest.(check (option (float 1e-9))) "histogram p50 = bucket bound"
    (Some 0.5)
    (value "lat_seconds_p50")

let test_exposition () =
  let r = Obs.Registry.create () in
  Obs.Counter.incr ~by:7 (Obs.Registry.counter r ~labels:[ ("op", "ask") ] "ops_total");
  Obs.Histogram.observe
    (Obs.Registry.histogram r ~buckets:[| 1.0; 2.0 |] "lat_seconds")
    1.5;
  let text = Obs.Registry.exposition r in
  let lines = String.split_on_char '\n' text in
  Alcotest.(check string) "versioned header" "# stats.version 2"
    (List.hd lines);
  let has line = List.mem line lines in
  Alcotest.(check bool) "TYPE counter" true (has "# TYPE ops_total counter");
  Alcotest.(check bool) "labelled counter" true (has "ops_total{op=\"ask\"} 7");
  Alcotest.(check bool) "TYPE histogram" true (has "# TYPE lat_seconds histogram");
  Alcotest.(check bool) "le bucket cumulative" true
    (has "lat_seconds_bucket{le=\"2\"} 1");
  Alcotest.(check bool) "+Inf bucket" true
    (has "lat_seconds_bucket{le=\"+Inf\"} 1");
  Alcotest.(check bool) "count series" true (has "lat_seconds_count 1")

(* spans nest, record into obda_phase_seconds, and survive exceptions *)
let test_spans () =
  let r = Obs.Registry.create () in
  let result =
    Obs.span ~registry:r "outer" (fun () ->
        Obs.span ~registry:r "inner" (fun () -> 21 * 2))
  in
  Alcotest.(check int) "span returns the body's value" 42 result;
  (match
     Obs.span ~registry:r "outer" (fun () -> failwith "boom")
   with
   | _ -> Alcotest.fail "exception must propagate"
   | exception Failure _ -> ());
  let count phase =
    Obs.Histogram.count
      (Obs.Registry.histogram r ~labels:[ ("phase", phase) ] "obda_phase_seconds")
  in
  Alcotest.(check int) "outer recorded (incl. the failed one)" 2 (count "outer");
  Alcotest.(check int) "inner recorded" 1 (count "inner")

(* The concurrency property: increments from N domains lose no counts —
   the reason counters are atomics rather than mutable ints. *)
let prop_concurrent_counters =
  QCheck.Test.make ~count:10 ~name:"concurrent increments lose no counts"
    QCheck.(pair (int_range 2 4) (int_range 100 1000))
    (fun (domains, per_domain) ->
      let r = Obs.Registry.create () in
      let h = Obs.Registry.histogram r ~buckets:[| 0.5; 1.0 |] "h_seconds" in
      let spawned =
        Array.init domains (fun _ ->
            Domain.spawn (fun () ->
                (* contend on the *registry lookup* too, not just the
                   counter: interning must be race-free *)
                let c = Obs.Registry.counter r "n_total" in
                for i = 1 to per_domain do
                  Obs.Counter.incr c;
                  Obs.Histogram.observe h (if i mod 2 = 0 then 0.25 else 2.0)
                done))
      in
      Array.iter Domain.join spawned;
      let total = Obs.Counter.value (Obs.Registry.counter r "n_total") in
      total = domains * per_domain
      && Obs.Histogram.count h = domains * per_domain)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter monotonic" `Quick test_counter_monotonic;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram bucketing" `Quick test_histogram_bucketing;
          Alcotest.test_case "histogram overflow" `Quick test_histogram_overflow;
          Alcotest.test_case "bad buckets" `Quick test_histogram_bad_buckets;
        ] );
      ( "registry",
        [
          Alcotest.test_case "interning" `Quick test_registry_interning;
          Alcotest.test_case "samples" `Quick test_registry_samples;
          Alcotest.test_case "exposition" `Quick test_exposition;
          Alcotest.test_case "spans" `Quick test_spans;
        ] );
      ( "concurrency",
        [ QCheck_alcotest.to_alcotest prop_concurrent_counters ] );
    ]
