(* The oracle-of-the-oracle: cross-check the tableau against exhaustive
   finite-model enumeration on tiny ALCHI inputs.

   Directions checked:
   - a model found by enumeration forces the tableau to answer SAT
     (tableau completeness on these inputs);
   - tableau UNSAT forbids any model of the probed sizes (tableau
     soundness — an UNSAT verdict with an existing 2-element model would
     be a rule bug). *)

module O = Owlfrag.Osyntax
module Tableau = Owlfrag.Tableau
module Models = Owlfrag.Models

let test_eval_concepts () =
  let interp =
    {
      Models.domain_size = 2;
      concepts = [ ("A", 0b01); ("B", 0b10) ];
      roles = [ ("p", 0b0010 (* pair (0,1) *)) ];
    }
  in
  Alcotest.(check int) "name" 0b01 (Models.eval_concept interp (O.Name "A"));
  Alcotest.(check int) "negation" 0b10 (Models.eval_concept interp (O.Not (O.Name "A")));
  Alcotest.(check int) "and" 0b00
    (Models.eval_concept interp (O.And (O.Name "A", O.Name "B")));
  Alcotest.(check int) "or" 0b11
    (Models.eval_concept interp (O.Or (O.Name "A", O.Name "B")));
  (* pair bit 0b0010 is bit 1 = pair (i=0, j=1): 0 has a p-successor 1 *)
  Alcotest.(check int) "some" 0b01
    (Models.eval_concept interp (O.Some_ (O.Named "p", O.Name "B")));
  Alcotest.(check int) "inverse some" 0b10
    (Models.eval_concept interp (O.Some_ (O.Inv "p", O.Name "A")));
  (* all p.B holds at 0 (its only successor is 1 ∈ B) and vacuously at 1 *)
  Alcotest.(check int) "all" 0b11
    (Models.eval_concept interp (O.All (O.Named "p", O.Name "B")))

let test_find_model () =
  (* A ⊓ ¬B has a 1-element model *)
  (match Models.find_model ~domain_size:1 [] (O.And (O.Name "A", O.Not (O.Name "B"))) with
   | Some _ -> ()
   | None -> Alcotest.fail "expected a model");
  (* A ⊓ ¬A has none *)
  Alcotest.(check bool) "contradiction" false
    (Models.satisfiable_on ~domain_size:2 [] (O.And (O.Name "A", O.Not (O.Name "A"))));
  (* A ⊑ ∃p.A needs a cycle: domain 1 suffices (reflexive pair) *)
  Alcotest.(check bool) "loop model" true
    (Models.satisfiable_on ~domain_size:1
       [ O.Sub (O.Name "A", O.Some_ (O.Named "p", O.Name "A")) ]
       (O.Name "A"))

let test_inverse_roles () =
  let interp =
    {
      Models.domain_size = 2;
      concepts = [ ("A", 0b01) ];
      roles = [ ("p", 0b0010 (* pair (0,1) *)) ];
    }
  in
  (* p⁻ is the transpose: pair (0,1) becomes pair (1,0), which is bit
     j*n+i = 0*2+1 = bit 1... transpose of bit (i=0,j=1) is (i=1,j=0) *)
  let p = Models.eval_role interp (O.Named "p") in
  let p_inv = Models.eval_role interp (O.Inv "p") in
  Alcotest.(check bool) "transpose differs on asymmetric role" true (p <> p_inv);
  (* double inverse is the identity on the bitmap *)
  Alcotest.(check int) "role_inv involution" p
    (Models.eval_role interp (O.role_inv (O.role_inv (O.Named "p"))));
  (* ∃p.⊤ at 0 iff ∃p⁻.⊤ at 1 for the single pair (0,1) *)
  Alcotest.(check int) "domain of p" 0b01
    (Models.eval_concept interp (O.Some_ (O.Named "p", O.Top)));
  Alcotest.(check int) "range of p = domain of p inverse" 0b10
    (Models.eval_concept interp (O.Some_ (O.Inv "p", O.Top)))

let test_inverse_role_subsumption () =
  (* p ⊑ q⁻ entailment round-trip through both engines: the tableau must
     find ∃p.⊤ ⊓ ∀q⁻.⊥ unsatisfiable, and model enumeration must agree *)
  let tbox = [ O.Role_sub (O.Named "p", O.Inv "q") ] in
  let probe =
    O.And (O.Some_ (O.Named "p", O.Top), O.All (O.Inv "q", O.Not O.Top))
  in
  Alcotest.(check bool) "tableau: p [= q^- forces q^- successor" false
    (Tableau.satisfiable (Tableau.compile tbox) probe);
  Alcotest.(check bool) "no 2-element model either" false
    (Models.satisfiable_on ~domain_size:2 tbox probe);
  (* sanity: without the role axiom the probe is satisfiable *)
  Alcotest.(check bool) "satisfiable without the axiom" true
    (Tableau.satisfiable (Tableau.compile []) probe)

(* random tiny inputs *)
let gen_input =
  QCheck.Gen.(
    let name = map (fun a -> O.Name a) (oneofl [ "A"; "B" ]) in
    let role = return (O.Named "p") in
    let concept =
      sized_size (int_bound 2) @@ fix (fun self n ->
          if n = 0 then frequency [ (3, name); (1, return O.Top) ]
          else
            frequency
              [
                (3, name);
                (2, map2 (fun c d -> O.And (c, d)) (self (n - 1)) (self (n - 1)));
                (2, map2 (fun c d -> O.Or (c, d)) (self (n - 1)) (self (n - 1)));
                (2, map (fun c -> O.Not c) (self (n - 1)));
                (2, map2 (fun r c -> O.Some_ (r, c)) role (self (n - 1)));
                (1, map2 (fun r c -> O.All (r, c)) role (self (n - 1)));
              ])
    in
    let* tbox =
      list_size (int_bound 3) (map2 (fun c d -> O.Sub (c, d)) concept concept)
    in
    let* c = concept in
    return (tbox, c))

let arbitrary_input =
  QCheck.make
    ~print:(fun (tbox, c) ->
      Printf.sprintf "TBox: %s | C: %s"
        (String.concat "; " (List.map (Format.asprintf "%a" O.pp_axiom) tbox))
        (Format.asprintf "%a" O.pp_concept c))
    gen_input

let prop_model_implies_tableau_sat =
  QCheck.Test.make ~count:300 ~name:"finite model => tableau SAT" arbitrary_input
    (fun (tbox, c) ->
      let has_model =
        Models.satisfiable_on ~domain_size:1 tbox c
        || Models.satisfiable_on ~domain_size:2 tbox c
      in
      (not has_model)
      ||
      match Tableau.satisfiable (Tableau.compile tbox) c with
      | sat -> sat
      | exception Tableau.Budget_exhausted -> true)

let prop_tableau_unsat_implies_no_model =
  QCheck.Test.make ~count:300 ~name:"tableau UNSAT => no small model" arbitrary_input
    (fun (tbox, c) ->
      match Tableau.satisfiable (Tableau.compile tbox) c with
      | true -> true
      | false ->
        (not (Models.satisfiable_on ~domain_size:1 tbox c))
        && not (Models.satisfiable_on ~domain_size:2 tbox c)
      | exception Tableau.Budget_exhausted -> true)

let () =
  Alcotest.run "models"
    [
      ( "evaluation",
        [
          Alcotest.test_case "concept evaluation" `Quick test_eval_concepts;
          Alcotest.test_case "model search" `Quick test_find_model;
          Alcotest.test_case "inverse roles" `Quick test_inverse_roles;
          Alcotest.test_case "inverse role subsumption" `Quick
            test_inverse_role_subsumption;
        ] );
      ( "cross-check",
        List.map QCheck_alcotest.to_alcotest
          [ prop_model_implies_tableau_sat; prop_tableau_unsat_implies_no_model ] );
    ]
