(* Golden-transcript test of crash recovery: a scripted session runs in
   a forked child against a durable store, the child is killed by a
   crash failpoint inside the WAL commit path (the moral equivalent of
   [kill -9] landing there), and the parent recovers the directory and
   checks — via the printed transcript — that ASK and the durable
   session stats match the state the child had acknowledged.

   Two crash sites:

   - between the WAL append and its fsync.  The in-flight mutation is
     deliberately a duplicate FACTS insert, so the recovered state is
     byte-identical to the acknowledged one whether or not that record
     survived (process death, unlike power loss, preserves written but
     unfsynced bytes — the transcript records it replaying);
   - mid-record, via a partial write of 5 bytes.  Recovery must drop
     the torn tail, count it in [obda_wal_truncations_total], and
     replay exactly the acknowledged prefix.

   Determinism: fresh per-phase registries, wall-clock values redacted,
   scratch paths never printed, child stderr (the failpoint's crash
   notice) discarded. *)

module Wire = Server.Wire
module Service = Server.Service
module Store = Durable.Store
module Failpoint = Durable.Failpoint

let scratch =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "obda-recovery-transcript-%d" (Unix.getpid ()))

let show_reply = function
  | Wire.Busy -> [ "BUSY" ]
  | Wire.Err e -> [ "ERR " ^ e ]
  | Wire.Ok lines -> Printf.sprintf "OK %d" (List.length lines) :: lines

let step service request =
  List.iter (Printf.printf ">>> %s\n%!") (Wire.encode_request request);
  List.iter (Printf.printf "<<< %s\n%!") (show_reply (Service.handle service request))

(* the child's scripted, acknowledged session *)
let script session =
  [
    Wire.Load
      {
        session;
        kind = Wire.K_tbox;
        payload = [ "role worksFor"; "Manager [= Employee"; "Employee [= Person" ];
      };
    Wire.Load
      { session; kind = Wire.K_abox; payload = [ "Manager(ada)"; "Employee(bob)" ] };
    Wire.Load { session; kind = Wire.K_facts; payload = [ "dept(\"ada\", \"hq\")" ] };
    Wire.Prepare { session; name = "people"; query = "x <- Person(x)" };
  ]

(* what the recovered state is interrogated with *)
let probes session =
  [
    Wire.Ask { session; query = Wire.Named "people" };
    Wire.Ask { session; query = Wire.Inline "x <- Manager(x)" };
    Wire.Ask { session; query = Wire.Inline "x <- dept(x, \"hq\")" };
  ]

(* in-flight when the crash fires; duplicates the earlier FACTS load so
   acknowledged state and acknowledged+1 state coincide *)
let in_flight session =
  Wire.Load { session; kind = Wire.K_facts; payload = [ "dept(\"ada\", \"hq\")" ] }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* print durable + session samples from a registry, wall-clock redacted *)
let print_selected_samples registry =
  List.iter
    (fun s ->
      let name = s.Obs.name in
      let keep =
        contains name "obda_wal_" || contains name "obda_recovery_"
        || contains name "obda_snapshots_" || contains name "obda_session_"
      in
      if keep then
        let labels =
          match s.Obs.labels with
          | [] -> "-"
          | l -> String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) l)
        in
        let value =
          if contains name "seconds" && not (String.ends_with ~suffix:"_count" name)
          then "*"
          else Obs.string_of_value s.Obs.value
        in
        Printf.printf "... %s %s %s\n" name labels value)
    (Obs.Registry.samples registry)

let child_session dir ~crash_site ~action =
  (* the crash notice goes to stderr; the golden file only owns stdout *)
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 null Unix.stderr;
  Unix.close null;
  let registry = Obs.Registry.create () in
  let store, _ =
    match Store.open_dir ~registry dir with
    | Result.Ok p -> p
    | Result.Error e -> failwith e
  in
  let service = Service.create ~config:{ Service.Config.default with lru = 16 } ~registry () in
  Service.attach_store service store;
  List.iter (step service) (script "s");
  Printf.printf "--- arming %s, then sending the duplicate FACTS load\n%!" crash_site;
  Failpoint.arm crash_site action;
  List.iter (Printf.printf ">>> %s\n%!") (Wire.encode_request (in_flight "s"));
  ignore (Service.handle service (in_flight "s"));
  (* unreachable: the failpoint kills the process *)
  Printf.printf "!!! child survived the armed crash\n%!";
  Unix._exit 1

let recover_and_probe dir =
  let registry = Obs.Registry.create () in
  match Store.open_dir ~registry dir with
  | Result.Error e -> Printf.printf "!!! recovery refused: %s\n" e
  | Result.Ok (store, r) ->
    Printf.printf
      "--- recovered: %d mutation(s) (%d snapshot + %d wal), %d torn byte(s)\n"
      (List.length r.Store.mutations)
      r.Store.snapshot_records r.Store.wal_records r.Store.truncated_bytes;
    let service = Service.create ~config:{ Service.Config.default with lru = 16 } ~registry () in
    (match Service.restore service r.Store.mutations with
     | Result.Ok n -> Printf.printf "--- replayed %d mutation(s)\n" n
     | Result.Error e -> Printf.printf "!!! replay failed: %s\n" e);
    Service.attach_store service store;
    List.iter (step service) (probes "s");
    print_selected_samples registry;
    Store.close store

let run_phase ~title ~crash_site ~action dir =
  Printf.printf "=== %s\n%!" title;
  (match Unix.fork () with
   | 0 -> child_session dir ~crash_site ~action
   | pid -> (
     match Unix.waitpid [] pid with
     | _, Unix.WEXITED n -> Printf.printf "--- child exited with code %d\n" n
     | _, Unix.WSIGNALED _ -> Printf.printf "--- child killed by signal\n"
     | _, Unix.WSTOPPED _ -> Printf.printf "--- child stopped\n"));
  recover_and_probe dir

let () =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote scratch)));
  Unix.mkdir scratch 0o755;
  let dir name =
    let d = Filename.concat scratch name in
    Unix.mkdir d 0o755;
    d
  in
  run_phase
    ~title:"crash between WAL append and fsync (record written, unfsynced)"
    ~crash_site:"wal.append.before_fsync" ~action:Failpoint.Crash (dir "fsync");
  run_phase
    ~title:"crash mid-record: 5 bytes of a torn append"
    ~crash_site:"wal.append.write" ~action:(Failpoint.Partial 5) (dir "torn");
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote scratch)))
