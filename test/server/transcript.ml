(* Golden-transcript test of the wire protocol against a real loopback
   server: a scripted client session — happy path, malformed commands,
   an oversized query line, a BUSY shed and a request timeout forced
   deterministically through Executor.pause — whose full request/reply
   log is diffed against transcript.expected under `dune runtest`.

   Determinism notes: the server runs one worker with a queue bound of
   one, the executor is paused around the BUSY/timeout steps, and the
   only timing-dependent output (STATS latency fields) is redacted
   token-wise. *)

let sock_path =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "obda-transcript-%d.sock" (Unix.getpid ()))

(* v2 stats lines are "<metric> <labels> <value>"; any value derived
   from wall-clock time (the *_seconds histograms' sum/max/quantiles)
   is redacted — the metric name and its label set are the contract,
   the number is not.  Observation *counts* are deterministic under the
   scripted session and stay. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let redact line =
  match String.split_on_char ' ' line with
  | [ name; labels; _value ]
    when contains name "seconds" && not (String.ends_with ~suffix:"_count" name)
    ->
    String.concat " " [ name; labels; "*" ]
  | _ -> line

let show_reply = function
  | Server.Wire.Busy -> [ "BUSY" ]
  | Server.Wire.Err e -> [ "ERR " ^ e ]
  | Server.Wire.Ok lines -> Printf.sprintf "OK %d" (List.length lines) :: lines

let print_reply = function
  | Result.Error e -> Printf.printf "!!! %s\n" e
  | Result.Ok reply ->
    List.iter (fun l -> Printf.printf "<<< %s\n" (redact l)) (show_reply reply)

let step conn request =
  List.iter (Printf.printf ">>> %s\n") (Server.Wire.encode_request request);
  print_reply (Server.Client.request conn request)

(* a raw send, for bytes the typed encoder would never produce *)
let raw_step conn ~show lines =
  List.iter (Printf.printf ">>> %s\n") show;
  Server.Client.send_lines conn lines;
  print_reply (Server.Client.read_reply conn)

let () =
  let service = Server.Service.create ~config:{ Server.Service.Config.default with lru = 16 } () in
  let config =
    {
      Server.Serve.workers = 1;
      queue_capacity = 1;
      request_timeout_s = 0.5;
      limits = { Server.Wire.max_line = 200; max_payload_lines = 50 };
    }
  in
  let srv = Server.Serve.create ~config service in
  ignore (Server.Serve.listen_unix srv sock_path);
  Server.Serve.start srv;
  print_endline "--- server up (1 worker, queue bound 1, 0.5s timeout)";
  let conn =
    match Server.Client.connect ("unix:" ^ sock_path) with
    | Result.Ok c -> c
    | Result.Error e -> failwith e
  in

  (* happy path *)
  step conn
    (Server.Wire.Load
       {
         session = "s";
         kind = Server.Wire.K_tbox;
         payload =
           [ "role worksFor"; "Manager [= Employee"; "Employee [= Person" ];
       });
  step conn
    (Server.Wire.Load
       {
         session = "s";
         kind = Server.Wire.K_abox;
         payload = [ "Manager(ada)"; "Employee(bob)" ];
       });
  step conn
    (Server.Wire.Prepare { session = "s"; name = "people"; query = "x <- Person(x)" });
  step conn (Server.Wire.Ask { session = "s"; query = Server.Wire.Named "people" });
  step conn
    (Server.Wire.Ask { session = "s"; query = Server.Wire.Inline "x <- Manager(x)" });
  step conn (Server.Wire.Classify { session = "s" });

  (* protocol abuse: unknown verb, bad LOAD kind, an over-long line *)
  raw_step conn ~show:[ "FROBNICATE the server" ] [ "FROBNICATE the server" ];
  raw_step conn ~show:[ "LOAD s JUNK 1" ] [ "LOAD s JUNK 1" ];
  let oversized = "ASK s ? x <- " ^ String.concat ", "
      (List.init 40 (fun i -> Printf.sprintf "Person(x%d)" i))
  in
  raw_step conn
    ~show:[ Printf.sprintf "<oversized ASK line, %d bytes>" (String.length oversized) ]
    [ oversized ];

  (* stats, latency fields redacted *)
  step conn (Server.Wire.Stats (Some "s"));

  (* deterministic BUSY + timeout: pause the executor, let a second
     client fill the only queue slot, then watch this client get shed *)
  print_endline "--- executor paused";
  Parallel.Executor.pause (Server.Serve.executor srv);
  let conn2 =
    match Server.Client.connect ("unix:" ^ sock_path) with
    | Result.Ok c -> c
    | Result.Error e -> failwith e
  in
  Server.Client.send_lines conn2
    (Server.Wire.encode_request
       (Server.Wire.Ask { session = "s"; query = Server.Wire.Named "people" }));
  print_endline "--- second client queued ASK (fills the queue slot)";
  Unix.sleepf 0.2;
  step conn (Server.Wire.Ask { session = "s"; query = Server.Wire.Named "people" });
  print_endline "--- second client's queued request times out while paused";
  print_reply (Server.Client.read_reply conn2);
  print_endline "--- executor resumed";
  Parallel.Executor.resume (Server.Serve.executor srv);
  Parallel.Executor.drain (Server.Serve.executor srv);
  step conn (Server.Wire.Ask { session = "s"; query = Server.Wire.Named "people" });

  (* protocol v2: BULK is refused on a v1 connection, negotiated in by
     HELLO, and then streams chunk-atomic fact loads *)
  print_endline "--- protocol v2: HELLO + BULK";
  step conn
    (Server.Wire.Bulk_chunk { session = "s"; payload = [ "c$Manager(\"carol\")" ] });
  step conn (Server.Wire.Hello 2);
  step conn
    (Server.Wire.Bulk_chunk
       { session = "s"; payload = [ "c$Manager(\"carol\")"; "c$Employee(\"dan\")" ] });
  (* a malformed line rejects exactly its own chunk; the stream lives on *)
  step conn
    (Server.Wire.Bulk_chunk { session = "s"; payload = [ "this is not a fact" ] });
  step conn
    (Server.Wire.Bulk_chunk { session = "s"; payload = [ "c$Manager(\"erin\")" ] });
  step conn (Server.Wire.Bulk_end { session = "s" });
  (* ABORT after END: nothing in flight, acknowledged as a no-op *)
  step conn (Server.Wire.Bulk_abort { session = "s" });
  step conn
    (Server.Wire.Ask { session = "s"; query = Server.Wire.Inline "x <- Manager(x)" });
  (* a later HELLO can only be granted what the server speaks *)
  step conn (Server.Wire.Hello 99);

  step conn Server.Wire.Quit;
  Server.Client.close conn;
  (match Server.Client.request conn2 Server.Wire.Quit with
   | Result.Ok _ | Result.Error _ -> ());
  Server.Client.close conn2;
  let drained = Server.Serve.stop srv in
  Printf.printf "--- server stopped gracefully, drained %d in-flight\n" drained;
  (try Unix.unlink sock_path with Unix.Unix_error _ -> ())
