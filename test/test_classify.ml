(* Tests for the paper's core contribution: the digraph encoding
   (Definition 1), Phi_T via transitive closure (Theorem 1),
   computeUnsat / Omega_T, the deductive closure and logical
   implication.  The property tests compare everything against the
   independent tableau oracle. *)

open Dllite
module Encoding = Quonto.Encoding
module Classify = Quonto.Classify
module Unsat = Quonto.Unsat
module Deductive = Quonto.Deductive
module Implication = Quonto.Implication
module Oracle = Owlfrag.Oracle

let parse s =
  match Parser.tbox_of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" e

let concept a = Syntax.E_concept (Syntax.Atomic a)
let exists q = Syntax.E_concept (Syntax.Exists q)
let role p = Syntax.E_role (Syntax.Direct p)

(* ----------------------------- encoding ------------------------------ *)

let test_encoding_nodes () =
  let t = parse {|
    concept A
    role p
    attr u
  |} in
  let enc = Encoding.build t in
  (* A; p, p^-, exists p, exists p^-; u, delta(u) *)
  Alcotest.(check int) "node count" 7 (Encoding.node_count enc);
  Alcotest.(check int) "concept nodes" 4 (List.length (Encoding.concept_nodes enc));
  Alcotest.(check int) "role nodes" 2 (List.length (Encoding.role_nodes enc));
  Alcotest.(check int) "attr nodes" 1 (List.length (Encoding.attr_nodes enc))

let test_encoding_role_incl_arcs () =
  let t = parse {|
    role p
    role q
    p [= q
  |} in
  let enc = Encoding.build t in
  let g = Encoding.graph enc in
  let n e = Encoding.node enc e in
  (* Definition 1 item 4: four arcs per role inclusion *)
  Alcotest.(check bool) "p->q" true
    (Graphlib.Graph.mem_edge g (n (role "p")) (n (role "q")));
  Alcotest.(check bool) "p^- -> q^-" true
    (Graphlib.Graph.mem_edge g
       (n (Syntax.E_role (Syntax.Inverse "p")))
       (n (Syntax.E_role (Syntax.Inverse "q"))));
  Alcotest.(check bool) "Ep -> Eq" true
    (Graphlib.Graph.mem_edge g
       (n (exists (Syntax.Direct "p")))
       (n (exists (Syntax.Direct "q"))));
  Alcotest.(check bool) "Ep^- -> Eq^-" true
    (Graphlib.Graph.mem_edge g
       (n (exists (Syntax.Inverse "p")))
       (n (exists (Syntax.Inverse "q"))));
  Alcotest.(check int) "exactly four arcs" 4 (Graphlib.Graph.edge_count g)

let test_encoding_qualified_arc () =
  let t = parse {|
    role p
    A [= exists p . B
  |} in
  let enc = Encoding.build t in
  let g = Encoding.graph enc in
  Alcotest.(check bool) "A -> Ep (qualifier dropped in graph)" true
    (Graphlib.Graph.mem_edge g
       (Encoding.node enc (concept "A"))
       (Encoding.node enc (exists (Syntax.Direct "p"))));
  Alcotest.(check int) "one arc" 1 (Graphlib.Graph.edge_count g);
  Alcotest.(check int) "qualifier recorded" 1
    (List.length enc.Encoding.qualified_axioms)

let test_encoding_negative_no_arc () =
  let t = parse {|
    A [= not B
  |} in
  let enc = Encoding.build t in
  Alcotest.(check int) "no arcs" 0 (Graphlib.Graph.edge_count (Encoding.graph enc));
  Alcotest.(check int) "one negative pair" 1 (List.length enc.Encoding.negative_pairs)

(* --------------------------- classification -------------------------- *)

let test_classify_chain () =
  let cls = Classify.classify (parse {|
    A [= B
    B [= C
  |}) in
  Alcotest.(check bool) "A [= C inferred" true (Classify.subsumes cls (concept "A") (concept "C"));
  Alcotest.(check bool) "C not [= A" false (Classify.subsumes cls (concept "C") (concept "A"));
  Alcotest.(check bool) "reflexive" true (Classify.subsumes cls (concept "A") (concept "A"))

let test_classify_role_to_concept_propagation () =
  (* role inclusion propagates to existentials: p [= q, A [= exists p
     entails A [= exists q *)
  let cls =
    Classify.classify (parse {|
      role p
      role q
      p [= q
      A [= exists p
    |})
  in
  Alcotest.(check bool) "A [= exists q" true
    (Classify.subsumes cls (concept "A") (exists (Syntax.Direct "q")))

let test_classify_inverse_handling () =
  (* p [= q^- : then p^- [= q and exists p [= exists q^- *)
  let cls = Classify.classify (parse {|
    role p
    role q
    p [= q^-
  |}) in
  Alcotest.(check bool) "p^- [= q" true
    (Classify.subsumes cls (Syntax.E_role (Syntax.Inverse "p")) (role "q"));
  Alcotest.(check bool) "exists p [= exists q^-" true
    (Classify.subsumes cls (exists (Syntax.Direct "p")) (exists (Syntax.Inverse "q")))

let test_classify_unsat_omega () =
  (* A [= B, A [= not B makes A unsatisfiable, hence A [= anything *)
  let cls = Classify.classify (parse {|
    A [= B
    A [= not B
    concept Z
  |}) in
  Alcotest.(check bool) "A unsat" true (Classify.is_unsat cls (concept "A"));
  Alcotest.(check bool) "B sat" false (Classify.is_unsat cls (concept "B"));
  Alcotest.(check bool) "Omega: A [= Z" true (Classify.subsumes cls (concept "A") (concept "Z"))

let test_unsat_propagation_to_predecessors () =
  let cls =
    Classify.classify
      (parse {|
        A0 [= A
        A [= B
        A [= not B
      |})
  in
  Alcotest.(check bool) "predecessor unsat" true (Classify.is_unsat cls (concept "A0"))

let test_unsat_role_components () =
  (* exists p [= A, exists p [= not A: the domain of p is unsat, hence
     p, p^-, exists p^- are all unsat *)
  let cls =
    Classify.classify
      (parse {|
        role p
        exists p [= A
        exists p [= not A
      |})
  in
  Alcotest.(check bool) "p unsat" true (Classify.is_unsat cls (role "p"));
  Alcotest.(check bool) "p^- unsat" true
    (Classify.is_unsat cls (Syntax.E_role (Syntax.Inverse "p")));
  Alcotest.(check bool) "range unsat" true
    (Classify.is_unsat cls (exists (Syntax.Inverse "p")))

let test_unsat_qualified_rule () =
  (* B [= exists p . A with A unsat makes B unsat *)
  let cls =
    Classify.classify
      (parse {|
        role p
        A [= C
        A [= not C
        B [= exists p . A
      |})
  in
  Alcotest.(check bool) "A unsat" true (Classify.is_unsat cls (concept "A"));
  Alcotest.(check bool) "B unsat via qualifier" true (Classify.is_unsat cls (concept "B"))

let test_unsat_attr () =
  let cls =
    Classify.classify
      (parse {|
        attr u
        delta(u) [= A
        delta(u) [= not A
      |})
  in
  Alcotest.(check bool) "u unsat" true (Classify.is_unsat cls (Syntax.E_attr "u"));
  Alcotest.(check bool) "delta(u) unsat" true
    (Classify.is_unsat cls (Syntax.E_concept (Syntax.Attr_domain "u")))

let test_coherent () =
  let coherent_t = Classify.classify (parse "A [= B") in
  Alcotest.(check bool) "coherent" true (Unsat.coherent (Classify.unsat coherent_t));
  let incoherent_t = Classify.classify (parse "A [= B\nA [= not B") in
  Alcotest.(check bool) "incoherent" false (Unsat.coherent (Classify.unsat incoherent_t))

let test_name_level_output () =
  let cls = Classify.classify (parse {|
    A [= B
    B [= C
    role p
    role q
    p [= q
  |}) in
  let subs = Classify.name_level cls in
  Alcotest.(check bool) "A<=B" true (List.mem (Classify.Concept_sub ("A", "B")) subs);
  Alcotest.(check bool) "A<=C" true (List.mem (Classify.Concept_sub ("A", "C")) subs);
  Alcotest.(check bool) "p<=q" true (List.mem (Classify.Role_sub ("p", "q")) subs);
  Alcotest.(check bool) "no reflexive" false
    (List.mem (Classify.Concept_sub ("A", "A")) subs)

let test_equivalence_classes () =
  let cls = Classify.classify (parse {|
    A [= B
    B [= A
    concept C
  |}) in
  let classes = Classify.equivalence_classes cls in
  Alcotest.(check bool) "A~B grouped" true
    (List.exists (fun c -> List.sort compare c = [ "A"; "B" ]) classes);
  Alcotest.(check bool) "C alone" true (List.mem [ "C" ] classes)

let test_equivalence_classes_unsat () =
  (* A and D are each unsatisfiable, so Omega_T makes them mutually
     subsuming: they must land in one class even though the digraph has
     no cycle through them *)
  let cls = Classify.classify (parse {|
    A [= B
    A [= not B
    D [= E
    D [= not E
  |}) in
  let classes = Classify.equivalence_classes cls in
  Alcotest.(check bool) "unsat names merged" true
    (List.exists (fun c -> List.sort compare c = [ "A"; "D" ]) classes);
  Alcotest.(check bool) "B alone" true (List.mem [ "B" ] classes);
  Alcotest.(check bool) "E alone" true (List.mem [ "E" ] classes)

(* ------------------------- deductive closure ------------------------- *)

let test_deductive_qualified () =
  (* A [= exists p . B, B [= C, p [= q  entails  A [= exists q . C *)
  let d =
    Deductive.compute
      (parse {|
        role p
        role q
        p [= q
        A [= exists p . B
        B [= C
      |})
  in
  Alcotest.(check bool) "inferred qualified" true
    (Deductive.entails d
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_exists_qual (Syntax.Direct "q", "C"))));
  Alcotest.(check bool) "not the converse" false
    (Deductive.entails d
       (Syntax.Concept_incl (Syntax.Atomic "C", Syntax.C_exists_qual (Syntax.Direct "q", "A"))))

let test_deductive_qualified_via_range () =
  (* A [= exists p, exists p^- [= B  entails  A [= exists p . B *)
  let d =
    Deductive.compute (parse {|
      role p
      A [= exists p
      exists p^- [= B
    |})
  in
  Alcotest.(check bool) "range typing gives qualification" true
    (Deductive.entails d
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_exists_qual (Syntax.Direct "p", "B"))))

let test_deductive_negative () =
  (* A [= B, B [= not C, D [= C  entails  A [= not D and D [= not A *)
  let d = Deductive.compute (parse {|
    A [= B
    B [= not C
    D [= C
  |}) in
  Alcotest.(check bool) "inferred NI" true
    (Deductive.entails d
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_neg (Syntax.Atomic "D"))));
  Alcotest.(check bool) "NI symmetric" true
    (Deductive.entails d
       (Syntax.Concept_incl (Syntax.Atomic "D", Syntax.C_neg (Syntax.Atomic "A"))));
  Alcotest.(check bool) "unrelated not disjoint" false
    (Deductive.entails d
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_neg (Syntax.Atomic "B"))))

let test_deductive_role_disjoint_via_domains () =
  let d =
    Deductive.compute
      (parse {|
        role p
        role q
        exists p [= A
        exists q [= not A
      |})
  in
  Alcotest.(check bool) "role NI via domain disjointness" true
    (Deductive.entails d
       (Syntax.Role_incl (Syntax.Direct "p", Syntax.R_neg (Syntax.Direct "q"))))

let test_closure_axioms_listing () =
  let d = Deductive.compute (parse {|
    A [= B
    B [= C
  |}) in
  let closure = Deductive.closure_axioms d in
  Alcotest.(check bool) "contains A [= C" true
    (List.mem
       (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_basic (Syntax.Atomic "C")))
       closure);
  (* soundness: everything in the closure is entailed per the oracle *)
  let o = Oracle.of_tbox (parse "A [= B\nB [= C") in
  List.iter
    (fun ax ->
      if not (Oracle.entails o ax) then
        Alcotest.failf "unsound closure axiom: %s" (Syntax.axiom_to_string ax))
    closure

(* ------------------------ on-demand implication ---------------------- *)

let test_implication_agrees_with_deductive () =
  let source = {|
    role p
    role q
    p [= q
    A [= exists p . B
    B [= C
    C [= not D
  |} in
  let t = parse source in
  let d = Deductive.compute t in
  let i = Implication.prepare t in
  let queries =
    [
      Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_exists_qual (Syntax.Direct "q", "C"));
      Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_basic (Syntax.Exists (Syntax.Direct "q")));
      Syntax.Concept_incl (Syntax.Atomic "B", Syntax.C_neg (Syntax.Atomic "D"));
      Syntax.Concept_incl (Syntax.Atomic "D", Syntax.C_basic (Syntax.Atomic "A"));
      Syntax.Role_incl (Syntax.Direct "p", Syntax.R_role (Syntax.Direct "q"));
      Syntax.Role_incl (Syntax.Direct "q", Syntax.R_role (Syntax.Direct "p"));
    ]
  in
  List.iter
    (fun ax ->
      Alcotest.(check bool)
        (Syntax.axiom_to_string ax)
        (Deductive.entails d ax) (Implication.entails i ax))
    queries

(* ---------------------- properties vs the oracle --------------------- *)

let forall_exprs f =
  (* all basic expressions over the small test pools *)
  let concepts =
    List.map (fun a -> Syntax.Atomic a) Ontgen.Qgen.concept_pool
    @ List.concat_map
        (fun p -> [ Syntax.Exists (Syntax.Direct p); Syntax.Exists (Syntax.Inverse p) ])
        Ontgen.Qgen.role_pool
    @ List.map (fun u -> Syntax.Attr_domain u) Ontgen.Qgen.attr_pool
  in
  let roles =
    List.concat_map
      (fun p -> [ Syntax.Direct p; Syntax.Inverse p ])
      Ontgen.Qgen.role_pool
  in
  List.for_all (fun b -> f (Syntax.E_concept b)) concepts
  && List.for_all (fun q -> f (Syntax.E_role q)) roles
  && List.for_all (fun u -> f (Syntax.E_attr u)) Ontgen.Qgen.attr_pool

(* the tableau oracle can exhaust its work budget on pathological random
   TBoxes (deep deterministic completions); those cases are skipped —
   the verdict is unknown, not wrong *)
let or_skip f = try f () with Owlfrag.Tableau.Budget_exhausted -> true

let prop_classification_matches_oracle =
  QCheck.Test.make ~count:150 ~name:"graph classification = tableau oracle"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      or_skip (fun () ->
          let t = Ontgen.Qgen.tbox_of_axioms axioms in
          let cls = Classify.classify t in
          let o = Oracle.of_tbox t in
          forall_exprs (fun e1 ->
              forall_exprs (fun e2 ->
                  (not (Quonto.Encoding.same_sort e1 e2))
                  || Classify.subsumes cls e1 e2 = Oracle.subsumes o e1 e2))))

let prop_unsat_matches_oracle =
  QCheck.Test.make ~count:150 ~name:"computeUnsat = tableau unsatisfiability"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      or_skip (fun () ->
          let t = Ontgen.Qgen.tbox_of_axioms axioms in
          let cls = Classify.classify t in
          let o = Oracle.of_tbox t in
          forall_exprs (fun e -> Classify.is_unsat cls e = Oracle.is_unsat o e)))

let prop_implication_matches_oracle =
  QCheck.Test.make ~count:150 ~name:"logical implication = tableau oracle"
    (QCheck.pair Ontgen.Qgen.arbitrary_tbox Ontgen.Qgen.arbitrary_axiom)
    (fun (axioms, query) ->
      or_skip (fun () ->
          let t = Ontgen.Qgen.tbox_of_axioms axioms in
          let d = Deductive.compute t in
          let i = Implication.prepare t in
          let o = Oracle.of_tbox t in
          let expected = Oracle.entails o query in
          Deductive.entails d query = expected && Implication.entails i query = expected))

let prop_closure_algorithms_agree_on_classification =
  QCheck.Test.make ~count:100 ~name:"classification independent of closure algorithm"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      let t = Ontgen.Qgen.tbox_of_axioms axioms in
      let c1 = Classify.classify ~algorithm:Graphlib.Closure.Dfs t in
      let c2 = Classify.classify ~algorithm:Graphlib.Closure.Warshall t in
      let c3 = Classify.classify ~algorithm:Graphlib.Closure.Scc_condense t in
      let c4 = Classify.classify ~algorithm:Graphlib.Closure.Par_scc ~jobs:4 t in
      Classify.name_level c1 = Classify.name_level c2
      && Classify.name_level c2 = Classify.name_level c3
      && Classify.name_level c3 = Classify.name_level c4
      && Classify.equivalence_classes c1 = Classify.equivalence_classes c4)

let prop_deductive_closure_sound =
  QCheck.Test.make ~count:80 ~name:"deductive closure sound vs oracle"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      or_skip (fun () ->
          let t = Ontgen.Qgen.tbox_of_axioms axioms in
          let d = Deductive.compute t in
          let o = Oracle.of_tbox t in
          List.for_all (Oracle.entails o) (Deductive.closure_axioms d)))

let () =
  Alcotest.run "classify"
    [
      ( "encoding",
        [
          Alcotest.test_case "signature nodes" `Quick test_encoding_nodes;
          Alcotest.test_case "role inclusion arcs" `Quick test_encoding_role_incl_arcs;
          Alcotest.test_case "qualified arc" `Quick test_encoding_qualified_arc;
          Alcotest.test_case "negative inclusions" `Quick test_encoding_negative_no_arc;
        ] );
      ( "phi_t",
        [
          Alcotest.test_case "chains" `Quick test_classify_chain;
          Alcotest.test_case "role->existential" `Quick
            test_classify_role_to_concept_propagation;
          Alcotest.test_case "inverses" `Quick test_classify_inverse_handling;
          Alcotest.test_case "name-level output" `Quick test_name_level_output;
          Alcotest.test_case "equivalence classes" `Quick test_equivalence_classes;
          Alcotest.test_case "equivalence classes merge unsat" `Quick
            test_equivalence_classes_unsat;
        ] );
      ( "omega_t",
        [
          Alcotest.test_case "unsat subsumes all" `Quick test_classify_unsat_omega;
          Alcotest.test_case "predecessor propagation" `Quick
            test_unsat_propagation_to_predecessors;
          Alcotest.test_case "role components" `Quick test_unsat_role_components;
          Alcotest.test_case "qualified rule" `Quick test_unsat_qualified_rule;
          Alcotest.test_case "attributes" `Quick test_unsat_attr;
          Alcotest.test_case "coherence" `Quick test_coherent;
        ] );
      ( "deductive",
        [
          Alcotest.test_case "qualified inference" `Quick test_deductive_qualified;
          Alcotest.test_case "qualified via range" `Quick test_deductive_qualified_via_range;
          Alcotest.test_case "negative inference" `Quick test_deductive_negative;
          Alcotest.test_case "role NI via domains" `Quick
            test_deductive_role_disjoint_via_domains;
          Alcotest.test_case "closure listing" `Quick test_closure_axioms_listing;
          Alcotest.test_case "implication agreement" `Quick
            test_implication_agrees_with_deductive;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_classification_matches_oracle;
            prop_unsat_matches_oracle;
            prop_implication_matches_oracle;
            prop_closure_algorithms_agree_on_classification;
            prop_deductive_closure_sound;
          ] );
    ]
