(* Tests for the OBDA substrate: conjunctive queries, the database,
   mappings/unfolding, PerfectRef rewriting (against the chase oracle),
   consistency checking, and the end-to-end engine. *)

open Dllite
module Cq = Obda.Cq
module Database = Obda.Database
module Mapping = Obda.Mapping
module Rewrite = Obda.Rewrite
module Chase = Obda.Chase
module Engine = Obda.Engine
module Vabox = Obda.Vabox

let parse s =
  match Parser.tbox_of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" e

let v x = Cq.Var x
let c x = Cq.Const x

let sorted_answers l = List.sort compare l

let answers_t = Alcotest.(list (list string))
let check_answers msg expected actual =
  Alcotest.check answers_t msg (sorted_answers expected) (sorted_answers actual)

(* -------------------------------- cq --------------------------------- *)

let test_cq_bound_vars () =
  let q =
    Cq.make [ "x" ]
      [ Cq.atom "r$p" [ v "x"; v "y" ]; Cq.atom "c$A" [ v "y" ]; Cq.atom "r$q" [ v "x"; v "z" ] ]
  in
  Alcotest.(check bool) "answer var bound" true (Cq.is_bound q "x");
  Alcotest.(check bool) "join var bound" true (Cq.is_bound q "y");
  Alcotest.(check bool) "lone var unbound" false (Cq.is_bound q "z")

let test_cq_make_checks () =
  Alcotest.check_raises "head var must occur"
    (Invalid_argument "Cq.make: answer variable x not in body") (fun () ->
      ignore (Cq.make [ "x" ] [ Cq.atom "p" [ v "y" ] ]))

let test_cq_evaluate () =
  let facts = function
    | "p" -> [ [ "a"; "b" ]; [ "b"; "c" ]; [ "a"; "d" ] ]
    | "A" -> [ [ "b" ] ]
    | _ -> []
  in
  let q = Cq.make [ "x" ] [ Cq.atom "p" [ v "x"; v "y" ]; Cq.atom "A" [ v "y" ] ] in
  check_answers "join" [ [ "a" ] ] (Cq.evaluate ~facts q);
  let q2 = Cq.make [ "x"; "y" ] [ Cq.atom "p" [ v "x"; v "y" ] ] in
  check_answers "all pairs"
    [ [ "a"; "b" ]; [ "b"; "c" ]; [ "a"; "d" ] ]
    (Cq.evaluate ~facts q2);
  let q3 = Cq.make [ "y" ] [ Cq.atom "p" [ c "a"; v "y" ] ] in
  check_answers "constant selection" [ [ "b" ]; [ "d" ] ] (Cq.evaluate ~facts q3)

let test_cq_containment () =
  (* q1(x) :- p(x,y)   contains   q2(x) :- p(x,y), A(y) *)
  let q1 = Cq.make [ "x" ] [ Cq.atom "p" [ v "x"; v "y" ] ] in
  let q2 = Cq.make [ "x" ] [ Cq.atom "p" [ v "x"; v "y" ]; Cq.atom "A" [ v "y" ] ] in
  Alcotest.(check bool) "q2 subset q1" true (Cq.contains q1 q2);
  Alcotest.(check bool) "q1 not subset q2" false (Cq.contains q2 q1);
  (* different predicate: incomparable *)
  let q3 = Cq.make [ "x" ] [ Cq.atom "q" [ v "x"; v "y" ] ] in
  Alcotest.(check bool) "incomparable" false (Cq.contains q1 q3)

let test_cq_minimize () =
  let q1 = Cq.make [ "x" ] [ Cq.atom "p" [ v "x"; v "y" ] ] in
  let q2 = Cq.make [ "x" ] [ Cq.atom "p" [ v "x"; v "y" ]; Cq.atom "A" [ v "y" ] ] in
  let q1' = Cq.make [ "x" ] [ Cq.atom "p" [ v "x"; v "z" ] ] in
  Alcotest.(check int) "subsumed dropped" 1 (List.length (Cq.minimize_ucq [ q1; q2 ]));
  Alcotest.(check int) "equivalent collapsed" 1
    (List.length (Cq.minimize_ucq [ q1; q1' ]));
  Alcotest.(check int) "order irrelevant" 1 (List.length (Cq.minimize_ucq [ q2; q1 ]))

(* ------------------------------ database ----------------------------- *)

let test_database () =
  let db = Database.create () in
  Database.insert db "emp" [ "alice"; "acme" ];
  Database.insert db "emp" [ "bob"; "initech" ];
  Database.insert db "emp" [ "alice"; "acme" ];
  Alcotest.(check int) "dedup" 2 (List.length (Database.rows db "emp"));
  Alcotest.(check (list string)) "names" [ "emp" ] (Database.relation_names db);
  Alcotest.(check int) "size" 2 (Database.size db);
  Alcotest.check_raises "arity clash"
    (Invalid_argument "Database.insert: emp arity mismatch") (fun () ->
      Database.insert db "emp" [ "x" ])

(* [Database.rows]/[facts] promise set semantics only: tuple order is
   unspecified and may differ between the naive and indexed evaluation
   paths.  This test pins the contract down: consumers may rely on the
   sorted view being stable, never on the raw order (everything
   user-visible sorts at render time — the serving layer's [op_ask] and
   the CLI's answer printer). *)
let test_database_ordering_contract () =
  let rows = [ [ "c"; "3" ]; [ "a"; "1" ]; [ "b"; "2" ] ] in
  let db1 = Database.create () in
  List.iter (Database.insert db1 "r") rows;
  let db2 = Database.create () in
  List.iter (Database.insert db2 "r") (List.rev rows);
  Alcotest.check answers_t "same set whatever the insertion order"
    (sorted_answers (Database.rows db1 "r"))
    (sorted_answers (Database.rows db2 "r"));
  Alcotest.check answers_t "sorted view is canonical"
    (sorted_answers rows)
    (sorted_answers (Database.rows db1 "r"))

let test_database_probe () =
  let db = Database.create () in
  Database.insert db "p" [ "a"; "b" ];
  Database.insert db "p" [ "a"; "c" ];
  Database.insert db "p" [ "b"; "c" ];
  Alcotest.check answers_t "probe col 0"
    [ [ "a"; "b" ]; [ "a"; "c" ] ]
    (sorted_answers (Database.probe db "p" [ (0, "a") ]));
  (* the index on column 0 now exists; an insert must maintain it *)
  Database.insert db "p" [ "a"; "d" ];
  Alcotest.check answers_t "probe sees the new row"
    [ [ "a"; "b" ]; [ "a"; "c" ]; [ "a"; "d" ] ]
    (sorted_answers (Database.probe db "p" [ (0, "a") ]));
  Alcotest.check answers_t "two-column pattern"
    [ [ "a"; "c" ] ]
    (Database.probe db "p" [ (0, "a"); (1, "c") ]);
  Alcotest.check answers_t "miss" [] (Database.probe db "p" [ (0, "z") ]);
  Alcotest.check answers_t "unknown relation" [] (Database.probe db "q" [ (0, "a") ]);
  Alcotest.check answers_t "position beyond arity" []
    (Database.probe db "p" [ (5, "a") ]);
  Alcotest.(check int) "cardinality" 4 (Database.cardinality db "p");
  Alcotest.(check int) "distinct keys col 0" 2 (Database.distinct_keys db "p" [ 0 ])

(* -------------------- cost-based executor vs naive ------------------- *)

(* Every threshold setting must produce the same answer set: 0 forces
   hash joins everywhere, max_int forces nested loops everywhere, and
   the small values exercise the adaptive switch mid-query. *)
let thresholds = [ 0; 1; 2; Obda.Cq.default_join_threshold; max_int ]

let check_indexed_vs_naive msg db q =
  let expected = sorted_answers (Obda.Cq.Naive.evaluate ~facts:(Database.facts db) q) in
  List.iter
    (fun join_threshold ->
      check_answers
        (Printf.sprintf "%s (threshold %d)" msg join_threshold)
        expected
        (Obda.Cq.evaluate_src ~join_threshold ~source:(Database.source db) q))
    thresholds

let executor_db () =
  let db = Database.create () in
  Database.insert_all db "p"
    [ [ "a"; "b" ]; [ "b"; "c" ]; [ "a"; "d" ]; [ "c"; "c" ]; [ "d"; "d" ] ];
  Database.insert_all db "q" [ [ "b"; "a" ]; [ "c"; "b" ] ];
  Database.insert_all db "A" [ [ "a" ]; [ "b" ] ];
  Database.insert_all db "B" [ [ "c" ] ];
  Database.declare db "empty" ~arity:1;
  db

(* cross-products: atoms sharing no variables — the old backtracking
   scan handled these implicitly; the planner must not assume a join
   variable exists *)
let test_exec_cross_product () =
  let db = executor_db () in
  check_indexed_vs_naive "binary cross product" db
    (Cq.make [ "x"; "y" ] [ Cq.atom "A" [ v "x" ]; Cq.atom "B" [ v "y" ] ]);
  check_indexed_vs_naive "cross product then join" db
    (Cq.make [ "x"; "y" ]
       [ Cq.atom "A" [ v "x" ]; Cq.atom "B" [ v "z" ]; Cq.atom "p" [ v "x"; v "y" ] ])

(* atoms with all-constant arguments act as boolean guards *)
let test_exec_all_constant_atoms () =
  let db = executor_db () in
  check_indexed_vs_naive "guard present" db
    (Cq.make [ "x" ] [ Cq.atom "A" [ v "x" ]; Cq.atom "p" [ c "a"; c "b" ] ]);
  check_indexed_vs_naive "guard absent" db
    (Cq.make [ "x" ] [ Cq.atom "A" [ v "x" ]; Cq.atom "p" [ c "z"; c "z" ] ]);
  check_indexed_vs_naive "constant selection" db
    (Cq.make [ "y" ] [ Cq.atom "p" [ c "a"; v "y" ] ])

(* repeated variables within one atom: p(x,x) constrains the row to be
   reflexive even before x is bound anywhere else *)
let test_exec_repeated_vars () =
  let db = executor_db () in
  check_indexed_vs_naive "reflexive atom" db
    (Cq.make [ "x" ] [ Cq.atom "p" [ v "x"; v "x" ] ]);
  check_indexed_vs_naive "reflexive join" db
    (Cq.make [ "x"; "y" ]
       [ Cq.atom "p" [ v "x"; v "x" ]; Cq.atom "p" [ v "y"; v "x" ] ]);
  check_indexed_vs_naive "repeated var with constant" db
    (Cq.make [ "x" ] [ Cq.atom "p" [ v "x"; v "x" ]; Cq.atom "B" [ v "x" ] ])

(* empty relations (declared-empty and never-declared) must kill the
   disjunct wherever they land in the plan *)
let test_exec_empty_relations () =
  let db = executor_db () in
  check_indexed_vs_naive "declared empty" db
    (Cq.make [ "x" ] [ Cq.atom "A" [ v "x" ]; Cq.atom "empty" [ v "x" ] ]);
  check_indexed_vs_naive "undeclared" db
    (Cq.make [ "x" ] [ Cq.atom "nosuch" [ v "x" ] ]);
  check_indexed_vs_naive "empty first in a join chain" db
    (Cq.make [ "x"; "y" ]
       [ Cq.atom "empty" [ v "x" ]; Cq.atom "p" [ v "x"; v "y" ] ])

(* ------------------------------ rewriting ---------------------------- *)

let test_rewrite_atomic_hierarchy () =
  let t = parse {|
    Manager [= Employee
    Employee [= Person
  |} in
  let q = Cq.make [ "x" ] [ Cq.atom (Vabox.concept_pred "Person") [ v "x" ] ] in
  let ucq, stats = Rewrite.perfect_ref t [ q ] in
  (* Person(x) ∨ Employee(x) ∨ Manager(x) *)
  Alcotest.(check int) "three disjuncts" 3 (List.length ucq);
  Alcotest.(check bool) "stats populated" true (stats.Rewrite.output_size = 3)

let test_rewrite_exists () =
  (* q(x) :- worksFor(x, y)  with  Employee [= exists worksFor:
     rewriting adds Employee(x) *)
  let t = parse {|
    role worksFor
    Employee [= exists worksFor
  |} in
  let q = Cq.make [ "x" ] [ Cq.atom (Vabox.role_pred "worksFor") [ v "x"; v "y" ] ] in
  let ucq, _ = Rewrite.perfect_ref t [ q ] in
  let has_employee_disjunct =
    List.exists
      (fun q' ->
        List.exists
          (fun a -> a.Cq.pred = Vabox.concept_pred "Employee")
          q'.Cq.body)
      ucq
  in
  Alcotest.(check bool) "Employee(x) disjunct" true has_employee_disjunct

let test_rewrite_exists_blocked_when_bound () =
  (* q(x,y) :- worksFor(x,y): y is an answer variable, so the
     existential PI must NOT apply *)
  let t = parse {|
    role worksFor
    Employee [= exists worksFor
  |} in
  let q =
    Cq.make [ "x"; "y" ] [ Cq.atom (Vabox.role_pred "worksFor") [ v "x"; v "y" ] ]
  in
  let ucq, _ = Rewrite.perfect_ref t [ q ] in
  Alcotest.(check int) "no rewriting applies" 1 (List.length ucq)

let test_rewrite_reduce_enables () =
  (* classic reduce example: q(x) :- worksFor(x,y), worksFor(z,y)
     unifying the two atoms makes y unbound, enabling Employee [= exists
     worksFor; certain answers must include employees with no recorded
     co-worker *)
  let t = parse {|
    role worksFor
    Employee [= exists worksFor
  |} in
  let q =
    Cq.make [ "x" ]
      [
        Cq.atom (Vabox.role_pred "worksFor") [ v "x"; v "y" ];
        Cq.atom (Vabox.role_pred "worksFor") [ v "z"; v "y" ];
      ]
  in
  let ucq, _ = Rewrite.perfect_ref t [ q ] in
  let has_employee_disjunct =
    List.exists
      (fun q' ->
        List.exists (fun a -> a.Cq.pred = Vabox.concept_pred "Employee") q'.Cq.body)
      ucq
  in
  Alcotest.(check bool) "reduce enabled existential" true has_employee_disjunct

let test_rewrite_qualified () =
  (* Figure-2 style: q(x) :- isPartOf(x,y), State(y) and
     County [= exists isPartOf . State: County(x) must appear *)
  let t = parse {|
    role isPartOf
    County [= exists isPartOf . State
  |} in
  let q =
    Cq.make [ "x" ]
      [
        Cq.atom (Vabox.role_pred "isPartOf") [ v "x"; v "y" ];
        Cq.atom (Vabox.concept_pred "State") [ v "y" ];
      ]
  in
  let ucq, _ = Rewrite.perfect_ref t [ q ] in
  let has_county =
    List.exists
      (fun q' ->
        List.exists (fun a -> a.Cq.pred = Vabox.concept_pred "County") q'.Cq.body)
      ucq
  in
  Alcotest.(check bool) "County(x) disjunct" true has_county

let test_rewrite_inverse_role () =
  let t = parse {|
    role p
    role q
    p [= q^-
  |} in
  let q = Cq.make [ "x"; "y" ] [ Cq.atom (Vabox.role_pred "q") [ v "x"; v "y" ] ] in
  let ucq, _ = Rewrite.perfect_ref t [ q ] in
  (* q(x,y) ∨ p(y,x) *)
  let has_swapped_p =
    List.exists
      (fun q' ->
        List.exists
          (fun a ->
            a.Cq.pred = Vabox.role_pred "p"
            && a.Cq.args = [ v "y"; v "x" ])
          q'.Cq.body)
      ucq
  in
  Alcotest.(check bool) "inverse swap" true has_swapped_p

let test_presto_equivalent () =
  let t =
    parse
      {|
        role p
        A [= B
        B [= C
        C [= exists p
        exists p^- [= D
      |}
  in
  let q = Cq.make [ "x" ] [ Cq.atom (Vabox.concept_pred "C") [ v "x" ] ] in
  let u1, _ = Rewrite.perfect_ref t [ q ] in
  let u2, _ = Rewrite.presto_ref t [ q ] in
  (* logically equivalent: mutual UCQ containment *)
  let covered a b =
    List.for_all (fun qa -> List.exists (fun qb -> Cq.contains qb qa) b) a
  in
  Alcotest.(check bool) "presto covers perfectref" true (covered u1 u2);
  Alcotest.(check bool) "perfectref covers presto" true (covered u2 u1)

(* ------------------------------- chase ------------------------------- *)

let test_chase_basic () =
  let t = parse {|
    role p
    A [= B
    B [= exists p . C
  |} in
  let abox = Abox.of_list [ Abox.Concept_assert ("A", "o") ] in
  let q = Cq.make [ "x" ] [ Cq.atom (Vabox.concept_pred "B") [ v "x" ] ] in
  check_answers "derived member" [ [ "o" ] ] (Chase.certain_answers t abox q);
  (* the null witness must not leak into answers *)
  let q2 = Cq.make [ "y" ] [ Cq.atom (Vabox.concept_pred "C") [ v "y" ] ] in
  check_answers "null filtered" [] (Chase.certain_answers t abox q2);
  (* but boolean-style queries can use it through an existential var *)
  let q3 =
    Cq.make [ "x" ]
      [ Cq.atom (Vabox.role_pred "p") [ v "x"; v "y" ];
        Cq.atom (Vabox.concept_pred "C") [ v "y" ] ]
  in
  check_answers "existential witness" [ [ "o" ] ] (Chase.certain_answers t abox q3)

let test_chase_inconsistency () =
  let t = parse {|
    A [= B
    B [= not C
  |} in
  let bad = Abox.of_list [ Abox.Concept_assert ("A", "o"); Abox.Concept_assert ("C", "o") ] in
  let good = Abox.of_list [ Abox.Concept_assert ("A", "o") ] in
  Alcotest.(check bool) "violation" true (Chase.violates_ni t bad);
  Alcotest.(check bool) "no violation" false (Chase.violates_ni t good)

(* ------------------------------ mappings ----------------------------- *)

let university_db () =
  let db = Database.create () in
  Database.insert_all db "t_emp"
    [ [ "1"; "alice"; "acme" ]; [ "2"; "bob"; "initech" ] ];
  Database.insert_all db "t_mgr" [ [ "2" ] ];
  db

let university_mappings () =
  [
    Mapping.make
      ~source:(Cq.make [ "id" ] [ Cq.atom "t_emp" [ v "id"; v "n"; v "co" ] ])
      ~target:(Mapping.Concept_head ("Employee", v "id"));
    Mapping.make
      ~source:
        (Cq.make [ "id" ] [ Cq.atom "t_emp" [ v "id"; v "n"; v "co" ]; Cq.atom "t_mgr" [ v "id" ] ])
      ~target:(Mapping.Concept_head ("Manager", v "id"));
    Mapping.make
      ~source:(Cq.make [ "id"; "co" ] [ Cq.atom "t_emp" [ v "id"; v "n"; v "co" ] ])
      ~target:(Mapping.Role_head ("worksFor", v "id", v "co"));
  ]

let test_mapping_materialize () =
  let abox = Mapping.materialize (university_mappings ()) (university_db ()) in
  Alcotest.(check bool) "employee 1" true
    (Abox.mem (Abox.Concept_assert ("Employee", "1")) abox);
  Alcotest.(check bool) "manager 2" true
    (Abox.mem (Abox.Concept_assert ("Manager", "2")) abox);
  Alcotest.(check bool) "worksFor" true
    (Abox.mem (Abox.Role_assert ("worksFor", "1", "acme")) abox);
  Alcotest.(check int) "total" 5 (Abox.size abox)

let test_mapping_unfold_matches_materialize () =
  let mappings = university_mappings () in
  let db = university_db () in
  let q =
    Cq.make [ "x"; "y" ] [ Cq.atom (Vabox.role_pred "worksFor") [ v "x"; v "y" ] ]
  in
  let unfolded = Mapping.unfold mappings q in
  let via_unfold = Cq.evaluate_ucq ~facts:(Database.facts db) unfolded in
  let via_mat =
    Cq.evaluate ~facts:(Vabox.facts_of_abox (Mapping.materialize mappings db)) q
  in
  check_answers "unfold = materialize" via_mat via_unfold

let test_mapping_unfold_dead_atom () =
  (* an atom with no mapping kills the disjunct *)
  let mappings = university_mappings () in
  let q = Cq.make [ "x" ] [ Cq.atom (Vabox.concept_pred "Unmapped") [ v "x" ] ] in
  Alcotest.(check int) "no disjuncts" 0 (List.length (Mapping.unfold mappings q))

(* ------------------------------- engine ------------------------------ *)

let engine_tbox =
  {|
    role worksFor
    Manager [= Employee
    Employee [= exists worksFor
    exists worksFor^- [= Organization
    Manager [= not Intern
  |}

let test_engine_end_to_end () =
  let t = parse engine_tbox in
  let sys =
    Engine.create ~tbox:t ~mappings:(university_mappings ())
      ~database:(university_db ()) ()
  in
  (* who is an employee? manager bob (id 2) must be inferred *)
  let q = Cq.make [ "x" ] [ Cq.atom (Vabox.concept_pred "Employee") [ v "x" ] ] in
  check_answers "employees" [ [ "1" ]; [ "2" ] ] (Engine.certain_answers sys q);
  (* organizations come from the range axiom *)
  let q2 = Cq.make [ "x" ] [ Cq.atom (Vabox.concept_pred "Organization") [ v "x" ] ] in
  check_answers "orgs" [ [ "acme" ]; [ "initech" ] ] (Engine.certain_answers sys q2);
  Alcotest.(check bool) "consistent" true (Engine.consistent sys)

let test_engine_inconsistency () =
  let t = parse engine_tbox in
  let db = university_db () in
  Database.insert db "t_intern" [ "2" ];
  let mappings =
    Mapping.make
      ~source:(Cq.make [ "id" ] [ Cq.atom "t_intern" [ v "id" ] ])
      ~target:(Mapping.Concept_head ("Intern", v "id"))
    :: university_mappings ()
  in
  let sys = Engine.create ~tbox:t ~mappings ~database:db () in
  Alcotest.(check bool) "manager+intern inconsistent" false (Engine.consistent sys);
  match Engine.violations sys with
  | [ viol ] ->
    Alcotest.(check (list string)) "witness is bob" [ "2" ] viol.Obda.Consistency.witnesses
  | other -> Alcotest.failf "expected one violation, got %d" (List.length other)

let test_engine_abox_mode () =
  let t = parse engine_tbox in
  let abox =
    Abox.of_list
      [
        Abox.Concept_assert ("Manager", "carol");
        Abox.Role_assert ("worksFor", "dave", "acme");
      ]
  in
  let sys = Engine.of_abox t abox in
  let q = Cq.make [ "x" ] [ Cq.atom (Vabox.concept_pred "Employee") [ v "x" ] ] in
  check_answers "manager inferred" [ [ "carol" ] ] (Engine.certain_answers sys q);
  let q2 = Cq.make [ "x" ] [ Cq.atom (Vabox.concept_pred "Organization") [ v "x" ] ] in
  check_answers "range inferred" [ [ "acme" ] ] (Engine.certain_answers sys q2)

(* ----------- properties: indexed executor vs naive oracle ------------ *)

(* A fixed little schema keeps arities consistent across random inserts
   and random query atoms: two binary and two unary relations over a
   four-value pool — small enough that joins, collisions, duplicates
   and empty probes all happen constantly. *)
let exec_schema = [ ("p", 2); ("q", 2); ("A", 1); ("B", 1) ]
let exec_values = [ "a"; "b"; "c"; "d" ]

let gen_exec_row arity =
  QCheck.Gen.(list_repeat arity (oneofl exec_values))

let gen_exec_insert =
  QCheck.Gen.(
    let* name, arity = oneofl exec_schema in
    let* row = gen_exec_row arity in
    return (name, row))

let gen_exec_db = QCheck.Gen.(list_size (int_bound 25) gen_exec_insert)

let db_of_inserts inserts =
  let db = Database.create () in
  List.iter (fun (name, row) -> Database.insert db name row) inserts;
  db

(* random CQs over the schema: variables repeat across and within
   atoms, constants appear in any position, and the answer tuple is a
   prefix of the occurring variables (possibly empty: boolean query) *)
let gen_exec_query =
  QCheck.Gen.(
    let term = frequency [ (3, map (fun x -> Cq.Var x) (oneofl [ "x"; "y"; "z" ]));
                           (1, map (fun x -> Cq.Const x) (oneofl exec_values)) ] in
    let atom =
      let* name, arity = oneofl exec_schema in
      let* args = list_repeat arity term in
      return (Cq.atom name args)
    in
    let* body = list_size (int_range 1 4) atom in
    let occurring =
      List.concat_map
        (fun a -> List.filter_map (function Cq.Var v -> Some v | _ -> None) a.Cq.args)
        body
      |> List.sort_uniq compare
    in
    let* keep = int_bound (List.length occurring) in
    return { Cq.answer_vars = List.filteri (fun i _ -> i < keep) occurring; body })

let arbitrary_db_and_query =
  QCheck.make
    ~print:(fun (inserts, q) ->
      Printf.sprintf "inserts: %s\nquery: %s"
        (String.concat "; "
           (List.map (fun (n, row) -> n ^ "(" ^ String.concat "," row ^ ")") inserts))
        (Cq.to_string q))
    QCheck.Gen.(pair gen_exec_db gen_exec_query)

let prop_indexed_matches_naive =
  QCheck.Test.make ~count:300
    ~name:"indexed answers = naive answers at every join threshold"
    arbitrary_db_and_query
    (fun (inserts, q) ->
      let db = db_of_inserts inserts in
      let expected =
        sorted_answers (Obda.Cq.Naive.evaluate ~facts:(Database.facts db) q)
      in
      List.for_all
        (fun join_threshold ->
          sorted_answers
            (Obda.Cq.evaluate_src ~join_threshold ~source:(Database.source db) q)
          = expected)
        [ 0; 1; 4; max_int ])

(* index consistency: at any point of an arbitrary insert/probe
   interleaving, a pattern-index probe returns exactly the rows a
   filtered full scan does.  Probes mid-stream force lazy builds, so
   later inserts exercise the incremental maintenance path. *)
let gen_exec_op =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> `Insert i) gen_exec_insert);
        ( 1,
          let* name, arity = oneofl exec_schema in
          let* v0 = oneofl exec_values in
          let* v1 = oneofl exec_values in
          let* bound =
            if arity = 1 then return [ (0, v0) ]
            else oneofl [ [ (0, v0) ]; [ (1, v1) ]; [ (0, v0); (1, v1) ] ]
          in
          return (`Probe (name, bound)) );
      ])

let arbitrary_op_sequence =
  QCheck.make
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | `Insert (n, row) -> n ^ "(" ^ String.concat "," row ^ ")"
             | `Probe (n, bound) ->
               Printf.sprintf "probe %s [%s]" n
                 (String.concat ";"
                    (List.map (fun (i, x) -> Printf.sprintf "%d=%s" i x) bound)))
           ops))
    QCheck.Gen.(list_size (int_bound 40) gen_exec_op)

let prop_index_consistency =
  QCheck.Test.make ~count:300
    ~name:"index probe = filtered full scan under interleaved inserts"
    arbitrary_op_sequence
    (fun ops ->
      let db = Database.create () in
      List.for_all
        (function
          | `Insert (name, row) ->
            Database.insert db name row;
            true
          | `Probe (name, bound) ->
            let scan =
              List.filter
                (fun row ->
                  List.for_all (fun (i, x) -> List.nth_opt row i = Some x) bound)
                (Database.rows db name)
            in
            sorted_answers (Database.probe db name bound) = sorted_answers scan)
        ops)

(* -------------------- property: rewriting vs chase ------------------- *)

(* Random ABoxes over the small pools. *)
let gen_abox =
  QCheck.Gen.(
    let individual = oneofl [ "o1"; "o2"; "o3" ] in
    let assertion =
      frequency
        [
          ( 3,
            map2
              (fun a c -> Dllite.Abox.Concept_assert (a, c))
              (oneofl Ontgen.Qgen.concept_pool) individual );
          ( 2,
            map3
              (fun p c1 c2 -> Dllite.Abox.Role_assert (p, c1, c2))
              (oneofl Ontgen.Qgen.role_pool) individual individual );
        ]
    in
    list_size (int_bound 6) assertion)

(* Random small connected-ish CQs over the pools. *)
let gen_query =
  QCheck.Gen.(
    let var = oneofl [ "x"; "y"; "z" ] in
    let atom =
      frequency
        [
          (2, map2 (fun a t -> Cq.atom (Vabox.concept_pred a) [ Cq.Var t ])
               (oneofl Ontgen.Qgen.concept_pool) var);
          ( 3,
            map3
              (fun p t1 t2 -> Cq.atom (Vabox.role_pred p) [ Cq.Var t1; Cq.Var t2 ])
              (oneofl Ontgen.Qgen.role_pool) var var );
        ]
    in
    let* body = list_size (int_range 1 3) atom in
    (* answer variable: pick one that occurs *)
    let occurring =
      List.concat_map
        (fun a -> List.filter_map (function Cq.Var v -> Some v | _ -> None) a.Cq.args)
        body
    in
    match occurring with
    | [] -> return None
    | v0 :: _ -> return (Some { Cq.answer_vars = [ v0 ]; Cq.body }))

let arbitrary_kb_and_query =
  QCheck.make
    ~print:(fun (axioms, abox, q) ->
      Printf.sprintf "TBox:\n%s\nABox: %d assertions\nQuery: %s"
        (Tbox.to_string (Ontgen.Qgen.tbox_of_axioms axioms))
        (List.length abox)
        (match q with Some q -> Cq.to_string q | None -> "-"))
    QCheck.Gen.(triple Ontgen.Qgen.gen_axioms gen_abox gen_query)

(* Only positive-inclusion TBoxes: certain answers under inconsistency
   are trivially "everything", which the rewriting-based engine does not
   (and should not) model without a consistency pre-check. *)
let positive_only axioms = List.filter Dllite.Syntax.is_positive axioms

let prop_rewriting_matches_chase =
  QCheck.Test.make ~count:120 ~name:"PerfectRef certain answers = chase oracle"
    arbitrary_kb_and_query (fun (axioms, assertions, q) ->
      match q with
      | None -> true
      | Some q ->
        let t = Ontgen.Qgen.tbox_of_axioms (positive_only axioms) in
        let abox = Dllite.Abox.of_list assertions in
        let sys = Engine.of_abox t abox in
        let depth = List.length q.Cq.body + List.length axioms + 2 in
        let via_rewriting = sorted_answers (Engine.certain_answers sys q) in
        (* chase blow-ups are "instance too wide to check", not verdicts *)
        (match Chase.certain_answers ~max_depth:depth t abox q with
         | via_chase -> via_rewriting = sorted_answers via_chase
         | exception Chase.Overflow -> true))

let prop_presto_matches_chase =
  QCheck.Test.make ~count:80 ~name:"Presto-mode certain answers = chase oracle"
    arbitrary_kb_and_query (fun (axioms, assertions, q) ->
      match q with
      | None -> true
      | Some q ->
        let t = Ontgen.Qgen.tbox_of_axioms (positive_only axioms) in
        let abox = Dllite.Abox.of_list assertions in
        let sys = Engine.of_abox ~mode:Engine.Presto t abox in
        let depth = List.length q.Cq.body + List.length axioms + 2 in
        (match Chase.certain_answers ~max_depth:depth t abox q with
         | via_chase ->
           sorted_answers (Engine.certain_answers sys q) = sorted_answers via_chase
         | exception Chase.Overflow -> true))

let prop_consistency_matches_chase =
  QCheck.Test.make ~count:120 ~name:"rewritten consistency = chase violation"
    (QCheck.pair arbitrary_kb_and_query QCheck.unit)
    (fun ((axioms, assertions, _), ()) ->
      let t = Ontgen.Qgen.tbox_of_axioms axioms in
      let abox = Dllite.Abox.of_list assertions in
      let sys = Engine.of_abox t abox in
      match Chase.violates_ni t abox with
      | violated -> Engine.consistent sys = not violated
      | exception Chase.Overflow -> true)

let () =
  Alcotest.run "obda"
    [
      ( "cq",
        [
          Alcotest.test_case "bound variables" `Quick test_cq_bound_vars;
          Alcotest.test_case "head check" `Quick test_cq_make_checks;
          Alcotest.test_case "evaluation" `Quick test_cq_evaluate;
          Alcotest.test_case "containment" `Quick test_cq_containment;
          Alcotest.test_case "ucq minimization" `Quick test_cq_minimize;
        ] );
      ( "database",
        [
          Alcotest.test_case "store" `Quick test_database;
          Alcotest.test_case "ordering contract" `Quick
            test_database_ordering_contract;
          Alcotest.test_case "pattern-index probes" `Quick test_database_probe;
        ] );
      ( "executor",
        [
          Alcotest.test_case "cross products" `Quick test_exec_cross_product;
          Alcotest.test_case "all-constant atoms" `Quick
            test_exec_all_constant_atoms;
          Alcotest.test_case "repeated variables" `Quick test_exec_repeated_vars;
          Alcotest.test_case "empty relations" `Quick test_exec_empty_relations;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "atomic hierarchy" `Quick test_rewrite_atomic_hierarchy;
          Alcotest.test_case "existential" `Quick test_rewrite_exists;
          Alcotest.test_case "bound blocks existential" `Quick
            test_rewrite_exists_blocked_when_bound;
          Alcotest.test_case "reduce step" `Quick test_rewrite_reduce_enables;
          Alcotest.test_case "qualified existential" `Quick test_rewrite_qualified;
          Alcotest.test_case "inverse roles" `Quick test_rewrite_inverse_role;
          Alcotest.test_case "presto equivalence" `Quick test_presto_equivalent;
        ] );
      ( "chase",
        [
          Alcotest.test_case "canonical model" `Quick test_chase_basic;
          Alcotest.test_case "inconsistency" `Quick test_chase_inconsistency;
        ] );
      ( "mapping",
        [
          Alcotest.test_case "materialize" `Quick test_mapping_materialize;
          Alcotest.test_case "unfold = materialize" `Quick
            test_mapping_unfold_matches_materialize;
          Alcotest.test_case "dead atoms" `Quick test_mapping_unfold_dead_atom;
        ] );
      ( "engine",
        [
          Alcotest.test_case "end to end" `Quick test_engine_end_to_end;
          Alcotest.test_case "inconsistency report" `Quick test_engine_inconsistency;
          Alcotest.test_case "abox mode" `Quick test_engine_abox_mode;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_rewriting_matches_chase;
            prop_presto_matches_chase;
            prop_consistency_matches_chase;
            prop_indexed_matches_naive;
            prop_index_consistency;
          ] );
    ]
