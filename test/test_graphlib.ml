(* Unit and property tests for the graph substrate: bit vectors, digraph
   operations, SCC, agreement of the transitive-closure algorithms, and
   the domain pool underneath the parallel closures. *)

module Bitvec = Graphlib.Bitvec
module Graph = Graphlib.Graph
module Scc = Graphlib.Scc
module Closure = Graphlib.Closure
module Pool = Parallel.Pool

(* Pools are created with [Pool.create], not [Pool.global], so worker
   domains really spawn even on a single-core host — these tests must
   exercise cross-domain result assembly everywhere, not just on CI's
   multicore runners.  One pool per width, reused across every test and
   property below (the spawn-once contract). *)
let test_pools = lazy (List.map (fun j -> (j, Pool.create ~jobs:j ())) [ 1; 2; 4; 8 ])

(* ------------------------------ bitvec ------------------------------- *)

let test_bitvec_basics () =
  let v = Bitvec.create 130 in
  Alcotest.(check bool) "fresh bit unset" false (Bitvec.get v 0);
  Bitvec.set v 0;
  Bitvec.set v 63;
  Bitvec.set v 64;
  Bitvec.set v 129;
  Alcotest.(check bool) "bit 0" true (Bitvec.get v 0);
  Alcotest.(check bool) "bit 63" true (Bitvec.get v 63);
  Alcotest.(check bool) "bit 64" true (Bitvec.get v 64);
  Alcotest.(check bool) "bit 129" true (Bitvec.get v 129);
  Alcotest.(check bool) "bit 1" false (Bitvec.get v 1);
  Alcotest.(check int) "popcount" 4 (Bitvec.popcount v);
  Bitvec.clear v 63;
  Alcotest.(check bool) "cleared" false (Bitvec.get v 63);
  Alcotest.(check (list int)) "to_list" [ 0; 64; 129 ] (Bitvec.to_list v)

let test_bitvec_union_inter () =
  let a = Bitvec.create 100 and b = Bitvec.create 100 in
  Bitvec.set a 3;
  Bitvec.set a 70;
  Bitvec.set b 70;
  Bitvec.set b 99;
  let i = Bitvec.inter ~a ~b in
  Alcotest.(check (list int)) "inter" [ 70 ] (Bitvec.to_list i);
  let changed = Bitvec.union_into ~src:b ~dst:a in
  Alcotest.(check bool) "union changed" true changed;
  Alcotest.(check (list int)) "union" [ 3; 70; 99 ] (Bitvec.to_list a);
  let changed2 = Bitvec.union_into ~src:b ~dst:a in
  Alcotest.(check bool) "idempotent union" false changed2

let test_bitvec_bounds () =
  let v = Bitvec.create 10 in
  Alcotest.check_raises "oob get" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> ignore (Bitvec.get v 10));
  Alcotest.check_raises "negative set" (Invalid_argument "Bitvec: index out of bounds")
    (fun () -> Bitvec.set v (-1))

let test_bitvec_empty () =
  let v = Bitvec.create 0 in
  Alcotest.(check int) "zero length" 0 (Bitvec.length v);
  Alcotest.(check bool) "empty" true (Bitvec.is_empty v)

(* ------------------------------- graph ------------------------------- *)

let test_graph_edges () =
  let g = Graph.create ~initial_nodes:4 () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 0 1;
  (* duplicate ignored *)
  Alcotest.(check int) "edge count" 2 (Graph.edge_count g);
  Alcotest.(check bool) "mem" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "not mem" false (Graph.mem_edge g 1 0);
  Alcotest.(check (list int)) "succ" [ 1 ] (Graph.successors g 0);
  Alcotest.(check (list int)) "pred" [ 1 ] (Graph.predecessors g 2)

let test_graph_reach () =
  let g = Graph.create ~initial_nodes:5 () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 3 4;
  Alcotest.(check bool) "0 reaches 2" true (Graph.reaches g 0 2);
  Alcotest.(check bool) "2 not reaches 0" false (Graph.reaches g 2 0);
  Alcotest.(check bool) "reflexive" true (Graph.reaches g 2 2);
  Alcotest.(check bool) "cross component" false (Graph.reaches g 0 4);
  Alcotest.(check (list int)) "reachable set" [ 0; 1; 2 ]
    (Bitvec.to_list (Graph.reachable_from g 0));
  Alcotest.(check (list int)) "ancestors" [ 0; 1; 2 ]
    (Bitvec.to_list (Graph.ancestors g 2))

let test_graph_grow () =
  let g = Graph.create () in
  let a = Graph.add_node g in
  let b = Graph.add_node g in
  Graph.ensure_nodes g 100;
  Graph.add_edge g a 99;
  Graph.add_edge g b 50;
  Alcotest.(check int) "node count" 100 (Graph.node_count g);
  Alcotest.(check bool) "edge to grown node" true (Graph.mem_edge g 0 99)

let test_graph_transpose () =
  let g = Graph.create ~initial_nodes:3 () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  let t = Graph.transpose g in
  Alcotest.(check bool) "reversed" true (Graph.mem_edge t 1 0);
  Alcotest.(check bool) "reversed 2" true (Graph.mem_edge t 2 1);
  Alcotest.(check int) "same edge count" 2 (Graph.edge_count t)

let test_graph_topo () =
  let g = Graph.create ~initial_nodes:4 () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 0 2;
  Graph.add_edge g 1 3;
  Graph.add_edge g 2 3;
  let order = Graph.topological_order g in
  let pos v = Option.get (List.find_index (Int.equal v) order) in
  Alcotest.(check bool) "0 before 1" true (pos 0 < pos 1);
  Alcotest.(check bool) "1 before 3" true (pos 1 < pos 3);
  Alcotest.(check bool) "2 before 3" true (pos 2 < pos 3);
  Graph.add_edge g 3 0;
  Alcotest.check_raises "cyclic" (Failure "Graph.topological_order: graph is cyclic")
    (fun () -> ignore (Graph.topological_order g))

(* -------------------------------- scc -------------------------------- *)

let test_scc_basic () =
  let g = Graph.create ~initial_nodes:6 () in
  (* cycle 0-1-2, chain to 3, separate cycle 4-5 *)
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 0;
  Graph.add_edge g 2 3;
  Graph.add_edge g 4 5;
  Graph.add_edge g 5 4;
  let r = Scc.tarjan g in
  Alcotest.(check int) "three components" 3 r.Scc.count;
  Alcotest.(check int) "0,1,2 together" r.Scc.component.(0) r.Scc.component.(1);
  Alcotest.(check int) "0,1,2 together'" r.Scc.component.(0) r.Scc.component.(2);
  Alcotest.(check bool) "3 alone" true (r.Scc.component.(3) <> r.Scc.component.(0));
  Alcotest.(check int) "4,5 together" r.Scc.component.(4) r.Scc.component.(5);
  (* Tarjan ids are reverse topological: component of 0 reaches
     component of 3, so it must have the larger id. *)
  Alcotest.(check bool) "reverse topo ids" true
    (r.Scc.component.(0) > r.Scc.component.(3))

let test_scc_deep_chain () =
  (* a 50_000-node chain must not blow the stack (iterative Tarjan) *)
  let n = 50_000 in
  let g = Graph.create ~initial_nodes:n () in
  for i = 0 to n - 2 do
    Graph.add_edge g i (i + 1)
  done;
  let r = Scc.tarjan g in
  Alcotest.(check int) "all singleton" n r.Scc.count

let test_condensation () =
  let g = Graph.create ~initial_nodes:4 () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 3;
  let r = Scc.tarjan g in
  let dag = Scc.condensation g r in
  Alcotest.(check int) "dag nodes" 3 (Graph.node_count dag);
  Alcotest.(check int) "dag edges" 2 (Graph.edge_count dag);
  (* the condensation of anything is acyclic *)
  Alcotest.(check int) "topo works" 3 (List.length (Graph.topological_order dag))

(* ------------------------------ closure ------------------------------ *)

let closure_cases g =
  let pool = List.assoc 4 (Lazy.force test_pools) in
  [
    Closure.compute ~algorithm:Closure.Dfs g;
    Closure.compute ~algorithm:Closure.Warshall g;
    Closure.compute ~algorithm:Closure.Scc_condense g;
    Closure.compute ~algorithm:Closure.Par_dfs ~pool g;
    Closure.compute ~algorithm:Closure.Par_scc ~pool g;
  ]

let test_closure_simple () =
  let g = Graph.create ~initial_nodes:4 () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  List.iter
    (fun c ->
      Alcotest.(check bool) "0->2" true (Closure.reaches c 0 2);
      Alcotest.(check bool) "reflexive" true (Closure.reaches c 3 3);
      Alcotest.(check bool) "no back" false (Closure.reaches c 2 0))
    (closure_cases g)

let test_closure_cycle () =
  let g = Graph.create ~initial_nodes:3 () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 0;
  Graph.add_edge g 1 2;
  List.iter
    (fun c ->
      Alcotest.(check bool) "cycle 0->0" true (Closure.reaches c 0 0);
      Alcotest.(check bool) "cycle 1->0" true (Closure.reaches c 1 0);
      Alcotest.(check bool) "0->2 through cycle" true (Closure.reaches c 0 2))
    (closure_cases g)

let test_closure_ancestors () =
  let g = Graph.create ~initial_nodes:4 () in
  Graph.add_edge g 0 2;
  Graph.add_edge g 1 2;
  Graph.add_edge g 2 3;
  let c = Closure.compute g in
  Alcotest.(check (list int)) "ancestors of 3" [ 0; 1; 2; 3 ]
    (Bitvec.to_list (Closure.ancestors c 3));
  Alcotest.(check (list int)) "descendants of 0" [ 0; 2; 3 ]
    (Bitvec.to_list (Closure.descendants c 0))

let test_on_demand () =
  let g = Graph.create ~initial_nodes:4 () in
  Graph.add_edge g 0 1;
  Graph.add_edge g 1 2;
  let od = Closure.On_demand.create g in
  Alcotest.(check bool) "od 0->2" true (Closure.On_demand.reaches od 0 2);
  Alcotest.(check bool) "od cached" true (Closure.On_demand.reaches od 0 1);
  Alcotest.(check bool) "od no" false (Closure.On_demand.reaches od 3 0)

(* ------------------------------- pool -------------------------------- *)

let test_pool_parallel_for () =
  List.iter
    (fun (jobs, pool) ->
      Alcotest.(check int) "width" jobs (Pool.jobs pool);
      (* every slot written exactly once, by its own index *)
      List.iter
        (fun n ->
          let out = Array.make (max n 1) (-1) in
          Pool.parallel_for pool ~n (fun i -> out.(i) <- i * i);
          for i = 0 to n - 1 do
            Alcotest.(check int) (Printf.sprintf "j%d n%d slot %d" jobs n i)
              (i * i) out.(i)
          done)
        [ 0; 1; 7; 64; 1000 ])
    (Lazy.force test_pools)

let test_pool_map_chunks () =
  List.iter
    (fun (jobs, pool) ->
      let ranges = Pool.map_chunks pool ~n:10 ~chunk:3 (fun lo hi -> (lo, hi)) in
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "ranges in order at %d jobs" jobs)
        [ (0, 3); (3, 6); (6, 9); (9, 10) ]
        ranges;
      Alcotest.(check (list (pair int int))) "empty" []
        (Pool.map_chunks pool ~n:0 ~chunk:3 (fun lo hi -> (lo, hi))))
    (Lazy.force test_pools)

let test_pool_reuse_and_errors () =
  let pool = Pool.create ~jobs:3 () in
  (* batches reuse the same domains; an exception in any task surfaces
     in the caller after the batch drains, and the pool stays usable *)
  let total = ref 0 in
  for _ = 1 to 50 do
    let acc = Array.make 100 0 in
    Pool.parallel_for pool ~n:100 (fun i -> acc.(i) <- 1);
    total := !total + Array.fold_left ( + ) 0 acc
  done;
  Alcotest.(check int) "50 reused batches" 5000 !total;
  Alcotest.check_raises "task exception propagates" (Invalid_argument "boom")
    (fun () ->
      Pool.parallel_for pool ~n:64 (fun i ->
          if i = 33 then invalid_arg "boom"));
  let out = Array.make 10 0 in
  Pool.parallel_for pool ~n:10 (fun i -> out.(i) <- i);
  Alcotest.(check int) "pool usable after error" 45 (Array.fold_left ( + ) 0 out);
  Pool.shutdown pool

(* Random graph generator for the agreement property. *)
let gen_graph =
  QCheck.Gen.(
    let* n = int_range 1 25 in
    let* edges = list_size (int_bound 60) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
    return (n, edges))

let arbitrary_graph =
  QCheck.make
    ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat "; " (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) es)))
    gen_graph

let build_graph (n, es) =
  let g = Graph.create ~initial_nodes:n () in
  List.iter (fun (u, v) -> Graph.add_edge g u v) es;
  g

let prop_closure_agree =
  QCheck.Test.make ~count:300 ~name:"closure algorithms agree" arbitrary_graph
    (fun spec ->
      let g = build_graph spec in
      let dfs = Closure.compute ~algorithm:Closure.Dfs g in
      let warshall = Closure.compute ~algorithm:Closure.Warshall g in
      let scc = Closure.compute ~algorithm:Closure.Scc_condense g in
      Closure.equal dfs warshall && Closure.equal dfs scc)

let prop_parallel_closure_agree =
  QCheck.Test.make ~count:150
    ~name:"parallel closures equal Scc_condense at jobs 1/2/4/8" arbitrary_graph
    (fun spec ->
      let g = build_graph spec in
      let reference = Closure.compute ~algorithm:Closure.Scc_condense g in
      List.for_all
        (fun (_, pool) ->
          Closure.equal reference (Closure.compute ~algorithm:Closure.Par_scc ~pool g)
          && Closure.equal reference
               (Closure.compute ~algorithm:Closure.Par_dfs ~pool g))
        (Lazy.force test_pools))

let prop_closure_transitive =
  QCheck.Test.make ~count:200 ~name:"closure is transitive" arbitrary_graph
    (fun spec ->
      let g = build_graph spec in
      let c = Closure.compute g in
      let n = Graph.node_count g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          for w = 0 to n - 1 do
            if Closure.reaches c u v && Closure.reaches c v w then
              if not (Closure.reaches c u w) then ok := false
          done
        done
      done;
      !ok)

let prop_closure_vs_bfs =
  QCheck.Test.make ~count:300 ~name:"closure matches direct search" arbitrary_graph
    (fun spec ->
      let g = build_graph spec in
      let c = Closure.compute g in
      let n = Graph.node_count g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Closure.reaches c u v <> Graph.reaches g u v then ok := false
        done
      done;
      !ok)

let prop_scc_sound =
  QCheck.Test.make ~count:300 ~name:"scc equivalence = mutual reachability"
    arbitrary_graph (fun spec ->
      let g = build_graph spec in
      let r = Scc.tarjan g in
      let n = Graph.node_count g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          let same = r.Scc.component.(u) = r.Scc.component.(v) in
          let mutual = Graph.reaches g u v && Graph.reaches g v u in
          if same <> mutual then ok := false
        done
      done;
      !ok)

let () =
  Alcotest.run "graphlib"
    [
      ( "bitvec",
        [
          Alcotest.test_case "basics" `Quick test_bitvec_basics;
          Alcotest.test_case "union/inter" `Quick test_bitvec_union_inter;
          Alcotest.test_case "bounds" `Quick test_bitvec_bounds;
          Alcotest.test_case "empty" `Quick test_bitvec_empty;
        ] );
      ( "graph",
        [
          Alcotest.test_case "edges" `Quick test_graph_edges;
          Alcotest.test_case "reachability" `Quick test_graph_reach;
          Alcotest.test_case "growth" `Quick test_graph_grow;
          Alcotest.test_case "transpose" `Quick test_graph_transpose;
          Alcotest.test_case "topological order" `Quick test_graph_topo;
        ] );
      ( "scc",
        [
          Alcotest.test_case "basic components" `Quick test_scc_basic;
          Alcotest.test_case "deep chain (iterative)" `Quick test_scc_deep_chain;
          Alcotest.test_case "condensation" `Quick test_condensation;
        ] );
      ( "closure",
        [
          Alcotest.test_case "simple" `Quick test_closure_simple;
          Alcotest.test_case "cycle" `Quick test_closure_cycle;
          Alcotest.test_case "ancestors" `Quick test_closure_ancestors;
          Alcotest.test_case "on-demand" `Quick test_on_demand;
        ] );
      ( "pool",
        [
          Alcotest.test_case "parallel_for assembly" `Quick test_pool_parallel_for;
          Alcotest.test_case "map_chunks order" `Quick test_pool_map_chunks;
          Alcotest.test_case "reuse and error propagation" `Quick
            test_pool_reuse_and_errors;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_closure_agree;
            prop_parallel_closure_agree;
            prop_closure_transitive;
            prop_closure_vs_bfs;
            prop_scc_sound;
          ] );
    ]
