(* Tests for the benchmark generators: determinism, profile shape, and
   scale behaviour. *)

open Dllite
module Rng = Ontgen.Rng
module Generator = Ontgen.Generator
module Profiles = Ontgen.Profiles

(* -------------------------------- rng -------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let sa = List.init 20 (fun _ -> Rng.int a 1000) in
  let sb = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same stream" sa sb

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    if v < 0 || v >= 10 then Alcotest.failf "out of range: %d" v;
    let f = Rng.float r in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_rng_split_independent () =
  let r = Rng.create 13 in
  let s = Rng.split r in
  let a = List.init 10 (fun _ -> Rng.int r 1000) in
  let b = List.init 10 (fun _ -> Rng.int s 1000) in
  Alcotest.(check bool) "streams differ" true (a <> b)

let test_rng_distribution () =
  (* crude uniformity check: each decile of Rng.int _ 10 gets 5..15% *)
  let r = Rng.create 99 in
  let counts = Array.make 10 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let v = Rng.int r 10 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let share = float_of_int c /. float_of_int n in
      if share < 0.05 || share > 0.15 then
        Alcotest.failf "bucket %d share %.3f out of tolerance" i share)
    counts

let test_rng_chi_square () =
  (* [Rng.int] rejection-samples to kill modulo bias.  A chi-square
     goodness-of-fit test against uniform catches both the old bias and
     any regression in the rejection threshold.  Awkward bounds (not
     powers of two) are exactly where modulo bias shows. *)
  List.iter
    (fun bound ->
      let r = Rng.create 4242 in
      let n = 20_000 in
      let counts = Array.make bound 0 in
      for _ = 1 to n do
        let v = Rng.int r bound in
        counts.(v) <- counts.(v) + 1
      done;
      let expected = float_of_int n /. float_of_int bound in
      let chi2 =
        Array.fold_left
          (fun acc c ->
            let d = float_of_int c -. expected in
            acc +. (d *. d /. expected))
          0.0 counts
      in
      (* generous critical value: chi-square with <= 12 dof at p=0.001
         is ~32.9; a uniform stream stays far below, the old biased
         stream would only fail for bounds near 2^62 anyway, so this
         mostly guards the rejection loop against off-by-ones *)
      if chi2 > 40.0 then
        Alcotest.failf "bound %d: chi-square %.2f exceeds 40" bound chi2)
    [ 7; 10; 13 ]

(* ----------------------------- generator ----------------------------- *)

let test_generator_deterministic () =
  let p = Generator.default_profile in
  let t1 = Generator.generate ~seed:1 p in
  let t2 = Generator.generate ~seed:1 p in
  let t3 = Generator.generate ~seed:2 p in
  Alcotest.(check bool) "same seed same tbox" true (Tbox.equal t1 t2);
  Alcotest.(check bool) "different seed different tbox" false (Tbox.equal t1 t3)

let test_generator_signature_size () =
  let p = { Generator.default_profile with Generator.concepts = 100; roles = 10; attributes = 3 } in
  let t = Generator.generate p in
  let s = Tbox.signature t in
  Alcotest.(check int) "concepts" 100 (Signature.concept_count s);
  Alcotest.(check int) "roles" 10 (Signature.role_count s);
  Alcotest.(check int) "attributes" 3 (Signature.attribute_count s)

let test_generator_axioms_well_sorted () =
  (* everything the generator emits must survive printing + reparsing *)
  let t = Generator.generate (Generator.scale 0.2 Profiles.dolce) in
  Alcotest.(check bool) "nonempty" true (Tbox.axiom_count t > 50);
  let cls = Quonto.Classify.classify t in
  (* classification must run; coherence is profile-dependent *)
  Alcotest.(check bool) "classification runs" true
    (List.length (Quonto.Classify.name_level cls) >= 0)

let test_scale () =
  let p = Generator.scale 0.1 Profiles.gene in
  Alcotest.(check int) "scaled concepts" 2046 p.Generator.concepts;
  Alcotest.(check bool) "roles at least 1" true (p.Generator.roles >= 1);
  let zero = Generator.scale 0.00001 Profiles.mouse in
  Alcotest.(check int) "never below 1" 1 zero.Generator.concepts

let test_profiles_inventory () =
  Alcotest.(check int) "eleven Figure-1 rows" 11 (List.length Profiles.figure1);
  Alcotest.(check (list string)) "row order"
    [
      "Mouse"; "Transportation"; "DOLCE"; "AEO"; "Gene"; "EL-Galen"; "Galen";
      "FMA 1.4"; "FMA 2.0"; "FMA 3.2.1"; "FMA-OBO";
    ]
    (List.map (fun p -> p.Generator.label) Profiles.figure1)

let test_profiles_lookup () =
  (match Profiles.by_label "galen" with
   | Some p -> Alcotest.(check string) "case-insensitive" "Galen" p.Generator.label
   | None -> Alcotest.fail "lookup failed");
  Alcotest.(check bool) "unknown" true (Profiles.by_label "nope" = None)

let test_profile_shapes () =
  (* taxonomy-ish profiles have no disjointness; DOLCE is NI-dense *)
  let gen p = Generator.generate (Generator.scale 0.05 p) in
  let nis t = List.length (Tbox.negative_inclusions t) in
  Alcotest.(check int) "Mouse has no NIs" 0 (nis (gen Profiles.mouse));
  Alcotest.(check int) "Gene has no NIs" 0 (nis (gen Profiles.gene));
  Alcotest.(check bool) "DOLCE has NIs" true (nis (gen Profiles.dolce) > 0);
  (* Galen is denser than EL-Galen at the same signature size *)
  let galen = Generator.generate (Generator.scale 0.02 Profiles.galen) in
  let el_galen = Generator.generate (Generator.scale 0.02 Profiles.el_galen) in
  Alcotest.(check bool) "Galen denser" true
    (Tbox.axiom_count galen > Tbox.axiom_count el_galen)

let test_owl_generator () =
  let p = Generator.default_owl_profile in
  let t1 = Generator.generate_owl ~seed:5 p in
  let t2 = Generator.generate_owl ~seed:5 p in
  Alcotest.(check bool) "deterministic" true (t1 = t2);
  Alcotest.(check int) "axiom count" p.Generator.owl_axioms (List.length t1);
  (* some axioms must be beyond DL-Lite for the approximation pipeline
     to have work to do *)
  let r = Approx.Syntactic.approximate t1 in
  Alcotest.(check bool) "has expressive residue" true
    (List.length r.Approx.Syntactic.dropped > 0)

let () =
  Alcotest.run "ontgen"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "distribution" `Quick test_rng_distribution;
          Alcotest.test_case "chi-square uniformity" `Quick test_rng_chi_square;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "signature size" `Quick test_generator_signature_size;
          Alcotest.test_case "classifiable output" `Quick test_generator_axioms_well_sorted;
          Alcotest.test_case "scaling" `Quick test_scale;
          Alcotest.test_case "owl generator" `Quick test_owl_generator;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "inventory" `Quick test_profiles_inventory;
          Alcotest.test_case "lookup" `Quick test_profiles_lookup;
          Alcotest.test_case "shapes" `Quick test_profile_shapes;
        ] );
    ]
