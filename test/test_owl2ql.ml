(* Tests for the OWL 2 QL functional-syntax bridge. *)

open Dllite

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let parse s =
  match Parser.tbox_of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "parse error: %s" e

let rich_tbox =
  parse
    {|
      role p
      role q
      attr u
      attr v
      A [= B
      A [= not C
      B [= exists p
      exists p^- [= C
      A [= exists q . C
      p [= q
      p [= q^-
      p [= not q
      u [= v
      u [= not v
      delta(u) [= A
    |}

let test_render_shapes () =
  let text = Owl2ql.to_functional rich_tbox in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains text needle))
    [
      "Prefix(:=<";
      "Ontology(<";
      "Declaration(Class(:A))";
      "Declaration(ObjectProperty(:p))";
      "Declaration(DataProperty(:u))";
      "SubClassOf(:A :B)";
      "DisjointClasses(:A :C)";
      "SubClassOf(:B ObjectSomeValuesFrom(:p owl:Thing))";
      "SubClassOf(ObjectSomeValuesFrom(ObjectInverseOf(:p) owl:Thing) :C)";
      "SubClassOf(:A ObjectSomeValuesFrom(:q :C))";
      "SubObjectPropertyOf(:p :q)";
      "SubObjectPropertyOf(:p ObjectInverseOf(:q))";
      "DisjointObjectProperties(:p :q)";
      "SubDataPropertyOf(:u :v)";
      "DisjointDataProperties(:u :v)";
      "SubClassOf(DataSomeValuesFrom(:u rdfs:Literal) :A)";
    ]

let test_roundtrip_rich () =
  let text = Owl2ql.to_functional rich_tbox in
  let back = Owl2ql.of_functional text in
  Alcotest.(check bool) "roundtrip equal" true (Tbox.equal rich_tbox back)

let test_parse_complement () =
  (* ObjectComplementOf is accepted on the RHS even though we render
     disjointness as DisjointClasses *)
  let t =
    Owl2ql.of_functional
      "Ontology(SubClassOf(:A ObjectComplementOf(:B)))"
  in
  Alcotest.(check bool) "complement parsed" true
    (Tbox.mem (Syntax.Concept_incl (Syntax.Atomic "A", Syntax.C_neg (Syntax.Atomic "B"))) t)

let test_rejects_beyond_ql () =
  List.iter
    (fun source ->
      match Owl2ql.of_functional source with
      | _ -> Alcotest.failf "expected rejection of %s" source
      | exception Owl2ql.Unsupported _ -> ())
    [
      "Ontology(SubClassOf(:A ObjectAllValuesFrom(:p :B)))";
      "Ontology(SubClassOf(:A ObjectUnionOf(:B :C)))";
      "Ontology(TransitiveObjectProperty(:p))";
      "Ontology(SubClassOf(:A ObjectMinCardinality(2 :p)))";
    ]

let test_qualified_existential_boundaries () =
  (* DL-Lite_A allows ∃p.B only on the RHS of inclusions; the bridge
     must hold that line exactly *)
  (* LHS qualified existential is outside the fragment *)
  (match
     Owl2ql.of_functional
       "Ontology(SubClassOf(ObjectSomeValuesFrom(:p :B) :C))"
   with
   | _ -> Alcotest.fail "LHS qualified existential must be rejected"
   | exception Owl2ql.Unsupported _ -> ());
  (* ∃p.owl:Thing is the *unqualified* basic concept, on either side *)
  let t =
    Owl2ql.of_functional
      "Ontology(SubClassOf(:A ObjectSomeValuesFrom(:p owl:Thing)))"
  in
  Alcotest.(check bool) "owl:Thing filler is unqualified" true
    (Tbox.mem
       (Syntax.Concept_incl
          (Syntax.Atomic "A", Syntax.C_basic (Syntax.Exists (Syntax.Direct "p"))))
       t);
  (* qualified existential over an inverse role survives a roundtrip *)
  let t =
    parse {|
      role p
      A [= exists p^- . B
    |}
  in
  Alcotest.(check bool) "inverse-role qualified existential roundtrips" true
    (Tbox.equal t (Owl2ql.of_functional (Owl2ql.to_functional t)));
  (* nested fillers are beyond QL-as-we-speak-it *)
  (match
     Owl2ql.of_functional
       "Ontology(SubClassOf(:A ObjectSomeValuesFrom(:p ObjectSomeValuesFrom(:q :B))))"
   with
   | _ -> Alcotest.fail "nested filler must be rejected"
   | exception Owl2ql.Unsupported _ -> ());
  (* data ranges other than rdfs:Literal are not representable *)
  match
    Owl2ql.of_functional
      "Ontology(SubClassOf(DataSomeValuesFrom(:u xsd:integer) :A))"
  with
  | _ -> Alcotest.fail "typed data range must be rejected"
  | exception Owl2ql.Unsupported _ -> ()

let test_thing_as_subclass_rejected () =
  (* owl:Thing is only meaningful as an existential filler here — a bare
     ⊤ on the LHS has no DL-Lite_A counterpart *)
  match Owl2ql.of_functional "Ontology(SubClassOf(owl:Thing :A))" with
  | _ -> Alcotest.fail "bare owl:Thing LHS must be rejected"
  | exception Owl2ql.Unsupported _ -> ()

let test_disjointness_with_existential () =
  let t =
    parse {|
      role p
      concept A
      A [= not exists p
    |}
  in
  let text = Owl2ql.to_functional t in
  Alcotest.(check bool) "renders DisjointClasses over the existential" true
    (contains text "DisjointClasses(:A ObjectSomeValuesFrom(:p owl:Thing))");
  Alcotest.(check bool) "and roundtrips" true
    (Tbox.equal t (Owl2ql.of_functional text))

let prop_roundtrip =
  QCheck.Test.make ~count:150 ~name:"OWL 2 QL roundtrip preserves the TBox"
    Ontgen.Qgen.arbitrary_tbox (fun axioms ->
      (* signature declarations carry the unused pool names through *)
      let t = Ontgen.Qgen.tbox_of_axioms axioms in
      let back = Owl2ql.of_functional (Owl2ql.to_functional t) in
      Tbox.equal t back)

let () =
  Alcotest.run "owl2ql"
    [
      ( "export",
        [
          Alcotest.test_case "surface shapes" `Quick test_render_shapes;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_rich;
        ] );
      ( "import",
        [
          Alcotest.test_case "complement" `Quick test_parse_complement;
          Alcotest.test_case "rejects beyond QL" `Quick test_rejects_beyond_ql;
          Alcotest.test_case "qualified existential boundaries" `Quick
            test_qualified_existential_boundaries;
          Alcotest.test_case "bare Thing rejected" `Quick
            test_thing_as_subclass_rejected;
          Alcotest.test_case "disjointness with existential" `Quick
            test_disjointness_with_existential;
          QCheck_alcotest.to_alcotest prop_roundtrip;
        ] );
    ]
