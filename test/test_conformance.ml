(* The differential conformance tiers.

   Tier 1: replay the persisted counterexample corpus (test/corpus/) —
   every case in there was once a disagreement (or is a hand-written
   regression guard); all subjects must agree on all of them now.

   Tier 2: fixed-seed random cases from [Ontgen.Casegen] — the same
   generator the fuzz CLI uses, so any failure here is replayable as
   `fuzz --seed N --count 1`.

   Tier 3: harness self-test — inject a synthetic fault, check that the
   runner notices and that the shrinker reduces the failure to a
   1-minimal counterexample of a handful of axioms.

   Tier 4: the parallel campaign driver — running the same fixed-seed
   campaign across a real 4-domain pool must reproduce the sequential
   driver's failure, shrunk corpus entry and report byte for byte. *)

module Runner = Conformance.Runner
module Subjects = Conformance.Subjects
module Shrink = Conformance.Shrink
module Corpus = Conformance.Corpus
module Drive = Conformance.Drive

let check_agrees case =
  let outcome = Runner.check case in
  match outcome.Runner.disagreements with
  | [] -> ()
  | d :: _ ->
    Alcotest.failf "case %s: %d disagreement(s), first:\n%s" case.Runner.label
      (List.length outcome.Runner.disagreements)
      (Conformance.Diff.to_string d)

(* ------------------------------ corpus ------------------------------ *)

(* cwd is _build/default/test under `dune runtest` (the glob_files dep
   stages the corpus there) but the project root under `dune exec` *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else Filename.concat "test" "corpus"

let test_corpus_replay () =
  let cases = Corpus.load_dir corpus_dir in
  Alcotest.(check bool) "corpus present" true (List.length cases >= 4);
  List.iter check_agrees cases

let test_corpus_roundtrip () =
  let rng = Ontgen.Rng.create 2024 in
  let tbox = Ontgen.Casegen.tbox rng in
  let abox = Ontgen.Casegen.abox rng in
  let q = Ontgen.Casegen.query rng in
  let case = { Runner.label = "roundtrip"; tbox; data = Some (abox, q) } in
  let case' = Corpus.of_string ~label:"roundtrip" (Corpus.to_string case) in
  Alcotest.(check bool) "tbox survives" true (Dllite.Tbox.equal tbox case'.Runner.tbox);
  match case'.Runner.data with
  | None -> Alcotest.fail "data section lost"
  | Some (abox', q') ->
    Alcotest.(check bool) "abox survives" true
      (Dllite.Abox.assertions abox = Dllite.Abox.assertions abox');
    Alcotest.(check string) "query survives" (Obda.Cq.to_string q)
      (Obda.Cq.to_string q')

let test_corpus_rejects_malformed () =
  List.iter
    (fun text ->
      match Corpus.of_string ~label:"bad" text with
      | _ -> Alcotest.failf "expected Malformed for %S" text
      | exception Corpus.Malformed _ -> ())
    [
      "A [= B";                                     (* content before [tbox] *)
      "[tbox]\nconcept A\n[abox]\nA(ann)";          (* abox without query *)
      "[tbox]\nconcept A\n[abox]\nMystery(ann)\n[query]\nx <- A(x)";
      "[tbox]\nconcept A\n[query]\nx <- A(x\n";     (* malformed query *)
    ]

(* --------------------------- fixed seeds ---------------------------- *)

let test_random_tboxes () =
  for seed = 1 to 40 do
    let rng = Ontgen.Rng.create seed in
    check_agrees
      { Runner.label = Printf.sprintf "tbox-seed-%d" seed;
        tbox = Ontgen.Casegen.tbox rng;
        data = None }
  done

let test_random_data_cases () =
  for seed = 101 to 120 do
    let rng = Ontgen.Rng.create seed in
    let tbox = Ontgen.Casegen.tbox rng in
    let data = Some (Ontgen.Casegen.abox rng, Ontgen.Casegen.query rng) in
    check_agrees { Runner.label = Printf.sprintf "data-seed-%d" seed; tbox; data }
  done

let test_profile_tier () =
  (* scaled-down Figure-1 shapes, no oracle (the tableau times out on
     exactly these inputs — that is Figure 1's point) *)
  let config = { Runner.default_config with Runner.with_oracle = false } in
  List.iter
    (fun label ->
      match Ontgen.Profiles.by_label label with
      | None -> Alcotest.failf "unknown profile %s" label
      | Some p ->
        for seed = 1 to 3 do
          let case =
            Runner.case
              ~label:(Printf.sprintf "%s-seed-%d" label seed)
              (Ontgen.Casegen.profile_tbox ~seed p)
          in
          let outcome = Runner.check ~config case in
          if outcome.Runner.disagreements <> [] then
            Alcotest.failf "profile case %s disagrees:\n%s" case.Runner.label
              (Conformance.Diff.to_string (List.hd outcome.Runner.disagreements))
        done)
    [ "mouse"; "dolce"; "galen" ]

(* --------------------------- self-test ------------------------------ *)

let injected_config =
  { Runner.default_config with Runner.fault = Subjects.Drop_inverse_role_axioms }

let find_injected_failure () =
  let rec go seed =
    if seed > 100 then Alcotest.fail "no injected failure within 100 seeds"
    else begin
      let rng = Ontgen.Rng.create seed in
      let case =
        Runner.case ~label:(Printf.sprintf "inject-seed-%d" seed)
          (Ontgen.Casegen.tbox rng)
      in
      if (Runner.check ~config:injected_config case).Runner.disagreements <> [] then
        case
      else go (seed + 1)
    end
  in
  go 1

let test_injected_fault_caught_and_shrunk () =
  let case = find_injected_failure () in
  let still_failing c =
    (Runner.check ~config:injected_config c).Runner.disagreements <> []
  in
  let shrunk, stats = Shrink.minimize ~still_failing case in
  Alcotest.(check bool)
    (Printf.sprintf "shrunk to <= 10 axioms (got %d)" stats.Shrink.final_axioms)
    true
    (stats.Shrink.final_axioms <= 10);
  Alcotest.(check bool) "shrunk case still fails" true (still_failing shrunk);
  (* 1-minimality: removing any single remaining axiom cures the case *)
  List.iter
    (fun ax ->
      let tbox' =
        Dllite.Tbox.filter
          (fun a -> not (Dllite.Syntax.equal_axiom a ax))
          shrunk.Runner.tbox
      in
      Alcotest.(check bool)
        ("removing " ^ Dllite.Syntax.axiom_to_string ax ^ " cures the case")
        false
        (still_failing { shrunk with Runner.tbox = tbox' }))
    (Dllite.Tbox.axioms shrunk.Runner.tbox)

let test_healthy_subjects_pass_injection_seeds () =
  (* the same seeds with no fault installed must be clean — guards
     against the self-test passing for the wrong reason *)
  for seed = 1 to 10 do
    let rng = Ontgen.Rng.create seed in
    check_agrees
      { Runner.label = Printf.sprintf "healthy-seed-%d" seed;
        tbox = Ontgen.Casegen.tbox rng;
        data = None }
  done

(* ------------------------- parallel driver -------------------------- *)

(* [Pool.create] (not [global]) so the domains really spawn even on a
   single-core host. *)
let with_pool ~jobs f =
  let pool = Parallel.Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) (fun () -> f pool)

let test_parallel_driver_reproduces_failure () =
  let config =
    { Runner.default_config with
      Runner.fault = Subjects.Drop_inverse_role_axioms }
  in
  let spec = { Drive.seed = 1; count = 30; profile = None; config } in
  let seq = Drive.run ~jobs:1 spec in
  let par = with_pool ~jobs:4 (fun pool -> Drive.run ~pool spec) in
  (match (seq.Drive.failure, par.Drive.failure) with
   | Some a, Some b ->
     Alcotest.(check int) "same failing seed" a.Drive.case_seed b.Drive.case_seed;
     Alcotest.(check string) "same shrunk corpus entry"
       (Corpus.to_string a.Drive.shrunk)
       (Corpus.to_string b.Drive.shrunk);
     Alcotest.(check int) "same shrink reruns"
       a.Drive.stats.Shrink.reruns b.Drive.stats.Shrink.reruns
   | None, None -> Alcotest.fail "expected the injected fault to be found"
   | Some _, None -> Alcotest.fail "only the sequential driver found the fault"
   | None, Some _ -> Alcotest.fail "only the parallel driver found the fault");
  Alcotest.(check string) "same report"
    (Conformance.Report.summary seq.Drive.report)
    (Conformance.Report.summary par.Drive.report)

let test_parallel_driver_clean_campaign () =
  let spec =
    { Drive.seed = 1; count = 12; profile = None; config = Runner.default_config }
  in
  let seq = Drive.run ~jobs:1 spec in
  let par = with_pool ~jobs:3 (fun pool -> Drive.run ~pool spec) in
  Alcotest.(check bool) "no sequential failure" true (seq.Drive.failure = None);
  Alcotest.(check bool) "no parallel failure" true (par.Drive.failure = None);
  Alcotest.(check string) "same report"
    (Conformance.Report.summary seq.Drive.report)
    (Conformance.Report.summary par.Drive.report)

let () =
  Alcotest.run "conformance"
    [
      ( "corpus",
        [
          Alcotest.test_case "replay" `Quick test_corpus_replay;
          Alcotest.test_case "roundtrip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "malformed" `Quick test_corpus_rejects_malformed;
        ] );
      ( "fixed-seed",
        [
          Alcotest.test_case "tbox cases" `Quick test_random_tboxes;
          Alcotest.test_case "data cases" `Quick test_random_data_cases;
          Alcotest.test_case "profile cases" `Quick test_profile_tier;
        ] );
      ( "self-test",
        [
          Alcotest.test_case "fault caught and shrunk" `Quick
            test_injected_fault_caught_and_shrunk;
          Alcotest.test_case "healthy seeds clean" `Quick
            test_healthy_subjects_pass_injection_seeds;
        ] );
      ( "parallel-driver",
        [
          Alcotest.test_case "jobs 4 reproduces the jobs 1 failure corpus" `Quick
            test_parallel_driver_reproduces_failure;
          Alcotest.test_case "jobs 3 reproduces a clean campaign" `Quick
            test_parallel_driver_clean_campaign;
        ] );
    ]
