(* Tests for the query/mapping/facts text formats. *)

open Dllite
module Cq = Obda.Cq
module Qparse = Obda.Qparse

let signature =
  Signature.empty
  |> Signature.add_concept "Employee"
  |> Signature.add_role "worksFor"
  |> Signature.add_attribute "salary"

let test_parse_query () =
  let q =
    Qparse.parse_query ~signature "x, y <- worksFor(x, y), Employee(x)"
  in
  Alcotest.(check (list string)) "answer vars" [ "x"; "y" ] q.Cq.answer_vars;
  Alcotest.(check int) "two atoms" 2 (List.length q.Cq.body);
  (match q.Cq.body with
   | [ a1; a2 ] ->
     Alcotest.(check string) "role tagged" "r$worksFor" a1.Cq.pred;
     Alcotest.(check string) "concept tagged" "c$Employee" a2.Cq.pred
   | _ -> Alcotest.fail "bad body")

let test_parse_query_constants () =
  let q = Qparse.parse_query ~signature {|x <- dept(x, "R&D")|} in
  match q.Cq.body with
  | [ a ] ->
    Alcotest.(check string) "db relation untagged" "dept" a.Cq.pred;
    Alcotest.(check bool) "constant" true
      (List.exists (function Cq.Const "R&D" -> true | _ -> false) a.Cq.args)
  | _ -> Alcotest.fail "bad body"

let test_parse_query_boolean () =
  let q = Qparse.parse_query ~signature " <- Employee(x)" in
  Alcotest.(check (list string)) "boolean" [] q.Cq.answer_vars

let test_parse_query_errors () =
  (match Qparse.parse_query ~signature "x, Employee(x)" with
   | _ -> Alcotest.fail "expected error"
   | exception Qparse.Parse_error _ -> ());
  (match Qparse.parse_query ~signature "z <- Employee(x)" with
   | _ -> Alcotest.fail "answer var must occur"
   | exception Qparse.Parse_error _ -> ())

let test_parse_query_malformed () =
  (* each of these must raise Parse_error, not silently mis-parse *)
  List.iter
    (fun text ->
      match Qparse.parse_query ~signature text with
      | q ->
        Alcotest.failf "expected Parse_error for %S, got %s" text
          (Cq.to_string q)
      | exception Qparse.Parse_error _ -> ())
    [
      "x <- worksFor(x";          (* unclosed paren *)
      "x <- ";                    (* empty body *)
      {|x <- dept(x, "R&D|};      (* unterminated constant *)
      "x <- worksFor(a,,b)";      (* empty term *)
    ]

let test_parse_query_arrow_in_constant () =
  (* "<-" inside a quoted constant is data, not the separator *)
  let q = Qparse.parse_query ~signature {|x <- note(x, "a <- b")|} in
  match q.Cq.body with
  | [ a ] ->
    Alcotest.(check bool) "constant kept verbatim" true
      (List.exists (function Cq.Const "a <- b" -> true | _ -> false) a.Cq.args)
  | _ -> Alcotest.fail "bad body"

let test_parse_mappings () =
  let mappings =
    Qparse.parse_mappings ~signature
      {|
        # employees come from the HR table
        map Employee(id) <- t_emp(id, n, co)
        map worksFor(id, co) <- t_emp(id, n, co)
        map salary(id, s) <- t_pay(id, s)
      |}
  in
  Alcotest.(check int) "three mappings" 3 (List.length mappings);
  match mappings with
  | [ m1; m2; m3 ] ->
    (match m1.Obda.Mapping.target with
     | Obda.Mapping.Concept_head ("Employee", Cq.Var "id") -> ()
     | _ -> Alcotest.fail "bad concept head");
    (match m2.Obda.Mapping.target with
     | Obda.Mapping.Role_head ("worksFor", Cq.Var "id", Cq.Var "co") -> ()
     | _ -> Alcotest.fail "bad role head");
    (match m3.Obda.Mapping.target with
     | Obda.Mapping.Attr_head ("salary", Cq.Var "id", Cq.Var "s") -> ()
     | _ -> Alcotest.fail "bad attr head")
  | _ -> Alcotest.fail "wrong count"

let test_parse_mappings_errors () =
  (* head must be an ontology predicate *)
  (match Qparse.parse_mappings ~signature "map t_emp(id) <- t_emp(id, n, c)" with
   | _ -> Alcotest.fail "expected error"
   | exception Qparse.Parse_error _ -> ());
  (* head variables must be answered by the source *)
  match Qparse.parse_mappings ~signature "map Employee(id) <- t_emp(x, n, c)" with
  | _ -> Alcotest.fail "expected unanswered-variable error"
  | exception Qparse.Parse_error _ -> ()

let test_load_facts () =
  let db = Obda.Database.create () in
  Qparse.load_facts db {|
    # facts
    t_emp(e1, ada, acme)
    t_flag(e1)
    t_note(e2, "hello, world")
  |};
  Alcotest.(check int) "rows loaded" 3 (Obda.Database.size db);
  Alcotest.(check (list (list string))) "quoted comma kept"
    [ [ "e2"; "hello, world" ] ]
    (Obda.Database.rows db "t_note")

let () =
  Alcotest.run "qparse"
    [
      ( "queries",
        [
          Alcotest.test_case "basic" `Quick test_parse_query;
          Alcotest.test_case "constants" `Quick test_parse_query_constants;
          Alcotest.test_case "boolean" `Quick test_parse_query_boolean;
          Alcotest.test_case "errors" `Quick test_parse_query_errors;
          Alcotest.test_case "malformed" `Quick test_parse_query_malformed;
          Alcotest.test_case "arrow in constant" `Quick
            test_parse_query_arrow_in_constant;
        ] );
      ( "mappings",
        [
          Alcotest.test_case "basic" `Quick test_parse_mappings;
          Alcotest.test_case "errors" `Quick test_parse_mappings_errors;
        ] );
      ("facts", [ Alcotest.test_case "loading" `Quick test_load_facts ]);
    ]
