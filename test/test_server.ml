(* The serving layer: LRU mechanics, TBox fingerprints, the wire codec,
   the Service's cache behaviour — and the soundness property that
   justifies caching at all: under random interleavings of TBox swaps,
   data loads and repeated queries, a caching Service answers
   byte-identically to a fresh, cache-less Engine, at every LRU
   capacity including the degenerate 0 and 1. *)

open Dllite
module Lru = Server.Lru
module Wire = Server.Wire
module Service = Server.Service

(* ------------------------------- LRU -------------------------------- *)

(* counter assertions read the cache's [Obs] registry — the counters'
   only home since the PR-4 [Lru.stats] snapshot shim was retired *)
let lru_counted r name =
  List.find_map
    (fun { Obs.name = n; labels; value } ->
      if n = name && labels = [ ("cache", "test") ] then Some value else None)
    (Obs.Registry.samples r)
  |> Option.value ~default:0.0 |> int_of_float

let lru_with_metrics ~capacity =
  let r = Obs.Registry.create () in
  (Lru.create ~metrics:(r, [ ("cache", "test") ]) ~capacity (), r)

let test_lru_basic () =
  let c, r = lru_with_metrics ~capacity:2 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Alcotest.(check (option int)) "a cached" (Some 1) (Lru.find c "a");
  (* a was promoted by the find, so inserting c evicts b *)
  Lru.put c "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Lru.find c "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Lru.find c "a");
  Alcotest.(check (option int)) "c cached" (Some 3) (Lru.find c "c");
  Alcotest.(check (list string)) "MRU order" [ "c"; "a" ] (Lru.keys c);
  Alcotest.(check int) "hits" 3 (lru_counted r "obda_cache_hits_total");
  Alcotest.(check int) "misses" 1 (lru_counted r "obda_cache_misses_total");
  Alcotest.(check int) "evictions" 1 (lru_counted r "obda_cache_evictions_total");
  Alcotest.(check int) "size" 2 (lru_counted r "obda_cache_size")

let test_lru_capacity_zero () =
  let c, r = lru_with_metrics ~capacity:0 in
  Lru.put c "a" 1;
  Alcotest.(check (option int)) "stores nothing" None (Lru.find c "a");
  Alcotest.(check int) "size 0" 0 (Lru.length c);
  Alcotest.(check int) "put counted" 1 (lru_counted r "obda_cache_insertions_total");
  Alcotest.(check int) "self-evicted" 1 (lru_counted r "obda_cache_evictions_total")

let test_lru_capacity_one () =
  let c, r = lru_with_metrics ~capacity:1 in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  Alcotest.(check (option int)) "a evicted" None (Lru.find c "a");
  Alcotest.(check (option int)) "b is the resident" (Some 2) (Lru.find c "b");
  (* refreshing the resident must not evict it *)
  Lru.put c "b" 20;
  Alcotest.(check (option int)) "refreshed in place" (Some 20) (Lru.find c "b");
  Alcotest.(check int) "exactly one eviction" 1
    (lru_counted r "obda_cache_evictions_total")

let test_lru_remove_and_clear () =
  let c, r = lru_with_metrics ~capacity:4 in
  List.iter (fun (k, v) -> Lru.put c k v) [ ("a", 1); ("b", 2); ("c", 3) ];
  Lru.remove c "b";
  Alcotest.(check (option int)) "removed" None (Lru.find c "b");
  Alcotest.(check int) "removal is not an eviction" 0
    (lru_counted r "obda_cache_evictions_total");
  Lru.clear c;
  Alcotest.(check int) "cleared" 0 (Lru.length c);
  Alcotest.(check (list string)) "empty list" [] (Lru.keys c);
  (* the list structure must still be sound after a clear *)
  Lru.put c "z" 26;
  Alcotest.(check (option int)) "usable after clear" (Some 26) (Lru.find c "z")

let test_lru_negative_capacity () =
  Alcotest.check_raises "negative capacity"
    (Invalid_argument "Lru.create: negative capacity") (fun () ->
      ignore (Lru.create ~capacity:(-1) ()))

(* ---------------------------- fingerprints --------------------------- *)

let tbox_of_string s = Parser.tbox_of_string_exn s

let test_fingerprint_stable () =
  let t1 = tbox_of_string "A [= B\nB [= C\nrole p\nexists p [= A" in
  let t2 = tbox_of_string "exists p [= A\nB [= C\nrole p\nA [= B" in
  Alcotest.(check string) "axiom order is canonicalized" (Tbox.fingerprint t1)
    (Tbox.fingerprint t2)

let test_fingerprint_sensitive () =
  let t1 = tbox_of_string "A [= B" in
  let t2 = tbox_of_string "A [= C" in
  let t3 = tbox_of_string "A [= B\nconcept C" in
  Alcotest.(check bool) "different axioms" false
    (Tbox.fingerprint t1 = Tbox.fingerprint t2);
  (* same axioms, larger declared signature: the signature is part of
     the semantics (it scopes classification), so it must be part of
     the fingerprint *)
  Alcotest.(check bool) "signature matters" false
    (Tbox.fingerprint t1 = Tbox.fingerprint t3)

let test_fingerprint_revert () =
  let original = tbox_of_string "A [= B\nB [= C" in
  let edited = tbox_of_string "A [= B\nB [= C\nC [= D" in
  let reverted = tbox_of_string "B [= C\nA [= B" in
  Alcotest.(check bool) "edit changes fp" false
    (Tbox.fingerprint original = Tbox.fingerprint edited);
  Alcotest.(check string) "revert restores fp" (Tbox.fingerprint original)
    (Tbox.fingerprint reverted)

(* ------------------------------ wire codec --------------------------- *)

let feed_all lines =
  let d = Wire.decoder () in
  List.filter_map
    (fun line ->
      match Wire.feed d line with
      | Wire.Request r -> Some (Result.Ok r)
      | Wire.Error e -> Some (Result.Error e)
      | Wire.More -> None)
    lines

let roundtrip r =
  match feed_all (Wire.encode_request r) with
  | [ Result.Ok r' ] -> r' = r
  | _ -> false

let test_wire_roundtrip () =
  List.iter
    (fun r -> Alcotest.(check bool) "request roundtrips" true (roundtrip r))
    [
      Wire.Load { session = "s1"; kind = Wire.K_tbox; payload = [ "A [= B"; "" ] };
      Wire.Load { session = "s1"; kind = Wire.K_facts; payload = [] };
      Wire.Load { session = "x"; kind = Wire.K_abox; payload = [ "A(a)" ] };
      Wire.Load { session = "x"; kind = Wire.K_mappings; payload = [ "m" ] };
      Wire.Classify { session = "s1" };
      Wire.Prepare { session = "s1"; name = "q0"; query = "x <- c$A(x), r$p(x, y)" };
      Wire.Ask { session = "s1"; query = Wire.Named "q0" };
      Wire.Ask { session = "s1"; query = Wire.Inline "x <- c$A(x)" };
      Wire.Stats None;
      Wire.Stats (Some "s1");
      Wire.Quit;
    ]

let test_wire_payload_verbatim () =
  (* payload lines are counted, never parsed: command-looking lines
     inside a payload must come through untouched *)
  let payload = [ "QUIT"; "ASK x ? y"; ""; "  indented " ] in
  let r = Wire.Load { session = "s"; kind = Wire.K_tbox; payload } in
  match feed_all (Wire.encode_request r) with
  | [ Result.Ok (Wire.Load l) ] ->
    Alcotest.(check (list string)) "verbatim payload" payload l.payload
  | _ -> Alcotest.fail "payload did not roundtrip"

let test_wire_malformed () =
  let errors lines =
    List.filter_map
      (function Result.Error e -> Some e | Result.Ok _ -> None)
      (feed_all lines)
  in
  Alcotest.(check int) "unknown verb" 1 (List.length (errors [ "FROBNICATE now" ]));
  Alcotest.(check int) "bad kind" 1 (List.length (errors [ "LOAD s JUNK 3" ]));
  Alcotest.(check int) "bad count" 1 (List.length (errors [ "LOAD s TBOX x" ]));
  Alcotest.(check int) "negative count" 1 (List.length (errors [ "LOAD s TBOX -1" ]));
  Alcotest.(check int) "bad session chars" 1
    (List.length (errors [ "CLASSIFY bad session" ]));
  Alcotest.(check int) "payload over limit" 1
    (List.length (errors [ "LOAD s TBOX 1000001" ]));
  (* blank lines between requests are fine *)
  Alcotest.(check int) "blank tolerated" 0 (List.length (errors [ ""; "" ]))

let test_wire_line_too_long () =
  let d = Wire.decoder ~limits:{ Wire.max_line = 64; max_payload_lines = 10 } () in
  (match Wire.feed d (String.make 100 'x') with
   | Wire.Error _ -> ()
   | _ -> Alcotest.fail "over-long line must be an error");
  (* ...and it must also abort a half-collected payload *)
  (match Wire.feed d "LOAD s TBOX 2" with
   | Wire.More -> ()
   | _ -> Alcotest.fail "LOAD header should await payload");
  (match Wire.feed d (String.make 100 'y') with
   | Wire.Error _ -> ()
   | _ -> Alcotest.fail "over-long payload line must be an error");
  match Wire.feed d "QUIT" with
  | Wire.Request Wire.Quit -> ()
  | _ -> Alcotest.fail "decoder must resynchronize after the error"

let test_wire_v2_roundtrip () =
  List.iter
    (fun r -> Alcotest.(check bool) "v2 request roundtrips" true (roundtrip r))
    [
      Wire.Hello 2;
      Wire.Hello 7;
      Wire.Bulk_chunk { session = "s1"; payload = [ "a(\"x\")"; "b(\"y\")" ] };
      Wire.Bulk_chunk { session = "s1"; payload = [] };
      Wire.Bulk_end { session = "s1" };
      Wire.Bulk_abort { session = "s1" };
    ]

let test_wire_v2_malformed () =
  let errors lines =
    List.filter_map
      (function Result.Error e -> Some e | Result.Ok _ -> None)
      (feed_all lines)
  in
  Alcotest.(check int) "HELLO 0" 1 (List.length (errors [ "HELLO 0" ]));
  Alcotest.(check int) "HELLO junk" 1 (List.length (errors [ "HELLO x" ]));
  Alcotest.(check int) "bad chunk count" 1
    (List.length (errors [ "BULK s FACTS x" ]));
  Alcotest.(check int) "negative chunk count" 1
    (List.length (errors [ "BULK s FACTS -1" ]));
  Alcotest.(check int) "bad bulk op" 1 (List.length (errors [ "BULK s WHAT" ]));
  (match errors [ "BULK s FACTS 1000001" ] with
  | [ e ] ->
    Alcotest.(check bool) "oversized chunk says so" true
      (String.length e >= 15 && String.sub e 0 15 = "chunk too large")
  | _ -> Alcotest.fail "oversized chunk must be one error");
  (* a malformed header inside a stream desynchronizes only that line:
     the decoder resumes on the next request *)
  (match feed_all [ "BULK s FACTS 1"; "a(\"x\")"; "QUIT" ] with
  | [ Result.Ok (Wire.Bulk_chunk _); Result.Ok Wire.Quit ] -> ()
  | _ -> Alcotest.fail "chunk then QUIT should decode cleanly")

let test_wire_reply_header () =
  let ok = function Result.Ok v -> v | Result.Error e -> Alcotest.fail e in
  Alcotest.(check bool) "OK n" true (ok (Wire.parse_reply_header "OK 3") = `Ok 3);
  Alcotest.(check bool) "BUSY" true (ok (Wire.parse_reply_header "BUSY") = `Busy);
  Alcotest.(check bool) "ERR msg" true
    (ok (Wire.parse_reply_header "ERR no such thing") = `Err "no such thing");
  Alcotest.(check bool) "garbage rejected" true
    (Result.is_error (Wire.parse_reply_header "WAT"));
  Alcotest.(check bool) "negative OK rejected" true
    (Result.is_error (Wire.parse_reply_header "OK -2"))

(* ------------------------------- service ----------------------------- *)

let sample_tbox =
  tbox_of_string
    "role worksFor\nManager [= Employee\nEmployee [= Person\nEmployee [= exists worksFor"

let sample_sig = Tbox.signature sample_tbox

let q text = Obda.Qparse.parse_query ~signature:sample_sig text

let test_service_answers_and_hits () =
  (* a private registry: the process-wide default would accumulate
     counts across test cases and break the exact-count assertions *)
  let registry = Obs.Registry.create () in
  let t = Service.create ~config:{ Service.Config.default with lru = 8 } ~registry () in
  Service.set_tbox t ~session:"s" sample_tbox;
  Service.add_abox t ~session:"s"
    (Abox.of_list
       [ Abox.Concept_assert ("Manager", "ada"); Abox.Concept_assert ("Employee", "bob") ]);
  let query = q "x <- Person(x)" in
  let cold = Service.ask t ~session:"s" query in
  Alcotest.(check (list (list string))) "subsumption answers" [ [ "ada" ]; [ "bob" ] ] cold;
  let warm = Service.ask t ~session:"s" query in
  Alcotest.(check (list (list string))) "warm identical" cold warm;
  let lines = Service.stats_lines t in
  (match lines with
   | version :: _ ->
     Alcotest.(check string) "versioned schema" "stats.version 2" version
   | [] -> Alcotest.fail "empty stats");
  (* the second ask must be an answer-cache hit, now a registry sample *)
  let has_hit =
    List.mem "obda_cache_hits_total cache=answers,session=s 1" lines
  in
  Alcotest.(check bool) "answer cache hit recorded" true has_hit

let test_service_invalidation_on_insert () =
  let t = Service.create ~config:{ Service.Config.default with lru = 8 } () in
  Service.set_tbox t ~session:"s" sample_tbox;
  Service.add_abox t ~session:"s" (Abox.of_list [ Abox.Concept_assert ("Employee", "ada") ]);
  let query = q "x <- Person(x)" in
  Alcotest.(check (list (list string))) "before" [ [ "ada" ] ]
    (Service.ask t ~session:"s" query);
  ignore (Service.ask t ~session:"s" query);
  Service.add_abox t ~session:"s" (Abox.of_list [ Abox.Concept_assert ("Manager", "eve") ]);
  Alcotest.(check (list (list string))) "insert visible immediately"
    [ [ "ada" ]; [ "eve" ] ]
    (Service.ask t ~session:"s" query)

let test_service_invalidation_on_tbox_swap () =
  let t = Service.create ~config:{ Service.Config.default with lru = 8 } () in
  Service.set_tbox t ~session:"s" sample_tbox;
  Service.add_abox t ~session:"s" (Abox.of_list [ Abox.Concept_assert ("Manager", "ada") ]);
  let query = q "x <- Person(x)" in
  Alcotest.(check (list (list string))) "with subsumption" [ [ "ada" ] ]
    (Service.ask t ~session:"s" query);
  (* drop Employee [= Person: ada must stop being a Person *)
  let weaker =
    tbox_of_string "role worksFor\nManager [= Employee\nconcept Person"
  in
  Service.set_tbox t ~session:"s" weaker;
  let query' = q "x <- Person(x)" in
  Alcotest.(check (list (list string))) "swap visible immediately" []
    (Service.ask t ~session:"s" query');
  (* revert: the fingerprint-keyed rewrite cache may re-hit, but the
     answers must again include the subsumption *)
  Service.set_tbox t ~session:"s" sample_tbox;
  Alcotest.(check (list (list string))) "revert restores" [ [ "ada" ] ]
    (Service.ask t ~session:"s" query)

let test_service_wire_handle () =
  let t = Service.create ~config:{ Service.Config.default with lru = 8 } () in
  let ok = function
    | Wire.Ok lines -> lines
    | Wire.Err e -> Alcotest.fail ("unexpected ERR " ^ e)
    | Wire.Busy -> Alcotest.fail "unexpected BUSY"
  in
  let tbox_text = "role p\nA [= exists p\nexists p^- [= B" in
  ignore
    (ok
       (Service.handle t
          (Wire.Load
             {
               session = "w";
               kind = Wire.K_tbox;
               payload = Wire.payload_of_text tbox_text;
             })));
  ignore
    (ok
       (Service.handle t
          (Wire.Load { session = "w"; kind = Wire.K_abox; payload = [ "A(a)" ] })));
  (* boolean query via the anonymous-witness rewriting: exists p^- [= B
     and A [= exists p make B() certain even with no named B *)
  let answers =
    ok (Service.handle t (Wire.Ask { session = "w"; query = Wire.Inline "<- B(x)" }))
  in
  Alcotest.(check (list string)) "boolean yes" [ "()" ] answers;
  (match Service.handle t (Wire.Ask { session = "nope"; query = Wire.Inline "x <- A(x)" }) with
   | Wire.Err _ -> ()
   | _ -> Alcotest.fail "unknown session must ERR");
  (match
     Service.handle t (Wire.Ask { session = "w"; query = Wire.Inline "x <- A(x" })
   with
   | Wire.Err _ -> ()
   | _ -> Alcotest.fail "bad query must ERR");
  ignore
    (ok
       (Service.handle t
          (Wire.Prepare { session = "w"; name = "q1"; query = "x <- A(x)" })));
  let named =
    ok (Service.handle t (Wire.Ask { session = "w"; query = Wire.Named "q1" }))
  in
  Alcotest.(check (list string)) "prepared query answers" [ "a" ] named;
  let stats = ok (Service.handle t (Wire.Stats None)) in
  Alcotest.(check bool) "stats non-empty" true (List.length stats > 3)

let test_service_facts_load_atomic () =
  (* a LOAD FACTS with any malformed line must leave the database (and
     the version, hence the answer cache) untouched — a partial insert
     without a version bump would serve stale cached answers over a
     half-loaded KB *)
  let t = Service.create ~config:{ Service.Config.default with lru = 8 } () in
  let ok = function
    | Wire.Ok lines -> lines
    | Wire.Err e -> Alcotest.fail ("unexpected ERR " ^ e)
    | Wire.Busy -> Alcotest.fail "unexpected BUSY"
  in
  let load kind payload =
    Service.handle t (Wire.Load { session = "f"; kind; payload })
  in
  let ask () =
    ok (Service.handle t (Wire.Ask { session = "f"; query = Wire.Inline "x <- A(x)" }))
  in
  ignore (ok (load Wire.K_tbox [ "concept A" ]));
  ignore (ok (load Wire.K_mappings [ "map A(x) <- t(x)" ]));
  ignore (ok (load Wire.K_facts [ "t(a)" ]));
  Alcotest.(check (list string)) "baseline" [ "a" ] (ask ());
  (* the good line precedes the bad one: nothing of it may stick *)
  (match load Wire.K_facts [ "t(b)"; "this is not a fact" ] with
   | Wire.Err _ -> ()
   | _ -> Alcotest.fail "malformed facts payload must ERR");
  Alcotest.(check (list string)) "unchanged after failed load" [ "a" ] (ask ());
  ignore (ok (load Wire.K_facts [ "t(c)" ]));
  (* the version bump makes the post-update answer fresh: b must not
     have leaked in during the failed load *)
  Alcotest.(check (list string)) "only the successful loads" [ "a"; "c" ] (ask ())

let test_service_bulk_stream () =
  let t = Service.create ~config:{ Service.Config.default with lru = 8 } () in
  let ok = function
    | Wire.Ok lines -> lines
    | Wire.Err e -> Alcotest.fail ("unexpected ERR " ^ e)
    | Wire.Busy -> Alcotest.fail "unexpected BUSY"
  in
  let chunk payload =
    Service.handle t (Wire.Bulk_chunk { session = "b"; payload })
  in
  let ask () =
    ok
      (Service.handle t
         (Wire.Ask { session = "b"; query = Wire.Inline "x <- A(x)" }))
  in
  ignore
    (ok
       (Service.handle t
          (Wire.Load { session = "b"; kind = Wire.K_tbox; payload = [ "concept A" ] })));
  ignore
    (ok
       (Service.handle t
          (Wire.Load
             { session = "b"; kind = Wire.K_mappings; payload = [ "map A(x) <- t(x)" ] })));
  (* END/ABORT against a session with no active stream *)
  (match Service.handle t (Wire.Bulk_end { session = "b" }) with
  | Wire.Err _ -> ()
  | _ -> Alcotest.fail "END with no stream must ERR");
  Alcotest.(check (list string)) "ABORT with no stream is idempotent" []
    (ok (Service.handle t (Wire.Bulk_abort { session = "b" })));
  (* ...and against a session that does not exist at all *)
  (match Service.handle t (Wire.Bulk_end { session = "ghost" }) with
  | Wire.Err _ -> ()
  | _ -> Alcotest.fail "END on unknown session must ERR");
  (* a cached answer must not mask mid-stream chunks: ask, load a
     chunk, ask again without an END in between *)
  Alcotest.(check (list string)) "warm the cache" [] (ask ());
  ignore (ok (chunk [ "t(a)" ]));
  Alcotest.(check (list string)) "chunk visible before END" [ "a" ] (ask ());
  (* a malformed line rejects exactly its own chunk *)
  (match chunk [ "t(b)"; "this is not a fact" ] with
  | Wire.Err _ -> ()
  | _ -> Alcotest.fail "malformed chunk must ERR");
  Alcotest.(check (list string)) "bad chunk left no trace" [ "a" ] (ask ());
  ignore (ok (chunk [ "t(c)"; "t(d)" ]));
  (* the summary counts acked chunks only *)
  Alcotest.(check (list string)) "END summary" [ "chunks 2 facts 3" ]
    (ok (Service.handle t (Wire.Bulk_end { session = "b" })));
  Alcotest.(check (list string)) "all acked chunks stay" [ "a"; "c"; "d" ]
    (ask ());
  (* mid-stream ABORT: acked chunks are durable and stay; the stream
     is closed, so a following END has nothing to end *)
  ignore (ok (chunk [ "t(e)" ]));
  ignore (ok (Service.handle t (Wire.Bulk_abort { session = "b" })));
  Alcotest.(check (list string)) "aborted stream keeps acked chunks"
    [ "a"; "c"; "d"; "e" ] (ask ());
  match Service.handle t (Wire.Bulk_end { session = "b" }) with
  | Wire.Err _ -> ()
  | _ -> Alcotest.fail "END after ABORT must ERR"

let test_service_unknown_session_typed () =
  let t = Service.create ~config:{ Service.Config.default with lru = 8 } () in
  Service.set_tbox t ~session:"known" sample_tbox;
  Alcotest.check_raises "ask" (Service.Unknown_session "ghost") (fun () ->
      ignore (Service.ask t ~session:"ghost" (q "x <- Person(x)")));
  Alcotest.check_raises "classification" (Service.Unknown_session "ghost")
    (fun () -> ignore (Service.classification t ~session:"ghost"));
  (* and the failed reads must not have materialized the session *)
  Alcotest.(check (list string)) "no ghost session" [ "known" ]
    (Service.session_names t)

(* --------------------------- line reading ---------------------------- *)

(* the server's connection reader is [Durable.Io.read_line] over a raw
   descriptor; exercise it through a file *)
let read_lines_of_string content =
  let path = Filename.temp_file "server_test" ".txt" in
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc;
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let reader = Durable.Io.reader fd in
  let rec go acc =
    match Durable.Io.read_line reader ~max_line:1024 with
    | Some line -> go (line :: acc)
    | None -> List.rev acc
  in
  let lines = go [] in
  Unix.close fd;
  Sys.remove path;
  lines

let test_read_line_crlf () =
  (* only a CR that immediately precedes the newline is line-ending
     decoration; any other CR is content and must survive *)
  Alcotest.(check (list string))
    "CRLF stripped, embedded CR kept"
    [ "abc"; "a\rb"; "trailing\r" ]
    (read_lines_of_string "abc\r\na\rb\ntrailing\r")

(* -------------------- observability round-trips ---------------------- *)

let test_lru_obs_registration () =
  let r = Obs.Registry.create () in
  let c = Lru.create ~metrics:(r, [ ("cache", "t") ]) ~capacity:1 () in
  Lru.put c "a" 1;
  Lru.put c "b" 2;
  ignore (Lru.find c "b");
  ignore (Lru.find c "a");
  let v name =
    List.find_map
      (fun { Obs.name = n; labels; value } ->
        if n = name && labels = [ ("cache", "t") ] then Some value else None)
      (Obs.Registry.samples r)
  in
  List.iter
    (fun (name, expected) ->
      Alcotest.(check (option (float 0.))) name (Some expected) (v name))
    [
      ("obda_cache_hits_total", 1.0);
      ("obda_cache_misses_total", 1.0);
      ("obda_cache_evictions_total", 1.0);
      ("obda_cache_insertions_total", 2.0);
      ("obda_cache_size", 1.0);
      ("obda_cache_capacity", 1.0);
    ];
  (* derived accessors agree with the registry *)
  Alcotest.(check (float 0.)) "hit_rate agrees" 0.5 (Lru.hit_rate c);
  Lru.unregister c;
  Alcotest.(check int) "unregister removes all series" 0
    (List.length (Obs.Registry.samples r))

(* the versioned STATS schema round-trips through a real loopback
   server and the typed [Client.stats] accessor *)
let test_loopback_client_stats () =
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "obda-test-stats-%d.sock" (Unix.getpid ()))
  in
  (* the default registry, as in a real server process: library-level
     spans (rewrite, eval) record there, so they must show up in STATS;
     the assertions below are robust to counts accumulated by other
     test cases sharing the process *)
  let service = Service.create ~config:{ Service.Config.default with lru = 8 } () in
  let srv = Server.Serve.create service in
  ignore (Server.Serve.listen_unix srv sock);
  Server.Serve.start srv;
  Fun.protect
    ~finally:(fun () ->
      ignore (Server.Serve.stop srv);
      try Unix.unlink sock with Unix.Unix_error _ -> ())
  @@ fun () ->
  let conn =
    match Server.Client.connect ("unix:" ^ sock) with
    | Result.Ok c -> c
    | Result.Error e -> Alcotest.fail e
  in
  Fun.protect ~finally:(fun () -> Server.Client.close conn) @@ fun () ->
  let ok = function
    | Result.Ok (Wire.Ok lines) -> lines
    | Result.Ok (Wire.Err e) -> Alcotest.fail ("unexpected ERR " ^ e)
    | Result.Ok Wire.Busy -> Alcotest.fail "unexpected BUSY"
    | Result.Error e -> Alcotest.fail e
  in
  ignore
    (ok
       (Server.Client.request conn
          (Wire.Load
             { session = "loop"; kind = Wire.K_tbox; payload = [ "A [= B" ] })));
  ignore
    (ok
       (Server.Client.request conn
          (Wire.Load { session = "loop"; kind = Wire.K_abox; payload = [ "A(a)" ] })));
  Alcotest.(check (list string))
    "subsumption answer" [ "a" ]
    (ok
       (Server.Client.request conn
          (Wire.Ask { session = "loop"; query = Wire.Inline "x <- B(x)" })));
  let kv =
    match Server.Client.stats conn with
    | Result.Ok kv -> kv
    | Result.Error e -> Alcotest.fail e
  in
  let get k = List.assoc_opt k kv in
  Alcotest.(check (option (float 0.)))
    "session facts" (Some 1.0)
    (get "obda_session_facts{session=loop}");
  Alcotest.(check (option (float 0.)))
    "sessions gauge" (Some 1.0) (get "obda_service_sessions");
  Alcotest.(check bool) "ask latency histogram populated" true
    (match get "obda_op_seconds_count{op=ask}" with
     | Some n -> n >= 1.0
     | None -> false);
  Alcotest.(check bool) "classify phases present" true
    (match get "obda_phase_seconds_count{phase=rewrite}" with
     | Some n -> n >= 1.0
     | None -> false);
  match Server.Client.metrics conn with
  | Result.Ok (first :: rest) ->
    Alcotest.(check string) "exposition header" "# stats.version 2" first;
    Alcotest.(check bool) "exposition has TYPE lines" true
      (List.exists
         (fun l -> String.length l >= 7 && String.sub l 0 7 = "# TYPE ")
         rest)
  | Result.Ok [] -> Alcotest.fail "empty exposition"
  | Result.Error e -> Alcotest.fail e

(* --------------------- the invalidation property --------------------- *)

(* Random interleavings of updates and (frequently repeated) queries:
   the cached service must answer byte-identically to a fresh engine
   built from scratch over the session's accumulated state, at every
   capacity — 0 (caching off), 1, and small values that force constant
   eviction are the interesting ones. *)

let reference_answers tbox assertions query =
  let engine = Obda.Engine.of_abox tbox (Abox.of_list assertions) in
  List.sort_uniq compare (Obda.Engine.certain_answers engine query)

let scenario_agrees ~capacity seed =
  let rng = Ontgen.Rng.create seed in
  let service = Service.create ~config:{ Service.Config.default with lru = capacity } () in
  let session = "prop" in
  let tbox = ref (Ontgen.Casegen.tbox rng) in
  let assertions = ref [] in
  Service.set_tbox service ~session !tbox;
  let queries = ref [ Ontgen.Casegen.query rng ] in
  let ops = 14 + Ontgen.Rng.int rng 8 in
  let failure = ref None in
  for _ = 1 to ops do
    if !failure = None then
      match Ontgen.Rng.int rng 10 with
      | 0 | 1 ->
        (* swap the TBox (sometimes swap *back* to an earlier structure
           by regenerating from a fresh rng — fingerprint re-hits) *)
        tbox := Ontgen.Casegen.tbox rng;
        Service.set_tbox service ~session !tbox
      | 2 | 3 ->
        let abox = Ontgen.Casegen.abox rng in
        assertions := !assertions @ Abox.assertions abox;
        Service.add_abox service ~session abox
      | 4 ->
        queries := Ontgen.Casegen.query rng :: !queries
      | _ ->
        (* ask, usually a repeat of an earlier query: repeats are where
           a stale cache entry would surface *)
        let query = List.nth !queries (Ontgen.Rng.int rng (List.length !queries)) in
        let served = Service.ask service ~session query in
        let fresh = reference_answers !tbox !assertions query in
        if served <> fresh then failure := Some (query, served, fresh)
  done;
  match !failure with
  | None -> true
  | Some (query, served, fresh) ->
    QCheck.Test.fail_reportf
      "capacity %d seed %d: served %s but fresh engine says %s for %s" capacity
      seed
      (String.concat "; " (List.map (String.concat ",") served))
      (String.concat "; " (List.map (String.concat ",") fresh))
      (Obda.Cq.to_string query)

let prop_cached_answers_sound capacity =
  QCheck.Test.make ~count:40
    ~name:(Printf.sprintf "cached = fresh (lru capacity %d)" capacity)
    QCheck.(int_bound 1_000_000)
    (fun seed -> scenario_agrees ~capacity seed)

(* -------------------------------- suite ------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "capacity 0" `Quick test_lru_capacity_zero;
          Alcotest.test_case "capacity 1" `Quick test_lru_capacity_one;
          Alcotest.test_case "remove/clear" `Quick test_lru_remove_and_clear;
          Alcotest.test_case "negative capacity" `Quick test_lru_negative_capacity;
        ] );
      ( "fingerprint",
        [
          Alcotest.test_case "stable" `Quick test_fingerprint_stable;
          Alcotest.test_case "sensitive" `Quick test_fingerprint_sensitive;
          Alcotest.test_case "revert" `Quick test_fingerprint_revert;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "payload verbatim" `Quick test_wire_payload_verbatim;
          Alcotest.test_case "malformed" `Quick test_wire_malformed;
          Alcotest.test_case "line too long" `Quick test_wire_line_too_long;
          Alcotest.test_case "reply header" `Quick test_wire_reply_header;
          Alcotest.test_case "v2 roundtrip" `Quick test_wire_v2_roundtrip;
          Alcotest.test_case "v2 malformed" `Quick test_wire_v2_malformed;
        ] );
      ( "service",
        [
          Alcotest.test_case "answers + hits" `Quick test_service_answers_and_hits;
          Alcotest.test_case "insert invalidates" `Quick
            test_service_invalidation_on_insert;
          Alcotest.test_case "tbox swap invalidates" `Quick
            test_service_invalidation_on_tbox_swap;
          Alcotest.test_case "wire handle" `Quick test_service_wire_handle;
          Alcotest.test_case "facts load atomic" `Quick
            test_service_facts_load_atomic;
          Alcotest.test_case "unknown session (typed)" `Quick
            test_service_unknown_session_typed;
          Alcotest.test_case "bulk stream" `Quick test_service_bulk_stream;
        ] );
      ( "line-reader",
        [ Alcotest.test_case "crlf" `Quick test_read_line_crlf ] );
      ( "observability",
        [
          Alcotest.test_case "lru registers metrics" `Quick
            test_lru_obs_registration;
          Alcotest.test_case "versioned STATS round-trip" `Quick
            test_loopback_client_stats;
        ] );
      ( "invalidation-property",
        List.map
          (fun capacity ->
            QCheck_alcotest.to_alcotest (prop_cached_answers_sound capacity))
          [ 0; 1; 2; 8 ] );
    ]
