(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation plus the ablations called out in DESIGN.md.

   Usage:
     dune exec bench/main.exe                  # everything, default knobs
     dune exec bench/main.exe figure1 [--scale 0.04] [--timeout 10]
     dune exec bench/main.exe figure2
     dune exec bench/main.exe closure | unsat | implication | rewrite | approx | scaling | data
     dune exec bench/main.exe closure-par [--scale 0.04] [--jobs 4]
                                               # seq-vs-parallel closure; writes BENCH_closure.json
     dune exec bench/main.exe serve            # cold-vs-warm service; writes BENCH_serve.json
     dune exec bench/main.exe recover          # recovery time, WAL vs snapshot; writes BENCH_recover.json
     dune exec bench/main.exe micro            # bechamel microbenches

   Experiment ids match DESIGN.md: E1 (Figure 1), E2 (Figure 2),
   A1..A6 (ablations). *)

open Dllite

let timeit f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* E1 / Figure 1: classification times, 11 ontologies x 5 reasoners    *)
(* ------------------------------------------------------------------ *)

type cell =
  | Time of float
  | Timeout

let pp_cell = function
  | Time s -> Printf.sprintf "%10.3f" s
  | Timeout -> Printf.sprintf "%10s" "timeout"

let figure1 ~scale ~timeout () =
  Printf.printf
    "== E1 / Figure 1: classification times (seconds; scale %.3f, per-cell \
     timeout %.0fs) ==\n"
    scale timeout;
  Printf.printf "%-16s %10s %10s %10s %10s %10s %10s\n" "Ontology" "|C|+|R|"
    "QuOnto" "FaCT++" "HermiT" "Pellet" "CB";
  let run_cell f =
    match timeit f with
    | _, elapsed -> Time elapsed
    | exception Baselines.Personas.Timed_out -> Timeout
  in
  List.iter
    (fun profile ->
      let scaled = Ontgen.Generator.scale scale profile in
      let tbox = Ontgen.Generator.generate scaled in
      let size =
        Signature.concept_count (Tbox.signature tbox)
        + Signature.role_count (Tbox.signature tbox)
      in
      (* QuOnto: the digraph method (encode + SCC closure + computeUnsat) *)
      let quonto = run_cell (fun () -> ignore (Quonto.Classify.classify tbox)) in
      (* the three tableau personas, with the paper's timeout semantics *)
      let persona p =
        run_cell (fun () ->
            ignore (Baselines.Personas.classify ~deadline:timeout p tbox))
      in
      let fact = persona Baselines.Personas.fact_plus_plus in
      let hermit = persona Baselines.Personas.hermit in
      let pellet = persona Baselines.Personas.pellet in
      (* CB: consequence-based saturation (no property hierarchy) *)
      let cb = run_cell (fun () -> ignore (Baselines.Cb.classify tbox)) in
      Printf.printf "%-16s %10d %s %s %s %s %s\n%!" profile.Ontgen.Generator.label
        size (pp_cell quonto) (pp_cell fact) (pp_cell hermit) (pp_cell pellet)
        (pp_cell cb))
    Ontgen.Profiles.figure1;
  Printf.printf
    "(CB column: concept hierarchy only - it does not compute the property \
     hierarchy, as in the paper.)\n\n"

(* ------------------------------------------------------------------ *)
(* E2 / Figure 2: the qualified-existential diagram                    *)
(* ------------------------------------------------------------------ *)

let figure2 () =
  Printf.printf "== E2 / Figure 2: County/State qualified existentials ==\n";
  let d = Graphical.Translate.figure2 () in
  let elements, scopes, inclusions = Graphical.Diagram.stats d in
  Printf.printf "diagram: %d elements, %d scope edges, %d inclusion edges\n"
    elements scopes inclusions;
  let tbox = Graphical.Translate.to_tbox d in
  Printf.printf "translated axioms:\n";
  List.iter
    (fun ax -> Printf.printf "  %s\n" (Syntax.axiom_to_string ax))
    (Tbox.axioms tbox);
  (* and back: TBox -> diagram -> TBox is the identity here *)
  let d' = Graphical.Translate.of_tbox tbox in
  let tbox' = Graphical.Translate.to_tbox d' in
  Printf.printf "roundtrip exact: %b\n" (Tbox.axioms tbox = Tbox.axioms tbox');
  Printf.printf "DOT output: %d bytes, SVG output: %d bytes\n\n"
    (String.length (Graphical.Dot.render d))
    (String.length (Graphical.Layout.to_svg d))

(* ------------------------------------------------------------------ *)
(* A1: transitive-closure algorithm ablation                           *)
(* ------------------------------------------------------------------ *)

let closure_ablation () =
  Printf.printf "== A1: transitive-closure algorithms on Definition-1 digraphs ==\n";
  Printf.printf "%-24s %8s %8s %10s %10s %10s\n" "profile" "nodes" "edges" "dfs"
    "warshall" "scc";
  List.iter
    (fun (profile, scale) ->
      let tbox = Ontgen.Generator.generate (Ontgen.Generator.scale scale profile) in
      let enc = Quonto.Encoding.build tbox in
      let g = Quonto.Encoding.graph enc in
      let n = Graphlib.Graph.node_count g in
      let time_alg algorithm =
        let _, t = timeit (fun () -> ignore (Graphlib.Closure.compute ~algorithm g)) in
        t
      in
      let dfs = time_alg Graphlib.Closure.Dfs in
      let warshall =
        if n <= 3000 then Printf.sprintf "%10.3f" (time_alg Graphlib.Closure.Warshall)
        else Printf.sprintf "%10s" "skipped"
      in
      let scc = time_alg Graphlib.Closure.Scc_condense in
      Printf.printf "%-24s %8d %8d %10.3f %s %10.3f\n%!"
        (Printf.sprintf "%s x%.2f" profile.Ontgen.Generator.label scale)
        n (Graphlib.Graph.edge_count g) dfs warshall scc)
    [
      (Ontgen.Profiles.dolce, 1.0);
      (Ontgen.Profiles.transportation, 1.0);
      (Ontgen.Profiles.galen, 0.05);
      (Ontgen.Profiles.fma_2_0, 0.05);
    ];
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* A8: parallel transitive closure (domain pool) ablation              *)
(* ------------------------------------------------------------------ *)

(* Sequential-vs-parallel closure on the Definition-1 digraphs, sweeping
   the domain-pool width.  Every parallel result is checked to be
   [Closure.equal] to the sequential one, and the table is also written
   as machine-readable BENCH_closure.json (consumed by CI and
   EXPERIMENTS.md).  Pools are created directly (not via
   [Parallel.Pool.global]) so the domains really spawn even when the
   host reports a single core — the point here is measuring, not
   adapting. *)
let closure_par ~scale ~jobs () =
  let max_jobs = max 1 jobs in
  let job_counts =
    List.sort_uniq compare
      (max_jobs :: List.filter (fun j -> j < max_jobs) [ 1; 2; 4; 8 ])
  in
  let pools = List.map (fun j -> (j, Parallel.Pool.create ~jobs:j ())) job_counts in
  let best_of k f =
    let rec go k best =
      if k = 0 then best
      else
        let _, t = timeit f in
        go (k - 1) (min best t)
    in
    go k infinity
  in
  Printf.printf
    "== A8: parallel transitive closure (domain pool; scale %.3f, host cores %d) ==\n"
    scale
    (Domain.recommended_domain_count ());
  Printf.printf "%-24s %8s %8s %-8s %10s" "profile" "nodes" "edges" "alg" "seq (s)";
  List.iter (fun j -> Printf.printf " %7s %5s" (Printf.sprintf "j=%d (s)" j) "x") job_counts;
  Printf.printf "\n";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"bench\": \"closure-par\",\n  \"scale\": %.4f,\n  \"host_cores\": %d,\n  \"profiles\": [\n"
       scale
       (Domain.recommended_domain_count ()));
  let first_profile = ref true in
  List.iter
    (fun (profile, profile_scale) ->
      let tbox =
        Ontgen.Generator.generate (Ontgen.Generator.scale profile_scale profile)
      in
      let enc = Quonto.Encoding.build tbox in
      let g = Quonto.Encoding.graph enc in
      let n = Graphlib.Graph.node_count g in
      let label = Printf.sprintf "%s x%.2f" profile.Ontgen.Generator.label profile_scale in
      if not !first_profile then Buffer.add_string buf ",\n";
      first_profile := false;
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"profile\": %S, \"nodes\": %d, \"edges\": %d, \"algorithms\": [\n"
           label n (Graphlib.Graph.edge_count g));
      let first_alg = ref true in
      List.iter
        (fun (seq_alg, par_alg) ->
          let reference = Graphlib.Closure.compute ~algorithm:seq_alg g in
          let seq_s =
            best_of 3 (fun () -> ignore (Graphlib.Closure.compute ~algorithm:seq_alg g))
          in
          Printf.printf "%-24s %8d %8d %-8s %10.3f" label n
            (Graphlib.Graph.edge_count g)
            (Graphlib.Closure.string_of_algorithm seq_alg)
            seq_s;
          if not !first_alg then Buffer.add_string buf ",\n";
          first_alg := false;
          Buffer.add_string buf
            (Printf.sprintf
               "      {\"algorithm\": %S, \"seq_s\": %.6f, \"parallel\": ["
               (Graphlib.Closure.string_of_algorithm par_alg)
               seq_s);
          let first_j = ref true in
          List.iter
            (fun (j, pool) ->
              let par = Graphlib.Closure.compute ~algorithm:par_alg ~pool g in
              let equal = Graphlib.Closure.equal reference par in
              let par_s =
                best_of 3 (fun () ->
                    ignore (Graphlib.Closure.compute ~algorithm:par_alg ~pool g))
              in
              let speedup = seq_s /. par_s in
              Printf.printf " %7.3f %4.1fx" par_s speedup;
              if not equal then Printf.printf " [MISMATCH]";
              if not !first_j then Buffer.add_string buf ", ";
              first_j := false;
              Buffer.add_string buf
                (Printf.sprintf
                   "{\"jobs\": %d, \"time_s\": %.6f, \"speedup\": %.3f, \"equal\": %b}"
                   j par_s speedup equal))
            pools;
          Buffer.add_string buf "]}";
          Printf.printf "\n%!")
        [
          (Graphlib.Closure.Scc_condense, Graphlib.Closure.Par_scc);
          (Graphlib.Closure.Dfs, Graphlib.Closure.Par_dfs);
        ];
      Buffer.add_string buf "\n    ]}")
    [
      (Ontgen.Profiles.dolce, 1.0);
      (Ontgen.Profiles.transportation, 1.0);
      (Ontgen.Profiles.galen, scale);
      (Ontgen.Profiles.fma_2_0, scale);
    ];
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out "BENCH_closure.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  List.iter (fun (_, pool) -> Parallel.Pool.shutdown pool) pools;
  Printf.printf "(every parallel closure checked Closure.equal to the sequential \
                 one; table written to BENCH_closure.json)\n\n"

(* ------------------------------------------------------------------ *)
(* A2: computeUnsat cost vs disjointness density                       *)
(* ------------------------------------------------------------------ *)

let unsat_ablation () =
  Printf.printf "== A2: computeUnsat vs disjointness density ==\n";
  Printf.printf "%-12s %8s %8s %12s %12s %10s\n" "NI density" "axioms" "NIs"
    "closure (s)" "unsat (s)" "unsat preds";
  List.iter
    (fun density ->
      let profile =
        {
          Ontgen.Generator.default_profile with
          Ontgen.Generator.label = Printf.sprintf "ni-%.2f" density;
          concepts = 2000;
          roles = 100;
          disjoint_per_concept = density;
          role_disjoint_per_role = density /. 4.;
        }
      in
      let tbox = Ontgen.Generator.generate profile in
      let enc = Quonto.Encoding.build tbox in
      let _, closure_time =
        timeit (fun () -> ignore (Graphlib.Closure.compute (Quonto.Encoding.graph enc)))
      in
      let unsat, unsat_time = timeit (fun () -> Quonto.Unsat.compute enc) in
      Printf.printf "%-12.2f %8d %8d %12.4f %12.4f %10d\n%!" density
        (Tbox.axiom_count tbox)
        (List.length (Tbox.negative_inclusions tbox))
        closure_time unsat_time (Quonto.Unsat.count unsat))
    [ 0.0; 0.1; 0.5; 1.0; 2.0 ];
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* A3: logical implication - closure-based vs on-demand                *)
(* ------------------------------------------------------------------ *)

let implication_ablation () =
  Printf.printf "== A3: logical implication, closure-based vs on-demand ==\n";
  let tbox =
    Ontgen.Generator.generate (Ontgen.Generator.scale 0.05 Ontgen.Profiles.galen)
  in
  let signature = Tbox.signature tbox in
  let concepts = Array.of_list (Signature.concepts signature) in
  let rng = Ontgen.Rng.create 7 in
  let random_query () =
    let a = concepts.(Ontgen.Rng.int rng (Array.length concepts)) in
    let b = concepts.(Ontgen.Rng.int rng (Array.length concepts)) in
    Syntax.Concept_incl (Syntax.Atomic a, Syntax.C_basic (Syntax.Atomic b))
  in
  Printf.printf "%-10s %16s %16s\n" "queries" "closure (s)" "on-demand (s)";
  List.iter
    (fun k ->
      let queries = List.init k (fun _ -> random_query ()) in
      let _, closure_time =
        timeit (fun () ->
            let d = Quonto.Deductive.compute tbox in
            List.iter (fun q -> ignore (Quonto.Deductive.entails d q)) queries)
      in
      let _, on_demand_time =
        timeit (fun () ->
            let i = Quonto.Implication.prepare tbox in
            List.iter (fun q -> ignore (Quonto.Implication.entails i q)) queries)
      in
      Printf.printf "%-10d %16.4f %16.4f\n%!" k closure_time on_demand_time)
    [ 1; 10; 100; 1000 ];
  Printf.printf "(on-demand wins for few queries; the closure amortizes)\n\n"

(* ------------------------------------------------------------------ *)
(* A4: rewriting - PerfectRef vs classification-aided (Presto-style)   *)
(* ------------------------------------------------------------------ *)

let rewrite_ablation () =
  Printf.printf "== A4: PerfectRef vs classification-aided rewriting ==\n";
  Printf.printf "%-8s %14s %10s %10s %14s %10s %10s\n" "depth" "perfectref(s)"
    "generated" "rounds" "presto(s)" "generated" "rounds";
  List.iter
    (fun depth ->
      (* a subsumption chain of the given depth under the queried
         concept, plus a role layer *)
      let axioms =
        List.concat
          (List.init depth (fun i ->
               [
                 Syntax.Concept_incl
                   ( Syntax.Atomic (Printf.sprintf "L%d" (i + 1)),
                     Syntax.C_basic (Syntax.Atomic (Printf.sprintf "L%d" i)) );
                 Syntax.Concept_incl
                   ( Syntax.Exists (Syntax.Direct (Printf.sprintf "r%d" i)),
                     Syntax.C_basic (Syntax.Atomic (Printf.sprintf "L%d" i)) );
               ]))
      in
      let tbox = Tbox.of_axioms axioms in
      let q =
        Obda.Cq.make [ "x" ]
          [ Obda.Cq.atom (Obda.Vabox.concept_pred "L0") [ Obda.Cq.Var "x" ] ]
      in
      let (_, s1), t1 = timeit (fun () -> Obda.Rewrite.perfect_ref tbox [ q ]) in
      let (_, s2), t2 = timeit (fun () -> Obda.Rewrite.presto_ref tbox [ q ]) in
      Printf.printf "%-8d %14.4f %10d %10d %14.4f %10d %10d\n%!" depth t1
        s1.Obda.Rewrite.generated s1.Obda.Rewrite.iterations t2
        s2.Obda.Rewrite.generated s2.Obda.Rewrite.iterations)
    [ 2; 4; 8; 16; 32 ];
  Printf.printf
    "(same output UCQ - the classified rule base reaches the fixpoint in \
     fewer rounds)\n\n"

(* ------------------------------------------------------------------ *)
(* A5: syntactic vs semantic approximation                             *)
(* ------------------------------------------------------------------ *)

let approx_ablation () =
  Printf.printf "== A5: syntactic vs semantic ontology approximation ==\n";
  Printf.printf "%-8s %12s %8s %8s %14s %8s %10s %10s\n" "axioms" "syntactic(s)"
    "kept" "dropped" "semantic(s)" "kept" "syn recov" "sem recov";
  List.iter
    (fun n_axioms ->
      let profile =
        {
          Ontgen.Generator.default_owl_profile with
          Ontgen.Generator.owl_label = Printf.sprintf "owl-%d" n_axioms;
          owl_axioms = n_axioms;
          owl_concepts = 10;
          owl_roles = 3;
        }
      in
      let otbox = Ontgen.Generator.generate_owl profile in
      let syn, syn_time = timeit (fun () -> Approx.Syntactic.approximate otbox) in
      let sem, sem_time = timeit (fun () -> Approx.Semantic.approximate otbox) in
      let syn_recovery =
        Approx.Semantic.entailment_recovery ~source:otbox
          ~approx:syn.Approx.Syntactic.tbox
      in
      let sem_recovery =
        Approx.Semantic.entailment_recovery ~source:otbox
          ~approx:sem.Approx.Semantic.tbox
      in
      Printf.printf "%-8d %12.4f %8d %8d %14.4f %8d %9.0f%% %9.0f%%\n%!" n_axioms
        syn_time syn.Approx.Syntactic.kept
        (List.length syn.Approx.Syntactic.dropped)
        sem_time
        (Tbox.axiom_count sem.Approx.Semantic.tbox)
        (100. *. syn_recovery) (100. *. sem_recovery))
    [ 10; 20; 40 ];
  Printf.printf
    "(recovery = share of the global-reference DL-Lite entailments preserved)\n\n"

(* ------------------------------------------------------------------ *)
(* A7: certain answers vs data size (OBDA end to end)                  *)
(* ------------------------------------------------------------------ *)

let data_ablation () =
  Printf.printf "== A7: certain-answer evaluation vs data size (university OBDA) ==\n";
  Printf.printf "%-10s %10s  %-18s %12s %10s %10s\n" "persons" "tuples" "query"
    "rewrite (s)" "eval (s)" "answers";
  List.iter
    (fun persons ->
      let instance =
        Ontgen.Datagen.generate ~persons ~courses:(max 10 (persons / 10)) ()
      in
      let tuples = Obda.Database.size instance.Ontgen.Datagen.database in
      List.iter
        (fun (name, q) ->
          let (rewritten, _), rewrite_time =
            timeit (fun () ->
                Obda.Rewrite.perfect_ref instance.Ontgen.Datagen.tbox [ q ])
          in
          let unfolded =
            Obda.Mapping.unfold_ucq instance.Ontgen.Datagen.mappings rewritten
          in
          let answers, eval_time =
            timeit (fun () ->
                Obda.Cq.evaluate_ucq
                  ~facts:(Obda.Database.facts instance.Ontgen.Datagen.database)
                  unfolded)
          in
          Printf.printf "%-10d %10d  %-18s %12.4f %10.4f %10d\n%!" persons tuples
            name rewrite_time eval_time (List.length answers))
        Ontgen.Datagen.queries)
    [ 1_000; 5_000; 20_000 ];
  Printf.printf
    "(the rewriting is data-independent - the OBDA promise: reasoning cost is \
     paid on the TBox, evaluation scales with the sources)\n\n"

(* ------------------------------------------------------------------ *)
(* serve: the caching query service, closed loop, cold vs warm         *)
(* ------------------------------------------------------------------ *)

(* A closed loop over [Server.Service] (in-process: what is measured is
   the serving layer and its caches, not socket noise).  Each round
   performs a data update — bumping the session version, so every
   answer-cache entry is invalidated — then asks each university query
   once cold (full evaluate path) and several times warm (answer-cache
   hit).  p50/p95/p99 over all rounds, plus throughput, written to
   BENCH_serve.json.  The acceptance bar: warm latency strictly below
   cold at every percentile. *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float ((p /. 100. *. float_of_int (n - 1)) +. 0.5)))

type dist = {
  count : int;
  mean_s : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  total_s : float;
}

let dist_of samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  let total = Array.fold_left ( +. ) 0.0 a in
  {
    count = n;
    mean_s = (if n = 0 then 0.0 else total /. float_of_int n);
    p50_s = percentile a 50.0;
    p95_s = percentile a 95.0;
    p99_s = percentile a 99.0;
    total_s = total;
  }

let json_of_dist d =
  Printf.sprintf
    "{\"count\": %d, \"mean_ms\": %.4f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f}"
    d.count (1000. *. d.mean_s) (1000. *. d.p50_s) (1000. *. d.p95_s)
    (1000. *. d.p99_s)

(* The per-phase breakdown comes from the observability layer: the
   library spans (classify phases, rewriting, evaluation) record into
   obda_phase_seconds on the default registry as the service runs. *)
let span_phases =
  [
    "classify"; "classify.encode"; "classify.closure"; "classify.unsat";
    "rewrite.prepare"; "rewrite"; "eval"; "chase";
  ]

let phase_summaries () =
  List.filter_map
    (fun phase ->
      let h =
        Obs.Registry.histogram Obs.default ~labels:[ ("phase", phase) ]
          "obda_phase_seconds"
      in
      let s = Obs.Histogram.summary h in
      if s.Obs.Histogram.count = 0 then None else Some (phase, s))
    span_phases

let json_of_phase (s : Obs.Histogram.summary) =
  Printf.sprintf
    "{\"count\": %d, \"sum_ms\": %.4f, \"max_ms\": %.4f, \"p50_ms\": %.4f, \
     \"p95_ms\": %.4f, \"p99_ms\": %.4f}"
    s.Obs.Histogram.count
    (1000. *. s.Obs.Histogram.sum)
    (1000. *. s.Obs.Histogram.max)
    (1000. *. s.Obs.Histogram.p50)
    (1000. *. s.Obs.Histogram.p95)
    (1000. *. s.Obs.Histogram.p99)

(* A12: the cold-path eval scale sweep — naive vs cost-based executor
   on the university instance at 10k -> 1M source tuples.  Each round
   inserts a fact first (bumping what would be the session version and
   exercising incremental index maintenance), then times one full
   evaluation of the compiled UCQ per executor.  The indexed side gets
   one untimed warmup evaluation per scale point: in the serving
   scenario the pattern indexes are built once per database lifetime
   and maintained across updates, so the cold path being measured is
   "answer cache cold", not "indexes never built" (the naive evaluator
   rebuilds its per-call indexes every time — that is precisely the
   cost the persistent indexes remove).  The warmup also doubles as a
   differential guard: naive and indexed answer sets must agree at
   every point. *)
let sweep_targets = [ 10_000; 100_000; 1_000_000 ]

let serve_sweep ~sweep_max buf =
  Printf.printf "== A12: cold eval scale sweep, naive vs indexed executor ==\n";
  Printf.printf "%-10s %-18s %8s %12s %12s %9s %6s\n" "tuples" "query" "answers"
    "naive p95" "indexed p95" "speedup" "agree";
  Buffer.add_string buf ",\n  \"sweep\": [\n";
  let first_point = ref true in
  List.iter
    (fun target ->
      if target <= sweep_max then begin
        let persons = target * 3 / 10 in
        let instance =
          Ontgen.Datagen.generate ~persons ~courses:(max 10 (persons / 10)) ()
        in
        let db = instance.Ontgen.Datagen.database in
        let tuples = Obda.Database.size db in
        let engine = Ontgen.Datagen.engine instance in
        let rounds = if target >= 1_000_000 then 3 else 7 in
        if not !first_point then Buffer.add_string buf ",\n";
        first_point := false;
        Buffer.add_string buf
          (Printf.sprintf
             "    {\"target\": %d, \"persons\": %d, \"tuples\": %d, \"rounds\": %d, \
              \"queries\": [\n"
             target persons tuples rounds);
        let first_q = ref true in
        List.iter
          (fun (name, q) ->
            let compiled = Obda.Engine.compile engine [ q ] in
            let indexed () =
              Obda.Cq.evaluate_ucq_src ~source:(Obda.Database.source db) compiled
            in
            let naive () =
              Obda.Cq.Naive.evaluate_ucq ~facts:(Obda.Database.facts db) compiled
            in
            (* warmup builds the pattern indexes + differential guard *)
            let agree =
              List.sort compare (indexed ()) = List.sort compare (naive ())
            in
            let answers = List.length (indexed ()) in
            let naive_samples = ref [] and indexed_samples = ref [] in
            for round = 1 to rounds do
              Obda.Database.insert db "t_update_log"
                [ Printf.sprintf "%s-%d-%d" name target round ];
              (* flush collector debt between samples so neither
                 executor's timing absorbs the other's garbage *)
              Gc.full_major ();
              let _, ti = timeit indexed in
              indexed_samples := ti :: !indexed_samples;
              Gc.full_major ();
              let _, tn = timeit naive in
              naive_samples := tn :: !naive_samples
            done;
            let dn = dist_of !naive_samples and di = dist_of !indexed_samples in
            let speedup = if di.p95_s > 0. then dn.p95_s /. di.p95_s else infinity in
            Printf.printf "%-10d %-18s %8d %10.3fms %10.3fms %8.1fx %6b\n%!" tuples
              name answers (1000. *. dn.p95_s) (1000. *. di.p95_s) speedup agree;
            if not !first_q then Buffer.add_string buf ",\n";
            first_q := false;
            Buffer.add_string buf
              (Printf.sprintf
                 "      {\"name\": %S, \"answers\": %d, \"naive\": %s, \"indexed\": \
                  %s, \"speedup_p95\": %.2f, \"agree\": %b}"
                 name answers (json_of_dist dn) (json_of_dist di) speedup agree)
          )
          Ontgen.Datagen.queries;
        Buffer.add_string buf "\n    ]}"
      end)
    sweep_targets;
  Buffer.add_string buf "\n  ]";
  let strategy_count strategy =
    Obs.Counter.value
      (Obs.counter ~labels:[ ("strategy", strategy) ] "obda_join_strategy_total")
  in
  let nested = strategy_count "nested_loop" and hash = strategy_count "hash" in
  let probes = Obs.Counter.value (Obs.counter "obda_index_probes_total") in
  let builds = Obs.Counter.value (Obs.counter "obda_index_builds_total") in
  Printf.printf
    "join strategies: nested_loop %d, hash %d (index probes %d, builds %d)\n"
    nested hash probes builds;
  Buffer.add_string buf
    (Printf.sprintf
       ",\n  \"join_strategies\": {\"nested_loop\": %d, \"hash\": %d, \
        \"index_probes\": %d, \"index_builds\": %d}"
       nested hash probes builds)

let serve_bench ~lru ~persons ~sweep_max () =
  let rounds = 25 and warm_repeats = 4 in
  let instance =
    Ontgen.Datagen.generate ~persons ~courses:(max 10 (persons / 10)) ()
  in
  let tuples = Obda.Database.size instance.Ontgen.Datagen.database in
  Printf.printf
    "== serve: caching query service, cold vs warm (university OBDA, %d \
     persons, %d tuples, lru %d) ==\n"
    persons tuples lru;
  let service = Server.Service.create ~config:{ Server.Service.Config.default with lru } () in
  let session = "bench" in
  Server.Service.set_tbox service ~session instance.Ontgen.Datagen.tbox;
  Server.Service.set_mappings service ~session instance.Ontgen.Datagen.mappings;
  let db = instance.Ontgen.Datagen.database in
  List.iter
    (fun rel ->
      List.iter
        (fun row -> Server.Service.insert_fact service ~session rel row)
        (Obda.Database.rows db rel))
    (Obda.Database.relation_names db);
  (* one CLASSIFY so the A10 phase table covers the classification
     spans too (encode / closure / unsat) *)
  ignore (Server.Service.classification service ~session);
  let cold = Hashtbl.create 8 and warm = Hashtbl.create 8 in
  let push tbl name v =
    Hashtbl.replace tbl name
      (v :: (match Hashtbl.find_opt tbl name with Some l -> l | None -> []))
  in
  for round = 1 to rounds do
    (* a data update: bumps the version, invalidating every cached
       answer — the cold samples below pay the full evaluate path *)
    Server.Service.insert_fact service ~session "t_update_log"
      [ Printf.sprintf "r%d" round ];
    List.iter
      (fun (name, q) ->
        let _, t =
          timeit (fun () -> ignore (Server.Service.ask service ~session q))
        in
        push cold name t;
        for _ = 1 to warm_repeats do
          let _, t =
            timeit (fun () -> ignore (Server.Service.ask service ~session q))
          in
          push warm name t
        done)
      Ontgen.Datagen.queries
  done;
  let rewrite_rate, classify_rate = Server.Service.hit_rates service in
  Printf.printf "%-18s %9s %9s %9s | %9s %9s %9s | %8s\n" "query" "cold p50"
    "p95" "p99" "warm p50" "p95" "p99" "speedup";
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"bench\": \"serve\",\n  \"persons\": %d,\n  \"tuples\": %d,\n  \
        \"lru\": %d,\n  \"rounds\": %d,\n  \"warm_repeats\": %d,\n  \"queries\": [\n"
       persons tuples lru rounds warm_repeats);
  let all_cold = ref [] and all_warm = ref [] in
  let first = ref true in
  List.iter
    (fun (name, _) ->
      let c = dist_of (Hashtbl.find cold name) in
      let w = dist_of (Hashtbl.find warm name) in
      all_cold := Hashtbl.find cold name @ !all_cold;
      all_warm := Hashtbl.find warm name @ !all_warm;
      let speedup = if w.p50_s > 0. then c.p50_s /. w.p50_s else infinity in
      Printf.printf "%-18s %7.3fms %7.3fms %7.3fms | %7.3fms %7.3fms %7.3fms | %7.1fx\n%!"
        name (1000. *. c.p50_s) (1000. *. c.p95_s) (1000. *. c.p99_s)
        (1000. *. w.p50_s) (1000. *. w.p95_s) (1000. *. w.p99_s) speedup;
      if not !first then Buffer.add_string buf ",\n";
      first := false;
      Buffer.add_string buf
        (Printf.sprintf "    {\"name\": %S, \"cold\": %s, \"warm\": %s, \"speedup_p50\": %.2f}"
           name (json_of_dist c) (json_of_dist w) speedup))
    Ontgen.Datagen.queries;
  let c = dist_of !all_cold and w = dist_of !all_warm in
  let warm_below_cold =
    w.p50_s < c.p50_s && w.p95_s < c.p95_s && w.p99_s < c.p99_s
  in
  let cold_rps = float_of_int c.count /. c.total_s in
  let warm_rps = float_of_int w.count /. w.total_s in
  Printf.printf
    "overall: cold p50 %.3fms p95 %.3fms p99 %.3fms (%.0f req/s) | warm p50 \
     %.3fms p95 %.3fms p99 %.3fms (%.0f req/s)\n"
    (1000. *. c.p50_s) (1000. *. c.p95_s) (1000. *. c.p99_s) cold_rps
    (1000. *. w.p50_s) (1000. *. w.p95_s) (1000. *. w.p99_s) warm_rps;
  Printf.printf "cache: rewrite hit rate %.3f, classify hit rate %.3f\n"
    rewrite_rate classify_rate;
  Printf.printf "warm strictly below cold at p50/p95/p99: %b\n" warm_below_cold;
  let phases = phase_summaries () in
  Printf.printf "%-18s %7s %10s %9s %9s %9s\n" "phase" "count" "sum" "p50"
    "p95" "p99";
  List.iter
    (fun (phase, (s : Obs.Histogram.summary)) ->
      Printf.printf "%-18s %7d %8.1fms %7.3fms %7.3fms %7.3fms\n" phase s.count
        (1000. *. s.sum) (1000. *. s.p50) (1000. *. s.p95) (1000. *. s.p99))
    phases;
  let phases_json =
    String.concat ",\n"
      (List.map
         (fun (phase, s) ->
           Printf.sprintf "    %S: %s" phase (json_of_phase s))
         phases)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\n  ],\n  \"overall\": {\"cold\": %s, \"warm\": %s, \"speedup_p50\": %.2f,\n    \
        \"throughput_cold_rps\": %.1f, \"throughput_warm_rps\": %.1f,\n    \
        \"warm_below_cold\": %b},\n  \"cache\": {\"rewrite_hit_rate\": %.4f, \
        \"classify_hit_rate\": %.4f},\n  \"phases\": {\n%s\n  }"
       (json_of_dist c) (json_of_dist w)
       (if w.p50_s > 0. then c.p50_s /. w.p50_s else infinity)
       cold_rps warm_rps warm_below_cold rewrite_rate classify_rate phases_json);
  serve_sweep ~sweep_max buf;
  Buffer.add_string buf "\n}\n";
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "(table written to BENCH_serve.json)\n\n"

(* ------------------------------------------------------------------ *)
(* A6: scalability of the fast classifiers                             *)
(* ------------------------------------------------------------------ *)

let scaling_ablation () =
  Printf.printf "== A6: classification scalability (Galen profile, growing scale) ==\n";
  Printf.printf "%-8s %8s %8s %12s %12s %12s\n" "scale" "|C|+|R|" "axioms"
    "QuOnto (s)" "CB (s)" "naive (s)";
  List.iter
    (fun scale ->
      let tbox =
        Ontgen.Generator.generate (Ontgen.Generator.scale scale Ontgen.Profiles.galen)
      in
      let size =
        Signature.concept_count (Tbox.signature tbox)
        + Signature.role_count (Tbox.signature tbox)
      in
      let _, quonto = timeit (fun () -> ignore (Quonto.Classify.classify tbox)) in
      let _, cb = timeit (fun () -> ignore (Baselines.Cb.classify tbox)) in
      let naive =
        if size <= 150 then
          let _, t = timeit (fun () -> ignore (Baselines.Naive.classify tbox)) in
          Printf.sprintf "%12.3f" t
        else Printf.sprintf "%12s" "skipped"
      in
      Printf.printf "%-8.3f %8d %8d %12.3f %12.3f %s\n%!" scale size
        (Tbox.axiom_count tbox) quonto cb naive)
    [ 0.005; 0.01; 0.02; 0.05; 0.1; 0.2 ];
  Printf.printf
    "(QuOnto and CB scale smoothly; the set-based naive saturation is off the \
     chart past a few hundred entities)\n\n"

(* ------------------------------------------------------------------ *)
(* Differential conformance: agreement rates + shrink effectiveness    *)
(* ------------------------------------------------------------------ *)

let conformance_report () =
  Printf.printf "== conformance: differential agreement across the stack ==\n";
  (* healthy sweep: pool cases (with the tableau oracle) *)
  let report = Conformance.Report.create () in
  let cases = 200 in
  let _, elapsed =
    timeit (fun () ->
        for seed = 1 to cases do
          let rng = Ontgen.Rng.create seed in
          let with_data = Ontgen.Rng.bool rng 0.5 in
          let tbox = Ontgen.Casegen.tbox rng in
          let data =
            if with_data then Some (Ontgen.Casegen.abox rng, Ontgen.Casegen.query rng)
            else None
          in
          let case = { Conformance.Runner.label = string_of_int seed; tbox; data } in
          Conformance.Report.record report (Conformance.Runner.check case)
        done)
  in
  Printf.printf "pool cases:    %s  (%.2fs)\n"
    (Conformance.Report.summary report) elapsed;
  (* injected-fault sweep: how well does the shrinker compress bugs? *)
  let config =
    { Conformance.Runner.default_config with
      Conformance.Runner.fault = Conformance.Subjects.Drop_inverse_role_axioms }
  in
  let injected = Conformance.Report.create () in
  let _, elapsed =
    timeit (fun () ->
        for seed = 1 to 50 do
          let rng = Ontgen.Rng.create seed in
          let case =
            { Conformance.Runner.label = string_of_int seed;
              tbox = Ontgen.Casegen.tbox rng;
              data = None }
          in
          let outcome = Conformance.Runner.check ~config case in
          Conformance.Report.record injected outcome;
          if outcome.Conformance.Runner.disagreements <> [] then begin
            let still_failing c =
              (Conformance.Runner.check ~config c).Conformance.Runner.disagreements
              <> []
            in
            let _, stats = Conformance.Shrink.minimize ~still_failing case in
            Conformance.Report.record_shrink injected stats
          end
        done)
  in
  Printf.printf "drop-inverse:  %s  (%.2fs)\n\n"
    (Conformance.Report.summary injected) elapsed

(* ------------------------------------------------------------------ *)
(* Bechamel microbenches                                               *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  let dolce = Ontgen.Generator.generate Ontgen.Profiles.dolce in
  let transportation = Ontgen.Generator.generate Ontgen.Profiles.transportation in
  let galen_005 =
    Ontgen.Generator.generate (Ontgen.Generator.scale 0.05 Ontgen.Profiles.galen)
  in
  let enc = Quonto.Encoding.build galen_005 in
  let g = Quonto.Encoding.graph enc in
  let tests =
    Test.make_grouped ~name:"obda"
      [
        Test.make ~name:"classify dolce"
          (Staged.stage (fun () -> ignore (Quonto.Classify.classify dolce)));
        Test.make ~name:"classify transportation"
          (Staged.stage (fun () -> ignore (Quonto.Classify.classify transportation)));
        Test.make ~name:"closure scc galen/20"
          (Staged.stage (fun () ->
               ignore
                 (Graphlib.Closure.compute ~algorithm:Graphlib.Closure.Scc_condense g)));
        Test.make ~name:"closure dfs galen/20"
          (Staged.stage (fun () ->
               ignore (Graphlib.Closure.compute ~algorithm:Graphlib.Closure.Dfs g)));
        Test.make ~name:"computeUnsat galen/20"
          (Staged.stage (fun () -> ignore (Quonto.Unsat.compute enc)));
      ]
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let results = Analyze.all ols instance raw in
  Printf.printf "== bechamel microbenches (monotonic clock) ==\n";
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Printf.printf "%-40s %14.0f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-40s %14s\n" name "n/a")
    (List.sort compare rows);
  Printf.printf "\n"

(* ------------------------------------------------------------------ *)
(* A11: crash-recovery time — WAL replay vs snapshot replay            *)
(* ------------------------------------------------------------------ *)

(* Builds a durable session store of n acknowledged mutations, closes
   it (simulating a crash is unnecessary: recovery takes the same path
   either way), and times the two recovery components separately —
   [Store.open_dir] (scan + CRC-check + decode) and [Service.restore]
   (replay through the normal load path).  The snapshot variant
   compacts the n-record WAL into per-session state first, which is
   what bounds recovery time in a long-running server. *)
let recover_bench () =
  Printf.printf "== A11: crash recovery time (WAL replay vs snapshot) ==\n";
  let scratch =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "obda-bench-recover-%d" (Unix.getpid ()))
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote scratch)));
  Unix.mkdir scratch 0o755;
  let tbox_payload =
    [ "concept Person"; "concept Student"; "role attends"; "Student [= Person" ]
  in
  (* fsync_on_commit off during population: the fsyncs are the *write*
     path's cost, and here we only care about timing recovery *)
  let populate dir n ~snapshot =
    Unix.mkdir dir 0o755;
    let registry = Obs.Registry.create () in
    let store, _ =
      match Durable.Store.open_dir ~registry ~fsync_on_commit:false dir with
      | Result.Ok p -> p
      | Result.Error e -> failwith e
    in
    let service = Server.Service.create ~config:{ Server.Service.Config.default with lru = 64 } ~registry () in
    Server.Service.attach_store service store;
    let load kind payload =
      match
        Server.Service.handle service
          (Server.Wire.Load { session = "s"; kind; payload })
      with
      | Server.Wire.Ok _ -> ()
      | Server.Wire.Err e -> failwith e
      | Server.Wire.Busy -> failwith "busy"
    in
    load Server.Wire.K_tbox tbox_payload;
    for i = 1 to n do
      load Server.Wire.K_facts
        [ Printf.sprintf "attends(\"p%d\", \"c%d\")" i (i mod 97) ]
    done;
    if snapshot then Server.Service.snapshot_now service;
    Durable.Store.close store
  in
  let recover dir =
    let registry = Obs.Registry.create () in
    match Durable.Store.open_dir ~registry dir with
    | Result.Error e -> failwith e
    | Result.Ok (store, r) ->
      let service = Server.Service.create ~config:{ Server.Service.Config.default with lru = 64 } ~registry () in
      let (), replay_s =
        timeit (fun () ->
            match Server.Service.restore service r.Durable.Store.mutations with
            | Result.Ok _ -> ()
            | Result.Error e -> failwith e)
      in
      Durable.Store.close store;
      (r, replay_s)
  in
  let sizes = [ 100; 1000; 5000 ] in
  Printf.printf "%-10s %8s %9s %9s %10s %10s %10s\n" "mode" "muts" "snap recs"
    "wal recs" "open (ms)" "replay(ms)" "total(ms)";
  let rows = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun snapshot ->
          let mode = if snapshot then "snapshot" else "wal" in
          let dir = Filename.concat scratch (Printf.sprintf "%s-%d" mode n) in
          populate dir n ~snapshot;
          let r, replay_s = recover dir in
          let open_s = r.Durable.Store.seconds in
          Printf.printf "%-10s %8d %9d %9d %10.2f %10.2f %10.2f\n%!" mode n
            r.Durable.Store.snapshot_records r.Durable.Store.wal_records
            (1000. *. open_s) (1000. *. replay_s)
            (1000. *. (open_s +. replay_s));
          rows :=
            Printf.sprintf
              "    {\"mode\": %S, \"mutations\": %d, \"snapshot_records\": %d, \
               \"wal_records\": %d, \"open_ms\": %.4f, \"replay_ms\": %.4f, \
               \"total_ms\": %.4f}"
              mode n r.Durable.Store.snapshot_records r.Durable.Store.wal_records
              (1000. *. open_s) (1000. *. replay_s)
              (1000. *. (open_s +. replay_s))
            :: !rows)
        [ false; true ])
    sizes;
  (* ---- A13: sustained writes — per-mutation fsync vs group commit ----
     Eight concurrent sessions hammer the durable load path with real
     fsyncs; the group committer amortizes a whole window of appends
     into one write + one fsync, so the batched run should sustain
     several times the per-mutation-fsync RPS.  The scratch directory is
     rooted in the cwd, not the temp dir: on machines where the temp dir
     is tmpfs an fsync costs nothing and the comparison is vacuous. *)
  Printf.printf "== A13: sustained writes (8 sessions, fsync vs group commit) ==\n";
  let wscratch =
    Filename.concat (Sys.getcwd ())
      (Printf.sprintf "obda-bench-write-%d" (Unix.getpid ()))
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote wscratch)));
  Unix.mkdir wscratch 0o755;
  let sessions = 8 and per_session = 1500 in
  let write_mode ~group_commit =
    let dir =
      Filename.concat wscratch (if group_commit then "group" else "fsync")
    in
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
    Unix.mkdir dir 0o755;
    let registry = Obs.Registry.create () in
    let store, _ =
      match Durable.Store.open_dir ~registry ~group_commit dir with
      | Result.Ok p -> p
      | Result.Error e -> failwith e
    in
    (* writers drive the durable layer itself: every append is a framed,
       CRC'd, fsync'd-before-acknowledge mutation, exactly what the
       Service logs per LOAD/BULK chunk — the layer the two commit
       strategies differ in.  Payloads are pre-built so the loop
       measures the commit path, not Printf. *)
    let payloads =
      Array.init sessions (fun i ->
          Array.init per_session (fun j ->
              Durable.Store.Load
                {
                  session = Printf.sprintf "w%d" i;
                  kind = "FACTS";
                  payload =
                    [ Printf.sprintf "attends(\"p%d_%d\", \"c%d\")" i j (j mod 97) ];
                }))
    in
    let writer i () =
      Array.iter (fun m -> ignore (Durable.Store.append store m)) payloads.(i)
    in
    let (), seconds =
      timeit (fun () ->
          let threads =
            List.init sessions (fun i -> Thread.create (writer i) ())
          in
          List.iter Thread.join threads)
    in
    Durable.Store.close store;
    let sample name =
      List.fold_left
        (fun acc { Obs.name = n; value; _ } -> if n = name then value else acc)
        0.0
        (Obs.Registry.samples registry)
    in
    let commits = sample "obda_wal_group_commits_total" in
    let appends = sample "obda_wal_appends_total" in
    let avg_batch = if commits > 0.0 then appends /. commits else 1.0 in
    let total = sessions * per_session in
    (total, seconds, float_of_int total /. seconds, avg_batch)
  in
  (* three interleaved (fsync, group) pairs, keep the pair with the
     median speedup: the host's fsync latency drifts over tens of
     seconds, so measuring the two modes back to back and ranking by
     the ratio cancels the drift — the claim under test is about the
     commit strategies, not the noise floor *)
  let pairs =
    List.init 3 (fun _ ->
        let f = write_mode ~group_commit:false in
        let g = write_mode ~group_commit:true in
        let (_, _, frps, _) = f and (_, _, grps, _) = g in
        (grps /. frps, f, g))
  in
  let _, (base_total, base_s, base_rps, _), (grp_total, grp_s, grp_rps, grp_batch)
      =
    match List.sort (fun (a, _, _) (b, _, _) -> compare a b) pairs with
    | [ _; mid; _ ] -> mid
    | _ -> assert false
  in
  let speedup = grp_rps /. base_rps in
  Printf.printf "%-10s %9s %9s %12s %10s\n" "mode" "muts" "sec" "writes/s"
    "avg batch";
  Printf.printf "%-10s %9d %9.3f %12.0f %10s\n" "fsync" base_total base_s
    base_rps "1";
  Printf.printf "%-10s %9d %9.3f %12.0f %10.1f\n" "group" grp_total grp_s
    grp_rps grp_batch;
  Printf.printf "group commit speedup: %.1fx\n%!" speedup;
  let write_rows =
    [
      Printf.sprintf
        "    {\"mode\": \"fsync\", \"sessions\": %d, \"mutations\": %d, \
         \"seconds\": %.4f, \"writes_per_s\": %.1f}"
        sessions base_total base_s base_rps;
      Printf.sprintf
        "    {\"mode\": \"group\", \"sessions\": %d, \"mutations\": %d, \
         \"seconds\": %.4f, \"writes_per_s\": %.1f, \"speedup\": %.2f}"
        sessions grp_total grp_s grp_rps speedup;
    ]
  in
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote wscratch)));
  let oc = open_out "BENCH_recover.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"recover\",\n  \"rows\": [\n%s\n  ],\n  \"write\": [\n%s\n  ]\n}\n"
    (String.concat ",\n" (List.rev !rows))
    (String.concat ",\n" write_rows);
  close_out oc;
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote scratch)));
  Printf.printf "(table written to BENCH_recover.json)\n\n"

(* ------------------------------------------------------------------ *)
(* A14: replicated service — read scaling and failover time            *)
(* ------------------------------------------------------------------ *)

(* Two measurements against real server processes (the same binary the
   chaos harness kills):

   1. Aggregate read throughput with 1, 2 and 4 read replicas: a small
      session is loaded on the primary, replicas catch up, then a
      closed-loop reader per member hammers ASK for a fixed window.
      Replicas serve reads from their replicated state, so the
      aggregate should scale with the member count until the client
      machine saturates.

   2. Failover time: kill -9 the primary, promote the best replica
      (highest fence, epoch + 1), measure kill → promoted node serving
      as primary.  Repeated [rounds] times for a p50/p95.

   Results land in BENCH_cluster.json. *)

let cluster_bench ?(server_exe = "_build/default/bin/obda_server.exe")
    ?(window = 2.0) ?(failover_rounds = 10) () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Printf.printf "== A14: replication — read scaling + failover time ==\n%!";
  let module Harness = Cluster.Harness in
  let module Client = Server.Client in
  let module Wire = Server.Wire in
  let scratch =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "obda-bench-cluster-%d" (Unix.getpid ()))
  in
  Harness.rm_rf scratch;
  Unix.mkdir scratch 0o755;
  let session = "bench" in
  let spawn_cluster tag n_replicas =
    let mk name =
      let sock = Filename.concat scratch (Printf.sprintf "%s-%s.sock" tag name) in
      let dir = Filename.concat scratch (Printf.sprintf "%s-%s" tag name) in
      Harness.rm_rf dir;
      (try Sys.remove sock with Sys_error _ -> ());
      (sock, dir)
    in
    let p_sock, p_dir = mk "p" in
    let reps = List.init n_replicas (fun i -> mk (Printf.sprintf "r%d" i)) in
    let eps =
      ("unix:" ^ p_sock) :: List.map (fun (s, _) -> "unix:" ^ s) reps
    in
    let p_ep = List.hd eps in
    let primary =
      Harness.spawn ~exe:server_exe ~sock:p_sock ~data_dir:p_dir
        ~group_commit:true ~cluster:eps ()
    in
    let replicas =
      List.map
        (fun (sock, dir) ->
          Harness.spawn ~exe:server_exe ~sock ~data_dir:dir ~replica_of:p_ep
            ~cluster:eps ())
        reps
    in
    Client.close (Harness.wait_listening primary);
    List.iter (fun r -> Client.close (Harness.wait_listening r)) replicas;
    (primary, replicas, eps)
  in
  let load_dataset p_ep =
    match Client.connect p_ep with
    | Result.Error e -> failwith e
    | Result.Ok conn ->
      Fun.protect
        ~finally:(fun () -> Client.close conn)
        (fun () ->
          let rpc req =
            match Client.request conn req with
            | Result.Ok (Wire.Ok _) -> ()
            | Result.Ok (Wire.Err e) -> failwith ("load: " ^ e)
            | Result.Ok Wire.Busy -> failwith "load: busy"
            | Result.Error e -> failwith ("load: " ^ e)
          in
          rpc
            (Wire.Load
               {
                 session;
                 kind = Wire.K_tbox;
                 payload = [ "concept A"; "concept B"; "role r"; "A [= B" ];
               });
          rpc
            (Wire.Load
               {
                 session;
                 kind = Wire.K_facts;
                 payload =
                   List.init 200 (fun i ->
                       Printf.sprintf "src(\"k%d\", \"%d\")" i (i mod 7));
               });
          rpc (Wire.Prepare { session; name = "q"; query = "x <- A(x)" }))
  in
  (* closed-loop readers, one thread per member endpoint *)
  let read_rps eps =
    let stop = ref false in
    let counts = Array.make (List.length eps) 0 in
    let reader i ep () =
      match Client.connect ep with
      | Result.Error _ -> ()
      | Result.Ok conn ->
        Fun.protect
          ~finally:(fun () -> Client.close conn)
          (fun () ->
            let req = Wire.Ask { session; query = Wire.Named "q" } in
            while not !stop do
              match Client.request conn req with
              | Result.Ok (Wire.Ok _) -> counts.(i) <- counts.(i) + 1
              | _ -> Thread.delay 0.01
            done)
    in
    let threads = List.mapi (fun i ep -> Thread.create (reader i ep) ()) eps in
    let t0 = Unix.gettimeofday () in
    Thread.delay window;
    stop := true;
    List.iter Thread.join threads;
    let elapsed = Unix.gettimeofday () -. t0 in
    float_of_int (Array.fold_left ( + ) 0 counts) /. elapsed
  in
  (* --- read scaling ------------------------------------------------- *)
  let read_rows =
    List.map
      (fun n ->
        let primary, replicas, eps = spawn_cluster (Printf.sprintf "read%d" n) n in
        let p_ep = List.hd eps in
        load_dataset p_ep;
        (* replicas serve only what they have replicated: wait for the
           fence to reach the primary's before measuring *)
        let target =
          let st = Client.probe_endpoint p_ep in
          st.Client.es_fence
        in
        List.iter
          (fun ep -> ignore (Harness.wait_fence ~timeout:15.0 ep target))
          (List.tl eps);
        let rps = read_rps eps in
        Printf.printf "  %d replica(s): %10.0f reads/s aggregate\n%!" n rps;
        Harness.kill_dead primary;
        List.iter Harness.kill_dead replicas;
        (n, rps))
      [ 1; 2; 4 ]
  in
  (* --- failover time ------------------------------------------------ *)
  let failover_times =
    List.init failover_rounds (fun round ->
        let primary, replicas, eps =
          spawn_cluster (Printf.sprintf "fo%d" round) 2
        in
        let p_ep = List.hd eps in
        load_dataset p_ep;
        let target =
          let st = Client.probe_endpoint p_ep in
          st.Client.es_fence
        in
        List.iter
          (fun ep -> ignore (Harness.wait_fence ~timeout:15.0 ep target))
          (List.tl eps);
        Harness.kill_dead primary;
        let t0 = Unix.gettimeofday () in
        let promoted =
          match Cluster.Node.promote_best (List.tl eps) with
          | Result.Ok (ep, _) -> ep
          | Result.Error e -> failwith ("promotion failed: " ^ e)
        in
        if not (Harness.wait_role ~timeout:10.0 promoted "primary") then
          failwith "promoted node did not become primary";
        let dt = Unix.gettimeofday () -. t0 in
        List.iter Harness.kill_dead replicas;
        dt)
  in
  let sorted = Array.of_list (List.sort compare failover_times) in
  let pct p =
    let n = Array.length sorted in
    sorted.(min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1))
  in
  Printf.printf "  failover: p50 %.3fs p95 %.3fs over %d round(s)\n%!" (pct 0.5)
    (pct 0.95) failover_rounds;
  Harness.rm_rf scratch;
  let oc = open_out "BENCH_cluster.json" in
  Printf.fprintf oc
    "{\n  \"bench\": \"cluster\",\n  \"read_rps\": [\n%s\n  ],\n  \
     \"failover\": {\"rounds\": %d, \"p50_s\": %.4f, \"p95_s\": %.4f}\n}\n"
    (String.concat ",\n"
       (List.map
          (fun (n, rps) ->
            Printf.sprintf "    {\"replicas\": %d, \"reads_per_s\": %.1f}" n rps)
          read_rows))
    failover_rounds (pct 0.5) (pct 0.95);
  close_out oc;
  Printf.printf "(table written to BENCH_cluster.json)\n\n"

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let () =
  let args = Array.to_list Sys.argv in
  let rec get_opt name default = function
    | [] -> default
    | flag :: value :: _ when flag = name -> float_of_string value
    | _ :: rest -> get_opt name default rest
  in
  let scale = get_opt "--scale" 0.04 args in
  let timeout = get_opt "--timeout" 10.0 args in
  let jobs = int_of_float (get_opt "--jobs" 4.0 args) in
  let lru = int_of_float (get_opt "--lru" 64.0 args) in
  let persons = int_of_float (get_opt "--persons" 2000.0 args) in
  let sweep_max = int_of_float (get_opt "--sweep-max" 1_000_000.0 args) in
  let modes =
    List.filter
      (fun a ->
        List.mem a
          [
            "figure1"; "figure2"; "closure"; "closure-par"; "unsat"; "implication";
            "rewrite"; "approx"; "scaling"; "data"; "serve"; "recover"; "conformance";
            "micro"; "cluster";
          ])
      args
  in
  let run mode =
    match mode with
    | "figure1" -> figure1 ~scale ~timeout ()
    | "figure2" -> figure2 ()
    | "closure" -> closure_ablation ()
    | "closure-par" -> closure_par ~scale ~jobs ()
    | "unsat" -> unsat_ablation ()
    | "implication" -> implication_ablation ()
    | "rewrite" -> rewrite_ablation ()
    | "approx" -> approx_ablation ()
    | "scaling" -> scaling_ablation ()
    | "data" -> data_ablation ()
    | "serve" -> serve_bench ~lru ~persons ~sweep_max ()
    | "recover" -> recover_bench ()
    | "cluster" -> cluster_bench ()
    | "conformance" -> conformance_report ()
    | "micro" -> micro ()
    | _ -> ()
  in
  match modes with
  | [] ->
    (* default: the full paper reproduction plus all ablations *)
    figure2 ();
    figure1 ~scale ~timeout ();
    closure_ablation ();
    closure_par ~scale ~jobs ();
    unsat_ablation ();
    implication_ablation ();
    rewrite_ablation ();
    approx_ablation ();
    scaling_ablation ();
    data_ablation ();
    serve_bench ~lru ~persons ~sweep_max ();
    recover_bench ();
    micro ()
  | modes -> List.iter run modes
