(** TBoxes: a deduplicated set of DL-Lite_R axioms plus an explicit
    signature (which may declare names not used by any axiom). *)

module Axiom_set = Set.Make (struct
  type t = Syntax.axiom

  let compare = Syntax.compare_axiom
end)

type t = {
  axioms : Axiom_set.t;
  signature : Signature.t;
}

let empty = { axioms = Axiom_set.empty; signature = Signature.empty }

(** [add ax t] inserts [ax], extending the signature with its symbols. *)
let add ax t =
  {
    axioms = Axiom_set.add ax t.axioms;
    signature = Signature.union t.signature (Signature.of_axiom ax);
  }

(** [of_axioms ?signature axs] builds a TBox from a list of axioms; an
    optional [signature] declares additional (possibly unused) names. *)
let of_axioms ?(signature = Signature.empty) axs =
  let t = List.fold_left (fun t ax -> add ax t) empty axs in
  { t with signature = Signature.union signature t.signature }

(** [declare_concept]/[declare_role]/[declare_attribute] extend the
    signature without adding axioms. *)
let declare_concept a t = { t with signature = Signature.add_concept a t.signature }
let declare_role p t = { t with signature = Signature.add_role p t.signature }
let declare_attribute u t =
  { t with signature = Signature.add_attribute u t.signature }

let axioms t = Axiom_set.elements t.axioms
let signature t = t.signature
let axiom_count t = Axiom_set.cardinal t.axioms
let mem ax t = Axiom_set.mem ax t.axioms

(** [positive_inclusions t] are the axioms with no negated right-hand side. *)
let positive_inclusions t = List.filter Syntax.is_positive (axioms t)

(** [negative_inclusions t] are the disjointness axioms. *)
let negative_inclusions t =
  List.filter (fun ax -> not (Syntax.is_positive ax)) (axioms t)

(** [union a b] merges axioms and signatures. *)
let union a b =
  {
    axioms = Axiom_set.union a.axioms b.axioms;
    signature = Signature.union a.signature b.signature;
  }

(** [filter p t] keeps the axioms satisfying [p]; the signature is kept
    as-is (dropping axioms never shrinks the declared vocabulary). *)
let filter p t = { t with axioms = Axiom_set.filter p t.axioms }

(** [equal a b] compares axiom sets and signatures. *)
let equal a b = Axiom_set.equal a.axioms b.axioms && Signature.equal a.signature b.signature

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun ax -> Format.fprintf fmt "%a@," Syntax.pp_axiom_ascii ax) (axioms t);
  Format.fprintf fmt "@]"

let to_string t = Format.asprintf "%a" pp t

(** [fingerprint t] is a structural digest of the TBox: equal TBoxes
    (same axiom set, same declared signature) always fingerprint
    equally, independent of construction order, because both components
    are kept as sorted sets.  The serving layer uses the fingerprint as
    a cache key for classification results and query rewritings — both
    are pure functions of the TBox — so a fingerprint collision would be
    a soundness bug; MD5 over the canonical text makes one vanishingly
    unlikely. *)
let fingerprint t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ax ->
      Buffer.add_string buf (Syntax.axiom_to_string ax);
      Buffer.add_char buf '\n')
    (axioms t);
  Buffer.add_string buf "#signature\n";
  List.iter (fun a -> Buffer.add_string buf ("c " ^ a ^ "\n"))
    (Signature.concepts t.signature);
  List.iter (fun p -> Buffer.add_string buf ("r " ^ p ^ "\n"))
    (Signature.roles t.signature);
  List.iter (fun u -> Buffer.add_string buf ("a " ^ u ^ "\n"))
    (Signature.attributes t.signature);
  Digest.to_hex (Digest.string (Buffer.contents buf))
