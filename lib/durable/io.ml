(** EINTR-retrying, partial-write-completing file-descriptor I/O,
    shared by the WAL, the snapshot writer and the server's connection
    handling.

    [Unix.write] may write fewer bytes than asked and both read and
    write may fail with [EINTR] when a signal lands mid-syscall; a naive
    single-shot call turns either into a spurious error on an otherwise
    healthy connection.  Every loop here retries [EINTR] and completes
    partial writes.

    Write sites may name a {!Failpoint}: an armed [partial:K] then
    persists exactly [K] bytes of the in-flight write before crashing —
    the deterministic torn-write producer the recovery tests rely on. *)

let rec retry f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry f

let write_all_plain fd bytes ~pos ~len =
  let off = ref pos and remaining = ref len in
  while !remaining > 0 do
    let n = retry (fun () -> Unix.write fd bytes !off !remaining) in
    off := !off + n;
    remaining := !remaining - n
  done

(** [write_all ?failpoint fd bytes ~pos ~len] writes the whole range,
    retrying [EINTR] and short writes.  With an armed [partial:K]
    failpoint, writes [min K len] bytes and crashes. *)
let write_all ?failpoint fd bytes ~pos ~len =
  match failpoint with
  | None -> write_all_plain fd bytes ~pos ~len
  | Some name -> (
    match Failpoint.hit name with
    | None -> write_all_plain fd bytes ~pos ~len
    | Some k ->
      write_all_plain fd bytes ~pos ~len:(min k len);
      (* make the torn prefix durable before dying, so the recovery
         test sees exactly K bytes, not 0-or-K depending on the page
         cache *)
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix._exit 137)

let write_string ?failpoint fd s =
  write_all ?failpoint fd (Bytes.unsafe_of_string s) ~pos:0
    ~len:(String.length s)

(** [fsync ?failpoint fd] — [check]s the failpoint (a [crash] armed
    here dies {e before} the data is known durable), then syncs. *)
let fsync ?failpoint fd =
  Option.iter Failpoint.check failpoint;
  retry (fun () -> Unix.fsync fd)

(** [read_all fd] — the whole remaining content of [fd], EINTR-safe.
    Recovery reads WAL and snapshot files through this. *)
let read_all fd =
  let chunk = 65536 in
  let buf = Buffer.create chunk in
  let bytes = Bytes.create chunk in
  let rec go () =
    let n = retry (fun () -> Unix.read fd bytes 0 chunk) in
    if n > 0 then begin
      Buffer.add_subbytes buf bytes 0 n;
      go ()
    end
  in
  go ();
  Buffer.to_bytes buf

(* --------------------------- buffered reader -------------------------- *)

(** A buffered line reader over a raw descriptor — the connection-side
    replacement for [in_channel], with [EINTR] handled in the refill
    loop instead of surfacing as [Sys_error]. *)
type reader = {
  fd : Unix.file_descr;
  buf : Bytes.t;
  mutable lo : int;  (** next unconsumed byte *)
  mutable hi : int;  (** end of valid data *)
  mutable eof : bool;
}

let reader ?(buf_size = 65536) fd =
  { fd; buf = Bytes.create buf_size; lo = 0; hi = 0; eof = false }

let refill r =
  if not r.eof then begin
    let n = retry (fun () -> Unix.read r.fd r.buf 0 (Bytes.length r.buf)) in
    r.lo <- 0;
    r.hi <- n;
    if n = 0 then r.eof <- true
  end

(** [read_line r ~max_line] — the next ['\n']-terminated line, without
    its terminator; a CR directly before the newline is stripped (CRLF
    clients), any other CR is content.  A line longer than [max_line]
    is consumed to its newline but truncated to [max_line + 1] bytes —
    enough for the wire decoder's length check to report it.  [None] at
    end of stream (a final unterminated line is returned first). *)
let read_line r ~max_line =
  let acc = Buffer.create 128 in
  let add c = if Buffer.length acc <= max_line then Buffer.add_char acc c in
  let rec go ~pending_cr =
    if r.lo >= r.hi then refill r;
    if r.lo >= r.hi then begin
      (* EOF *)
      if pending_cr then add '\r';
      if Buffer.length acc = 0 then None else Some (Buffer.contents acc)
    end
    else
      let c = Bytes.get r.buf r.lo in
      r.lo <- r.lo + 1;
      match c with
      | '\n' -> Some (Buffer.contents acc)
      | '\r' ->
        if pending_cr then add '\r';
        go ~pending_cr:true
      | c ->
        if pending_cr then add '\r';
        add c;
        go ~pending_cr:false
  in
  go ~pending_cr:false
