(** The write-ahead log: checksummed, length-prefixed records with
    fsync-on-commit.

    On-disk framing, per record:

    {v
      +--------+--------+--------+----------------+
      | len u32| seq u64| crc u32| payload (len B)|
      +--------+--------+--------+----------------+
    v}

    All integers big-endian; [crc] is CRC-32 over the seq field and the
    payload, so neither a torn payload nor a corrupted sequence number
    can pass.  [len] is {e not} covered — it doesn't need to be: a
    corrupted length either points past the end of the file (scanned as
    a torn tail) or frames a region whose CRC fails.

    Recovery semantics ({!scan}):

    - a record that doesn't fit in the remaining bytes, or whose CRC
      fails {e at the very tail} of the file, is a {e torn tail} — the
      incomplete leftover of a crashed append.  It and everything after
      it (there is nothing after it) are dropped; the appender then
      truncates the file back to the last good record;
    - a CRC failure with more bytes {e after} the framed record is
      {e mid-log corruption}: bits rotted under an fsync'd prefix.
      That's not a crash artifact, and silently dropping acknowledged
      records would serve divergent answers — so {!scan} refuses loudly
      with {!Corrupt}. *)

type entry = { seq : int; payload : string }

exception Corrupt of string

type scan = {
  entries : entry list;
  valid_bytes : int;  (** offset of the first non-replayable byte *)
  torn_bytes : int;   (** trailing bytes dropped as a torn tail; 0 = clean *)
}

let header_size = 16

(* ---------------------------- en/decoding ---------------------------- *)

let u32_at bytes off = Int32.to_int (Bytes.get_int32_be bytes off) land 0xFFFFFFFF

let encode ~seq payload =
  let len = String.length payload in
  let record = Bytes.create (header_size + len) in
  Bytes.set_int32_be record 0 (Int32.of_int len);
  Bytes.set_int64_be record 4 (Int64.of_int seq);
  Bytes.blit_string payload 0 record header_size len;
  (* over seq + payload, skipping the crc field between them — must
     mirror [crc_of_region] exactly *)
  let crc =
    Crc32.update (Crc32.update 0 record ~pos:4 ~len:8) record ~pos:header_size
      ~len
  in
  Bytes.set_int32_be record 12 (Int32.of_int crc);
  record

(* crc over seq+payload, skipping the crc field between them *)
let crc_of_region bytes off len =
  let c = Crc32.update 0 bytes ~pos:(off + 4) ~len:8 in
  Crc32.update c bytes ~pos:(off + header_size) ~len

let scan bytes =
  let size = Bytes.length bytes in
  let torn off acc =
    { entries = List.rev acc; valid_bytes = off; torn_bytes = size - off }
  in
  let rec go off acc =
    if off = size then
      { entries = List.rev acc; valid_bytes = off; torn_bytes = 0 }
    else if size - off < header_size then torn off acc
    else
      let len = u32_at bytes off in
      if len > size - off - header_size then torn off acc
      else begin
        let seq = Int64.to_int (Bytes.get_int64_be bytes (off + 4)) in
        let stored = u32_at bytes (off + 12) in
        let actual = crc_of_region bytes off len in
        if stored <> actual then
          if off + header_size + len = size then torn off acc
          else
            raise
              (Corrupt
                 (Printf.sprintf
                    "bad CRC at offset %d (framed seq %d, %d bytes follow): \
                     mid-log corruption, refusing to replay"
                    off seq
                    (size - off - header_size - len)))
        else
          let payload = Bytes.sub_string bytes (off + header_size) len in
          go (off + header_size + len) ({ seq; payload } :: acc)
      end
  in
  go 0 []

(** [scan_file path] — {!scan} of the file's contents; a missing file is
    an empty log.  @raise Corrupt on mid-log corruption. *)
let scan_file path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
    { entries = []; valid_bytes = 0; torn_bytes = 0 }
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> scan (Io.read_all fd))

(* ------------------------------ appender ----------------------------- *)

type t = {
  path : string;
  fd : Unix.file_descr;
  fsync_on_commit : bool;
  m_appends : Obs.Counter.t;
  m_fsyncs : Obs.Counter.t;
  m_bytes : Obs.Counter.t;
}

(** [open_append ~registry ~path ~valid_bytes ()] opens the log for
    appending, first truncating it to [valid_bytes] — recovery's way of
    physically dropping a torn tail so it can never resurface. *)
let open_append ?(fsync_on_commit = true) ~registry ~path ~valid_bytes () =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Unix.ftruncate fd valid_bytes;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  {
    path;
    fd;
    fsync_on_commit;
    m_appends = Obs.Registry.counter registry "obda_wal_appends_total";
    m_fsyncs = Obs.Registry.counter registry "obda_wal_fsyncs_total";
    m_bytes = Obs.Registry.counter registry "obda_wal_bytes_written_total";
  }

(** [append t ~seq payload] — write one record and (by default) fsync
    before returning: once [append] returns, the record survives
    [kill -9].  Failpoints, in order: [wal.append.before] (nothing
    written), [wal.append.write] (partial-write site),
    [wal.append.before_fsync] (record written, durability not yet
    guaranteed), [wal.append.after_fsync] (durable, not yet
    acknowledged). *)
let append t ~seq payload =
  Failpoint.check "wal.append.before";
  let record = encode ~seq payload in
  Io.write_all ~failpoint:"wal.append.write" t.fd record ~pos:0
    ~len:(Bytes.length record);
  Obs.Counter.incr t.m_appends;
  Obs.Counter.incr ~by:(Bytes.length record) t.m_bytes;
  if t.fsync_on_commit then begin
    Io.fsync ~failpoint:"wal.append.before_fsync" t.fd;
    Obs.Counter.incr t.m_fsyncs
  end;
  Failpoint.check "wal.append.after_fsync"

(** [reset t] empties the log — called once a snapshot has made its
    records redundant.  The truncation is fsync'd: a crash right after
    must not resurrect pre-snapshot records with stale sequence
    numbers. *)
let reset t =
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  Io.fsync t.fd;
  Obs.Counter.incr t.m_fsyncs

(** [truncate_to t len] — cut the log back to [len] bytes and reposition
    the append offset there: the failed-append repair, run before the
    next append so torn bytes never end up under a good record. *)
let truncate_to t len =
  Unix.ftruncate t.fd len;
  ignore (Unix.lseek t.fd len Unix.SEEK_SET)

let sync t =
  Io.fsync t.fd;
  Obs.Counter.incr t.m_fsyncs

let close t =
  (try sync t with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
