(** The write-ahead log: checksummed, length-prefixed records with
    fsync-on-commit.

    On-disk framing, per record:

    {v
      +--------+--------+--------+----------------+
      | len u32| seq u64| crc u32| payload (len B)|
      +--------+--------+--------+----------------+
    v}

    All integers big-endian; [crc] is CRC-32 over the seq field and the
    payload, so neither a torn payload nor a corrupted sequence number
    can pass.  [len] is {e not} covered — it doesn't need to be: a
    corrupted length either points past the end of the file (scanned as
    a torn tail) or frames a region whose CRC fails.

    Recovery semantics ({!scan}):

    - a record that doesn't fit in the remaining bytes, or whose CRC
      fails {e at the very tail} of the file, is a {e torn tail} — the
      incomplete leftover of a crashed append.  It and everything after
      it (there is nothing after it) are dropped; the appender then
      truncates the file back to the last good record;
    - a CRC failure with more bytes {e after} the framed record is
      {e mid-log corruption}: bits rotted under an fsync'd prefix.
      That's not a crash artifact, and silently dropping acknowledged
      records would serve divergent answers — so {!scan} refuses loudly
      with {!Corrupt}. *)

type entry = { seq : int; payload : string }

exception Corrupt of string

type scan = {
  entries : entry list;
  valid_bytes : int;  (** offset of the first non-replayable byte *)
  torn_bytes : int;   (** trailing bytes dropped as a torn tail; 0 = clean *)
}

let header_size = 16

(* ---------------------------- en/decoding ---------------------------- *)

let u32_at bytes off = Int32.to_int (Bytes.get_int32_be bytes off) land 0xFFFFFFFF

let encode ~seq payload =
  let len = String.length payload in
  let record = Bytes.create (header_size + len) in
  Bytes.set_int32_be record 0 (Int32.of_int len);
  Bytes.set_int64_be record 4 (Int64.of_int seq);
  Bytes.blit_string payload 0 record header_size len;
  (* over seq + payload, skipping the crc field between them — must
     mirror [crc_of_region] exactly *)
  let crc =
    Crc32.update (Crc32.update 0 record ~pos:4 ~len:8) record ~pos:header_size
      ~len
  in
  Bytes.set_int32_be record 12 (Int32.of_int crc);
  record

(* crc over seq+payload, skipping the crc field between them *)
let crc_of_region bytes off len =
  let c = Crc32.update 0 bytes ~pos:(off + 4) ~len:8 in
  Crc32.update c bytes ~pos:(off + header_size) ~len

let scan bytes =
  let size = Bytes.length bytes in
  let torn off acc =
    { entries = List.rev acc; valid_bytes = off; torn_bytes = size - off }
  in
  let rec go off acc =
    if off = size then
      { entries = List.rev acc; valid_bytes = off; torn_bytes = 0 }
    else if size - off < header_size then torn off acc
    else
      let len = u32_at bytes off in
      if len > size - off - header_size then torn off acc
      else begin
        let seq = Int64.to_int (Bytes.get_int64_be bytes (off + 4)) in
        let stored = u32_at bytes (off + 12) in
        let actual = crc_of_region bytes off len in
        if stored <> actual then
          if off + header_size + len = size then torn off acc
          else
            raise
              (Corrupt
                 (Printf.sprintf
                    "bad CRC at offset %d (framed seq %d, %d bytes follow): \
                     mid-log corruption, refusing to replay"
                    off seq
                    (size - off - header_size - len)))
        else
          let payload = Bytes.sub_string bytes (off + header_size) len in
          go (off + header_size + len) ({ seq; payload } :: acc)
      end
  in
  go 0 []

(** [scan_file path] — {!scan} of the file's contents; a missing file is
    an empty log.  @raise Corrupt on mid-log corruption. *)
let scan_file path =
  match Unix.openfile path [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) ->
    { entries = []; valid_bytes = 0; torn_bytes = 0 }
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> scan (Io.read_all fd))

(* ------------------------------ appender ----------------------------- *)

type t = {
  path : string;
  fd : Unix.file_descr;
  fsync_on_commit : bool;
  m_appends : Obs.Counter.t;
  m_fsyncs : Obs.Counter.t;
  m_bytes : Obs.Counter.t;
}

(** [open_append ~registry ~path ~valid_bytes ()] opens the log for
    appending, first truncating it to [valid_bytes] — recovery's way of
    physically dropping a torn tail so it can never resurface. *)
let open_append ?(fsync_on_commit = true) ~registry ~path ~valid_bytes () =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  Unix.ftruncate fd valid_bytes;
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  {
    path;
    fd;
    fsync_on_commit;
    m_appends = Obs.Registry.counter registry "obda_wal_appends_total";
    m_fsyncs = Obs.Registry.counter registry "obda_wal_fsyncs_total";
    m_bytes = Obs.Registry.counter registry "obda_wal_bytes_written_total";
  }

(** [append t ~seq payload] — write one record and (by default) fsync
    before returning: once [append] returns, the record survives
    [kill -9].  Failpoints, in order: [wal.append.before] (nothing
    written), [wal.append.write] (partial-write site),
    [wal.append.before_fsync] (record written, durability not yet
    guaranteed), [wal.append.after_fsync] (durable, not yet
    acknowledged). *)
let append t ~seq payload =
  Failpoint.check "wal.append.before";
  let record = encode ~seq payload in
  Io.write_all ~failpoint:"wal.append.write" t.fd record ~pos:0
    ~len:(Bytes.length record);
  Obs.Counter.incr t.m_appends;
  Obs.Counter.incr ~by:(Bytes.length record) t.m_bytes;
  if t.fsync_on_commit then begin
    Io.fsync ~failpoint:"wal.append.before_fsync" t.fd;
    Obs.Counter.incr t.m_fsyncs
  end;
  Failpoint.check "wal.append.after_fsync"

(** [reset t] empties the log — called once a snapshot has made its
    records redundant.  The truncation is fsync'd: a crash right after
    must not resurrect pre-snapshot records with stale sequence
    numbers. *)
let reset t =
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  Io.fsync t.fd;
  Obs.Counter.incr t.m_fsyncs

(** [truncate_to t len] — cut the log back to [len] bytes and reposition
    the append offset there: the failed-append repair, run before the
    next append so torn bytes never end up under a good record. *)
let truncate_to t len =
  Unix.ftruncate t.fd len;
  ignore (Unix.lseek t.fd len Unix.SEEK_SET)

let sync t =
  Io.fsync t.fd;
  Obs.Counter.incr t.m_fsyncs

let close t =
  (try sync t with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ---------------------------- group commit --------------------------- *)

(** The group committer: concurrent appenders enqueue framed records and
    block; a dedicated committer thread drains the queue, writes the
    whole batch with one buffered append and {e one} fsync, then
    releases every waiter in the batch at once — amortizing the fsync
    (the dominant cost of durability) across however many sessions were
    writing concurrently.

    The batching window is {e self-clocked} rather than timer-driven:
    while batch [N]'s write+fsync is in flight, arrivals accumulate into
    batch [N+1], so the accumulation window is naturally the duration of
    one commit (≈ the device's fsync latency) and never longer.  A fixed
    timer (say 2 ms) would be strictly worse for blocked producers: a
    solo appender would pay the timer on every record, and a saturated
    group would be throttled to [max_batch / timer].  [max_batch]
    (default 64) bounds the batch size so one bad batch never tears more
    than a window's worth of records.

    Failure semantics mirror the single-record path: an injected or real
    I/O error fails {e every} record in the batch (none was
    acknowledged), the file is cut back to the last committed offset so
    torn bytes never end up under a later good record, and subsequent
    batches proceed.  The failpoints [wal.append.before],
    [wal.append.write], [wal.append.before_fsync] and
    [wal.append.after_fsync] fire once per {e batch}, at the same
    protocol points as the single-record path. *)
module Group = struct
  type outcome = Pending | Committed | Failed of exn

  type ticket = { mutable outcome : outcome; sem : Semaphore.Binary.t }
  (* per-ticket semaphore: releasing a batch must not force every
     producer back through [gm] (a condvar wake requeues all waiters
     onto the mutex, so they wake one by one behind each other);
     acquiring a private semaphore wakes each producer independently *)

  type group = {
    wal : t;
    gm : Mutex.t;
    arrived : Condition.t;   (* signalled on enqueue / stop *)
    released : Condition.t;  (* broadcast when a batch resolves *)
    mutable queue : (int * string * ticket) list;  (* newest first *)
    mutable in_flight : int;
    mutable committed_bytes : int;
        (** file offset after the last good batch *)
    mutable gdirty : bool;   (** a failed repair left torn bytes behind *)
    mutable stopping : bool;
    mutable thread : Thread.t option;
    mutable last_batch : int;
        (** previous batch's size — the harvest target under steady load *)
    max_batch : int;
    on_commit : ((int * string) list -> unit) option;
        (** fired on the committer thread after each durable batch, in
            sequence order, before the batch's waiters are released —
            the replication hub's tap into the commit stream *)
    m_group_size : Obs.Histogram.t;
    m_group_commits : Obs.Counter.t;
  }

  let rec split_at n = function
    | x :: rest when n > 0 ->
      let a, b = split_at (n - 1) rest in
      (x :: a, b)
    | rest -> ([], rest)

  (* write + fsync one batch; on failure, cut the file back so the torn
     bytes can never precede a later good record *)
  let commit_batch g batch =
    try
      Failpoint.check "wal.append.before";
      if g.gdirty then begin
        truncate_to g.wal g.committed_bytes;
        g.gdirty <- false
      end;
      let buf = Buffer.create 4096 in
      List.iter
        (fun (seq, payload, _) -> Buffer.add_bytes buf (encode ~seq payload))
        batch;
      let bytes = Buffer.to_bytes buf in
      Io.write_all ~failpoint:"wal.append.write" g.wal.fd bytes ~pos:0
        ~len:(Bytes.length bytes);
      Obs.Counter.incr ~by:(List.length batch) g.wal.m_appends;
      Obs.Counter.incr ~by:(Bytes.length bytes) g.wal.m_bytes;
      if g.wal.fsync_on_commit then begin
        Io.fsync ~failpoint:"wal.append.before_fsync" g.wal.fd;
        Obs.Counter.incr g.wal.m_fsyncs
      end;
      Failpoint.check "wal.append.after_fsync";
      g.committed_bytes <- g.committed_bytes + Bytes.length bytes;
      Committed
    with e ->
      (try truncate_to g.wal g.committed_bytes
       with _ -> g.gdirty <- true);
      Failed e

  let rec run g =
    Mutex.lock g.gm;
    while g.queue = [] && not g.stopping do
      Condition.wait g.arrived g.gm
    done;
    if g.queue = [] then Mutex.unlock g.gm (* stopping, queue drained *)
    else begin
      (* harvest shaping, still with no timer: producers released by
         the previous batch are runnable but must re-acquire the
         runtime lock one by one before they can re-enqueue, so the
         queue refills gradually.  Yield the scheduler to them until
         the queue reaches the previous batch's size (the best
         estimate of how many writers are in steady state), with a
         hard cap on yields so a shrinking workload converges.  An
         idle queue still parks in [Condition.wait] above, and a solo
         appender pays a few no-op yields (microseconds) against a
         ~100µs fsync. *)
      let target = min g.max_batch (1 + max 1 g.last_batch) in
      let rounds = ref 0 in
      while List.compare_length_with g.queue target < 0 && !rounds < 4 do
        incr rounds;
        Mutex.unlock g.gm;
        for _ = 1 to 4 do
          Thread.yield ()
        done;
        Mutex.lock g.gm
      done;
      let batch, rest = split_at g.max_batch (List.rev g.queue) in
      g.last_batch <- List.length batch;
      g.queue <- List.rev rest;
      g.in_flight <- List.length batch;
      Mutex.unlock g.gm;
      let outcome = commit_batch g batch in
      Obs.Histogram.observe g.m_group_size (float_of_int (List.length batch));
      Obs.Counter.incr g.m_group_commits;
      (match (outcome, g.on_commit) with
      | Committed, Some f -> (
        (* observer runs before waiters are released: when an append
           returns, its record is already in the replication stream *)
        try f (List.map (fun (seq, payload, _) -> (seq, payload)) batch)
        with _ -> ())
      | _ -> ());
      List.iter
        (fun (_, _, tk) ->
          tk.outcome <- outcome;
          Semaphore.Binary.release tk.sem)
        batch;
      Mutex.lock g.gm;
      g.in_flight <- 0;
      Condition.broadcast g.released;  (* flush waiters *)
      Mutex.unlock g.gm;
      run g
    end

  (** [start ~registry ~committed wal] — spawn the committer over an
      opened appender whose good data ends at offset [committed]. *)
  let start ?(max_batch = 64) ?on_commit ~registry ~committed wal =
    let g =
      {
        on_commit;
        wal;
        gm = Mutex.create ();
        arrived = Condition.create ();
        released = Condition.create ();
        queue = [];
        in_flight = 0;
        committed_bytes = committed;
        gdirty = false;
        stopping = false;
        thread = None;
        last_batch = 1;
        max_batch;
        m_group_size =
          Obs.Registry.histogram registry ~buckets:Obs.Histogram.size_buckets
            "obda_wal_group_size";
        m_group_commits =
          Obs.Registry.counter registry "obda_wal_group_commits_total";
      }
    in
    g.thread <- Some (Thread.create run g);
    g

  (** [enqueue g ~seq payload] — hand one record to the committer.  The
      caller must serialize sequence assignment and enqueueing (the
      store does both under its own lock) so file order matches
      sequence order. *)
  let enqueue g ~seq payload =
    let tk = { outcome = Pending; sem = Semaphore.Binary.make false } in
    Mutex.lock g.gm;
    if g.stopping then begin
      Mutex.unlock g.gm;
      invalid_arg "Wal.Group.enqueue: committer is stopped"
    end;
    g.queue <- (seq, payload, tk) :: g.queue;
    Condition.signal g.arrived;
    Mutex.unlock g.gm;
    tk

  (** [await g tk] — block until the ticket's batch commits.  Raises the
      batch's failure (the record was not made durable and must be
      rejected, exactly like a failed {!append}). *)
  let await _g tk =
    Semaphore.Binary.acquire tk.sem;
    match tk.outcome with
    | Committed -> ()
    | Failed e -> raise e
    | Pending -> assert false

  (** [flush g] — wait until the queue is empty and no batch is in
      flight.  Meaningful only while the caller prevents new enqueues
      (the store holds its lock): the snapshot path quiesces the
      committer this way before resetting the WAL. *)
  let flush g =
    Mutex.lock g.gm;
    while g.queue <> [] || g.in_flight > 0 do
      Condition.wait g.released g.gm
    done;
    Mutex.unlock g.gm

  (** [note_reset g] — the WAL was just emptied (snapshot install);
      restart offset accounting from zero.  Call only quiesced. *)
  let note_reset g =
    Mutex.lock g.gm;
    g.committed_bytes <- 0;
    g.gdirty <- false;
    Mutex.unlock g.gm

  (** [stop g] — drain the queue, stop the committer, join it. *)
  let stop g =
    Mutex.lock g.gm;
    g.stopping <- true;
    Condition.signal g.arrived;
    Mutex.unlock g.gm;
    match g.thread with None -> () | Some th -> Thread.join th
end
