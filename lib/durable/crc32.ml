(** CRC-32 (IEEE 802.3, the zlib/gzip polynomial), table-driven.

    The WAL frames every record with this checksum so recovery can tell
    a fully persisted record from a torn or corrupted one without
    trusting the length prefix.  Implemented over native [int]s with
    explicit 32-bit masking — the polynomial arithmetic never needs more
    than 32 bits, and OCaml ints carry 63 on every platform we build
    for. *)

let mask = 0xFFFFFFFF

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c land mask))

(** [update crc bytes pos len] folds [len] bytes at [pos] into a running
    checksum (start from [0], as {!digest} does). *)
let update crc bytes ~pos ~len =
  let table = Lazy.force table in
  let c = ref (crc lxor mask) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (Bytes.unsafe_get bytes i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor mask land mask

let digest_bytes bytes ~pos ~len = update 0 bytes ~pos ~len

let digest_string s =
  digest_bytes (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)
