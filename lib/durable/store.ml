(** The durable session store: one directory holding a snapshot and a
    write-ahead log of session mutations.

    {v
      <data-dir>/
        wal           checksummed mutation records (Wal framing)
        snapshot      compacted state, written via snapshot.tmp + rename
        snapshot.tmp  transient; a leftover one is deleted on open
    v}

    Mutations are logged {e before} they are applied and acknowledged:
    an acknowledged mutation is always on fsync'd disk.  Each carries a
    store-wide sequence number.  A snapshot is a compacted replay
    prefix — the mutation records that rebuild the state as of sequence
    [S] — written to a temp file, fsync'd, and atomically [rename]d into
    place; only then is the WAL emptied.  A crash between rename and
    reset is harmless: recovery replays the snapshot and then only WAL
    records with [seq > S].

    Recovery ({!open_dir}) refuses loudly on mid-log corruption and on
    any damage to the snapshot (which, being rename-installed, is never
    legitimately torn); a torn WAL tail — the signature of a crashed
    append — is dropped, logged, and counted in
    [obda_wal_truncations_total]. *)

let log_src = Logs.Src.create "durable" ~doc:"WAL + snapshot session store"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ----------------------------- mutations ----------------------------- *)

(** The replayable session mutations.  [kind] is the wire LOAD kind
    (TBOX / MAPPINGS / ABOX / FACTS) kept as text — the store frames and
    persists; the service interprets. *)
type mutation =
  | Load of { session : string; kind : string; payload : string list }
  | Prepare of { session : string; name : string; query : string }

let token_ok s =
  s <> ""
  && String.for_all (fun c -> c <> ' ' && c <> '\n' && c <> '\r') s

let encode_mutation m =
  let header =
    match m with
    | Load { session; kind; payload = _ } ->
      if not (token_ok session && token_ok kind) then
        invalid_arg "Store: malformed session or kind token";
      Printf.sprintf "L %s %s" session kind
    | Prepare { session; name; query } ->
      if not (token_ok session && token_ok name) then
        invalid_arg "Store: malformed session or name token";
      if String.contains query '\n' then
        invalid_arg "Store: prepared query contains a newline";
      Printf.sprintf "P %s %s" session name
  in
  match m with
  | Load { payload; _ } -> String.concat "\n" (header :: payload)
  | Prepare { query; _ } -> header ^ "\n" ^ query

let decode_mutation s =
  match String.split_on_char '\n' s with
  | [] -> Result.Error "empty mutation record"
  | header :: rest -> (
    match String.split_on_char ' ' header with
    | [ "L"; session; kind ] -> Result.Ok (Load { session; kind; payload = rest })
    | [ "P"; session; name ] -> (
      match rest with
      | [ query ] -> Result.Ok (Prepare { session; name; query })
      | _ -> Result.Error "malformed PREPARE record")
    | _ -> Result.Error (Printf.sprintf "unrecognized mutation header %S" header))

(* ------------------------------- store ------------------------------- *)

type t = {
  dir : string;
  mu : Mutex.t;  (** guards the WAL appender and the counters below *)
  wal : Wal.t;
  group : Wal.Group.group option;
      (** when set, appends go through the group committer: sequence
          numbers are assigned and records enqueued under [mu], but the
          write+fsync happens on the committer thread, batched with
          whatever other sessions were appending concurrently *)
  snapshot_every : int option;
  snapshot_bytes : int option;
  mutable next_seq : int;
  mutable good_bytes : int;  (** WAL offset after the last committed append *)
  mutable dirty : bool;      (** a failed append may have left torn bytes *)
  mutable since_snapshot : int;
  mutable since_snapshot_bytes : int;
  mutable snapshotting : bool;
  observers : (int -> string -> unit) list ref;
      (** commit observers, fired once per durable record in sequence
          order: under [mu] on the direct path, on the committer thread
          (via [Group.on_commit]) under group commit.  The replication
          hub taps the commit stream here. *)
  registry : Obs.registry;
  m_truncations : Obs.Counter.t;
  m_replayed : Obs.Counter.t;
  m_snapshots : Obs.Counter.t;
}

type recovery = {
  mutations : mutation list;  (** snapshot records, then the WAL tail *)
  snapshot_records : int;
  wal_records : int;
  truncated_bytes : int;  (** [> 0] when a torn WAL tail was dropped *)
  seconds : float;
}

let dir t = t.dir
let last_seq t = t.next_seq - 1

let wal_path dir = Filename.concat dir "wal"
let snapshot_path dir = Filename.concat dir "snapshot"
let snapshot_tmp_path dir = Filename.concat dir "snapshot.tmp"

let snapshot_header_prefix = "S "

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* snapshot file → (fence seq, mutations); None when absent *)
let read_snapshot path =
  match Wal.scan_file path with
  | exception Wal.Corrupt m ->
    Result.Error (Printf.sprintf "snapshot %s: %s" path m)
  | { Wal.torn_bytes; _ } when torn_bytes > 0 ->
    (* snapshots are rename-installed whole; a short one is corruption,
       not a crash artifact *)
    Result.Error
      (Printf.sprintf "snapshot %s: %d trailing bytes do not frame a record"
         path torn_bytes)
  | { Wal.entries = []; _ } -> Result.Ok None
  | { Wal.entries = header :: records; _ } -> (
    let p = header.Wal.payload in
    let plen = String.length snapshot_header_prefix in
    if String.length p <= plen || String.sub p 0 plen <> snapshot_header_prefix
    then Result.Error (Printf.sprintf "snapshot %s: bad header record" path)
    else
      match int_of_string_opt (String.sub p plen (String.length p - plen)) with
      | None -> Result.Error (Printf.sprintf "snapshot %s: bad fence seq" path)
      | Some fence ->
        let rec decode acc = function
          | [] -> Result.Ok (Some (fence, List.rev acc))
          | e :: rest -> (
            match decode_mutation e.Wal.payload with
            | Result.Ok m -> decode (m :: acc) rest
            | Result.Error msg ->
              Result.Error (Printf.sprintf "snapshot %s: %s" path msg))
        in
        decode [] records)

(** [open_dir ?registry ?fsync_on_commit ?group_commit ?snapshot_every
    ?snapshot_bytes dir] — create or recover the store.  On success,
    returns the opened store (WAL truncated past any torn tail, ready
    to append) and the recovery record whose [mutations] the caller
    must replay, in order, into a fresh service {e before} attaching
    the store.  [snapshot_every] arms {!want_snapshot} after that many
    WAL appends; [snapshot_bytes] arms it after that many WAL bytes
    (whichever trigger fires first wins).  [group_commit] routes
    appends through a dedicated {!Wal.Group} committer that batches
    concurrent appends under one fsync — same durability guarantee
    (nothing is acknowledged before its batch is fsync'd), amortized
    cost. *)
let open_dir ?(registry = Obs.default) ?(fsync_on_commit = true)
    ?(group_commit = false) ?snapshot_every ?snapshot_bytes dir =
  let t0 = Unix.gettimeofday () in
  match
    (try if not (Sys.file_exists dir) then Unix.mkdir dir 0o755 with
     | Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  with
  | exception Unix.Unix_error (e, _, _) ->
    Result.Error
      (Printf.sprintf "cannot create data dir %s: %s" dir (Unix.error_message e))
  | () -> (
    (try Sys.remove (snapshot_tmp_path dir) with Sys_error _ -> ());
    match read_snapshot (snapshot_path dir) with
    | Result.Error _ as e -> e
    | Result.Ok snap -> (
      let fence, snap_mutations =
        match snap with None -> (0, []) | Some (f, ms) -> (f, ms)
      in
      match Wal.scan_file (wal_path dir) with
      | exception Wal.Corrupt m ->
        Result.Error (Printf.sprintf "wal %s: %s" (wal_path dir) m)
      | { Wal.entries; valid_bytes; torn_bytes } -> (
        let live = List.filter (fun e -> e.Wal.seq > fence) entries in
        let rec decode acc = function
          | [] -> Result.Ok (List.rev acc)
          | e :: rest -> (
            match decode_mutation e.Wal.payload with
            | Result.Ok m -> decode (m :: acc) rest
            | Result.Error msg ->
              Result.Error
                (Printf.sprintf "wal %s: record seq %d: %s" (wal_path dir)
                   e.Wal.seq msg))
        in
        match decode [] live with
        | Result.Error _ as e -> e
        | Result.Ok wal_mutations ->
          let m_truncations =
            Obs.Registry.counter registry "obda_wal_truncations_total"
          in
          let m_replayed =
            Obs.Registry.counter registry "obda_wal_replayed_records_total"
          in
          if torn_bytes > 0 then begin
            Obs.Counter.incr m_truncations;
            Log.warn (fun m ->
                m "wal %s: dropped %d-byte torn tail at offset %d"
                  (wal_path dir) torn_bytes valid_bytes)
          end;
          let last_wal_seq =
            List.fold_left (fun acc e -> max acc e.Wal.seq) fence entries
          in
          let wal =
            Wal.open_append ~fsync_on_commit ~registry ~path:(wal_path dir)
              ~valid_bytes ()
          in
          let observers = ref [] in
          let notify batch =
            List.iter
              (fun (seq, payload) ->
                List.iter
                  (fun f -> try f seq payload with _ -> ())
                  !observers)
              batch
          in
          let group =
            if group_commit then
              Some
                (Wal.Group.start ~registry ~on_commit:notify
                   ~committed:valid_bytes wal)
            else None
          in
          let mutations = snap_mutations @ wal_mutations in
          Obs.Counter.incr ~by:(List.length mutations) m_replayed;
          let seconds = Unix.gettimeofday () -. t0 in
          Obs.Histogram.observe
            (Obs.Registry.histogram registry "obda_recovery_seconds")
            seconds;
          let t =
            {
              dir;
              mu = Mutex.create ();
              wal;
              group;
              snapshot_every;
              snapshot_bytes;
              next_seq = last_wal_seq + 1;
              good_bytes = valid_bytes;
              dirty = false;
              since_snapshot = List.length wal_mutations;
              since_snapshot_bytes = valid_bytes;
              snapshotting = false;
              observers;
              registry;
              m_truncations;
              m_replayed;
              m_snapshots = Obs.Registry.counter registry "obda_snapshots_total";
            }
          in
          Result.Ok
            ( t,
              {
                mutations;
                snapshot_records = List.length snap_mutations;
                wal_records = List.length wal_mutations;
                truncated_bytes = torn_bytes;
                seconds;
              } ))))

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(* a previous append failed mid-record: cut the file back to the last
   committed offset so the torn bytes can never precede a good record *)
let repair_locked t =
  if t.dirty then begin
    Wal.truncate_to t.wal t.good_bytes;
    t.dirty <- false
  end

(** [add_observer t f] — register a commit observer.  [f seq payload]
    fires once per record {e after} it is durable, in sequence order:
    under the store lock on the direct path, on the committer thread
    under group commit (before the append's waiter is released, so by
    the time an acknowledged append returns the record has already been
    observed). *)
let add_observer t f = locked t (fun () -> t.observers := !(t.observers) @ [ f ])

let notify_direct t seq payload =
  List.iter (fun f -> try f seq payload with _ -> ()) !(t.observers)

(* the shared direct-path body: write one framed record at [seq] and
   advance the counters; caller holds [t.mu] *)
let append_direct_locked t ~seq payload =
  repair_locked t;
  (try Wal.append t.wal ~seq payload
   with e ->
     t.dirty <- true;
     raise e);
  t.next_seq <- max t.next_seq (seq + 1);
  t.good_bytes <- t.good_bytes + Wal.header_size + String.length payload;
  t.since_snapshot <- t.since_snapshot + 1;
  t.since_snapshot_bytes <-
    t.since_snapshot_bytes + Wal.header_size + String.length payload;
  notify_direct t seq payload

(** [append t m] — assign the next sequence number, frame, write, fsync.
    When this returns, [m] is durable; only then may the caller apply
    and acknowledge it.  Returns the assigned sequence number (the
    replication barrier waits on it).  Raises {!Failpoint.Injected} or
    [Unix.Unix_error] on (injected or real) I/O failure — the mutation
    must then be rejected, not applied. *)
let append t m =
  let payload = encode_mutation m in
  match t.group with
  | Some g ->
    (* group path: assign the sequence number and enqueue atomically
       under the store lock (so file order matches sequence order),
       then wait for the batch fsync OUTSIDE the lock — that release
       is what lets concurrent sessions share one fsync.  Failed
       batches leave sequence-number gaps, which recovery tolerates
       (it filters on [seq > fence], never on density). *)
    let seq, ticket =
      locked t (fun () ->
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          t.since_snapshot <- t.since_snapshot + 1;
          t.since_snapshot_bytes <-
            t.since_snapshot_bytes + Wal.header_size + String.length payload;
          (seq, Wal.Group.enqueue g ~seq payload))
    in
    Wal.Group.await g ticket;
    seq
  | None ->
    locked t (fun () ->
        let seq = t.next_seq in
        append_direct_locked t ~seq payload;
        seq)

(** [append_raw t ~seq payload] — append an already-encoded record under
    an {e explicit} sequence number: the replica apply path, which must
    preserve the primary's numbering so the replication fence is simply
    {!last_seq} and survives restarts for free.  [seq] must exceed
    {!last_seq} (gaps are fine — the primary's failed appends leave
    them); a stale or duplicate [seq] is rejected loudly. *)
let append_raw t ~seq payload =
  if seq <= last_seq t then
    invalid_arg
      (Printf.sprintf "Store.append_raw: seq %d not beyond last seq %d" seq
         (last_seq t));
  match t.group with
  | Some g ->
    let ticket =
      locked t (fun () ->
          t.next_seq <- max t.next_seq (seq + 1);
          t.since_snapshot <- t.since_snapshot + 1;
          t.since_snapshot_bytes <-
            t.since_snapshot_bytes + Wal.header_size + String.length payload;
          Wal.Group.enqueue g ~seq payload)
    in
    Wal.Group.await g ticket
  | None -> locked t (fun () -> append_direct_locked t ~seq payload)

(** [want_snapshot t] — true once either compaction trigger has fired
    ([snapshot_every] appends, or [snapshot_bytes] WAL bytes, since the
    last snapshot) and none is currently being written. *)
let want_snapshot t =
  match (t.snapshot_every, t.snapshot_bytes) with
  | None, None -> false
  | every, bytes ->
    locked t (fun () ->
        (not t.snapshotting)
        && ((match every with
             | Some every -> t.since_snapshot >= every
             | None -> false)
            || match bytes with
               | Some limit -> t.since_snapshot_bytes >= limit
               | None -> false))

(** [write_snapshot t mutations] — install [mutations] (a compacted
    replay of the {e entire} current state, typically produced under
    every session lock so no append can race) as the new snapshot, then
    empty the WAL.  Temp-file + [rename] keeps the old snapshot intact
    up to the atomic switch; the directory is fsync'd so the rename
    itself survives a crash. *)
let write_snapshot_locked t ~fence mutations =
  t.snapshotting <- true;
  Fun.protect
    ~finally:(fun () -> t.snapshotting <- false)
    (fun () ->
      (* quiesce the group committer before fencing: with the store
         lock held no new record can be enqueued, and [flush] waits
         out the in-flight batch — so every sequence number below
         the fence is either durably in the WAL or failed, and the
         [Wal.reset] below cannot race a batch write *)
      (match t.group with
       | Some g -> Wal.Group.flush g
       | None -> ());
      Failpoint.check "snapshot.before_write";
      let buf = Buffer.create 4096 in
          let add_record i payload =
            Buffer.add_bytes buf (Wal.encode ~seq:i payload)
          in
          add_record 0 (Printf.sprintf "%s%d" snapshot_header_prefix fence);
          List.iteri
            (fun i m -> add_record (i + 1) (encode_mutation m))
            mutations;
          let tmp = snapshot_tmp_path t.dir in
          let fd =
            Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
          in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Io.write_all ~failpoint:"snapshot.write" fd (Buffer.to_bytes buf)
                ~pos:0 ~len:(Buffer.length buf);
              Io.fsync ~failpoint:"snapshot.before_fsync" fd);
          Failpoint.check "snapshot.before_rename";
          Unix.rename tmp (snapshot_path t.dir);
          fsync_dir t.dir;
          Failpoint.check "snapshot.after_rename";
          Wal.reset t.wal;
          (match t.group with
           | Some g -> Wal.Group.note_reset g
           | None -> ());
          t.good_bytes <- 0;
          t.dirty <- false;
          t.since_snapshot <- 0;
          t.since_snapshot_bytes <- 0;
          Obs.Counter.incr t.m_snapshots;
          Log.info (fun m ->
              m "snapshot: %d record(s) at fence seq %d, wal reset"
                (List.length mutations) fence))

let write_snapshot t mutations =
  locked t (fun () ->
      write_snapshot_locked t ~fence:(t.next_seq - 1) mutations)

(** [install_snapshot t ~fence mutations] — replace the entire durable
    state with [mutations] compacted at the primary's [fence]: the
    replica's RESET catch-up path.  Any stale WAL suffix (records a
    fenced ex-primary appended but never replicated) is discarded with
    the reset; the next {!append_raw} continues from [fence + 1]. *)
let install_snapshot t ~fence mutations =
  locked t (fun () ->
      write_snapshot_locked t ~fence mutations;
      t.next_seq <- fence + 1)

(** The catch-up plan handed to a freshly subscribed replica. *)
type tail =
  | Tail_records of (int * string) list
      (** the subscriber's fence is covered by our WAL: ship exactly the
          records with [seq > fence], then go live *)
  | Tail_reset of {
      fence : int;  (** our snapshot fence *)
      state : string list;  (** compacted records rebuilding seq ≤ fence *)
      records : (int * string) list;  (** WAL tail beyond the snapshot *)
    }
      (** the subscriber is behind our snapshot (or lived under an older
          epoch): it must wipe and rebuild from the compacted state *)

(** [read_tail t ~fence ~register] — compute the catch-up plan for a
    subscriber that has everything up to [fence], atomically with
    [register ()]: both run under the store lock with the group
    committer flushed, so every record not in the returned plan will be
    delivered to whatever live queue [register] attaches (via
    {!add_observer}'s stream) — no gap, no duplicate beyond seq-based
    dedup.  Raises [Failure] if the snapshot is unreadable. *)
let read_tail t ~fence ~register =
  locked t (fun () ->
      (match t.group with
       | Some g -> Wal.Group.flush g
       | None -> ());
      let snap_fence, state =
        match read_snapshot (snapshot_path t.dir) with
        | Result.Error e -> failwith e
        | Result.Ok None -> (0, [])
        | Result.Ok (Some (f, ms)) -> (f, List.map encode_mutation ms)
      in
      let entries =
        match Wal.scan_file (wal_path t.dir) with
        | exception Wal.Corrupt e -> failwith e
        | { Wal.entries; _ } ->
          List.filter_map
            (fun e ->
              if e.Wal.seq > snap_fence then Some (e.Wal.seq, e.Wal.payload)
              else None)
            entries
      in
      let plan =
        if fence >= snap_fence then
          Tail_records (List.filter (fun (s, _) -> s > fence) entries)
        else Tail_reset { fence = snap_fence; state; records = entries }
      in
      register ();
      plan)

(** [close t] — drain the group committer (if any), then fsync and
    close the WAL (the graceful-shutdown path: SIGTERM drains, then
    closes the log cleanly). *)
let close t =
  locked t (fun () ->
      (match t.group with
       | Some g -> Wal.Group.stop g
       | None -> ());
      Wal.close t.wal)
