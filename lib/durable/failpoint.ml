(** Named failpoints: deterministic fault injection for the durable I/O
    paths and the serve request path.

    A failpoint is a named site in the code ([wal.append.before_fsync],
    [snapshot.before_rename], [serve.request], ...).  Arming one attaches
    an action:

    - [error] — raise {!Injected} at the site (the caller surfaces it as
      an I/O failure);
    - [partial:K] — at a write site, persist only the first [K] bytes of
      the in-flight write and then die as if [kill -9]ed: the canonical
      torn-write producer;
    - [crash] — die immediately ([Unix._exit 137], no [at_exit], no
      buffer flushing — indistinguishable from [kill -9] for everything
      durability cares about);
    - [delay:S] — sleep [S] seconds and continue (races / timeout
      injection).

    A spec may carry an [@N] suffix: skip the first [N] hits and fire
    from hit [N+1] on — chaos harnesses use it to place a crash at a
    random depth in a mutation sequence.  Once firing, [error] and
    [delay] stay armed until [off]; [crash] and [partial] never return.

    Arming sources: the {!arm} API (tests, the chaos harness), the
    [OBDA_FAILPOINTS] environment variable
    ([name=spec,name=spec] — see {!arm_from_env}), and the [FAIL] wire
    verb when the server runs with [--chaos].

    The un-armed fast path is one atomic load, so production code can
    leave [hit] calls compiled in. *)

exception Injected of string
exception Unknown_site of string

type action =
  | Inject_error     (** raise {!Injected} at the site *)
  | Partial of int   (** persist K bytes of the current write, then crash *)
  | Crash
  | Delay of float

type armed = { action : action; mutable skip : int }

let mutex = Mutex.create ()
let table : (string, armed) Hashtbl.t = Hashtbl.create 8
let armed_count = Atomic.make 0

let locked f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let valid_name s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-' || c = '.')
       s

(* Every site compiled into the tree.  Arming a name outside this set is
   an error, not a no-op: a typo'd OBDA_FAILPOINTS entry used to make a
   whole chaos campaign vacuous. *)
let builtin_sites =
  [ "wal.append.before";
    "wal.append.write";
    "wal.append.before_fsync";
    "wal.append.after_fsync";
    "snapshot.before_write";
    "snapshot.write";
    "snapshot.before_fsync";
    "snapshot.before_rename";
    "snapshot.after_rename";
    "serve.request";
    (* replication: primary send path, replica apply/ack path, epoch
       persistence during promotion *)
    "repl.send.record";
    "repl.apply.before";
    "repl.apply.after_wal";
    "repl.ack.before";
    "cluster.epoch.persist" ]

let sites : (string, unit) Hashtbl.t =
  let t = Hashtbl.create 32 in
  List.iter (fun s -> Hashtbl.replace t s ()) builtin_sites;
  t

(** [register_site name] — declare an ad-hoc site (tests arm synthetic
    names; production sites are all in [builtin_sites]). *)
let register_site name = locked (fun () -> Hashtbl.replace sites name ())

let known_site name = locked (fun () -> Hashtbl.mem sites name)

let known_sites () =
  locked (fun () -> Hashtbl.fold (fun s () acc -> s :: acc) sites [])
  |> List.sort compare

(** [arm name ?after action] — attach [action] to a known site.
    @raise Unknown_site on a name no compiled-in site (or
    {!register_site} call) declares: silently arming nothing is how
    fault-injection campaigns rot. *)
let arm name ?(after = 0) action =
  if not (known_site name) then raise (Unknown_site name);
  locked (fun () ->
      if not (Hashtbl.mem table name) then Atomic.incr armed_count;
      Hashtbl.replace table name { action; skip = after })

let disarm name =
  locked (fun () ->
      if Hashtbl.mem table name then begin
        Hashtbl.remove table name;
        Atomic.decr armed_count
      end)

let disarm_all () =
  locked (fun () ->
      Hashtbl.reset table;
      Atomic.set armed_count 0)

let string_of_action = function
  | Inject_error -> "error"
  | Partial k -> Printf.sprintf "partial:%d" k
  | Crash -> "crash"
  | Delay s -> Printf.sprintf "delay:%g" s

(** [armed_list ()] — the currently armed failpoints, for diagnostics. *)
let armed_list () =
  locked (fun () ->
      Hashtbl.fold
        (fun name a acc -> (name, string_of_action a.action) :: acc)
        table [])
  |> List.sort compare

(* ------------------------------ specs -------------------------------- *)

(* "crash" | "error" | "off" | "partial:K" | "delay:S", each with an
   optional "@N" skip-count suffix *)
let parse_spec spec =
  let body, after =
    match String.index_opt spec '@' with
    | None -> (spec, Result.Ok 0)
    | Some i ->
      let n = String.sub spec (i + 1) (String.length spec - i - 1) in
      ( String.sub spec 0 i,
        match int_of_string_opt n with
        | Some k when k >= 0 -> Result.Ok k
        | _ -> Result.Error (Printf.sprintf "bad skip count %S" n) )
  in
  match after with
  | Result.Error e -> Result.Error e
  | Result.Ok after -> (
    let param prefix =
      let p = String.length prefix in
      if String.length body > p && String.sub body 0 p = prefix then
        Some (String.sub body p (String.length body - p))
      else None
    in
    match body with
    | "error" -> Result.Ok (Some (Inject_error, after))
    | "crash" -> Result.Ok (Some (Crash, after))
    | "off" -> Result.Ok None
    | _ -> (
      match param "partial:" with
      | Some k -> (
        match int_of_string_opt k with
        | Some k when k >= 0 -> Result.Ok (Some (Partial k, after))
        | _ -> Result.Error (Printf.sprintf "bad partial byte count %S" k))
      | None -> (
        match param "delay:" with
        | Some s -> (
          match float_of_string_opt s with
          | Some s when s >= 0.0 -> Result.Ok (Some (Delay s, after))
          | _ -> Result.Error (Printf.sprintf "bad delay %S" s))
        | None ->
          Result.Error
            (Printf.sprintf
               "unknown failpoint action %S (want error | crash | partial:K \
                | delay:S | off)"
               body))))

(** [arm_spec name spec] — arm (or, with ["off"], disarm) from a textual
    spec; the grammar the [FAIL] verb and [OBDA_FAILPOINTS] share. *)
let arm_spec name spec =
  if not (valid_name name) then
    Result.Error (Printf.sprintf "bad failpoint name %S" name)
  else if not (known_site name) then
    Result.Error
      (Printf.sprintf "unknown failpoint %S (known: %s)" name
         (String.concat " " (known_sites ())))
  else
    match parse_spec spec with
    | Result.Error _ as e -> e
    | Result.Ok None ->
      disarm name;
      Result.Ok ()
    | Result.Ok (Some (action, after)) ->
      arm name ~after action;
      Result.Ok ()

(** [arm_from_env ()] arms every [name=spec] pair in [OBDA_FAILPOINTS]
    (comma-separated).  An unset or empty variable is fine; a malformed
    one is an error — silently ignoring a typo'd failpoint would make a
    chaos run vacuous. *)
let arm_from_env () =
  match Sys.getenv_opt "OBDA_FAILPOINTS" with
  | None | Some "" -> Ok ()
  | Some v ->
    let rec go = function
      | [] -> Ok ()
      | entry :: rest -> (
        match String.index_opt entry '=' with
        | None ->
          Result.Error
            (Printf.sprintf "OBDA_FAILPOINTS: %S is not name=spec" entry)
        | Some i -> (
          let name = String.trim (String.sub entry 0 i) in
          let spec =
            String.trim (String.sub entry (i + 1) (String.length entry - i - 1))
          in
          match arm_spec name spec with
          | Ok () -> go rest
          | Result.Error e ->
            Result.Error (Printf.sprintf "OBDA_FAILPOINTS: %s: %s" name e)))
    in
    go (String.split_on_char ',' v |> List.filter (fun s -> String.trim s <> ""))

(* ------------------------------ firing ------------------------------- *)

let crash name =
  (* no Printf, no channels: nothing that might buffer past the _exit *)
  let msg =
    Printf.sprintf "failpoint %s: crashing (simulated kill -9)\n" name
  in
  (try ignore (Unix.write_substring Unix.stderr msg 0 (String.length msg))
   with Unix.Unix_error _ -> ());
  Unix._exit 137

let fired name =
  Obs.Counter.incr
    (Obs.counter ~labels:[ ("name", name) ] "obda_failpoint_hits_total")

(** [hit name] — the instrumented site.  Returns [None] to proceed
    normally, or [Some k] when an armed [partial:K] asks the (write)
    site to persist only [k] bytes and then crash.  [error] raises
    {!Injected}; [crash] does not return; [delay] sleeps then
    proceeds. *)
let hit name =
  if Atomic.get armed_count = 0 then None
  else
    let fire =
      locked (fun () ->
          match Hashtbl.find_opt table name with
          | None -> None
          | Some a ->
            if a.skip > 0 then begin
              a.skip <- a.skip - 1;
              None
            end
            else Some a.action)
    in
    match fire with
    | None -> None
    | Some action -> (
      fired name;
      match action with
      | Inject_error -> raise (Injected name)
      | Crash -> crash name
      | Delay s ->
        Unix.sleepf s;
        None
      | Partial k -> Some k)

(** [check name] — a non-write site: [partial] makes no sense here and
    degrades to an immediate crash (the armed intent was "die here"). *)
let check name = match hit name with None -> () | Some _ -> crash name
