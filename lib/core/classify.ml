(** Graph-based classification of DL-Lite_R TBoxes — the paper's core
    contribution (Section 5).

    [Phi_T]   : all subsumptions between basic concepts / roles /
                attributes entailed by the positive inclusions alone,
                obtained as the transitive closure of the Definition-1
                digraph (Theorem 1).
    [Omega_T] : the subsumptions contributed by unsatisfiable predicates
                ([S ⊑ ⊥] entails [S ⊑ S'] for every same-sort [S']),
                obtained from [computeUnsat].

    The classification is [Phi_T ∪ Omega_T], exposed both as a
    subsumption test and as materialized name-level hierarchies. *)

open Dllite

let log_src = Logs.Src.create "quonto.classify" ~doc:"digraph classification"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  encoding : Encoding.t;
  closure : Graphlib.Closure.t;
  unsat : Unsat.t;
}

(** [classify ?algorithm ?jobs tbox] builds the digraph representation,
    materializes its transitive closure (default algorithm:
    SCC condensation; [jobs] selects the domain-pool width for the
    parallel algorithms) and runs [computeUnsat]. *)
let classify ?algorithm ?jobs tbox =
  Obs.span "classify" (fun () ->
      let encoding = Obs.span "classify.encode" (fun () -> Encoding.build tbox) in
      let closure =
        Obs.span "classify.closure" (fun () ->
            Graphlib.Closure.compute ?algorithm ?jobs (Encoding.graph encoding))
      in
      let unsat = Obs.span "classify.unsat" (fun () -> Unsat.compute encoding) in
      Log.debug (fun m ->
          m "classified: %d nodes, %d arcs, %d unsatisfiable predicates"
            (Encoding.node_count encoding)
            (Graphlib.Graph.edge_count (Encoding.graph encoding))
            (Unsat.count unsat));
      { encoding; closure; unsat })

let encoding t = t.encoding
let closure t = t.closure
let unsat t = t.unsat
let tbox t = Encoding.tbox t.encoding

(** [is_unsat t e] — unsatisfiability of a basic expression. *)
let is_unsat t e = Unsat.is_unsat t.unsat e

(** [subsumes t e1 e2] decides [T ⊨ e1 ⊑ e2] for same-sort basic
    expressions: either [(e1, e2)] is in the closure ([Phi_T]) or [e1]
    is unsatisfiable ([Omega_T]).  Expressions outside the signature
    only subsume themselves. *)
let subsumes t e1 e2 =
  Encoding.same_sort e1 e2
  &&
  match Encoding.node_opt t.encoding e1, Encoding.node_opt t.encoding e2 with
  | Some n1, Some n2 ->
    Graphlib.Closure.reaches t.closure n1 n2 || Unsat.is_unsat_node t.unsat n1
  | Some n1, None -> Unsat.is_unsat_node t.unsat n1
  | None, Some _ | None, None -> Syntax.equal_expr e1 e2

(** [subsumers t e] lists every basic expression [e'] with
    [T ⊨ e ⊑ e'] (restricted to the signature's node set, [e] included). *)
let subsumers t e =
  match Encoding.node_opt t.encoding e with
  | None -> [ e ]
  | Some n ->
    if Unsat.is_unsat_node t.unsat n then
      (* unsat: subsumed by every same-sort expression *)
      List.filter
        (fun e' -> Encoding.same_sort e e')
        (Array.to_list t.encoding.Encoding.expr_of_node)
    else
      Graphlib.Bitvec.to_list (Graphlib.Closure.descendants t.closure n)
      |> List.map (Encoding.expr t.encoding)

(** [subsumees t e] lists every basic expression [e'] with
    [T ⊨ e' ⊑ e]: the closure ancestors of [e] plus all unsatisfiable
    same-sort expressions. *)
let subsumees t e =
  match Encoding.node_opt t.encoding e with
  | None -> [ e ]
  | Some n ->
    let anc = Graphlib.Closure.ancestors t.closure n in
    let acc = ref [] in
    Array.iteri
      (fun v e' ->
        if
          Encoding.same_sort e' e
          && (Graphlib.Bitvec.get anc v || Unsat.is_unsat_node t.unsat v)
        then acc := e' :: !acc)
      t.encoding.Encoding.expr_of_node;
    List.rev !acc

(** A subsumption between two named predicates, as reported by
    classification output. *)
type name_subsumption =
  | Concept_sub of string * string
  | Role_sub of string * string
  | Attr_sub of string * string

(** [name_level t] materializes the classification between *names* of
    the signature (the paper's definition of ontology classification:
    "all subsumption relationships inferred ... between concept and
    property names").  Reflexive pairs are omitted. *)
let name_level t =
  let signature = Tbox.signature (tbox t) in
  let acc = ref [] in
  let sub_of_pair e1 e2 =
    match e1, e2 with
    | Syntax.E_concept (Syntax.Atomic a1), Syntax.E_concept (Syntax.Atomic a2) ->
      Some (Concept_sub (a1, a2))
    | Syntax.E_role (Syntax.Direct p1), Syntax.E_role (Syntax.Direct p2) ->
      Some (Role_sub (p1, p2))
    | Syntax.E_attr u1, Syntax.E_attr u2 -> Some (Attr_sub (u1, u2))
    | _ -> None
  in
  (* Phi_T pairs between names. *)
  Graphlib.Closure.iter_pairs t.closure (fun n1 n2 ->
      if n1 <> n2 then
        match sub_of_pair (Encoding.expr t.encoding n1) (Encoding.expr t.encoding n2) with
        | Some s -> acc := s :: !acc
        | None -> ());
  (* Omega_T pairs: unsat names subsumed by every name of their sort. *)
  let add_unsat_pairs of_name names mk =
    List.iter
      (fun x1 ->
        if Unsat.is_unsat t.unsat (of_name x1) then
          List.iter (fun x2 -> if x1 <> x2 then acc := mk x1 x2 :: !acc) names)
      names
  in
  add_unsat_pairs
    (fun a -> Syntax.E_concept (Syntax.Atomic a))
    (Signature.concepts signature)
    (fun a b -> Concept_sub (a, b));
  add_unsat_pairs
    (fun p -> Syntax.E_role (Syntax.Direct p))
    (Signature.roles signature)
    (fun a b -> Role_sub (a, b));
  add_unsat_pairs
    (fun u -> Syntax.E_attr u)
    (Signature.attributes signature)
    (fun a b -> Attr_sub (a, b));
  List.sort_uniq Stdlib.compare !acc

(** [concept_hierarchy t] is the name-level concept taxonomy as
    association pairs [(sub, super)], reflexive pairs omitted. *)
let concept_hierarchy t =
  List.filter_map
    (function Concept_sub (a, b) -> Some (a, b) | Role_sub _ | Attr_sub _ -> None)
    (name_level t)

(** [role_hierarchy t] is the name-level role taxonomy. *)
let role_hierarchy t =
  List.filter_map
    (function Role_sub (a, b) -> Some (a, b) | Concept_sub _ | Attr_sub _ -> None)
    (name_level t)

(** [equivalence_classes t] groups concept names mutually subsuming each
    other (cycles in the digraph), a common design-quality signal.

    Read directly off the Tarjan components of the Definition-1 digraph
    instead of probing all O(n²) name pairs with [subsumes]: two
    satisfiable names are equivalent iff their nodes share an SCC, and
    the unsatisfiable names form one equivalence class of their own
    ([a ⊑ ⊥] makes [a] subsumed by — and, via [Omega_T], a subsumer of —
    every other unsatisfiable name; [computeUnsat] is closed under
    digraph predecessors, so a satisfiable name can never reach an
    unsatisfiable one). *)
let equivalence_classes t =
  let signature = Tbox.signature (tbox t) in
  let names = Signature.concepts signature in
  let scc = Graphlib.Scc.tarjan (Encoding.graph t.encoding) in
  (* key: component id for satisfiable in-graph names, [-1] for the
     merged unsatisfiable class; names outside the digraph only subsume
     themselves and stay singletons. *)
  let classes = Hashtbl.create 16 in
  let singletons = ref [] in
  List.iter
    (fun a ->
      match Encoding.node_opt t.encoding (Syntax.E_concept (Syntax.Atomic a)) with
      | None -> singletons := [ a ] :: !singletons
      | Some n ->
        let key =
          if Unsat.is_unsat_node t.unsat n then -1 else scc.Graphlib.Scc.component.(n)
        in
        let prev = Option.value ~default:[] (Hashtbl.find_opt classes key) in
        Hashtbl.replace classes key (a :: prev))
    names;
  Hashtbl.fold (fun _ members acc -> List.rev members :: acc) classes !singletons
  |> List.sort Stdlib.compare

let pp_name_subsumption fmt = function
  | Concept_sub (a, b) -> Format.fprintf fmt "%s [= %s" a b
  | Role_sub (p, q) -> Format.fprintf fmt "role %s [= %s" p q
  | Attr_sub (u, v) -> Format.fprintf fmt "attr %s [= %s" u v
