(** Transitive closure of directed graphs.

    Materializing algorithms — the [algorithm] cases below — compute the
    same relation (checked extensionally by property tests) but have
    very different cost profiles, which the ablation benches [A1] and
    [A8] measure:

    - [Dfs]: one DFS per node, O(V * E).  Simple, good on sparse graphs.
    - [Warshall]: bit-parallel Warshall, O(V^3 / word).  Good on small
      dense graphs, hopeless at FMA scale.
    - [Scc_condense]: Tarjan condensation, then one bottom-up pass over
      the DAG unioning descendant bit-sets.  The default: ontology
      hierarchies are mostly DAGs with a few equivalence cycles, where
      this is the fastest by a wide margin.
    - [Par_dfs]: [Dfs] with the per-source rows computed across a domain
      pool, one DFS row per task.
    - [Par_scc]: [Scc_condense] with the component-row expansion
      level-scheduled across a domain pool (the Tarjan pass itself stays
      sequential) and the node-row copy-out parallelized.

    The parallel variants produce bit-for-bit the same closure as their
    sequential counterparts for every job count — each row is a pure
    function of the input graph and lands in its own slot; see
    [Parallel.Pool] for the determinism contract.  With one job (or on a
    single-core host, via [Parallel.Pool.global]) they degrade to the
    sequential algorithms.

    Separately from the materializing algorithms, the [On_demand]
    *module* (not an [algorithm] case — it has a different type, carrying
    a cache instead of a row matrix) does no precomputation at all and
    memoizes one per-source DFS row per distinct source queried, for
    workloads that only ask a few reachability questions.

    Closures are *reflexive*: every node reaches itself.  This matches
    the logical reading ([T |= S ⊑ S] always holds) and makes the
    predecessor sets of [computeUnsat] directly usable. *)

type algorithm = Dfs | Warshall | Scc_condense | Par_dfs | Par_scc

let string_of_algorithm = function
  | Dfs -> "dfs"
  | Warshall -> "warshall"
  | Scc_condense -> "scc"
  | Par_dfs -> "par-dfs"
  | Par_scc -> "par-scc"

let algorithm_of_string = function
  | "dfs" -> Some Dfs
  | "warshall" -> Some Warshall
  | "scc" -> Some Scc_condense
  | "par-dfs" -> Some Par_dfs
  | "par-scc" -> Some Par_scc
  | _ -> None

(** Materialized closure: [rows.(v)] is the reflexive descendant set of
    node [v]. *)
type t = {
  size : int;
  rows : Bitvec.t array;
}

let size t = t.size

(** [reaches t u v] is [true] iff [v] is a (reflexive) descendant of [u]. *)
let reaches t u v =
  if u < 0 || u >= t.size || v < 0 || v >= t.size then
    invalid_arg "Closure.reaches";
  Bitvec.get t.rows.(u) v

(** [descendants t v] is the reflexive descendant set of [v]. *)
let descendants t v =
  if v < 0 || v >= t.size then invalid_arg "Closure.descendants";
  t.rows.(v)

(** [ancestors t v] is the freshly computed reflexive ancestor set of [v]
    (the column of the closure matrix). *)
let ancestors t v =
  if v < 0 || v >= t.size then invalid_arg "Closure.ancestors";
  let col = Bitvec.create t.size in
  for u = 0 to t.size - 1 do
    if Bitvec.get t.rows.(u) v then Bitvec.set col u
  done;
  col

(** [edge_count t] counts reachable pairs, including the reflexive ones. *)
let edge_count t =
  Array.fold_left (fun acc row -> acc + Bitvec.popcount row) 0 t.rows

(** [iter_pairs t f] applies [f u v] to every pair with [u] reaching [v],
    including [u = v]. *)
let iter_pairs t f =
  for u = 0 to t.size - 1 do
    Bitvec.iter_set t.rows.(u) (fun v -> f u v)
  done

let dfs_closure g =
  let n = Graph.node_count g in
  let rows = Array.init n (fun v -> Graph.reachable_from g v) in
  { size = n; rows }

let warshall_closure g =
  let n = Graph.node_count g in
  let rows = Array.init n (fun _ -> Bitvec.create n) in
  for v = 0 to n - 1 do
    Bitvec.set rows.(v) v;
    List.iter (fun w -> Bitvec.set rows.(v) w) (Graph.successors g v)
  done;
  (* rows.(i) |= rows.(k) whenever i reaches k *)
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if i <> k && Bitvec.get rows.(i) k then
        ignore (Bitvec.union_into ~src:rows.(k) ~dst:rows.(i))
    done
  done;
  { size = n; rows }

let scc_closure g =
  let n = Graph.node_count g in
  let r = Scc.tarjan g in
  let dag = Scc.condensation g r in
  (* Tarjan ids are in reverse topological order: successors of a
     component always have *smaller* ids, so a single ascending pass
     sees every successor's row fully computed. *)
  let comp_rows = Array.init r.Scc.count (fun _ -> Bitvec.create r.Scc.count) in
  for c = 0 to r.Scc.count - 1 do
    Bitvec.set comp_rows.(c) c;
    List.iter
      (fun c' -> ignore (Bitvec.union_into ~src:comp_rows.(c') ~dst:comp_rows.(c)))
      (Graph.successors dag c)
  done;
  (* Expand component reachability back to node granularity. *)
  let rows = Array.init n (fun _ -> Bitvec.create n) in
  let comp_node_rows =
    Array.init r.Scc.count (fun c ->
        let row = Bitvec.create n in
        Bitvec.iter_set comp_rows.(c) (fun c' ->
            List.iter (fun v -> Bitvec.set row v) r.Scc.members.(c'));
        row)
  in
  for v = 0 to n - 1 do
    rows.(v) <- Bitvec.copy comp_node_rows.(r.Scc.component.(v))
  done;
  { size = n; rows }

let par_dfs_closure pool g =
  let n = Graph.node_count g in
  let rows = Array.make n (Bitvec.create 0) in
  Parallel.Pool.parallel_for pool ~n (fun v -> rows.(v) <- Graph.reachable_from g v);
  { size = n; rows }

let par_scc_closure pool g =
  let n = Graph.node_count g in
  let r = Scc.tarjan g in
  let dag = Scc.condensation g r in
  let nc = r.Scc.count in
  (* The sequential bottom-up pass is an exact dependency chain on the
     reverse-topological ids; the parallel version recovers independence
     by level scheduling: [level.(c)] is the longest path from [c] to a
     sink, so every successor of [c] sits at a strictly lower level and
     its row is complete before level [level.(c)] starts.  Within a
     level no two components touch the same row. *)
  let level = Array.make nc 0 in
  let max_level = ref 0 in
  for c = 0 to nc - 1 do
    List.iter
      (fun c' -> if level.(c') + 1 > level.(c) then level.(c) <- level.(c') + 1)
      (Graph.successors dag c);
    if level.(c) > !max_level then max_level := level.(c)
  done;
  let buckets = Array.make (!max_level + 1) [] in
  for c = nc - 1 downto 0 do
    buckets.(level.(c)) <- c :: buckets.(level.(c))
  done;
  let comp_rows = Array.init nc (fun _ -> Bitvec.create nc) in
  Array.iter
    (fun bucket ->
      let bucket = Array.of_list bucket in
      Parallel.Pool.parallel_for pool ~n:(Array.length bucket) (fun i ->
          let c = bucket.(i) in
          Bitvec.set comp_rows.(c) c;
          List.iter
            (fun c' ->
              ignore (Bitvec.union_into ~src:comp_rows.(c') ~dst:comp_rows.(c)))
            (Graph.successors dag c)))
    buckets;
  (* Expand component reachability back to node granularity, one task
     per component, then copy rows out, one task per node. *)
  let comp_node_rows = Array.make nc (Bitvec.create 0) in
  Parallel.Pool.parallel_for pool ~n:nc (fun c ->
      let row = Bitvec.create n in
      Bitvec.iter_set comp_rows.(c) (fun c' ->
          List.iter (fun v -> Bitvec.set row v) r.Scc.members.(c'));
      comp_node_rows.(c) <- row);
  let rows = Array.make n (Bitvec.create 0) in
  Parallel.Pool.parallel_for pool ~n (fun v ->
      rows.(v) <- Bitvec.copy comp_node_rows.(r.Scc.component.(v)));
  { size = n; rows }

(** [compute ?algorithm ?pool ?jobs g] materializes the reflexive
    transitive closure of [g].  Default algorithm: [Scc_condense].  The
    parallel algorithms run on [pool] when given, otherwise on the
    shared [Parallel.Pool.global ?jobs ()] (which is sequential when
    [jobs <= 1] or the host has one core); [pool]/[jobs] are ignored by
    the sequential algorithms. *)
let compute ?(algorithm = Scc_condense) ?pool ?jobs g =
  let pool () =
    match pool with Some p -> p | None -> Parallel.Pool.global ?jobs ()
  in
  match algorithm with
  | Dfs -> dfs_closure g
  | Warshall -> warshall_closure g
  | Scc_condense -> scc_closure g
  | Par_dfs -> par_dfs_closure (pool ()) g
  | Par_scc -> par_scc_closure (pool ()) g

(** [to_graph t] is the closure as an ordinary graph, *without* the
    reflexive edges (they carry no information for classification
    output). *)
let to_graph t =
  let g = Graph.create ~initial_nodes:t.size () in
  iter_pairs t (fun u v -> if u <> v then Graph.add_edge g u v);
  g

(** [equal a b] is extensional equality of the two closures,
    short-circuiting on the first differing row. *)
let equal a b =
  a.size = b.size
  &&
  let rec rows_equal v =
    v >= a.size || (Bitvec.equal a.rows.(v) b.rows.(v) && rows_equal (v + 1))
  in
  rows_equal 0

(** Memoized on-demand reachability: computes and caches one DFS row per
    distinct source actually queried. *)
module On_demand = struct
  type nonrec t = {
    graph : Graph.t;
    cache : (int, Bitvec.t) Hashtbl.t;
  }

  (** [create g] wraps [g]; [g] must not be mutated afterwards. *)
  let create graph = { graph; cache = Hashtbl.create 64 }

  (** [row t v] is the (cached) reflexive descendant set of [v]. *)
  let row t v =
    match Hashtbl.find_opt t.cache v with
    | Some r -> r
    | None ->
      let r = Graph.reachable_from t.graph v in
      Hashtbl.add t.cache v r;
      r

  (** [reaches t u v] is reflexive reachability, computed lazily. *)
  let reaches t u v = Bitvec.get (row t u) v
end
