(** Transitive closure of directed graphs.

    Closures are *reflexive*: every node reaches itself — matching the
    logical reading ([T ⊨ S ⊑ S] always holds) and making predecessor
    sets directly usable by [computeUnsat]. *)

(** Interchangeable *materializing* algorithms (ablations A1 and A8):
    per-node DFS (O(V·E)), bit-parallel Warshall (O(V³/word)), the
    default SCC-condensation pass (fastest on the near-DAG shape of
    ontology hierarchies), and domain-pool-parallel variants of the DFS
    and SCC algorithms.  The parallel variants are bit-for-bit equal to
    their sequential counterparts at every job count, and degrade to
    them at [jobs <= 1].  On-demand (non-materializing) reachability is
    *not* an [algorithm] case: it has a different type and lives in the
    [On_demand] submodule below. *)
type algorithm =
  | Dfs
  | Warshall
  | Scc_condense
  | Par_dfs
  | Par_scc

(** [string_of_algorithm a] is the CLI spelling: "dfs", "warshall",
    "scc", "par-dfs" or "par-scc". *)
val string_of_algorithm : algorithm -> string

(** [algorithm_of_string s] parses the CLI spelling. *)
val algorithm_of_string : string -> algorithm option

(** A materialized closure. *)
type t

val size : t -> int

(** [compute ?algorithm ?pool ?jobs g] materializes the reflexive
    transitive closure of [g] (default: [Scc_condense]).  [Par_dfs] and
    [Par_scc] run on [pool] when given, else on the shared
    [Parallel.Pool.global ?jobs ()]; both options are ignored by the
    sequential algorithms. *)
val compute :
  ?algorithm:algorithm -> ?pool:Parallel.Pool.t -> ?jobs:int -> Graph.t -> t

(** [reaches t u v] is [true] iff [v] is a (reflexive) descendant of
    [u]. *)
val reaches : t -> int -> int -> bool

(** [descendants t v] is the reflexive descendant set of [v] — shared,
    do not mutate. *)
val descendants : t -> int -> Bitvec.t

(** [ancestors t v] is a freshly computed reflexive ancestor set of
    [v]. *)
val ancestors : t -> int -> Bitvec.t

(** [edge_count t] counts reachable pairs, reflexive ones included. *)
val edge_count : t -> int

(** [iter_pairs t f] applies [f u v] to every pair with [u] reaching
    [v], including [u = v]. *)
val iter_pairs : t -> (int -> int -> unit) -> unit

(** [to_graph t] is the closure as an ordinary graph, without the
    reflexive edges. *)
val to_graph : t -> Graph.t

(** [equal a b] is extensional equality of the two closures,
    short-circuiting on the first differing row. *)
val equal : t -> t -> bool

(** Memoized on-demand reachability: computes and caches one DFS row per
    distinct source actually queried (the closure-free logical
    implication engine builds on this). *)
module On_demand : sig
  type t

  (** [create g] wraps [g]; [g] must not be mutated afterwards. *)
  val create : Graph.t -> t

  (** [row t v] is the (cached) reflexive descendant set of [v]. *)
  val row : t -> int -> Bitvec.t

  (** [reaches t u v] is reflexive reachability, computed lazily. *)
  val reaches : t -> int -> int -> bool
end
