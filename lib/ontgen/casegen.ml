(** Seeded generation of small conformance cases.

    [Qgen] drives the QCheck property suites; this module is its
    [Rng]-driven twin for the differential-conformance harness and the
    fuzz CLI, where every case must be a pure function of an integer
    seed (QCheck owns its own random state, which would make a printed
    seed useless for replay).  The shapes and frequencies mirror
    [Qgen]: tiny signatures so random axioms interact. *)

open Dllite

let concept_pool = Qgen.concept_pool
let role_pool = Qgen.role_pool
let attr_pool = Qgen.attr_pool

(** Individuals and attribute values used by generated ABoxes. *)
let individual_pool = [ "ann"; "bob"; "cyd"; "dan" ]

let value_pool = [ "1"; "2" ]

let gen_role rng =
  let p = Rng.pick rng role_pool in
  if Rng.bool rng 0.5 then Syntax.Inverse p else Syntax.Direct p

let gen_basic rng =
  match Rng.int rng 9 with
  | 0 | 1 | 2 | 3 | 4 -> Syntax.Atomic (Rng.pick rng concept_pool)
  | 5 | 6 | 7 -> Syntax.Exists (gen_role rng)
  | _ -> Syntax.Attr_domain (Rng.pick rng attr_pool)

let gen_concept_rhs rng =
  match Rng.int rng 9 with
  | 0 | 1 | 2 | 3 | 4 -> Syntax.C_basic (gen_basic rng)
  | 5 | 6 -> Syntax.C_neg (gen_basic rng)
  | _ -> Syntax.C_exists_qual (gen_role rng, Rng.pick rng concept_pool)

let gen_axiom rng =
  match Rng.int rng 9 with
  | 0 | 1 | 2 | 3 | 4 | 5 ->
    Syntax.Concept_incl (gen_basic rng, gen_concept_rhs rng)
  | 6 | 7 ->
    let q1 = gen_role rng and q2 = gen_role rng in
    Syntax.Role_incl
      (q1, if Rng.bool rng 0.25 then Syntax.R_neg q2 else Syntax.R_role q2)
  | _ ->
    let u1 = Rng.pick rng attr_pool and u2 = Rng.pick rng attr_pool in
    Syntax.Attr_incl
      (u1, if Rng.bool rng 0.25 then Syntax.A_neg u2 else Syntax.A_attr u2)

(** [tbox rng] — a random TBox of 0..12 axioms over the full [Qgen]
    signature (all pool names declared even when unused, exactly like
    [Qgen.tbox_of_axioms]). *)
let tbox rng =
  let n = Rng.int rng 13 in
  Qgen.tbox_of_axioms (List.init n (fun _ -> gen_axiom rng))

let gen_assertion rng =
  match Rng.int rng 8 with
  | 0 | 1 | 2 | 3 ->
    Abox.Concept_assert (Rng.pick rng concept_pool, Rng.pick rng individual_pool)
  | 4 | 5 | 6 ->
    Abox.Role_assert
      (Rng.pick rng role_pool, Rng.pick rng individual_pool,
       Rng.pick rng individual_pool)
  | _ ->
    Abox.Attr_assert
      (Rng.pick rng attr_pool, Rng.pick rng individual_pool,
       Rng.pick rng value_pool)

(** [abox rng] — a random ABox of 1..8 assertions over the pools. *)
let abox rng =
  let n = 1 + Rng.int rng 8 in
  Abox.of_list (List.init n (fun _ -> gen_assertion rng))

let var_pool = [ "x"; "y"; "z" ]

let gen_atom rng =
  let term () =
    if Rng.bool rng 0.15 then Obda.Cq.Const (Rng.pick rng individual_pool)
    else Obda.Cq.Var (Rng.pick rng var_pool)
  in
  match Rng.int rng 8 with
  | 0 | 1 | 2 | 3 ->
    Obda.Cq.atom (Obda.Vabox.concept_pred (Rng.pick rng concept_pool)) [ term () ]
  | 4 | 5 | 6 ->
    Obda.Cq.atom (Obda.Vabox.role_pred (Rng.pick rng role_pool))
      [ term (); term () ]
  | _ ->
    Obda.Cq.atom (Obda.Vabox.attr_pred (Rng.pick rng attr_pool))
      [ term (); term () ]

(** [query rng] — a random CQ of 1..3 atoms; the answer variables are a
    (possibly empty — boolean query) subset of the body variables, so
    the result always satisfies [Cq.make]'s validity check. *)
let query rng =
  let n = 1 + Rng.int rng 3 in
  let body = List.init n (fun _ -> gen_atom rng) in
  let vars =
    List.sort_uniq compare
      (List.concat_map
         (fun a ->
           List.filter_map
             (function Obda.Cq.Var v -> Some v | Obda.Cq.Const _ -> None)
             a.Obda.Cq.args)
         body)
  in
  let answer_vars = List.filter (fun _ -> Rng.bool rng 0.6) vars in
  Obda.Cq.make answer_vars body

(** [profile_tbox ~seed profile] shrinks a Figure-1 profile to a
    conformance-checkable signature (about a dozen concepts) while
    preserving its structural densities, then generates from [seed]. *)
let profile_tbox ?(concepts = 12) ~seed profile =
  let f = float_of_int concepts /. float_of_int profile.Generator.concepts in
  Generator.generate ~seed (Generator.scale (min 1.0 f) profile)
