(** Deterministic splittable PRNG (splitmix64).

    Every generated benchmark ontology is a pure function of its seed,
    so bench runs and bug reports are reproducible without shipping
    ontology files. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

(** [next t] is the next raw 64-bit value (splitmix64 step). *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits: OCaml's native int is 63-bit signed, so a 63-bit
     payload would wrap negative.  [v mod bound] alone is biased
     whenever [bound] does not divide 2^62, so reject draws from the
     incomplete final block [2^62 - r, 2^62) where r = 2^62 mod bound.
     max_int = 2^62 - 1, hence r = ((max_int mod bound) + 1) mod bound
     without overflowing. *)
  let r = ((max_int mod bound) + 1) mod bound in
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
    if r > 0 && v >= max_int - r + 1 then draw () else v mod bound
  in
  draw ()

(** [float t] is uniform in [0, 1). *)
let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

(** [bool t p] is [true] with probability [p]. *)
let bool t p = float t < p

(** [pick t l] is a uniformly random element of the non-empty list [l]. *)
let pick t l =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))

(** [split t] derives an independent generator (for parallel structure
    generation that must not depend on traversal order). *)
let split t =
  let s = next t in
  { state = Int64.logxor s 0xD1B54A32D192ED03L }
