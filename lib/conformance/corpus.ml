(** Persistent counterexample corpus.

    Every minimized counterexample the fuzzer (or a one-off
    investigation) produces is saved as a small text file; the test
    suite replays the whole directory on every [dune runtest], so a
    disagreement fixed once can never silently return.

    File format — three sections, [#] comments and blank lines ignored:

    {v  [tbox]
        concept A
        role p
        A [= exists p
        [abox]
        A(ann)
        p(ann, bob)
        [query]
        x <- A(x)  v}

    The [tbox] section is the ASCII DL-Lite syntax (declarations
    included, so the file reparses losslessly).  The [abox] and [query]
    sections are optional and resolve predicate names against the TBox
    signature; attribute values may be double-quoted. *)

open Dllite

exception Malformed of string

let fail fmt = Format.kasprintf (fun m -> raise (Malformed m)) fmt

(* ------------------------------ saving ------------------------------ *)

let render_tbox tbox =
  let s = Tbox.signature tbox in
  List.map (Printf.sprintf "concept %s") (Signature.concepts s)
  @ List.map (Printf.sprintf "role %s") (Signature.roles s)
  @ List.map (Printf.sprintf "attr %s") (Signature.attributes s)
  @ List.map Syntax.axiom_to_string (Tbox.axioms tbox)

let render_assertion = function
  | Abox.Concept_assert (a, c) -> Printf.sprintf "%s(%s)" a c
  | Abox.Role_assert (p, c1, c2) -> Printf.sprintf "%s(%s, %s)" p c1 c2
  | Abox.Attr_assert (u, c, v) -> Printf.sprintf "%s(%s, \"%s\")" u c v

(* strip the Vabox sort tag so the query re-reads through Qparse *)
let detag pred =
  if String.length pred > 2 && pred.[1] = '$' then
    String.sub pred 2 (String.length pred - 2)
  else pred

let render_query q =
  let term = function
    | Obda.Cq.Var v -> v
    | Obda.Cq.Const c -> Printf.sprintf "\"%s\"" c
  in
  let atom a =
    Printf.sprintf "%s(%s)" (detag a.Obda.Cq.pred)
      (String.concat ", " (List.map term a.Obda.Cq.args))
  in
  String.concat ", " q.Obda.Cq.answer_vars
  ^ " <- "
  ^ String.concat ", " (List.map atom q.Obda.Cq.body)

let to_string (case : Runner.case) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "# conformance counterexample: ";
  Buffer.add_string buf case.Runner.label;
  Buffer.add_string buf "\n[tbox]\n";
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    (render_tbox case.Runner.tbox);
  (match case.Runner.data with
   | None -> ()
   | Some (abox, q) ->
     Buffer.add_string buf "[abox]\n";
     List.iter
       (fun a ->
         Buffer.add_string buf (render_assertion a);
         Buffer.add_char buf '\n')
       (Abox.assertions abox);
     Buffer.add_string buf "[query]\n";
     Buffer.add_string buf (render_query q);
     Buffer.add_char buf '\n');
  Buffer.contents buf

(** [save ~dir case] writes [case] as [<dir>/<label>.case] (creating
    [dir] if needed) and returns the path. *)
let save ~dir (case : Runner.case) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (case.Runner.label ^ ".case") in
  let oc = open_out path in
  output_string oc (to_string case);
  close_out oc;
  path

(* ------------------------------ loading ----------------------------- *)

let parse_assertion ~signature line =
  match String.index_opt line '(' with
  | Some i when String.length line > 1 && line.[String.length line - 1] = ')' ->
    let pred = String.trim (String.sub line 0 i) in
    let args_text = String.sub line (i + 1) (String.length line - i - 2) in
    let args =
      String.split_on_char ',' args_text
      |> List.map (fun a ->
             let a = String.trim a in
             if String.length a >= 2 && a.[0] = '"' && a.[String.length a - 1] = '"'
             then String.sub a 1 (String.length a - 2)
             else a)
    in
    if Signature.mem_concept pred signature then (
      match args with
      | [ c ] -> Abox.Concept_assert (pred, c)
      | _ -> fail "concept assertion %s expects one argument" line)
    else if Signature.mem_role pred signature then (
      match args with
      | [ c1; c2 ] -> Abox.Role_assert (pred, c1, c2)
      | _ -> fail "role assertion %s expects two arguments" line)
    else if Signature.mem_attribute pred signature then (
      match args with
      | [ c; v ] -> Abox.Attr_assert (pred, c, v)
      | _ -> fail "attribute assertion %s expects two arguments" line)
    else fail "unknown predicate in assertion: %s" line
  | _ -> fail "malformed assertion: %s" line

(** [of_string ~label text] parses the corpus format back into a case.
    @raise Malformed on anything unparseable. *)
let of_string ~label text =
  let section = ref `Preamble in
  let tbox_lines = ref [] in
  let abox_lines = ref [] in
  let query_lines = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then ()
         else
           match line with
           | "[tbox]" -> section := `Tbox
           | "[abox]" -> section := `Abox
           | "[query]" -> section := `Query
           | _ -> (
             match !section with
             | `Preamble -> fail "content before [tbox] section: %s" line
             | `Tbox -> tbox_lines := line :: !tbox_lines
             | `Abox -> abox_lines := line :: !abox_lines
             | `Query -> query_lines := line :: !query_lines));
  let tbox =
    match Parser.tbox_of_string (String.concat "\n" (List.rev !tbox_lines)) with
    | Ok t -> t
    | Error e -> fail "tbox: %s" e
  in
  let signature = Tbox.signature tbox in
  let data =
    match List.rev !query_lines, List.rev !abox_lines with
    | [], [] -> None
    | [ qline ], abox_lines ->
      let abox = Abox.of_list (List.map (parse_assertion ~signature) abox_lines) in
      let q =
        try Obda.Qparse.parse_query ~signature qline
        with Obda.Qparse.Parse_error e -> fail "query: %s" e
      in
      Some (abox, q)
    | [], _ -> fail "[abox] without a [query] section"
    | _ :: _ :: _, _ -> fail "expected exactly one query line"
  in
  { Runner.label; tbox; data }

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load_file path =
  let label = Filename.remove_extension (Filename.basename path) in
  of_string ~label (read_file path)

(** [load_dir dir] — every [*.case] file, sorted by name; an empty or
    missing directory is an empty corpus. *)
let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort compare
    |> List.map (fun f -> load_file (Filename.concat dir f))
