(** Aggregate statistics over a conformance run: agreement rates for
    the bench table, shrink effectiveness for the fuzzing summary. *)

type t = {
  mutable cases : int;
  mutable failing_cases : int;
  mutable checks : int;
  mutable unknowns : int;
  mutable disagreements : int;
  mutable shrinks : int;
  mutable shrink_reruns : int;
  mutable axioms_before : int;
  mutable axioms_after : int;
}

let create () =
  {
    cases = 0;
    failing_cases = 0;
    checks = 0;
    unknowns = 0;
    disagreements = 0;
    shrinks = 0;
    shrink_reruns = 0;
    axioms_before = 0;
    axioms_after = 0;
  }

let record t (outcome : Runner.outcome) =
  t.cases <- t.cases + 1;
  t.checks <- t.checks + outcome.Runner.checks;
  t.unknowns <- t.unknowns + outcome.Runner.unknowns;
  let d = List.length outcome.Runner.disagreements in
  t.disagreements <- t.disagreements + d;
  if d > 0 then t.failing_cases <- t.failing_cases + 1

let record_shrink t (stats : Shrink.stats) =
  t.shrinks <- t.shrinks + 1;
  t.shrink_reruns <- t.shrink_reruns + stats.Shrink.reruns;
  t.axioms_before <- t.axioms_before + stats.Shrink.initial_axioms;
  t.axioms_after <- t.axioms_after + stats.Shrink.final_axioms

(** Fraction of checks on which all definite verdicts coincided. *)
let agreement_rate t =
  if t.checks = 0 then 1.0
  else 1.0 -. (float_of_int t.disagreements /. float_of_int t.checks)

let summary t =
  let base =
    Printf.sprintf
      "%d cases, %d checks, %d unknown verdicts: %d disagreements in %d cases \
       (agreement %.4f)"
      t.cases t.checks t.unknowns t.disagreements t.failing_cases (agreement_rate t)
  in
  if t.shrinks = 0 then base
  else
    base
    ^ Printf.sprintf
        "\n%d shrinks: %d -> %d axioms on average, %d oracle reruns total"
        t.shrinks
        (t.axioms_before / t.shrinks)
        (t.axioms_after / t.shrinks)
        t.shrink_reruns
