(** Greedy delta-debugging of a failing case.

    Repeatedly try to delete one axiom (then one assertion, then the
    whole data part) and keep the deletion whenever the shrunk case
    still fails, until a fixpoint: the result is 1-minimal — removing
    any single remaining axiom or assertion makes the disagreement
    disappear.  Deletion never touches the signature ([Tbox.filter]
    keeps it), so the universe the subjects are questioned over stays
    put while the axioms melt away. *)

open Dllite

type stats = {
  initial_axioms : int;
  final_axioms : int;
  initial_assertions : int;
  final_assertions : int;
  reruns : int;  (** oracle re-checks spent *)
}

let assertion_count case =
  match case.Runner.data with None -> 0 | Some (abox, _) -> Abox.size abox

let remove_axiom ax tbox =
  Tbox.filter (fun a -> not (Syntax.equal_axiom a ax)) tbox

let remove_assertion asrt abox =
  Abox.of_list
    (List.filter (fun a -> not (Abox.equal_assertion a asrt)) (Abox.assertions abox))

(** [minimize ~still_failing case] — [still_failing] is the oracle the
    deletions are re-checked against (typically
    [fun c -> (Runner.check ~config c).disagreements <> []], but any
    predicate works, e.g. "this specific disagreement still shows").
    [case] must satisfy it. *)
let minimize ~still_failing case =
  let reruns = ref 0 in
  let test c =
    incr reruns;
    still_failing c
  in
  let current = ref case in
  (* cheapest big step first: a classification-only failure does not
     need the data part at all *)
  (match (!current).Runner.data with
   | Some _ ->
     let cand = { !current with Runner.data = None } in
     if test cand then current := cand
   | None -> ());
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun ax ->
        if Tbox.mem ax (!current).Runner.tbox then begin
          let cand =
            { !current with Runner.tbox = remove_axiom ax (!current).Runner.tbox }
          in
          if test cand then begin
            current := cand;
            progress := true
          end
        end)
      (Tbox.axioms (!current).Runner.tbox);
    match (!current).Runner.data with
    | None -> ()
    | Some (abox, q) ->
      List.iter
        (fun asrt ->
          match (!current).Runner.data with
          | Some (ab, _) when Abox.mem asrt ab ->
            let cand =
              { !current with Runner.data = Some (remove_assertion asrt ab, q) }
            in
            if test cand then begin
              current := cand;
              progress := true
            end
          | _ -> ())
        (Abox.assertions abox)
  done;
  let final = !current in
  ( final,
    {
      initial_axioms = Tbox.axiom_count case.Runner.tbox;
      final_axioms = Tbox.axiom_count final.Runner.tbox;
      initial_assertions = assertion_count case;
      final_assertions = assertion_count final;
      reruns = !reruns;
    } )
