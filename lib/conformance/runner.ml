(** The differential runner: put one case to every subject and diff the
    answers.

    A case is a TBox plus, optionally, an ABox and a query.  The
    intensional tier asks every classification subject all pairwise
    same-sort subsumption questions over the signature universe (the
    basic concepts, roles and attribute domains of [Naive.universe_of])
    and all unsatisfiability questions.  The extensional tier compares
    the two KB-consistency procedures and, when the KB is consistent,
    the three certain-answer paths. *)

open Dllite

type case = {
  label : string;
  tbox : Tbox.t;
  data : (Abox.t * Obda.Cq.t) option;
}

let case ?data ~label tbox = { label; tbox; data }

type config = {
  with_oracle : bool;
      (** include the ALCHI tableau (slowest subject by far) *)
  oracle_budget : int option;  (** per-query tableau rule budget *)
  fault : Subjects.fault;      (** inject a synthetic bug (harness self-test) *)
  max_universe : int;
      (** skip the oracle when the signature universe is larger — the
          pairwise tier would mean thousands of tableau runs *)
}

(* 20k tableau rule applications: far above what pool-sized cases need,
   but cheap enough that a pathological case degrades into a stream of
   fast [Unknown]s instead of minutes of stuck tableau *)
let default_config =
  {
    with_oracle = true;
    oracle_budget = Some 20_000;
    fault = Subjects.No_fault;
    max_universe = 40;
  }

type outcome = {
  disagreements : Diff.disagreement list;
  checks : int;    (** questions asked *)
  unknowns : int;  (** individual [Unknown] verdicts across all questions *)
}

let universe case = Baselines.Naive.universe_of case.tbox

let classifiers config tbox universe_size =
  let base = [ Subjects.quonto tbox; Subjects.naive tbox; Subjects.cb tbox ] in
  let base =
    if config.with_oracle && universe_size <= config.max_universe then
      base @ [ Subjects.oracle ?budget:config.oracle_budget tbox ]
    else base
  in
  match config.fault with
  | Subjects.No_fault -> base
  | fault -> base @ [ Subjects.faulty fault tbox ]

(** [check ?config case] runs the full differential protocol. *)
let check ?(config = default_config) case =
  let tbox = case.tbox in
  let u = universe case in
  let cls = classifiers config tbox (List.length u) in
  let disagreements = ref [] in
  let checks = ref 0 in
  let unknowns = ref 0 in
  let count_unknown v =
    match v with Subjects.Unknown _ -> incr unknowns | Subjects.Yes | Subjects.No -> ()
  in
  let record kind verdicts =
    incr checks;
    List.iter (fun (_, v) -> count_unknown v) verdicts;
    match Diff.check kind verdicts with
    | Some d -> disagreements := d :: !disagreements
    | None -> ()
  in
  (* intensional tier: unsatisfiability and pairwise subsumption *)
  List.iter
    (fun e1 ->
      record (Diff.Unsatisfiability e1)
        (List.map (fun c -> (c.Subjects.name, c.Subjects.is_unsat e1)) cls);
      List.iter
        (fun e2 ->
          if Quonto.Encoding.same_sort e1 e2 && not (Syntax.equal_expr e1 e2) then
            record
              (Diff.Subsumption (e1, e2))
              (List.map (fun c -> (c.Subjects.name, c.Subjects.subsumes e1 e2)) cls))
        u)
    u;
  (* extensional tier *)
  (match case.data with
   | None -> ()
   | Some (abox, q) ->
     let cons =
       List.map
         (fun s -> (s.Subjects.c_name, s.Subjects.consistent tbox abox))
         Subjects.consistency_subjects
     in
     record Diff.Consistency cons;
     (* certain answers are only well-defined (and only comparable:
        under inconsistency every tuple is certain for the chase while
        the rewriting evaluates as if nothing happened) on consistent
        KBs: require at least one definite "consistent" and no definite
        "inconsistent" *)
     let definite_yes = List.exists (fun (_, v) -> v = Subjects.Yes) cons in
     let definite_no = List.exists (fun (_, v) -> v = Subjects.No) cons in
     if definite_yes && not definite_no then begin
       let results =
         List.map
           (fun s -> (s.Subjects.a_name, s.Subjects.answers tbox abox q))
           Subjects.answer_subjects
       in
       incr checks;
       List.iter
         (fun (_, a) ->
           match a with Subjects.A_unknown _ -> incr unknowns | Subjects.Tuples _ -> ())
         results;
       match Diff.check_answers q results with
       | Some d -> disagreements := d :: !disagreements
       | None -> ()
     end);
  { disagreements = List.rev !disagreements; checks = !checks; unknowns = !unknowns }

(** [agrees ?config case] — no disagreement anywhere. *)
let agrees ?config case = (check ?config case).disagreements = []
