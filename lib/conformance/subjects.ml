(** The implementations under differential test, behind uniform
    interfaces.

    Four classification subjects (the digraph classifier, the naive
    saturation baseline, the consequence-based simulation, the ALCHI
    tableau oracle), two KB-consistency subjects (rewritten violation
    queries vs. the chase) and six certain-answer subjects (PerfectRef
    and Presto compiled to SQL, the bounded chase, the naive and
    cost-based/indexed Cq evaluators over the same rewriting, and the
    cached serving path).

    Every subject answers with a three-valued {!verdict}: resource
    exhaustion (tableau budget, chase overflow) and *documented*
    incompletenesses (CB computes no property hierarchy and is only
    guaranteed complete on positive TBoxes, see [Baselines.Cb]) map to
    [Unknown], never to a fake yes/no — the runner only reports a
    disagreement between definite verdicts. *)

open Dllite

type verdict =
  | Yes
  | No
  | Unknown of string  (** the subject cannot answer; carries the reason *)

let verdict_of_bool b = if b then Yes else No

let string_of_verdict = function
  | Yes -> "yes"
  | No -> "no"
  | Unknown reason -> "unknown (" ^ reason ^ ")"

(* ------------------------- classification -------------------------- *)

type classifier = {
  name : string;
  subsumes : Syntax.expr -> Syntax.expr -> verdict;
  is_unsat : Syntax.expr -> verdict;
}

let quonto tbox =
  let cls = Quonto.Classify.classify tbox in
  {
    name = "quonto";
    subsumes = (fun e1 e2 -> verdict_of_bool (Quonto.Classify.subsumes cls e1 e2));
    is_unsat = (fun e -> verdict_of_bool (Quonto.Classify.is_unsat cls e));
  }

let naive tbox =
  let n = Baselines.Naive.classify tbox in
  {
    name = "naive";
    subsumes = (fun e1 e2 -> verdict_of_bool (Baselines.Naive.subsumes n e1 e2));
    is_unsat = (fun e -> verdict_of_bool (Baselines.Naive.is_unsat n e));
  }

(* CB participates only where its contract promises completeness: the
   concept sort of all-positive TBoxes.  It computes no property
   hierarchy, and its incoherence propagation is weaker than
   computeUnsat (e.g. it never derives that an empty role has an empty
   inverse), so negative inclusions put the whole TBox out of scope. *)
let cb tbox =
  let all_positive = Tbox.negative_inclusions tbox = [] in
  let c = Baselines.Cb.classify tbox in
  let concept_sort = function Syntax.E_concept _ -> true | _ -> false in
  let guarded es k =
    if not all_positive then Unknown "cb: negative inclusions out of scope"
    else if not (List.for_all concept_sort es) then
      Unknown "cb: no property hierarchy"
    else k ()
  in
  {
    name = "cb";
    subsumes =
      (fun e1 e2 ->
        guarded [ e1; e2 ] (fun () -> verdict_of_bool (Baselines.Cb.subsumes c e1 e2)));
    is_unsat =
      (fun e -> guarded [ e ] (fun () -> verdict_of_bool (Baselines.Cb.is_unsat c e)));
  }

let oracle ?budget tbox =
  let o = Owlfrag.Oracle.of_tbox tbox in
  let wrap f =
    try verdict_of_bool (f ())
    with Owlfrag.Tableau.Budget_exhausted -> Unknown "oracle: tableau budget exhausted"
  in
  {
    name = "oracle";
    subsumes = (fun e1 e2 -> wrap (fun () -> Owlfrag.Oracle.subsumes ?budget o e1 e2));
    is_unsat = (fun e -> wrap (fun () -> Owlfrag.Oracle.is_unsat ?budget o e));
  }

(* --------------------------- fault injection ------------------------ *)

(** Synthetic bugs for exercising the harness itself: a subject built
    with a fault must disagree with the healthy ones on some TBox, and
    the shrinker must reduce any such TBox to a tiny witness. *)
type fault =
  | No_fault
  | Drop_inverse_role_axioms
      (** forget every positive role inclusion that mentions an inverse
          role — the classic bug class the digraph encoding's
          inverse-component arcs exist to prevent *)

let fault_of_string = function
  | "none" -> Some No_fault
  | "drop-inverse" -> Some Drop_inverse_role_axioms
  | _ -> None

let string_of_fault = function
  | No_fault -> "none"
  | Drop_inverse_role_axioms -> "drop-inverse"

let apply_fault fault tbox =
  match fault with
  | No_fault -> tbox
  | Drop_inverse_role_axioms ->
    Tbox.filter
      (function
        | Syntax.Role_incl (Syntax.Inverse _, Syntax.R_role _)
        | Syntax.Role_incl (_, Syntax.R_role (Syntax.Inverse _)) -> false
        | _ -> true)
      tbox

(** [faulty fault tbox] — the digraph classifier run on a sabotaged
    copy of [tbox], posing as a fifth independent implementation. *)
let faulty fault tbox =
  let cls = Quonto.Classify.classify (apply_fault fault tbox) in
  {
    name = "quonto[" ^ string_of_fault fault ^ "]";
    subsumes = (fun e1 e2 -> verdict_of_bool (Quonto.Classify.subsumes cls e1 e2));
    is_unsat = (fun e -> verdict_of_bool (Quonto.Classify.is_unsat cls e));
  }

(* --------------------------- consistency ---------------------------- *)

type consistency_subject = {
  c_name : string;
  consistent : Tbox.t -> Abox.t -> verdict;
}

let rewrite_consistency =
  {
    c_name = "rewrite-consistency";
    consistent =
      (fun tbox abox ->
        verdict_of_bool
          (Obda.Consistency.consistent tbox ~facts:(Obda.Vabox.facts_of_abox abox)));
  }

let chase_consistency =
  {
    c_name = "chase-consistency";
    consistent =
      (fun tbox abox ->
        try verdict_of_bool (not (Obda.Chase.violates_ni tbox abox))
        with Obda.Chase.Overflow -> Unknown "chase: overflow");
  }

let consistency_subjects = [ rewrite_consistency; chase_consistency ]

(* -------------------------- certain answers ------------------------- *)

(** A certain-answer result: a canonical (sorted, deduplicated) set of
    tuples, or [Unknown]. *)
type answers =
  | Tuples of string list list
  | A_unknown of string

type answer_subject = {
  a_name : string;
  answers : Tbox.t -> Abox.t -> Obda.Cq.t -> answers;
}

let canon tuples = List.sort_uniq compare tuples

let string_of_answers = function
  | Tuples tuples ->
    "{"
    ^ String.concat "; " (List.map (fun t -> "(" ^ String.concat ", " t ^ ")") tuples)
    ^ "}"
  | A_unknown reason -> "unknown (" ^ reason ^ ")"

(* load the ABox into a private database under the Vabox names, the
   same layout [Engine.of_abox] uses *)
let database_of_abox abox =
  let db = Obda.Database.create () in
  List.iter
    (function
      | Abox.Concept_assert (a, c) ->
        Obda.Database.insert db (Obda.Vabox.concept_pred a) [ c ]
      | Abox.Role_assert (p, c1, c2) ->
        Obda.Database.insert db (Obda.Vabox.role_pred p) [ c1; c2 ]
      | Abox.Attr_assert (u, c, v) ->
        Obda.Database.insert db (Obda.Vabox.attr_pred u) [ c; v ])
    (Abox.assertions abox);
  db

let sql_path name rewriter =
  {
    a_name = name;
    answers =
      (fun tbox abox q ->
        let rewritten, _stats = rewriter tbox [ q ] in
        let stmt = Obda.Sql.of_ucq rewritten in
        Tuples (canon (Obda.Sql.eval (database_of_abox abox) stmt)));
  }

let perfectref_sql = sql_path "perfectref-sql" Obda.Rewrite.perfect_ref
let presto_sql = sql_path "presto-sql" Obda.Rewrite.presto_ref

let chase_answers =
  {
    a_name = "chase";
    answers =
      (fun tbox abox q ->
        try Tuples (canon (Obda.Chase.certain_answers tbox abox q))
        with Obda.Chase.Overflow -> A_unknown "chase: overflow");
  }

(* The two Cq evaluators over the same PerfectRef rewriting: the
   original backtracking scan ([Cq.Naive], the oracle) against the
   cost-based executor (selectivity-ordered plans + adaptive joins over
   the database's persistent pattern indexes).  Because both share the
   rewriting, any disagreement between them is an execution bug, not a
   rewriting one — this is the lockdown for the indexed path. *)
let naive_answers =
  {
    a_name = "perfectref-naive";
    answers =
      (fun tbox abox q ->
        let rewritten, _stats = Obda.Rewrite.perfect_ref tbox [ q ] in
        let db = database_of_abox abox in
        Tuples
          (canon (Obda.Cq.Naive.evaluate_ucq ~facts:(Obda.Database.facts db) rewritten)));
  }

let indexed_answers =
  {
    a_name = "indexed";
    answers =
      (fun tbox abox q ->
        let rewritten, _stats = Obda.Rewrite.perfect_ref tbox [ q ] in
        let db = database_of_abox abox in
        Tuples
          (canon
             (Obda.Cq.evaluate_ucq_src ~source:(Obda.Database.source db) rewritten)));
  }

(* The served path: one process-wide Service shared across fuzz cases,
   so the fingerprint-keyed rewrite cache carries entries from case to
   case — exactly the reuse whose soundness is under test.  Every case
   asks twice and reports the *warm* (answer-cache) result, which must
   agree with the independently computed subjects.  Sessions are
   per-domain (the fuzz driver runs cases on a domain pool) and reset
   per case; the service's own mutex handles the rest. *)
let service_answers =
  let service = lazy (Server.Service.create ~config:{ Server.Service.Config.default with lru = 64 } ()) in
  {
    a_name = "service";
    answers =
      (fun tbox abox q ->
        let t = Lazy.force service in
        let session = "fuzz-" ^ string_of_int (Domain.self () :> int) in
        Server.Service.drop_session t ~session;
        Server.Service.set_tbox t ~session tbox;
        Server.Service.add_abox t ~session abox;
        ignore (Server.Service.ask t ~session q);
        Tuples (Server.Service.ask t ~session q));
  }

let answer_subjects =
  [
    perfectref_sql; presto_sql; chase_answers; naive_answers; indexed_answers;
    service_answers;
  ]
