(** The fuzz campaign driver: generate seeded cases, run them through the
    differential [Runner] — across a domain pool when [jobs > 1] — and
    shrink the first failure.

    Replayability is scheduling-independent by construction: case [i] of
    a campaign derives its own splitmix64 stream from [seed + i] (a
    per-case RNG stream, which is strictly finer than one stream per
    domain), so no interleaving of the pool's domains can perturb a
    case's draws.  The parallel driver evaluates cases in deterministic
    seed-order blocks and reports the *lowest* failing seed of the first
    failing block, discarding any later-seed outcomes — exactly the
    failure the sequential driver stops at.  Hence [--jobs n] reproduces
    the same failure, the same shrunk corpus entry and the same report
    as [--jobs 1], for every [n]. *)

type spec = {
  seed : int;  (** base seed; case [i] uses [seed + i] *)
  count : int;
  profile : Ontgen.Generator.profile option;
      (** generate Figure-1 profile TBoxes instead of pool cases *)
  config : Runner.config;
}

type failure = {
  case_seed : int;
  case : Runner.case;
  outcome : Runner.outcome;
  shrunk : Runner.case;  (** 1-minimal counterexample, corpus-ready *)
  stats : Shrink.stats;
}

type result = {
  report : Report.t;
      (** covers the cases a sequential run would have executed: every
          case up to and including the failing one *)
  failure : failure option;
}

(** [build_case ~profile ~case_seed] is the pure case constructor: the
    case shape (with/without data) and contents are a function of
    [case_seed] alone, so a failing seed replays with [count = 1]. *)
let build_case ~profile ~case_seed =
  let rng = Ontgen.Rng.create case_seed in
  let label = Printf.sprintf "seed-%d" case_seed in
  match profile with
  | Some p -> Runner.case ~label (Ontgen.Casegen.profile_tbox ~seed:case_seed p)
  | None ->
    let with_data = Ontgen.Rng.bool rng 0.5 in
    let tbox = Ontgen.Casegen.tbox rng in
    let data =
      if with_data then Some (Ontgen.Casegen.abox rng, Ontgen.Casegen.query rng)
      else None
    in
    { Runner.label; tbox; data }

let shrink_failure ~config case_seed case outcome =
  let still_failing c = (Runner.check ~config c).Runner.disagreements <> [] in
  let shrunk, stats = Shrink.minimize ~still_failing case in
  { case_seed; case; outcome; shrunk; stats }

(* Sequential driver: stop at the first disagreement. *)
let run_seq spec report =
  let failure = ref None in
  let i = ref 0 in
  while !failure = None && !i < spec.count do
    let case_seed = spec.seed + !i in
    let case = build_case ~profile:spec.profile ~case_seed in
    let outcome = Runner.check ~config:spec.config case in
    Report.record report outcome;
    if outcome.Runner.disagreements <> [] then failure := Some (case_seed, case, outcome);
    incr i
  done;
  !failure

(* Parallel driver: deterministic seed-order blocks across the pool.
   Within a block every case runs concurrently into its own slot; the
   block is then scanned in seed order and recorded only up to the first
   failure, so the visible result matches the sequential driver even
   though a few later-seed cases were (wastefully) checked. *)
let run_par pool spec report =
  let jobs = Parallel.Pool.jobs pool in
  let block = jobs * 4 in
  let failure = ref None in
  let start = ref 0 in
  while !failure = None && !start < spec.count do
    let n = min block (spec.count - !start) in
    let outcomes = Array.make n None in
    Parallel.Pool.parallel_for pool ~n (fun k ->
        let case_seed = spec.seed + !start + k in
        let case = build_case ~profile:spec.profile ~case_seed in
        let outcome = Runner.check ~config:spec.config case in
        outcomes.(k) <- Some (case_seed, case, outcome));
    let k = ref 0 in
    while !failure = None && !k < n do
      (match outcomes.(!k) with
       | None -> ()  (* unreachable: every slot is filled by its task *)
       | Some ((_, _, outcome) as slot) ->
         Report.record report outcome;
         if outcome.Runner.disagreements <> [] then failure := Some slot);
      incr k
    done;
    start := !start + n
  done;
  !failure

(** [run ?pool ?jobs spec] drives a campaign.  With [jobs > 1] (or an
    explicit [pool]) cases of a block run concurrently; the returned
    report and failure are identical to the sequential run's.  The
    shrink of a failing case is always sequential (it is a dependency
    chain of reruns). *)
let run ?pool ?(jobs = 1) spec =
  let pool =
    match pool with Some p -> p | None -> Parallel.Pool.global ~jobs ()
  in
  let report = Report.create () in
  let failure =
    if Parallel.Pool.jobs pool = 1 then run_seq spec report
    else run_par pool spec report
  in
  let failure =
    Option.map
      (fun (case_seed, case, outcome) ->
        let f = shrink_failure ~config:spec.config case_seed case outcome in
        Report.record_shrink report f.stats;
        f)
      failure
  in
  { report; failure }
