(** Structured disagreement reports.

    A disagreement records one question the subjects answered
    differently, with every subject's verdict attached — enough for a
    human to decide which implementation is wrong without re-running
    anything. *)

open Dllite

type kind =
  | Subsumption of Syntax.expr * Syntax.expr  (** [e1 ⊑? e2] *)
  | Unsatisfiability of Syntax.expr           (** [e ⊑? ⊥] *)
  | Consistency                               (** is the KB consistent? *)
  | Certain_answers of Obda.Cq.t              (** certain answers to a CQ *)

type disagreement = {
  kind : kind;
  verdicts : (string * string) list;
      (** subject name, printed verdict — [Unknown]s included for
          context even though they never trigger the disagreement *)
}

let string_of_kind = function
  | Subsumption (e1, e2) ->
    Printf.sprintf "subsumption %s [= %s" (Syntax.expr_to_string e1)
      (Syntax.expr_to_string e2)
  | Unsatisfiability e -> Printf.sprintf "unsatisfiability of %s" (Syntax.expr_to_string e)
  | Consistency -> "KB consistency"
  | Certain_answers q -> Printf.sprintf "certain answers to %s" (Obda.Cq.to_string q)

(** [check kind verdicts] — [Some d] when two *definite* verdicts
    differ, [None] when the subjects agree (or at most one of them
    committed to an answer). *)
let check kind verdicts =
  let definite =
    List.filter_map
      (fun (_, v) -> match v with Subjects.Unknown _ -> None | v -> Some v)
      verdicts
  in
  let disagreeing =
    match definite with
    | [] | [ _ ] -> false
    | v :: rest -> List.exists (fun v' -> v' <> v) rest
  in
  if disagreeing then
    Some
      {
        kind;
        verdicts =
          List.map (fun (n, v) -> (n, Subjects.string_of_verdict v)) verdicts;
      }
  else None

(** Same decision rule for certain-answer results. *)
let check_answers q results =
  let definite =
    List.filter_map
      (fun (_, a) -> match a with Subjects.A_unknown _ -> None | Subjects.Tuples t -> Some t)
      results
  in
  let disagreeing =
    match definite with
    | [] | [ _ ] -> false
    | t :: rest -> List.exists (fun t' -> t' <> t) rest
  in
  if disagreeing then
    Some
      {
        kind = Certain_answers q;
        verdicts = List.map (fun (n, a) -> (n, Subjects.string_of_answers a)) results;
      }
  else None

let to_string d =
  string_of_kind d.kind ^ "\n"
  ^ String.concat "\n"
      (List.map (fun (n, v) -> Printf.sprintf "  %-20s %s" n v) d.verdicts)
