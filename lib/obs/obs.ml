(** Unified observability: a typed metrics registry plus trace spans.

    One process-wide vocabulary of metrics replaces the ad-hoc stats
    that used to live in each layer ([Service.op_stats], [Lru.stats],
    [Executor.stats]).  Three metric kinds:

    - {e counters} — monotonically increasing integers ([Atomic.t], so
      increments from any number of domains lose no counts);
    - {e gauges} — instantaneous floats (a mutex-protected cell;
      float atomics are unsafe to CAS in OCaml because the compiler
      may rebox, breaking physical equality);
    - {e histograms} — fixed upper-bound buckets with atomic per-bucket
      counters, plus mutex-guarded sum/max.  Quantile readout (p50,
      p95, p99) reports the upper bound of the bucket holding the
      requested rank — the standard fixed-bucket estimate, exact to
      one bucket's resolution.

    Metrics live in a {!Registry} keyed by [(name, sorted labels)];
    lookups are get-or-create, so instrumentation points never need
    set-up calls.  Two renderings are provided: a flat {!Registry.samples}
    list (the wire [STATS] v2 schema renders this) and a Prometheus-style
    text {!Registry.exposition}.

    {!span} wraps a computation in a named timed phase: its latency is
    recorded into [obda_phase_seconds{phase=<name>}], spans nest (a
    per-domain stack gives each record its [a>b>c] path), and any span
    slower than {!set_slow_log_threshold} is reported through [Logs]. *)

let log_src = Logs.Src.create "obs" ~doc:"metrics registry and trace spans"

module Log = (val Logs.src_log log_src : Logs.LOG)

let now () = Unix.gettimeofday ()

(* ------------------------------ counters ----------------------------- *)

module Counter = struct
  type t = int Atomic.t

  let make () = Atomic.make 0

  (** [incr ?by t] adds [by] (default 1).  Counters are monotonic:
      a negative increment is a programming error and raises. *)
  let incr ?(by = 1) t =
    if by < 0 then invalid_arg "Obs.Counter.incr: negative increment";
    ignore (Atomic.fetch_and_add t by)

  let value t = Atomic.get t
end

(* ------------------------------- gauges ------------------------------ *)

module Gauge = struct
  type t = { mu : Mutex.t; mutable v : float }

  let make () = { mu = Mutex.create (); v = 0.0 }

  let set t x =
    Mutex.lock t.mu;
    t.v <- x;
    Mutex.unlock t.mu

  let add t dx =
    Mutex.lock t.mu;
    t.v <- t.v +. dx;
    Mutex.unlock t.mu

  let value t =
    Mutex.lock t.mu;
    let v = t.v in
    Mutex.unlock t.mu;
    v
end

(* ----------------------------- histograms ---------------------------- *)

module Histogram = struct
  type t = {
    bounds : float array;          (** strictly increasing upper bounds *)
    buckets : int Atomic.t array;  (** |bounds| + 1; last is overflow *)
    total : int Atomic.t;
    mu : Mutex.t;                  (** guards [sum] and [max] *)
    mutable sum : float;
    mutable max : float;
  }

  (** 1µs .. 10s in a 1-2.5-5 ladder: spans six decades, which covers
      everything from a warm cache hit to a cold classification. *)
  let latency_buckets =
    [|
      1e-6; 2.5e-6; 5e-6; 1e-5; 2.5e-5; 5e-5; 1e-4; 2.5e-4; 5e-4; 1e-3;
      2.5e-3; 5e-3; 1e-2; 2.5e-2; 5e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0;
    |]

  (** powers of two up to 4096, for size-like observations (UCQ
      disjunct counts, payload lines). *)
  let size_buckets =
    [| 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048.; 4096. |]

  let make ?(buckets = latency_buckets) () =
    let n = Array.length buckets in
    if n = 0 then invalid_arg "Obs.Histogram.make: empty bucket list";
    for i = 1 to n - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg "Obs.Histogram.make: bounds must be strictly increasing"
    done;
    {
      bounds = Array.copy buckets;
      buckets = Array.init (n + 1) (fun _ -> Atomic.make 0);
      total = Atomic.make 0;
      mu = Mutex.create ();
      sum = 0.0;
      max = 0.0;
    }

  (* first bucket whose upper bound admits [v]; |bounds| = overflow *)
  let bucket_index bounds v =
    let n = Array.length bounds in
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if v <= bounds.(mid) then hi := mid else lo := mid + 1
    done;
    !lo

  let observe t v =
    ignore (Atomic.fetch_and_add t.buckets.(bucket_index t.bounds v) 1);
    ignore (Atomic.fetch_and_add t.total 1);
    Mutex.lock t.mu;
    t.sum <- t.sum +. v;
    if v > t.max then t.max <- v;
    Mutex.unlock t.mu

  let count t = Atomic.get t.total

  let sum t =
    Mutex.lock t.mu;
    let s = t.sum in
    Mutex.unlock t.mu;
    s

  let max_value t =
    Mutex.lock t.mu;
    let m = t.max in
    Mutex.unlock t.mu;
    m

  (** [quantile t q] for [q ∈ [0, 1]]: the upper bound of the bucket
      containing the observation of rank [⌈q·count⌉] (the largest
      observed value stands in for the unbounded overflow bucket).
      0 when nothing was observed.  Concurrent [observe]s may skew a
      reading by the in-flight observations — fine for telemetry. *)
  let quantile t q =
    let total = count t in
    if total = 0 then 0.0
    else begin
      let rank = Stdlib.max 1 (int_of_float (ceil (q *. float_of_int total))) in
      let n = Array.length t.bounds in
      let rec scan i cum =
        if i >= n then max_value t
        else
          let cum = cum + Atomic.get t.buckets.(i) in
          if cum >= rank then Stdlib.min t.bounds.(i) (max_value t)
          else scan (i + 1) cum
      in
      scan 0 0
    end

  type summary = {
    count : int;
    sum : float;
    max : float;
    p50 : float;
    p95 : float;
    p99 : float;
  }

  let summary t =
    {
      count = count t;
      sum = sum t;
      max = max_value t;
      p50 = quantile t 0.50;
      p95 = quantile t 0.95;
      p99 = quantile t 0.99;
    }

  (** [(upper bound, cumulative count)] pairs, overflow last as
      [(infinity, total)] — the Prometheus [le] series. *)
  let cumulative t =
    let n = Array.length t.bounds in
    let acc = ref 0 in
    let rows =
      Array.to_list
        (Array.init n (fun i ->
             acc := !acc + Atomic.get t.buckets.(i);
             (t.bounds.(i), !acc)))
    in
    rows @ [ (infinity, !acc + Atomic.get t.buckets.(n)) ]
end

(* ------------------------------ registry ----------------------------- *)

type metric =
  | M_counter of Counter.t
  | M_gauge of Gauge.t
  | M_histogram of Histogram.t

type sample = {
  name : string;
  labels : (string * string) list;  (** sorted by key *)
  value : float;
}

(** Render a float the way both STATS v2 and the exposition format do:
    integral values without an exponent or trailing zeros, everything
    else in shortest-roundish form. *)
let string_of_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

module Registry = struct
  type t = {
    mu : Mutex.t;
    tbl : (string * (string * string) list, metric) Hashtbl.t;
  }

  let create () = { mu = Mutex.create (); tbl = Hashtbl.create 64 }

  let canon labels = List.sort compare labels

  let kind_name = function
    | M_counter _ -> "counter"
    | M_gauge _ -> "gauge"
    | M_histogram _ -> "histogram"

  (* get-or-create under the registry mutex; a name registered under a
     different kind is a vocabulary clash and raises *)
  let intern t name labels make expect =
    let key = (name, canon labels) in
    Mutex.lock t.mu;
    let m =
      match Hashtbl.find_opt t.tbl key with
      | Some m -> m
      | None ->
        let m = make () in
        Hashtbl.replace t.tbl key m;
        m
    in
    Mutex.unlock t.mu;
    match expect m with
    | Some v -> v
    | None ->
      invalid_arg
        (Printf.sprintf "Obs: metric %s is a %s, requested as another kind" name
           (kind_name m))

  let counter t ?(labels = []) name =
    intern t name labels
      (fun () -> M_counter (Counter.make ()))
      (function M_counter c -> Some c | _ -> None)

  let gauge t ?(labels = []) name =
    intern t name labels
      (fun () -> M_gauge (Gauge.make ()))
      (function M_gauge g -> Some g | _ -> None)

  let histogram t ?(labels = []) ?buckets name =
    intern t name labels
      (fun () -> M_histogram (Histogram.make ?buckets ()))
      (function M_histogram h -> Some h | _ -> None)

  (** [remove t name ~labels] unregisters one metric (e.g. a dropped
      session's cache gauges); unknown names are ignored. *)
  let remove t ?(labels = []) name =
    Mutex.lock t.mu;
    Hashtbl.remove t.tbl (name, canon labels);
    Mutex.unlock t.mu

  let snapshot t =
    Mutex.lock t.mu;
    let entries =
      Hashtbl.fold (fun (name, labels) m acc -> (name, labels, m) :: acc) t.tbl []
    in
    Mutex.unlock t.mu;
    List.sort
      (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))
      entries

  (** Flat samples, sorted by (name, labels).  Histograms flatten into
      [_count] / [_sum] / [_max] / [_p50] / [_p95] / [_p99] series. *)
  let samples t =
    List.concat_map
      (fun (name, labels, m) ->
        match m with
        | M_counter c ->
          [ { name; labels; value = float_of_int (Counter.value c) } ]
        | M_gauge g -> [ { name; labels; value = Gauge.value g } ]
        | M_histogram h ->
          let s = Histogram.summary h in
          [
            { name = name ^ "_count"; labels; value = float_of_int s.count };
            { name = name ^ "_sum"; labels; value = s.sum };
            { name = name ^ "_max"; labels; value = s.max };
            { name = name ^ "_p50"; labels; value = s.p50 };
            { name = name ^ "_p95"; labels; value = s.p95 };
            { name = name ^ "_p99"; labels; value = s.p99 };
          ])
      (snapshot t)

  (* ------------------------- text exposition ------------------------ *)

  let escape_label_value v =
    let buf = Buffer.create (String.length v) in
    String.iter
      (fun c ->
        match c with
        | '\\' -> Buffer.add_string buf "\\\\"
        | '"' -> Buffer.add_string buf "\\\""
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      v;
    Buffer.contents buf

  let render_labels = function
    | [] -> ""
    | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v))
             labels)
      ^ "}"

  let le_bound b = if b = infinity then "+Inf" else Printf.sprintf "%g" b

  (** Prometheus-style text exposition.  The first line is
      [# stats.version 2] — the same schema version the wire STATS reply
      announces, so scrapers can assert they are talking to this PR's
      vocabulary. *)
  let exposition t =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf "# stats.version 2\n";
    let last_family = ref "" in
    List.iter
      (fun (name, labels, m) ->
        if name <> !last_family then begin
          last_family := name;
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s %s\n" name (kind_name m))
        end;
        match m with
        | M_counter c ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (render_labels labels)
               (Counter.value c))
        | M_gauge g ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (render_labels labels)
               (string_of_value (Gauge.value g)))
        | M_histogram h ->
          List.iter
            (fun (bound, cum) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %d\n" name
                   (render_labels (labels @ [ ("le", le_bound bound) ]))
                   cum))
            (Histogram.cumulative h);
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (render_labels labels)
               (string_of_value (Histogram.sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (render_labels labels)
               (Histogram.count h)))
      (snapshot t);
    Buffer.contents buf
end

type registry = Registry.t

(** The process-wide default registry: library instrumentation points
    (spans, the database insert counter, ...) record here unless handed
    an explicit registry. *)
let default : registry = Registry.create ()

let counter ?(registry = default) ?labels name =
  Registry.counter registry ?labels name

let gauge ?(registry = default) ?labels name =
  Registry.gauge registry ?labels name

let histogram ?(registry = default) ?labels ?buckets name =
  Registry.histogram registry ?labels ?buckets name

(* ------------------------------- spans ------------------------------- *)

(* [Atomic] over a boxed float is safe for plain get/set (only CAS is
   hazardous); infinity disables the slow log. *)
let slow_threshold = Atomic.make infinity

(** [set_slow_log_threshold s] — spans (and service ops) taking [s]
    seconds or longer are reported through [Logs] at warning level;
    [infinity] (the default) disables the slow log. *)
let set_slow_log_threshold s = Atomic.set slow_threshold s

let slow_log_threshold () = Atomic.get slow_threshold

(** [slow_check path elapsed] — the slow-log test, exposed so that
    non-span timing sites (the service's per-op wrapper) share it. *)
let slow_check path elapsed =
  let threshold = Atomic.get slow_threshold in
  if elapsed >= threshold then
    Log.warn (fun m ->
        m "slow: %s took %.3fs (threshold %.3fs)" path elapsed threshold)

(* per-domain span stack: nesting without any cross-domain coordination *)
let span_stack : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(** [span ?registry name f] runs [f ()] inside a named phase: its
    wall-clock latency is recorded into
    [obda_phase_seconds{phase=<name>}] (also when [f] raises — a failed
    phase still spent the time), and the slow log reports the full
    nesting path ([classify>classify.closure]).  Spans nest freely
    within a domain; each domain has its own stack. *)
let span ?(registry = default) name f =
  let stack = Domain.DLS.get span_stack in
  stack := name :: !stack;
  let path = String.concat ">" (List.rev !stack) in
  let h = Registry.histogram registry ~labels:[ ("phase", name) ] "obda_phase_seconds" in
  let t0 = now () in
  Fun.protect
    ~finally:(fun () ->
      let elapsed = now () -. t0 in
      (match !stack with _ :: rest -> stack := rest | [] -> ());
      Histogram.observe h elapsed;
      slow_check path elapsed)
    f

(** [time h f] — record [f]'s latency into histogram [h] (also on
    raise).  The bare timing combinator for sites that manage their own
    metric handle and don't want span nesting. *)
let time h f =
  let t0 = now () in
  Fun.protect ~finally:(fun () -> Histogram.observe h (now () -. t0)) f
