(** The embeddable OBDA query service: named sessions, caches, stats.

    A session is a mutable OBDA system — TBox, mappings, database — with
    an engine rebuilt on every intensional update and a monotonically
    increasing {e version} bumped on {e any} update (TBox, mappings or
    data).  Two cache layers sit on top, each keyed so that a stale hit
    is impossible:

    - the {e rewrite cache} (service-wide) maps
      [(tbox fingerprint, mappings fingerprint, mode, query)] to the
      compiled (rewritten + unfolded) UCQ.  Rewriting is a pure function
      of exactly those inputs, so the entries survive data updates — the
      OBDA promise that reasoning cost is paid on the TBox — and even
      TBox {e reverts} re-hit, since the fingerprint is structural;
    - the {e answer cache} (per session) maps [(version, query)] to the
      canonical (sorted, deduplicated) answer set.  Any update bumps the
      version, so stale answers become unreachable and age out of the
      LRU.

    The classification cache is fingerprint-keyed too, shared across
    sessions.  Correctness of the whole scheme — cached answers
    byte-identical to a fresh engine's under random update/query
    interleavings, at every LRU capacity — is QCheck-tested
    ([test/test_server.ml]) and differentially fuzzed (the [service]
    conformance subject).

    Locking: handlers may be called from any number of server worker
    domains.  Each session has its own mutex, held for the duration of
    any operation on it — a session is one mutable knowledge base, so
    its requests serialize, but requests against {e different} sessions
    run in parallel.  The session registry and the two service-wide
    caches are guarded by short-lived leaf mutexes of their own (lock
    order: session before cache/stats; the registry lock is never held
    across an operation).  Cached values shared between sessions
    (classifications, compiled UCQs) are immutable, so concurrent reads
    need no lock.

    Durability: with a {!Durable.Store.t} attached, every mutation
    (LOAD, PREPARE and their typed equivalents) is validated, then
    appended to the write-ahead log and fsync'd, and only then applied
    and acknowledged — so an acknowledged mutation is always on disk,
    and a WAL refusal (injected or real I/O failure) turns into an
    [ERR] with the in-memory state untouched.  {!restore} replays a
    recovered mutation list through the exact same handlers;
    classifications and rewritings are then re-derived on demand and
    re-hit the fingerprint-keyed caches naturally.  Periodic snapshots
    compact the whole service into a few records per session, written
    stop-the-world under every session lock in the session → store
    order that mutating operations also follow. *)

open Dllite

(* ------------------------------- config ----------------------------- *)

(** Every service-level knob in one record, built in one place (the
    server's flag parser) instead of threaded as parallel optional-arg
    chains through [Engine] / [Service] / [Serve] / [obda_server].
    [default] is a working embedded configuration; override fields with
    [{ Config.default with lru = 8 }]. *)
module Config = struct
  type t = {
    mode : Obda.Engine.rewriting_mode;  (** rewriting algorithm *)
    lru : int;  (** capacity of the rewrite and per-session answer caches *)
    algorithm : Graphlib.Closure.algorithm option;
        (** closure algorithm for classification; [None] = library default *)
    jobs : int option;  (** domain-pool width for parallel closure *)
    join_threshold : int option;
        (** executor's nested-loop/hash pivot; [None] = [Cq] default *)
    slow_log_s : float;
        (** spans and ops slower than this are logged; [infinity] disables *)
    chaos : bool;  (** honour the [FAIL] wire verb *)
  }

  let default =
    {
      mode = Obda.Engine.Perfect_ref;
      lru = 256;
      algorithm = None;
      jobs = None;
      join_threshold = None;
      slow_log_s = infinity;
      chaos = false;
    }
end

(* one atomic chunk-stream in progress on a session (the BULK verb) *)
type bulk_state = { mutable chunks : int; mutable facts : int }

type session = {
  sname : string;
  smutex : Mutex.t;  (** held for the duration of any operation on the session *)
  mutable tbox : Tbox.t;
  mutable mappings : Obda.Mapping.t;
  database : Obda.Database.t;
  mutable engine : Obda.Engine.t;
  mutable version : int;   (** bumped on every TBox / mapping / data update *)
  mutable tbox_fp : string;
  mutable map_fp : string;
  prepared : (string, string) Hashtbl.t;  (** name -> raw query text *)
  answers : (string, string list list) Lru.t;
  (* durable replay sources: the payload text that rebuilds the current
     TBox, and — because mapping text parses against the signature in
     force when it was loaded — the (tbox text, mappings text) pair from
     the last mappings load.  Snapshots are compacted from these plus a
     dump of the database. *)
  mutable d_tbox_text : string list;
  mutable d_map : (string list * string list) option;
  mutable bulk : bulk_state option;
      (** active BULK stream: chunks apply without a version bump, asks
          bypass the answer cache, END bumps once *)
}

(** The node's replication role.  A [Replica] refuses every mutating
    verb over the wire — its state advances only through the replication
    apply path — so a client that writes to the wrong node gets a
    pointed, machine-detectable refusal (see {!read_only_prefix})
    instead of a silent fork. *)
type role =
  | Primary
  | Replica of { primary : string }  (** advertised primary endpoint, or "" *)

(** Every read-only refusal starts with this token — the failover client
    keys on it to re-resolve the primary. *)
let read_only_prefix = "read-only replica"

(** Hooks a cluster node installs on its primary: [gate] runs before a
    mutation is WAL-appended (a fenced ex-primary refuses before logging
    anything), [barrier] runs after the append with the assigned
    sequence number and blocks until the replication layer is satisfied
    (first subscriber ack, or immediately when no replica is
    subscribed). *)
type repl_hooks = {
  gate : unit -> (unit, string) Result.t;
  barrier : int -> (unit, string) Result.t;
}

type t = {
  registry_mutex : Mutex.t;  (** guards [sessions]; never held across an op *)
  cache_mutex : Mutex.t;     (** guards [rewrites] and [classifications] *)
  snap_mutex : Mutex.t;      (** at most one snapshot writer at a time *)
  mutable store : Durable.Store.t option;
      (** attached via {!attach_store} after {!restore}; [None] = no
          durability *)
  mutable role : role;
  mutable repl : repl_hooks option;
  config : Config.t;
  registry : Obs.registry;   (** every metric of this service lives here *)
  mutable snapshot_exec : Parallel.Executor.t option;
      (** when set, triggered snapshots run as a background task instead
          of on the request path *)
  sessions : (string, session) Hashtbl.t;
  rewrites : (string, Obda.Cq.ucq) Lru.t;
  classifications : (string, Quonto.Classify.t) Lru.t;
}

(** [create ?config ?registry ()] — all service knobs arrive through
    {!Config}.  [registry] defaults to {!Obs.default}, which is what a
    server process wants (library-level spans record there too);
    embedders that need isolated counters (tests) pass their own.
    [config.slow_log_s] installs the process-wide slow-span threshold. *)
let create ?(config = Config.default) ?(registry = Obs.default) () =
  Obs.set_slow_log_threshold config.Config.slow_log_s;
  {
    registry_mutex = Mutex.create ();
    cache_mutex = Mutex.create ();
    snap_mutex = Mutex.create ();
    store = None;
    role = Primary;
    repl = None;
    config;
    registry;
    snapshot_exec = None;
    sessions = Hashtbl.create 8;
    rewrites =
      Lru.create
        ~metrics:(registry, [ ("cache", "rewrite") ])
        ~capacity:config.Config.lru ();
    classifications =
      Lru.create
        ~metrics:(registry, [ ("cache", "classify") ])
        ~capacity:(max 1 (min config.Config.lru 16))
        ();
  }

let registry t = t.registry
let role t = t.role
let set_role t role = t.role <- role

(** [set_repl_hooks t hooks] — install the cluster gate/barrier around
    every WAL append ([None] removes them: promotion to a standalone
    primary, tests). *)
let set_repl_hooks t hooks = t.repl <- hooks

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

(* per-operation latency: one histogram per wire verb, plus the shared
   slow log (the registry lookup is a mutex-guarded hashtable find —
   negligible next to any actual operation) *)
let timed t op f =
  let h = Obs.Registry.histogram t.registry ~labels:[ ("op", op) ] "obda_op_seconds" in
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let elapsed = Unix.gettimeofday () -. t0 in
  Obs.Histogram.observe h elapsed;
  Obs.slow_check ("op:" ^ op) elapsed;
  result

(* ----------------------------- fingerprints ------------------------- *)

let fp_mappings mappings =
  let buf = Buffer.create 256 in
  List.iter
    (fun m ->
      Buffer.add_string buf (Obda.Mapping.target_pred m.Obda.Mapping.target);
      List.iter
        (fun term -> Buffer.add_string buf (Obda.Cq.show_term term))
        (Obda.Mapping.target_args m.Obda.Mapping.target);
      Buffer.add_string buf (Obda.Cq.show m.Obda.Mapping.source);
      Buffer.add_char buf '\n')
    mappings;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --------------------------- replay renderers ----------------------- *)
(* Renderers producing the text logged to the WAL and written into
   snapshots.  Each output re-parses through the same front door the
   original request came through ([Parser.tbox_of_string],
   [Qparse.parse_mappings], [Qparse.parse_facts]), so recovery is the
   normal load path — not a second deserializer that could drift.       *)

let quote v = "\"" ^ v ^ "\""

(* always-quoted arguments: [parse_facts] strips the quotes back off, so
   values that happen to look like syntax round-trip *)
let fact_line rel row =
  Printf.sprintf "%s(%s)" rel (String.concat ", " (List.map quote row))

(* [Tbox.to_string] prints axioms only; replay also needs the declared
   vocabulary (classification reports axiom-free names, and mapping /
   ABox loads validate against it), so emit explicit declarations *)
let tbox_payload tbox =
  let sg = Tbox.signature tbox in
  List.map (fun c -> "concept " ^ c) (Signature.concepts sg)
  @ List.map (fun r -> "role " ^ r) (Signature.roles sg)
  @ List.map (fun a -> "attr " ^ a) (Signature.attributes sg)
  @ List.map Syntax.axiom_to_string (Tbox.axioms tbox)

let term_text = function
  | Obda.Cq.Var v -> v
  | Obda.Cq.Const c -> quote c

(* body atoms print untagged when the sort tag came from [signature] —
   the replay parse against the same signature re-tags them identically;
   a predicate that merely looks tagged is left alone and rides through
   as a raw database relation, exactly as it parsed originally *)
let atom_text signature { Obda.Cq.pred; args } =
  let pred =
    if String.length pred > 2 && pred.[1] = '$' then begin
      let base = String.sub pred 2 (String.length pred - 2) in
      match pred.[0] with
      | 'c' when Signature.mem_concept base signature -> base
      | 'r' when Signature.mem_role base signature -> base
      | 'a' when Signature.mem_attribute base signature -> base
      | _ -> pred
    end
    else pred
  in
  Printf.sprintf "%s(%s)" pred (String.concat ", " (List.map term_text args))

let head_text = function
  | Obda.Mapping.Concept_head (a, t) -> Printf.sprintf "%s(%s)" a (term_text t)
  | Obda.Mapping.Role_head (p, t1, t2) ->
    Printf.sprintf "%s(%s, %s)" p (term_text t1) (term_text t2)
  | Obda.Mapping.Attr_head (u, t, v) ->
    Printf.sprintf "%s(%s, %s)" u (term_text t) (term_text v)

let mappings_payload signature mappings =
  List.map
    (fun m ->
      Printf.sprintf "map %s <- %s"
        (head_text m.Obda.Mapping.target)
        (String.concat ", "
           (List.map (atom_text signature) m.Obda.Mapping.source.Obda.Cq.body)))
    mappings

(* ------------------------- log before apply ------------------------- *)

(** Raised by the typed write API when the WAL refuses a mutation (an
    injected failpoint or a real I/O error); nothing was applied. *)
exception Durability of string

let log_mutation t m =
  match t.store with
  | None -> Result.Ok ()
  | Some store -> (
    (* a fenced ex-primary refuses before logging: its WAL must not grow
       a suffix the new epoch will never replicate *)
    match (match t.repl with Some r -> r.gate () | None -> Result.Ok ()) with
    | Result.Error _ as e -> e
    | Result.Ok () -> (
      try
        let seq = Durable.Store.append store m in
        (* semi-synchronous replication: hold the ack until the record
           is on at least one subscribed replica.  A barrier refusal
           leaves the record durable locally but unacknowledged — the
           client must treat it as not applied, and a later epoch-gated
           rejoin discards it with the rest of the stale suffix. *)
        match t.repl with Some r -> r.barrier seq | None -> Result.Ok ()
      with
      | Durable.Failpoint.Injected name ->
        Result.Error (Printf.sprintf "wal: injected fault at %s" name)
      | Unix.Unix_error (e, fn, _) ->
        Result.Error (Printf.sprintf "wal: %s: %s" fn (Unix.error_message e))
      | Sys_error e -> Result.Error ("wal: " ^ e)))

let log_load t s kind payload =
  log_mutation t
    (Durable.Store.Load
       { session = s.sname; kind = Wire.string_of_kind kind; payload })

(* the typed-API flavour: refusal is an exception, not a reply *)
let logged t s kind payload =
  match log_load t s kind payload with
  | Result.Ok () -> ()
  | Result.Error e -> raise (Durability e)

(* ------------------------------ sessions ---------------------------- *)

let rebuild_engine t s =
  s.engine <-
    Obda.Engine.create ~mode:t.config.Config.mode
      ?algorithm:t.config.Config.algorithm ?jobs:t.config.Config.jobs
      ?join_threshold:t.config.Config.join_threshold ~tbox:s.tbox
      ~mappings:s.mappings ~database:s.database ()

let bump s = s.version <- s.version + 1

let fresh_session t name =
  let database = Obda.Database.create () in
  let tbox = Tbox.empty in
  {
    sname = name;
    smutex = Mutex.create ();
    tbox;
    mappings = [];
    database;
    engine =
      Obda.Engine.create ~mode:t.config.Config.mode
        ?algorithm:t.config.Config.algorithm ?jobs:t.config.Config.jobs
        ?join_threshold:t.config.Config.join_threshold ~tbox ~mappings:[]
        ~database ();
    version = 0;
    tbox_fp = Tbox.fingerprint tbox;
    map_fp = fp_mappings [];
    prepared = Hashtbl.create 8;
    answers =
      Lru.create
        ~metrics:(t.registry, [ ("cache", "answers"); ("session", name) ])
        ~capacity:t.config.Config.lru ();
    d_tbox_text = [];
    d_map = None;
    bulk = None;
  }

(* Registry lookups hold only the (leaf-duration) registry mutex; the
   returned session is then locked by the caller.  LOAD / PREPARE bring
   sessions into existence; read-only operations on unknown names fail. *)
let find_session t name =
  locked t.registry_mutex (fun () -> Hashtbl.find_opt t.sessions name)

let get_or_create_session t name =
  locked t.registry_mutex (fun () ->
      match Hashtbl.find_opt t.sessions name with
      | Some s -> s
      | None ->
        let s = fresh_session t name in
        Hashtbl.replace t.sessions name s;
        s)

let session_names t =
  locked t.registry_mutex (fun () ->
      Hashtbl.fold (fun name _ acc -> name :: acc) t.sessions []
      |> List.sort compare)

(* --------------------------- core operations ------------------------ *)
(* All [op_*] functions assume the session's mutex is held; the shared
   caches they touch are guarded internally by [cache_mutex].           *)

(* [?source] is the payload text the mutation arrived as (wire LOADs);
   typed calls render an equivalent one — either way the session keeps
   the replay text its current state can be rebuilt from *)
let op_set_tbox t s ?source tbox =
  s.tbox <- tbox;
  s.tbox_fp <- Tbox.fingerprint tbox;
  s.d_tbox_text <-
    (match source with Some p -> p | None -> tbox_payload tbox);
  rebuild_engine t s;
  bump s

let op_set_mappings t s ?source mappings =
  let text =
    match source with
    | Some p -> p
    | None -> mappings_payload (Tbox.signature s.tbox) mappings
  in
  (* mapping text parses against the signature in force *now*: remember
     the TBox text it was loaded under, for snapshot compaction *)
  s.d_map <- Some (s.d_tbox_text, text);
  s.mappings <- mappings;
  s.map_fp <- fp_mappings mappings;
  rebuild_engine t s;
  bump s

let op_insert_fact _t s rel row =
  Obda.Database.insert s.database rel row;
  bump s

let op_add_abox _t s abox =
  List.iter
    (function
      | Abox.Concept_assert (a, c) ->
        Obda.Database.insert s.database (Obda.Vabox.concept_pred a) [ c ]
      | Abox.Role_assert (p, c1, c2) ->
        Obda.Database.insert s.database (Obda.Vabox.role_pred p) [ c1; c2 ]
      | Abox.Attr_assert (u, c, v) ->
        Obda.Database.insert s.database (Obda.Vabox.attr_pred u) [ c; v ])
    (Abox.assertions abox);
  bump s

let op_classification t s =
  match locked t.cache_mutex (fun () -> Lru.find t.classifications s.tbox_fp) with
  | Some cls -> cls
  | None ->
    (* computed outside the cache lock: two sessions racing on the same
       fingerprint may classify twice, but neither blocks the cache *)
    let cls = Obda.Engine.classification s.engine in
    locked t.cache_mutex (fun () -> Lru.put t.classifications s.tbox_fp cls);
    cls

(* the cached certain-answers pipeline; answers are canonicalized
   (sorted, deduplicated) before caching so every consumer — wire
   replies, the conformance subject, the QCheck property — sees one
   deterministic byte representation.  This is the single rendering
   point the [Database] ordering contract leans on: the cost-based
   executor underneath returns tuples in plan-dependent order (its
   selectivity-ordered plan is chosen fresh per evaluation against the
   live index statistics, so even the same compiled UCQ may execute in
   a different atom order after a data update), and the sort here makes
   that invisible.  The answer cache stays sound unchanged: plans
   depend on data only through the current database, and the
   [(version, query)] key already bumps on every data update *)
let op_ask t s q =
  let qkey = Obda.Cq.show q in
  let akey = Printf.sprintf "%d|%s" s.version qkey in
  (* during an active BULK stream the version is deliberately not
     bumped per chunk, so the answer cache is bypassed in both
     directions: a hit would serve pre-bulk answers as if current, and
     a miss computed over half-streamed data must not be cached under a
     key that outlives the stream *)
  let bulk_active = s.bulk <> None in
  match (if bulk_active then None else Lru.find s.answers akey) with
  | Some tuples -> tuples
  | None ->
    let rkey =
      Printf.sprintf "%s|%s|%s|%s" s.tbox_fp s.map_fp
        (Obda.Engine.string_of_mode t.config.Config.mode)
        qkey
    in
    let compiled =
      match locked t.cache_mutex (fun () -> Lru.find t.rewrites rkey) with
      | Some compiled -> compiled
      | None ->
        let compiled = Obda.Engine.compile s.engine [ q ] in
        locked t.cache_mutex (fun () -> Lru.put t.rewrites rkey compiled);
        compiled
    in
    let tuples =
      List.sort_uniq compare (Obda.Engine.evaluate_compiled s.engine compiled)
    in
    if not bulk_active then Lru.put s.answers akey tuples;
    tuples

(* ------------------------------ snapshots --------------------------- *)

(* The compact mutation list a session's state replays from (caller
   holds [s.smutex]): the TBox text — preceded, when the mappings were
   loaded under a different TBox, by that TBox so the mapping text
   parses against the right signature — then one FACTS dump of the
   database (materialized ABox assertions ride along as their tagged
   relations), then the prepared queries.  Facts and prepared names are
   sorted so snapshots of equal states are byte-identical. *)
let dump_session_records s =
  let load kind payload =
    Durable.Store.Load { session = s.sname; kind; payload }
  in
  let intensional =
    match s.d_map with
    | None -> [ load "TBOX" s.d_tbox_text ]
    | Some (tt, mp) when tt = s.d_tbox_text ->
      [ load "TBOX" tt; load "MAPPINGS" mp ]
    | Some (tt, mp) ->
      [ load "TBOX" tt; load "MAPPINGS" mp; load "TBOX" s.d_tbox_text ]
  in
  let facts =
    List.concat_map
      (fun rel -> List.map (fact_line rel) (Obda.Database.rows s.database rel))
      (Obda.Database.relation_names s.database)
    |> List.sort compare
  in
  let prepared =
    Hashtbl.fold (fun name query acc -> (name, query) :: acc) s.prepared []
    |> List.sort compare
    |> List.map (fun (name, query) ->
           Durable.Store.Prepare { session = s.sname; name; query })
  in
  intensional
  @ (if facts = [] then [] else [ load "FACTS" facts ])
  @ prepared

(** [snapshot_now t] compacts the whole service state into a snapshot
    (no-op without an attached store).  Stop-the-world: every session
    lock is taken (in sorted-name order) before the store is touched —
    the same session → store order every mutating operation follows, so
    the fenced sequence number cannot race a concurrent append.  A
    failed write is logged and dropped; the WAL still has everything. *)
let snapshot_now t =
  match t.store with
  | None -> ()
  | Some store ->
    if Mutex.try_lock t.snap_mutex then
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.snap_mutex)
        (fun () ->
          let sessions = List.filter_map (find_session t) (session_names t) in
          List.iter (fun s -> Mutex.lock s.smutex) sessions;
          Fun.protect
            ~finally:(fun () ->
              List.iter (fun s -> Mutex.unlock s.smutex) (List.rev sessions))
            (fun () ->
              let records = List.concat_map dump_session_records sessions in
              try Durable.Store.write_snapshot store records with
              | Durable.Failpoint.Injected name ->
                Logs.warn (fun m ->
                    m "snapshot refused: injected fault at %s" name)
              | Unix.Unix_error (e, fn, _) ->
                Logs.warn (fun m ->
                    m "snapshot failed: %s: %s" fn (Unix.error_message e))))

(* called after every mutating operation, outside the session lock;
   with a snapshot executor installed the compaction runs as a
   background task instead of stalling the request that tripped the
   trigger (a full queue just postpones it to the next trigger, and
   [snapshot_now]'s try-lock collapses duplicate submissions) *)
let maybe_snapshot t =
  match t.store with
  | Some store when Durable.Store.want_snapshot store -> (
    match t.snapshot_exec with
    | Some exec ->
      ignore (Parallel.Executor.try_submit exec (fun () -> snapshot_now t))
    | None -> snapshot_now t)
  | _ -> ()

(** [set_snapshot_executor t exec] — run triggered snapshots on [exec]
    (a dedicated executor, typically one worker / queue one) instead of
    on the request path.  Explicit {!snapshot_now} calls still run
    inline. *)
let set_snapshot_executor t exec = t.snapshot_exec <- Some exec

(* ------------------------- typed (embedded) API --------------------- *)
(* The API the conformance subject, the QCheck properties and the serve
   benchmark drive directly; the wire layer below maps onto the same
   operations. *)

exception Unknown_session of string

(* write operations materialize the session; read operations must not —
   a mistyped name answering from a silently created empty KB would
   mask the caller's error *)
let write_op t name op f =
  let s = get_or_create_session t name in
  let result = locked s.smutex (fun () -> timed t op (fun () -> f s)) in
  maybe_snapshot t;
  result

let read_op t name op f =
  match find_session t name with
  | None -> raise (Unknown_session name)
  | Some s -> locked s.smutex (fun () -> timed t op (fun () -> f s))

(* each write renders its replay text and logs it before applying;
   @raise Durability when the WAL refuses (nothing applied) *)

let set_tbox t ~session:name tbox =
  write_op t name "load" (fun s ->
      let payload = tbox_payload tbox in
      logged t s Wire.K_tbox payload;
      op_set_tbox t s ~source:payload tbox)

let set_mappings t ~session:name mappings =
  write_op t name "load" (fun s ->
      let payload = mappings_payload (Tbox.signature s.tbox) mappings in
      logged t s Wire.K_mappings payload;
      op_set_mappings t s ~source:payload mappings)

let add_abox t ~session:name abox =
  write_op t name "load" (fun s ->
      (* ABox assertions materialize as their tagged relations, so they
         log (and replay) as plain FACTS lines *)
      let lines =
        List.map
          (function
            | Abox.Concept_assert (a, c) ->
              fact_line (Obda.Vabox.concept_pred a) [ c ]
            | Abox.Role_assert (p, c1, c2) ->
              fact_line (Obda.Vabox.role_pred p) [ c1; c2 ]
            | Abox.Attr_assert (u, c, v) ->
              fact_line (Obda.Vabox.attr_pred u) [ c; v ])
          (Abox.assertions abox)
      in
      logged t s Wire.K_facts lines;
      op_add_abox t s abox)

let insert_fact t ~session:name rel row =
  write_op t name "load" (fun s ->
      logged t s Wire.K_facts [ fact_line rel row ];
      op_insert_fact t s rel row)

(** [ask t ~session q] — cached certain answers, canonical order.
    @raise Unknown_session when no such session was ever loaded. *)
let ask t ~session:name q = read_op t name "ask" (fun s -> op_ask t s q)

(** @raise Unknown_session when no such session was ever loaded. *)
let classification t ~session:name =
  read_op t name "classify" (fun s -> op_classification t s)

(** [drop_session t ~session] forgets the session entirely (its answer
    cache goes with it, and that cache's metrics leave the registry;
    service-wide caches are untouched — their keys are fingerprints,
    not session names). *)
let drop_session t ~session:name =
  match
    locked t.registry_mutex (fun () ->
        let s = Hashtbl.find_opt t.sessions name in
        Hashtbl.remove t.sessions name;
        s)
  with
  | None -> ()
  | Some s -> Lru.unregister s.answers

let version t ~session:name =
  match find_session t name with
  | Some s -> locked s.smutex (fun () -> s.version)
  | None -> 0

(* ------------------------------- stats ------------------------------ *)

(** The wire STATS schema version announced on the first payload line. *)
let stats_version = 2

let sample name labels value = { Obs.name; labels; value }

(* service- and session-level facts are computed at scrape time — they
   are authoritative state (session count, axiom count), not event
   streams, so they don't live as registry metrics *)
let scrape_samples ?session:filter t =
  let names =
    match filter with
    | Some n -> (match find_session t n with Some _ -> [ n ] | None -> [])
    | None -> session_names t
  in
  let service_samples =
    [
      sample "obda_service_sessions" []
        (float_of_int
           (locked t.registry_mutex (fun () -> Hashtbl.length t.sessions)));
      sample "obda_service_lru_capacity" [] (float_of_int t.config.Config.lru);
      sample "obda_service_info"
        [ ("mode", Obda.Engine.string_of_mode t.config.Config.mode) ]
        1.0;
    ]
  in
  let session_samples =
    List.concat_map
      (fun name ->
        match find_session t name with
        | None -> []
        | Some s ->
          locked s.smutex (fun () ->
              let labels = [ ("session", name) ] in
              [
                sample "obda_session_version" labels (float_of_int s.version);
                sample "obda_session_axioms" labels
                  (float_of_int (Tbox.axiom_count s.tbox));
                sample "obda_session_mappings" labels
                  (float_of_int (List.length s.mappings));
                sample "obda_session_facts" labels
                  (float_of_int (Obda.Database.size s.database));
                sample "obda_session_prepared" labels
                  (float_of_int (Hashtbl.length s.prepared));
              ]))
      names
  in
  service_samples @ session_samples

let render_sample { Obs.name; labels; value } =
  let rendered_labels =
    match labels with
    | [] -> "-"
    | labels ->
      String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
  in
  Printf.sprintf "%s %s %s" name rendered_labels (Obs.string_of_value value)

(* Not a consistent snapshot — each mutex is taken briefly in turn
   (the Obs registry, then the session registry, then each session),
   which is fine for an observability surface and keeps STATS from
   stalling asks. *)

(** [stats_lines ?session t] — the versioned STATS reply: a
    [stats.version 2] line, then one [<metric> <labels> <value>] line
    per sample, sorted.  With a session filter, registry samples
    labelled with a {e different} session are dropped (service-wide
    metrics all stay — they aggregate over sessions by nature). *)
let stats_lines ?session:filter t =
  let registry_samples =
    let all = Obs.Registry.samples t.registry in
    match filter with
    | None -> all
    | Some n ->
      List.filter
        (fun { Obs.labels; _ } ->
          match List.assoc_opt "session" labels with
          | Some other -> other = n
          | None -> true)
        all
  in
  let samples =
    List.sort
      (fun a b -> compare (a.Obs.name, a.Obs.labels) (b.Obs.name, b.Obs.labels))
      (registry_samples @ scrape_samples ?session:filter t)
  in
  Printf.sprintf "stats.version %d" stats_version
  :: List.map render_sample samples

(** [metrics_lines t] — the Prometheus-style exposition, as reply
    payload lines (the [METRICS] wire verb). *)
let metrics_lines t =
  match String.split_on_char '\n' (Obs.Registry.exposition t.registry) with
  | lines -> List.filter (fun l -> l <> "") lines

(** [hit_rates t] — (rewrite cache, classification cache) hit rates,
    for the serve benchmark's report. *)
let hit_rates t =
  locked t.cache_mutex (fun () ->
      (Lru.hit_rate t.rewrites, Lru.hit_rate t.classifications))

(* --------------------------- ABox text parsing ---------------------- *)

exception Bad_line of string

let parse_abox_lines signature lines =
  let parse_line i raw =
    let line = String.trim raw in
    if line = "" || line.[0] = '#' then None
    else
      match String.index_opt line '(' with
      | Some j when String.length line > 0 && line.[String.length line - 1] = ')'
        ->
        let name = String.trim (String.sub line 0 j) in
        let args_text = String.sub line (j + 1) (String.length line - j - 2) in
        let args =
          String.split_on_char ',' args_text
          |> List.map (fun a ->
                 let a = String.trim a in
                 if String.length a >= 2 && a.[0] = '"'
                    && a.[String.length a - 1] = '"'
                 then String.sub a 1 (String.length a - 2)
                 else a)
          |> List.filter (fun a -> a <> "")
        in
        (match args with
         | [ c ] when Signature.mem_concept name signature ->
           Some (Abox.Concept_assert (name, c))
         | [ c1; c2 ] when Signature.mem_role name signature ->
           Some (Abox.Role_assert (name, c1, c2))
         | [ c; v ] when Signature.mem_attribute name signature ->
           Some (Abox.Attr_assert (name, c, v))
         | _ ->
           raise
             (Bad_line
                (Printf.sprintf
                   "line %d: %s is not a signature predicate of this arity"
                   (i + 1) name)))
      | _ -> raise (Bad_line (Printf.sprintf "line %d: expected PRED(args)" (i + 1)))
  in
  List.mapi parse_line lines |> List.filter_map Fun.id

(* ------------------------------ wire layer -------------------------- *)

let render_tuple = function
  | [] -> "()"  (* boolean query answered positively *)
  | tuple -> String.concat ", " tuple

let handle_load ?(log = true) t s kind payload =
  let text = String.concat "\n" payload in
  (* validate fully, then WAL, then apply: a malformed payload is never
     logged, and a refused append is an ERR with nothing applied.
     [log = false] is the replication / restore apply path: the record
     is already durable (in the recovered WAL, or [append_raw]'d by the
     replica applier before this call). *)
  let commit apply =
    match (if log then log_load t s kind payload else Result.Ok ()) with
    | Result.Error e -> Wire.Err e
    | Result.Ok () ->
      apply ();
      Wire.Ok []
  in
  match kind with
  | Wire.K_tbox -> (
    match Parser.tbox_of_string text with
    | Result.Ok tbox -> commit (fun () -> op_set_tbox t s ~source:payload tbox)
    | Result.Error e -> Wire.Err ("ontology: " ^ e))
  | Wire.K_mappings -> (
    match Obda.Qparse.parse_mappings ~signature:(Tbox.signature s.tbox) text with
    | mappings -> commit (fun () -> op_set_mappings t s ~source:payload mappings)
    | exception Obda.Qparse.Parse_error e -> Wire.Err ("mappings: " ^ e))
  | Wire.K_abox -> (
    match parse_abox_lines (Tbox.signature s.tbox) payload with
    | assertions -> commit (fun () -> op_add_abox t s (Abox.of_list assertions))
    | exception Bad_line e -> Wire.Err ("abox: " ^ e))
  | Wire.K_facts -> (
    (* parse fully before the first insert: a malformed line must leave
       the database untouched, or the unchanged version would keep
       serving pre-load answers from the cache over a half-loaded KB *)
    match Obda.Qparse.parse_facts text with
    | rows ->
      commit (fun () ->
          List.iter
            (fun (rel, row) -> Obda.Database.insert s.database rel row)
            rows;
          bump s)
    | exception Obda.Qparse.Parse_error e -> Wire.Err ("facts: " ^ e))

(* ------------------------- streaming bulk load ----------------------- *)
(* One chunk = one WAL record = one atomic unit: validated fully, then
   logged (as an ordinary FACTS load, so recovery replays chunks through
   the normal path with no second deserializer), then applied.  A
   malformed line rejects exactly its own chunk; earlier acked chunks
   are already durable and stay.  The per-chunk version bump is
   deliberately skipped — [op_ask] bypasses the answer cache while a
   stream is active, and END performs the single bump that makes the
   whole load visible to cached readers at once. *)

let handle_bulk_chunk ?(log = true) t s payload =
  let text = String.concat "\n" payload in
  match Obda.Qparse.parse_facts text with
  | exception Obda.Qparse.Parse_error e -> Wire.Err ("facts: " ^ e)
  | rows -> (
    match
      (if log then log_load t s Wire.K_facts payload else Result.Ok ())
    with
    | Result.Error e -> Wire.Err e
    | Result.Ok () ->
      List.iter
        (fun (rel, row) -> Obda.Database.insert s.database rel row)
        rows;
      let b =
        match s.bulk with
        | Some b -> b
        | None ->
          let b = { chunks = 0; facts = 0 } in
          s.bulk <- Some b;
          b
      in
      b.chunks <- b.chunks + 1;
      b.facts <- b.facts + List.length rows;
      Wire.Ok [])

let handle_bulk_end _t s =
  match s.bulk with
  | None -> Wire.Err "no active bulk load"
  | Some b ->
    s.bulk <- None;
    if b.chunks > 0 then bump s;
    Wire.Ok [ Printf.sprintf "chunks %d facts %d" b.chunks b.facts ]

(* closing the stream without END: acked chunks are durable and stay
   (atomicity is per chunk, not per stream), so the data change must
   still invalidate cached answers *)
let handle_bulk_abort _t s =
  match s.bulk with
  | None -> Wire.Ok []  (* idempotent: nothing in flight *)
  | Some b ->
    s.bulk <- None;
    if b.chunks > 0 then bump s;
    Wire.Ok []

let parse_query s text =
  match Obda.Qparse.parse_query ~signature:(Tbox.signature s.tbox) text with
  | q -> Result.Ok q
  | exception Obda.Qparse.Parse_error e -> Result.Error e

let handle_ask t s query_ref =
  let text =
    match query_ref with
    | Wire.Inline text -> Result.Ok text
    | Wire.Named name -> (
      match Hashtbl.find_opt s.prepared name with
      | Some text -> Result.Ok text
      | None -> Result.Error (Printf.sprintf "unknown prepared query %s" name))
  in
  match text with
  | Result.Error e -> Wire.Err e
  | Result.Ok text -> (
    match parse_query s text with
    | Result.Error e -> Wire.Err ("query: " ^ e)
    | Result.Ok q ->
      let tuples = op_ask t s q in
      Wire.Ok (List.map render_tuple tuples))

let is_mutation = function
  | Wire.Load _ | Wire.Bulk_chunk _ | Wire.Bulk_end _ | Wire.Bulk_abort _
  | Wire.Prepare _ ->
    true
  | Wire.Hello _ | Wire.Classify _ | Wire.Ask _ | Wire.Stats _ | Wire.Metrics
  | Wire.Fail _ | Wire.Repl_subscribe _ | Wire.Repl_status | Wire.Repl_promote _
  | Wire.Quit ->
    false

(** [handle t request] — the service behind the wire protocol.  Pure
    mapping of requests onto the typed operations above; handlers may be
    invoked from any worker, and requests lock only their own session,
    so distinct sessions are served in parallel.  [Quit] is acknowledged
    here but connection teardown is the server's business.

    [internal] marks the replication / restore apply path: the role
    check is skipped (that is the {e only} way a replica's state moves)
    and nothing is re-logged to the WAL. *)
let rec handle ?(internal = false) t request =
  match t.role with
  | Replica { primary } when (not internal) && is_mutation request ->
    Wire.Err
      (if primary = "" then read_only_prefix
       else Printf.sprintf "%s; primary is %s" read_only_prefix primary)
  | _ -> handle_checked ~internal t request

and handle_checked ~internal t request =
  let log = not internal in
  match request with
  | Wire.Hello v ->
    (* embedded callers get the handshake as a plain reply; the serving
       layer additionally records the granted version per connection *)
    Wire.Ok [ Wire.hello_reply (min v Wire.max_version) ]
  | Wire.Bulk_chunk { session = name; payload } ->
    let s = get_or_create_session t name in
    let reply =
      locked s.smutex (fun () ->
          timed t "bulk" (fun () -> handle_bulk_chunk ~log t s payload))
    in
    maybe_snapshot t;
    reply
  | Wire.Bulk_end { session = name } -> (
    match find_session t name with
    | None -> Wire.Err (Printf.sprintf "unknown session %s" name)
    | Some s ->
      locked s.smutex (fun () -> timed t "bulk" (fun () -> handle_bulk_end t s)))
  | Wire.Bulk_abort { session = name } -> (
    match find_session t name with
    | None -> Wire.Err (Printf.sprintf "unknown session %s" name)
    | Some s ->
      locked s.smutex (fun () ->
          timed t "bulk" (fun () -> handle_bulk_abort t s)))
  | Wire.Load { session = name; kind; payload } ->
    let s = get_or_create_session t name in
    let reply =
      locked s.smutex (fun () ->
          timed t "load" (fun () -> handle_load ~log t s kind payload))
    in
    maybe_snapshot t;
    reply
  | Wire.Classify { session = name } -> (
    match find_session t name with
    | None -> Wire.Err (Printf.sprintf "unknown session %s" name)
    | Some s ->
      locked s.smutex (fun () ->
          timed t "classify" (fun () ->
              let cls = op_classification t s in
              let lines =
                List.map
                  (fun sub ->
                    Format.asprintf "%a" Quonto.Classify.pp_name_subsumption sub)
                  (Quonto.Classify.name_level cls)
              in
              Wire.Ok lines)))
  | Wire.Prepare { session = name; name = qname; query } ->
    let s = get_or_create_session t name in
    let reply =
      locked s.smutex (fun () ->
          timed t "prepare" (fun () ->
              match parse_query s query with
              | Result.Error e -> Wire.Err ("query: " ^ e)
              | Result.Ok _ -> (
                match
                  if log then
                    log_mutation t
                      (Durable.Store.Prepare
                         { session = name; name = qname; query })
                  else Result.Ok ()
                with
                | Result.Error e -> Wire.Err e
                | Result.Ok () ->
                  (* stored as text and re-parsed per ASK: a later TBox
                     swap may re-sort predicate names, which must affect
                     the parse, not silently reuse a stale one *)
                  Hashtbl.replace s.prepared qname query;
                  Wire.Ok [])))
    in
    maybe_snapshot t;
    reply
  | Wire.Ask { session = name; query } -> (
    match find_session t name with
    | None -> Wire.Err (Printf.sprintf "unknown session %s" name)
    | Some s ->
      locked s.smutex (fun () -> timed t "ask" (fun () -> handle_ask t s query)))
  | Wire.Stats filter ->
    timed t "stats" (fun () -> Wire.Ok (stats_lines ?session:filter t))
  | Wire.Metrics -> timed t "metrics" (fun () -> Wire.Ok (metrics_lines t))
  | Wire.Fail { name; spec } ->
    timed t "fail" (fun () ->
        if not t.config.Config.chaos then
          Wire.Err "FAIL requires a server started with --chaos"
        else
          match Durable.Failpoint.arm_spec name spec with
          | Result.Ok () -> Wire.Ok []
          | Result.Error e -> Wire.Err ("failpoint: " ^ e))
  | Wire.Repl_subscribe _ | Wire.Repl_status | Wire.Repl_promote _ ->
    (* intercepted by the serving layer when a cluster node is wired in;
       reaching the bare service means there is none *)
    Wire.Err "replication not enabled on this server"
  | Wire.Quit -> Wire.Ok []

(* ------------------------------ recovery ---------------------------- *)

(** [restore t mutations] replays a recovered mutation list
    ([Durable.Store.recovery]) through the ordinary handlers — recovery
    is the normal load path, not a second interpreter.  Must run before
    {!attach_store}, so the replay is not logged again.  Returns the
    count applied, or the first replay failure: a mutation that was
    acknowledged once cannot legally fail, so an error here means the
    log and the code disagree, and refusing to serve beats serving
    divergent answers. *)
let request_of_mutation m =
  match m with
  | Durable.Store.Load { session; kind; payload } -> (
    match Wire.kind_of_string kind with
    | Some kind -> Result.Ok (Wire.Load { session; kind; payload })
    | None -> Result.Error (Printf.sprintf "unknown load kind %s" kind))
  | Durable.Store.Prepare { session; name; query } ->
    Result.Ok (Wire.Prepare { session; name; query })

(** [apply_replicated t m] — apply one already-durable mutation through
    the ordinary handlers, bypassing the role check and the WAL: the
    replica applier's entry point, and exactly what {!restore} does per
    record.  Replicas thereby run the same code recovery runs — not a
    parallel interpreter that could drift. *)
let apply_replicated t m =
  match request_of_mutation m with
  | Result.Error _ as e -> e
  | Result.Ok req -> (
    match handle ~internal:true t req with
    | Wire.Ok _ -> Result.Ok ()
    | Wire.Err e -> Result.Error e
    | Wire.Busy -> Result.Error "busy")

let restore t mutations =
  let replay m =
    match request_of_mutation m with
    | Result.Ok req -> handle ~internal:true t req
    | Result.Error e -> Wire.Err e
  in
  let rec go i = function
    | [] -> Result.Ok i
    | m :: rest -> (
      match replay m with
      | Wire.Ok _ -> go (i + 1) rest
      | Wire.Err e -> Result.Error (Printf.sprintf "mutation %d: %s" (i + 1) e)
      | Wire.Busy -> Result.Error (Printf.sprintf "mutation %d: busy" (i + 1)))
  in
  go 0 mutations

(** [attach_store t store] switches mutation logging on: every later
    acknowledged mutation is on disk before it is applied. *)
let attach_store t store = t.store <- Some store

(** [reset_sessions t] drops every session — the replica's RESET
    catch-up wipes its state before rebuilding from the primary's
    compacted stream.  Fingerprint-keyed service caches stay: their
    entries are pure functions of their keys. *)
let reset_sessions t =
  List.iter (fun name -> drop_session t ~session:name) (session_names t)

(** The attached store, if any — the server's drain path syncs and
    closes it. *)
let attached_store t = t.store
