(** The line-based wire protocol, as a pure codec.

    Requests (one header line, plus [n] raw payload lines for [LOAD]):

    {v
      HELLO <proto-version>
      LOAD <session> TBOX|MAPPINGS|ABOX|FACTS <n>
      <n raw payload lines>
      BULK <session> FACTS <n>
      <n raw fact lines>
      BULK <session> END
      BULK <session> ABORT
      CLASSIFY <session>
      PREPARE <session> <name> <query text ...>
      ASK <session> <name>
      ASK <session> ? <query text ...>
      STATS [<session>]
      METRICS
      FAIL <failpoint> <spec>
      QUIT
    v}

    [HELLO n] negotiates the protocol version for the connection: the
    server replies [OK 1] with a payload line [v<version> <capabilities>]
    carrying the granted version (the minimum of the request and the
    server's {!max_version}) and its capability tokens.  Clients that
    skip the handshake speak protocol v1 — the verb set of PR 6 —
    unchanged; v2-only verbs ([BULK]) are {e capability-gated}: on a v1
    connection the server refuses them with a pointed ERR instead of a
    generic parse failure.

    [BULK] is the streaming ingestion verb (v2): facts arrive in
    length-prefixed chunks, each validated, WAL-logged and applied
    {e atomically} — a malformed line rejects only its own chunk, and a
    kill-9 can only lose un-acked chunks.  [END] closes the stream and
    invalidates the session's answer cache once; [ABORT] just closes it
    (acked chunks are already durable and stay — atomicity is per
    chunk, not per stream).

    [FAIL] arms (or, with spec [off], disarms) a named failpoint in the
    durable I/O or request path — chaos tooling only, and the service
    refuses it unless the server runs with [--chaos].

    [STATS] replies are versioned and machine-parsable since schema
    version 2: the first payload line is [stats.version 2], each
    following line is [<metric> <labels> <value>] with labels rendered
    as [k=v,k2=v2] (or [-] when there are none).  [METRICS] returns the
    Prometheus-style text exposition of the same registry.

    Replies (one header line, plus [n] raw payload lines for [OK]):

    {v
      OK <n>
      <n lines>
      ERR <message>
      BUSY
    v}

    Payload lines are counted, never escaped, so any ontology / mapping
    / fact text round-trips as-is.  The decoder is incremental — feed it
    lines as they arrive — and enforces [max_line] and
    [max_payload_lines] limits so a hostile client cannot make the
    server buffer unboundedly; everything here is pure and tested
    without sockets. *)

type load_kind =
  | K_tbox      (** ontology text in the ASCII DL-Lite syntax *)
  | K_mappings  (** [map HEAD <- ATOMS] lines *)
  | K_abox      (** ontology-level facts, [A(a)] / [p(a, b)] lines *)
  | K_facts     (** raw database tuples, [rel(a, b)] lines *)

let string_of_kind = function
  | K_tbox -> "TBOX"
  | K_mappings -> "MAPPINGS"
  | K_abox -> "ABOX"
  | K_facts -> "FACTS"

let kind_of_string = function
  | "TBOX" -> Some K_tbox
  | "MAPPINGS" -> Some K_mappings
  | "ABOX" -> Some K_abox
  | "FACTS" -> Some K_facts
  | _ -> None

type query_ref =
  | Named of string   (** a query registered with PREPARE *)
  | Inline of string  (** query text on the ASK line itself *)

type request =
  | Hello of int  (** protocol negotiation; handled at the connection layer *)
  | Load of { session : string; kind : load_kind; payload : string list }
  | Bulk_chunk of { session : string; payload : string list }
      (** one atomic chunk of a streaming FACTS load (v2) *)
  | Bulk_end of { session : string }
      (** close the stream; answer caches are invalidated here, once *)
  | Bulk_abort of { session : string }
      (** close the stream without the end-of-load bookkeeping *)
  | Classify of { session : string }
  | Prepare of { session : string; name : string; query : string }
  | Ask of { session : string; query : query_ref }
  | Stats of string option
  | Metrics  (** Prometheus-style text exposition *)
  | Fail of { name : string; spec : string }
      (** arm/disarm a failpoint; honoured only under [--chaos] *)
  | Repl_subscribe of { fence : int; epoch : int }
      (** become a replication subscriber: the connection turns into a
          record stream after the reply (v3) *)
  | Repl_status  (** role / epoch / fence probe — cheap, never queued *)
  | Repl_promote of { epoch : int }
      (** promote this replica to primary under [epoch] (v3) *)
  | Quit

(* --------------------------- protocol versions ----------------------- *)

(** Highest protocol version this codec speaks. *)
let max_version = 3

(** Capability tokens advertised in the HELLO reply, protocol-version
    gated: a v1 connection has no capabilities beyond the base verbs. *)
let capabilities_of_version v =
  (if v >= 2 then [ "bulk" ] else []) @ if v >= 3 then [ "repl" ] else []

(** The HELLO reply payload line: [v<n> <capabilities...>]. *)
let hello_reply v =
  String.concat " " (Printf.sprintf "v%d" v :: capabilities_of_version v)

(** [min_version r] — lowest protocol version a connection must have
    negotiated before the server accepts [r]; verbs above the
    connection's version are refused with a pointed ERR. *)
let min_version = function
  | Bulk_chunk _ | Bulk_end _ | Bulk_abort _ -> 2
  | Repl_subscribe _ | Repl_promote _ | Repl_status -> 3
  | Hello _ | Load _ | Classify _ | Prepare _ | Ask _ | Stats _ | Metrics
  | Fail _ | Quit ->
    1

(** [requires_v2 r] — requests refused on a bare (v1) connection. *)
let requires_v2 r = min_version r > 1

type reply =
  | Ok of string list
  | Err of string
  | Busy

(* ------------------------------- names ------------------------------ *)

let valid_name s =
  s <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z')
         || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '-' || c = '.')
       s

(* ------------------------------ encoding ---------------------------- *)

let encode_request = function
  | Hello v -> [ Printf.sprintf "HELLO %d" v ]
  | Load { session; kind; payload } ->
    Printf.sprintf "LOAD %s %s %d" session (string_of_kind kind)
      (List.length payload)
    :: payload
  | Bulk_chunk { session; payload } ->
    Printf.sprintf "BULK %s FACTS %d" session (List.length payload) :: payload
  | Bulk_end { session } -> [ Printf.sprintf "BULK %s END" session ]
  | Bulk_abort { session } -> [ Printf.sprintf "BULK %s ABORT" session ]
  | Classify { session } -> [ "CLASSIFY " ^ session ]
  | Prepare { session; name; query } ->
    [ Printf.sprintf "PREPARE %s %s %s" session name query ]
  | Ask { session; query = Named name } ->
    [ Printf.sprintf "ASK %s %s" session name ]
  | Ask { session; query = Inline q } -> [ Printf.sprintf "ASK %s ? %s" session q ]
  | Stats None -> [ "STATS" ]
  | Stats (Some session) -> [ "STATS " ^ session ]
  | Metrics -> [ "METRICS" ]
  | Fail { name; spec } -> [ Printf.sprintf "FAIL %s %s" name spec ]
  | Repl_subscribe { fence; epoch } ->
    [ Printf.sprintf "REPL SUBSCRIBE %d %d" fence epoch ]
  | Repl_status -> [ "REPL STATUS" ]
  | Repl_promote { epoch } -> [ Printf.sprintf "REPL PROMOTE %d" epoch ]
  | Quit -> [ "QUIT" ]

let encode_reply = function
  | Ok lines -> Printf.sprintf "OK %d" (List.length lines) :: lines
  | Err message ->
    (* a newline inside the message would desynchronize the stream *)
    let flat =
      String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) message
    in
    [ "ERR " ^ flat ]
  | Busy -> [ "BUSY" ]

(** [payload_of_text text] splits a file's contents into payload lines
    (the newline-terminated final line does not produce a trailing
    empty payload line). *)
let payload_of_text text =
  match String.split_on_char '\n' text with
  | [] -> []
  | lines ->
    (match List.rev lines with
     | "" :: rest -> List.rev rest
     | _ -> lines)

(* ------------------------------ decoding ---------------------------- *)

type limits = {
  max_line : int;           (** longest accepted line, bytes *)
  max_payload_lines : int;  (** largest accepted LOAD payload *)
}

let default_limits = { max_line = 65536; max_payload_lines = 100_000 }

type decoder = {
  limits : limits;
  mutable pending : pending option;
}

and pending = {
  p_session : string;
  p_kind : load_kind;
  p_bulk : bool;  (* payload completes a BULK chunk, not a LOAD *)
  mutable p_remaining : int;
  mutable p_acc : string list;  (* reversed *)
}

let decoder ?(limits = default_limits) () = { limits; pending = None }

type event =
  | Request of request
  | More             (** the line was consumed; the request is not complete yet *)
  | Error of string  (** malformed input; the decoder has re-synchronized *)

(* split a header line into whitespace-separated tokens *)
let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let parse_header d line =
  match tokens line with
  | [ "LOAD"; session; kind; n ] -> (
    match kind_of_string kind, int_of_string_opt n with
    | None, _ -> Error (Printf.sprintf "unknown LOAD kind %s" kind)
    | _, None -> Error (Printf.sprintf "bad LOAD line count %s" n)
    | _ when not (valid_name session) -> Error "bad session name"
    | _, Some n when n < 0 -> Error "negative LOAD line count"
    | _, Some n when n > d.limits.max_payload_lines ->
      Error
        (Printf.sprintf "payload too large (%d lines, limit %d)" n
           d.limits.max_payload_lines)
    | Some kind, Some 0 -> Request (Load { session; kind; payload = [] })
    | Some kind, Some n ->
      d.pending <-
        Some
          {
            p_session = session;
            p_kind = kind;
            p_bulk = false;
            p_remaining = n;
            p_acc = [];
          };
      More)
  | [ "HELLO"; v ] -> (
    match int_of_string_opt v with
    | Some v when v >= 1 -> Request (Hello v)
    | _ -> Error (Printf.sprintf "bad HELLO version %s" v))
  | [ "BULK"; session; "END" ] when valid_name session ->
    Request (Bulk_end { session })
  | [ "BULK"; session; "ABORT" ] when valid_name session ->
    Request (Bulk_abort { session })
  | [ "BULK"; session; "FACTS"; n ] -> (
    match int_of_string_opt n with
    | None -> Error (Printf.sprintf "bad BULK chunk line count %s" n)
    | _ when not (valid_name session) -> Error "bad session name"
    | Some n when n < 0 -> Error "negative BULK chunk line count"
    | Some n when n > d.limits.max_payload_lines ->
      Error
        (Printf.sprintf "chunk too large (%d lines, limit %d)" n
           d.limits.max_payload_lines)
    | Some 0 -> Request (Bulk_chunk { session; payload = [] })
    | Some n ->
      d.pending <-
        Some
          {
            p_session = session;
            p_kind = K_facts;
            p_bulk = true;
            p_remaining = n;
            p_acc = [];
          };
      More)
  | [ "CLASSIFY"; session ] when valid_name session ->
    Request (Classify { session })
  | "PREPARE" :: session :: name :: (_ :: _ as rest)
    when valid_name session && valid_name name ->
    Request (Prepare { session; name; query = String.concat " " rest })
  | "ASK" :: session :: "?" :: (_ :: _ as rest) when valid_name session ->
    Request (Ask { session; query = Inline (String.concat " " rest) })
  | [ "ASK"; session; name ] when valid_name session && valid_name name ->
    Request (Ask { session; query = Named name })
  | [ "STATS" ] -> Request (Stats None)
  | [ "STATS"; session ] when valid_name session -> Request (Stats (Some session))
  | [ "METRICS" ] -> Request Metrics
  | [ "FAIL"; name; spec ] when valid_name name -> Request (Fail { name; spec })
  | "REPL" :: rest -> (
    match rest with
    | [ "SUBSCRIBE"; fence ] | [ "SUBSCRIBE"; fence; _ ] -> (
      let epoch =
        match rest with
        | [ _; _; e ] -> int_of_string_opt e
        | _ -> Some 0
      in
      match (int_of_string_opt fence, epoch) with
      | Some f, Some e when f >= 0 && e >= 0 ->
        Request (Repl_subscribe { fence = f; epoch = e })
      | _ -> Error "bad REPL SUBSCRIBE fence or epoch")
    | [ "STATUS" ] -> Request Repl_status
    | [ "PROMOTE"; epoch ] -> (
      match int_of_string_opt epoch with
      | Some e when e >= 1 -> Request (Repl_promote { epoch = e })
      | _ -> Error "bad REPL PROMOTE epoch")
    | verb :: _ -> Error (Printf.sprintf "malformed REPL command %s" verb)
    | [] -> Error "malformed REPL command (want SUBSCRIBE | STATUS | PROMOTE)")
  | [ "QUIT" ] -> Request Quit
  | [] -> More  (* blank lines between requests are tolerated *)
  | verb :: _ ->
    Error
      (Printf.sprintf "malformed command %s"
         (if String.length verb > 32 then String.sub verb 0 32 ^ "..." else verb))

(** [feed d line] advances the decoder by one input line (without its
    terminator).  A protocol error drops any half-collected payload —
    the connection is desynchronized anyway; servers should report the
    error and continue from the next line. *)
let feed d line =
  if String.length line > d.limits.max_line then begin
    d.pending <- None;
    Error
      (Printf.sprintf "line too long (%d bytes, limit %d)" (String.length line)
         d.limits.max_line)
  end
  else
    match d.pending with
    | Some p ->
      p.p_acc <- line :: p.p_acc;
      p.p_remaining <- p.p_remaining - 1;
      if p.p_remaining = 0 then begin
        d.pending <- None;
        let payload = List.rev p.p_acc in
        Request
          (if p.p_bulk then Bulk_chunk { session = p.p_session; payload }
           else Load { session = p.p_session; kind = p.p_kind; payload })
      end
      else More
    | None -> parse_header d line

(* --------------------------- REPL streaming -------------------------- *)

(** After [REPL SUBSCRIBE]'s OK the connection stops being
    request/reply and becomes a symmetric frame stream:

    {v
      primary → replica:
        REPL RESET <fence> <k>     wipe; k STATE frames rebuild seq ≤ fence
        REPL STATE <n>             one compacted record (n payload lines)
        REPL RECORD <seq> <epoch> <n>   one WAL record (n payload lines)
      replica → primary:
        REPL ACK <seq>             applied durably through <seq>
        REPL NACK <epoch>          refused: the sender's epoch is stale
    v}

    Payload lines are counted and raw, exactly like LOAD. *)
type frame =
  | F_record of { seq : int; epoch : int; count : int }
  | F_reset of { fence : int; state_records : int }
  | F_state of { count : int }
  | F_ack of { seq : int }
  | F_nack of { epoch : int }

let encode_frame = function
  | F_record { seq; epoch; count } ->
    Printf.sprintf "REPL RECORD %d %d %d" seq epoch count
  | F_reset { fence; state_records } ->
    Printf.sprintf "REPL RESET %d %d" fence state_records
  | F_state { count } -> Printf.sprintf "REPL STATE %d" count
  | F_ack { seq } -> Printf.sprintf "REPL ACK %d" seq
  | F_nack { epoch } -> Printf.sprintf "REPL NACK %d" epoch

let parse_frame line =
  let int_ge lo s =
    match int_of_string_opt s with
    | Some v when v >= lo -> Some v
    | _ -> None
  in
  match tokens line with
  | [ "REPL"; "RECORD"; seq; epoch; count ] -> (
    match (int_ge 1 seq, int_ge 0 epoch, int_ge 0 count) with
    | Some seq, Some epoch, Some count -> Result.Ok (F_record { seq; epoch; count })
    | _ -> Result.Error ("bad REPL RECORD frame: " ^ line))
  | [ "REPL"; "RESET"; fence; k ] -> (
    match (int_ge 0 fence, int_ge 0 k) with
    | Some fence, Some state_records -> Result.Ok (F_reset { fence; state_records })
    | _ -> Result.Error ("bad REPL RESET frame: " ^ line))
  | [ "REPL"; "STATE"; count ] -> (
    match int_ge 0 count with
    | Some count -> Result.Ok (F_state { count })
    | None -> Result.Error ("bad REPL STATE frame: " ^ line))
  | [ "REPL"; "ACK"; seq ] -> (
    match int_ge 0 seq with
    | Some seq -> Result.Ok (F_ack { seq })
    | None -> Result.Error ("bad REPL ACK frame: " ^ line))
  | [ "REPL"; "NACK"; epoch ] -> (
    match int_ge 0 epoch with
    | Some epoch -> Result.Ok (F_nack { epoch })
    | None -> Result.Error ("bad REPL NACK frame: " ^ line))
  | _ -> Result.Error ("unrecognized REPL frame: " ^ line)

(* ------------------------- reply-side parsing ------------------------ *)

(** [parse_reply_header line] — the client side of the codec. *)
let parse_reply_header line =
  match tokens line with
  | [ "OK"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 0 -> Result.Ok (`Ok n)
    | _ -> Result.Error ("bad OK line count: " ^ line))
  | "OK" :: _ -> Result.Error ("bad OK header: " ^ line)
  | "ERR" :: rest -> Result.Ok (`Err (String.concat " " rest))
  | [ "BUSY" ] -> Result.Ok `Busy
  | _ -> Result.Error ("unrecognized reply: " ^ line)
