(** The networked front end: TCP and Unix-domain-socket accept loops
    feeding the shared [Service] through a bounded [Parallel.Executor].

    Threading model: each listener gets an accept thread; each accepted
    connection gets a handler thread ([threads.posix] — connection
    handling is I/O-bound).  Request {e execution} is dispatched onto
    the executor's worker domains.  [Service] locks per session, so
    CPU-bound work (classification, rewriting) parallelizes across
    {e distinct} sessions; requests against one session serialize on its
    mutex — a session is a single mutable knowledge base.  Admission
    stays bounded either way: a full queue turns into an immediate
    [BUSY] reply instead of an ever-growing backlog.

    Each dispatched request gets a deadline.  OCaml's [Condition] has no
    timed wait, so the handler polls its result cell at millisecond
    granularity — crude but dependency-free, and the polling thread is a
    cheap OS thread, not a worker domain.  A timed-out request answers
    [ERR timeout]; the task itself is {e not} cancelled — it completes
    on its worker (discarding its result) and meanwhile occupies that
    worker and its session's mutex, so the timeout bounds the client's
    wait, not the worker's.  Size [workers] and [request_timeout_s] for
    the slowest request a deployment should absorb.

    [stop] makes shutdown graceful: listeners close (no new
    connections), the executor stops admitting and drains in-flight
    requests, then remaining connections are shut down.  It returns the
    number of requests that were in flight when the drain began; those
    are also counted as [obda_requests_total{result="drained"}], and a
    store attached to the service is sync'd and closed — the last
    acknowledged mutation is on disk before the process exits.

    Connection I/O goes through {!Durable.Io} (EINTR-retried reads,
    partial-write-completing writes) — the same helpers the WAL uses —
    so a signal landing mid-syscall can no longer masquerade as a dead
    connection. *)

type config = {
  workers : int;           (** executor worker domains *)
  queue_capacity : int;    (** admission queue bound; excess sheds BUSY *)
  request_timeout_s : float;
  limits : Wire.limits;
}
(* service-level knobs (slow log, caches, engine) live in
   [Service.Config]; this record is purely the connection/dispatch
   layer *)

let default_config =
  {
    workers = 2;
    queue_capacity = 64;
    request_timeout_s = 30.0;
    limits = Wire.default_limits;
  }

(** The cluster node's hooks into the serve loop.  [REPL] verbs are
    handled {e inline} on the connection thread, never queued: STATUS
    and PROMOTE must keep working while the executor is saturated —
    failover probes a wedged node too.  [rh_subscribe] sends its own
    reply and then owns the connection as a replication stream; it
    returns only when the stream ends (the handler thread becomes the
    primary's ACK reader for that subscriber). *)
type repl_hooks = {
  rh_status : unit -> Wire.reply;
  rh_promote : epoch:int -> Wire.reply;
  rh_subscribe :
    fence:int -> epoch:int -> fd:Unix.file_descr ->
    reader:Durable.Io.reader -> unit;
}

(* request-lifecycle metric handles, resolved once at [create] *)
type req_metrics = {
  m_ok : Obs.Counter.t;
  m_err : Obs.Counter.t;
  m_busy : Obs.Counter.t;
  m_timeout : Obs.Counter.t;
  m_drained : Obs.Counter.t;    (** in flight when a graceful stop began *)
  m_seconds : Obs.Histogram.t;  (** full lifecycle: dispatch to reply *)
}

type t = {
  service : Service.t;
  exec : Parallel.Executor.t;
  config : config;
  repl : repl_hooks option;
  rm : req_metrics;
  mutex : Mutex.t;
  mutable listeners : Unix.file_descr list;
  mutable conns : Unix.file_descr list;   (** live connection sockets *)
  mutable accept_threads : Thread.t list;
  mutable stopping : bool;
}

let create ?(config = default_config) ?repl_hooks service =
  let registry = Service.registry service in
  let result_counter r =
    Obs.Registry.counter registry ~labels:[ ("result", r) ] "obda_requests_total"
  in
  {
    service;
    exec =
      Parallel.Executor.create ~registry ~workers:config.workers
        ~queue_capacity:config.queue_capacity ();
    config;
    repl = repl_hooks;
    rm =
      {
        m_ok = result_counter "ok";
        m_err = result_counter "err";
        m_busy = result_counter "busy";
        m_timeout = result_counter "timeout";
        m_drained = result_counter "drained";
        m_seconds = Obs.Registry.histogram registry "obda_request_seconds";
      };
    mutex = Mutex.create ();
    listeners = [];
    conns = [];
    accept_threads = [];
    stopping = false;
  }

let executor t = t.exec

(* ----------------------------- listeners ---------------------------- *)

let listen_unix t path =
  (match Unix.lstat path with
   | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path  (* stale socket *)
   | _ -> ()
   | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 64;
  t.listeners <- fd :: t.listeners;
  fd

(** [listen_tcp t ~host ~port] binds and returns the actually bound
    port (useful with [port = 0] in tests). *)
let listen_tcp t ~host ~port =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> Unix.inet_addr_loopback
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (addr, port));
  Unix.listen fd 64;
  t.listeners <- fd :: t.listeners;
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, bound) -> bound
  | _ -> port

(* ------------------------- request dispatch ------------------------- *)

type cell = { cm : Mutex.t; mutable result : Wire.reply option }

let dispatch t request =
  let t0 = Unix.gettimeofday () in
  let finish counter reply =
    Obs.Histogram.observe t.rm.m_seconds (Unix.gettimeofday () -. t0);
    Obs.Counter.incr counter;
    reply
  in
  match Durable.Failpoint.check "serve.request" with
  | exception Durable.Failpoint.Injected name ->
    finish t.rm.m_err (Wire.Err ("injected fault at " ^ name))
  | () ->
  let cell = { cm = Mutex.create (); result = None } in
  let task () =
    let reply =
      try Service.handle t.service request
      with e -> Wire.Err ("internal error: " ^ Printexc.to_string e)
    in
    Mutex.lock cell.cm;
    cell.result <- Some reply;
    Mutex.unlock cell.cm
  in
  if not (Parallel.Executor.try_submit t.exec task) then
    finish t.rm.m_busy Wire.Busy
  else begin
    let deadline = Unix.gettimeofday () +. t.config.request_timeout_s in
    let rec await () =
      Mutex.lock cell.cm;
      let r = cell.result in
      Mutex.unlock cell.cm;
      match r with
      | Some (Wire.Ok _ as reply) -> finish t.rm.m_ok reply
      | Some reply -> finish t.rm.m_err reply
      | None ->
        if Unix.gettimeofday () > deadline then
          finish t.rm.m_timeout
            (Wire.Err
               (Printf.sprintf "timeout after %.1fs" t.config.request_timeout_s))
        else begin
          Thread.delay 0.001;
          await ()
        end
    in
    await ()
  end

(* --------------------------- connections ---------------------------- *)

let send_reply fd reply =
  let text =
    String.concat ""
      (List.map (fun line -> line ^ "\n") (Wire.encode_reply reply))
  in
  Durable.Io.write_string fd text

let forget_conn t fd =
  Mutex.lock t.mutex;
  t.conns <- List.filter (fun c -> c != fd) t.conns;
  Mutex.unlock t.mutex

let handle_connection t fd =
  let reader = Durable.Io.reader fd in
  let decoder = Wire.decoder ~limits:t.config.limits () in
  (* the negotiated protocol version is per-connection state: bare
     clients that never send HELLO stay on v1 and keep the PR-6 verb
     set; v2-only verbs are refused with a pointed ERR instead of a
     parse failure, so an old server and a missing handshake are
     distinguishable from a typo *)
  let proto = ref 1 in
  let rec loop () =
    match
      Durable.Io.read_line reader ~max_line:t.config.limits.Wire.max_line
    with
    | None -> ()
    | Some line -> (
      match Wire.feed decoder line with
      | Wire.More -> loop ()
      | Wire.Error e ->
        send_reply fd (Wire.Err e);
        loop ()
      | Wire.Request Wire.Quit -> send_reply fd (Wire.Ok [])
      | Wire.Request (Wire.Hello v) ->
        let granted = min v Wire.max_version in
        proto := granted;
        send_reply fd (Wire.Ok [ Wire.hello_reply granted ]);
        loop ()
      | Wire.Request request when Wire.min_version request > !proto ->
        let v = Wire.min_version request in
        let verb =
          match request with
          | Wire.Bulk_chunk _ | Wire.Bulk_end _ | Wire.Bulk_abort _ -> "BULK"
          | Wire.Repl_subscribe _ | Wire.Repl_status | Wire.Repl_promote _ ->
            "REPL"
          | _ -> "this verb"
        in
        send_reply fd
          (Wire.Err
             (Printf.sprintf "%s requires protocol v%d: send HELLO %d first"
                verb v v));
        loop ()
      (* REPL verbs run inline on the connection thread, never queued:
         failover must be able to probe and promote a node whose
         executor is wedged *)
      | Wire.Request (Wire.Repl_subscribe { fence; epoch }) -> (
        match t.repl with
        | None ->
          send_reply fd (Wire.Err "replication not enabled on this server");
          loop ()
        | Some h ->
          (* the hook replies itself, then owns the fd as a record
             stream; when it returns the connection is done *)
          h.rh_subscribe ~fence ~epoch ~fd ~reader)
      | Wire.Request Wire.Repl_status ->
        (match t.repl with
         | None ->
           send_reply fd (Wire.Err "replication not enabled on this server")
         | Some h -> send_reply fd (h.rh_status ()));
        loop ()
      | Wire.Request (Wire.Repl_promote { epoch }) ->
        (match t.repl with
         | None ->
           send_reply fd (Wire.Err "replication not enabled on this server")
         | Some h -> send_reply fd (h.rh_promote ~epoch));
        loop ()
      | Wire.Request request ->
        send_reply fd (dispatch t request);
        loop ())
  in
  (try loop () with Sys_error _ | End_of_file | Unix.Unix_error _ -> ());
  forget_conn t fd;
  (try Unix.close fd with Unix.Unix_error _ -> ())

(* Polling accept: a thread parked in accept(2) is not woken by another
   thread closing the listener, so [stop] could never join it.  Select
   with a short timeout instead, re-checking [stopping] each round. *)
let accept_loop t listener =
  let continue = ref true in
  while !continue do
    Mutex.lock t.mutex;
    let stopping = t.stopping in
    Mutex.unlock t.mutex;
    if stopping then continue := false
    else
      match Unix.select [ listener ] [] [] 0.2 with
      | [], _, _ -> ()
      | _ -> (
        match Unix.accept listener with
        | fd, _ ->
          Mutex.lock t.mutex;
          t.conns <- fd :: t.conns;
          Mutex.unlock t.mutex;
          ignore (Thread.create (fun () -> handle_connection t fd) ())
        | exception Unix.Unix_error _ -> continue := false)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> continue := false  (* listener closed *)
  done

(** [start t] spawns one accept thread per registered listener.  Call
    after [listen_unix] / [listen_tcp]. *)
let start t =
  t.accept_threads <-
    List.map (fun l -> Thread.create (fun () -> accept_loop t l) ()) t.listeners

(** [stop t] — graceful shutdown: close listeners, drain in-flight
    requests, shut remaining connections down, join accept threads.
    Returns the number of requests that were in flight when the drain
    began. *)
let stop t =
  Mutex.lock t.mutex;
  t.stopping <- true;
  Mutex.unlock t.mutex;
  List.iter (fun l -> try Unix.close l with Unix.Unix_error _ -> ()) t.listeners;
  let in_flight = Parallel.Executor.close t.exec in
  Parallel.Executor.resume t.exec;
  Parallel.Executor.drain t.exec;
  Mutex.lock t.mutex;
  let conns = t.conns in
  Mutex.unlock t.mutex;
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  List.iter Thread.join t.accept_threads;
  t.accept_threads <- [];
  Parallel.Executor.shutdown t.exec;
  Obs.Counter.incr ~by:in_flight t.rm.m_drained;
  (* sync and close an attached store: the drain's last acknowledged
     mutation is on disk before the process exits *)
  (match Service.attached_store t.service with
   | Some store -> Durable.Store.close store
   | None -> ());
  in_flight
