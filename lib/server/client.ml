(** A blocking wire-protocol client, shared by [obda_cli query
    --connect], the serve benchmark's closed loop, the transcript tests
    and the chaos harness.  One request in flight per connection — the
    protocol has no multiplexing, by design.

    Resilience: [connect ~retries:n] turns {!request} into a retrying
    call — a dead connection (refused dial, mid-request hangup,
    truncated reply) or a [BUSY] shed is retried up to [n] times with
    jittered exponential backoff, re-establishing the connection as
    needed.  Every wire verb is idempotent (loads are set-semantics
    inserts or whole-value swaps, PREPARE is a replace, reads are
    reads), so a request whose first attempt was applied but whose
    reply was lost re-applies to the same state.  The default
    [retries = 0] is the historical single-attempt behaviour.  Retries
    and reconnections are counted as [obda_client_retries_total] /
    [obda_client_reconnects_total].

    Failover: [connect "a.sock,b.sock"] makes the client
    cluster-aware.  Mutations are routed to the member currently
    believed primary; a ["read-only replica"] refusal or a dead
    connection triggers a primary re-resolution ([REPL STATUS] probe
    across members) under the same backoff schedule, counted as
    [obda_client_failovers_total].  Reads rotate away from dead
    members but otherwise stay where they are — replicas serve them. *)

type conn = {
  fd : Unix.file_descr;
  reader : Durable.Io.reader;
}

type t = {
  mutable endpoints : string array;  (** ≥ 1; [active] indexes into it *)
  mutable active : int;
  mutable primary : int option;
      (** endpoint believed to be the cluster primary; [None] until a
          write is redirected or a probe resolves one *)
  mutable hello_version : int option;
      (** re-negotiated on every fresh dial once {!hello} has run — a
          failover mid-BULK must not silently drop back to v1 *)
  retries : int;
  base_delay : float;
  max_delay : float;
  jitter : float;        (** relative: 0.25 = +/-25% of the delay *)
  m_retries : Obs.Counter.t;
  m_reconnects : Obs.Counter.t;
  m_failovers : Obs.Counter.t;
  mutable conn : conn option;
}

let endpoint t = t.endpoints.(t.active)

(** Endpoint syntax accepted by [connect]:
    - ["unix:/path/to.sock"]
    - ["tcp:HOST:PORT"]
    - ["HOST:PORT"] (tcp) or a bare path containing ['/'] (unix). *)
let parse_endpoint spec =
  match String.index_opt spec ':' with
  | Some i when String.sub spec 0 i = "unix" ->
    Result.Ok (Unix.ADDR_UNIX (String.sub spec (i + 1) (String.length spec - i - 1)))
  | _ -> (
    let host_port hp =
      match String.rindex_opt hp ':' with
      | None -> Result.Error (Printf.sprintf "bad endpoint %S (want HOST:PORT)" hp)
      | Some i -> (
        let host = String.sub hp 0 i in
        let port = String.sub hp (i + 1) (String.length hp - i - 1) in
        match int_of_string_opt port with
        | None -> Result.Error ("bad port in endpoint: " ^ hp)
        | Some port -> (
          match
            try Unix.inet_addr_of_string host
            with Failure _ ->
              (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with
          | addr -> Result.Ok (Unix.ADDR_INET (addr, port))
          | exception Not_found -> Result.Error ("unknown host: " ^ host)))
    in
    if String.length spec >= 4 && String.sub spec 0 4 = "tcp:" then
      host_port (String.sub spec 4 (String.length spec - 4))
    else if String.contains spec '/' then Result.Ok (Unix.ADDR_UNIX spec)
    else host_port spec)

let dial spec =
  match parse_endpoint spec with
  | Result.Error _ as e -> e
  | Result.Ok addr -> (
    let domain = Unix.domain_of_sockaddr addr in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Result.Ok { fd; reader = Durable.Io.reader fd }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Result.Error
        (Printf.sprintf "connect %s: %s" spec (Unix.error_message e)))

(** [connect spec] — dial one endpoint, or a comma-separated list of
    them ("a.sock,b.sock,tcp:host:port").  With several endpoints the
    client becomes failover-aware: writes chase the cluster primary
    (re-resolved by probing [REPL STATUS] after a redirect or a dead
    connection), reads stick to the current endpoint and rotate away
    from a dead one.  The first endpoint that accepts the dial becomes
    the initial active one. *)
let connect ?(retries = 0) ?(base_delay = 0.05) ?(max_delay = 2.0)
    ?(jitter = 0.25) ?(registry = Obs.default) spec =
  let endpoints =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
    |> Array.of_list
  in
  if Array.length endpoints = 0 then Result.Error "empty endpoint spec"
  else
    let mk active conn =
      {
        endpoints;
        active;
        primary = None;
        hello_version = None;
        retries;
        base_delay;
        max_delay;
        jitter;
        m_retries = Obs.Registry.counter registry "obda_client_retries_total";
        m_reconnects =
          Obs.Registry.counter registry "obda_client_reconnects_total";
        m_failovers =
          Obs.Registry.counter registry "obda_client_failovers_total";
        conn;
      }
    in
    let rec try_dial i last_err =
      if i >= Array.length endpoints then Result.Error last_err
      else
        match dial endpoints.(i) with
        | Result.Ok conn -> Result.Ok (mk i (Some conn))
        | Result.Error e ->
          if Array.length endpoints > 1 then
            (* failover clients tolerate a dead member at connect time *)
            try_dial (i + 1) e
          else Result.Error e
    in
    try_dial 0 "no endpoints"

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some c ->
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.conn <- None

let close t = drop_conn t

(* -------------------------- one raw exchange ------------------------- *)

let send_conn conn lines =
  let text = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  match Durable.Io.write_string conn.fd text with
  | () -> Result.Ok ()
  | exception Unix.Unix_error (e, fn, _) ->
    Result.Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))

let max_reply_line = 1 lsl 20

let read_reply_conn conn =
  match Durable.Io.read_line conn.reader ~max_line:max_reply_line with
  | None -> Result.Error "connection closed by server"
  | exception Unix.Unix_error (e, fn, _) ->
    Result.Error (Printf.sprintf "%s: %s" fn (Unix.error_message e))
  | Some header -> (
    match Wire.parse_reply_header header with
    | Result.Error _ as e -> e
    | Result.Ok `Busy -> Result.Ok Wire.Busy
    | Result.Ok (`Err m) -> Result.Ok (Wire.Err m)
    | Result.Ok (`Ok n) -> (
      let rec collect k acc =
        if k = 0 then Result.Ok (Wire.Ok (List.rev acc))
        else
          match Durable.Io.read_line conn.reader ~max_line:max_reply_line with
          | None -> Result.Error "truncated reply payload"
          | Some line -> collect (k - 1) (line :: acc)
      in
      collect n []))

(* one blocking request/reply on a raw connection, bypassing the retry
   machinery — used for HELLO replay and endpoint probing *)
let exchange_conn conn req =
  match send_conn conn (Wire.encode_request req) with
  | Result.Error _ as e -> e
  | Result.Ok () -> read_reply_conn conn

(* re-establish after a drop; counted — the initial dial is not.  A
   fresh connection starts at protocol v1, so once [hello] has
   negotiated a version we replay the handshake here: a reconnect (or a
   failover) must not silently downgrade the stream mid-BULK. *)
let ensure_conn t =
  match t.conn with
  | Some c -> Result.Ok c
  | None -> (
    match dial (endpoint t) with
    | Result.Error _ as e -> e
    | Result.Ok c -> (
      Obs.Counter.incr t.m_reconnects;
      let renegotiated =
        match t.hello_version with
        | None -> Result.Ok ()
        | Some v -> (
          match exchange_conn c (Wire.Hello v) with
          | Result.Ok (Wire.Ok _) -> Result.Ok ()
          | Result.Ok (Wire.Err m) -> Result.Error ("HELLO replay: " ^ m)
          | Result.Ok Wire.Busy -> Result.Error "HELLO replay: server busy"
          | Result.Error _ as e -> e)
      in
      match renegotiated with
      | Result.Ok () ->
        t.conn <- Some c;
        Result.Ok c
      | Result.Error _ as e ->
        (try Unix.close c.fd with Unix.Unix_error _ -> ());
        e))

(* ------------------------- failover routing ------------------------- *)

(** Probed view of one endpoint, for routing and for
    [obda_cli query --stats]. *)
type endpoint_state = {
  es_endpoint : string;
  es_role : string option;  (** "primary" / "replica", [None] if down *)
  es_epoch : int;
  es_fence : int;
  es_fenced : bool;
      (** an ex-primary refusing writes: a higher epoch exists
          elsewhere — never a promotion candidate, never a write
          target *)
  es_error : string option;
}

(* one-shot probe over a throwaway connection: HELLO 3 + REPL STATUS.
   The status payload is a single line of [k=v] pairs
   (role/epoch/fence/primary). *)
let probe_endpoint spec =
  match dial spec with
  | Result.Error e ->
    { es_endpoint = spec; es_role = None; es_epoch = -1; es_fence = -1;
      es_fenced = false; es_error = Some e }
  | Result.Ok conn ->
    Fun.protect
      ~finally:(fun () ->
        try Unix.close conn.fd with Unix.Unix_error _ -> ())
      (fun () ->
        let status =
          match exchange_conn conn (Wire.Hello 3) with
          | Result.Error _ as e -> e
          | Result.Ok (Wire.Err m) -> Result.Error ("HELLO: " ^ m)
          | Result.Ok Wire.Busy -> Result.Error "server busy"
          | Result.Ok (Wire.Ok _) -> (
            match exchange_conn conn Wire.Repl_status with
            | Result.Error _ as e -> e
            | Result.Ok (Wire.Ok [ line ]) -> Result.Ok line
            | Result.Ok (Wire.Err m) -> Result.Error m
            | Result.Ok Wire.Busy -> Result.Error "server busy"
            | Result.Ok (Wire.Ok _) -> Result.Error "malformed STATUS reply")
        in
        match status with
        | Result.Error e ->
          { es_endpoint = spec; es_role = None; es_epoch = -1; es_fence = -1;
            es_fenced = false; es_error = Some e }
        | Result.Ok line ->
          let kv =
            String.split_on_char ' ' line
            |> List.filter_map (fun tok ->
                   match String.index_opt tok '=' with
                   | None -> None
                   | Some i ->
                     Some
                       ( String.sub tok 0 i,
                         String.sub tok (i + 1) (String.length tok - i - 1) ))
          in
          let find k = List.assoc_opt k kv in
          let int_of k =
            match find k with
            | None -> -1
            | Some v -> Option.value (int_of_string_opt v) ~default:(-1)
          in
          { es_endpoint = spec;
            es_role = find "role";
            es_epoch = int_of "epoch";
            es_fence = int_of "fence";
            es_fenced = find "fenced" <> None;
            es_error = None })

(** [endpoint_states t] — probe every configured endpoint; surfaced by
    [obda_cli query --stats]. *)
let endpoint_states t =
  Array.to_list (Array.map probe_endpoint t.endpoints)

let switch_to t i =
  if i <> t.active then begin
    drop_conn t;
    t.active <- i;
    Obs.Counter.incr t.m_failovers
  end

let index_of_endpoint t spec =
  let n = Array.length t.endpoints in
  let rec go i = if i >= n then None
    else if t.endpoints.(i) = spec then Some i else go (i + 1) in
  go 0

(* a "read-only replica; primary is <ep>" refusal names the place to go;
   learn endpoints we were not configured with *)
let note_primary_hint t msg =
  let marker = "primary is " in
  match
    let ml = String.length marker in
    let rec find i =
      if i + ml > String.length msg then None
      else if String.sub msg i ml = marker then Some (i + ml)
      else find (i + 1)
    in
    find 0
  with
  | None -> ()
  | Some start ->
    let ep = String.trim (String.sub msg start (String.length msg - start)) in
    if ep <> "" then (
      (match index_of_endpoint t ep with
       | Some _ -> ()
       | None -> t.endpoints <- Array.append t.endpoints [| ep |]);
      t.primary <- index_of_endpoint t ep)

(* probe all members and point [active] at the primary with the highest
   epoch; no-op if none answers as primary (mid-promotion — the caller's
   backoff will land here again) *)
let resolve_primary t =
  let best = ref None in
  Array.iteri
    (fun i ep ->
      let st = probe_endpoint ep in
      (* a fenced ex-primary still advertises role=primary but refuses
         every write — routing there would wedge the client *)
      if st.es_role = Some "primary" && not st.es_fenced then
        match !best with
        | Some (_, e) when e >= st.es_epoch -> ()
        | _ -> best := Some (i, st.es_epoch))
    t.endpoints;
  match !best with
  | None -> ()
  | Some (i, _) ->
    t.primary <- Some i;
    switch_to t i

(* raw access on the current connection (no retry) — the transcript
   tests speak malformed protocol through these on purpose *)

let send_lines t lines =
  match ensure_conn t with
  | Result.Error e -> raise (Sys_error e)
  | Result.Ok conn -> (
    match send_conn conn lines with
    | Result.Ok () -> ()
    | Result.Error e -> raise (Sys_error e))

let read_reply t =
  match t.conn with
  | None -> Result.Error "not connected"
  | Some conn -> read_reply_conn conn

(* ------------------------------ retries ------------------------------ *)

(** Jittered exponential backoff, shared by the retry loop below, the
    failover path and the replication subscriber's reconnect loop. *)
let backoff ~base_delay ~max_delay ~jitter attempt =
  let d = Float.min max_delay (base_delay *. (2. ** float_of_int attempt)) in
  let r = (Random.float 2.0 -. 1.0) *. jitter in
  Float.max 0.0 (d *. (1. +. r))

let backoff_delay t attempt =
  backoff ~base_delay:t.base_delay ~max_delay:t.max_delay ~jitter:t.jitter
    attempt

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(** [request t req] — send one request, read one reply; with
    [retries > 0], transparently retries transport failures and [BUSY]
    sheds, reconnecting as needed.  With several endpoints the same
    retry budget also drives failover: a mutation refused with
    {!Service.read_only_prefix} (or sent into a dead connection)
    re-resolves the cluster primary via [REPL STATUS] probes and is
    retried there, under the same jittered backoff; a read on a dead
    endpoint rotates to the next member. *)
let request t req =
  let lines = Wire.encode_request req in
  let is_write = Service.is_mutation req in
  let multi = Array.length t.endpoints > 1 in
  let rec attempt n =
    (* writes chase the known primary before spending an attempt *)
    (match (is_write, t.primary) with
     | true, Some i when i <> t.active -> switch_to t i
     | _ -> ());
    let outcome =
      match ensure_conn t with
      | Result.Error _ as e -> e
      | Result.Ok conn -> (
        match send_conn conn lines with
        | Result.Error _ as e -> e
        | Result.Ok () -> read_reply_conn conn)
    in
    let retry () =
      Obs.Counter.incr t.m_retries;
      Thread.delay (backoff_delay t n);
      attempt (n + 1)
    in
    match outcome with
    | Result.Ok Wire.Busy when n < t.retries ->
      (* shed by admission control: the connection is fine, just wait *)
      retry ()
    | Result.Ok (Wire.Err m)
      when is_write
           && starts_with ~prefix:Service.read_only_prefix m
           && n < t.retries ->
      (* redirected: this member is (now) a replica *)
      t.primary <- None;
      note_primary_hint t m;
      (match t.primary with
       | Some i when i <> t.active -> switch_to t i
       | Some _ -> ()
       | None ->
         Obs.Counter.incr t.m_failovers;
         drop_conn t;
         resolve_primary t);
      retry ()
    | Result.Ok _ as reply -> reply
    | Result.Error _ when n < t.retries ->
      drop_conn t;
      if multi then
        if is_write then begin
          t.primary <- None;
          resolve_primary t
        end
        else switch_to t ((t.active + 1) mod Array.length t.endpoints);
      retry ()
    | Result.Error _ as e -> e
  in
  attempt 0

(* ------------------------- typed stats access ------------------------ *)

let ok_payload = function
  | Result.Error _ as e -> e
  | Result.Ok Wire.Busy -> Result.Error "server busy"
  | Result.Ok (Wire.Err m) -> Result.Error m
  | Result.Ok (Wire.Ok lines) -> Result.Ok lines

(* one [<metric> <labels> <value>] line of the v2 schema *)
let parse_sample line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [ name; labels; value ] -> (
    match float_of_string_opt value with
    | None -> Result.Error (Printf.sprintf "bad stats value in %S" line)
    | Some v ->
      let key = if labels = "-" then name else name ^ "{" ^ labels ^ "}" in
      Result.Ok (key, v))
  | _ -> Result.Error (Printf.sprintf "bad stats line %S" line)

(** [stats ?session t] — issue [STATS] and parse the versioned reply
    into [(key, value)] pairs, where a labelled metric's key is
    [name{k=v,...}] and an unlabelled one's is just [name].  Fails on a
    schema version other than [stats.version 2] — the caller is typed
    against this vocabulary. *)
let stats ?session t =
  match ok_payload (request t (Wire.Stats session)) with
  | Result.Error _ as e -> e
  | Result.Ok [] -> Result.Error "empty STATS reply"
  | Result.Ok (version :: rest) ->
    if version <> Printf.sprintf "stats.version %d" Service.stats_version then
      Result.Error ("unsupported stats schema: " ^ version)
    else
      let rec go acc = function
        | [] -> Result.Ok (List.rev acc)
        | line :: rest -> (
          match parse_sample line with
          | Result.Error _ as e -> e
          | Result.Ok kv -> go (kv :: acc) rest)
      in
      go [] rest

(** [metrics t] — the Prometheus-style text exposition, as lines. *)
let metrics t = ok_payload (request t Wire.Metrics)

(* --------------------------- protocol v2 ----------------------------- *)

(** [hello ?version t] — negotiate the connection's protocol version.
    Returns [(granted, capabilities)]; the server grants
    [min version its-max].  Bulk ingestion requires a granted version
    ≥ 2 (capability ["bulk"]). *)
let hello ?(version = Wire.max_version) t =
  t.hello_version <- Some version;
  match ok_payload (request t (Wire.Hello version)) with
  | Result.Error _ as e -> e
  | Result.Ok [ line ] -> (
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | v :: caps
      when String.length v >= 2
           && v.[0] = 'v'
           && int_of_string_opt (String.sub v 1 (String.length v - 1)) <> None
      ->
      Result.Ok
        (int_of_string (String.sub v 1 (String.length v - 1)), caps)
    | _ -> Result.Error ("malformed HELLO reply: " ^ line))
  | Result.Ok _ -> Result.Error "malformed HELLO reply"

(** [bulk_load t ~session ?chunk_lines lines] — stream a fact load in
    atomic chunks of [chunk_lines] without materializing the whole
    payload, then close the stream with [BULK END].  The input is
    consumed lazily, so a file can be streamed line by line.  Returns
    [(chunks, facts)] as acknowledged by END.  On a rejected chunk the
    stream is ABORTed and the error reports how many chunks were
    already acked — those are durable and stay (atomicity is per
    chunk).  Chunk requests are set-semantics inserts, so the
    connection's retry policy applies to them safely. *)
let bulk_load t ~session ?(chunk_lines = 1000) (lines : string Seq.t) =
  let chunk_lines = max 1 chunk_lines in
  let send_chunk chunk =
    ok_payload (request t (Wire.Bulk_chunk { session; payload = chunk }))
  in
  let abort () = ignore (request t (Wire.Bulk_abort { session })) in
  let rec take k acc seq =
    if k = 0 then (List.rev acc, seq)
    else
      match Seq.uncons seq with
      | None -> (List.rev acc, Seq.empty)
      | Some (line, rest) -> take (k - 1) (line :: acc) rest
  in
  let rec stream acked seq =
    match take chunk_lines [] seq with
    | [], _ -> (
      match ok_payload (request t (Wire.Bulk_end { session })) with
      | Result.Error _ as e -> e
      | Result.Ok [ summary ] -> (
        match
          String.split_on_char ' ' summary |> List.filter (fun s -> s <> "")
        with
        | [ "chunks"; c; "facts"; f ] -> (
          match (int_of_string_opt c, int_of_string_opt f) with
          | Some c, Some f -> Result.Ok (c, f)
          | _ -> Result.Error ("malformed END summary: " ^ summary))
        | _ -> Result.Error ("malformed END summary: " ^ summary))
      | Result.Ok _ -> Result.Error "malformed END reply")
    | chunk, rest -> (
      match send_chunk chunk with
      | Result.Ok _ -> stream (acked + 1) rest
      | Result.Error e ->
        abort ();
        Result.Error
          (Printf.sprintf "chunk %d rejected (%d chunk(s) acked): %s"
             (acked + 1) acked e))
  in
  stream 0 lines
