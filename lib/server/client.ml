(** A blocking wire-protocol client, shared by [obda_cli query
    --connect], the serve benchmark's closed loop and the transcript
    test.  One request in flight per connection — the protocol has no
    multiplexing, by design. *)

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
}

(** Endpoint syntax accepted by [connect]:
    - ["unix:/path/to.sock"]
    - ["tcp:HOST:PORT"]
    - ["HOST:PORT"] (tcp) or a bare path containing ['/'] (unix). *)
let parse_endpoint spec =
  match String.index_opt spec ':' with
  | Some i when String.sub spec 0 i = "unix" ->
    Result.Ok (Unix.ADDR_UNIX (String.sub spec (i + 1) (String.length spec - i - 1)))
  | _ -> (
    let host_port hp =
      match String.rindex_opt hp ':' with
      | None -> Result.Error (Printf.sprintf "bad endpoint %S (want HOST:PORT)" hp)
      | Some i -> (
        let host = String.sub hp 0 i in
        let port = String.sub hp (i + 1) (String.length hp - i - 1) in
        match int_of_string_opt port with
        | None -> Result.Error ("bad port in endpoint: " ^ hp)
        | Some port -> (
          match
            try Unix.inet_addr_of_string host
            with Failure _ ->
              (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with
          | addr -> Result.Ok (Unix.ADDR_INET (addr, port))
          | exception Not_found -> Result.Error ("unknown host: " ^ host)))
    in
    if String.length spec >= 4 && String.sub spec 0 4 = "tcp:" then
      host_port (String.sub spec 4 (String.length spec - 4))
    else if String.contains spec '/' then Result.Ok (Unix.ADDR_UNIX spec)
    else host_port spec)

let connect spec =
  match parse_endpoint spec with
  | Result.Error _ as e -> e
  | Result.Ok addr -> (
    let domain = Unix.domain_of_sockaddr addr in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () ->
      Result.Ok
        { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Result.Error
        (Printf.sprintf "connect %s: %s" spec (Unix.error_message e)))

let close t =
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_lines t lines =
  List.iter
    (fun line ->
      output_string t.oc line;
      output_char t.oc '\n')
    lines;
  flush t.oc

let read_reply t =
  match input_line t.ic with
  | exception End_of_file -> Result.Error "connection closed by server"
  | header -> (
    match Wire.parse_reply_header header with
    | Result.Error _ as e -> e
    | Result.Ok `Busy -> Result.Ok Wire.Busy
    | Result.Ok (`Err m) -> Result.Ok (Wire.Err m)
    | Result.Ok (`Ok n) -> (
      let rec collect k acc =
        if k = 0 then Result.Ok (Wire.Ok (List.rev acc))
        else
          match input_line t.ic with
          | exception End_of_file -> Result.Error "truncated reply payload"
          | line -> collect (k - 1) (line :: acc)
      in
      collect n []))

(** [request t req] — send one request, read one reply. *)
let request t req =
  match send_lines t (Wire.encode_request req) with
  | () -> read_reply t
  | exception Sys_error e -> Result.Error e

(* ------------------------- typed stats access ------------------------ *)

let ok_payload = function
  | Result.Error _ as e -> e
  | Result.Ok Wire.Busy -> Result.Error "server busy"
  | Result.Ok (Wire.Err m) -> Result.Error m
  | Result.Ok (Wire.Ok lines) -> Result.Ok lines

(* one [<metric> <labels> <value>] line of the v2 schema *)
let parse_sample line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [ name; labels; value ] -> (
    match float_of_string_opt value with
    | None -> Result.Error (Printf.sprintf "bad stats value in %S" line)
    | Some v ->
      let key = if labels = "-" then name else name ^ "{" ^ labels ^ "}" in
      Result.Ok (key, v))
  | _ -> Result.Error (Printf.sprintf "bad stats line %S" line)

(** [stats ?session t] — issue [STATS] and parse the versioned reply
    into [(key, value)] pairs, where a labelled metric's key is
    [name{k=v,...}] and an unlabelled one's is just [name].  Fails on a
    schema version other than [stats.version 2] — the caller is typed
    against this vocabulary. *)
let stats ?session t =
  match ok_payload (request t (Wire.Stats session)) with
  | Result.Error _ as e -> e
  | Result.Ok [] -> Result.Error "empty STATS reply"
  | Result.Ok (version :: rest) ->
    if version <> Printf.sprintf "stats.version %d" Service.stats_version then
      Result.Error ("unsupported stats schema: " ^ version)
    else
      let rec go acc = function
        | [] -> Result.Ok (List.rev acc)
        | line :: rest -> (
          match parse_sample line with
          | Result.Error _ as e -> e
          | Result.Ok kv -> go (kv :: acc) rest)
      in
      go [] rest

(** [metrics t] — the Prometheus-style text exposition, as lines. *)
let metrics t = ok_payload (request t Wire.Metrics)
