(** A bounded least-recently-used cache with hit/miss/eviction counters.

    The cache is a plain polymorphic map (structural key equality via
    [Hashtbl]) threaded on an intrusive doubly-linked list: [find]
    promotes its entry to the front, [put] inserts at the front and
    evicts from the back once over capacity.  All operations are O(1).

    Degenerate capacities are first-class citizens — the serving layer's
    invalidation property is tested at every capacity including these:
    - [capacity = 0] stores nothing: every [find] is a miss, every [put]
      a no-op (counted as an insertion that evicts itself);
    - [capacity = 1] holds exactly the most recently inserted or hit
      entry.

    Not thread-safe; the owner ([Service]) serializes access. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (** towards the front (MRU) *)
  mutable next : ('k, 'v) node option;  (** towards the back (LRU) *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable front : ('k, 'v) node option;
  mutable back : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  insertions : int;
  size : int;
  capacity : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    front = None;
    back = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    insertions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let stats (t : ('k, 'v) t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    insertions = t.insertions;
    size = length t;
    capacity = t.capacity;
  }

(** [hit_rate t] ∈ [0, 1]; 0 when no lookups happened yet. *)
let hit_rate (t : ('k, 'v) t) =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

(* unlink [n] from the list (it must be a member) *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.front <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.front;
  n.prev <- None;
  (match t.front with Some f -> f.prev <- Some n | None -> t.back <- Some n);
  t.front <- Some n

(* physical comparison against the node inside [front], not against a
   freshly allocated [Some n] (which would never be equal) *)
let promote t n =
  match t.front with
  | Some f when f == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let evict_back (t : ('k, 'v) t) =
  match t.back with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table n.key;
    t.evictions <- t.evictions + 1

(** [find t k] returns the cached value and promotes the entry. *)
let find (t : ('k, 'v) t) k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    t.hits <- t.hits + 1;
    promote t n;
    Some n.value
  | None ->
    t.misses <- t.misses + 1;
    None

(** [mem t k] — membership without promotion or counter updates. *)
let mem t k = Hashtbl.mem t.table k

(** [put t k v] inserts or refreshes the binding, evicting the
    least-recently-used entries beyond capacity. *)
let put (t : ('k, 'v) t) k v =
  t.insertions <- t.insertions + 1;
  if t.capacity = 0 then t.evictions <- t.evictions + 1
  else
    match Hashtbl.find_opt t.table k with
    | Some n ->
      n.value <- v;
      promote t n
    | None ->
      let n = { key = k; value = v; prev = None; next = None } in
      Hashtbl.replace t.table k n;
      push_front t n;
      while length t > t.capacity do
        evict_back t
      done

(** [remove t k] drops the binding if present (not counted as an
    eviction: removals are invalidations, not capacity pressure). *)
let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table k

(** [clear t] drops every binding; counters are kept (they describe the
    cache's lifetime, not its current contents). *)
let clear t =
  Hashtbl.reset t.table;
  t.front <- None;
  t.back <- None

(** [keys t] — front (most recent) to back (least recent); for tests. *)
let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.front
