(** A bounded least-recently-used cache with hit/miss/eviction counters.

    The cache is a plain polymorphic map (structural key equality via
    [Hashtbl]) threaded on an intrusive doubly-linked list: [find]
    promotes its entry to the front, [put] inserts at the front and
    evicts from the back once over capacity.  All operations are O(1).

    Degenerate capacities are first-class citizens — the serving layer's
    invalidation property is tested at every capacity including these:
    - [capacity = 0] stores nothing: every [find] is a miss, every [put]
      a no-op (counted as an insertion that evicts itself);
    - [capacity = 1] holds exactly the most recently inserted or hit
      entry.

    Counters can be published into an [Obs] registry: pass
    [~metrics:(registry, labels)] to [create] and the cache registers
    [obda_cache_{hits,misses,evictions,insertions}_total] counters plus
    [obda_cache_{size,capacity}] gauges under those labels (the caller
    picks labels that identify the cache, e.g. [cache=rewrite]).
    [unregister] removes them again when the cache is dropped.

    Not thread-safe; the owner ([Service]) serializes access. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (** towards the front (MRU) *)
  mutable next : ('k, 'v) node option;  (** towards the back (LRU) *)
}

(* handles resolved once at [create]; per-operation updates are one
   atomic increment / gauge store each *)
type obs_handles = {
  o_registry : Obs.registry;
  o_labels : (string * string) list;
  o_hits : Obs.Counter.t;
  o_misses : Obs.Counter.t;
  o_evictions : Obs.Counter.t;
  o_insertions : Obs.Counter.t;
  o_size : Obs.Gauge.t;
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  obs : obs_handles option;
  mutable front : ('k, 'v) node option;
  mutable back : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable insertions : int;
}

let metric_names =
  [
    "obda_cache_hits_total";
    "obda_cache_misses_total";
    "obda_cache_evictions_total";
    "obda_cache_insertions_total";
    "obda_cache_size";
    "obda_cache_capacity";
  ]

let create ?metrics ~capacity () =
  if capacity < 0 then invalid_arg "Lru.create: negative capacity";
  let obs =
    Option.map
      (fun (registry, labels) ->
        let counter name = Obs.Registry.counter registry ~labels name in
        let gauge name = Obs.Registry.gauge registry ~labels name in
        Obs.Gauge.set (gauge "obda_cache_capacity") (float_of_int capacity);
        {
          o_registry = registry;
          o_labels = labels;
          o_hits = counter "obda_cache_hits_total";
          o_misses = counter "obda_cache_misses_total";
          o_evictions = counter "obda_cache_evictions_total";
          o_insertions = counter "obda_cache_insertions_total";
          o_size = gauge "obda_cache_size";
        })
      metrics
  in
  {
    capacity;
    table = Hashtbl.create (max 16 capacity);
    obs;
    front = None;
    back = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    insertions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let obs_count t pick =
  match t.obs with None -> () | Some o -> Obs.Counter.incr (pick o)

let sync_size t =
  match t.obs with
  | None -> ()
  | Some o -> Obs.Gauge.set o.o_size (float_of_int (length t))

(** [unregister t] removes this cache's metrics from its registry (a
    no-op for caches created without [~metrics]); call when the cache's
    owner goes away, or its last gauge values would linger forever. *)
let unregister t =
  match t.obs with
  | None -> ()
  | Some o ->
    List.iter
      (fun name -> Obs.Registry.remove o.o_registry ~labels:o.o_labels name)
      metric_names

(** [hit_rate t] ∈ [0, 1]; 0 when no lookups happened yet. *)
let hit_rate (t : ('k, 'v) t) =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

(* unlink [n] from the list (it must be a member) *)
let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.front <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.back <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.front;
  n.prev <- None;
  (match t.front with Some f -> f.prev <- Some n | None -> t.back <- Some n);
  t.front <- Some n

(* physical comparison against the node inside [front], not against a
   freshly allocated [Some n] (which would never be equal) *)
let promote t n =
  match t.front with
  | Some f when f == n -> ()
  | _ ->
    unlink t n;
    push_front t n

let evict_back (t : ('k, 'v) t) =
  match t.back with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table n.key;
    t.evictions <- t.evictions + 1;
    obs_count t (fun o -> o.o_evictions)

(** [find t k] returns the cached value and promotes the entry. *)
let find (t : ('k, 'v) t) k =
  match Hashtbl.find_opt t.table k with
  | Some n ->
    t.hits <- t.hits + 1;
    obs_count t (fun o -> o.o_hits);
    promote t n;
    Some n.value
  | None ->
    t.misses <- t.misses + 1;
    obs_count t (fun o -> o.o_misses);
    None

(** [mem t k] — membership without promotion or counter updates. *)
let mem t k = Hashtbl.mem t.table k

(** [put t k v] inserts or refreshes the binding, evicting the
    least-recently-used entries beyond capacity. *)
let put (t : ('k, 'v) t) k v =
  t.insertions <- t.insertions + 1;
  obs_count t (fun o -> o.o_insertions);
  (if t.capacity = 0 then begin
     t.evictions <- t.evictions + 1;
     obs_count t (fun o -> o.o_evictions)
   end
   else
     match Hashtbl.find_opt t.table k with
     | Some n ->
       n.value <- v;
       promote t n
     | None ->
       let n = { key = k; value = v; prev = None; next = None } in
       Hashtbl.replace t.table k n;
       push_front t n;
       while length t > t.capacity do
         evict_back t
       done);
  sync_size t

(** [remove t k] drops the binding if present (not counted as an
    eviction: removals are invalidations, not capacity pressure). *)
let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table k;
    sync_size t

(** [clear t] drops every binding; counters are kept (they describe the
    cache's lifetime, not its current contents). *)
let clear t =
  Hashtbl.reset t.table;
  t.front <- None;
  t.back <- None;
  sync_size t

(** [keys t] — front (most recent) to back (least recent); for tests. *)
let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) n.next
  in
  go [] t.front
