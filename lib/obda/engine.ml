(** The OBDA engine: ties ontology, mappings and database into the
    query-answering service of Section 1 — "query answering can be
    enriched by exploiting the constraints that can be expressed by the
    ontology".

    The certain-answers pipeline is the textbook one:
    {v  UCQ over ontology --(PerfectRef)--> UCQ over virtual ABox
        --(mapping unfolding)--> UCQ over database --(evaluate)--> answers  v}

    A materialized-ABox mode short-circuits the mapping layer for
    standalone (database-less) knowledge bases.

    An engine amortizes its TBox-level work: the classification and the
    prepared rewriting rule bases (normalization + rule indexing) are
    computed lazily, once, and shared by every subsequent call — in
    particular the consistency check, which rewrites one violation query
    per negative inclusion, no longer re-prepares the TBox for each. *)

open Dllite

let log_src = Logs.Src.create "obda.engine" ~doc:"OBDA query answering"

module Log = (val Logs.src_log log_src : Logs.LOG)

type rewriting_mode =
  | Perfect_ref  (** vanilla PerfectRef over told axioms *)
  | Presto       (** classification-aided rule base (ablation A4) *)

let string_of_mode = function Perfect_ref -> "perfectref" | Presto -> "presto"

type t = {
  tbox : Tbox.t;
  mappings : Mapping.t;
  database : Database.t;
  mode : rewriting_mode;
  join_threshold : int option;
      (* binding-count pivot between nested-loop and hash joins,
         threaded into every evaluation; [None] = [Cq]'s default *)
  constraints : Constraints.t list;
      (* functionality / identification constraints, checked at the
         data level (see [Integrity]) *)
  cls : Quonto.Classify.t Lazy.t;
      (* the shared classification: forced at most once per engine *)
  prepared : Rewrite.prepared Lazy.t;
      (* the mode's rule base, shared by rewriting and consistency *)
}

let assemble ?algorithm ?jobs ?join_threshold ~mode ~constraints ~tbox ~mappings
    ~database () =
  {
    tbox;
    mappings;
    database;
    mode;
    join_threshold;
    constraints;
    cls = lazy (Quonto.Classify.classify ?algorithm ?jobs tbox);
    prepared =
      (match mode with
       | Perfect_ref -> lazy (Rewrite.prepare tbox)
       | Presto -> lazy (Rewrite.prepare_presto tbox));
  }

(** [create ?mode ?constraints ?algorithm ?jobs ?join_threshold ~tbox
    ~mappings ~database ()] assembles a system.  [algorithm] / [jobs]
    select the closure algorithm and domain-pool width for the (lazy)
    classification; [join_threshold] pins the executor's
    nested-loop/hash pivot — the serving layer threads its
    [Service.Config] knobs through here.  @raise Invalid_argument when
    the constraints violate the DL-Lite_A admissibility condition
    w.r.t. [tbox]. *)
let create ?(mode = Perfect_ref) ?(constraints = []) ?algorithm ?jobs
    ?join_threshold ~tbox ~mappings ~database () =
  (match Constraints.well_formed tbox constraints with
   | [] -> ()
   | v :: _ -> invalid_arg ("Engine.create: " ^ v.Constraints.reason));
  assemble ?algorithm ?jobs ?join_threshold ~mode ~constraints ~tbox ~mappings
    ~database ()

(** [of_abox ?mode tbox abox] wraps a materialized ABox as a degenerate
    OBDA system: one identity-style mapping per named predicate is not
    even needed — the ABox is loaded as ontology-level relations in a
    private database and queried directly. *)
let of_abox ?(mode = Perfect_ref) tbox abox =
  let database = Database.create () in
  List.iter
    (function
      | Abox.Concept_assert (a, c) -> Database.insert database (Vabox.concept_pred a) [ c ]
      | Abox.Role_assert (p, c1, c2) ->
        Database.insert database (Vabox.role_pred p) [ c1; c2 ]
      | Abox.Attr_assert (u, c, v) ->
        Database.insert database (Vabox.attr_pred u) [ c; v ])
    (Abox.assertions abox);
  assemble ~mode ~constraints:[] ~tbox ~mappings:[] ~database ()

let tbox t = t.tbox
let mappings t = t.mappings
let database t = t.database
let mode t = t.mode

let rewrite t ucq = Rewrite.apply (Lazy.force t.prepared) ucq

(** [ontology_facts t] is the fact source seen at the ontology level:
    through the mappings when present, directly from the database
    otherwise (the [of_abox] case loads ontology predicates into the
    database under their [Vabox] names). *)
let ontology_facts t =
  if t.mappings = [] then Database.facts t.database
  else Vabox.facts_of_abox (Mapping.materialize t.mappings t.database)

(** [compile t ucq] is the data-independent half of the pipeline: the
    rewriting of [ucq], unfolded through the mappings when present.  The
    result is a UCQ over the database schema, ready for
    [evaluate_compiled] — and, being a pure function of (TBox, mappings,
    mode, query), safely cacheable across data updates (the serving
    layer does exactly that). *)
let compile t ucq =
  let rewritten, stats = rewrite t ucq in
  Log.debug (fun m ->
      m "compile: rewriting has %d disjuncts" stats.Rewrite.output_size);
  if t.mappings = [] then rewritten
  else begin
    let unfolded = Mapping.unfold_ucq t.mappings rewritten in
    Log.debug (fun m ->
        m "compile: %d disjuncts after unfolding" (List.length unfolded));
    unfolded
  end

(** [evaluate_compiled t ucq] — the data-dependent half: evaluate a
    compiled UCQ over the current database contents with the cost-based
    executor, planning against the database's persistent pattern
    indexes (built lazily on first probe, maintained incrementally by
    [Database.insert] — so cold evaluations after a data update pay no
    index rebuild). *)
let evaluate_compiled t ucq =
  Obs.span "eval" (fun () ->
      Cq.evaluate_ucq_src ?join_threshold:t.join_threshold
        ~source:(Database.source t.database) ucq)

(** [certain_answers t q] — the full pipeline.  With mappings installed
    the rewriting is *unfolded* and evaluated over the raw database;
    without, it is evaluated over the loaded ABox relations. *)
let certain_answers t q = evaluate_compiled t (compile t [ q ])

(** [certain_answers_ucq t ucq] — same for a union query. *)
let certain_answers_ucq t ucq = evaluate_compiled t (compile t ucq)

(* the shared rewriter handed to [Consistency]: violation queries go
   through the same prepared rule base as user queries *)
let shared_rewrite t ucq = fst (Rewrite.apply (Lazy.force t.prepared) ucq)

(** [consistent t] — KB consistency via rewritten violation queries,
    sharing the engine's prepared rule base (and hence, in [Presto]
    mode, its classification) instead of re-preparing per negative
    inclusion. *)
let consistent t =
  Consistency.consistent ~rewrite:(shared_rewrite t) t.tbox
    ~facts:(ontology_facts t)

(** [violations t] — the full violation report. *)
let violations t =
  Consistency.check ~rewrite:(shared_rewrite t) t.tbox
    ~facts:(ontology_facts t)

(** [integrity_violations t] — functionality / identification
    violations over the retrieved facts (empty when no constraints are
    installed). *)
let integrity_violations t = Integrity.check ~facts:(ontology_facts t) t.constraints

(** [classification t] — intensional service pass-through: the ontology
    engineer's design-quality check runs on the same system handle,
    computed once per engine and shared across calls. *)
let classification t = Lazy.force t.cls
