(** Bounded chase of an ABox under the positive inclusions of a DL-Lite
    TBox: the canonical-model construction, materialized to a finite
    depth.

    Used as the *independent oracle* for certain-answer tests: for a CQ
    [q] with [n] atoms, any homomorphism of [q] into the (possibly
    infinite) canonical model touches labelled nulls at distance at most
    [n] from the ABox individuals, so chasing to depth [n] and keeping
    only all-named answer tuples computes exactly the certain answers
    that PerfectRef + evaluation must produce. *)

open Dllite

type fact =
  | F_concept of string * string          (* A(t) *)
  | F_role of string * string * string    (* P(t1, t2) *)
  | F_attr of string * string * string    (* U(t, v) *)

module Fact_set = Set.Make (struct
  type t = fact

  let compare = Stdlib.compare
end)

type t = {
  facts : Fact_set.t;
  null_depth : (string, int) Hashtbl.t;  (* labelled null -> creation depth *)
}

let null_prefix = "_:n"
let is_null term = String.length term >= 3 && String.sub term 0 3 = null_prefix

(** Raised when the chase exceeds its labelled-null budget; callers that
    use the chase as a test oracle treat this as "instance too wide to
    check" rather than as a verdict. *)
exception Overflow

(* Membership of a term in a basic concept, under the current facts. *)
let in_basic facts b t =
  match b with
  | Syntax.Atomic a -> Fact_set.mem (F_concept (a, t)) facts
  | Syntax.Exists (Syntax.Direct p) ->
    Fact_set.exists (function F_role (p', t1, _) -> p' = p && t1 = t | _ -> false) facts
  | Syntax.Exists (Syntax.Inverse p) ->
    Fact_set.exists (function F_role (p', _, t2) -> p' = p && t2 = t | _ -> false) facts
  | Syntax.Attr_domain u ->
    Fact_set.exists (function F_attr (u', t', _) -> u' = u && t' = t | _ -> false) facts

let terms_of facts =
  Fact_set.fold
    (fun f acc ->
      match f with
      | F_concept (_, t) -> t :: acc
      | F_role (_, t1, t2) -> t1 :: t2 :: acc
      | F_attr (_, t, _) -> t :: acc)
    facts []
  |> List.sort_uniq compare

(** [run ?max_depth tbox abox] chases [abox] under the positive
    inclusions of [tbox], creating labelled nulls up to [max_depth]
    generations away from the named individuals (default 3). *)
let run ?(max_depth = 3) ?(max_nulls = 2_000) tbox abox =
  Obs.span "chase" @@ fun () ->
  let null_depth = Hashtbl.create 32 in
  let next_null = ref 0 in
  let fresh_null depth =
    if !next_null >= max_nulls then raise Overflow;
    let n = Printf.sprintf "%s%d" null_prefix !next_null in
    incr next_null;
    Hashtbl.replace null_depth n depth;
    n
  in
  let depth_of t =
    if is_null t then Option.value ~default:max_depth (Hashtbl.find_opt null_depth t)
    else 0
  in
  let facts =
    List.fold_left
      (fun acc assertion ->
        match assertion with
        | Abox.Concept_assert (a, c) -> Fact_set.add (F_concept (a, c)) acc
        | Abox.Role_assert (p, c1, c2) -> Fact_set.add (F_role (p, c1, c2)) acc
        | Abox.Attr_assert (u, c, v) -> Fact_set.add (F_attr (u, c, v)) acc)
      Fact_set.empty (Abox.assertions abox)
  in
  let positives = Tbox.positive_inclusions tbox in
  let facts = ref facts in
  let changed = ref true in
  let add f =
    if not (Fact_set.mem f !facts) then begin
      facts := Fact_set.add f !facts;
      changed := true
    end
  in
  (* One chase round: apply every PI everywhere.  Existential rules only
     fire when no witness exists yet (restricted chase) and the source
     term is shallow enough. *)
  let apply_pi ax =
    let members b = List.filter (fun t -> in_basic !facts b t) (terms_of !facts) in
    match ax with
    | Syntax.Concept_incl (b, Syntax.C_basic (Syntax.Atomic a)) ->
      List.iter (fun t -> add (F_concept (a, t))) (members b)
    | Syntax.Concept_incl (b, Syntax.C_basic (Syntax.Exists q)) ->
      List.iter
        (fun t ->
          if
            (not (in_basic !facts (Syntax.Exists q) t))
            && depth_of t < max_depth
          then begin
            let n = fresh_null (depth_of t + 1) in
            match q with
            | Syntax.Direct p -> add (F_role (p, t, n))
            | Syntax.Inverse p -> add (F_role (p, n, t))
          end)
        (members b)
    | Syntax.Concept_incl (b, Syntax.C_basic (Syntax.Attr_domain u)) ->
      List.iter
        (fun t ->
          if
            (not (in_basic !facts (Syntax.Attr_domain u) t))
            && depth_of t < max_depth
          then add (F_attr (u, t, fresh_null (depth_of t + 1))))
        (members b)
    | Syntax.Concept_incl (b, Syntax.C_exists_qual (q, a)) ->
      List.iter
        (fun t ->
          (* witness must be both a Q-successor and in A *)
          let has_witness =
            Fact_set.exists
              (function
                | F_role (p', t1, t2) -> (
                  match q with
                  | Syntax.Direct p ->
                    p' = p && t1 = t && Fact_set.mem (F_concept (a, t2)) !facts
                  | Syntax.Inverse p ->
                    p' = p && t2 = t && Fact_set.mem (F_concept (a, t1)) !facts)
                | _ -> false)
              !facts
          in
          if (not has_witness) && depth_of t < max_depth then begin
            let n = fresh_null (depth_of t + 1) in
            (match q with
             | Syntax.Direct p -> add (F_role (p, t, n))
             | Syntax.Inverse p -> add (F_role (p, n, t)));
            add (F_concept (a, n))
          end)
        (members b)
    | Syntax.Role_incl (q1, Syntax.R_role q2) ->
      let pairs_of = function
        | Syntax.Direct p ->
          Fact_set.fold
            (fun f acc ->
              match f with F_role (p', t1, t2) when p' = p -> (t1, t2) :: acc | _ -> acc)
            !facts []
        | Syntax.Inverse p ->
          Fact_set.fold
            (fun f acc ->
              match f with F_role (p', t1, t2) when p' = p -> (t2, t1) :: acc | _ -> acc)
            !facts []
      in
      List.iter
        (fun (t1, t2) ->
          match q2 with
          | Syntax.Direct p -> add (F_role (p, t1, t2))
          | Syntax.Inverse p -> add (F_role (p, t2, t1)))
        (pairs_of q1)
    | Syntax.Attr_incl (u1, Syntax.A_attr u2) ->
      Fact_set.iter
        (function
          | F_attr (u, t, v) when u = u1 -> add (F_attr (u2, t, v))
          | _ -> ())
        !facts
    | Syntax.Concept_incl (_, Syntax.C_neg _)
    | Syntax.Role_incl (_, Syntax.R_neg _)
    | Syntax.Attr_incl (_, Syntax.A_neg _) -> ()
  in
  while !changed do
    changed := false;
    List.iter apply_pi positives
  done;
  { facts = !facts; null_depth }

(** [facts_fn t] exposes the chased instance as a fact source, tagging
    predicates exactly like [Vabox]. *)
let facts_fn t =
  let table = Hashtbl.create 64 in
  let add pred row =
    let prev = Option.value ~default:[] (Hashtbl.find_opt table pred) in
    Hashtbl.replace table pred (row :: prev)
  in
  Fact_set.iter
    (function
      | F_concept (a, x) -> add (Vabox.concept_pred a) [ x ]
      | F_role (p, x, y) -> add (Vabox.role_pred p) [ x; y ]
      | F_attr (u, x, v) -> add (Vabox.attr_pred u) [ x; v ])
    t.facts;
  fun pred -> Option.value ~default:[] (Hashtbl.find_opt table pred)

(** [certain_answers ?max_depth tbox abox q] — oracle certain answers of
    [q]: evaluate over the chase and keep the tuples built from named
    individuals only. *)
let certain_answers ?max_depth ?max_nulls tbox abox q =
  let depth =
    match max_depth with Some d -> d | None -> List.length q.Cq.body + 1
  in
  let chase = run ~max_depth:depth ?max_nulls tbox abox in
  Cq.evaluate ~facts:(facts_fn chase) q
  |> List.filter (fun tuple -> not (List.exists is_null tuple))

(** [violates_ni tbox abox] — does the chased instance violate a told
    negative inclusion?  (KB inconsistency oracle.)

    A null's type set is fixed by its creating axiom, so along any
    branch the creating axioms repeat after at most #existential-axioms
    steps; a violation at a deeper null is therefore mirrored by one at
    depth ≤ that bound. *)
let violates_ni tbox abox =
  let existentials =
    List.length
      (List.filter
         (function
           | Syntax.Concept_incl
               (_, (Syntax.C_basic (Syntax.Exists _ | Syntax.Attr_domain _)
                   | Syntax.C_exists_qual _)) -> true
           | _ -> false)
         (Tbox.axioms tbox))
  in
  let chase = run ~max_depth:(existentials + 2) tbox abox in
  let facts = chase.facts in
  let holds b t = in_basic facts b t in
  let role_pairs q =
    match q with
    | Syntax.Direct p ->
      Fact_set.fold
        (fun f acc ->
          match f with F_role (p', t1, t2) when p' = p -> (t1, t2) :: acc | _ -> acc)
        facts []
    | Syntax.Inverse p ->
      Fact_set.fold
        (fun f acc ->
          match f with F_role (p', t1, t2) when p' = p -> (t2, t1) :: acc | _ -> acc)
        facts []
  in
  List.exists
    (fun ax ->
      match ax with
      | Syntax.Concept_incl (b1, Syntax.C_neg b2) ->
        List.exists (fun t -> holds b1 t && holds b2 t) (terms_of facts)
      | Syntax.Role_incl (q1, Syntax.R_neg q2) ->
        let p2 = role_pairs q2 in
        List.exists (fun pr -> List.mem pr p2) (role_pairs q1)
      | Syntax.Attr_incl (u1, Syntax.A_neg u2) ->
        Fact_set.exists
          (function
            | F_attr (u, t, v) when u = u1 -> Fact_set.mem (F_attr (u2, t, v)) facts
            | _ -> false)
          facts
      | Syntax.Concept_incl (_, (Syntax.C_basic _ | Syntax.C_exists_qual _))
      | Syntax.Role_incl (_, Syntax.R_role _)
      | Syntax.Attr_incl (_, Syntax.A_attr _) -> false)
    (Tbox.negative_inclusions tbox)
