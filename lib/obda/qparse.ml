(** Text syntax for queries and mapping specifications.

    Queries:   [x, y <- worksFor(x, y), Employee(x), dept(x, "R&D")]
    Mappings:  one per line, ontology head on the left:
               [map Employee(id) <- t_emp(id, n, co)]

    Identifiers are variables; double-quoted tokens are constants.
    Ontology predicate names are sort-tagged against the TBox signature
    ([c$]/[r$]/[a$], see {!Vabox}); unknown predicate names are treated
    as database relations. *)

open Dllite

exception Parse_error of string

let fail fmt = Format.kasprintf (fun m -> raise (Parse_error m)) fmt

(* --- tokenizing a term list "x, y, \"lit\"" -------------------------- *)

let parse_term s =
  let s = String.trim s in
  if s = "" then fail "empty term"
  else if s.[0] = '"' then
    if String.length s >= 2 && s.[String.length s - 1] = '"' then
      Cq.Const (String.sub s 1 (String.length s - 2))
    else fail "unterminated constant %s" s
  else Cq.Var s

(* split "p(a, b), q(c)" into atom chunks, respecting parentheses *)
let split_atoms body =
  let chunks = ref [] in
  let buf = Buffer.create 32 in
  let depth = ref 0 in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        incr depth;
        Buffer.add_char buf c
      | ')' ->
        decr depth;
        Buffer.add_char buf c
      | ',' when !depth = 0 ->
        chunks := Buffer.contents buf :: !chunks;
        Buffer.clear buf
      | c -> Buffer.add_char buf c)
    body;
  if String.trim (Buffer.contents buf) <> "" then
    chunks := Buffer.contents buf :: !chunks;
  List.rev_map String.trim !chunks

let parse_atom ~signature chunk =
  match String.index_opt chunk '(' with
  | Some i when String.length chunk > 1 && chunk.[String.length chunk - 1] = ')' ->
    let pred = String.trim (String.sub chunk 0 i) in
    let args_text = String.sub chunk (i + 1) (String.length chunk - i - 2) in
    let args =
      if String.trim args_text = "" then []
      else List.map parse_term (String.split_on_char ',' args_text)
    in
    let tagged =
      if Signature.mem_concept pred signature then Vabox.concept_pred pred
      else if Signature.mem_role pred signature then Vabox.role_pred pred
      else if Signature.mem_attribute pred signature then Vabox.attr_pred pred
      else pred
    in
    Cq.atom tagged args
  | _ -> fail "malformed atom: %s" chunk

let split_arrow text =
  (* find the first "<-" at depth 0 *)
  let n = String.length text in
  let rec go i depth =
    if i + 1 >= n then None
    else
      match text.[i] with
      | '(' -> go (i + 1) (depth + 1)
      | ')' -> go (i + 1) (depth - 1)
      | '<' when depth = 0 && text.[i + 1] = '-' ->
        Some (String.sub text 0 i, String.sub text (i + 2) (n - i - 2))
      | _ -> go (i + 1) depth
  in
  go 0 0

(** [parse_query ~signature text] parses [vars <- atoms].
    @raise Parse_error on malformed input. *)
let parse_query ~signature text =
  match split_arrow text with
  | None -> fail "expected ANSWER_VARS <- ATOMS"
  | Some (head, body) ->
    let answer_vars =
      String.split_on_char ',' head |> List.map String.trim
      |> List.filter (fun v -> v <> "")
    in
    let atoms = List.map (parse_atom ~signature) (split_atoms body) in
    (try Cq.make answer_vars atoms
     with Invalid_argument m -> fail "%s" m)

(** [parse_mappings ~signature text] parses a mapping file: one
    [map HEAD <- ATOMS] line per mapping ([#] comments, blank lines
    skipped).  Head predicates must be in the ontology signature. *)
let parse_mappings ~signature text =
  let parse_line line_no raw =
    let line = String.trim raw in
    if line = "" || line.[0] = '#' then None
    else if String.length line > 4 && String.sub line 0 4 = "map " then begin
      let rest = String.sub line 4 (String.length line - 4) in
      match split_arrow rest with
      | None -> fail "line %d: expected map HEAD <- ATOMS" line_no
      | Some (head_text, body) ->
        let head_atom = parse_atom ~signature (String.trim head_text) in
        let body_atoms = List.map (parse_atom ~signature) (split_atoms body) in
        let head_vars =
          List.filter_map
            (function Cq.Var v -> Some v | Cq.Const _ -> None)
            head_atom.Cq.args
          |> List.sort_uniq compare
        in
        let source =
          try Cq.make head_vars body_atoms
          with Invalid_argument m -> fail "line %d: %s" line_no m
        in
        let strip p = String.sub p 2 (String.length p - 2) in
        let target =
          match head_atom.Cq.args with
          | [ t ] when String.length head_atom.Cq.pred > 2
                       && String.sub head_atom.Cq.pred 0 2 = "c$" ->
            Mapping.Concept_head (strip head_atom.Cq.pred, t)
          | [ t1; t2 ] when String.length head_atom.Cq.pred > 2
                            && String.sub head_atom.Cq.pred 0 2 = "r$" ->
            Mapping.Role_head (strip head_atom.Cq.pred, t1, t2)
          | [ t1; t2 ] when String.length head_atom.Cq.pred > 2
                            && String.sub head_atom.Cq.pred 0 2 = "a$" ->
            Mapping.Attr_head (strip head_atom.Cq.pred, t1, t2)
          | _ ->
            fail "line %d: head %s is not an ontology predicate of the right arity"
              line_no head_atom.Cq.pred
        in
        Some (Mapping.make ~source ~target)
    end
    else fail "line %d: expected a map line" line_no
  in
  String.split_on_char '\n' text
  |> List.mapi (fun i raw -> parse_line (i + 1) raw)
  |> List.filter_map Fun.id

(** [parse_facts text] parses ground facts, one per line:
    [rel(a, b, c)] (bare arguments are constants here; [#] comments and
    blank lines skipped).  Pure: raises [Parse_error] on the first
    malformed line without any side effect, so callers can load the
    returned rows atomically — all or nothing. *)
let parse_facts text =
  String.split_on_char '\n' text
  |> List.mapi (fun i raw ->
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line '(' with
           | Some j when line.[String.length line - 1] = ')' ->
             let rel = String.trim (String.sub line 0 j) in
             let args_text = String.sub line (j + 1) (String.length line - j - 2) in
             (* split on commas outside double quotes *)
             let chunks = ref [] in
             let buf = Buffer.create 16 in
             let in_quotes = ref false in
             String.iter
               (fun c ->
                 match c with
                 | '"' ->
                   in_quotes := not !in_quotes;
                   Buffer.add_char buf c
                 | ',' when not !in_quotes ->
                   chunks := Buffer.contents buf :: !chunks;
                   Buffer.clear buf
                 | c -> Buffer.add_char buf c)
               args_text;
             chunks := Buffer.contents buf :: !chunks;
             let row =
               List.rev_map
                 (fun a ->
                   let a = String.trim a in
                   if String.length a >= 2 && a.[0] = '"' then
                     String.sub a 1 (String.length a - 2)
                   else a)
                 !chunks
             in
             Some (rel, row)
           | _ -> fail "line %d: expected rel(arg, ...)" (i + 1))
  |> List.filter_map Fun.id

(** [load_facts db text] loads [parse_facts text] into [db]; the parse
    completes before the first insert, so a [Parse_error] leaves [db]
    untouched. *)
let load_facts db text =
  List.iter (fun (rel, row) -> Database.insert db rel row) (parse_facts text)
