(** UCQ rewriting for DL-Lite_R: the PerfectRef algorithm, plus a
    classification-aided variant in the spirit of Presto (the paper's
    Section 5 notes that classification "can be crucial for query
    answering, as for example happens in the Presto algorithm ...
    currently implemented in the DL-Lite reasoner QuOnto").

    Qualified existentials are handled by the standard normalization:
    each axiom [B ⊑ ∃Q.A] becomes a fresh sub-role [w ⊑ Q] with
    [∃w⁻ ⊑ A] and [B ⊑ ∃w].  The fresh roles have no data, so disjuncts
    still mentioning them after saturation simply evaluate to ∅. *)

open Dllite

let log_src = Logs.Src.create "obda.rewrite" ~doc:"UCQ rewriting (PerfectRef/Presto)"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Normalization                                                       *)
(* ------------------------------------------------------------------ *)

let fresh_role_prefix = "w$"

(** [normalize tbox] eliminates qualified existential right-hand sides;
    the result is a conservative extension over the original signature. *)
let normalize tbox =
  let counter = ref 0 in
  let axioms =
    List.concat_map
      (fun ax ->
        match ax with
        | Syntax.Concept_incl (b, Syntax.C_exists_qual (q, a)) ->
          let w = Printf.sprintf "%s%d" fresh_role_prefix !counter in
          incr counter;
          [
            Syntax.Role_incl (Syntax.Direct w, Syntax.R_role q);
            Syntax.Concept_incl
              (Syntax.Exists (Syntax.Inverse w), Syntax.C_basic (Syntax.Atomic a));
            Syntax.Concept_incl (b, Syntax.C_basic (Syntax.Exists (Syntax.Direct w)));
          ]
        | _ -> [ ax ])
      (Tbox.axioms tbox)
  in
  Tbox.of_axioms ~signature:(Tbox.signature tbox) axioms

(* ------------------------------------------------------------------ *)
(* Canonical form of CQs (for termination of the saturation loop)      *)
(* ------------------------------------------------------------------ *)

let canonicalize q =
  (* sort atoms with variable names blinded, rename non-answer
     variables in traversal order, then sort for set-comparison *)
  let blind_term = function
    | Cq.Const c -> "k:" ^ c
    | Cq.Var v -> if List.mem v q.Cq.answer_vars then "a:" ^ v else "v:_"
  in
  let blind_key a = (a.Cq.pred, List.map blind_term a.Cq.args) in
  let atoms = List.sort (fun a b -> compare (blind_key a) (blind_key b)) q.Cq.body in
  let renaming = Hashtbl.create 8 in
  let next = ref 0 in
  let rename_term = function
    | Cq.Const _ as t -> t
    | Cq.Var v when List.mem v q.Cq.answer_vars -> Cq.Var v
    | Cq.Var v -> (
      match Hashtbl.find_opt renaming v with
      | Some v' -> Cq.Var v'
      | None ->
        let v' = Printf.sprintf "v%d" !next in
        incr next;
        Hashtbl.add renaming v v';
        Cq.Var v')
  in
  let atoms =
    List.map (fun a -> { a with Cq.args = List.map rename_term a.Cq.args }) atoms
  in
  let atoms = List.sort_uniq Cq.compare_atom atoms in
  { q with Cq.body = atoms }

(* ------------------------------------------------------------------ *)
(* Atom-level rewriting steps                                          *)
(* ------------------------------------------------------------------ *)

type pi_index = {
  (* all entailed-or-told PIs, keyed by what they can rewrite *)
  concept_into : (string, Syntax.basic list) Hashtbl.t;
      (* A ↦ Bs with B ⊑ A *)
  exists_into : (Syntax.role, Syntax.basic list) Hashtbl.t;
      (* Q ↦ Bs with B ⊑ ∃Q *)
  attr_domain_into : (string, Syntax.basic list) Hashtbl.t;
      (* U ↦ Bs with B ⊑ δ(U) *)
  role_into : (string, Syntax.role list) Hashtbl.t;
      (* P ↦ Qs with Q ⊑ P  (left-hand roles, with orientation) *)
  attr_into : (string, string list) Hashtbl.t;  (* U ↦ Vs with V ⊑ U *)
}

let add_to tbl k v =
  let prev = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
  if not (List.mem v prev) then Hashtbl.replace tbl k (v :: prev)

(** [index_told tbox] indexes the told positive inclusions of a
    (normalized) TBox — the vanilla PerfectRef rule base. *)
let index_told tbox =
  let idx =
    {
      concept_into = Hashtbl.create 64;
      exists_into = Hashtbl.create 64;
      attr_domain_into = Hashtbl.create 16;
      role_into = Hashtbl.create 64;
      attr_into = Hashtbl.create 16;
    }
  in
  List.iter
    (fun ax ->
      match ax with
      | Syntax.Concept_incl (b, Syntax.C_basic (Syntax.Atomic a)) ->
        add_to idx.concept_into a b
      | Syntax.Concept_incl (b, Syntax.C_basic (Syntax.Exists q)) ->
        add_to idx.exists_into q b
      | Syntax.Concept_incl (b, Syntax.C_basic (Syntax.Attr_domain u)) ->
        add_to idx.attr_domain_into u b
      | Syntax.Role_incl (q1, Syntax.R_role q2) ->
        (* orient on the base name of the right-hand role *)
        (match q2 with
         | Syntax.Direct p -> add_to idx.role_into p q1
         | Syntax.Inverse p -> add_to idx.role_into p (Syntax.role_inverse q1))
      | Syntax.Attr_incl (u1, Syntax.A_attr u2) -> add_to idx.attr_into u2 u1
      | Syntax.Concept_incl (_, (Syntax.C_neg _ | Syntax.C_exists_qual _))
      | Syntax.Role_incl (_, Syntax.R_neg _)
      | Syntax.Attr_incl (_, Syntax.A_neg _) -> ())
    (Tbox.axioms tbox);
  idx

(** [index_classified tbox] indexes the *entailed* positive inclusions,
    read off the digraph classification — the Presto-style rule base.
    One application step then jumps an entire subsumption chain, so the
    saturation converges in far fewer rounds (ablation A4). *)
let index_classified tbox =
  let cls = Quonto.Classify.classify tbox in
  let idx =
    {
      concept_into = Hashtbl.create 64;
      exists_into = Hashtbl.create 64;
      attr_domain_into = Hashtbl.create 16;
      role_into = Hashtbl.create 64;
      attr_into = Hashtbl.create 16;
    }
  in
  let subsumees_of_basic b =
    List.filter_map
      (function Syntax.E_concept b' -> Some b' | _ -> None)
      (Quonto.Classify.subsumees cls (Syntax.E_concept b))
  in
  let signature = Tbox.signature tbox in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Syntax.equal_basic b (Syntax.Atomic a)) then
            add_to idx.concept_into a b)
        (subsumees_of_basic (Syntax.Atomic a)))
    (Signature.concepts signature);
  List.iter
    (fun p ->
      List.iter
        (fun q ->
          List.iter
            (fun b ->
              if not (Syntax.equal_basic b (Syntax.Exists q)) then
                add_to idx.exists_into q b)
            (subsumees_of_basic (Syntax.Exists q));
          (* role-level subsumees, oriented on the base name *)
          List.iter
            (function
              | Syntax.E_role q' when not (Syntax.equal_role q' q) ->
                (match q with
                 | Syntax.Direct p' -> add_to idx.role_into p' q'
                 | Syntax.Inverse p' -> add_to idx.role_into p' (Syntax.role_inverse q'))
              | _ -> ())
            (Quonto.Classify.subsumees cls (Syntax.E_role q)))
        [ Syntax.Direct p; Syntax.Inverse p ])
    (Signature.roles signature);
  List.iter
    (fun u ->
      List.iter
        (fun b ->
          if not (Syntax.equal_basic b (Syntax.Attr_domain u)) then
            add_to idx.attr_domain_into u b)
        (subsumees_of_basic (Syntax.Attr_domain u));
      List.iter
        (function
          | Syntax.E_attr v when v <> u -> add_to idx.attr_into u v
          | _ -> ())
        (Quonto.Classify.subsumees cls (Syntax.E_attr u)))
    (Signature.attributes signature);
  idx

(* Fresh-variable supply for gr(g, I) steps; canonicalization renames
   them away immediately, so a global counter is fine. *)
let fresh_counter = ref 0

let fresh_var () =
  incr fresh_counter;
  Cq.Var (Printf.sprintf "f%d" !fresh_counter)

(* Rewritings of one atom [g] of query [q] (PerfectRef's gr function). *)
let atom_rewritings idx q g =
  let bound = function
    | Cq.Const _ -> true
    | Cq.Var v -> Cq.is_bound q v
  in
  let basic_atom b t = Vabox.atom_of_basic b t ~fresh:(fresh_var ()) in
  match g.Cq.pred, g.Cq.args with
  | pred, [ t ] when String.length pred > 2 && String.sub pred 0 2 = "c$" ->
    let a = String.sub pred 2 (String.length pred - 2) in
    List.map
      (fun b -> basic_atom b t)
      (Option.value ~default:[] (Hashtbl.find_opt idx.concept_into a))
  | pred, [ t1; t2 ] when String.length pred > 2 && String.sub pred 0 2 = "r$" ->
    let p = String.sub pred 2 (String.length pred - 2) in
    let via_roles =
      List.map
        (fun q1 ->
          match q1 with
          | Syntax.Direct p' -> Cq.atom (Vabox.role_pred p') [ t1; t2 ]
          | Syntax.Inverse p' -> Cq.atom (Vabox.role_pred p') [ t2; t1 ])
        (Option.value ~default:[] (Hashtbl.find_opt idx.role_into p))
    in
    let via_exists =
      if not (bound t2) then
        List.map
          (fun b -> basic_atom b t1)
          (Option.value ~default:[]
             (Hashtbl.find_opt idx.exists_into (Syntax.Direct p)))
      else []
    in
    let via_exists_inv =
      if not (bound t1) then
        List.map
          (fun b -> basic_atom b t2)
          (Option.value ~default:[]
             (Hashtbl.find_opt idx.exists_into (Syntax.Inverse p)))
      else []
    in
    via_roles @ via_exists @ via_exists_inv
  | pred, [ t1; t2 ] when String.length pred > 2 && String.sub pred 0 2 = "a$" ->
    let u = String.sub pred 2 (String.length pred - 2) in
    let via_attrs =
      List.map
        (fun v -> Cq.atom (Vabox.attr_pred v) [ t1; t2 ])
        (Option.value ~default:[] (Hashtbl.find_opt idx.attr_into u))
    in
    let via_domain =
      if not (bound t2) then
        List.map
          (fun b -> basic_atom b t1)
          (Option.value ~default:[] (Hashtbl.find_opt idx.attr_domain_into u))
      else []
    in
    via_attrs @ via_domain
  | _ -> []  (* non-ontology atom (e.g. database relation): never rewritten *)

(* The reduce step: unify two body atoms when a most general unifier
   exists that never eliminates an answer variable. *)
let reduce_steps q =
  let answer v = List.mem v q.Cq.answer_vars in
  (* follow binding chains to the representative; bindings are acyclic
     by construction (a variable is only ever bound to its class
     representative or a constant) *)
  let rec resolve subst t =
    match t with
    | Cq.Var v -> (
      match Cq.Subst.find_opt v subst with
      | Some t' -> resolve subst t'
      | None -> t)
    | Cq.Const _ -> t
  in
  let unify_terms subst t1 t2 =
    match resolve subst t1, resolve subst t2 with
    | Cq.Const c1, Cq.Const c2 -> if c1 = c2 then Some subst else None
    | Cq.Var v1, Cq.Var v2 when v1 = v2 -> Some subst
    | Cq.Var v1, Cq.Var v2 ->
      if answer v1 && answer v2 then None (* never merge two answer vars *)
      else if answer v2 then Some (Cq.Subst.add v1 (Cq.Var v2) subst)
      else Some (Cq.Subst.add v2 (Cq.Var v1) subst)
    | Cq.Var v, (Cq.Const _ as c) | (Cq.Const _ as c), Cq.Var v ->
      if answer v then None else Some (Cq.Subst.add v c subst)
  in
  let unify_atoms a b =
    if a.Cq.pred <> b.Cq.pred || List.length a.Cq.args <> List.length b.Cq.args
    then None
    else
      List.fold_left2
        (fun acc t1 t2 ->
          match acc with None -> None | Some s -> unify_terms s t1 t2)
        (Some Cq.Subst.empty) a.Cq.args b.Cq.args
  in
  let atoms = Array.of_list q.Cq.body in
  let n = Array.length atoms in
  let results = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      match unify_atoms atoms.(i) atoms.(j) with
      | Some subst when not (Cq.Subst.is_empty subst) ->
        (* close the substitution so chained bindings land on their
           final representative in one application *)
        let closed = Cq.Subst.map (fun t -> resolve subst t) subst in
        results := Cq.apply closed q :: !results
      | Some _ | None -> ()
    done
  done;
  !results

(* ------------------------------------------------------------------ *)
(* The saturation loop                                                 *)
(* ------------------------------------------------------------------ *)

type stats = {
  generated : int;   (** candidate CQs produced during saturation *)
  iterations : int;  (** worklist rounds *)
  output_size : int; (** disjuncts after minimization *)
}

let saturate idx ucq =
  let module Qset = Set.Make (struct
    type t = Cq.t

    let compare = Cq.compare
  end) in
  let seen = ref Qset.empty in
  let queue = Queue.create () in
  let generated = ref 0 in
  let iterations = ref 0 in
  let push q =
    let q = canonicalize q in
    incr generated;
    if not (Qset.mem q !seen) then begin
      seen := Qset.add q !seen;
      Queue.add q queue
    end
  in
  List.iter push ucq;
  while not (Queue.is_empty queue) do
    incr iterations;
    let q = Queue.pop queue in
    (* (a) PI application to every atom *)
    List.iter
      (fun g ->
        List.iter
          (fun g' ->
            let body =
              List.map (fun a -> if Cq.equal_atom a g then g' else a) q.Cq.body
            in
            push { q with Cq.body })
          (atom_rewritings idx q g))
      q.Cq.body;
    (* (b) reduce *)
    List.iter push (reduce_steps q)
  done;
  let all = Qset.elements !seen in
  (all, { generated = !generated; iterations = !iterations; output_size = 0 })

(* ------------------------------------------------------------------ *)
(* Prepared rule bases                                                  *)
(* ------------------------------------------------------------------ *)

(** A prepared rewriter: the normalization and rule-base indexing of a
    TBox, computed once and reused across queries.  [perfect_ref] /
    [presto_ref] re-prepare on every call — fine for one-shot CLI use,
    wasteful for a long-running engine (the consistency check alone
    rewrites one violation query per negative inclusion). *)
type prepared = {
  idx : pi_index;
  name : string;  (** "perfectref" or "presto", for logs and stats *)
}

(* Registered eagerly at module initialization (single-threaded), so no
   lazy forcing can race across domains on the hot path. *)
let m_generated = Obs.counter "obda_rewrite_generated_total"

let m_ucq_disjuncts =
  Obs.histogram ~buckets:Obs.Histogram.size_buckets "obda_rewrite_ucq_disjuncts"

(** [prepare tbox] — the told (vanilla PerfectRef) rule base. *)
let prepare tbox =
  Obs.span "rewrite.prepare" (fun () ->
      { idx = index_told (normalize tbox); name = "perfectref" })

(** [prepare_presto tbox] — the classified (Presto-style) rule base;
    classification happens here, once. *)
let prepare_presto tbox =
  Obs.span "rewrite.prepare" (fun () ->
      { idx = index_classified (normalize tbox); name = "presto" })

(** [apply prepared ucq] saturates [ucq] under the prepared rule base
    and minimizes the result. *)
let apply prepared ucq =
  Obs.span "rewrite" (fun () ->
      let all, stats = saturate prepared.idx ucq in
      let out = Cq.minimize_ucq all in
      Log.debug (fun m ->
          m "%s: %d disjuncts kept of %d generated in %d rounds" prepared.name
            (List.length out) stats.generated stats.iterations);
      Obs.Counter.incr ~by:stats.generated m_generated;
      Obs.Histogram.observe m_ucq_disjuncts (float_of_int (List.length out));
      (out, { stats with output_size = List.length out }))

(** [perfect_ref tbox ucq] computes the perfect rewriting of [ucq]
    w.r.t. the positive inclusions of [tbox] (qualified existentials are
    normalized away first).  Returns the minimized UCQ and saturation
    statistics. *)
let perfect_ref tbox ucq = apply (prepare tbox) ucq

(** [presto_ref tbox ucq] — same saturation but over the *classified*
    rule base: every entailed PI is available as a single step.  The
    output UCQ is logically equivalent to [perfect_ref]'s (property
    tested); the ablation measures the reduction in rounds. *)
let presto_ref tbox ucq = apply (prepare_presto tbox) ucq
