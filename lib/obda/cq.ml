(** Conjunctive queries and unions thereof.

    One query language serves two levels: queries over the *ontology*
    vocabulary (concept/role/attribute atoms) and queries over the
    *database* schema after mapping unfolding — atoms are just predicate
    names with a term list, and the evaluator runs over any fact source.

    Terms are variables or constants; the classic "unbound" (non-join,
    non-answer) variable of the DL-Lite rewriting literature is any
    variable that occurs exactly once in the query and is not an answer
    variable. *)

type term =
  | Var of string
  | Const of string
[@@deriving eq, ord, show { with_path = false }]

type atom = {
  pred : string;
  args : term list;
}
[@@deriving eq, ord, show { with_path = false }]

type t = {
  answer_vars : string list;  (** distinguished variables, in output order *)
  body : atom list;
}
[@@deriving eq, ord, show { with_path = false }]

(** A union of conjunctive queries; all disjuncts must share the
    answer-variable arity. *)
type ucq = t list

let atom pred args = { pred; args }

(** [make answer_vars body] builds a query after sanity checks: answer
    variables must occur in the body. *)
let make answer_vars body =
  let occurs v =
    List.exists (fun a -> List.exists (equal_term (Var v)) a.args) body
  in
  List.iter
    (fun v ->
      if not (occurs v) then
        invalid_arg (Printf.sprintf "Cq.make: answer variable %s not in body" v))
    answer_vars;
  { answer_vars; body }

(** [vars q] is the list of distinct variables of [q], body order. *)
let vars q =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  List.iter
    (fun a ->
      List.iter
        (function
          | Var v ->
            if not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              acc := v :: !acc
            end
          | Const _ -> ())
        a.args)
    q.body;
  List.rev !acc

(** [occurrences q v] counts how many argument positions hold [v]. *)
let occurrences q v =
  List.fold_left
    (fun n a ->
      n + List.length (List.filter (equal_term (Var v)) a.args))
    0 q.body

(** [is_bound q v] — bound variables are answer variables and join
    variables (occurring more than once); everything else is "unbound"
    in the PerfectRef sense. *)
let is_bound q v = List.mem v q.answer_vars || occurrences q v > 1

(* ------------------------------------------------------------------ *)
(* Substitutions                                                       *)
(* ------------------------------------------------------------------ *)

module Subst = Map.Make (String)

let apply_term subst = function
  | Var v as t -> (match Subst.find_opt v subst with Some t' -> t' | None -> t)
  | Const _ as t -> t

let apply_atom subst a = { a with args = List.map (apply_term subst) a.args }

let apply subst q =
  {
    answer_vars = q.answer_vars;  (* answer vars are never substituted away here *)
    body = List.map (apply_atom subst) q.body;
  }

(* ------------------------------------------------------------------ *)
(* Homomorphisms and containment                                       *)
(* ------------------------------------------------------------------ *)

(* Extend [subst] so that [apply_term subst t1 = t2]; [None] on clash. *)
let match_term subst t1 t2 =
  match t1 with
  | Const c1 -> (match t2 with Const c2 when c1 = c2 -> Some subst | _ -> None)
  | Var v -> (
    match Subst.find_opt v subst with
    | Some t when equal_term t t2 -> Some subst
    | Some _ -> None
    | None -> Some (Subst.add v t2 subst))

let match_atom subst a1 a2 =
  if a1.pred <> a2.pred || List.length a1.args <> List.length a2.args then None
  else
    List.fold_left2
      (fun acc t1 t2 -> match acc with None -> None | Some s -> match_term s t1 t2)
      (Some subst) a1.args a2.args

(** [homomorphism q1 q2] finds a homomorphism from [q1]'s body into
    [q2]'s body that maps [q1]'s answer tuple onto [q2]'s answer tuple —
    the witness for [q2 ⊆ q1] once [q2] is frozen. *)
let homomorphism q1 q2 =
  if List.length q1.answer_vars <> List.length q2.answer_vars then None
  else
    let init =
      List.fold_left2
        (fun s v1 v2 -> Subst.add v1 (Var v2) s)
        Subst.empty q1.answer_vars q2.answer_vars
    in
    let rec go subst = function
      | [] -> Some subst
      | a :: rest ->
        List.find_map
          (fun b ->
            match match_atom subst a b with
            | Some subst' -> go subst' rest
            | None -> None)
          q2.body
    in
    go init q1.body

(** [contains q1 q2] — [q2 ⊆ q1] as queries (every answer of [q2] is an
    answer of [q1]), decided by homomorphism from [q1] into [q2] with
    [q2]'s variables frozen as constants. *)
let contains q1 q2 =
  let freeze q =
    let fv = List.map (fun v -> (v, Const ("?" ^ v))) (vars q) in
    let subst = List.fold_left (fun s (v, t) -> Subst.add v t s) Subst.empty fv in
    {
      answer_vars = [];
      body = List.map (apply_atom subst) q.body;
    }
  in
  let frozen = freeze q2 in
  (* answer-variable correspondence: map q1's answer vars to q2's frozen
     answer terms *)
  if List.length q1.answer_vars <> List.length q2.answer_vars then false
  else
    let init =
      List.fold_left2
        (fun s v1 v2 -> Subst.add v1 (Const ("?" ^ v2)) s)
        Subst.empty q1.answer_vars q2.answer_vars
    in
    let rec go subst = function
      | [] -> true
      | a :: rest ->
        List.exists
          (fun b ->
            match match_atom subst a b with
            | Some subst' -> go subst' rest
            | None -> false)
          frozen.body
    in
    go init q1.body

(** [minimize_ucq ucq] removes disjuncts contained in another disjunct
    (keeping the first of two equivalent ones) — the standard final step
    of PerfectRef, without which rewritings explode. *)
let minimize_ucq ucq =
  let arr = Array.of_list ucq in
  let n = Array.length arr in
  let dropped = Array.make n false in
  for i = 0 to n - 1 do
    let redundant =
      (* an earlier kept disjunct already covers i (this also picks one
         representative of each equivalence class) ... *)
      (let found = ref false in
       for j = 0 to i - 1 do
         if (not !found) && (not dropped.(j)) && contains arr.(j) arr.(i) then
           found := true
       done;
       !found)
      ||
      (* ... or a later disjunct covers i strictly *)
      let found = ref false in
      for j = i + 1 to n - 1 do
        if (not !found) && contains arr.(j) arr.(i) && not (contains arr.(i) arr.(j))
        then found := true
      done;
      !found
    in
    dropped.(i) <- redundant
  done;
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if not dropped.(i) then acc := arr.(i) :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(** The reference evaluator: the original backtracking scan, kept
    verbatim as the oracle the cost-based executor below is
    differentially tested against (the [indexed] conformance subject,
    the qcheck equivalence properties, and the planner regression
    tests all compare against this module). *)
module Naive = struct
  (** [evaluate ~facts q] computes the answer tuples of [q] over the fact
      source [facts : pred -> string list list] by backtracking joins.
      When an atom has an argument already bound (a constant, or a join
      variable bound by an earlier atom), candidate rows come from a
      lazily built hash index on that column instead of a full relation
      scan.  Duplicate answers are removed; tuple order is
      unspecified. *)
  let evaluate ~facts q =
    let results = Hashtbl.create 16 in
    (* (pred, column) -> value -> rows; built on first use *)
    let indexes = Hashtbl.create 8 in
    let column_index pred i =
      match Hashtbl.find_opt indexes (pred, i) with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 64 in
        List.iter
          (fun row ->
            match List.nth_opt row i with
            | Some key ->
              let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
              Hashtbl.replace tbl key (row :: prev)
            | None -> ())
          (facts pred);
        Hashtbl.add indexes (pred, i) tbl;
        tbl
    in
    let candidates subst a =
      let rec first_bound i = function
        | [] -> None
        | t :: rest -> (
          match apply_term subst t with
          | Const c -> Some (i, c)
          | Var _ -> first_bound (i + 1) rest)
      in
      match first_bound 0 a.args with
      | None -> facts a.pred
      | Some (i, c) ->
        Option.value ~default:[] (Hashtbl.find_opt (column_index a.pred i) c)
    in
    let rec go subst = function
      | [] ->
        let tuple =
          List.map
            (fun v ->
              match Subst.find_opt v subst with
              | Some (Const c) -> c
              | Some (Var _) | None ->
                invalid_arg "Cq.evaluate: unbound answer variable")
            q.answer_vars
        in
        Hashtbl.replace results tuple ()
      | a :: rest ->
        List.iter
          (fun row ->
            if List.length row = List.length a.args then
              let matched =
                List.fold_left2
                  (fun acc t v ->
                    match acc with
                    | None -> None
                    | Some s -> match_term s t (Const v))
                  (Some subst) a.args row
              in
              match matched with Some s -> go s rest | None -> ())
          (candidates subst a)
    in
    go Subst.empty q.body;
    Hashtbl.fold (fun tuple () acc -> tuple :: acc) results []

  (** [evaluate_ucq ~facts ucq] is the deduplicated union of the
      disjunct answers. *)
  let evaluate_ucq ~facts ucq =
    let results = Hashtbl.create 16 in
    List.iter
      (fun q -> List.iter (fun t -> Hashtbl.replace results t ()) (evaluate ~facts q))
      ucq;
    Hashtbl.fold (fun t () acc -> t :: acc) results []
end

(* ------------------------------------------------------------------ *)
(* Fact sources                                                        *)
(* ------------------------------------------------------------------ *)

(** A fact source the cost-based executor can plan against.  Beyond the
    plain scan of the [facts]-function interface it exposes hash-index
    probes on bound-position patterns and the two statistics the
    planner's selectivity estimate needs.  [Database.source] backs this
    with persistent, incrementally maintained indexes; {!source_of_facts}
    wraps any [facts] function with per-call lazily built ones. *)
type source = {
  all : string -> string list list;
      (** every row of a relation (set semantics: order unspecified) *)
  cardinality : string -> int;  (** row count of a relation *)
  probe : string -> (int * string) list -> string list list;
      (** [probe pred [(i, v); ...]] — the rows whose column [i] holds
          [v] for every pair; pairs must be sorted by strictly
          increasing position *)
  distinct_keys : string -> int list -> int;
      (** number of distinct keys in the index on the given (strictly
          increasing) position pattern — the planner divides by this to
          estimate the rows one probe returns *)
}

(* the key a row contributes to the index on [positions]; [None] when
   the row is too short to have all of them (it then can't match any
   atom probing that pattern either) *)
let key_of_row positions row =
  let rec go positions i row acc =
    match positions with
    | [] -> Some (List.rev acc)
    | p :: ps -> (
      match row with
      | [] -> None
      | v :: rest ->
        if p = i then go ps (i + 1) rest (v :: acc)
        else go positions (i + 1) rest acc)
  in
  go positions 0 row []

(** [source_of_facts facts] — a {!source} over a plain fact function,
    with indexes built lazily per pattern and memoized for the lifetime
    of the source (one [evaluate] call, or one UCQ when created by
    {!evaluate_ucq}, shares them across disjuncts). *)
let source_of_facts facts =
  let rows_memo = Hashtbl.create 8 in
  let all pred =
    match Hashtbl.find_opt rows_memo pred with
    | Some rows -> rows
    | None ->
      let rows = facts pred in
      Hashtbl.add rows_memo pred rows;
      rows
  in
  let indexes = Hashtbl.create 8 in
  let index pred positions =
    match Hashtbl.find_opt indexes (pred, positions) with
    | Some tbl -> tbl
    | None ->
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun row ->
          match key_of_row positions row with
          | Some key ->
            let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
            Hashtbl.replace tbl key (row :: prev)
          | None -> ())
        (all pred);
      Hashtbl.add indexes (pred, positions) tbl;
      tbl
  in
  {
    all;
    cardinality = (fun pred -> List.length (all pred));
    probe =
      (fun pred bound ->
        let tbl = index pred (List.map fst bound) in
        Option.value ~default:[] (Hashtbl.find_opt tbl (List.map snd bound)));
    distinct_keys = (fun pred positions -> Hashtbl.length (index pred positions));
  }

(* ------------------------------------------------------------------ *)
(* Cost-based execution: selectivity-ordered plans, adaptive joins      *)
(* ------------------------------------------------------------------ *)

(* eager module-level registration: no lazy forcing races across domains *)
let m_nested_loop =
  Obs.counter ~labels:[ ("strategy", "nested_loop") ] "obda_join_strategy_total"
let m_hash = Obs.counter ~labels:[ ("strategy", "hash") ] "obda_join_strategy_total"
let m_probes = Obs.counter "obda_index_probes_total"

(** Intermediate-binding cardinality at which a join step switches from
    scan-and-filter nested loops to index-probe hash joins.  Below it,
    scanning a relation once per binding is cheaper than touching (and
    possibly building) the pattern index; above it, the per-binding
    probe amortizes the build.  Override per call with
    [?join_threshold]: [0] forces hash everywhere, [max_int] forces
    nested loops everywhere (both are exercised by the equivalence
    properties in the test suite). *)
let default_join_threshold = 32

module VarSet = Set.Make (String)

let atom_vars a =
  List.fold_left
    (fun acc -> function Var v -> VarSet.add v acc | Const _ -> acc)
    VarSet.empty a.args

(* the argument positions of [a] that are bound given [bound_vars]:
   constants, and variables every binding of the current intermediate
   set assigns (all bindings share one domain, so boundness is a
   property of the step, not of the individual binding) *)
let bound_positions bound_vars a =
  let rec go i = function
    | [] -> []
    | Const c :: rest -> (i, `Const c) :: go (i + 1) rest
    | Var v :: rest ->
      if VarSet.mem v bound_vars then (i, `Var v) :: go (i + 1) rest
      else go (i + 1) rest
  in
  go 0 a.args

(* estimated rows one binding retrieves from [a]: the index cardinality
   under the current binding set.  All-constant patterns probe the real
   index (exact); patterns with bound variables use rows / distinct-keys
   (the average bucket size); unconstrained atoms cost a full scan. *)
let estimate source bound_vars a =
  let bp = bound_positions bound_vars a in
  if bp = [] then float_of_int (source.cardinality a.pred)
  else if List.for_all (fun (_, k) -> match k with `Const _ -> true | `Var _ -> false) bp
  then
    float_of_int
      (List.length
         (source.probe a.pred
            (List.map (fun (i, k) -> (i, match k with `Const c -> c | `Var _ -> assert false)) bp)))
  else
    let d = source.distinct_keys a.pred (List.map fst bp) in
    if d = 0 then 0.0
    else float_of_int (source.cardinality a.pred) /. float_of_int d

(** [plan source q] orders the body greedily by estimated selectivity:
    repeatedly pick the cheapest atom under the variables bound so far
    (ties keep body order), then mark its variables bound.  Cheap atoms
    shrink the intermediate binding set before expensive ones multiply
    it — the classic greedy join order, using live index statistics as
    the cost model. *)
let plan source q =
  let rec go bound_vars remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
      let best, _ =
        List.fold_left
          (fun (best, best_cost) a ->
            let cost = estimate source bound_vars a in
            match best with
            | None -> (Some a, cost)
            | Some _ when cost < best_cost -> (Some a, cost)
            | Some _ -> (best, best_cost))
          (None, infinity) remaining
      in
      let a = Option.get best in
      go
        (VarSet.union bound_vars (atom_vars a))
        (List.filter (fun b -> b != a) remaining)
        (a :: acc)
  in
  go VarSet.empty q.body []

(* --- compiled positional form ------------------------------------- *)

(* The executor does not run on [Subst] maps: a planned query is
   compiled once into positional form — every variable gets a slot in a
   string array, and each atom's argument list becomes a per-position
   check/write spec.  Extending a binding is then an array copy plus a
   few string equalities instead of a chain of map insertions, which is
   where the bulk of the join time goes on large intermediate sets. *)

(* sentinel for an unassigned slot, tested by physical equality only —
   row values come from the fact source and can never be this block *)
let unbound : string = Sys.opaque_identity (String.make 1 '\255')

type pos_spec =
  | P_const of string  (* position must hold this constant *)
  | P_eq of int        (* slot is already assigned: must hold its value *)
  | P_set of int       (* first occurrence of the variable: assign slot *)

(* match a row against a compiled spec, extending [binding].  The copy
   is lazy: filter-only atoms (no [P_set]) hand back the original array,
   which is safe to share because every later write copies first. *)
let match_row_c spec arity binding row =
  if List.compare_length_with row arity <> 0 then None
  else begin
    let b = ref binding and copied = ref false in
    let rec go spec row =
      match (spec, row) with
      | [], [] -> Some !b
      | P_const c :: sp, v :: vs -> if String.equal c v then go sp vs else None
      | P_eq s :: sp, v :: vs -> if String.equal !b.(s) v then go sp vs else None
      | P_set s :: sp, v :: vs ->
        if not !copied then begin
          b := Array.copy binding;
          copied := true
        end;
        !b.(s) <- v;
        go sp vs
      | _ -> None
    in
    go spec row
  end

(* match a row against a compiled spec in a caller-owned scratch array:
   [binding] is blitted in, then checks read and [P_set] writes go to
   [scratch].  Used by the fused final step, where the extended binding
   is only ever projected, never kept — no per-row allocation at all. *)
let match_row_scratch spec arity scratch binding row =
  if List.compare_length_with row arity <> 0 then false
  else begin
    Array.blit binding 0 scratch 0 (Array.length binding);
    let rec go spec row =
      match (spec, row) with
      | [], [] -> true
      | P_const c :: sp, v :: vs -> String.equal c v && go sp vs
      | P_eq s :: sp, v :: vs -> String.equal scratch.(s) v && go sp vs
      | P_set s :: sp, v :: vs ->
        scratch.(s) <- v;
        go sp vs
      | _ -> false
    in
    go spec row
  end

(* Dedicated dedup sink for answer tuples.  Profiling the 100k-tuple
   sweep shows the single biggest cost of a large answer set is not the
   join but materializing its deduplicated tuples: a [Hashtbl] that
   starts small pays a full rehash at every doubling, and the stdlib
   offers no way to pre-size an existing table.  This sink is a plain
   power-of-two bucket table with an explicit [reserve] — the executor
   reserves the exact candidate count right before the final join step,
   so bulk insertion never rehashes — shared across the disjuncts of a
   UCQ so the union is deduplicated exactly once. *)
module Tuple_sink = struct
  type t = {
    mutable buckets : string list list array;
    mutable count : int;  (* distinct tuples stored *)
  }

  (* hand-specialized hash and equality: the generic [Hashtbl.hash] /
     polymorphic compare pair costs ~25% more per insert on a
     100k-answer set than folding [String.hash] over the tuple and a
     [String.equal] loop *)
  let hash_tuple tuple = List.fold_left (fun h s -> (h * 31) + String.hash s) 17 tuple

  let rec eq_tuple a b =
    match (a, b) with
    | [], [] -> true
    | x :: xs, y :: ys -> String.equal x y && eq_tuple xs ys
    | _ -> false

  let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

  (* bucket arrays beyond this are past any plausible answer set; a
     reserve above it degrades to longer chains, never to failure *)
  let max_buckets = 1 lsl 22

  let create n = { buckets = Array.make (pow2_at_least (max 16 n) 16) []; count = 0 }

  let rehash t size =
    let old = t.buckets in
    t.buckets <- Array.make size [];
    let mask = size - 1 in
    Array.iter
      (List.iter (fun tuple ->
           let i = hash_tuple tuple land mask in
           t.buckets.(i) <- tuple :: t.buckets.(i)))
      old

  (** [reserve t n] sizes the table for [n] total tuples (a load factor
      of ~1) without moving anything when already big enough. *)
  let reserve t n =
    let size = pow2_at_least (min n max_buckets) 16 in
    if size > Array.length t.buckets then rehash t size

  let add t tuple =
    let i = hash_tuple tuple land (Array.length t.buckets - 1) in
    let bucket = t.buckets.(i) in
    let rec mem = function
      | [] -> false
      | u :: rest -> eq_tuple u tuple || mem rest
    in
    if not (mem bucket) then begin
      t.buckets.(i) <- tuple :: bucket;
      t.count <- t.count + 1;
      if t.count > 2 * Array.length t.buckets && Array.length t.buckets < max_buckets
      then rehash t (2 * Array.length t.buckets)
    end

  let to_list t = Array.fold_left (fun acc b -> List.rev_append b acc) [] t.buckets
end

(* one join step: extend every binding through the compiled atom.
   Strategy is adaptive on the intermediate cardinality: small binding
   sets scan-and-filter (nested loop — no index touched), large ones
   probe the pattern hash index once per binding (hash join).  Atoms
   with no bound position can only scan. *)
let step_c source join_threshold bindings (a, spec, arity, bp) =
  let use_hash = bp <> [] && List.compare_length_with bindings join_threshold >= 0 in
  let candidates =
    if use_hash then begin
      Obs.Counter.incr m_hash;
      fun binding ->
        let key =
          List.map
            (fun (i, k) ->
              match k with `Const c -> (i, c) | `Slot s -> (i, binding.(s)))
            bp
        in
        Obs.Counter.incr m_probes;
        source.probe a.pred key
    end
    else begin
      Obs.Counter.incr m_nested_loop;
      let rows = source.all a.pred in
      fun _ -> rows
    end
  in
  let out = ref [] in
  List.iter
    (fun binding ->
      List.iter
        (fun row ->
          match match_row_c spec arity binding row with
          | Some b -> out := b :: !out
          | None -> ())
        (candidates binding))
    bindings;
  !out

(* project a (fully extended) binding onto the answer slots; [-1] marks
   an answer variable absent from the body *)
let project_binding proj binding =
  List.map
    (fun s ->
      if s < 0 then invalid_arg "Cq.evaluate: unbound answer variable"
      else
        let v = binding.(s) in
        if v == unbound then invalid_arg "Cq.evaluate: unbound answer variable"
        else v)
    proj

(* the core executor: plan, compile to positional form, run every step
   but the last through [step_c], then fuse the last step with
   projection and deduplication — candidate rows are counted first so
   the sink can [reserve] exactly, and each extension lives only in a
   reusable scratch array. *)
let evaluate_into ~sink ~join_threshold ~source q =
  let ordered = plan source q in
  (* variable -> slot *)
  let slots = Hashtbl.create 8 in
  let nslots = ref 0 in
  let slot_of v =
    match Hashtbl.find_opt slots v with
    | Some s -> s
    | None ->
      let s = !nslots in
      incr nslots;
      Hashtbl.add slots v s;
      s
  in
  let compiled =
    let bound = ref VarSet.empty in
    List.map
      (fun a ->
        let bp =
          List.map
            (fun (i, k) ->
              (i, match k with `Const c -> `Const c | `Var v -> `Slot (slot_of v)))
            (bound_positions !bound a)
        in
        let seen = Hashtbl.create 4 in
        let spec =
          List.map
            (function
              | Const c -> P_const c
              | Var v ->
                let s = slot_of v in
                if VarSet.mem v !bound || Hashtbl.mem seen v then P_eq s
                else begin
                  Hashtbl.add seen v ();
                  P_set s
                end)
            a.args
        in
        bound := VarSet.union !bound (atom_vars a);
        (a, spec, List.length a.args, bp))
      ordered
  in
  let proj =
    List.map
      (fun v -> match Hashtbl.find_opt slots v with Some s -> s | None -> -1)
      q.answer_vars
  in
  match List.rev compiled with
  | [] ->
    (* empty body: one empty binding, projected as-is *)
    Tuple_sink.add sink (project_binding proj (Array.make !nslots unbound))
  | last :: rev_init ->
    let bindings =
      List.fold_left
        (step_c source join_threshold)
        [ Array.make !nslots unbound ]
        (List.rev rev_init)
    in
    let a, spec, arity, bp = last in
    let use_hash =
      bp <> [] && List.compare_length_with bindings join_threshold >= 0
    in
    (* pair every binding with its candidate rows up front: the total
       candidate count (an upper bound on new tuples) drives the sink's
       reserve, and each index is probed exactly once per binding *)
    let candidates =
      if use_hash then begin
        Obs.Counter.incr m_hash;
        List.map
          (fun binding ->
            let key =
              List.map
                (fun (i, k) ->
                  match k with `Const c -> (i, c) | `Slot s -> (i, binding.(s)))
                bp
            in
            Obs.Counter.incr m_probes;
            (binding, source.probe a.pred key))
          bindings
      end
      else begin
        Obs.Counter.incr m_nested_loop;
        let rows = source.all a.pred in
        List.map (fun binding -> (binding, rows)) bindings
      end
    in
    let total =
      List.fold_left (fun acc (_, rows) -> acc + List.length rows) 0 candidates
    in
    Tuple_sink.reserve sink (sink.Tuple_sink.count + total);
    let scratch = Array.make !nslots unbound in
    List.iter
      (fun (binding, rows) ->
        List.iter
          (fun row ->
            if match_row_scratch spec arity scratch binding row then
              Tuple_sink.add sink (project_binding proj scratch))
          rows)
      candidates

(** [evaluate_src ?join_threshold ~source q] — the cost-based executor:
    order the atoms by {!plan}, compile the plan to positional form
    (variable slots in a string array instead of substitution maps),
    then pipe an intermediate binding set through one adaptive join
    {!step_c} per atom; the final step is fused with projection and
    deduplication.  Same answers as {!Naive.evaluate} (set semantics;
    duplicate answers removed, tuple order unspecified), differentially
    enforced by the test suite. *)
let evaluate_src ?(join_threshold = default_join_threshold) ~source q =
  let sink = Tuple_sink.create 16 in
  evaluate_into ~sink ~join_threshold ~source q;
  Tuple_sink.to_list sink

(** [evaluate_ucq_src ?join_threshold ~source ucq] is the deduplicated
    union of the disjunct answers, sharing [source] (and hence its
    indexes) across disjuncts — and sharing one dedup sink, so the
    union costs no second pass over the tuples. *)
let evaluate_ucq_src ?(join_threshold = default_join_threshold) ~source ucq =
  let sink = Tuple_sink.create 16 in
  List.iter (fun q -> evaluate_into ~sink ~join_threshold ~source q) ucq;
  Tuple_sink.to_list sink

(** [evaluate ~facts q] — the cost-based executor over a plain fact
    function (indexes are built lazily and live for this call).
    Answers are a set: duplicates removed, order unspecified. *)
let evaluate ?join_threshold ~facts q =
  evaluate_src ?join_threshold ~source:(source_of_facts facts) q

(** [evaluate_ucq ~facts ucq] is the deduplicated union of the disjunct
    answers; all disjuncts share one lazily indexed source. *)
let evaluate_ucq ?join_threshold ~facts ucq =
  evaluate_ucq_src ?join_threshold ~source:(source_of_facts facts) ucq

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_term_ascii fmt = function
  | Var v -> Format.fprintf fmt "?%s" v
  | Const c -> Format.pp_print_string fmt c

let pp_atom_ascii fmt a =
  Format.fprintf fmt "%s(%a)" a.pred
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_term_ascii)
    a.args

let pp_ascii fmt q =
  Format.fprintf fmt "q(%s) :- %a"
    (String.concat ", " (List.map (fun v -> "?" ^ v) q.answer_vars))
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_atom_ascii)
    q.body

let to_string q = Format.asprintf "%a" pp_ascii q
