(** KB consistency checking, Mastro-style: every (told) negative
    inclusion is compiled into a boolean "violation query", the query is
    rewritten with PerfectRef so that inferred memberships are taken
    into account, and the rewriting is evaluated over the data.  The KB
    is inconsistent iff some violation query fires.

    Told negative inclusions suffice: every *entailed* disjointness is a
    told one preceded by positive-inclusion chains (see
    [Deductive.entails_disjoint]), and those chains are exactly what the
    rewriting of the told query reabsorbs. *)

open Dllite

let var v = Cq.Var v

(* Violation query of one negative inclusion: an anonymous witness in
   both sides.  The query must be *boolean* — with answer variables the
   rewriting could only report violations witnessed by named
   individuals, whereas a labelled null forced by an existential axiom
   violates a disjointness just as fatally (e.g. [D ⊑ ∃p⁻.B] with
   [∃p ⊑ ¬∃p] and a single [D(o)] fact). *)
let violation_query ax =
  let body =
    match ax with
    | Syntax.Concept_incl (b1, Syntax.C_neg b2) ->
      let a1 = Vabox.atom_of_basic b1 (var "x") ~fresh:(var "y1") in
      let a2 = Vabox.atom_of_basic b2 (var "x") ~fresh:(var "y2") in
      Some [ a1; a2 ]
    | Syntax.Role_incl (q1, Syntax.R_neg q2) ->
      let role_atom q (t1, t2) =
        match q with
        | Syntax.Direct p -> Cq.atom (Vabox.role_pred p) [ t1; t2 ]
        | Syntax.Inverse p -> Cq.atom (Vabox.role_pred p) [ t2; t1 ]
      in
      Some [ role_atom q1 (var "x", var "y"); role_atom q2 (var "x", var "y") ]
    | Syntax.Attr_incl (u1, Syntax.A_neg u2) ->
      Some
        [
          Cq.atom (Vabox.attr_pred u1) [ var "x"; var "y" ];
          Cq.atom (Vabox.attr_pred u2) [ var "x"; var "y" ];
        ]
    | Syntax.Concept_incl (_, (Syntax.C_basic _ | Syntax.C_exists_qual _))
    | Syntax.Role_incl (_, Syntax.R_role _)
    | Syntax.Attr_incl (_, Syntax.A_attr _) -> None
  in
  Option.map (fun body -> Cq.make [] body) body

(* Best-effort witness reporting: the same body with the shared witness
   as an answer variable only surfaces *named* witnesses. *)
let witness_query ax =
  Option.map (fun q -> { q with Cq.answer_vars = [ "x" ] }) (violation_query ax)

type violation = {
  axiom : Syntax.axiom;        (** the violated negative inclusion *)
  witnesses : string list;     (** *named* individuals witnessing it;
                                   may be empty when the witness is an
                                   anonymous (existentially implied)
                                   object *)
}

(** [check ?rewrite tbox ~facts] evaluates every rewritten violation
    query over the fact source; returns all violations ([] =
    consistent).  [?rewrite] lets a long-running engine supply a shared
    prepared rewriter ([Rewrite.apply prepared]) instead of the default,
    which re-normalizes and re-indexes [tbox] for every negative
    inclusion. *)
let check ?rewrite tbox ~facts =
  let rewrite =
    match rewrite with
    | Some f -> f
    | None -> fun ucq -> fst (Rewrite.perfect_ref tbox ucq)
  in
  List.filter_map
    (fun ax ->
      match violation_query ax with
      | None -> None
      | Some q ->
        let rewritten = rewrite [ q ] in
        let answers = Cq.evaluate_ucq ~facts rewritten in
        if answers = [] then None
        else begin
          let witnesses =
            match witness_query ax with
            | None -> []
            | Some wq ->
              let rewritten = rewrite [ wq ] in
              List.sort_uniq compare
                (List.concat (Cq.evaluate_ucq ~facts rewritten))
          in
          Some { axiom = ax; witnesses }
        end)
    (Tbox.negative_inclusions tbox)

(** [consistent ?rewrite tbox ~facts] — [true] iff no violation query
    fires. *)
let consistent ?rewrite tbox ~facts = check ?rewrite tbox ~facts = []
