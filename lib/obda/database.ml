(** Minimal in-memory relational store: the "data sources" of the OBDA
    architecture.

    Relations are named, fixed-arity, duplicate-free sets of string
    tuples.  The store doubles as the fact source for [Cq.evaluate]
    after mapping unfolding. *)

type relation = {
  arity : int;
  mutable rows : string list list;
  mutable row_set : (string list, unit) Hashtbl.t;
}

type t = { relations : (string, relation) Hashtbl.t }

let create () = { relations = Hashtbl.create 16 }

(** [declare db name ~arity] registers a (possibly empty) relation.
    Re-declaring with the same arity is a no-op. *)
let declare db name ~arity =
  match Hashtbl.find_opt db.relations name with
  | Some r when r.arity = arity -> ()
  | Some _ -> invalid_arg (Printf.sprintf "Database.declare: %s arity clash" name)
  | None ->
    Hashtbl.replace db.relations name
      { arity; rows = []; row_set = Hashtbl.create 64 }

(* eager module-level registration: no lazy forcing races across domains *)
let m_inserts = Obs.counter "obda_db_rows_inserted_total"

(** [insert db name row] adds a tuple (declaring the relation on first
    use); duplicates are ignored. *)
let insert db name row =
  (match Hashtbl.find_opt db.relations name with
   | None -> declare db name ~arity:(List.length row)
   | Some r when r.arity <> List.length row ->
     invalid_arg (Printf.sprintf "Database.insert: %s arity mismatch" name)
   | Some _ -> ());
  let r = Hashtbl.find db.relations name in
  if not (Hashtbl.mem r.row_set row) then begin
    Hashtbl.replace r.row_set row ();
    r.rows <- row :: r.rows;
    Obs.Counter.incr m_inserts
  end

(** [insert_all db name rows] bulk-inserts. *)
let insert_all db name rows = List.iter (insert db name) rows

(** [rows db name] is the tuple list of [name] ([[]] never: the empty
    list for unknown relations). *)
let rows db name =
  match Hashtbl.find_opt db.relations name with Some r -> r.rows | None -> []

(** [facts db] is the fact-source function expected by [Cq.evaluate]. *)
let facts db name = rows db name

let relation_names db =
  Hashtbl.fold (fun name _ acc -> name :: acc) db.relations [] |> List.sort compare

let size db =
  Hashtbl.fold (fun _ r acc -> acc + List.length r.rows) db.relations 0

let pp fmt db =
  List.iter
    (fun name ->
      Format.fprintf fmt "%s:@." name;
      List.iter
        (fun row -> Format.fprintf fmt "  (%s)@." (String.concat ", " row))
        (rows db name))
    (relation_names db)
