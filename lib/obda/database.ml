(** Minimal in-memory relational store: the "data sources" of the OBDA
    architecture.

    Relations are named, fixed-arity, duplicate-free sets of string
    tuples.  The store doubles as the fact source for [Cq.evaluate]
    after mapping unfolding.

    {b Ordering contract:} a relation is a {e set}.  [rows]/[facts]
    return the tuples in an unspecified order that may change between
    inserts, between builds, and between the naive and indexed
    evaluation paths — consumers must not depend on it.  Anything
    user-visible is normalized at the single place answers are rendered
    (the serving layer and the CLI both sort before printing).

    {b Indexes:} each relation carries hash indexes keyed on
    bound-position patterns — the n-ary generalization of the
    hexastore SPO/POS/OSP layout (for a binary role, the patterns
    [[0]], [[1]] and [[0;1]] are exactly its subject, object and
    subject-object permutation indexes).  An index is built lazily on
    the first [probe] of its pattern and from then on maintained
    incrementally by [insert], so steady-state probes never pay a
    rebuild.  [Cq] plans and executes against them through
    {!source}. *)

type index = (string list, string list list) Hashtbl.t

type relation = {
  arity : int;
  mutable rows : string list list;
  mutable row_set : (string list, unit) Hashtbl.t;
  indexes : (int list, index) Hashtbl.t;
      (** strictly-increasing position pattern -> key -> rows; only the
          patterns some probe has asked for exist *)
}

type t = { relations : (string, relation) Hashtbl.t }

let create () = { relations = Hashtbl.create 16 }

(** [declare db name ~arity] registers a (possibly empty) relation.
    Re-declaring with the same arity is a no-op. *)
let declare db name ~arity =
  match Hashtbl.find_opt db.relations name with
  | Some r when r.arity = arity -> ()
  | Some _ -> invalid_arg (Printf.sprintf "Database.declare: %s arity clash" name)
  | None ->
    Hashtbl.replace db.relations name
      { arity; rows = []; row_set = Hashtbl.create 64; indexes = Hashtbl.create 4 }

(* eager module-level registration: no lazy forcing races across domains *)
let m_inserts = Obs.counter "obda_db_rows_inserted_total"
let m_index_builds = Obs.counter "obda_index_builds_total"

let add_to_index tbl positions row =
  match Cq.key_of_row positions row with
  | Some key ->
    let prev = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (row :: prev)
  | None -> ()

(** [insert db name row] adds a tuple (declaring the relation on first
    use); duplicates are ignored.  Every already-built index of the
    relation is updated in the same call, so a probe immediately after
    an insert sees the new row. *)
let insert db name row =
  (match Hashtbl.find_opt db.relations name with
   | None -> declare db name ~arity:(List.length row)
   | Some r when r.arity <> List.length row ->
     invalid_arg (Printf.sprintf "Database.insert: %s arity mismatch" name)
   | Some _ -> ());
  let r = Hashtbl.find db.relations name in
  if not (Hashtbl.mem r.row_set row) then begin
    Hashtbl.replace r.row_set row ();
    r.rows <- row :: r.rows;
    Hashtbl.iter (fun positions tbl -> add_to_index tbl positions row) r.indexes;
    Obs.Counter.incr m_inserts
  end

(** [insert_all db name rows] bulk-inserts. *)
let insert_all db name rows = List.iter (insert db name) rows

(** [rows db name] is the tuple list of [name] ([[]] never: the empty
    list for unknown relations).  Order is unspecified — see the
    module-level ordering contract. *)
let rows db name =
  match Hashtbl.find_opt db.relations name with Some r -> r.rows | None -> []

(** [facts db] is the fact-source function expected by [Cq.evaluate]. *)
let facts db name = rows db name

(* the lazily built, incrementally maintained index on a position
   pattern *)
let index r positions =
  match Hashtbl.find_opt r.indexes positions with
  | Some tbl -> tbl
  | None ->
    Obs.Counter.incr m_index_builds;
    let tbl = Hashtbl.create (max 64 (Hashtbl.length r.row_set)) in
    List.iter (fun row -> add_to_index tbl positions row) r.rows;
    Hashtbl.add r.indexes positions tbl;
    tbl

(** [probe db name bound] — the rows of [name] holding value [v] at
    position [i] for every [(i, v)] in [bound] (which must be sorted by
    strictly increasing position).  Empty for unknown relations or
    positions beyond the arity. *)
let probe db name bound =
  match Hashtbl.find_opt db.relations name with
  | None -> []
  | Some r ->
    let tbl = index r (List.map fst bound) in
    Option.value ~default:[] (Hashtbl.find_opt tbl (List.map snd bound))

(** [cardinality db name] — the relation's row count (0 when unknown). *)
let cardinality db name =
  match Hashtbl.find_opt db.relations name with
  | Some r -> Hashtbl.length r.row_set
  | None -> 0

(** [distinct_keys db name positions] — distinct keys in the index on
    [positions]; builds the index if needed. *)
let distinct_keys db name positions =
  match Hashtbl.find_opt db.relations name with
  | None -> 0
  | Some r -> Hashtbl.length (index r positions)

(** [source db] — the database as a [Cq.source]: scans, probes and
    statistics all backed by the persistent indexes above.  This is
    what [Engine.evaluate_compiled] plans against. *)
let source db =
  {
    Cq.all = facts db;
    cardinality = cardinality db;
    probe = probe db;
    distinct_keys = distinct_keys db;
  }

let relation_names db =
  Hashtbl.fold (fun name _ acc -> name :: acc) db.relations [] |> List.sort compare

let size db =
  Hashtbl.fold (fun _ r acc -> acc + List.length r.rows) db.relations 0

let pp fmt db =
  List.iter
    (fun name ->
      Format.fprintf fmt "%s:@." name;
      List.iter
        (fun row -> Format.fprintf fmt "  (%s)@." (String.concat ", " row))
        (List.sort compare (rows db name)))
    (relation_names db)
