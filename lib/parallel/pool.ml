(** Fixed-size domain pool for deterministic fork-join parallelism.

    The pool spawns its worker domains *once* and reuses them across
    calls — domain spawn costs milliseconds, which would dwarf the
    per-call win on classification-sized inputs.  There is no
    [domainslib] dependency: the scheduling need here is plain fork-join
    over index ranges, which a mutex, two condition variables and a task
    list cover.

    Determinism contract: [parallel_for] and [map_chunks] assign work by
    *index*, and every result lands in the slot of its index.  Whatever
    interleaving the domains happen to execute, the assembled output is
    the one the sequential loop would produce — callers get bit-for-bit
    reproducible results regardless of job count.

    Concurrency contract: one batch at a time per pool.  Batches must
    not be nested (a task submitting to its own pool would deadlock);
    tasks must confine their writes to disjoint slots.  Batch completion
    is synchronized through the pool mutex, so the caller observes every
    task's writes once the call returns.

    A pool with [jobs = 1] spawns no domains at all: the calling domain
    runs every task inline, which is the graceful sequential fallback
    ([global] picks it whenever the caller asks for one job or the host
    has a single core). *)

type t = {
  jobs : int;  (** worker count, *including* the calling domain *)
  mutable domains : unit Domain.t array;  (** the [jobs - 1] spawned workers *)
  mutex : Mutex.t;
  has_work : Condition.t;   (** signalled when tasks are queued (or shutdown) *)
  batch_done : Condition.t; (** signalled when the last task of a batch ends *)
  mutable queue : (unit -> unit) list;
  mutable running : int;    (** tasks popped but not yet finished *)
  mutable stop : bool;
  mutable first_error : exn option;
}

let jobs t = t.jobs

(* Pops and runs one task.  Called (by worker or caller) with the mutex
   held; returns with the mutex held. *)
let run_one t task =
  t.running <- t.running + 1;
  Mutex.unlock t.mutex;
  (try task ()
   with e ->
     Mutex.lock t.mutex;
     if t.first_error = None then t.first_error <- Some e;
     Mutex.unlock t.mutex);
  Mutex.lock t.mutex;
  t.running <- t.running - 1;
  if t.queue = [] && t.running = 0 then Condition.broadcast t.batch_done

let worker t =
  Mutex.lock t.mutex;
  let continue = ref true in
  while !continue do
    match t.queue with
    | task :: rest ->
      t.queue <- rest;
      run_one t task
    | [] -> if t.stop then continue := false else Condition.wait t.has_work t.mutex
  done;
  Mutex.unlock t.mutex

(** [create ~jobs ()] spawns a pool of [max 1 jobs] workers ([jobs - 1]
    domains plus the caller).  The caller is responsible for the pool's
    lifetime; see [global] for the shared, spawn-once pools that the
    closure and fuzz drivers use. *)
let create ~jobs () =
  let jobs = max 1 jobs in
  let t =
    {
      jobs;
      domains = [||];
      mutex = Mutex.create ();
      has_work = Condition.create ();
      batch_done = Condition.create ();
      queue = [];
      running = 0;
      stop = false;
      first_error = None;
    }
  in
  t.domains <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

(** [shutdown t] stops and joins the worker domains.  Only needed for
    short-lived pools (tests); [global] pools live for the process. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

(* Runs a batch to completion: queue the tasks, wake the workers, and
   have the caller chew through the queue too (with zero worker domains
   this *is* the sequential path).  Re-raises the first task exception
   after the whole batch has drained. *)
let run_batch t tasks =
  match tasks with
  | [] -> ()
  | [ task ] -> task ()
  | tasks ->
    Mutex.lock t.mutex;
    t.queue <- tasks;
    Condition.broadcast t.has_work;
    let rec drain () =
      match t.queue with
      | task :: rest ->
        t.queue <- rest;
        run_one t task;
        drain ()
      | [] ->
        if t.running > 0 then begin
          Condition.wait t.batch_done t.mutex;
          drain ()
        end
    in
    drain ();
    let err = t.first_error in
    t.first_error <- None;
    Mutex.unlock t.mutex;
    (match err with Some e -> raise e | None -> ())

(** [parallel_for t ~n f] runs [f i] for every [i] in [0 .. n-1],
    split into contiguous index chunks across the pool.  [f] must write
    only to slots owned by its own index. *)
let parallel_for t ~n f =
  if n > 0 then
    if t.jobs = 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      (* a few chunks per worker so an uneven chunk cannot serialize the
         batch, but few enough that scheduling stays cheap *)
      let chunks = min n (t.jobs * 4) in
      let base = n / chunks and extra = n mod chunks in
      let tasks =
        List.init chunks (fun c ->
            let lo = (c * base) + min c extra in
            let hi = lo + base + if c < extra then 1 else 0 in
            fun () ->
              for i = lo to hi - 1 do
                f i
              done)
      in
      run_batch t tasks
    end

(** [map_chunks t ~n ~chunk f] applies [f lo hi] to successive ranges
    [\[lo, hi)] covering [0 .. n-1] in steps of [chunk], and returns the
    results *in range order* — the deterministic-assembly primitive the
    fuzz driver builds on. *)
let map_chunks t ~n ~chunk f =
  if n <= 0 then []
  else begin
    let chunk = max 1 chunk in
    let k = ((n - 1) / chunk) + 1 in
    let out = Array.make k None in
    let tasks =
      List.init k (fun c ->
          let lo = c * chunk in
          let hi = min n (lo + chunk) in
          fun () -> out.(c) <- Some (f lo hi))
    in
    run_batch t tasks;
    Array.to_list out |> List.map Option.get
  end

(* ------------------------- shared pools ------------------------------ *)

let recommended () = Domain.recommended_domain_count ()

(* Spawn-once registry: one pool per effective job count, reused by
   every [global] caller for the life of the process. *)
let pools : (int, t) Hashtbl.t = Hashtbl.create 4
let pools_mutex = Mutex.create ()

(** [global ?jobs ()] is the shared pool for [jobs] workers (default:
    [Domain.recommended_domain_count ()]).  Falls back to the sequential
    pool when [jobs <= 1] or the host reports a single core, so callers
    can thread a user-supplied [--jobs] straight through. *)
let global ?jobs () =
  let requested = match jobs with Some j -> j | None -> recommended () in
  let effective = if requested <= 1 || recommended () <= 1 then 1 else requested in
  Mutex.lock pools_mutex;
  let pool =
    match Hashtbl.find_opt pools effective with
    | Some p -> p
    | None ->
      let p = create ~jobs:effective () in
      Hashtbl.add pools effective p;
      p
  in
  Mutex.unlock pools_mutex;
  pool
