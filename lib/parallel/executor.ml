(** A bounded task executor over worker domains — the serving-side
    counterpart of [Pool]'s fork-join batches.

    [Pool] runs one caller-owned batch at a time; a server instead needs
    fire-and-forget submission from many connection handlers, with
    {e admission control}: the queue is bounded, and [try_submit]
    refuses (returns [false]) rather than buffering unboundedly — the
    wire layer turns that refusal into a [BUSY] reply, shedding load
    instead of collapsing under it.

    [pause] / [resume] exist for deterministic tests: a paused executor
    accepts work but runs nothing, so a test can fill the queue to
    capacity (forcing BUSY) or let a request time out, then [resume] and
    watch the backlog drain.  Production code never pauses.

    All synchronization is stdlib ([Mutex] / [Condition] / [Domain]);
    no timed waits are needed here — callers that want a timeout poll
    their own result cell. *)

type stats = {
  submitted : int;   (** accepted by [try_submit] *)
  rejected : int;    (** refused: queue full or shutting down *)
  completed : int;   (** tasks that finished running *)
  queued : int;      (** currently waiting *)
  running : int;     (** currently executing *)
  workers : int;
  queue_capacity : int;
}

(* Registry handles resolved once at [create]: the per-event updates on
   the hot path are then a counter increment / gauge store each. *)
type metrics = {
  m_submitted : Obs.Counter.t;
  m_rejected : Obs.Counter.t;   (* the shed count: BUSY replies upstream *)
  m_completed : Obs.Counter.t;
  m_queue_depth : Obs.Gauge.t;
  m_running : Obs.Gauge.t;      (* worker utilization = running / workers *)
}

type t = {
  mutex : Mutex.t;
  has_work : Condition.t;
  idle : Condition.t;  (** signalled whenever queue and running reach 0 *)
  queue : (unit -> unit) Queue.t;
  queue_capacity : int;
  workers : int;
  metrics : metrics option;
  mutable domains : unit Domain.t array;
  mutable paused : bool;
  mutable draining : bool;  (** no new admissions; drain what is queued *)
  mutable stop : bool;
  mutable running : int;
  mutable submitted : int;
  mutable rejected : int;
  mutable completed : int;
}

(* call with t.mutex held *)
let sync_metrics t =
  match t.metrics with
  | None -> ()
  | Some m ->
    Obs.Gauge.set m.m_queue_depth (float_of_int (Queue.length t.queue));
    Obs.Gauge.set m.m_running (float_of_int t.running)

let worker t =
  Mutex.lock t.mutex;
  let continue = ref true in
  while !continue do
    if t.stop then continue := false
    else if t.paused || Queue.is_empty t.queue then
      Condition.wait t.has_work t.mutex
    else begin
      let task = Queue.pop t.queue in
      t.running <- t.running + 1;
      sync_metrics t;
      Mutex.unlock t.mutex;
      (* tasks own their error reporting (the server wraps each in its
         reply cell); a raise here must not kill the worker domain *)
      (try task () with _ -> ());
      Mutex.lock t.mutex;
      t.running <- t.running - 1;
      t.completed <- t.completed + 1;
      (match t.metrics with
       | None -> ()
       | Some m -> Obs.Counter.incr m.m_completed);
      sync_metrics t;
      if Queue.is_empty t.queue && t.running = 0 then Condition.broadcast t.idle
    end
  done;
  Mutex.unlock t.mutex

(** [create ?registry ~workers ~queue_capacity ()] spawns
    [max 1 workers] domains servicing a queue that admits at most
    [max 1 queue_capacity] waiting tasks.  With [registry] the executor
    publishes [obda_executor_*] metrics (submissions, shed count via
    [rejected_total], completions, queue depth and running-worker
    gauges) into it. *)
let create ?registry ~workers ~queue_capacity () =
  let workers = max 1 workers in
  let metrics =
    Option.map
      (fun registry ->
        let counter = Obs.Registry.counter registry in
        let gauge name = Obs.Registry.gauge registry name in
        let m =
          {
            m_submitted = counter "obda_executor_submitted_total";
            m_rejected = counter "obda_executor_rejected_total";
            m_completed = counter "obda_executor_completed_total";
            m_queue_depth = gauge "obda_executor_queue_depth";
            m_running = gauge "obda_executor_running";
          }
        in
        Obs.Gauge.set (gauge "obda_executor_workers") (float_of_int workers);
        Obs.Gauge.set
          (gauge "obda_executor_queue_capacity")
          (float_of_int (max 1 queue_capacity));
        m)
      registry
  in
  let t =
    {
      mutex = Mutex.create ();
      has_work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      queue_capacity = max 1 queue_capacity;
      workers;
      metrics;
      domains = [||];
      paused = false;
      draining = false;
      stop = false;
      running = 0;
      submitted = 0;
      rejected = 0;
      completed = 0;
    }
  in
  t.domains <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker t));
  t

(** [try_submit t task] — [true] iff the task was admitted.  [false]
    means the queue is at capacity (or the executor is draining): the
    caller should shed the request. *)
let try_submit t task =
  Mutex.lock t.mutex;
  let admitted =
    if t.draining || t.stop || Queue.length t.queue >= t.queue_capacity then begin
      t.rejected <- t.rejected + 1;
      (match t.metrics with
       | None -> ()
       | Some m -> Obs.Counter.incr m.m_rejected);
      false
    end
    else begin
      Queue.push task t.queue;
      t.submitted <- t.submitted + 1;
      (match t.metrics with
       | None -> ()
       | Some m -> Obs.Counter.incr m.m_submitted);
      sync_metrics t;
      Condition.signal t.has_work;
      true
    end
  in
  Mutex.unlock t.mutex;
  admitted

let pause t =
  Mutex.lock t.mutex;
  t.paused <- true;
  Mutex.unlock t.mutex

let resume t =
  Mutex.lock t.mutex;
  t.paused <- false;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex

(** [drain t] blocks until nothing is queued or running.  Does not stop
    admissions by itself — pair with [close] for shutdown, or call alone
    to wait for a quiescent point.  Hangs if the executor is paused. *)
let drain t =
  Mutex.lock t.mutex;
  while not (Queue.is_empty t.queue && t.running = 0) do
    Condition.wait t.idle t.mutex
  done;
  Mutex.unlock t.mutex

(** [close t] stops admitting new tasks; already-queued work still
    runs.  Returns the number of in-flight tasks (queued + running) at
    the moment of closing — the server reports this as its drain
    count. *)
let close t =
  Mutex.lock t.mutex;
  t.draining <- true;
  let in_flight = Queue.length t.queue + t.running in
  Mutex.unlock t.mutex;
  in_flight

(** [shutdown t] — close, drain, stop and join the worker domains. *)
let shutdown t =
  ignore (close t);
  resume t;  (* a paused executor could never drain *)
  drain t;
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains;
  t.domains <- [||]

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      submitted = t.submitted;
      rejected = t.rejected;
      completed = t.completed;
      queued = Queue.length t.queue;
      running = t.running;
      workers = t.workers;
      queue_capacity = t.queue_capacity;
    }
  in
  Mutex.unlock t.mutex;
  s
