(** Cluster membership and epoch-numbered promotion.

    A {!Node} wraps one server process's replication identity: its
    advertised endpoint, the member list, its persisted {e epoch}, and
    either a {!Replicate.Hub} (primary) or a {!Replicate.Subscriber}
    (replica).  The epoch is the fencing token: promotion bumps it,
    every replicated record carries it, and a primary that learns of a
    higher epoch refuses all further writes — so a partitioned
    ex-primary can accept no mutation the new timeline would miss.

    The epoch is persisted (temp + rename + dir fsync) {e before} a
    promotion takes effect: a node that crashes right after promising a
    new epoch comes back remembering the promise.  Fencing is persisted
    the same way (a [fenced] marker file written before the in-memory
    fence engages): a fenced ex-primary that crashes restarts fenced,
    and only a promotion to a higher epoch clears the marker. *)

module Store = Durable.Store
module Io = Durable.Io
module Failpoint = Durable.Failpoint
module Wire = Server.Wire
module Service = Server.Service
module Serve = Server.Serve
module Client = Server.Client

let log_src = Logs.Src.create "cluster.node" ~doc:"cluster membership + promotion"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* --------------------------- epoch on disk --------------------------- *)

let epoch_path dir = Filename.concat dir "epoch"

let load_epoch dir =
  match open_in (epoch_path dir) with
  | exception Sys_error _ -> 0
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | line -> Option.value (int_of_string_opt (String.trim line)) ~default:0
        | exception End_of_file -> 0)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let persist_epoch dir epoch =
  let tmp = epoch_path dir ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Io.write_string fd (Printf.sprintf "%d\n" epoch);
      Unix.fsync fd);
  Failpoint.check "cluster.epoch.persist";
  Unix.rename tmp (epoch_path dir);
  fsync_dir dir

(* The fence marker: while this file exists (and names an epoch >= the
   persisted one) the node's primary role is poisoned — a higher epoch
   was seen and no promotion has superseded it.  Persisted so a fenced
   ex-primary that crashes restarts fenced, not as a write-accepting
   primary of a dead timeline (a split-brain window until some peer
   happened to re-fence it). *)
let fenced_path dir = Filename.concat dir "fenced"

let load_fenced dir =
  match open_in (fenced_path dir) with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match input_line ic with
        | line -> int_of_string_opt (String.trim line)
        | exception End_of_file -> None)

let persist_fenced dir epoch =
  let tmp = fenced_path dir ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Io.write_string fd (Printf.sprintf "%d\n" epoch);
      Unix.fsync fd);
  Unix.rename tmp (fenced_path dir);
  fsync_dir dir

let clear_fenced dir =
  match Unix.unlink (fenced_path dir) with
  | () -> fsync_dir dir
  | exception Unix.Unix_error _ -> ()

(* -------------------------------- node ------------------------------- *)

type role_spec =
  | Primary
  | Replica_of of string  (** seed endpoint of the primary to follow *)

type t = {
  service : Service.t;
  store : Store.t;
  endpoint : string;  (** advertised self endpoint ("" when unknown) *)
  members : string list;  (** every cluster endpoint, self included *)
  dir : string;
  registry : Obs.registry;
  mu : Mutex.t;
  mutable epoch : int;
  mutable hub : Replicate.Hub.t option;
  mutable sub : Replicate.Subscriber.t option;
  mutable following : string;  (** current upstream endpoint, or "" *)
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let epoch t = locked t (fun () -> t.epoch)

let adopt_epoch t e =
  locked t (fun () ->
      if e > t.epoch then begin
        persist_epoch t.dir e;
        t.epoch <- e;
        Log.info (fun f -> f "adopted epoch %d" e)
      end)

(* the hub's [on_fence]: marker first, then epoch — a crash between the
   two restarts fenced at the old epoch (safe), never unfenced at the
   new one (two write-accepting primaries of the same epoch).  Called
   from hub threads outside both locks. *)
let note_fenced t e =
  persist_fenced t.dir e;
  adopt_epoch t e

(* hub + service hooks for the primary role; caller holds [t.mu] *)
let become_primary_locked t =
  let hub =
    Replicate.Hub.create ~registry:t.registry ~epoch:(fun () -> t.epoch)
      ~on_fence:(note_fenced t) t.store
  in
  t.hub <- Some hub;
  t.following <- "";
  Service.set_role t.service Service.Primary;
  Service.set_repl_hooks t.service
    (Some
       {
         Service.gate = Replicate.Hub.gate hub;
         barrier = Replicate.Hub.wait_replicated hub;
       })

let become_replica_locked t ~seed =
  let members =
    List.sort_uniq compare
      (List.filter (fun e -> e <> "") (seed :: t.members))
  in
  t.following <- seed;
  Service.set_role t.service (Service.Replica { primary = seed });
  Service.set_repl_hooks t.service None;
  let sub =
    Replicate.Subscriber.start ~registry:t.registry ~service:t.service
      ~store:t.store ~members ~self:t.endpoint
      ~epoch:(fun () -> epoch t)
      ~adopt_epoch:(fun e -> adopt_epoch t e)
      ~on_primary:(fun ep ->
        t.following <- ep;
        Service.set_role t.service (Service.Replica { primary = ep }))
      ()
  in
  t.sub <- Some sub

let create ?(registry = Obs.default) ~service ~store ~endpoint ~members ~role ()
    =
  let dir = Store.dir store in
  let t =
    {
      service;
      store;
      endpoint;
      members;
      dir;
      registry;
      mu = Mutex.create ();
      epoch = load_epoch dir;
      hub = None;
      sub = None;
      following = "";
    }
  in
  locked t (fun () ->
      match role with
      | Primary -> become_primary_locked t
      | Replica_of seed -> become_replica_locked t ~seed);
  (* a primary restarting with a live fence marker was fenced and never
     re-promoted: come back fenced.  A marker below the persisted epoch
     was superseded by a later promotion (crash between epoch persist
     and marker removal) — discard it. *)
  (match role with
   | Replica_of _ -> ()
   | Primary -> (
     match load_fenced dir with
     | Some e when e >= t.epoch -> (
       match locked t (fun () -> t.hub) with
       | Some hub -> Replicate.Hub.fence_off hub ~epoch:e
       | None -> ())
     | Some _ -> clear_fenced dir
     | None -> ()));
  t

(* ------------------------------- verbs ------------------------------- *)

(** The [REPL STATUS] reply: one line of [k=v] pairs — what the failover
    client and [promote_best] probe. *)
let status t =
  locked t (fun () ->
      let role, extra =
        match t.hub with
        | Some hub ->
          let acked, subs = Replicate.Hub.ack_state hub in
          let fenced =
            match Replicate.Hub.fenced_at hub with
            | None -> ""
            | Some e -> Printf.sprintf " fenced=%d" e
          in
          ("primary", Printf.sprintf " subscribers=%d acked=%d%s" subs acked fenced)
        | None -> ("replica", "")
      in
      let upstream = if t.following = "" then "-" else t.following in
      Wire.Ok
        [
          Printf.sprintf "role=%s epoch=%d fence=%d primary=%s%s" role t.epoch
            (Store.last_seq t.store) upstream extra;
        ])

(** [promote t ~epoch] — flip this node to primary under [epoch].
    Refused unless [epoch] beats the persisted one (a promotion racing a
    newer promotion loses) — and checked {e before} the subscriber is
    severed, so a stale promotion cannot cost a live replica its
    subscription.  On success the subscriber is severed before the
    epoch is persisted and the hub installed, so no record of the old
    timeline can slip in after the flip; re-promoting a fenced
    ex-primary clears the now-superseded fence, or its gate would keep
    refusing every write of the very timeline it now leads. *)
let promote t ~epoch =
  let stale cur =
    Wire.Err
      (Printf.sprintf "stale promotion epoch %d (current is %d)" epoch cur)
  in
  let cur = locked t (fun () -> t.epoch) in
  if epoch <= cur then stale cur
  else begin
    (* sever outside [t.mu]: the subscriber thread may be inside
       [adopt_epoch] which takes the same lock *)
    let sub = locked t (fun () -> t.sub) in
    Option.iter Replicate.Subscriber.stop sub;
    locked t (fun () ->
        t.sub <- None;
        if epoch <= t.epoch then begin
          (* lost a race to a newer promotion/adoption between the check
             and the sever: resume replicating rather than staying a
             severed, ever-staler replica *)
          if t.hub = None then become_replica_locked t ~seed:t.following;
          stale t.epoch
        end
        else begin
          persist_epoch t.dir epoch;
          t.epoch <- epoch;
          clear_fenced t.dir;
          (match t.hub with
           | Some hub ->
             (* already primary: adopt the higher epoch; a fence
                recorded at a lower epoch is superseded by it *)
             Replicate.Hub.unfence hub ~epoch
           | None -> become_primary_locked t);
          Log.info (fun f ->
              f "promoted to primary at epoch %d (fence %d)" epoch
                (Store.last_seq t.store));
          Wire.Ok [ Printf.sprintf "primary epoch %d fence %d" epoch
                      (Store.last_seq t.store) ]
        end)
  end

let subscribe t ~fence ~epoch ~fd ~reader =
  match locked t (fun () -> t.hub) with
  | Some hub -> Replicate.Hub.subscribe hub ~fence ~epoch ~fd ~reader
  | None ->
    let upstream = locked t (fun () -> t.following) in
    let reply =
      Wire.Err
        (if upstream = "" then "not a primary"
         else Printf.sprintf "not a primary; primary is %s" upstream)
    in
    (try
       Io.write_string fd
         (String.concat ""
            (List.map (fun l -> l ^ "\n") (Wire.encode_reply reply)))
     with Unix.Unix_error _ -> ())

(** The hook record handed to {!Serve.create}. *)
let serve_hooks t =
  {
    Serve.rh_status = (fun () -> status t);
    rh_promote = (fun ~epoch -> promote t ~epoch);
    rh_subscribe =
      (fun ~fence ~epoch ~fd ~reader -> subscribe t ~fence ~epoch ~fd ~reader);
  }

let stop t =
  let sub, hub = locked t (fun () -> (t.sub, t.hub)) in
  Option.iter Replicate.Subscriber.stop sub;
  Option.iter Replicate.Hub.stop hub

(* -------------------------- promotion picker ------------------------- *)

(** [promote_best endpoints] — client-side failover orchestration: probe
    every member, pick the reachable {e unfenced} member with the
    highest fence (ties to the highest epoch), and promote it under
    [max observed epoch + 1].  A live fenced ex-primary is never a
    candidate even though its unacked WAL suffix typically gives it the
    highest fence: that suffix is the divergent timeline — promoting it
    would resurrect writes whose clients were told they failed.  Its
    epoch still counts toward the maximum, so the winner's epoch beats
    it.  Returns the promoted endpoint. *)
let promote_best endpoints =
  let probed = List.map (fun e -> (e, Client.probe_endpoint e)) endpoints in
  let up =
    List.filter (fun (_, st) -> st.Client.es_role <> None) probed
  in
  let candidates =
    List.filter (fun (_, st) -> not st.Client.es_fenced) up
  in
  match candidates with
  | [] ->
    Result.Error
      (if up = [] then "no reachable member to promote"
       else "no reachable unfenced member to promote")
  | _ -> (
    let max_epoch =
      List.fold_left (fun acc (_, st) -> max acc st.Client.es_epoch) 0 up
    in
    let best =
      List.sort
        (fun (_, a) (_, b) ->
          match compare b.Client.es_fence a.Client.es_fence with
          | 0 -> compare b.Client.es_epoch a.Client.es_epoch
          | c -> c)
        candidates
      |> List.hd |> fst
    in
    match Client.connect best with
    | Result.Error _ as e -> e
    | Result.Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match Client.hello ~version:3 c with
          | Result.Error _ as e -> e
          | Result.Ok _ -> (
            match
              Client.ok_payload
                (Client.request c (Wire.Repl_promote { epoch = max_epoch + 1 }))
            with
            | Result.Error _ as e -> e
            | Result.Ok _ -> Result.Ok (best, max_epoch + 1))))
