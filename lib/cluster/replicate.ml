(** WAL shipping: the primary-side {!Hub} fans the durable commit
    stream out to subscribed replicas, the replica-side {!Subscriber}
    pulls it in and applies every record through the same path recovery
    uses.

    The unit of replication is the WAL record exactly as the primary
    framed it — the replica appends it under the {e primary's} sequence
    number ({!Durable.Store.append_raw}), so the replication fence is
    simply the replica's [last_seq] and survives restarts without any
    extra bookkeeping file.

    Epoch discipline: every shipped record carries the primary's epoch.
    A subscriber that sees a {e lower} epoch than its own NACKs and
    disconnects (the sender is a fenced ex-primary); the hub, told by a
    NACK or a subscription attempt that a higher epoch exists, fences
    itself — every later mutation is refused before it is logged.  A
    subscriber with a lower epoch than the hub is forced through RESET
    catch-up, which discards whatever unreplicated WAL suffix it wrote
    while it was a primary of a dead epoch. *)

module Store = Durable.Store
module Io = Durable.Io
module Failpoint = Durable.Failpoint
module Wire = Server.Wire
module Service = Server.Service
module Client = Server.Client

let log_src = Logs.Src.create "cluster" ~doc:"replication hub + subscriber"

module Log = (val Logs.src_log log_src : Logs.LOG)

let max_line = 1 lsl 20

(* split an encoded mutation into frame payload lines; the count is
   carried in the frame header so empty lines survive the round trip *)
let payload_lines payload = String.split_on_char '\n' payload

let write_frame ?failpoint fd frame lines =
  let text =
    String.concat "" (List.map (fun l -> l ^ "\n") (Wire.encode_frame frame :: lines))
  in
  Io.write_string ?failpoint fd text

let read_n_lines reader n =
  let rec go k acc =
    if k = 0 then Some (List.rev acc)
    else
      match Io.read_line reader ~max_line with
      | None -> None
      | Some l -> go (k - 1) (l :: acc)
  in
  go n []

(* ------------------------------- hub --------------------------------- *)

module Hub = struct
  type member = {
    id : int;
    peer : string;
    fd : Unix.file_descr;
    q : (int * string) Queue.t;  (** live records awaiting send *)
    mutable acked : int;   (** highest sequence number the replica acked *)
    mutable alive : bool;
  }

  type t = {
    store : Store.t;
    epoch : unit -> int;  (** the owning node's current epoch *)
    on_fence : int -> unit;
        (** durably record the learned higher epoch {e before} the
            fence takes effect (node-side: marker file + epoch) *)
    ack_timeout : float;
        (** how long a mutation waits for the first replica ack before
            the hub drops the laggards and proceeds standalone *)
    queue_capacity : int;
    mu : Mutex.t;
    cond : Condition.t;  (** acks, membership changes, ticker heartbeat *)
    mutable members : member list;
    mutable next_id : int;
    mutable fenced_at : int option;
        (** a peer proved a higher epoch exists: refuse all writes *)
    mutable stopped : bool;
    m_records : Obs.Counter.t;
    m_acks : Obs.Counter.t;
    m_resets : Obs.Counter.t;
    m_dropped : Obs.Counter.t;  (** members dropped (lag, death, overflow) *)
    g_subscribers : Obs.Gauge.t;
  }

  let locked t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  let drop_locked t m reason =
    if m.alive then begin
      m.alive <- false;
      Obs.Counter.incr t.m_dropped;
      (* wake the sender (sees [alive = false] and exits) and unstick a
         blocked ACK read *)
      (try Unix.shutdown m.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      Condition.broadcast t.cond;
      Log.info (fun f ->
          f "hub: dropped subscriber #%d (%s): %s" m.id m.peer reason)
    end

  let reap_locked t =
    let gone, kept = List.partition (fun m -> not m.alive) t.members in
    t.members <- kept;
    Obs.Gauge.set t.g_subscribers (float_of_int (List.length kept));
    gone

  (* the commit observer: called once per durable record, in sequence
     order, on the committer (or appender) thread — must never block *)
  let offer t seq payload =
    locked t (fun () ->
        List.iter
          (fun m ->
            if m.alive then
              if Queue.length m.q >= t.queue_capacity then
                drop_locked t m "send queue overflow"
              else Queue.add (seq, payload) m.q)
          t.members;
        ignore (reap_locked t);
        Condition.broadcast t.cond)

  let create ?(ack_timeout = 2.0) ?(queue_capacity = 8192)
      ?(registry = Obs.default) ?(on_fence = fun (_ : int) -> ()) ~epoch store
      =
    let t =
      {
        store;
        epoch;
        on_fence;
        ack_timeout;
        queue_capacity;
        mu = Mutex.create ();
        cond = Condition.create ();
        members = [];
        next_id = 1;
        fenced_at = None;
        stopped = false;
        m_records = Obs.Registry.counter registry "obda_repl_records_sent_total";
        m_acks = Obs.Registry.counter registry "obda_repl_acks_total";
        m_resets = Obs.Registry.counter registry "obda_repl_resets_total";
        m_dropped =
          Obs.Registry.counter registry "obda_repl_subscribers_dropped_total";
        g_subscribers = Obs.Registry.gauge registry "obda_repl_subscribers";
      }
    in
    Store.add_observer store (offer t);
    (* OCaml's [Condition] has no timed wait; a coarse ticker bounds the
       barrier's timeout checks and the sender's idle loop instead *)
    let _ticker =
      Thread.create
        (fun () ->
          while not t.stopped do
            Thread.delay 0.02;
            locked t (fun () -> Condition.broadcast t.cond)
          done)
        ()
    in
    t

  (** [fence_off t ~epoch] — a peer proved [epoch] exists elsewhere:
      refuse every further write.  The learned epoch is handed to
      [on_fence] {e before} the fence takes effect — and outside the
      hub lock, since the node-side handler persists it under the node
      lock — so a fenced ex-primary that crashes comes back fenced, not
      as a write-accepting primary of a dead timeline.  A persistence
      failure still fences in memory: refusing writes is the safe
      side. *)
  let fence_off t ~epoch =
    let fresh =
      locked t (fun () ->
          match t.fenced_at with Some e when e >= epoch -> false | _ -> true)
    in
    if fresh then begin
      (try t.on_fence epoch
       with e ->
         Log.err (fun f ->
             f "hub: persisting fence at epoch %d failed: %s" epoch
               (Printexc.to_string e)));
      locked t (fun () ->
          match t.fenced_at with
          | Some e when e >= epoch -> ()
          | _ ->
            t.fenced_at <- Some epoch;
            List.iter (fun m -> drop_locked t m "hub fenced") t.members;
            ignore (reap_locked t);
            Condition.broadcast t.cond;
            Log.warn (fun f ->
                f "hub: fenced — epoch %d exists elsewhere" epoch))
    end

  (** [unfence t ~epoch] — a promotion re-adopted this hub under
      [epoch]: a fence recorded at a strictly lower epoch is superseded
      and writes resume.  Without this, a fenced ex-primary promoted to
      a higher epoch would report primary yet refuse every mutation —
      a cluster-wide write outage, since the highest epoch routes all
      writes to it. *)
  let unfence t ~epoch =
    locked t (fun () ->
        match t.fenced_at with
        | Some e when epoch > e ->
          t.fenced_at <- None;
          Condition.broadcast t.cond;
          Log.info (fun f ->
              f "hub: unfenced — re-promoted at epoch %d (was fenced at %d)"
                epoch e)
        | _ -> ())

  let fenced_at t = locked t (fun () -> t.fenced_at)

  (** The write gate, installed as [Service.repl_hooks.gate]: a fenced
      ex-primary refuses mutations {e before} logging anything. *)
  let gate t () =
    match fenced_at t with
    | None -> Result.Ok ()
    | Some e ->
      Result.Error
        (Printf.sprintf "%s; fenced at epoch %d" Service.read_only_prefix e)

  (** The replication barrier, installed as
      [Service.repl_hooks.barrier]: after [seq] is locally durable, hold
      the client's ack until the first subscriber acks it.  No
      subscriber ⇒ immediate (standalone degrades gracefully); ack
      timeout ⇒ drop the laggards and proceed — availability over
      strict semi-sync, the documented tradeoff. *)
  let wait_replicated t seq =
    let deadline = Unix.gettimeofday () +. t.ack_timeout in
    locked t (fun () ->
        let rec wait () =
          match t.fenced_at with
          | Some e ->
            Result.Error
              (Printf.sprintf "%s; fenced at epoch %d" Service.read_only_prefix
                 e)
          | None ->
            let live = List.filter (fun m -> m.alive) t.members in
            if live = [] then Result.Ok ()
            else if List.exists (fun m -> m.acked >= seq) live then begin
              Obs.Counter.incr t.m_acks;
              Result.Ok ()
            end
            else if Unix.gettimeofday () > deadline then begin
              List.iter (fun m -> drop_locked t m "ack timeout") t.members;
              ignore (reap_locked t);
              Result.Ok ()
            end
            else begin
              Condition.wait t.cond t.mu;
              wait ()
            end
        in
        wait ())

  (* sender thread: drain the member's queue onto its socket; frames
     after the catch-up plan are live records *)
  let sender_loop t m =
    let rec next () =
      locked t (fun () ->
          let rec wait () =
            if (not m.alive) || t.stopped then None
            else if Queue.is_empty m.q then begin
              Condition.wait t.cond t.mu;
              wait ()
            end
            else Some (Queue.take m.q)
          in
          wait ())
      |> function
      | None -> ()
      | Some (seq, payload) -> (
        let lines = payload_lines payload in
        match
          write_frame ~failpoint:"repl.send.record" m.fd
            (Wire.F_record
               { seq; epoch = t.epoch (); count = List.length lines })
            lines
        with
        | () ->
          Obs.Counter.incr t.m_records;
          next ()
        | exception _ -> locked t (fun () -> drop_locked t m "send failed"))
    in
    next ()

  (** [subscribe t ~fence ~epoch ~fd ~reader] — the serve layer hands us
      a connection that issued [REPL SUBSCRIBE].  Sends the reply, ships
      the catch-up plan, then turns the calling thread into the ACK
      reader while a spawned sender streams live records.  Returns when
      the subscription ends (socket death, NACK, drop). *)
  let subscribe t ~fence ~epoch ~fd ~reader =
    let send_reply reply =
      try Io.write_string fd
            (String.concat ""
               (List.map (fun l -> l ^ "\n") (Wire.encode_reply reply)))
      with Unix.Unix_error _ | Failpoint.Injected _ -> ()
    in
    let my_epoch = t.epoch () in
    if epoch > my_epoch then begin
      (* the subscriber lived under a newer epoch: WE are the stale one *)
      fence_off t ~epoch;
      send_reply
        (Wire.Err
           (Printf.sprintf "stale primary: subscriber epoch %d > ours %d" epoch
              my_epoch))
    end
    else if fenced_at t <> None then
      send_reply (Wire.Err "hub is fenced; refusing subscribers")
    else begin
      (* an older-epoch subscriber may hold a divergent WAL suffix: force
         the RESET path by pretending it has nothing *)
      let eff_fence = if epoch < my_epoch then -1 else fence in
      let m =
        locked t (fun () ->
            let m =
              {
                id = t.next_id;
                peer = Printf.sprintf "fence=%d epoch=%d" fence epoch;
                fd;
                q = Queue.create ();
                acked = fence;
                alive = true;
              }
            in
            t.next_id <- t.next_id + 1;
            m)
      in
      (* plan + registration are atomic w.r.t. the commit stream: every
         record beyond the plan lands in [m.q] *)
      match
        Store.read_tail t.store ~fence:eff_fence ~register:(fun () ->
            locked t (fun () ->
                t.members <- t.members @ [ m ];
                Obs.Gauge.set t.g_subscribers
                  (float_of_int (List.length t.members))))
      with
      | exception Failure e ->
        send_reply (Wire.Err ("cannot compute catch-up plan: " ^ e))
      | plan -> (
        send_reply (Wire.Ok []);
        let ship_backlog () =
          match plan with
          | Store.Tail_records records ->
            List.iter
              (fun (seq, payload) ->
                let lines = payload_lines payload in
                write_frame ~failpoint:"repl.send.record" m.fd
                  (Wire.F_record
                     { seq; epoch = my_epoch; count = List.length lines })
                  lines)
              records
          | Store.Tail_reset { fence; state; records } ->
            Obs.Counter.incr t.m_resets;
            write_frame m.fd
              (Wire.F_reset { fence; state_records = List.length state })
              [];
            List.iter
              (fun payload ->
                let lines = payload_lines payload in
                write_frame m.fd (Wire.F_state { count = List.length lines })
                  lines)
              state;
            List.iter
              (fun (seq, payload) ->
                let lines = payload_lines payload in
                write_frame ~failpoint:"repl.send.record" m.fd
                  (Wire.F_record
                     { seq; epoch = my_epoch; count = List.length lines })
                  lines)
              records
        in
        match ship_backlog () with
        | exception _ -> locked t (fun () -> drop_locked t m "backlog send failed")
        | () ->
          let _sender = Thread.create (fun () -> sender_loop t m) () in
          (* this thread is now the ACK reader *)
          let rec acks () =
            match Io.read_line reader ~max_line with
            | None -> locked t (fun () -> drop_locked t m "subscriber hung up")
            | exception _ ->
              locked t (fun () -> drop_locked t m "ack read failed")
            | Some line -> (
              match Wire.parse_frame line with
              | Result.Ok (Wire.F_ack { seq }) ->
                locked t (fun () ->
                    m.acked <- max m.acked seq;
                    Condition.broadcast t.cond);
                acks ()
              | Result.Ok (Wire.F_nack { epoch }) ->
                fence_off t ~epoch;
                locked t (fun () -> drop_locked t m "nacked: higher epoch")
              | Result.Ok _ | Result.Error _ ->
                locked t (fun () -> drop_locked t m ("bad ack frame: " ^ line)))
          in
          acks ();
          locked t (fun () -> ignore (reap_locked t)))
    end

  (** Highest sequence number acked by any live subscriber, and the
      subscriber count — the status probe reports both. *)
  let ack_state t =
    locked t (fun () ->
        let live = List.filter (fun m -> m.alive) t.members in
        ( List.fold_left (fun acc m -> max acc m.acked) (-1) live,
          List.length live ))

  let stop t =
    locked t (fun () ->
        t.stopped <- true;
        List.iter (fun m -> drop_locked t m "hub stopped") t.members;
        ignore (reap_locked t);
        Condition.broadcast t.cond)
end

(* ---------------------------- subscriber ----------------------------- *)

module Subscriber = struct
  type t = {
    service : Service.t;
    store : Store.t;
    members : string list;  (** endpoints to search for the primary *)
    self : string;  (** our own endpoint — never subscribe to it *)
    epoch : unit -> int;
    adopt_epoch : int -> unit;  (** persist + install a newer epoch *)
    on_primary : string -> unit;
        (** tell the node who we follow (advertised in refusals) *)
    mutable stop_requested : bool;
    mutable thread : Thread.t option;
    mutable conn_fd : Unix.file_descr option;
    mu : Mutex.t;
    m_applied : Obs.Counter.t;
    m_resets : Obs.Counter.t;
    m_reconnects : Obs.Counter.t;
  }

  let locked t f =
    Mutex.lock t.mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

  (* ----- one live subscription: apply frames until the stream dies --- *)

  let apply_record t ~seq ~payload =
    Failpoint.check "repl.apply.before";
    if seq > Store.last_seq t.store then begin
      Store.append_raw t.store ~seq payload;
      Failpoint.check "repl.apply.after_wal";
      match Store.decode_mutation payload with
      | Result.Error e -> Result.Error ("undecodable replicated record: " ^ e)
      | Result.Ok m -> Service.apply_replicated t.service m
    end
    else Result.Ok ()  (* duplicate delivery: ack again, apply once *)

  let apply_reset t ~fence ~state_payloads =
    Obs.Counter.incr t.m_resets;
    let mutations =
      List.map
        (fun p ->
          match Store.decode_mutation p with
          | Result.Ok m -> m
          | Result.Error e -> failwith ("undecodable state record: " ^ e))
        state_payloads
    in
    (* durable first: a crash after [install_snapshot] recovers into the
       reset state; then rebuild the in-memory sessions from scratch *)
    Store.install_snapshot t.store ~fence mutations;
    Service.reset_sessions t.service;
    match Service.restore t.service mutations with
    | Result.Ok _ -> ()
    | Result.Error e -> failwith ("reset replay failed: " ^ e)

  let stream t conn_fd reader =
    let send frame =
      Failpoint.check "repl.ack.before";
      write_frame conn_fd frame []
    in
    let rec loop () =
      if t.stop_requested then ()
      else
        match Io.read_line reader ~max_line with
        | None -> ()
        | Some line -> (
          match Wire.parse_frame line with
          | Result.Error e -> Log.warn (fun f -> f "subscriber: %s" e)
          | Result.Ok (Wire.F_record { seq; epoch; count }) -> (
            match read_n_lines reader count with
            | None -> ()
            | Some lines ->
              let my_epoch = t.epoch () in
              if epoch < my_epoch then
                (* a fenced ex-primary is still streaming: refuse *)
                send (Wire.F_nack { epoch = my_epoch })
              else begin
                if epoch > my_epoch then t.adopt_epoch epoch;
                match
                  apply_record t ~seq ~payload:(String.concat "\n" lines)
                with
                | Result.Ok () ->
                  Obs.Counter.incr t.m_applied;
                  send (Wire.F_ack { seq });
                  loop ()
                | Result.Error e ->
                  Log.err (fun f -> f "subscriber: apply seq %d: %s" seq e)
              end)
          | Result.Ok (Wire.F_reset { fence; state_records }) -> (
            let rec read_state k acc =
              if k = 0 then Some (List.rev acc)
              else
                match Io.read_line reader ~max_line with
                | None -> None
                | Some line -> (
                  match Wire.parse_frame line with
                  | Result.Ok (Wire.F_state { count }) -> (
                    match read_n_lines reader count with
                    | None -> None
                    | Some lines ->
                      read_state (k - 1) (String.concat "\n" lines :: acc))
                  | _ -> None)
            in
            match read_state state_records [] with
            | None -> ()
            | Some payloads ->
              apply_reset t ~fence ~state_payloads:payloads;
              send (Wire.F_ack { seq = fence });
              loop ())
          | Result.Ok (Wire.F_state _ | Wire.F_ack _ | Wire.F_nack _) ->
            Log.warn (fun f -> f "subscriber: unexpected frame %S" line))
    in
    loop ()

  (* ----- connection management: find the primary, subscribe, retry --- *)

  let try_subscribe t endpoint =
    match Client.dial endpoint with
    | Result.Error _ -> false
    | Result.Ok conn ->
      let finished = ref false in
      Fun.protect
        ~finally:(fun () ->
          locked t (fun () -> t.conn_fd <- None);
          if not !finished then
            try Unix.close conn.Client.fd with Unix.Unix_error _ -> ())
        (fun () ->
          locked t (fun () -> t.conn_fd <- Some conn.Client.fd);
          let exchange req = Client.exchange_conn conn req in
          match exchange (Wire.Hello 3) with
          | Result.Ok (Wire.Ok _) -> (
            match
              exchange
                (Wire.Repl_subscribe
                   { fence = Store.last_seq t.store; epoch = t.epoch () })
            with
            | Result.Ok (Wire.Ok _) ->
              t.on_primary endpoint;
              Obs.Counter.incr t.m_reconnects;
              Log.info (fun f -> f "subscriber: following %s" endpoint);
              stream t conn.Client.fd conn.Client.reader;
              finished := true;
              (try Unix.close conn.Client.fd with Unix.Unix_error _ -> ());
              true
            | _ -> false)
          | _ -> false)

  let find_primary t =
    let candidates = List.filter (fun e -> e <> t.self) t.members in
    let probed = List.map (fun e -> (e, Client.probe_endpoint e)) candidates in
    match
      (* a fenced ex-primary still advertises role=primary but its
         timeline is dead — never follow it *)
      List.filter
        (fun (_, st) ->
          st.Client.es_role = Some "primary" && not st.Client.es_fenced)
        probed
      |> List.sort (fun (_, a) (_, b) ->
             compare b.Client.es_epoch a.Client.es_epoch)
    with
    | (ep, _) :: _ -> Some ep
    | [] -> None

  let run t =
    let attempt = ref 0 in
    while not t.stop_requested do
      let connected =
        match find_primary t with
        | None -> false
        | Some ep -> (
          (* injected faults and socket deaths end the subscription,
             never the loop: back off and re-resolve the primary *)
          try try_subscribe t ep
          with e ->
            Log.warn (fun f ->
                f "subscriber: stream to %s died: %s" ep (Printexc.to_string e));
            false)
      in
      if connected then attempt := 0 else incr attempt;
      if not t.stop_requested then
        Thread.delay
          (Client.backoff ~base_delay:0.05 ~max_delay:1.0 ~jitter:0.25
             (min !attempt 6))
    done

  let start ?(registry = Obs.default) ~service ~store ~members ~self ~epoch
      ~adopt_epoch ~on_primary () =
    let t =
      {
        service;
        store;
        members;
        self;
        epoch;
        adopt_epoch;
        on_primary;
        stop_requested = false;
        thread = None;
        conn_fd = None;
        mu = Mutex.create ();
        m_applied =
          Obs.Registry.counter registry "obda_repl_records_applied_total";
        m_resets = Obs.Registry.counter registry "obda_repl_resets_applied_total";
        m_reconnects =
          Obs.Registry.counter registry "obda_repl_subscribe_attempts_total";
      }
    in
    t.thread <- Some (Thread.create run t);
    t

  (** Stop following: used by promotion.  Severs the stream and joins
      the loop thread — when this returns no further record will be
      applied. *)
  let stop t =
    t.stop_requested <- true;
    locked t (fun () ->
        match t.conn_fd with
        | Some fd -> (
          try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
        | None -> ());
    match t.thread with
    | Some th ->
      Thread.join th;
      t.thread <- None
    | None -> ()
end
