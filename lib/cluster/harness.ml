(** Process-level helpers shared by the chaos harness's cluster mode
    and the cluster benchmark: spawn real [obda_server] processes with
    replication flags, wait for them to listen, probe their replication
    status, and kill them dead ([SIGKILL] — the whole point). *)

module Client = Server.Client

type server = {
  pid : int;
  sock : string;
  data_dir : string;
}

let endpoint s = "unix:" ^ s.sock

let rm_rf dir =
  ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)))

(** Spawn one server process.  [cluster] is the full member endpoint
    list (passed as [--cluster]); [replica_of] seeds a replica's
    primary.  Stdout goes to /dev/null, stderr is inherited. *)
let spawn ~exe ~sock ~data_dir ?(group_commit = false) ?(chaos = true)
    ?(snapshot_every = 64) ?(jobs = 1) ?replica_of ?(cluster = []) () =
  let args =
    [ exe; "--unix"; sock; "--data-dir"; data_dir;
      "--snapshot-every"; string_of_int snapshot_every;
      "--jobs"; string_of_int jobs ]
    @ (if chaos then [ "--chaos" ] else [])
    @ (if group_commit then [ "--group-commit" ] else [])
    @ (match replica_of with
       | Some ep -> [ "--replica-of"; ep ]
       | None -> [])
    @ (match cluster with
       | [] -> []
       | eps -> [ "--cluster"; String.concat "," eps ])
  in
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe (Array.of_list args) Unix.stdin null Unix.stderr
  in
  Unix.close null;
  { pid; sock; data_dir }

let reap pid =
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED n -> Printf.sprintf "exit %d" n
  | _, Unix.WSIGNALED n -> Printf.sprintf "signal %d" n
  | _, Unix.WSTOPPED n -> Printf.sprintf "stopped %d" n
  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> "already reaped"

let kill_dead s =
  (try Unix.kill s.pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (reap s.pid)

let stop_gracefully s =
  (try Unix.kill s.pid Sys.sigterm with Unix.Unix_error _ -> ());
  ignore (reap s.pid)

(** Block until the server accepts a connection; returns it. *)
let wait_listening ?(timeout = 10.0) s =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match Client.connect (endpoint s) with
    | Result.Ok conn -> conn
    | Result.Error _ when Unix.gettimeofday () < deadline ->
      Thread.delay 0.05;
      go ()
    | Result.Error e ->
      failwith (Printf.sprintf "server on %s did not come up: %s" s.sock e)
  in
  go ()

(** Poll [REPL STATUS] until [pred] holds of the probed state (or the
    timeout passes — [false]). *)
let wait_status ?(timeout = 10.0) ep pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    let st = Client.probe_endpoint ep in
    if st.Client.es_error = None && pred st then true
    else if Unix.gettimeofday () < deadline then begin
      Thread.delay 0.05;
      go ()
    end
    else false
  in
  go ()

let wait_role ?timeout ep role =
  wait_status ?timeout ep (fun st -> st.Client.es_role = Some role)

(** Wait until [ep]'s replication fence reaches [fence] — catch-up
    convergence. *)
let wait_fence ?timeout ep fence =
  wait_status ?timeout ep (fun st -> st.Client.es_fence >= fence)
