(** Two-dimensional modularization of ontologies (Section 6,
    "Scalability and modularization"):

    - *horizontal*: "dividing the ontology into separate domains" — we
      partition the signature by connected components of the axiom
      co-occurrence graph, or by an explicit domain assignment;
    - *vertical*: "singling out particularly complex areas of a domain
      and proposing various representations, each of growing detail" —
      detail levels filter which axiom kinds a diagram shows.

    Each module is itself a TBox, so every view re-enters the
    [Translate]/[Layout] pipeline unchanged. *)

open Dllite

(* ------------------------------------------------------------------ *)
(* Horizontal modularization                                           *)
(* ------------------------------------------------------------------ *)

type horizontal_module = {
  name : string;
  tbox : Tbox.t;
}

(* Union-find over signature symbols, keyed by sort-tagged names. *)
let key_of_expr = function
  | Syntax.E_concept (Syntax.Atomic a) -> "c:" ^ a
  | Syntax.E_role q -> "r:" ^ Syntax.role_name q
  | Syntax.E_attr u -> "a:" ^ u
  | Syntax.E_concept (Syntax.Exists q) -> "r:" ^ Syntax.role_name q
  | Syntax.E_concept (Syntax.Attr_domain u) -> "a:" ^ u

let axiom_symbols ax =
  let s = Signature.of_axiom ax in
  List.map (fun a -> "c:" ^ a) (Signature.concepts s)
  @ List.map (fun p -> "r:" ^ p) (Signature.roles s)
  @ List.map (fun u -> "a:" ^ u) (Signature.attributes s)

(** [horizontal tbox] partitions [tbox] into its connected components:
    two axioms land in the same module iff they (transitively) share
    vocabulary.  Module names are derived from the lexicographically
    smallest concept of the component. *)
let horizontal tbox =
  let parent = Hashtbl.create 64 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some "" -> x
    | Some p when p = x -> x
    | Some p ->
      let root = find p in
      Hashtbl.replace parent x root;
      root
  in
  let union x y =
    let rx = find x and ry = find y in
    if rx <> ry then Hashtbl.replace parent rx ry
  in
  List.iter
    (fun ax ->
      match axiom_symbols ax with
      | [] -> ()
      | first :: rest -> List.iter (fun s -> union first s) rest)
    (Tbox.axioms tbox);
  (* group axioms by representative *)
  let groups = Hashtbl.create 16 in
  List.iter
    (fun ax ->
      match axiom_symbols ax with
      | [] -> ()
      | s :: _ ->
        let r = find s in
        let prev = Option.value ~default:[] (Hashtbl.find_opt groups r) in
        Hashtbl.replace groups r (ax :: prev))
    (Tbox.axioms tbox);
  Hashtbl.fold
    (fun _ axioms acc ->
      let tbox = Tbox.of_axioms (List.rev axioms) in
      let name =
        match Signature.concepts (Tbox.signature tbox) with
        | c :: _ -> c
        | [] -> (
          match Signature.roles (Tbox.signature tbox) with
          | r :: _ -> r
          | [] -> "module")
      in
      { name; tbox } :: acc)
    groups []
  |> List.sort (fun a b -> compare a.name b.name)

(** [by_domains assignment tbox] — explicit horizontal modularization:
    [assignment] maps concept names to domain labels; an axiom goes to
    the domain of its first labelled concept, unlabelled axioms to
    ["shared"]. *)
let by_domains assignment tbox =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun ax ->
      let s = Signature.of_axiom ax in
      let domain =
        List.find_map (fun c -> List.assoc_opt c assignment) (Signature.concepts s)
        |> Option.value ~default:"shared"
      in
      let prev = Option.value ~default:[] (Hashtbl.find_opt groups domain) in
      Hashtbl.replace groups domain (ax :: prev))
    (Tbox.axioms tbox);
  Hashtbl.fold
    (fun name axioms acc -> { name; tbox = Tbox.of_axioms (List.rev axioms) } :: acc)
    groups []
  |> List.sort (fun a b -> compare a.name b.name)

(* ------------------------------------------------------------------ *)
(* Vertical modularization (detail levels)                             *)
(* ------------------------------------------------------------------ *)

(** Detail levels, "each of growing detail". *)
type detail =
  | Taxonomy       (** level 0: concept name hierarchy only *)
  | With_roles     (** level 1: + role/attribute hierarchies & typings *)
  | Full           (** level 2: everything, incl. disjointness and
                       qualified existentials *)

let level_keeps detail ax =
  match detail, ax with
  | Taxonomy, Syntax.Concept_incl (Syntax.Atomic _, Syntax.C_basic (Syntax.Atomic _))
    -> true
  | Taxonomy, _ -> false
  | With_roles, Syntax.Concept_incl (_, Syntax.C_basic _) -> true
  | With_roles, Syntax.Role_incl (_, Syntax.R_role _) -> true
  | With_roles, Syntax.Attr_incl (_, Syntax.A_attr _) -> true
  | With_roles, _ -> false
  | Full, _ -> true

(** [vertical detail tbox] filters the TBox to the axioms visible at the
    given detail level (signature is kept in full — the vocabulary is
    part of the "most abstract" view). *)
let vertical detail tbox =
  Tbox.filter (level_keeps detail) tbox

(** [views tbox] — the standard three-level vertical stack. *)
let views tbox =
  [
    ("taxonomy", vertical Taxonomy tbox);
    ("roles", vertical With_roles tbox);
    ("full", vertical Full tbox);
  ]
