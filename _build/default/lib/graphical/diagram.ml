(** Abstract syntax of the paper's graphical language for DL-Lite
    ontologies (Section 6).

    "each graphical element in the diagram represents a specific term,
    expression, or assertion":

    - atomic graphical elements carry the signature: *rectangles* for
      atomic concepts, *diamonds* for atomic roles, *circles* for
      attributes;
    - non-terminal elements build complex expressions: a *white square*
      attached to a role diamond denotes the existential restriction on
      the role ([∃P], the domain side), a *black square* the restriction
      on its inverse ([∃P⁻], the range side); squares attach via
      non-directed dotted edges, and a dotted edge from a square to a
      rectangle scopes the restriction (qualified existential, Fig. 2);
    - an inclusion assertion is a *directed edge* between the elements
      denoting its two sides;
    - a directed edge marked as *negated* denotes a disjointness
      (crossed-out edges in the concrete visual syntax). *)

(** Identifiers of diagram elements. *)
type element_id = int [@@deriving eq, ord, show]

type element =
  | Concept_box of string            (** rectangle labelled with a concept name *)
  | Role_diamond of string           (** diamond labelled with a role name *)
  | Attribute_circle of string       (** circle labelled with an attribute name *)
  | Domain_square of element_id      (** white square attached to a role diamond *)
  | Range_square of element_id       (** black square attached to a role diamond *)
  | Attr_domain_square of element_id (** white square attached to an attribute circle *)
  | Universal_square of element_id * bool
      (** the OWL extension of Section 6 ("universality by using labels
          on the domain and range squares"): a square labelled ∀,
          attached to a role diamond; the flag selects the range side
          (inverse role).  Only meaningful in OWL-extended diagrams —
          the DL-Lite translation rejects it. *)
  | Cardinality_square of element_id * bool * int
      (** cardinality label [≥ n] on a domain/range square; [≥ 1] is
          the plain existential *)
[@@deriving eq, ord, show { with_path = false }]

(** Dotted scope edge: from a domain/range square to a concept box,
    restricting the existential to that concept (Figure 2). *)
type scope = {
  square : element_id;
  concept : element_id;
}
[@@deriving eq, ord, show { with_path = false }]

(** Directed inclusion edge; [negated = true] renders as a crossed edge
    and denotes disjointness; [inverted = true] (meaningful only between
    two role diamonds) carries an inversion marker and denotes
    [P ⊑ Q⁻]-style inclusions. *)
type inclusion_edge = {
  source : element_id;
  target : element_id;
  negated : bool;
  inverted : bool;
}
[@@deriving eq, ord, show { with_path = false }]

type t = {
  elements : (element_id * element) list;  (* id-sorted association list *)
  scopes : scope list;
  inclusions : inclusion_edge list;
}

let empty = { elements = []; scopes = []; inclusions = [] }

let element d id = List.assoc_opt id d.elements

exception Ill_formed of string

let ill_formed fmt = Format.kasprintf (fun m -> raise (Ill_formed m)) fmt

(* ------------------------------------------------------------------ *)
(* Builder                                                             *)
(* ------------------------------------------------------------------ *)

type builder = {
  mutable next_id : int;
  mutable diagram : t;
}

let builder () = { next_id = 0; diagram = empty }

let add_element b e =
  let id = b.next_id in
  b.next_id <- id + 1;
  b.diagram <- { b.diagram with elements = b.diagram.elements @ [ (id, e) ] };
  id

(** [concept b name] adds (or finds) the rectangle for [name]. *)
let concept b name =
  match
    List.find_opt
      (fun (_, e) -> equal_element e (Concept_box name))
      b.diagram.elements
  with
  | Some (id, _) -> id
  | None -> add_element b (Concept_box name)

let role b name =
  match
    List.find_opt
      (fun (_, e) -> equal_element e (Role_diamond name))
      b.diagram.elements
  with
  | Some (id, _) -> id
  | None -> add_element b (Role_diamond name)

let attribute b name =
  match
    List.find_opt
      (fun (_, e) -> equal_element e (Attribute_circle name))
      b.diagram.elements
  with
  | Some (id, _) -> id
  | None -> add_element b (Attribute_circle name)

(* The shared square for an *unqualified* restriction: a square carrying
   a scope (dotted qualification edge) denotes a qualified existential
   and must never be reused for the plain [∃Q] / [δ(U)] reading. *)
let unscoped_square b shape =
  List.find_opt
    (fun (id, e) ->
      equal_element e shape
      && not (List.exists (fun s -> s.square = id) b.diagram.scopes))
    b.diagram.elements

let domain_square b role_id =
  match unscoped_square b (Domain_square role_id) with
  | Some (id, _) -> id
  | None -> add_element b (Domain_square role_id)

let range_square b role_id =
  match unscoped_square b (Range_square role_id) with
  | Some (id, _) -> id
  | None -> add_element b (Range_square role_id)

let attr_domain_square b attr_id =
  match unscoped_square b (Attr_domain_square attr_id) with
  | Some (id, _) -> id
  | None -> add_element b (Attr_domain_square attr_id)

(** [scope b ~square ~concept] attaches a qualification (dotted edge) to
    a square. *)
let scope b ~square ~concept =
  b.diagram <- { b.diagram with scopes = b.diagram.scopes @ [ { square; concept } ] }

(** [include_ b ~source ~target] adds a directed inclusion edge. *)
let include_ ?(negated = false) ?(inverted = false) b ~source ~target =
  b.diagram <-
    {
      b.diagram with
      inclusions = b.diagram.inclusions @ [ { source; target; negated; inverted } ];
    }

let finish b = b.diagram

(* ------------------------------------------------------------------ *)
(* Well-formedness                                                     *)
(* ------------------------------------------------------------------ *)

(** [validate d] checks referential integrity and attachment sorts.
    @raise Ill_formed with a description of the first violation. *)
let validate d =
  let get id =
    match element d id with
    | Some e -> e
    | None -> ill_formed "dangling element id %d" id
  in
  List.iter
    (fun (id, e) ->
      match e with
      | Domain_square r | Range_square r -> (
        match get r with
        | Role_diamond _ -> ()
        | _ -> ill_formed "square %d must attach to a role diamond" id)
      | Attr_domain_square a -> (
        match get a with
        | Attribute_circle _ -> ()
        | _ -> ill_formed "square %d must attach to an attribute circle" id)
      | Universal_square (r, _) | Cardinality_square (r, _, _) -> (
        match get r with
        | Role_diamond _ -> ()
        | _ -> ill_formed "labelled square %d must attach to a role diamond" id)
      | Concept_box _ | Role_diamond _ | Attribute_circle _ -> ())
    d.elements;
  List.iter
    (fun { square; concept } ->
      (match get square with
       | Domain_square _ | Range_square _ | Universal_square _
       | Cardinality_square _ -> ()
       | _ -> ill_formed "scope must start at a domain/range square (%d)" square);
      match get concept with
      | Concept_box _ -> ()
      | _ -> ill_formed "scope must end at a concept box (%d)" concept)
    d.scopes;
  List.iter
    (fun { source; target; inverted; _ } ->
      let sort id =
        match get id with
        | Concept_box _ | Domain_square _ | Range_square _ | Attr_domain_square _
        | Universal_square _ | Cardinality_square _ -> `Concept
        | Role_diamond _ -> `Role
        | Attribute_circle _ -> `Attr
      in
      if sort source <> sort target then
        ill_formed "inclusion edge %d -> %d crosses sorts" source target;
      if inverted && sort source <> `Role then
        ill_formed "inversion marker on non-role edge %d -> %d" source target)
    d.inclusions

(** [stats d] — element/edge counts for reporting. *)
let stats d =
  (List.length d.elements, List.length d.scopes, List.length d.inclusions)
