(** Layered diagram layout and SVG rendering — the "static,
    two-dimensional representation" of Section 6, rendered without
    external tools.

    A miniature Sugiyama pipeline:
    1. rank assignment by longest path over the inclusion edges (so
       subsumees sit below their subsumers, like a hierarchy drawing);
    2. in-layer ordering by the barycenter heuristic, a few sweeps;
    3. coordinate assignment on a fixed grid.

    Squares and scope edges are placed next to the element they attach
    to. *)

type position = {
  x : float;
  y : float;
}

type layout = {
  positions : (Diagram.element_id * position) list;
  width : float;
  height : float;
}

let node_width = 120.0
let node_height = 40.0
let h_gap = 40.0
let v_gap = 70.0

(* Edges that should influence the layering: inclusions (directed) and
   attachments/scopes (undirected, kept close by the barycenter pass). *)
let layering_edges d =
  List.map (fun e -> (e.Diagram.source, e.Diagram.target)) d.Diagram.inclusions

let neighbor_edges d =
  List.filter_map
    (fun (id, e) ->
      match e with
      | Diagram.Domain_square r | Diagram.Range_square r
      | Diagram.Attr_domain_square r
      | Diagram.Universal_square (r, _)
      | Diagram.Cardinality_square (r, _, _) -> Some (id, r)
      | Diagram.Concept_box _ | Diagram.Role_diamond _ | Diagram.Attribute_circle _
        -> None)
    d.Diagram.elements
  @ List.map (fun s -> (s.Diagram.square, s.Diagram.concept)) d.Diagram.scopes

(** [compute d] assigns a position to every element. *)
let compute d =
  let ids = List.map fst d.Diagram.elements in
  let n = match List.fold_left max (-1) ids with m -> m + 1 in
  if n = 0 then { positions = []; width = 0.; height = 0. }
  else begin
    (* 1. longest-path ranks over the inclusion DAG; cycles are broken
       by ignoring edges that would increase a rank past n *)
    let rank = Array.make n 0 in
    let edges = layering_edges d in
    let changed = ref true in
    let guard = ref 0 in
    while !changed && !guard <= n + 1 do
      changed := false;
      incr guard;
      List.iter
        (fun (u, v) ->
          (* supers above: target rank > source rank *)
          if rank.(v) < rank.(u) + 1 && rank.(u) + 1 < n + 1 && !guard <= n then begin
            rank.(v) <- rank.(u) + 1;
            changed := true
          end)
        edges
    done;
    (* squares share the rank of their attachment point *)
    List.iter
      (fun (sq, owner) -> if rank.(sq) = 0 then rank.(sq) <- rank.(owner))
      (neighbor_edges d);
    let max_rank = List.fold_left (fun m id -> max m rank.(id)) 0 ids in
    (* 2. barycenter ordering, a few down-up sweeps *)
    let layers = Array.make (max_rank + 1) [] in
    List.iter (fun id -> layers.(rank.(id)) <- id :: layers.(rank.(id))) ids;
    let order = Array.make n 0.0 in
    Array.iteri
      (fun _ layer -> List.iteri (fun i id -> order.(id) <- float_of_int i) layer)
      layers;
    let adjacency =
      let adj = Array.make n [] in
      List.iter
        (fun (u, v) ->
          adj.(u) <- v :: adj.(u);
          adj.(v) <- u :: adj.(v))
        (edges @ neighbor_edges d);
      adj
    in
    for _sweep = 1 to 4 do
      Array.iteri
        (fun r layer ->
          ignore r;
          let keyed =
            List.map
              (fun id ->
                let neighbors = adjacency.(id) in
                let bary =
                  match neighbors with
                  | [] -> order.(id)
                  | _ ->
                    List.fold_left (fun acc v -> acc +. order.(v)) 0.0 neighbors
                    /. float_of_int (List.length neighbors)
                in
                (bary, id))
              layer
          in
          let sorted = List.sort compare keyed in
          List.iteri (fun i (_, id) -> order.(id) <- float_of_int i) sorted;
          layers.(r) <- List.map snd sorted)
        layers
    done;
    (* 3. coordinates: rank 0 at the bottom *)
    let positions =
      List.map
        (fun id ->
          let x = (order.(id) *. (node_width +. h_gap)) +. (node_width /. 2.) in
          let y =
            (float_of_int (max_rank - rank.(id)) *. (node_height +. v_gap))
            +. (node_height /. 2.)
          in
          (id, { x; y }))
        ids
    in
    let width =
      List.fold_left (fun m (_, p) -> Float.max m (p.x +. node_width)) 0. positions
    in
    let height =
      List.fold_left (fun m (_, p) -> Float.max m (p.y +. node_height)) 0. positions
    in
    { positions; width; height }
  end

(* ------------------------------------------------------------------ *)
(* SVG                                                                 *)
(* ------------------------------------------------------------------ *)

let xml_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string b "&lt;"
      | '>' -> Buffer.add_string b "&gt;"
      | '&' -> Buffer.add_string b "&amp;"
      | '"' -> Buffer.add_string b "&quot;"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let shape_svg e p =
  let cx, cy = (p.x, p.y) in
  match e with
  | Diagram.Concept_box a ->
    Printf.sprintf
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" fill=\"white\" \
       stroke=\"black\"/><text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" \
       dominant-baseline=\"middle\" font-size=\"12\">%s</text>"
      (cx -. (node_width /. 2.)) (cy -. (node_height /. 2.)) node_width node_height
      cx cy (xml_escape a)
  | Diagram.Role_diamond pn ->
    Printf.sprintf
      "<polygon points=\"%.1f,%.1f %.1f,%.1f %.1f,%.1f %.1f,%.1f\" fill=\"white\" \
       stroke=\"black\"/><text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" \
       dominant-baseline=\"middle\" font-size=\"11\">%s</text>"
      cx (cy -. 24.) (cx +. 60.) cy cx (cy +. 24.) (cx -. 60.) cy cx cy
      (xml_escape pn)
  | Diagram.Attribute_circle u ->
    Printf.sprintf
      "<ellipse cx=\"%.1f\" cy=\"%.1f\" rx=\"50\" ry=\"20\" fill=\"white\" \
       stroke=\"black\"/><text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" \
       dominant-baseline=\"middle\" font-size=\"11\">%s</text>"
      cx cy cx cy (xml_escape u)
  | Diagram.Domain_square _ | Diagram.Attr_domain_square _ ->
    Printf.sprintf
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"14\" height=\"14\" fill=\"white\" \
       stroke=\"black\"/>"
      (cx -. 7.) (cy -. 7.)
  | Diagram.Universal_square (_, range_side) ->
    Printf.sprintf
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"16\" height=\"16\" fill=\"%s\" \
       stroke=\"black\"/><text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" \
       dominant-baseline=\"middle\" font-size=\"10\" fill=\"%s\">&#8704;</text>"
      (cx -. 8.) (cy -. 8.)
      (if range_side then "black" else "white")
      cx cy
      (if range_side then "white" else "black")
  | Diagram.Cardinality_square (_, range_side, n) ->
    Printf.sprintf
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"16\" height=\"16\" fill=\"%s\" \
       stroke=\"black\"/><text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" \
       dominant-baseline=\"middle\" font-size=\"9\" fill=\"%s\">&#8805;%d</text>"
      (cx -. 8.) (cy -. 8.)
      (if range_side then "black" else "white")
      cx cy
      (if range_side then "white" else "black")
      n
  | Diagram.Range_square _ ->
    Printf.sprintf
      "<rect x=\"%.1f\" y=\"%.1f\" width=\"14\" height=\"14\" fill=\"black\" \
       stroke=\"black\"/>"
      (cx -. 7.) (cy -. 7.)

(** [to_svg d] lays out and renders the diagram as an SVG document. *)
let to_svg d =
  let l = compute d in
  let pos id = List.assoc id l.positions in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" height=\"%.0f\" \
        viewBox=\"0 0 %.0f %.0f\">\n"
       (l.width +. 20.) (l.height +. 20.) (l.width +. 20.) (l.height +. 20.));
  Buffer.add_string buf
    "<defs><marker id=\"arrow\" markerWidth=\"10\" markerHeight=\"8\" refX=\"9\" \
     refY=\"4\" orient=\"auto\"><path d=\"M0,0 L10,4 L0,8 z\"/></marker></defs>\n";
  let line ?(dotted = false) ?(arrow = false) ?(label = "") a b =
    let pa = pos a and pb = pos b in
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"black\"%s%s/>\n"
         pa.x pa.y pb.x pb.y
         (if dotted then " stroke-dasharray=\"4,3\"" else "")
         (if arrow then " marker-end=\"url(#arrow)\"" else ""));
    if label <> "" then
      Buffer.add_string buf
        (Printf.sprintf
           "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" fill=\"crimson\">%s</text>\n"
           ((pa.x +. pb.x) /. 2.) ((pa.y +. pb.y) /. 2.) (xml_escape label))
  in
  (* edges under nodes *)
  List.iter
    (fun (id, e) ->
      match e with
      | Diagram.Domain_square r | Diagram.Range_square r
      | Diagram.Attr_domain_square r
      | Diagram.Universal_square (r, _)
      | Diagram.Cardinality_square (r, _, _) -> line ~dotted:true id r
      | Diagram.Concept_box _ | Diagram.Role_diamond _ | Diagram.Attribute_circle _
        -> ())
    d.Diagram.elements;
  List.iter
    (fun s -> line ~dotted:true s.Diagram.square s.Diagram.concept)
    d.Diagram.scopes;
  List.iter
    (fun e ->
      let label =
        match e.Diagram.negated, e.Diagram.inverted with
        | true, true -> "x,inv"
        | true, false -> "x"
        | false, true -> "inv"
        | false, false -> ""
      in
      line ~arrow:true ~label e.Diagram.source e.Diagram.target)
    d.Diagram.inclusions;
  List.iter
    (fun (id, e) -> Buffer.add_string buf (shape_svg e (pos id) ^ "\n"))
    d.Diagram.elements;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf
