lib/graphical/dot.pp.ml: Buffer Diagram List Printf String
