lib/graphical/context.pp.ml: Dllite Hashtbl List Option Queue Signature Syntax Tbox Translate
