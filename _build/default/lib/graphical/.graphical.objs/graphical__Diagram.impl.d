lib/graphical/diagram.pp.ml: Format List Ppx_deriving_runtime
