lib/graphical/owlize.pp.ml: Diagram Format List Owlfrag
