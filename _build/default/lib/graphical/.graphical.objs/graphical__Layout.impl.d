lib/graphical/layout.pp.ml: Array Buffer Diagram Float List Printf String
