lib/graphical/modular.pp.ml: Dllite Hashtbl List Option Signature Syntax Tbox
