lib/graphical/translate.pp.ml: Diagram Dllite Format List Signature Syntax Tbox
