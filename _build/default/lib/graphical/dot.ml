(** Graphviz DOT export of diagrams.

    The symbol mapping follows Section 6: rectangles for concepts,
    diamonds for roles, circles (ellipses) for attributes, white/black
    squares for domain/range restrictions; inclusion edges are solid
    arrows (crossed label when negated), scope edges are dotted and
    undirected. *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let node_attrs = function
  | Diagram.Concept_box a ->
    Printf.sprintf "label=\"%s\", shape=box" (escape a)
  | Diagram.Role_diamond p ->
    Printf.sprintf "label=\"%s\", shape=diamond" (escape p)
  | Diagram.Attribute_circle u ->
    Printf.sprintf "label=\"%s\", shape=ellipse" (escape u)
  | Diagram.Domain_square _ ->
    "label=\"\", shape=square, width=0.18, height=0.18, style=filled, fillcolor=white"
  | Diagram.Range_square _ ->
    "label=\"\", shape=square, width=0.18, height=0.18, style=filled, fillcolor=black"
  | Diagram.Attr_domain_square _ ->
    "label=\"\", shape=square, width=0.18, height=0.18, style=filled, fillcolor=white"
  | Diagram.Universal_square (_, range_side) ->
    Printf.sprintf
      "label=\"∀\", shape=square, width=0.22, height=0.22, style=filled, fillcolor=%s, fontcolor=%s"
      (if range_side then "black" else "white")
      (if range_side then "white" else "black")
  | Diagram.Cardinality_square (_, range_side, n) ->
    Printf.sprintf
      "label=\"≥%d\", shape=square, width=0.22, height=0.22, style=filled, fillcolor=%s, fontcolor=%s"
      n
      (if range_side then "black" else "white")
      (if range_side then "white" else "black")

(** [render ?name d] is the DOT source of diagram [d]. *)
let render ?(name = "ontology") d =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=BT;\n  node [fontname=\"Helvetica\"];\n";
  List.iter
    (fun (id, e) ->
      Buffer.add_string buf (Printf.sprintf "  n%d [%s];\n" id (node_attrs e)))
    d.Diagram.elements;
  (* attachment edges: square to its diamond/circle *)
  List.iter
    (fun (id, e) ->
      match e with
      | Diagram.Domain_square r | Diagram.Range_square r
      | Diagram.Attr_domain_square r
      | Diagram.Universal_square (r, _)
      | Diagram.Cardinality_square (r, _, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  n%d -> n%d [dir=none, style=dotted];\n" id r)
      | Diagram.Concept_box _ | Diagram.Role_diamond _ | Diagram.Attribute_circle _
        -> ())
    d.Diagram.elements;
  (* scope edges *)
  List.iter
    (fun { Diagram.square; concept } ->
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [dir=none, style=dotted];\n" square concept))
    d.Diagram.scopes;
  (* inclusion edges *)
  List.iter
    (fun { Diagram.source; target; negated; inverted } ->
      let label =
        match negated, inverted with
        | true, true -> ", label=\"x,inv\""
        | true, false -> ", label=\"x\""
        | false, true -> ", label=\"inv\""
        | false, false -> ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [style=solid%s];\n" source target label))
    d.Diagram.inclusions;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
