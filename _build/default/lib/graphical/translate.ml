(** Translation between diagrams and DL-Lite TBoxes — step (ii) of the
    Section 3 workflow: "translation of this graphical formalization of
    the ontology into a set of processable logical axioms, through an
    automated tool".

    The two directions are inverse up to normalization: [to_tbox
    (of_tbox t)] re-derives exactly the axioms of [t] (property-tested).

    Figure 2 is the canonical example: a white square on [isPartOf]
    scoped to [State] with an incoming inclusion edge from [County]
    reads as [County ⊑ ∃isPartOf.State]; the black square scoped to
    [County] with the edge from [State] reads as
    [State ⊑ ∃isPartOf⁻.County]. *)

open Dllite

exception Untranslatable of string

let fail fmt = Format.kasprintf (fun m -> raise (Untranslatable m)) fmt

(* ------------------------------------------------------------------ *)
(* Diagram -> TBox                                                     *)
(* ------------------------------------------------------------------ *)

(* The basic concept denoted by an element used as an inclusion side. *)
let basic_of_element d id =
  match Diagram.element d id with
  | Some (Diagram.Concept_box a) -> Syntax.Atomic a
  | Some (Diagram.Domain_square r) -> (
    match Diagram.element d r with
    | Some (Diagram.Role_diamond p) -> Syntax.Exists (Syntax.Direct p)
    | _ -> fail "square %d not attached to a role" id)
  | Some (Diagram.Range_square r) -> (
    match Diagram.element d r with
    | Some (Diagram.Role_diamond p) -> Syntax.Exists (Syntax.Inverse p)
    | _ -> fail "square %d not attached to a role" id)
  | Some (Diagram.Attr_domain_square a) -> (
    match Diagram.element d a with
    | Some (Diagram.Attribute_circle u) -> Syntax.Attr_domain u
    | _ -> fail "square %d not attached to an attribute" id)
  | Some (Diagram.Universal_square _ | Diagram.Cardinality_square _) ->
    fail
      "element %d uses the OWL extension (universality/cardinality labels); use \
       Owlize for OWL-extended diagrams"
      id
  | Some (Diagram.Role_diamond _ | Diagram.Attribute_circle _) ->
    fail "element %d is not of concept sort" id
  | None -> fail "dangling element %d" id

(* Qualification of a square, if any. *)
let scope_of d id =
  List.find_map
    (fun s -> if s.Diagram.square = id then Some s.Diagram.concept else None)
    d.Diagram.scopes

(** [to_tbox d] reads the diagram as a set of DL-Lite axioms.
    @raise Untranslatable on ill-formed structure (call
    [Diagram.validate] first for a cleaner error). *)
let to_tbox d =
  Diagram.validate d;
  let axioms =
    List.map
      (fun { Diagram.source; target; negated; inverted } ->
        match Diagram.element d source, Diagram.element d target with
        | Some (Diagram.Role_diamond p), Some (Diagram.Role_diamond q) ->
          let rhs_role = if inverted then Syntax.Inverse q else Syntax.Direct q in
          Syntax.Role_incl
            ( Syntax.Direct p,
              if negated then Syntax.R_neg rhs_role else Syntax.R_role rhs_role )
        | Some (Diagram.Attribute_circle u), Some (Diagram.Attribute_circle v) ->
          Syntax.Attr_incl (u, if negated then Syntax.A_neg v else Syntax.A_attr v)
        | Some _, Some _ ->
          let b1 = basic_of_element d source in
          (* a scoped square as *target* of a positive edge is a
             qualified existential; everywhere else squares denote their
             unqualified basic concept *)
          let rhs =
            match Diagram.element d target, negated with
            | Some (Diagram.Domain_square r), false -> (
              match scope_of d target, Diagram.element d r with
              | Some cid, Some (Diagram.Role_diamond p) -> (
                match Diagram.element d cid with
                | Some (Diagram.Concept_box a) ->
                  Syntax.C_exists_qual (Syntax.Direct p, a)
                | _ -> fail "scope of square %d is not a concept box" target)
              | None, _ -> Syntax.C_basic (basic_of_element d target)
              | _ -> fail "square %d not attached to a role" target)
            | Some (Diagram.Range_square r), false -> (
              match scope_of d target, Diagram.element d r with
              | Some cid, Some (Diagram.Role_diamond p) -> (
                match Diagram.element d cid with
                | Some (Diagram.Concept_box a) ->
                  Syntax.C_exists_qual (Syntax.Inverse p, a)
                | _ -> fail "scope of square %d is not a concept box" target)
              | None, _ -> Syntax.C_basic (basic_of_element d target)
              | _ -> fail "square %d not attached to a role" target)
            | _, false -> Syntax.C_basic (basic_of_element d target)
            | _, true -> Syntax.C_neg (basic_of_element d target)
          in
          Syntax.Concept_incl (b1, rhs)
        | None, _ | _, None -> fail "dangling inclusion edge")
      d.Diagram.inclusions
  in
  (* the diagram also declares its vocabulary *)
  let signature =
    List.fold_left
      (fun s (_, e) ->
        match e with
        | Diagram.Concept_box a -> Signature.add_concept a s
        | Diagram.Role_diamond p -> Signature.add_role p s
        | Diagram.Attribute_circle u -> Signature.add_attribute u s
        | Diagram.Domain_square _ | Diagram.Range_square _
        | Diagram.Attr_domain_square _ | Diagram.Universal_square _
        | Diagram.Cardinality_square _ -> s)
      Signature.empty d.Diagram.elements
  in
  Tbox.of_axioms ~signature axioms

(* ------------------------------------------------------------------ *)
(* TBox -> Diagram                                                     *)
(* ------------------------------------------------------------------ *)

let element_of_basic b builder =
  match b with
  | Syntax.Atomic a -> Diagram.concept builder a
  | Syntax.Exists (Syntax.Direct p) ->
    Diagram.domain_square builder (Diagram.role builder p)
  | Syntax.Exists (Syntax.Inverse p) ->
    Diagram.range_square builder (Diagram.role builder p)
  | Syntax.Attr_domain u ->
    Diagram.attr_domain_square builder (Diagram.attribute builder u)

(** [of_tbox t] renders a TBox as a diagram.

    Qualified existentials need care: the scope (dotted edge) hangs off
    the square, so two axioms [B1 ⊑ ∃P.A1] and [B2 ⊑ ∃P.A2] with
    [A1 ≠ A2] cannot share the [∃P] square.  We emit one *fresh* square
    per distinct qualification, mirroring how the visual language draws
    one restriction symbol per assertion (cf. Figure 2, where the white
    and black squares of [isPartOf] each carry their own dotted edge). *)
let of_tbox t =
  let b = Diagram.builder () in
  (* declare the vocabulary first: diagrams show the whole signature *)
  let signature = Tbox.signature t in
  List.iter (fun a -> ignore (Diagram.concept b a)) (Signature.concepts signature);
  List.iter (fun p -> ignore (Diagram.role b p)) (Signature.roles signature);
  List.iter (fun u -> ignore (Diagram.attribute b u)) (Signature.attributes signature);
  let qualified_square q a =
    (* fresh square + scope per qualified existential *)
    let role_id = Diagram.role b (Syntax.role_name q) in
    let square =
      match q with
      | Syntax.Direct _ -> Diagram.add_element b (Diagram.Domain_square role_id)
      | Syntax.Inverse _ -> Diagram.add_element b (Diagram.Range_square role_id)
    in
    Diagram.scope b ~square ~concept:(Diagram.concept b a);
    square
  in
  List.iter
    (fun ax ->
      match ax with
      | Syntax.Concept_incl (b1, rhs) ->
        let source = element_of_basic b1 b in
        (match rhs with
         | Syntax.C_basic b2 ->
           Diagram.include_ b ~source ~target:(element_of_basic b2 b)
         | Syntax.C_neg b2 ->
           Diagram.include_ ~negated:true b ~source ~target:(element_of_basic b2 b)
         | Syntax.C_exists_qual (q, a) ->
           Diagram.include_ b ~source ~target:(qualified_square q a))
      | Syntax.Role_incl (q1, rhs) ->
        (* the visual language draws role inclusion between diamonds;
           inclusions with an inverse on the left are normalized to the
           direct form first ([Q1⁻ ⊑ Q2] iff [Q1 ⊑ Q2⁻]), and a
           remaining right-hand inverse becomes the inversion marker *)
        let p1, rhs =
          match q1, rhs with
          | Syntax.Direct p1, rhs -> (p1, rhs)
          | Syntax.Inverse p1, Syntax.R_role q2 ->
            (p1, Syntax.R_role (Syntax.role_inverse q2))
          | Syntax.Inverse p1, Syntax.R_neg q2 ->
            (p1, Syntax.R_neg (Syntax.role_inverse q2))
        in
        (match rhs with
         | Syntax.R_role (Syntax.Direct p2) ->
           Diagram.include_ b ~source:(Diagram.role b p1) ~target:(Diagram.role b p2)
         | Syntax.R_neg (Syntax.Direct p2) ->
           Diagram.include_ ~negated:true b ~source:(Diagram.role b p1)
             ~target:(Diagram.role b p2)
         | Syntax.R_role (Syntax.Inverse p2) ->
           Diagram.include_ ~inverted:true b ~source:(Diagram.role b p1)
             ~target:(Diagram.role b p2)
         | Syntax.R_neg (Syntax.Inverse p2) ->
           Diagram.include_ ~negated:true ~inverted:true b
             ~source:(Diagram.role b p1) ~target:(Diagram.role b p2))
      | Syntax.Attr_incl (u1, rhs) ->
        (match rhs with
         | Syntax.A_attr u2 ->
           Diagram.include_ b ~source:(Diagram.attribute b u1)
             ~target:(Diagram.attribute b u2)
         | Syntax.A_neg u2 ->
           Diagram.include_ ~negated:true b ~source:(Diagram.attribute b u1)
             ~target:(Diagram.attribute b u2)))
    (Tbox.axioms t);
  Diagram.finish b

(** [figure2 ()] — the literal diagram of Figure 2 of the paper. *)
let figure2 () =
  let b = Diagram.builder () in
  let county = Diagram.concept b "County" in
  let state = Diagram.concept b "State" in
  let is_part_of = Diagram.role b "isPartOf" in
  let white = Diagram.add_element b (Diagram.Domain_square is_part_of) in
  let black = Diagram.add_element b (Diagram.Range_square is_part_of) in
  Diagram.scope b ~square:white ~concept:state;
  Diagram.scope b ~square:black ~concept:county;
  Diagram.include_ b ~source:county ~target:white;
  Diagram.include_ b ~source:state ~target:black;
  Diagram.finish b
