(** The OWL extension of the graphical language (Section 6: "a natural
    evolution to this process is the expansion of the language to OWL,
    by utilizing the same graphical symbols ... and by modeling
    different property restrictions such as cardinality and universality
    by using labels on the domain and range squares").

    OWL-extended diagrams reuse every DL-Lite symbol and add the
    labelled squares of {!Diagram.Universal_square} and
    {!Diagram.Cardinality_square}.  Translation targets the ALCHI
    fragment ({!Owlfrag.Osyntax}); cardinality labels beyond [≥ 1] are
    outside ALCHI and are rejected with a precise message — exactly the
    loss the approximation pipeline (Section 7) then deals with. *)

module O = Owlfrag.Osyntax

exception Untranslatable of string

let fail fmt = Format.kasprintf (fun m -> raise (Untranslatable m)) fmt

let role_of d id =
  match Diagram.element d id with
  | Some (Diagram.Role_diamond p) -> O.Named p
  | _ -> fail "element %d is not a role diamond" id

let scope_of d id =
  List.find_map
    (fun s -> if s.Diagram.square = id then Some s.Diagram.concept else None)
    d.Diagram.scopes

let scope_concept d id =
  match scope_of d id with
  | None -> O.Top
  | Some cid -> (
    match Diagram.element d cid with
    | Some (Diagram.Concept_box a) -> O.Name a
    | _ -> fail "scope of square %d is not a concept box" id)

(* The ALCHI concept denoted by an element (as either side of an edge). *)
let concept_of d id =
  match Diagram.element d id with
  | Some (Diagram.Concept_box a) -> O.Name a
  | Some (Diagram.Domain_square r) ->
    O.Some_ (role_of d r, scope_concept d id)
  | Some (Diagram.Range_square r) ->
    O.Some_ (O.role_inv (role_of d r), scope_concept d id)
  | Some (Diagram.Universal_square (r, range_side)) ->
    let role = if range_side then O.role_inv (role_of d r) else role_of d r in
    O.All (role, scope_concept d id)
  | Some (Diagram.Cardinality_square (r, range_side, n)) ->
    if n = 1 then
      let role = if range_side then O.role_inv (role_of d r) else role_of d r in
      O.Some_ (role, scope_concept d id)
    else
      fail "cardinality label >= %d on square %d is beyond the ALCHI target" n id
  | Some (Diagram.Attr_domain_square a) -> (
    match Diagram.element d a with
    | Some (Diagram.Attribute_circle u) ->
      O.Some_ (O.Named (Owlfrag.Embed.attr_prefix ^ u), O.Top)
    | _ -> fail "square %d not attached to an attribute" id)
  | Some (Diagram.Role_diamond _ | Diagram.Attribute_circle _) ->
    fail "element %d is not of concept sort" id
  | None -> fail "dangling element %d" id

(** [to_owl d] reads an OWL-extended diagram as an ALCHI TBox. *)
let to_owl d =
  Diagram.validate d;
  List.map
    (fun { Diagram.source; target; negated; inverted } ->
      match Diagram.element d source, Diagram.element d target with
      | Some (Diagram.Role_diamond p), Some (Diagram.Role_diamond q) ->
        let rhs = if inverted then O.Inv q else O.Named q in
        if negated then O.Role_disjoint (O.Named p, rhs)
        else O.Role_sub (O.Named p, rhs)
      | Some (Diagram.Attribute_circle u), Some (Diagram.Attribute_circle v) ->
        let ru = O.Named (Owlfrag.Embed.attr_prefix ^ u) in
        let rv = O.Named (Owlfrag.Embed.attr_prefix ^ v) in
        if negated then O.Role_disjoint (ru, rv) else O.Role_sub (ru, rv)
      | Some _, Some _ ->
        let lhs = concept_of d source in
        let rhs = concept_of d target in
        O.Sub (lhs, if negated then O.Not rhs else rhs)
      | None, _ | _, None -> fail "dangling inclusion edge")
    d.Diagram.inclusions

(* ------------------------------------------------------------------ *)
(* OWL -> diagram (the supported fragment)                             *)
(* ------------------------------------------------------------------ *)

let element_of_concept b c =
  let qualify square = function
    | O.Top -> ()
    | O.Name a -> Diagram.scope b ~square ~concept:(Diagram.concept b a)
    | other ->
      fail "filler %s is not drawable (atomic fillers only)"
        (Format.asprintf "%a" O.pp_concept other)
  in
  match c with
  | O.Name a -> Diagram.concept b a
  | O.Some_ (O.Named p, filler) ->
    let square = Diagram.add_element b (Diagram.Domain_square (Diagram.role b p)) in
    qualify square filler;
    square
  | O.Some_ (O.Inv p, filler) ->
    let square = Diagram.add_element b (Diagram.Range_square (Diagram.role b p)) in
    qualify square filler;
    square
  | O.All (O.Named p, filler) ->
    let square =
      Diagram.add_element b (Diagram.Universal_square (Diagram.role b p, false))
    in
    qualify square filler;
    square
  | O.All (O.Inv p, filler) ->
    let square =
      Diagram.add_element b (Diagram.Universal_square (Diagram.role b p, true))
    in
    qualify square filler;
    square
  | other ->
    fail "concept %s is not drawable in the graphical language"
      (Format.asprintf "%a" O.pp_concept other)

(** [of_owl tbox] draws the supported ALCHI fragment: [Sub]/[Equiv] with
    drawable sides (names, qualified ∃/∀), role axioms, and negated
    right-hand sides as crossed edges. *)
let of_owl (tbox : O.tbox) =
  let b = Diagram.builder () in
  let draw_sub lhs rhs =
    let negated, rhs =
      match rhs with O.Not c -> (true, c) | c -> (false, c)
    in
    let source = element_of_concept b lhs in
    let target = element_of_concept b rhs in
    Diagram.include_ ~negated b ~source ~target
  in
  List.iter
    (fun ax ->
      match ax with
      | O.Sub (lhs, rhs) -> draw_sub lhs rhs
      | O.Equiv (lhs, rhs) ->
        draw_sub lhs rhs;
        draw_sub rhs lhs
      | O.Role_sub (O.Named p, O.Named q) ->
        Diagram.include_ b ~source:(Diagram.role b p) ~target:(Diagram.role b q)
      | O.Role_sub (O.Named p, O.Inv q) ->
        Diagram.include_ ~inverted:true b ~source:(Diagram.role b p)
          ~target:(Diagram.role b q)
      | O.Role_sub (O.Inv p, q) ->
        (* normalize: P⁻ ⊑ Q iff P ⊑ Q⁻ *)
        let inverted = match q with O.Named _ -> true | O.Inv _ -> false in
        let base = O.role_base q in
        Diagram.include_ ~inverted b ~source:(Diagram.role b p)
          ~target:(Diagram.role b base)
      | O.Role_disjoint (p, q) ->
        let inverted =
          match p, q with
          | O.Named _, O.Inv _ | O.Inv _, O.Named _ -> true
          | _ -> false
        in
        Diagram.include_ ~negated:true ~inverted b
          ~source:(Diagram.role b (O.role_base p))
          ~target:(Diagram.role b (O.role_base q)))
    tbox;
  Diagram.finish b
