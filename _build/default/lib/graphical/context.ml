(** "Relevant context" extraction for large-ontology visualization
    (Section 6, "Visualization"): "effectively identify, group together,
    and highlight all the relevant concepts and roles in a specific
    portion of the ontology, while moving the remaining information into
    the background".

    The context of a focus set is computed on the vocabulary
    co-occurrence graph: symbols within [radius] hops of the focus form
    the foreground; relevance decays with distance and grows with
    degree, providing a ranking for progressive disclosure. *)

open Dllite

type entry = {
  symbol : Syntax.expr;   (** a named concept, role or attribute *)
  distance : int;         (** hops from the focus set *)
  relevance : float;      (** degree-weighted, distance-decayed score *)
}

type view = {
  foreground : entry list;  (** sorted by decreasing relevance *)
  background : Syntax.expr list;
  focus_tbox : Tbox.t;      (** axioms mentioning only foreground symbols *)
}

let named_symbols tbox =
  let s = Tbox.signature tbox in
  List.map (fun a -> Syntax.E_concept (Syntax.Atomic a)) (Signature.concepts s)
  @ List.map (fun p -> Syntax.E_role (Syntax.Direct p)) (Signature.roles s)
  @ List.map (fun u -> Syntax.E_attr u) (Signature.attributes s)

let symbol_key = function
  | Syntax.E_concept (Syntax.Atomic a) -> Some ("c:" ^ a)
  | Syntax.E_role q -> Some ("r:" ^ Syntax.role_name q)
  | Syntax.E_attr u -> Some ("a:" ^ u)
  | Syntax.E_concept (Syntax.Exists q) -> Some ("r:" ^ Syntax.role_name q)
  | Syntax.E_concept (Syntax.Attr_domain u) -> Some ("a:" ^ u)

let axiom_keys ax =
  let s = Signature.of_axiom ax in
  List.map (fun a -> "c:" ^ a) (Signature.concepts s)
  @ List.map (fun p -> "r:" ^ p) (Signature.roles s)
  @ List.map (fun u -> "a:" ^ u) (Signature.attributes s)

(** [compute ?radius tbox focus] — the context view around the [focus]
    symbols (default radius 2). *)
let compute ?(radius = 2) tbox focus =
  (* adjacency: symbols co-occurring in an axiom are neighbours *)
  let adjacency = Hashtbl.create 128 in
  let degree = Hashtbl.create 128 in
  let link a b =
    if a <> b then begin
      let prev = Option.value ~default:[] (Hashtbl.find_opt adjacency a) in
      if not (List.mem b prev) then begin
        Hashtbl.replace adjacency a (b :: prev);
        Hashtbl.replace degree a
          (1 + Option.value ~default:0 (Hashtbl.find_opt degree a))
      end
    end
  in
  List.iter
    (fun ax ->
      let keys = axiom_keys ax in
      List.iter (fun a -> List.iter (fun b -> link a b) keys) keys)
    (Tbox.axioms tbox);
  (* BFS from the focus set *)
  let dist = Hashtbl.create 64 in
  let queue = Queue.create () in
  List.iter
    (fun sym ->
      match symbol_key sym with
      | Some k when not (Hashtbl.mem dist k) ->
        Hashtbl.replace dist k 0;
        Queue.add k queue
      | Some _ | None -> ())
    focus;
  while not (Queue.is_empty queue) do
    let k = Queue.pop queue in
    let d = Hashtbl.find dist k in
    if d < radius then
      List.iter
        (fun k' ->
          if not (Hashtbl.mem dist k') then begin
            Hashtbl.replace dist k' (d + 1);
            Queue.add k' queue
          end)
        (Option.value ~default:[] (Hashtbl.find_opt adjacency k))
  done;
  let all = named_symbols tbox in
  let foreground, background =
    List.partition_map
      (fun sym ->
        match symbol_key sym with
        | Some k -> (
          match Hashtbl.find_opt dist k with
          | Some d ->
            let deg =
              float_of_int (Option.value ~default:0 (Hashtbl.find_opt degree k))
            in
            Left
              {
                symbol = sym;
                distance = d;
                relevance = (1.0 +. deg) /. float_of_int (1 + d);
              }
          | None -> Right sym)
        | None -> Right sym)
      all
  in
  let foreground =
    List.sort (fun a b -> compare b.relevance a.relevance) foreground
  in
  let fg_keys =
    List.filter_map (fun e -> symbol_key e.symbol) foreground
  in
  let focus_tbox =
    Tbox.filter
      (fun ax -> List.for_all (fun k -> List.mem k fg_keys) (axiom_keys ax))
      tbox
  in
  { foreground; background; focus_tbox }

(** [focus_diagram ?radius tbox focus] — context view rendered as a
    diagram (the dynamic visualization model's foreground pane). *)
let focus_diagram ?radius tbox focus =
  let view = compute ?radius tbox focus in
  Translate.of_tbox view.focus_tbox
