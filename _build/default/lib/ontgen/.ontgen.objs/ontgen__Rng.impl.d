lib/ontgen/rng.ml: Int64 List
