lib/ontgen/profiles.ml: Generator List String
