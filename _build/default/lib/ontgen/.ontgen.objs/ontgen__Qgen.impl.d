lib/ontgen/qgen.ml: Dllite List QCheck Signature Syntax Tbox
