lib/ontgen/generator.ml: Dllite Hashtbl List Owlfrag Printf Rng Signature Syntax Tbox
