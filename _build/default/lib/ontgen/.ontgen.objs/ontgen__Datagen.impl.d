lib/ontgen/datagen.ml: Dllite Obda Parser Printf Rng Tbox
