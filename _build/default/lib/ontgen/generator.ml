(** Synthetic DL-Lite_R TBox generator.

    The generator is driven by a structural [profile]; given the same
    profile and seed it always produces the same TBox.  Profiles for the
    eleven Figure-1 benchmark ontologies live in [Profiles]. *)

open Dllite
module Osyntax = Owlfrag.Osyntax

type profile = {
  label : string;
  concepts : int;            (** number of atomic concepts *)
  roles : int;               (** number of atomic roles *)
  attributes : int;          (** number of attributes *)
  avg_parents : float;       (** expected direct superclass axioms per concept *)
  locality : float;
      (** in (0, 1]: parents are drawn from the [locality * i] ids below
          [i]; small values yield deep chains, 1.0 yields shallow bushy
          hierarchies *)
  role_incl_per_role : float;     (** expected super-role axioms per role *)
  domain_range_per_role : float;  (** expected [∃P ⊑ A] / [∃P⁻ ⊑ A] axioms per role *)
  exists_rhs_per_concept : float; (** expected [A ⊑ ∃Q] axioms per concept *)
  qualified_per_concept : float;  (** expected [A ⊑ ∃Q.B] axioms per concept *)
  disjoint_per_concept : float;   (** expected concept disjointness per concept *)
  role_disjoint_per_role : float; (** expected role disjointness per role *)
  attr_incl_per_attr : float;     (** expected super-attribute axioms per attribute *)
  eq_cycle_fraction : float;      (** fraction of concepts tied into ⊑-cycles *)
}

(** A neutral mid-size profile, useful as a starting point. *)
let default_profile =
  {
    label = "default";
    concepts = 500;
    roles = 50;
    attributes = 10;
    avg_parents = 1.3;
    locality = 0.5;
    role_incl_per_role = 0.5;
    domain_range_per_role = 1.0;
    exists_rhs_per_concept = 0.3;
    qualified_per_concept = 0.1;
    disjoint_per_concept = 0.1;
    role_disjoint_per_role = 0.05;
    attr_incl_per_attr = 0.5;
    eq_cycle_fraction = 0.01;
  }

(** [scale f p] multiplies the signature sizes by [f] (axiom densities
    are per-entity and stay put).  Used to shrink Figure-1 profiles to
    laptop scale while preserving shape. *)
let scale f p =
  let s n = max 1 (int_of_float (float_of_int n *. f)) in
  {
    p with
    concepts = s p.concepts;
    roles = (if p.roles = 0 then 0 else s p.roles);
    attributes = (if p.attributes = 0 then 0 else s p.attributes);
  }

let concept_name prefix i = Printf.sprintf "%sC%d" prefix i
let role_name prefix i = Printf.sprintf "%sP%d" prefix i
let attr_name prefix i = Printf.sprintf "%sU%d" prefix i

(* Poisson-ish small count with the given mean: we only need the mean to
   be right and the distribution to be lumpy, not an exact Poisson. *)
let count rng mean =
  let base = int_of_float mean in
  let frac = mean -. float_of_int base in
  base + (if Rng.bool rng frac then 1 else 0)

let random_role ~prefix rng p =
  let i = Rng.int rng p.roles in
  if Rng.bool rng 0.5 then Syntax.Direct (role_name prefix i)
  else Syntax.Inverse (role_name prefix i)

(* A random basic concept, biased toward atomic names. *)
let random_basic ~prefix rng p =
  let dice = Rng.float rng in
  if p.roles > 0 && dice < 0.2 then Syntax.Exists (random_role ~prefix rng p)
  else if p.attributes > 0 && dice < 0.25 then
    Syntax.Attr_domain (attr_name prefix (Rng.int rng p.attributes))
  else Syntax.Atomic (concept_name prefix (Rng.int rng p.concepts))

(** [generate ?seed ?prefix profile] produces the TBox; [prefix] is
    prepended to every generated name, letting callers assemble several
    generated modules with disjoint vocabularies. *)
let generate ?(seed = 0xDEADBEEF) ?(prefix = "") p =
  let rng = Rng.create (seed lxor Hashtbl.hash p.label) in
  let axioms = ref [] in
  let push ax = axioms := ax :: !axioms in
  (* concept hierarchy: parents drawn from a locality window below i *)
  for i = 1 to p.concepts - 1 do
    let parents = count rng p.avg_parents in
    for _ = 1 to parents do
      let window = max 1 (int_of_float (float_of_int i *. p.locality)) in
      let j = i - 1 - Rng.int rng window in
      let j = max 0 j in
      push
        (Syntax.Concept_incl
           (Syntax.Atomic (concept_name prefix i), Syntax.C_basic (Syntax.Atomic (concept_name prefix j))))
    done
  done;
  (* equivalence cycles: close a back-edge from an ancestor region *)
  let cycles = int_of_float (float_of_int p.concepts *. p.eq_cycle_fraction) in
  for _ = 1 to cycles do
    if p.concepts >= 2 then begin
      let i = 1 + Rng.int rng (p.concepts - 1) in
      let j = Rng.int rng i in
      push
        (Syntax.Concept_incl
           (Syntax.Atomic (concept_name prefix j), Syntax.C_basic (Syntax.Atomic (concept_name prefix i))))
    end
  done;
  (* role hierarchy *)
  for i = 0 to p.roles - 1 do
    let supers = count rng p.role_incl_per_role in
    for _ = 1 to supers do
      let j = Rng.int rng p.roles in
      if j <> i then
        push
          (Syntax.Role_incl
             ( Syntax.Direct (role_name prefix i),
               Syntax.R_role
                 (if Rng.bool rng 0.25 then Syntax.Inverse (role_name prefix j)
                  else Syntax.Direct (role_name prefix j)) ))
    done;
    (* domain / range typings *)
    let typings = count rng p.domain_range_per_role in
    for _ = 1 to typings do
      let a = Syntax.Atomic (concept_name prefix (Rng.int rng p.concepts)) in
      let side =
        if Rng.bool rng 0.5 then Syntax.Direct (role_name prefix i)
        else Syntax.Inverse (role_name prefix i)
      in
      push (Syntax.Concept_incl (Syntax.Exists side, Syntax.C_basic a))
    done;
    (* role disjointness *)
    if p.roles > 1 && Rng.bool rng p.role_disjoint_per_role then begin
      let j = Rng.int rng p.roles in
      if j <> i then
        push
          (Syntax.Role_incl
             (Syntax.Direct (role_name prefix i), Syntax.R_neg (Syntax.Direct (role_name prefix j))))
    end
  done;
  (* per-concept existentials, qualified existentials, disjointness *)
  for i = 0 to p.concepts - 1 do
    if p.roles > 0 then begin
      let n_ex = count rng p.exists_rhs_per_concept in
      for _ = 1 to n_ex do
        push
          (Syntax.Concept_incl
             ( Syntax.Atomic (concept_name prefix i),
               Syntax.C_basic (Syntax.Exists (random_role ~prefix rng p)) ))
      done;
      let n_qual = count rng p.qualified_per_concept in
      for _ = 1 to n_qual do
        push
          (Syntax.Concept_incl
             ( Syntax.Atomic (concept_name prefix i),
               Syntax.C_exists_qual
                 (random_role ~prefix rng p, concept_name prefix (Rng.int rng p.concepts)) ))
      done
    end;
    if Rng.bool rng p.disjoint_per_concept then begin
      (* disjointness across distant branches, to keep most names
         satisfiable (as in the real benchmarks) *)
      let j = Rng.int rng p.concepts in
      if abs (j - i) > p.concepts / 10 then
        push
          (Syntax.Concept_incl
             (Syntax.Atomic (concept_name prefix i), Syntax.C_neg (Syntax.Atomic (concept_name prefix j))))
    end
  done;
  (* attribute hierarchy and typings *)
  for i = 0 to p.attributes - 1 do
    let supers = count rng p.attr_incl_per_attr in
    for _ = 1 to supers do
      let j = Rng.int rng p.attributes in
      if j <> i then
        push (Syntax.Attr_incl (attr_name prefix i, Syntax.A_attr (attr_name prefix j)))
    done;
    (* attribute domains live somewhere in the concept hierarchy *)
    push
      (Syntax.Concept_incl
         ( Syntax.Attr_domain (attr_name prefix i),
           Syntax.C_basic (Syntax.Atomic (concept_name prefix (Rng.int rng p.concepts))) ))
  done;
  let signature =
    let s = ref Signature.empty in
    for i = 0 to p.concepts - 1 do
      s := Signature.add_concept (concept_name prefix i) !s
    done;
    for i = 0 to p.roles - 1 do
      s := Signature.add_role (role_name prefix i) !s
    done;
    for i = 0 to p.attributes - 1 do
      s := Signature.add_attribute (attr_name prefix i) !s
    done;
    !s
  in
  Tbox.of_axioms ~signature (List.rev !axioms)

(* ------------------------------------------------------------------ *)
(* Expressive (ALCHI) generator, input to the approximation pipeline.  *)
(* ------------------------------------------------------------------ *)

(** Knobs of the expressive generator: a DL-Lite-ish backbone plus a
    share of axioms using constructs outside DL-Lite (⊓ and ⊔ on either
    side, ∀ on the right). *)
type owl_profile = {
  owl_label : string;
  owl_concepts : int;
  owl_roles : int;
  owl_axioms : int;
  expressive_fraction : float;  (** share of axioms beyond DL-Lite *)
}

let default_owl_profile =
  {
    owl_label = "owl-default";
    owl_concepts = 30;
    owl_roles = 6;
    owl_axioms = 60;
    expressive_fraction = 0.4;
  }

let owl_concept_name i = Printf.sprintf "C%d" i
let owl_role_name i = Printf.sprintf "P%d" i

(** [generate_owl ?seed p] produces an ALCHI TBox. *)
let generate_owl ?(seed = 0xFEEDF00D) p =
  let rng = Rng.create (seed lxor Hashtbl.hash p.owl_label) in
  let name () = Osyntax.Name (owl_concept_name (Rng.int rng p.owl_concepts)) in
  let role () =
    let r = Osyntax.Named (owl_role_name (Rng.int rng (max 1 p.owl_roles))) in
    if Rng.bool rng 0.3 then Osyntax.role_inv r else r
  in
  let simple () =
    match Rng.int rng 3 with
    | 0 -> name ()
    | 1 -> Osyntax.Some_ (role (), Osyntax.Top)
    | _ -> name ()
  in
  let complex () =
    match Rng.int rng 5 with
    | 0 -> Osyntax.And (name (), name ())
    | 1 -> Osyntax.Or (name (), name ())
    | 2 -> Osyntax.All (role (), name ())
    | 3 -> Osyntax.Some_ (role (), Osyntax.And (name (), name ()))
    | _ -> Osyntax.Not (name ())
  in
  let axioms = ref [] in
  for _ = 1 to p.owl_axioms do
    let ax =
      if Rng.bool rng 0.15 && p.owl_roles > 1 then
        Osyntax.Role_sub (role (), role ())
      else if Rng.bool rng p.expressive_fraction then
        (* beyond DL-Lite: complex right-hand (or left-hand) sides *)
        if Rng.bool rng 0.3 then Osyntax.Sub (complex (), simple ())
        else Osyntax.Sub (simple (), complex ())
      else Osyntax.Sub (simple (), simple ())
    in
    axioms := ax :: !axioms
  done;
  List.rev !axioms
