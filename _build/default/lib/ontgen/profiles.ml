(** Structural profiles of the eleven Figure-1 benchmark ontologies.

    The real OWL files are not shippable here, so each profile encodes
    the published structural metrics of the OWL 2 QL approximation of
    the benchmark: entity counts, hierarchy shape and axiom densities.
    Classification cost for every algorithm under test is a function of
    exactly these quantities, which is what makes the substitution
    faithful (see DESIGN.md).

    Sizes are the full-scale ones; the bench harness applies
    [Generator.scale] (default 1/10) so that the tableau personas can
    demonstrate their blow-up without taking hours. *)

open Generator

let mouse =
  {
    default_profile with
    label = "Mouse";
    (* the Mouse anatomy ontology: a flat-ish pure taxonomy *)
    concepts = 2744;
    roles = 2;
    attributes = 0;
    avg_parents = 1.1;
    locality = 0.8;
    exists_rhs_per_concept = 0.05;
    qualified_per_concept = 0.0;
    disjoint_per_concept = 0.0;
    role_disjoint_per_role = 0.0;
    eq_cycle_fraction = 0.0;
  }

let transportation =
  {
    default_profile with
    label = "Transportation";
    (* small DAML-style domain ontology with disjointness *)
    concepts = 445;
    roles = 89;
    attributes = 4;
    avg_parents = 1.2;
    locality = 0.6;
    domain_range_per_role = 1.2;
    exists_rhs_per_concept = 0.2;
    disjoint_per_concept = 0.4;
    role_disjoint_per_role = 0.05;
  }

let dolce =
  {
    default_profile with
    label = "DOLCE";
    (* small signature, very dense axiomatization: deep role hierarchy,
       heavy disjointness, many typings *)
    concepts = 209;
    roles = 313;
    attributes = 4;
    avg_parents = 1.8;
    locality = 0.3;
    role_incl_per_role = 1.6;
    domain_range_per_role = 1.8;
    exists_rhs_per_concept = 0.8;
    qualified_per_concept = 0.3;
    disjoint_per_concept = 1.2;
    role_disjoint_per_role = 0.2;
    eq_cycle_fraction = 0.03;
  }

let aeo =
  {
    default_profile with
    label = "AEO";
    concepts = 760;
    roles = 63;
    attributes = 16;
    avg_parents = 1.3;
    locality = 0.5;
    disjoint_per_concept = 1.0;  (* AEO is disjointness-heavy *)
    exists_rhs_per_concept = 0.2;
    qualified_per_concept = 0.05;
  }

let gene =
  {
    default_profile with
    label = "Gene";
    (* the Gene Ontology: large, EL-ish, one part-of role *)
    concepts = 20465;
    roles = 1;
    attributes = 0;
    avg_parents = 1.4;
    locality = 0.7;
    exists_rhs_per_concept = 0.0;
    qualified_per_concept = 0.1;  (* part_of some X *)
    disjoint_per_concept = 0.0;
    role_disjoint_per_role = 0.0;
    eq_cycle_fraction = 0.0;
  }

let el_galen =
  {
    default_profile with
    label = "EL-Galen";
    concepts = 23136;
    roles = 950;
    attributes = 0;
    avg_parents = 1.5;
    locality = 0.4;
    role_incl_per_role = 1.0;
    domain_range_per_role = 0.5;
    exists_rhs_per_concept = 0.5;
    qualified_per_concept = 0.5;
    disjoint_per_concept = 0.0;
    role_disjoint_per_role = 0.0;
    eq_cycle_fraction = 0.02;
  }

let galen =
  {
    el_galen with
    label = "Galen";
    (* full Galen: same signature, denser axioms & role hierarchy *)
    role_incl_per_role = 1.5;
    domain_range_per_role = 0.8;
    exists_rhs_per_concept = 0.7;
    qualified_per_concept = 0.8;
    eq_cycle_fraction = 0.04;
  }

let fma_1_4 =
  {
    default_profile with
    label = "FMA 1.4";
    (* early FMA export: very large taxonomy, sparse other axioms *)
    concepts = 72000;
    roles = 15;
    attributes = 0;
    avg_parents = 1.05;
    locality = 0.6;
    exists_rhs_per_concept = 0.02;
    qualified_per_concept = 0.0;
    disjoint_per_concept = 0.0;
    eq_cycle_fraction = 0.0;
  }

let fma_2_0 =
  {
    default_profile with
    label = "FMA 2.0";
    concepts = 41600;
    roles = 148;
    attributes = 20;
    avg_parents = 1.3;
    locality = 0.4;
    exists_rhs_per_concept = 0.4;
    qualified_per_concept = 0.5;
    disjoint_per_concept = 0.0;
    eq_cycle_fraction = 0.03;
  }

let fma_3_2_1 =
  {
    default_profile with
    label = "FMA 3.2.1";
    concepts = 85000;
    roles = 140;
    attributes = 30;
    avg_parents = 1.2;
    locality = 0.5;
    exists_rhs_per_concept = 0.2;
    qualified_per_concept = 0.2;
    disjoint_per_concept = 0.0;
  }

let fma_obo =
  {
    default_profile with
    label = "FMA-OBO";
    (* OBO rendering of FMA: taxonomy plus part-of existentials *)
    concepts = 75000;
    roles = 2;
    attributes = 0;
    avg_parents = 1.2;
    locality = 0.6;
    exists_rhs_per_concept = 0.1;
    qualified_per_concept = 0.3;
    disjoint_per_concept = 0.0;
  }

(** The Figure-1 row order. *)
let figure1 =
  [
    mouse;
    transportation;
    dolce;
    aeo;
    gene;
    el_galen;
    galen;
    fma_1_4;
    fma_2_0;
    fma_3_2_1;
    fma_obo;
  ]

(** [by_label l] finds a Figure-1 profile by (case-insensitive) name. *)
let by_label l =
  let norm s = String.lowercase_ascii s in
  List.find_opt (fun p -> norm p.label = norm l) figure1
