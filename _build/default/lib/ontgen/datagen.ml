(** Relational data generator for OBDA-scale experiments.

    The paper's motivation is extensional: "it is common ... to deal
    with huge quantities of data, and in these cases the need for
    efficient reasoning is paramount" (Section 4).  This module
    fabricates a university-style OBDA instance — ontology, autonomous
    relational sources, GAV mappings — at any data scale, so the bench
    harness can sweep certain-answer evaluation against growing data
    under a fixed rewriting. *)

open Dllite
module Cq = Obda.Cq

(** Everything needed to assemble an [Obda.Engine.t]. *)
type instance = {
  tbox : Tbox.t;
  mappings : Obda.Mapping.t;
  database : Obda.Database.t;
  persons : int;
  courses : int;
}

let university_tbox =
  Parser.tbox_of_string_exn
    {|
      role teaches
      role attends
      role assists

      Professor [= Faculty
      Lecturer [= Faculty
      Faculty [= Staff
      TA [= Staff
      TA [= Student
      Student [= Person
      Staff [= Person

      exists teaches [= Faculty
      exists teaches^- [= Course
      Professor [= exists teaches
      exists attends [= Student
      exists attends^- [= Course
      assists [= attends
      exists assists [= TA
    |}

let v x = Cq.Var x

let university_mappings =
  [
    (* staff roster with a role column *)
    Obda.Mapping.make
      ~source:
        (Cq.make [ "id" ]
           [ Cq.atom "t_staff" [ v "id"; v "n"; Cq.Const "prof" ] ])
      ~target:(Obda.Mapping.Concept_head ("Professor", v "id"));
    Obda.Mapping.make
      ~source:
        (Cq.make [ "id" ]
           [ Cq.atom "t_staff" [ v "id"; v "n"; Cq.Const "lect" ] ])
      ~target:(Obda.Mapping.Concept_head ("Lecturer", v "id"));
    Obda.Mapping.make
      ~source:(Cq.make [ "s" ] [ Cq.atom "t_enroll" [ v "s"; v "c" ] ])
      ~target:(Obda.Mapping.Concept_head ("Student", v "s"));
    Obda.Mapping.make
      ~source:(Cq.make [ "id"; "c" ] [ Cq.atom "t_teach" [ v "id"; v "c" ] ])
      ~target:(Obda.Mapping.Role_head ("teaches", v "id", v "c"));
    Obda.Mapping.make
      ~source:(Cq.make [ "s"; "c" ] [ Cq.atom "t_enroll" [ v "s"; v "c" ] ])
      ~target:(Obda.Mapping.Role_head ("attends", v "s", v "c"));
    Obda.Mapping.make
      ~source:(Cq.make [ "s"; "c" ] [ Cq.atom "t_assist" [ v "s"; v "c" ] ])
      ~target:(Obda.Mapping.Role_head ("assists", v "s", v "c"));
  ]

(** [generate ?seed ~persons ~courses ()] — a deterministic instance:
    1/10 of persons are staff (60% professors), everyone else a student
    enrolled in ~3 courses; staff teach ~2 courses; 5% of students
    assist one.  Source-tuple volume is ~3.3 per person. *)
let generate ?(seed = 0x5EED) ~persons ~courses () =
  let rng = Rng.create seed in
  let db = Obda.Database.create () in
  let course i = Printf.sprintf "c%d" i in
  let person i = Printf.sprintf "p%d" i in
  let staff_cut = max 1 (persons / 10) in
  for i = 0 to staff_cut - 1 do
    let role = if Rng.bool rng 0.6 then "prof" else "lect" in
    Obda.Database.insert db "t_staff"
      [ person i; Printf.sprintf "name%d" i; role ];
    (* each staff member teaches ~2 courses *)
    for _ = 1 to 2 do
      Obda.Database.insert db "t_teach" [ person i; course (Rng.int rng courses) ]
    done
  done;
  for i = staff_cut to persons - 1 do
    for _ = 1 to 3 do
      Obda.Database.insert db "t_enroll" [ person i; course (Rng.int rng courses) ]
    done;
    if Rng.bool rng 0.05 then
      Obda.Database.insert db "t_assist" [ person i; course (Rng.int rng courses) ]
  done;
  {
    tbox = university_tbox;
    mappings = university_mappings;
    database = db;
    persons;
    courses;
  }

(** [engine ?mode instance] assembles the OBDA system. *)
let engine ?mode instance =
  Obda.Engine.create ?mode ~tbox:instance.tbox ~mappings:instance.mappings
    ~database:instance.database ()

(** Benchmark queries of increasing join depth over the instance. *)
let queries =
  [
    ( "persons",
      Cq.make [ "x" ] [ Cq.atom (Obda.Vabox.concept_pred "Person") [ v "x" ] ] );
    ( "faculty",
      Cq.make [ "x" ] [ Cq.atom (Obda.Vabox.concept_pred "Faculty") [ v "x" ] ] );
    ( "taught-attended",
      Cq.make [ "t"; "s" ]
        [
          Cq.atom (Obda.Vabox.role_pred "teaches") [ v "t"; v "c" ];
          Cq.atom (Obda.Vabox.role_pred "attends") [ v "s"; v "c" ];
        ] );
    ( "ta-of-professor",
      Cq.make [ "s" ]
        [
          Cq.atom (Obda.Vabox.role_pred "assists") [ v "s"; v "c" ];
          Cq.atom (Obda.Vabox.role_pred "teaches") [ v "t"; v "c" ];
          Cq.atom (Obda.Vabox.concept_pred "Professor") [ v "t" ];
        ] );
  ]
