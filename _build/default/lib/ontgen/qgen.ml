(** QCheck generators for random small DL-Lite TBoxes and related
    structures, shared by the property-based test suites.

    The generators deliberately use *tiny* signatures (a handful of
    names) so that random axioms interact: subsumption chains, cycles
    and unsatisfiable predicates all show up with useful frequency. *)

open Dllite

let concept_pool = [ "A"; "B"; "C"; "D"; "E" ]
let role_pool = [ "p"; "q"; "r" ]
let attr_pool = [ "u"; "v" ]

let gen_role =
  QCheck.Gen.(
    map2
      (fun name inv -> if inv then Syntax.Inverse name else Syntax.Direct name)
      (oneofl role_pool) bool)

let gen_basic =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun a -> Syntax.Atomic a) (oneofl concept_pool));
        (3, map (fun q -> Syntax.Exists q) gen_role);
        (1, map (fun u -> Syntax.Attr_domain u) (oneofl attr_pool));
      ])

let gen_concept_rhs =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun b -> Syntax.C_basic b) gen_basic);
        (2, map (fun b -> Syntax.C_neg b) gen_basic);
        ( 2,
          map2 (fun q a -> Syntax.C_exists_qual (q, a)) gen_role (oneofl concept_pool)
        );
      ])

let gen_axiom =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun b rhs -> Syntax.Concept_incl (b, rhs)) gen_basic gen_concept_rhs);
        ( 2,
          map2
            (fun q1 (q2, neg) ->
              Syntax.Role_incl (q1, if neg then Syntax.R_neg q2 else Syntax.R_role q2))
            gen_role (pair gen_role bool) );
        ( 1,
          map2
            (fun u1 (u2, neg) ->
              Syntax.Attr_incl (u1, if neg then Syntax.A_neg u2 else Syntax.A_attr u2))
            (oneofl attr_pool)
            (pair (oneofl attr_pool) bool) );
      ])

(** Generator of axiom lists of length 0..12. *)
let gen_axioms = QCheck.Gen.(list_size (int_bound 12) gen_axiom)

let tbox_of_axioms axioms =
  let signature =
    List.fold_left
      (fun s a -> Signature.add_concept a s)
      (List.fold_left
         (fun s p -> Signature.add_role p s)
         (List.fold_left
            (fun s u -> Signature.add_attribute u s)
            Signature.empty attr_pool)
         role_pool)
      concept_pool
  in
  Tbox.of_axioms ~signature axioms

(** Arbitrary small TBox; shrinks by dropping axioms. *)
let arbitrary_tbox =
  QCheck.make
    ~print:(fun axs -> Tbox.to_string (tbox_of_axioms axs))
    ~shrink:QCheck.Shrink.list gen_axioms

(** Arbitrary single axiom over the same pools, e.g. as an implication
    query. *)
let arbitrary_axiom =
  QCheck.make ~print:Syntax.axiom_to_string gen_axiom

(** Arbitrary basic expression (for subsumption queries). *)
let gen_expr =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun b -> Syntax.E_concept b) gen_basic);
        (3, map (fun q -> Syntax.E_role q) gen_role);
        (1, map (fun u -> Syntax.E_attr u) (oneofl attr_pool));
      ])

let arbitrary_expr = QCheck.make ~print:Syntax.expr_to_string gen_expr
