(** Simulated tableau-based reasoners (the FaCT++, HermiT and Pellet
    columns of Figure 1).

    All three share the ALCHI tableau engine; what distinguishes real
    tableau reasoners on classification workloads is the *harness
    around* the satisfiability oracle, so the personas differ on those
    documented axes:

    - taxonomy traversal: brute-force pairwise tests vs enhanced
      traversal (top-search insertion into the growing taxonomy);
    - told-subsumer seeding: skip tests that follow syntactically;
    - satisfiability pre-check caching: unsatisfiable names are detected
      once and never re-tested.

    Classification is by tableau subsumption tests either way — which is
    precisely why these engines degrade super-linearly on large OWL 2 QL
    ontologies while the digraph method does not.  A wall-clock deadline
    reproduces the paper's timeout cells. *)

open Dllite

exception Timed_out

type traversal =
  | Brute_force          (** test every ordered pair of concept names *)
  | Enhanced_traversal   (** insert names into the taxonomy top-down *)

type persona = {
  name : string;
  traversal : traversal;
  told_subsumers : bool;
  cache_unsat : bool;
  model_cache : bool;
      (** pseudo-model caching: on deterministic (Horn-shaped) inputs,
          one completion per concept name answers all its subsumption
          questions from the cached root label — the optimization that
          lets real tableau reasoners finish mid-size QL ontologies *)
  tableau_budget : int;  (** per-test rule-application budget *)
}

(** The three Figure-1 tableau personas. *)
let pellet =
  {
    name = "Pellet";
    traversal = Brute_force;
    told_subsumers = true;
    cache_unsat = true;
    model_cache = false;
    tableau_budget = 500_000;
  }

let fact_plus_plus =
  {
    name = "FaCT++";
    traversal = Enhanced_traversal;
    told_subsumers = true;
    cache_unsat = true;
    model_cache = true;  (* FaCT++'s completely-defined/pseudo-model tricks *)
    tableau_budget = 500_000;
  }

let hermit =
  {
    name = "HermiT";
    traversal = Enhanced_traversal;
    told_subsumers = false;  (* pays more tests, branches less elsewhere *)
    cache_unsat = true;
    model_cache = false;
    tableau_budget = 500_000;
  }

type result = {
  concept_pairs : (string * string) list;  (* name-level, irreflexive *)
  role_pairs : (string * string) list;
  unsat_names : string list;
  subsumption_tests : int;  (* tableau invocations actually performed *)
}

(* told (syntactic) subsumers of each concept name: reflexive-transitive
   closure of A ⊑ B axioms between names only *)
let told_subsumer_map tbox =
  let direct = Hashtbl.create 64 in
  List.iter
    (function
      | Syntax.Concept_incl (Syntax.Atomic a, Syntax.C_basic (Syntax.Atomic b)) ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt direct a) in
        Hashtbl.replace direct a (b :: prev)
      | _ -> ())
    (Tbox.axioms tbox);
  let closure = Hashtbl.create 64 in
  let rec supers_of a =
    match Hashtbl.find_opt closure a with
    | Some s -> s
    | None ->
      (* break cycles: publish the reflexive seed before recursing *)
      Hashtbl.replace closure a [ a ];
      let ds = Option.value ~default:[] (Hashtbl.find_opt direct a) in
      let all =
        List.sort_uniq compare (a :: List.concat_map (fun b -> b :: supers_of b) ds)
      in
      Hashtbl.replace closure a all;
      all
  in
  fun a -> supers_of a

(** [classify ?deadline persona tbox] classifies [tbox] with the given
    persona.  @raise Timed_out when [deadline] (seconds of wall clock)
    is exceeded — the harness renders this as a Figure-1 "timeout" cell;
    a blown per-test budget is treated the same way. *)
let classify ?deadline persona tbox =
  let started = Unix.gettimeofday () in
  let check_deadline () =
    match deadline with
    | Some d when Unix.gettimeofday () -. started > d -> raise Timed_out
    | Some _ | None -> ()
  in
  let cfg = Owlfrag.Tableau.compile (Owlfrag.Embed.tbox tbox) in
  let tests = ref 0 in
  (* the deadline is also polled *inside* each tableau run: a single
     hard satisfiability test must not overshoot the wall-clock limit *)
  let expired () =
    match deadline with
    | Some d -> Unix.gettimeofday () -. started > d
    | None -> false
  in
  let tableau_subsumes c d =
    check_deadline ();
    incr tests;
    match
      Owlfrag.Tableau.subsumes ~budget:persona.tableau_budget ~deadline:expired cfg
        c d
    with
    | r -> r
    | exception Owlfrag.Tableau.Budget_exhausted -> raise Timed_out
  in
  let signature = Tbox.signature tbox in
  let names = Signature.concepts signature in
  let told = told_subsumer_map tbox in
  (* 0. pseudo-model cache: on deterministic inputs, one completion per
     name answers every later subsumption question about it *)
  let model_cache =
    if persona.model_cache && Owlfrag.Tableau.is_deterministic cfg then begin
      let table = Hashtbl.create 64 in
      List.iter
        (fun a ->
          check_deadline ();
          incr tests;
          let completion =
            match
              Owlfrag.Tableau.root_completion ~budget:persona.tableau_budget
                ~deadline:expired cfg (Owlfrag.Osyntax.Name a)
            with
            | r -> r
            | exception Owlfrag.Tableau.Budget_exhausted -> raise Timed_out
          in
          Hashtbl.replace table a completion)
        names;
      Some table
    end
    else None
  in
  (* 1. satisfiability pre-check (find unsatisfiable names) *)
  let unsat_names =
    match model_cache with
    | Some table ->
      List.filter (fun a -> Hashtbl.find_opt table a = Some None) names
    | None ->
      if persona.cache_unsat then
        List.filter
          (fun a -> tableau_subsumes (Owlfrag.Osyntax.Name a) Owlfrag.Osyntax.Bot)
          names
      else []
  in
  let is_unsat a = List.mem a unsat_names in
  let subsumes_names a b =
    if a = b then true
    else if is_unsat a then true
    else if persona.told_subsumers && List.mem b (told a) then true
    else
      match model_cache with
      | Some table -> (
        match Hashtbl.find_opt table a with
        | Some (Some label) ->
          List.exists
            (function Owlfrag.Osyntax.Name b' -> b' = b | _ -> false)
            label
        | Some None -> true (* unsatisfiable name *)
        | None -> tableau_subsumes (Owlfrag.Osyntax.Name a) (Owlfrag.Osyntax.Name b))
      | None -> tableau_subsumes (Owlfrag.Osyntax.Name a) (Owlfrag.Osyntax.Name b)
  in
  let concept_pairs =
    match persona.traversal with
    | Brute_force ->
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b -> if a <> b && subsumes_names a b then Some (a, b) else None)
            names)
        names
    | Enhanced_traversal ->
      (* Insert names one at a time.  Top search walks the taxonomy from
         the roots, descending only below subsumers (the subsumer set is
         upward-closed along taxonomy edges, so pruning is complete);
         bottom search finds the already-inserted subsumees of [a] — a
         node known to be subsumed needs no tests for its descendants.
         Both phases skip entire subtrees, which is the point of the
         optimization. *)
      let supers = Hashtbl.create 64 in (* name -> complete subsumer set *)
      let children = Hashtbl.create 64 in (* taxonomy search edges *)
      let roots = ref [] in
      let kids b = Option.value ~default:[] (Hashtbl.find_opt children b) in
      let add_super x b =
        let prev = Option.value ~default:[] (Hashtbl.find_opt supers x) in
        if not (List.mem b prev) then Hashtbl.replace supers x (b :: prev)
      in
      let rec descendants acc b =
        List.fold_left
          (fun acc c -> if List.mem c acc then acc else descendants (c :: acc) c)
          acc (kids b)
      in
      let insert a =
        (* top search: all subsumers of [a] among inserted names *)
        let found = Hashtbl.create 16 in
        let rec visit_up b =
          check_deadline ();
          if (not (Hashtbl.mem found b)) && subsumes_names a b then begin
            Hashtbl.replace found b ();
            List.iter visit_up (kids b)
          end
        in
        List.iter visit_up !roots;
        let subsumers = Hashtbl.fold (fun b () acc -> b :: acc) found [] in
        Hashtbl.replace supers a subsumers;
        (* bottom search: subsumees of [a]; once a node tests positive,
           all its taxonomy descendants follow for free *)
        let below = Hashtbl.create 16 in
        let seen = Hashtbl.create 16 in
        let rec visit_down b =
          if not (Hashtbl.mem seen b) then begin
            Hashtbl.replace seen b ();
            check_deadline ();
            if subsumes_names b a then
              List.iter
                (fun d -> Hashtbl.replace below d ())
                (b :: descendants [] b)
            else List.iter visit_down (kids b)
          end
        in
        List.iter visit_down !roots;
        Hashtbl.iter (fun x () -> add_super x a) below;
        (* link [a] under its most specific subsumers (or as a root) *)
        let most_specific =
          List.filter
            (fun b ->
              not
                (List.exists
                   (fun c ->
                     c <> b
                     && List.mem b (Option.value ~default:[] (Hashtbl.find_opt supers c)))
                   subsumers))
            subsumers
        in
        if most_specific = [] then roots := a :: !roots
        else
          List.iter
            (fun b -> Hashtbl.replace children b (a :: kids b))
            most_specific
      in
      List.iter insert names;
      List.concat_map
        (fun a ->
          if is_unsat a then
            List.filter_map (fun b -> if b <> a then Some (a, b) else None) names
          else
            List.filter_map
              (fun b -> if b <> a then Some (a, b) else None)
              (Option.value ~default:[] (Hashtbl.find_opt supers a)))
        names
  in
  (* 2. property hierarchy: tableau reasoners compute it from the told
     role axioms' reflexive-transitive closure (cheap either way) *)
  let hierarchy = Owlfrag.Hierarchy.build (Owlfrag.Embed.tbox tbox) in
  let role_names = Signature.roles signature in
  let role_pairs =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun q ->
            if
              p <> q
              && Owlfrag.Hierarchy.subsumes hierarchy (Owlfrag.Osyntax.Named p)
                   (Owlfrag.Osyntax.Named q)
            then Some (p, q)
            else None)
          role_names)
      role_names
  in
  {
    concept_pairs = List.sort_uniq compare concept_pairs;
    role_pairs = List.sort compare role_pairs;
    unsat_names;
    subsumption_tests = !tests;
  }
