lib/baselines/naive.ml: Dllite List Quonto Set Signature Syntax Tbox
