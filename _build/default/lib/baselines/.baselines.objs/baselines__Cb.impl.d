lib/baselines/cb.ml: Array Dllite Graphlib Hashtbl List Queue Signature Syntax Tbox
