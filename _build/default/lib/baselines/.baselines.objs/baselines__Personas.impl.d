lib/baselines/personas.ml: Dllite Hashtbl List Option Owlfrag Signature Syntax Tbox Unix
