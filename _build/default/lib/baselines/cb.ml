(** Consequence-based classifier in the style of the CB reasoner /
    ELK: saturate per-concept "derived superconcept" sets with indexed
    inference rules and a worklist.

    Faithful to the paper's description of CB in two ways:
    - it is very fast on positive-inclusion-heavy ontologies (one pass,
      no pairwise tests, no closure matrix) — internally the saturation
      runs over interned integer ids with bit-set membership, the same
      engineering that makes the real CB competitive with QuOnto in
      Figure 1; and
    - it does **not** compute the property (role/attribute) hierarchy —
      Figure 1's footnote that CB "does not always perform complete
      classification ... does not compute property hierarchy".
      [role_hierarchy] deliberately returns only told axioms. *)

open Dllite

type t = {
  exprs : Syntax.expr array;              (* id -> concept-sort expression *)
  ids : (Syntax.expr, int) Hashtbl.t;     (* inverse *)
  supers : Graphlib.Bitvec.t array;       (* supers.(x) = derived S(x) *)
  unsat : bool array;
  told_role_pairs : (string * string) list;
  concept_names : string list;
}

let concept_universe tbox =
  let s = Tbox.signature tbox in
  List.map (fun a -> Syntax.E_concept (Syntax.Atomic a)) (Signature.concepts s)
  @ List.concat_map
      (fun p ->
        [
          Syntax.E_concept (Syntax.Exists (Syntax.Direct p));
          Syntax.E_concept (Syntax.Exists (Syntax.Inverse p));
        ])
      (Signature.roles s)
  @ List.map (fun u -> Syntax.E_concept (Syntax.Attr_domain u)) (Signature.attributes s)

(** [classify tbox] saturates the concept hierarchy. *)
let classify tbox =
  let universe = Array.of_list (concept_universe tbox) in
  let n = Array.length universe in
  let ids = Hashtbl.create (2 * n) in
  Array.iteri (fun i e -> Hashtbl.replace ids e i) universe;
  let id e = Hashtbl.find_opt ids e in
  (* concept-level one-step links: B ⊑ B' contributions, with role and
     attribute inclusions projected onto their ∃ / δ components *)
  let links = Array.make n [] in
  let add_link b b' =
    match id b, id b' with
    | Some i, Some j -> links.(i) <- j :: links.(i)
    | _ -> ()
  in
  List.iter
    (fun ax ->
      match ax with
      | Syntax.Concept_incl (b1, Syntax.C_basic b2) ->
        add_link (Syntax.E_concept b1) (Syntax.E_concept b2)
      | Syntax.Concept_incl (b1, Syntax.C_exists_qual (q, _)) ->
        add_link (Syntax.E_concept b1) (Syntax.E_concept (Syntax.Exists q))
      | Syntax.Role_incl (q1, Syntax.R_role q2) ->
        add_link
          (Syntax.E_concept (Syntax.Exists q1))
          (Syntax.E_concept (Syntax.Exists q2));
        add_link
          (Syntax.E_concept (Syntax.Exists (Syntax.role_inverse q1)))
          (Syntax.E_concept (Syntax.Exists (Syntax.role_inverse q2)))
      | Syntax.Attr_incl (u1, Syntax.A_attr u2) ->
        add_link
          (Syntax.E_concept (Syntax.Attr_domain u1))
          (Syntax.E_concept (Syntax.Attr_domain u2))
      | Syntax.Concept_incl (_, Syntax.C_neg _)
      | Syntax.Role_incl (_, Syntax.R_neg _)
      | Syntax.Attr_incl (_, Syntax.A_neg _) -> ())
    (Tbox.axioms tbox);
  (* saturation: S(x) starts at {x}; B ∈ S(x), B → C  ⟹  C ∈ S(x) *)
  let supers = Array.init n (fun _ -> Graphlib.Bitvec.create n) in
  let queue = Queue.create () in
  for x = 0 to n - 1 do
    Graphlib.Bitvec.set supers.(x) x;
    Queue.add (x, x) queue
  done;
  while not (Queue.is_empty queue) do
    let x, b = Queue.pop queue in
    List.iter
      (fun c ->
        if not (Graphlib.Bitvec.get supers.(x) c) then begin
          Graphlib.Bitvec.set supers.(x) c;
          Queue.add (x, c) queue
        end)
      links.(b)
  done;
  (* incoherence from concept disjointness: S1, S2 ∈ S(x) with a told NI
     (S1 ⊑ ¬S2) derives ⊥ ∈ S(x) *)
  let nis =
    List.filter_map
      (function
        | Syntax.Concept_incl (b1, Syntax.C_neg b2) -> (
          match id (Syntax.E_concept b1), id (Syntax.E_concept b2) with
          | Some i, Some j -> Some (i, j)
          | _ -> None)
        | _ -> None)
      (Tbox.axioms tbox)
  in
  let unsat = Array.make n false in
  for x = 0 to n - 1 do
    if
      List.exists
        (fun (i, j) ->
          Graphlib.Bitvec.get supers.(x) i && Graphlib.Bitvec.get supers.(x) j)
        nis
    then unsat.(x) <- true
  done;
  (* x ⊑ y with y unsat: x unsat; one pass suffices because the supers
     sets are already transitively closed *)
  let unsat_mask = Graphlib.Bitvec.create n in
  Array.iteri (fun y u -> if u then Graphlib.Bitvec.set unsat_mask y) unsat;
  for x = 0 to n - 1 do
    if not unsat.(x) then
      if
        not
          (Graphlib.Bitvec.is_empty
             (Graphlib.Bitvec.inter ~a:supers.(x) ~b:unsat_mask))
      then unsat.(x) <- true
  done;
  let told_role_pairs =
    List.filter_map
      (function
        | Syntax.Role_incl (Syntax.Direct p, Syntax.R_role (Syntax.Direct q)) ->
          Some (p, q)
        | _ -> None)
      (Tbox.axioms tbox)
  in
  {
    exprs = universe;
    ids;
    supers;
    unsat;
    told_role_pairs;
    concept_names = Signature.concepts (Tbox.signature tbox);
  }

let subsumes t e1 e2 =
  match Hashtbl.find_opt t.ids e1 with
  | None -> Syntax.equal_expr e1 e2
  | Some i ->
    if t.unsat.(i) then true
    else (
      match Hashtbl.find_opt t.ids e2 with
      | Some j -> Graphlib.Bitvec.get t.supers.(i) j
      | None -> false)

let is_unsat t e =
  match Hashtbl.find_opt t.ids e with Some i -> t.unsat.(i) | None -> false

(** [concept_hierarchy t] — complete name-level concept taxonomy. *)
let concept_hierarchy t =
  List.concat_map
    (fun a ->
      let ea = Syntax.E_concept (Syntax.Atomic a) in
      match Hashtbl.find_opt t.ids ea with
      | None -> []
      | Some i ->
        if t.unsat.(i) then
          List.filter_map (fun b -> if a <> b then Some (a, b) else None) t.concept_names
        else
          Graphlib.Bitvec.to_list t.supers.(i)
          |> List.filter_map (fun j ->
                 match t.exprs.(j) with
                 | Syntax.E_concept (Syntax.Atomic b) when b <> a -> Some (a, b)
                 | _ -> None))
    t.concept_names
  |> List.sort compare

(** [role_hierarchy t] — deliberately incomplete: told axioms only (the
    CB reasoner does not classify properties). *)
let role_hierarchy t = List.sort compare t.told_role_pairs
