(** Naive rule-saturation classifier for DL-Lite_R.

    A third, independent implementation of classification (besides the
    digraph method and the tableau oracle): it saturates the set of
    derived basic inclusions under the DL-Lite inference rules with a
    plain worklist, without any graph machinery.  Quadratic-ish and
    allocation-heavy on purpose — it exists as a cross-check and as the
    "no cleverness" datapoint in the ablation benches. *)

open Dllite

module Pair_set = Set.Make (struct
  type t = Syntax.expr * Syntax.expr

  let compare (a1, b1) (a2, b2) =
    match Syntax.compare_expr a1 a2 with 0 -> Syntax.compare_expr b1 b2 | c -> c
end)

module Expr_set = Set.Make (struct
  type t = Syntax.expr

  let compare = Syntax.compare_expr
end)

type t = {
  subsumptions : Pair_set.t;  (* derived positive inclusions, reflexive *)
  unsat : Expr_set.t;
  universe : Syntax.expr list;
}

(* Direct (one-step) inclusions contributed by an axiom, expanded to all
   components exactly as Definition 1 does arcs. *)
let direct_pairs ax =
  let c b = Syntax.E_concept b in
  match ax with
  | Syntax.Concept_incl (b1, Syntax.C_basic b2) -> [ (c b1, c b2) ]
  | Syntax.Concept_incl (b1, Syntax.C_exists_qual (q, _)) ->
    [ (c b1, c (Syntax.Exists q)) ]
  | Syntax.Concept_incl (_, Syntax.C_neg _) -> []
  | Syntax.Role_incl (q1, Syntax.R_role q2) ->
    [
      (Syntax.E_role q1, Syntax.E_role q2);
      (Syntax.E_role (Syntax.role_inverse q1), Syntax.E_role (Syntax.role_inverse q2));
      (c (Syntax.Exists q1), c (Syntax.Exists q2));
      ( c (Syntax.Exists (Syntax.role_inverse q1)),
        c (Syntax.Exists (Syntax.role_inverse q2)) );
    ]
  | Syntax.Role_incl (_, Syntax.R_neg _) -> []
  | Syntax.Attr_incl (u1, Syntax.A_attr u2) ->
    [
      (Syntax.E_attr u1, Syntax.E_attr u2);
      (c (Syntax.Attr_domain u1), c (Syntax.Attr_domain u2));
    ]
  | Syntax.Attr_incl (_, Syntax.A_neg _) -> []

let negative_pairs ax =
  let c b = Syntax.E_concept b in
  match ax with
  | Syntax.Concept_incl (b1, Syntax.C_neg b2) -> [ (c b1, c b2) ]
  | Syntax.Role_incl (q1, Syntax.R_neg q2) ->
    [
      (Syntax.E_role q1, Syntax.E_role q2);
      (Syntax.E_role (Syntax.role_inverse q1), Syntax.E_role (Syntax.role_inverse q2));
    ]
  | Syntax.Attr_incl (u1, Syntax.A_neg u2) -> [ (Syntax.E_attr u1, Syntax.E_attr u2) ]
  | Syntax.Concept_incl (_, (Syntax.C_basic _ | Syntax.C_exists_qual _))
  | Syntax.Role_incl (_, Syntax.R_role _)
  | Syntax.Attr_incl (_, Syntax.A_attr _) -> []

let universe_of tbox =
  let s = Tbox.signature tbox in
  List.map (fun a -> Syntax.E_concept (Syntax.Atomic a)) (Signature.concepts s)
  @ List.concat_map
      (fun p ->
        [
          Syntax.E_role (Syntax.Direct p);
          Syntax.E_role (Syntax.Inverse p);
          Syntax.E_concept (Syntax.Exists (Syntax.Direct p));
          Syntax.E_concept (Syntax.Exists (Syntax.Inverse p));
        ])
      (Signature.roles s)
  @ List.concat_map
      (fun u -> [ Syntax.E_attr u; Syntax.E_concept (Syntax.Attr_domain u) ])
      (Signature.attributes s)

(** [classify tbox] saturates to a fixpoint. *)
let classify tbox =
  let universe = universe_of tbox in
  let axioms = Tbox.axioms tbox in
  (* 1. transitive closure of the direct pairs, naive semi-naive loop *)
  let base =
    List.fold_left
      (fun acc ax -> List.fold_left (fun acc p -> Pair_set.add p acc) acc (direct_pairs ax))
      Pair_set.empty axioms
  in
  let reflexive =
    List.fold_left (fun acc e -> Pair_set.add (e, e) acc) base universe
  in
  let saturated = ref reflexive in
  let changed = ref true in
  while !changed do
    changed := false;
    Pair_set.iter
      (fun (a, b) ->
        Pair_set.iter
          (fun (b', c) ->
            if Syntax.equal_expr b b' && not (Pair_set.mem (a, c) !saturated) then begin
              saturated := Pair_set.add (a, c) !saturated;
              changed := true
            end)
          !saturated)
      !saturated
  done;
  let subsumptions = !saturated in
  (* 2. unsatisfiable expressions, mirroring the computeUnsat rules but
     over the saturated pair set *)
  let nis = List.concat_map negative_pairs axioms in
  let qualified =
    List.filter_map
      (function
        | Syntax.Concept_incl (b, Syntax.C_exists_qual (q, a)) -> Some (b, q, a)
        | _ -> None)
      axioms
  in
  let subsumed_by x = Pair_set.mem x subsumptions in
  let unsat = ref Expr_set.empty in
  let is_unsat e = Expr_set.mem e !unsat in
  let round () =
    let changed = ref false in
    let mark e =
      if not (is_unsat e) then begin
        unsat := Expr_set.add e !unsat;
        changed := true
      end
    in
    (* seeds: x with x ⊑ S1, x ⊑ S2 for an NI (S1, ¬S2) *)
    List.iter
      (fun x ->
        if
          List.exists (fun (s1, s2) -> subsumed_by (x, s1) && subsumed_by (x, s2)) nis
        then mark x)
      universe;
    (* witness inconsistency of qualified axioms *)
    List.iter
      (fun (b, q, a) ->
        let ca = Syntax.E_concept (Syntax.Atomic a) in
        let cr = Syntax.E_concept (Syntax.Exists (Syntax.role_inverse q)) in
        let from_witness s = subsumed_by (ca, s) || subsumed_by (cr, s) in
        if List.exists (fun (s1, s2) -> from_witness s1 && from_witness s2) nis then
          mark (Syntax.E_concept b);
        (* qualifier or role unsat sinks the axiom's left-hand side *)
        if is_unsat ca || is_unsat (Syntax.E_role q) then mark (Syntax.E_concept b))
      qualified;
    (* upward propagation: x ⊑ y, y unsat => x unsat *)
    List.iter
      (fun x ->
        if not (is_unsat x) then
          Expr_set.iter
            (fun y -> if subsumed_by (x, y) then mark x)
            !unsat)
      universe;
    (* role component propagation *)
    List.iter
      (fun x ->
        match x with
        | Syntax.E_role q when is_unsat x ->
          mark (Syntax.E_role (Syntax.role_inverse q));
          mark (Syntax.E_concept (Syntax.Exists q));
          mark (Syntax.E_concept (Syntax.Exists (Syntax.role_inverse q)))
        | Syntax.E_concept (Syntax.Exists q) when is_unsat x -> mark (Syntax.E_role q)
        | Syntax.E_attr u when is_unsat x ->
          mark (Syntax.E_concept (Syntax.Attr_domain u))
        | Syntax.E_concept (Syntax.Attr_domain u) when is_unsat x ->
          mark (Syntax.E_attr u)
        | Syntax.E_concept _ | Syntax.E_role _ | Syntax.E_attr _ -> ())
      universe;
    !changed
  in
  while round () do
    ()
  done;
  { subsumptions; unsat = !unsat; universe }

(** [subsumes t e1 e2] — derived subsumption, including the unsat rule. *)
let subsumes t e1 e2 =
  Quonto.Encoding.same_sort e1 e2
  && (Pair_set.mem (e1, e2) t.subsumptions || Expr_set.mem e1 t.unsat)

let is_unsat t e = Expr_set.mem e t.unsat

(** [concept_hierarchy t] — name-level concept pairs, reflexive omitted. *)
let concept_hierarchy t =
  let names =
    List.filter_map
      (function Syntax.E_concept (Syntax.Atomic a) -> Some a | _ -> None)
      t.universe
  in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if a <> b
             && subsumes t
                  (Syntax.E_concept (Syntax.Atomic a))
                  (Syntax.E_concept (Syntax.Atomic b))
          then Some (a, b)
          else None)
        names)
    names
  |> List.sort compare
