(** Ontology evolution support (Section 2 lists evolution among the
    "so far overlooked" OBDA aspects; Section 8's parallel
    design-and-documentation workflow needs it): compare two versions of
    a TBox both syntactically and *logically*, so a review can
    distinguish harmless refactorings from real semantic change.

    The logical diff is computed at the name level: subsumptions,
    disjointness and unsatisfiability gained or lost between versions,
    over the union signature. *)

open Dllite

type syntactic_diff = {
  added_axioms : Syntax.axiom list;
  removed_axioms : Syntax.axiom list;
  added_names : string list;    (** concept/role/attr names, sort-tagged *)
  removed_names : string list;
}

type semantic_diff = {
  gained : Syntax.axiom list;  (** entailed by [next] but not by [prev] *)
  lost : Syntax.axiom list;    (** entailed by [prev] but not by [next] *)
  newly_unsat : string list;   (** names that became unsatisfiable *)
  newly_sat : string list;     (** names that became satisfiable *)
}

type report = {
  syntactic : syntactic_diff;
  semantic : semantic_diff;
}

let tagged_names signature =
  List.map (fun c -> "concept " ^ c) (Signature.concepts signature)
  @ List.map (fun r -> "role " ^ r) (Signature.roles signature)
  @ List.map (fun a -> "attr " ^ a) (Signature.attributes signature)

let syntactic ~prev ~next =
  let in_tbox t ax = Tbox.mem ax t in
  let prev_names = tagged_names (Tbox.signature prev) in
  let next_names = tagged_names (Tbox.signature next) in
  {
    added_axioms = List.filter (fun ax -> not (in_tbox prev ax)) (Tbox.axioms next);
    removed_axioms = List.filter (fun ax -> not (in_tbox next ax)) (Tbox.axioms prev);
    added_names = List.filter (fun n -> not (List.mem n prev_names)) next_names;
    removed_names = List.filter (fun n -> not (List.mem n next_names)) prev_names;
  }

(* The probe space of the semantic diff: name-level subsumptions and
   disjointness over the union signature, for each sort. *)
let probes prev next =
  let signature = Signature.union (Tbox.signature prev) (Tbox.signature next) in
  let concepts = Signature.concepts signature in
  let roles = Signature.roles signature in
  let attrs = Signature.attributes signature in
  let concept_probes =
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b ->
            if a = b then []
            else
              [
                Syntax.Concept_incl (Syntax.Atomic a, Syntax.C_basic (Syntax.Atomic b));
                Syntax.Concept_incl (Syntax.Atomic a, Syntax.C_neg (Syntax.Atomic b));
              ])
          concepts)
      concepts
  in
  let role_probes =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun q ->
            if p = q then []
            else
              [
                Syntax.Role_incl (Syntax.Direct p, Syntax.R_role (Syntax.Direct q));
                Syntax.Role_incl (Syntax.Direct p, Syntax.R_neg (Syntax.Direct q));
              ])
          roles)
      roles
  in
  let attr_probes =
    List.concat_map
      (fun u ->
        List.concat_map
          (fun w ->
            if u = w then []
            else
              [ Syntax.Attr_incl (u, Syntax.A_attr w); Syntax.Attr_incl (u, Syntax.A_neg w) ])
          attrs)
      attrs
  in
  (signature, concept_probes @ role_probes @ attr_probes)

let unsat_names cls signature =
  List.filter
    (fun a -> Quonto.Classify.is_unsat cls (Syntax.E_concept (Syntax.Atomic a)))
    (Signature.concepts signature)
  @ List.filter
      (fun p -> Quonto.Classify.is_unsat cls (Syntax.E_role (Syntax.Direct p)))
      (Signature.roles signature)

let semantic ~prev ~next =
  let signature, probe_axioms = probes prev next in
  let d_prev = Quonto.Deductive.compute prev in
  let d_next = Quonto.Deductive.compute next in
  let gained, lost =
    List.fold_left
      (fun (gained, lost) ax ->
        match Quonto.Deductive.entails d_prev ax, Quonto.Deductive.entails d_next ax with
        | false, true -> (ax :: gained, lost)
        | true, false -> (gained, ax :: lost)
        | true, true | false, false -> (gained, lost))
      ([], []) probe_axioms
  in
  let unsat_prev = unsat_names (Quonto.Deductive.classification d_prev) signature in
  let unsat_next = unsat_names (Quonto.Deductive.classification d_next) signature in
  {
    gained = List.rev gained;
    lost = List.rev lost;
    newly_unsat = List.filter (fun n -> not (List.mem n unsat_prev)) unsat_next;
    newly_sat = List.filter (fun n -> not (List.mem n unsat_next)) unsat_prev;
  }

(** [diff ~prev ~next] — the full evolution report. *)
let diff ~prev ~next = { syntactic = syntactic ~prev ~next; semantic = semantic ~prev ~next }

(** [is_conservative report] — the edit added no new name-level
    entailments and lost none: safe to deploy without re-validating
    downstream mappings and queries. *)
let is_conservative report =
  report.semantic.gained = [] && report.semantic.lost = []
  && report.semantic.newly_unsat = []

let pp fmt report =
  let section title axioms =
    if axioms <> [] then begin
      Format.fprintf fmt "%s:@." title;
      List.iter (fun ax -> Format.fprintf fmt "  %a@." Syntax.pp_axiom_ascii ax) axioms
    end
  in
  section "axioms added" report.syntactic.added_axioms;
  section "axioms removed" report.syntactic.removed_axioms;
  (if report.syntactic.added_names <> [] then
     Format.fprintf fmt "names added: %s@."
       (String.concat ", " report.syntactic.added_names));
  (if report.syntactic.removed_names <> [] then
     Format.fprintf fmt "names removed: %s@."
       (String.concat ", " report.syntactic.removed_names));
  section "entailments gained" report.semantic.gained;
  section "entailments lost" report.semantic.lost;
  (if report.semantic.newly_unsat <> [] then
     Format.fprintf fmt "newly unsatisfiable: %s@."
       (String.concat ", " report.semantic.newly_unsat));
  if report.semantic.newly_sat <> [] then
    Format.fprintf fmt "newly satisfiable: %s@."
      (String.concat ", " report.semantic.newly_sat)
