(** Embedding of DL-Lite_R into the ALCHI fragment.

    DL-Lite_R is a sublanguage of ALCHI once attributes are encoded as
    roles in a reserved namespace ([attr$U]): the embedding lets the
    tableau serve as an independent oracle for DL-Lite entailment (used
    by the property tests) and lets the simulated tableau reasoners of
    Figure 1 classify (the OWL 2 QL approximations of) the benchmark
    ontologies, exactly as the paper runs Pellet & co. on them. *)

open Dllite

(** Attributes become roles with this prefix; the prefix contains ['$']
    which the DL-Lite parser rejects in identifiers, so no capture. *)
let attr_prefix = "attr$"

let role = function
  | Syntax.Direct p -> Osyntax.Named p
  | Syntax.Inverse p -> Osyntax.Inv p

let basic = function
  | Syntax.Atomic a -> Osyntax.Name a
  | Syntax.Exists q -> Osyntax.Some_ (role q, Osyntax.Top)
  | Syntax.Attr_domain u -> Osyntax.Some_ (Osyntax.Named (attr_prefix ^ u), Osyntax.Top)

let concept_rhs = function
  | Syntax.C_basic b -> basic b
  | Syntax.C_neg b -> Osyntax.Not (basic b)
  | Syntax.C_exists_qual (q, a) -> Osyntax.Some_ (role q, Osyntax.Name a)

(** [axiom ax] translates one DL-Lite axiom. *)
let axiom = function
  | Syntax.Concept_incl (b, rhs) -> Osyntax.Sub (basic b, concept_rhs rhs)
  | Syntax.Role_incl (q, Syntax.R_role q') -> Osyntax.Role_sub (role q, role q')
  | Syntax.Role_incl (q, Syntax.R_neg q') -> Osyntax.Role_disjoint (role q, role q')
  | Syntax.Attr_incl (u, Syntax.A_attr v) ->
    Osyntax.Role_sub (Osyntax.Named (attr_prefix ^ u), Osyntax.Named (attr_prefix ^ v))
  | Syntax.Attr_incl (u, Syntax.A_neg v) ->
    Osyntax.Role_disjoint
      (Osyntax.Named (attr_prefix ^ u), Osyntax.Named (attr_prefix ^ v))

(** [tbox t] translates a whole DL-Lite TBox. *)
let tbox t = List.map axiom (Tbox.axioms t)

(** [expr e] translates a basic expression to the concept whose
    emptiness/subsumption mirrors the expression's.  Roles and
    attributes are represented by their domain concept — sound for
    satisfiability ([P] empty iff [∃P] empty) but *not* for subsumption
    between roles; use [role]/[axiom]-level reasoning for that. *)
let expr = function
  | Syntax.E_concept b -> basic b
  | Syntax.E_role q -> Osyntax.Some_ (role q, Osyntax.Top)
  | Syntax.E_attr u -> Osyntax.Some_ (Osyntax.Named (attr_prefix ^ u), Osyntax.Top)
