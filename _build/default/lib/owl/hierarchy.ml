(** Precomputed role hierarchy for the tableau: the reflexive-transitive
    sub-role relation [⊑*] over all basic roles (named and inverse), and
    the induced role-disjointness relation. *)

module Rset = Set.Make (struct
  type t = Osyntax.role

  let compare = Osyntax.compare_role
end)

type t = {
  supers : (Osyntax.role, Rset.t) Hashtbl.t;  (* reflexive-transitive *)
  disjoint_pairs : (Osyntax.role * Osyntax.role) list;
}

let all_roles tbox =
  let _, role_names_in_concepts = Osyntax.tbox_signature tbox in
  List.concat_map
    (fun p -> [ Osyntax.Named p; Osyntax.Inv p ])
    role_names_in_concepts

(** [build tbox] computes [⊑*] by a simple fixpoint over the (small) set
    of role axioms; each [R ⊑ S] also contributes [R⁻ ⊑ S⁻]. *)
let build tbox =
  let supers = Hashtbl.create 32 in
  let get r = Option.value ~default:(Rset.singleton r) (Hashtbl.find_opt supers r) in
  let set r s = Hashtbl.replace supers r s in
  List.iter (fun r -> set r (Rset.singleton r)) (all_roles tbox);
  let direct =
    List.concat_map
      (function
        | Osyntax.Role_sub (r, s) ->
          [ (r, s); (Osyntax.role_inv r, Osyntax.role_inv s) ]
        | Osyntax.Sub _ | Osyntax.Equiv _ | Osyntax.Role_disjoint _ -> [])
      tbox
  in
  (* make sure roles mentioned only in role axioms get entries *)
  List.iter
    (fun (r, s) ->
      if not (Hashtbl.mem supers r) then set r (Rset.singleton r);
      if not (Hashtbl.mem supers s) then set s (Rset.singleton s))
    direct;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (r, s) ->
        let sr = get r and ss = get s in
        let merged = Rset.union sr ss in
        if not (Rset.equal merged sr) then begin
          set r merged;
          changed := true
        end)
      direct
  done;
  let disjoint_pairs =
    List.concat_map
      (function
        | Osyntax.Role_disjoint (r, s) ->
          [ (r, s); (Osyntax.role_inv r, Osyntax.role_inv s) ]
        | Osyntax.Sub _ | Osyntax.Equiv _ | Osyntax.Role_sub _ -> [])
      tbox
  in
  { supers; disjoint_pairs }

(** [subsumes t r s] is [r ⊑* s]. *)
let subsumes t r s =
  Osyntax.equal_role r s
  ||
  match Hashtbl.find_opt t.supers r with
  | Some set -> Rset.mem s set
  | None -> false

(** [supers t r] lists all (reflexive) super-roles of [r]. *)
let supers t r =
  match Hashtbl.find_opt t.supers r with
  | Some set -> Rset.elements set
  | None -> [ r ]

(** [clashing t r s] — do roles [r] and [s] violate a disjointness, i.e.
    are there declared-disjoint [r'], [s'] with [r ⊑* r'] and [s ⊑* s']? *)
let clashing t r s =
  List.exists
    (fun (r', s') ->
      (subsumes t r r' && subsumes t s s') || (subsumes t r s' && subsumes t s r'))
    t.disjoint_pairs
