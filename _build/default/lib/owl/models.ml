(** Brute-force finite-model checking for the ALCHI fragment: enumerate
    every interpretation over a small domain and test satisfiability.

    This is the oracle-of-the-oracle: the tableau validates the digraph
    classifier, and this module validates the tableau on tiny inputs.
    Exhaustive enumeration is exponential in [domain * signature], so
    callers keep the domain at 2-3 elements and the signature at a
    handful of names — enough to catch rule bugs (the two directions
    checked by the property tests are: a model found here forces the
    tableau to answer SAT, and a tableau UNSAT forbids any model
    here). *)

(* An interpretation: concept name -> bitmask over the domain; role
   name -> bitmask over domain^2 (pair (i, j) = bit i*k + j). *)
type interpretation = {
  domain_size : int;
  concepts : (string * int) list;
  roles : (string * int) list;
}

let pair_bit k i j = (i * k) + j

(* Extension of a concept as a bitmask. *)
let rec eval_concept interp c =
  let k = interp.domain_size in
  let full = (1 lsl k) - 1 in
  match c with
  | Osyntax.Top -> full
  | Osyntax.Bot -> 0
  | Osyntax.Name a -> (
    match List.assoc_opt a interp.concepts with Some m -> m | None -> 0)
  | Osyntax.Not c -> full land lnot (eval_concept interp c)
  | Osyntax.And (c, d) -> eval_concept interp c land eval_concept interp d
  | Osyntax.Or (c, d) -> eval_concept interp c lor eval_concept interp d
  | Osyntax.Some_ (r, c) ->
    let cm = eval_concept interp c in
    let rm = eval_role interp r in
    let result = ref 0 in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        if rm land (1 lsl pair_bit k i j) <> 0 && cm land (1 lsl j) <> 0 then
          result := !result lor (1 lsl i)
      done
    done;
    !result
  | Osyntax.All (r, c) ->
    let cm = eval_concept interp c in
    let rm = eval_role interp r in
    let result = ref ((1 lsl k) - 1) in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        if rm land (1 lsl pair_bit k i j) <> 0 && cm land (1 lsl j) = 0 then
          result := !result land lnot (1 lsl i)
      done
    done;
    !result

and eval_role interp r =
  let k = interp.domain_size in
  match r with
  | Osyntax.Named p -> (
    match List.assoc_opt p interp.roles with Some m -> m | None -> 0)
  | Osyntax.Inv p ->
    let m = match List.assoc_opt p interp.roles with Some m -> m | None -> 0 in
    let inv = ref 0 in
    for i = 0 to k - 1 do
      for j = 0 to k - 1 do
        if m land (1 lsl pair_bit k i j) <> 0 then
          inv := !inv lor (1 lsl pair_bit k j i)
      done
    done;
    !inv

(* Role extension as a set of pair-bits, for subset tests. *)
let satisfies_axiom interp = function
  | Osyntax.Sub (c, d) ->
    let cm = eval_concept interp c and dm = eval_concept interp d in
    cm land lnot dm = 0
  | Osyntax.Equiv (c, d) -> eval_concept interp c = eval_concept interp d
  | Osyntax.Role_sub (r, s) ->
    let rm = eval_role interp r and sm = eval_role interp s in
    rm land lnot sm = 0
  | Osyntax.Role_disjoint (r, s) -> eval_role interp r land eval_role interp s = 0

let is_model interp tbox = List.for_all (satisfies_axiom interp) tbox

(** [find_model ~domain_size tbox c] — search for an interpretation over
    the fixed-size domain that satisfies every axiom of [tbox] and gives
    [c] a non-empty extension.  Exhaustive, so keep the input tiny. *)
let find_model ~domain_size tbox c =
  let concept_names =
    List.sort_uniq compare
      (Osyntax.concept_names c @ List.concat_map (fun ax -> fst (Osyntax.axiom_signature ax)) tbox)
  in
  let role_names =
    List.sort_uniq compare
      (Osyntax.role_names c @ List.concat_map (fun ax -> snd (Osyntax.axiom_signature ax)) tbox)
  in
  let k = domain_size in
  let concept_space = 1 lsl k in
  let role_space = 1 lsl (k * k) in
  (* depth-first over assignments, checking lazily at the leaves *)
  let rec assign_concepts acc = function
    | [] -> assign_roles acc [] role_names
    | a :: rest ->
      let found = ref None in
      let m = ref 0 in
      while !found = None && !m < concept_space do
        found := assign_concepts ((a, !m) :: acc) rest;
        incr m
      done;
      !found
  and assign_roles concepts acc = function
    | [] ->
      let interp = { domain_size = k; concepts; roles = acc } in
      if is_model interp tbox && eval_concept interp c <> 0 then Some interp
      else None
    | p :: rest ->
      let found = ref None in
      let m = ref 0 in
      while !found = None && !m < role_space do
        found := assign_roles concepts ((p, !m) :: acc) rest;
        incr m
      done;
      !found
  in
  assign_concepts [] concept_names

(** [satisfiable_on ~domain_size tbox c] — bounded-domain
    satisfiability.  [true] implies real satisfiability; [false] only
    means "no model of this size". *)
let satisfiable_on ~domain_size tbox c =
  find_model ~domain_size tbox c <> None
