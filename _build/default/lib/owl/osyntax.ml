(** Abstract syntax of the expressive ontology fragment (ALCHI): the
    "OWL" language of Section 7 that ontologies are approximated *from*,
    and the language the tableau oracle reasons in.

    Strictly more expressive than DL-Lite_R: adds ⊤, ⊥, full negation,
    conjunction, disjunction, qualified existentials over arbitrary
    concepts, and universal (value) restrictions. *)

(** Roles: named or inverse-of-named. *)
type role =
  | Named of string
  | Inv of string
[@@deriving eq, ord, show { with_path = false }]

let role_inv = function Named p -> Inv p | Inv p -> Named p
let role_base = function Named p | Inv p -> p

type concept =
  | Top
  | Bot
  | Name of string
  | Not of concept
  | And of concept * concept
  | Or of concept * concept
  | Some_ of role * concept  (** existential restriction [∃R.C] *)
  | All of role * concept    (** universal restriction [∀R.C] *)
[@@deriving eq, ord, show { with_path = false }]

type axiom =
  | Sub of concept * concept        (** [C ⊑ D] *)
  | Equiv of concept * concept      (** [C ≡ D] *)
  | Role_sub of role * role         (** [R ⊑ S] *)
  | Role_disjoint of role * role    (** [Disj(R, S)] *)
[@@deriving eq, ord, show { with_path = false }]

type tbox = axiom list

(** [conj cs] right-folds a conjunction, [Top] for the empty list. *)
let conj = function
  | [] -> Top
  | c :: cs -> List.fold_left (fun acc c' -> And (acc, c')) c cs

(** [disj cs] right-folds a disjunction, [Bot] for the empty list. *)
let disj = function
  | [] -> Bot
  | c :: cs -> List.fold_left (fun acc c' -> Or (acc, c')) c cs

(** [nnf c] is the negation normal form of [c]: negation only in front
    of concept names. *)
let rec nnf = function
  | Top -> Top
  | Bot -> Bot
  | Name _ as c -> c
  | And (c, d) -> And (nnf c, nnf d)
  | Or (c, d) -> Or (nnf c, nnf d)
  | Some_ (r, c) -> Some_ (r, nnf c)
  | All (r, c) -> All (r, nnf c)
  | Not c -> nnf_neg c

and nnf_neg = function
  | Top -> Bot
  | Bot -> Top
  | Name _ as c -> Not c
  | Not c -> nnf c
  | And (c, d) -> Or (nnf_neg c, nnf_neg d)
  | Or (c, d) -> And (nnf_neg c, nnf_neg d)
  | Some_ (r, c) -> All (r, nnf_neg c)
  | All (r, c) -> Some_ (r, nnf_neg c)

(** [concept_names c] is the set of concept names occurring in [c]. *)
let concept_names c =
  let module S = Set.Make (String) in
  let rec go acc = function
    | Top | Bot -> acc
    | Name a -> S.add a acc
    | Not c -> go acc c
    | And (c, d) | Or (c, d) -> go (go acc c) d
    | Some_ (_, c) | All (_, c) -> go acc c
  in
  S.elements (go S.empty c)

(** [role_names c] is the set of role names occurring in [c]. *)
let role_names c =
  let module S = Set.Make (String) in
  let rec go acc = function
    | Top | Bot | Name _ -> acc
    | Not c -> go acc c
    | And (c, d) | Or (c, d) -> go (go acc c) d
    | Some_ (r, c) | All (r, c) -> go (S.add (role_base r) acc) c
  in
  S.elements (go S.empty c)

(** [axiom_signature ax] is [(concept names, role names)] of [ax]. *)
let axiom_signature ax =
  let module S = Set.Make (String) in
  let cs, rs =
    match ax with
    | Sub (c, d) | Equiv (c, d) ->
      ( S.union (S.of_list (concept_names c)) (S.of_list (concept_names d)),
        S.union (S.of_list (role_names c)) (S.of_list (role_names d)) )
    | Role_sub (r, s) | Role_disjoint (r, s) ->
      (S.empty, S.of_list [ role_base r; role_base s ])
  in
  (S.elements cs, S.elements rs)

(** [tbox_signature t] is the pair of sorted concept/role name lists. *)
let tbox_signature t =
  let module S = Set.Make (String) in
  let cs, rs =
    List.fold_left
      (fun (cs, rs) ax ->
        let cs', rs' = axiom_signature ax in
        (S.union cs (S.of_list cs'), S.union rs (S.of_list rs')))
      (S.empty, S.empty) t
  in
  (S.elements cs, S.elements rs)

let rec pp_concept fmt = function
  | Top -> Format.pp_print_string fmt "Top"
  | Bot -> Format.pp_print_string fmt "Bot"
  | Name a -> Format.pp_print_string fmt a
  | Not c -> Format.fprintf fmt "(not %a)" pp_concept c
  | And (c, d) -> Format.fprintf fmt "(%a and %a)" pp_concept c pp_concept d
  | Or (c, d) -> Format.fprintf fmt "(%a or %a)" pp_concept c pp_concept d
  | Some_ (r, c) -> Format.fprintf fmt "(some %s %a)" (pp_role_str r) pp_concept c
  | All (r, c) -> Format.fprintf fmt "(all %s %a)" (pp_role_str r) pp_concept c

and pp_role_str = function Named p -> p | Inv p -> p ^ "^-"

let pp_axiom fmt = function
  | Sub (c, d) -> Format.fprintf fmt "%a [= %a" pp_concept c pp_concept d
  | Equiv (c, d) -> Format.fprintf fmt "%a == %a" pp_concept c pp_concept d
  | Role_sub (r, s) -> Format.fprintf fmt "%s [= %s" (pp_role_str r) (pp_role_str s)
  | Role_disjoint (r, s) ->
    Format.fprintf fmt "disjoint(%s, %s)" (pp_role_str r) (pp_role_str s)
