(** DL-Lite entailment oracle built on the ALCHI tableau.

    This is the *independent* decision procedure the property tests
    compare the graph-based classifier against: it shares no code with
    the digraph encoding, the transitive closure or [computeUnsat].

    Role- and attribute-level questions that ALCHI cannot express as
    concept (un)satisfiability are answered analytically on top of the
    role hierarchy; see the per-function comments. *)

open Dllite

type t = {
  config : Tableau.config;
  hierarchy : Hierarchy.t;
}

(** [of_tbox t] compiles the embedded TBox once; individual queries then
    share the preprocessing. *)
let of_tbox t =
  let otbox = Embed.tbox t in
  { config = Tableau.compile otbox; hierarchy = Hierarchy.build otbox }

let embed_role = Embed.role

let domain_concept q = Osyntax.Some_ (embed_role q, Osyntax.Top)

(** [concept_satisfiable o c] — satisfiability of an embedded concept. *)
let concept_satisfiable ?budget o c = Tableau.satisfiable ?budget o.config c

(** [is_unsat o e] — unsatisfiability of a basic DL-Lite expression.  A
    role or attribute is empty iff its domain concept is empty. *)
let is_unsat ?budget o e =
  not (concept_satisfiable ?budget o (Embed.expr e))

(** [subsumes o e1 e2] decides [T ⊨ e1 ⊑ e2].

    Concepts reduce to tableau subsumption.  For roles, ALCHI entails
    [Q1 ⊑ Q2] only through the declared hierarchy or emptiness of [Q1]
    (no concept axiom can force new pairs into a role); likewise for
    attributes. *)
let subsumes ?budget o e1 e2 =
  match e1, e2 with
  | Syntax.E_concept b1, Syntax.E_concept b2 ->
    Tableau.subsumes ?budget o.config (Embed.basic b1) (Embed.basic b2)
  | Syntax.E_role q1, Syntax.E_role q2 ->
    Hierarchy.subsumes o.hierarchy (embed_role q1) (embed_role q2)
    || is_unsat ?budget o e1
  | Syntax.E_attr u1, Syntax.E_attr u2 ->
    Hierarchy.subsumes o.hierarchy
      (Osyntax.Named (Embed.attr_prefix ^ u1))
      (Osyntax.Named (Embed.attr_prefix ^ u2))
    || is_unsat ?budget o e1
  | (Syntax.E_concept _ | Syntax.E_role _ | Syntax.E_attr _), _ -> false

(** [disjoint o e1 e2] decides [T ⊨ e1 ⊑ ¬e2].

    Concepts reduce to unsatisfiability of the conjunction.  A pair in
    [Q1 ∩ Q2] puts its components in [∃Q1 ⊓ ∃Q2] and [∃Q1⁻ ⊓ ∃Q2⁻] and
    its membership in every super-role; with no role conjunction in the
    language these are the only sources of contradiction, so role
    disjointness holds iff a declared disjointness covers the pair up to
    the hierarchy, a component conjunction is unsatisfiable, or a side
    is empty. *)
let disjoint ?budget o e1 e2 =
  let concept_disjoint c1 c2 =
    not (concept_satisfiable ?budget o (Osyntax.And (c1, c2)))
  in
  match e1, e2 with
  | Syntax.E_concept b1, Syntax.E_concept b2 ->
    concept_disjoint (Embed.basic b1) (Embed.basic b2)
  | Syntax.E_role q1, Syntax.E_role q2 ->
    let r1 = embed_role q1 and r2 = embed_role q2 in
    Hierarchy.clashing o.hierarchy r1 r2
    || concept_disjoint (domain_concept q1) (domain_concept q2)
    || concept_disjoint
         (domain_concept (Syntax.role_inverse q1))
         (domain_concept (Syntax.role_inverse q2))
  | Syntax.E_attr u1, Syntax.E_attr u2 ->
    let r1 = Osyntax.Named (Embed.attr_prefix ^ u1) in
    let r2 = Osyntax.Named (Embed.attr_prefix ^ u2) in
    Hierarchy.clashing o.hierarchy r1 r2
    || concept_disjoint
         (Osyntax.Some_ (r1, Osyntax.Top))
         (Osyntax.Some_ (r2, Osyntax.Top))
  | (Syntax.E_concept _ | Syntax.E_role _ | Syntax.E_attr _), _ -> false

(** [entails o ax] decides [T ⊨ ax] for any DL-Lite axiom. *)
let entails ?budget o = function
  | Syntax.Concept_incl (b, Syntax.C_basic b') ->
    subsumes ?budget o (Syntax.E_concept b) (Syntax.E_concept b')
  | Syntax.Concept_incl (b, Syntax.C_neg b') ->
    disjoint ?budget o (Syntax.E_concept b) (Syntax.E_concept b')
  | Syntax.Concept_incl (b, Syntax.C_exists_qual (q, a)) ->
    Tableau.subsumes ?budget o.config (Embed.basic b)
      (Osyntax.Some_ (embed_role q, Osyntax.Name a))
  | Syntax.Role_incl (q, Syntax.R_role q') ->
    subsumes ?budget o (Syntax.E_role q) (Syntax.E_role q')
  | Syntax.Role_incl (q, Syntax.R_neg q') ->
    disjoint ?budget o (Syntax.E_role q) (Syntax.E_role q')
  | Syntax.Attr_incl (u, Syntax.A_attr u') ->
    subsumes ?budget o (Syntax.E_attr u) (Syntax.E_attr u')
  | Syntax.Attr_incl (u, Syntax.A_neg u') ->
    disjoint ?budget o (Syntax.E_attr u) (Syntax.E_attr u')
