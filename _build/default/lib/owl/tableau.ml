(** Tableau decision procedure for concept satisfiability w.r.t. an
    ALCHI TBox.

    This is the engine behind the simulated "expressive DL" reasoners of
    Figure 1 and the oracle used by semantic approximation and by the
    property-based tests of the graph classifier.

    Implementation notes:
    - completion structures are *trees* (ALCHI has the tree-model
      property); each node carries its concept label, each non-root node
      the role labelling the edge from its parent;
    - general axioms are *absorbed* where possible ([A ⊑ D] triggers on
      [A] in a label; [∃R.⊤ ⊑ D] triggers on an [R]-neighbour); the
      remainder is internalized as a disjunction added to every label;
    - inverse roles require *pairwise blocking* for termination and
      soundness;
    - disjunctions branch chronologically over an immutable state, so
      backtracking is snapshot-free;
    - a rule-application budget guards against pathological inputs; the
      bench harness maps budget exhaustion to the paper's "timeout"
      cells. *)

exception Budget_exhausted

module Cset = Set.Make (struct
  type t = Osyntax.concept

  let compare = Osyntax.compare_concept
end)

module Imap = Map.Make (Int)

type node = {
  label : Cset.t;
  parent : (int * Osyntax.role) option;  (* parent id, edge role *)
  children : (int * Osyntax.role) list;  (* child id, edge role *)
}

type state = {
  nodes : node Imap.t;
  next_id : int;
}

type config = {
  hierarchy : Hierarchy.t;
  unfold_name : (string, Osyntax.concept list) Hashtbl.t;
      (* A ↦ [D; ...] for absorbed axioms A ⊑ D *)
  unfold_domain : (Osyntax.role * Osyntax.concept) list;
      (* (R, D) for absorbed axioms ∃R.⊤ ⊑ D *)
  internalized : Osyntax.concept list;
      (* NNF disjunctions added to every node label *)
  mutable budget : int;
  mutable deadline : (unit -> bool) option;
      (* polled periodically: [true] means "give up now" — lets callers
         enforce wall-clock limits without a Unix dependency here *)
}

(** [compile tbox] preprocesses a TBox into a reusable configuration
    (role hierarchy, absorbed unfolding rules, internalized residue). *)
let compile tbox =
  let hierarchy = Hierarchy.build tbox in
  let unfold_name = Hashtbl.create 64 in
  let unfold_domain = ref [] in
  let internalized = ref [] in
  let add_sub c d =
    match c with
    | Osyntax.Name a ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt unfold_name a) in
      Hashtbl.replace unfold_name a (Osyntax.nnf d :: prev)
    | Osyntax.Some_ (r, Osyntax.Top) -> unfold_domain := (r, Osyntax.nnf d) :: !unfold_domain
    | _ ->
      internalized := Osyntax.nnf (Osyntax.Or (Osyntax.Not c, d)) :: !internalized
  in
  List.iter
    (function
      | Osyntax.Sub (c, d) -> add_sub c d
      | Osyntax.Equiv (c, d) ->
        add_sub c d;
        add_sub d c
      | Osyntax.Role_sub _ | Osyntax.Role_disjoint _ -> ())
    tbox;
  {
    hierarchy;
    unfold_name;
    unfold_domain = !unfold_domain;
    internalized = !internalized;
    budget = 0;
    deadline = None;
  }

let spend cfg =
  cfg.budget <- cfg.budget - 1;
  if cfg.budget <= 0 then raise Budget_exhausted;
  if cfg.budget land 255 = 0 then
    match cfg.deadline with
    | Some expired when expired () -> raise Budget_exhausted
    | Some _ | None -> ()

(* --- neighbour queries ------------------------------------------------ *)

(* [r_neighbors cfg st x r] lists node ids that are r-neighbours of x:
   children via an edge whose label is ⊑* r, plus the parent when the
   inverse of the parent edge is ⊑* r. *)
let r_neighbors cfg st x r =
  let n = Imap.find x st.nodes in
  let via_children =
    List.filter_map
      (fun (y, r') -> if Hierarchy.subsumes cfg.hierarchy r' r then Some y else None)
      n.children
  in
  match n.parent with
  | Some (p, rp) when Hierarchy.subsumes cfg.hierarchy (Osyntax.role_inv rp) r ->
    p :: via_children
  | Some _ | None -> via_children

(* --- blocking --------------------------------------------------------- *)

(* Pairwise blocking: x (with parent px) is directly blocked by an
   ancestor w (with parent pw) when L(x) = L(w), L(px) = L(pw) and the
   two parent-edge roles coincide.  x is blocked when some node on its
   ancestor path (x included) is directly blocked. *)
let blocked cfg st x =
  ignore cfg;
  let node = Imap.find x st.nodes in
  let rec ancestors_of y acc =
    match (Imap.find y st.nodes).parent with
    | None -> acc
    | Some (p, _) -> ancestors_of p (p :: acc)
  in
  let directly_blocked y =
    let ny = Imap.find y st.nodes in
    match ny.parent with
    | None -> false
    | Some (py, ry) ->
      let npy = Imap.find py st.nodes in
      let rec up w =
        let nw = Imap.find w st.nodes in
        match nw.parent with
        | None -> false
        | Some (pw, rw) ->
          let npw = Imap.find pw st.nodes in
          (Cset.equal ny.label nw.label
           && Cset.equal npy.label npw.label
           && Osyntax.equal_role ry rw)
          || up pw
      in
      up py
  in
  ignore node;
  List.exists directly_blocked (x :: List.rev (ancestors_of x []))

(* --- label growth ------------------------------------------------------ *)

(* Concepts implied by membership of [c] in a label, via absorption and
   internalization (the latter is added once at node creation). *)
let unfoldings cfg c =
  match c with
  | Osyntax.Name a -> Option.value ~default:[] (Hashtbl.find_opt cfg.unfold_name a)
  | _ -> []

let add_concepts cfg st x cs =
  let n = Imap.find x st.nodes in
  let label =
    List.fold_left
      (fun acc c ->
        let acc = Cset.add c acc in
        List.fold_left (fun acc d -> Cset.add d acc) acc (unfoldings cfg c))
      n.label cs
  in
  (* one more absorption round for concepts the unfoldings introduced *)
  let rec saturate label =
    let extra =
      Cset.fold
        (fun c acc ->
          List.fold_left
            (fun acc d -> if Cset.mem d label then acc else d :: acc)
            acc (unfoldings cfg c))
        label []
    in
    match extra with
    | [] -> label
    | _ -> saturate (List.fold_left (fun l d -> Cset.add d l) label extra)
  in
  let label = saturate label in
  { st with nodes = Imap.add x { n with label } st.nodes }

let has_clash cfg st x =
  let n = Imap.find x st.nodes in
  Cset.mem Osyntax.Bot n.label
  || Cset.exists
       (function
         | Osyntax.Name a -> Cset.mem (Osyntax.Not (Osyntax.Name a)) n.label
         | _ -> false)
       n.label
  ||
  (* role-disjointness clash on the parent edge *)
  (match n.parent with
   | Some (_, r) -> Hierarchy.clashing cfg.hierarchy r r
   | None -> false)

(** [is_deterministic cfg] — no internalized disjunctions survive
    absorption (true for every DL-Lite embedding): the completion is
    then unique and its root label is the *canonical pseudo-model* of
    the input concept.  Pseudo-model caching (below) is only sound under
    this condition — with genuine disjunctions the completion found is
    one of several. *)
let is_deterministic cfg =
  let rec no_or = function
    | Osyntax.Or _ -> false
    | Osyntax.And (c, d) -> no_or c && no_or d
    | Osyntax.Some_ (_, c) | Osyntax.All (_, c) -> no_or c
    | Osyntax.Top | Osyntax.Bot | Osyntax.Name _ | Osyntax.Not _ -> true
  in
  cfg.internalized = []
  && List.for_all (fun (_, d) -> no_or d) cfg.unfold_domain
  && Hashtbl.fold
       (fun _ ds acc -> acc && List.for_all no_or ds)
       cfg.unfold_name true

(* --- the expansion loop ------------------------------------------------ *)

type verdict = Sat | Unsat

(* Apply every applicable *local deterministic* rule found in one scan
   (⊓, ∀ and domain absorption).  Batching keeps the pass count low: a
   single-rule-per-scan strategy is quadratic in the total work and
   dominated the profile.  Returns [None] when nothing applied. *)
let deterministic_pass cfg st =
  let additions = ref [] in (* (node, concepts) *)
  let add x cs = if cs <> [] then additions := (x, cs) :: !additions in
  Imap.iter
    (fun x n ->
      spend cfg;  (* budget counts scanned nodes: bounds real work *)
      let wanted = ref [] in
      Cset.iter
        (fun concept ->
          match concept with
          | Osyntax.And (c, d) ->
            if not (Cset.mem c n.label) then wanted := c :: !wanted;
            if not (Cset.mem d n.label) then wanted := d :: !wanted
          | Osyntax.All (r, c) ->
            List.iter
              (fun y ->
                let ny = Imap.find y st.nodes in
                if not (Cset.mem c ny.label) then additions := (y, [ c ]) :: !additions)
              (r_neighbors cfg st x r)
          | Osyntax.Top | Osyntax.Bot | Osyntax.Name _ | Osyntax.Not _
          | Osyntax.Some_ _ | Osyntax.Or _ -> ())
        n.label;
      List.iter
        (fun (r, d) ->
          if (not (Cset.mem d n.label)) && r_neighbors cfg st x r <> [] then
            wanted := d :: !wanted)
        cfg.unfold_domain;
      add x !wanted)
    st.nodes;
  if !additions = [] then None
  else
    Some
      (List.fold_left (fun st (x, cs) -> add_concepts cfg st x cs) st !additions)

(* Generating pass: fire unwitnessed, unblocked ∃-restrictions.
   Only called when no other rule applies — generating after the
   disjunctions are resolved keeps the search tree small.

   Deterministic configurations (no disjunctions anywhere) batch every
   pending restriction in one pass: with no backtracking possible, the
   completion is unique and batching turns the pass count from O(tree
   size) into O(tree depth).  With disjunctions present, children are
   created one at a time so each child's own disjunctions resolve before
   the next sibling exists — batching siblings would multiply the
   chronological-backtracking space by the product of their branch
   counts. *)
let create_child cfg st (x, r, c) =
  spend cfg; (* meter creations too: a batched frontier can be huge *)
  let n = Imap.find x st.nodes in
  let y = st.next_id in
  let child = { label = Cset.empty; parent = Some (x, r); children = [] } in
  let st =
    {
      nodes =
        Imap.add y child
          (Imap.add x { n with children = (y, r) :: n.children } st.nodes);
      next_id = y + 1;
    }
  in
  add_concepts cfg st y (c :: cfg.internalized)

let generating_pass cfg st =
  let batch = is_deterministic cfg in
  let pending = ref [] in
  let exception Found of int * Osyntax.role * Osyntax.concept in
  (try
     Imap.iter
       (fun x n ->
         spend cfg;
         Cset.iter
           (fun concept ->
             match concept with
             | Osyntax.Some_ (r, c) ->
               let witnessed =
                 List.exists
                   (fun y -> Cset.mem c (Imap.find y st.nodes).label)
                   (r_neighbors cfg st x r)
               in
               if (not witnessed) && not (blocked cfg st x) then
                 if batch then pending := (x, r, c) :: !pending
                 else raise (Found (x, r, c))
             | _ -> ())
           n.label)
       st.nodes
   with Found (x, r, c) -> pending := [ (x, r, c) ]);
  match !pending with
  | [] -> None
  | creations -> Some (List.fold_left (create_child cfg) st creations)

(* Find one unexpanded disjunction (the only nondeterministic rule). *)
let find_or st =
  let exception Found of int * Osyntax.concept * Osyntax.concept in
  try
    Imap.iter
      (fun x n ->
        Cset.iter
          (function
            | Osyntax.Or (c, d) ->
              if not (Cset.mem c n.label || Cset.mem d n.label) then
                raise (Found (x, c, d))
            | _ -> ())
          n.label)
      st.nodes;
    None
  with Found (x, c, d) -> Some (x, c, d)

let rec expand cfg st =
  spend cfg;
  let clash = Imap.exists (fun x _ -> has_clash cfg st x) st.nodes in
  if clash then Unsat
  else
    match deterministic_pass cfg st with
    | Some st' -> expand cfg st' (* tail-recursive: deep chains are fine *)
    | None -> (
      match find_or st with
      | Some (x, c, d) -> (
        match expand cfg (add_concepts cfg st x [ c ]) with
        | Sat -> Sat
        | Unsat -> expand cfg (add_concepts cfg st x [ d ]))
      | None -> (
        match generating_pass cfg st with
        | Some st' -> expand cfg st'
        | None -> Sat))

(** [satisfiable ?budget cfg c] decides satisfiability of concept [c]
    w.r.t. the compiled TBox [cfg].  [budget] bounds the number of rule
    applications across all branches (default 200_000).
    @raise Budget_exhausted when the bound is hit. *)
let satisfiable ?(budget = 200_000) ?deadline cfg c =
  cfg.budget <- budget;
  cfg.deadline <- deadline;
  let root = { label = Cset.empty; parent = None; children = [] } in
  let st = { nodes = Imap.singleton 0 root; next_id = 1 } in
  let st = add_concepts cfg st 0 (Osyntax.nnf c :: cfg.internalized) in
  match expand cfg st with Sat -> true | Unsat -> false

(** [root_completion ?budget ?deadline cfg c] — run the tableau on [c]
    and, when satisfiable, return the concepts holding at the root of
    the final completion ([None] when unsatisfiable).  Under
    [is_deterministic] this is the root of the canonical model: a
    concept name [B] is entailed at the root iff it is in the returned
    set — one completion answers *all* subsumption questions about [c]
    (the pseudo-model caching used by tableau reasoners on Horn-shaped
    inputs).
    @raise Budget_exhausted as [satisfiable]. *)
let root_completion ?(budget = 200_000) ?deadline cfg c =
  cfg.budget <- budget;
  cfg.deadline <- deadline;
  let root = { label = Cset.empty; parent = None; children = [] } in
  let st = { nodes = Imap.singleton 0 root; next_id = 1 } in
  let st = add_concepts cfg st 0 (Osyntax.nnf c :: cfg.internalized) in
  (* deterministic expansion that keeps the final state *)
  let rec run st =
    spend cfg;
    if Imap.exists (fun x _ -> has_clash cfg st x) st.nodes then None
    else
      match deterministic_pass cfg st with
      | Some st' -> run st'
      | None -> (
        match find_or st with
        | Some (x, c1, c2) -> (
          (* nondeterministic inputs: chronological backtracking, first
             satisfying completion wins *)
          match run (add_concepts cfg st x [ c1 ]) with
          | Some _ as r -> r
          | None -> run (add_concepts cfg st x [ c2 ]))
        | None -> (
          match generating_pass cfg st with
          | Some st' -> run st'
          | None -> Some st))
  in
  match run st with
  | None -> None
  | Some st -> Some (Cset.elements (Imap.find 0 st.nodes).label)

(** [subsumes ?budget ?deadline cfg c d] decides [T ⊨ C ⊑ D] as
    unsatisfiability of [C ⊓ ¬D]. *)
let subsumes ?budget ?deadline cfg c d =
  not (satisfiable ?budget ?deadline cfg (Osyntax.And (c, Osyntax.Not d)))
