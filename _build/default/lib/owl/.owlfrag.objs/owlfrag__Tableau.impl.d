lib/owl/tableau.pp.ml: Hashtbl Hierarchy Int List Map Option Osyntax Set
