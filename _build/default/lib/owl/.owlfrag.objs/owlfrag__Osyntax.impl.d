lib/owl/osyntax.pp.ml: Format List Ppx_deriving_runtime Set String
