lib/owl/hierarchy.pp.ml: Hashtbl List Option Osyntax Set
