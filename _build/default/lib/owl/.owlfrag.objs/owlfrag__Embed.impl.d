lib/owl/embed.pp.ml: Dllite List Osyntax Syntax Tbox
