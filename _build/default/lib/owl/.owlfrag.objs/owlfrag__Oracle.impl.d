lib/owl/oracle.pp.ml: Dllite Embed Hierarchy Osyntax Syntax Tableau
