lib/owl/models.pp.ml: List Osyntax
