(** Abstract syntax of DL-Lite_R extended with attributes and qualified
    existential restrictions, following Section 4 of the paper:

    {v
      B ::= A | ∃Q | δ(U)         basic concepts
      Q ::= P | P⁻                 basic roles
      C ::= B | ¬B | ∃Q.A          general (right-hand side) concepts
      R ::= Q | ¬Q                 general roles
      V ::= U | ¬U                 general attributes
    v}

    A TBox is a finite set of inclusions [B ⊑ C], [Q ⊑ R], [U ⊑ V].
    Attributes are binary relations from objects to values; the only
    concept they induce is their domain [δ(U)]. *)

(** Basic roles: an atomic role or its inverse. *)
type role =
  | Direct of string
  | Inverse of string
[@@deriving eq, ord, show { with_path = false }]

(** [role_name q] is the underlying atomic role name. *)
let role_name = function Direct p | Inverse p -> p

(** [role_inverse q] swaps direction: [P ↦ P⁻], [P⁻ ↦ P]. *)
let role_inverse = function Direct p -> Inverse p | Inverse p -> Direct p

(** Basic concepts. *)
type basic =
  | Atomic of string        (** atomic concept [A] *)
  | Exists of role          (** unqualified existential [∃Q] *)
  | Attr_domain of string   (** attribute domain [δ(U)] *)
[@@deriving eq, ord, show { with_path = false }]

(** Right-hand sides of concept inclusions. *)
type concept_rhs =
  | C_basic of basic
  | C_neg of basic                  (** negated basic concept [¬B] *)
  | C_exists_qual of role * string  (** qualified existential [∃Q.A], [A] atomic *)
[@@deriving eq, ord, show { with_path = false }]

(** Right-hand sides of role inclusions. *)
type role_rhs =
  | R_role of role
  | R_neg of role
[@@deriving eq, ord, show { with_path = false }]

(** Right-hand sides of attribute inclusions. *)
type attr_rhs =
  | A_attr of string
  | A_neg of string
[@@deriving eq, ord, show { with_path = false }]

(** TBox axioms. *)
type axiom =
  | Concept_incl of basic * concept_rhs  (** [B ⊑ C] *)
  | Role_incl of role * role_rhs         (** [Q ⊑ R] *)
  | Attr_incl of string * attr_rhs       (** [U ⊑ V] *)
[@@deriving eq, ord, show { with_path = false }]

(** [is_positive ax] holds for positive inclusions (no negation on the
    right-hand side); the complement are the negative inclusions. *)
let is_positive = function
  | Concept_incl (_, (C_basic _ | C_exists_qual _)) -> true
  | Concept_incl (_, C_neg _) -> false
  | Role_incl (_, R_role _) -> true
  | Role_incl (_, R_neg _) -> false
  | Attr_incl (_, A_attr _) -> true
  | Attr_incl (_, A_neg _) -> false

(** Uniform view of the two kinds of subsumable expressions, used by the
    classification output ([S1 ⊑ S2] with both sides of the same sort). *)
type expr =
  | E_concept of basic
  | E_role of role
  | E_attr of string
[@@deriving eq, ord, show { with_path = false }]

(* ------------------------------------------------------------------ *)
(* Concrete-syntax printing (human-oriented, ASCII; also accepted by
   [Parser]).                                                           *)
(* ------------------------------------------------------------------ *)

let pp_role_ascii fmt = function
  | Direct p -> Format.pp_print_string fmt p
  | Inverse p -> Format.fprintf fmt "%s^-" p

let pp_basic_ascii fmt = function
  | Atomic a -> Format.pp_print_string fmt a
  | Exists q -> Format.fprintf fmt "exists %a" pp_role_ascii q
  | Attr_domain u -> Format.fprintf fmt "delta(%s)" u

let pp_concept_rhs_ascii fmt = function
  | C_basic b -> pp_basic_ascii fmt b
  | C_neg b -> Format.fprintf fmt "not %a" pp_basic_ascii b
  | C_exists_qual (q, a) -> Format.fprintf fmt "exists %a . %s" pp_role_ascii q a

let pp_role_rhs_ascii fmt = function
  | R_role q -> pp_role_ascii fmt q
  | R_neg q -> Format.fprintf fmt "not %a" pp_role_ascii q

let pp_attr_rhs_ascii fmt = function
  | A_attr u -> Format.pp_print_string fmt u
  | A_neg u -> Format.fprintf fmt "not %s" u

(** [pp_axiom_ascii] prints an axiom in the ASCII concrete syntax
    ([ [= ] stands for the subsumption symbol ⊑). *)
let pp_axiom_ascii fmt = function
  | Concept_incl (b, c) ->
    Format.fprintf fmt "%a [= %a" pp_basic_ascii b pp_concept_rhs_ascii c
  | Role_incl (q, r) ->
    Format.fprintf fmt "%a [= %a" pp_role_ascii q pp_role_rhs_ascii r
  | Attr_incl (u, v) ->
    Format.fprintf fmt "%s [= %a" u pp_attr_rhs_ascii v

let pp_expr_ascii fmt = function
  | E_concept b -> pp_basic_ascii fmt b
  | E_role q -> pp_role_ascii fmt q
  | E_attr u -> Format.fprintf fmt "attr %s" u

let axiom_to_string ax = Format.asprintf "%a" pp_axiom_ascii ax
let expr_to_string e = Format.asprintf "%a" pp_expr_ascii e
