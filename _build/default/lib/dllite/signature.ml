(** Ontology signatures: the atomic concept, role and attribute names a
    TBox speaks about.  Kept explicit (rather than always recomputed)
    because classification must also report names that occur in no axiom
    at all — they are still part of the vocabulary. *)

module Sset = Set.Make (String)

type t = {
  concepts : Sset.t;
  roles : Sset.t;
  attributes : Sset.t;
}

let empty = { concepts = Sset.empty; roles = Sset.empty; attributes = Sset.empty }

let add_concept s t = { t with concepts = Sset.add s t.concepts }
let add_role s t = { t with roles = Sset.add s t.roles }
let add_attribute s t = { t with attributes = Sset.add s t.attributes }

let mem_concept s t = Sset.mem s t.concepts
let mem_role s t = Sset.mem s t.roles
let mem_attribute s t = Sset.mem s t.attributes

let concepts t = Sset.elements t.concepts
let roles t = Sset.elements t.roles
let attributes t = Sset.elements t.attributes

let concept_count t = Sset.cardinal t.concepts
let role_count t = Sset.cardinal t.roles
let attribute_count t = Sset.cardinal t.attributes

(** [union a b] is the component-wise union. *)
let union a b =
  {
    concepts = Sset.union a.concepts b.concepts;
    roles = Sset.union a.roles b.roles;
    attributes = Sset.union a.attributes b.attributes;
  }

let of_basic = function
  | Syntax.Atomic a -> add_concept a empty
  | Syntax.Exists q -> add_role (Syntax.role_name q) empty
  | Syntax.Attr_domain u -> add_attribute u empty

(** [of_axiom ax] is the signature of the symbols occurring in [ax]. *)
let of_axiom = function
  | Syntax.Concept_incl (b, rhs) ->
    let s = of_basic b in
    (match rhs with
     | Syntax.C_basic b' | Syntax.C_neg b' -> union s (of_basic b')
     | Syntax.C_exists_qual (q, a) ->
       s |> add_role (Syntax.role_name q) |> add_concept a)
  | Syntax.Role_incl (q, rhs) ->
    let s = add_role (Syntax.role_name q) empty in
    (match rhs with
     | Syntax.R_role q' | Syntax.R_neg q' -> add_role (Syntax.role_name q') s)
  | Syntax.Attr_incl (u, rhs) ->
    let s = add_attribute u empty in
    (match rhs with
     | Syntax.A_attr v | Syntax.A_neg v -> add_attribute v s)

(** [of_axioms axs] is the union of the axiom signatures. *)
let of_axioms axs = List.fold_left (fun s ax -> union s (of_axiom ax)) empty axs

(** [equal a b] is extensional equality. *)
let equal a b =
  Sset.equal a.concepts b.concepts
  && Sset.equal a.roles b.roles
  && Sset.equal a.attributes b.attributes

let pp fmt t =
  Format.fprintf fmt "concepts: %s@.roles: %s@.attributes: %s"
    (String.concat ", " (concepts t))
    (String.concat ", " (roles t))
    (String.concat ", " (attributes t))
