(** ABoxes: extensional assertions over individual constants.

    In a full OBDA deployment the ABox is *virtual* — defined by the
    mappings over the sources (see the [obda] library).  A materialized
    ABox is still needed as the target of mapping unfolding, for the
    chase-based test oracle, and for standalone examples. *)

type assertion =
  | Concept_assert of string * string          (** [A(c)] *)
  | Role_assert of string * string * string    (** [P(c1, c2)] *)
  | Attr_assert of string * string * string    (** [U(c, v)], [v] a value *)

let compare_assertion = Stdlib.compare
let equal_assertion a b = compare_assertion a b = 0

module Assertion_set = Set.Make (struct
  type t = assertion

  let compare = compare_assertion
end)

type t = Assertion_set.t

let empty = Assertion_set.empty
let add = Assertion_set.add
let of_list l = List.fold_left (fun s a -> add a s) empty l
let assertions t = Assertion_set.elements t
let mem = Assertion_set.mem
let size = Assertion_set.cardinal
let union = Assertion_set.union

(** [individuals t] is the sorted list of individual constants occurring
    in object positions (attribute values are not individuals). *)
let individuals t =
  let module S = Set.Make (String) in
  let s =
    Assertion_set.fold
      (fun a acc ->
        match a with
        | Concept_assert (_, c) -> S.add c acc
        | Role_assert (_, c1, c2) -> S.add c1 (S.add c2 acc)
        | Attr_assert (_, c, _) -> S.add c acc)
      t S.empty
  in
  S.elements s

(** [concept_members t a] are the individuals asserted to belong to [a]. *)
let concept_members t a =
  Assertion_set.fold
    (fun x acc ->
      match x with Concept_assert (a', c) when a' = a -> c :: acc | _ -> acc)
    t []

(** [role_members t p] are the asserted pairs of role [p]. *)
let role_members t p =
  Assertion_set.fold
    (fun x acc ->
      match x with Role_assert (p', c1, c2) when p' = p -> (c1, c2) :: acc | _ -> acc)
    t []

(** [attr_members t u] are the asserted (individual, value) pairs of [u]. *)
let attr_members t u =
  Assertion_set.fold
    (fun x acc ->
      match x with Attr_assert (u', c, v) when u' = u -> (c, v) :: acc | _ -> acc)
    t []

let pp_assertion fmt = function
  | Concept_assert (a, c) -> Format.fprintf fmt "%s(%s)" a c
  | Role_assert (p, c1, c2) -> Format.fprintf fmt "%s(%s, %s)" p c1 c2
  | Attr_assert (u, c, v) -> Format.fprintf fmt "%s(%s, %S)" u c v

let pp fmt t =
  Format.fprintf fmt "@[<v>";
  List.iter (fun a -> Format.fprintf fmt "%a@," pp_assertion a) (assertions t);
  Format.fprintf fmt "@]"
