(** Parser for the ASCII concrete syntax of DL-Lite_R TBoxes and ABoxes.

    Grammar (one item per line; [#] starts a comment):

    {v
      decl      ::= "concept" ident | "role" ident | "attr" ident
      axiom     ::= term "[=" rhs
      term      ::= ident | ident "^-" | "exists" roleterm | "delta" "(" ident ")"
      roleterm  ::= ident | ident "^-"
      rhs       ::= ["not"] term | "exists" roleterm "." ident
      assertion ::= ident "(" ident ")" | ident "(" ident "," ident ")"
    v}

    A bare [ident [= ident] line is a concept inclusion unless the
    left-hand ident was previously declared (or used) as a role or an
    attribute.  This mirrors how OWL functional syntax disambiguates via
    entity declarations. *)

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

type token =
  | Ident of string
  | Inverse_marker   (* ^- *)
  | Subsumes         (* [= *)
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Kw_concept
  | Kw_role
  | Kw_attr
  | Kw_exists
  | Kw_not
  | Kw_delta
  | Kw_funct
  | Kw_id

let keyword_of_string = function
  | "concept" -> Some Kw_concept
  | "role" -> Some Kw_role
  | "attr" -> Some Kw_attr
  | "exists" -> Some Kw_exists
  | "not" -> Some Kw_not
  | "delta" -> Some Kw_delta
  | "funct" -> Some Kw_funct
  | "id" -> Some Kw_id
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

(** [tokenize_line ~line s] turns one source line into tokens. *)
let tokenize_line ~line s =
  let n = String.length s in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then i := n
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      let word = String.sub s start (!i - start) in
      match keyword_of_string word with
      | Some kw -> emit kw
      | None -> emit (Ident word)
    end
    else if c = '^' && !i + 1 < n && s.[!i + 1] = '-' then begin
      emit Inverse_marker;
      i := !i + 2
    end
    else if c = '[' && !i + 1 < n && s.[!i + 1] = '=' then begin
      emit Subsumes;
      i := !i + 2
    end
    else begin
      (match c with
       | '(' -> emit Lparen
       | ')' -> emit Rparen
       | ',' -> emit Comma
       | '.' -> emit Dot
       | _ -> fail line "unexpected character %C" c);
      incr i
    end
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Sort inference context                                              *)
(* ------------------------------------------------------------------ *)

type sort = S_concept | S_role | S_attr

type context = {
  mutable sorts : (string * sort) list;  (* association list; small inputs *)
}

let sort_of ctx name = List.assoc_opt name ctx.sorts

let declare ctx line name sort =
  match sort_of ctx name with
  | None -> ctx.sorts <- (name, sort) :: ctx.sorts
  | Some s when s = sort -> ()
  | Some _ -> fail line "name %s used with two different sorts" name

(* ------------------------------------------------------------------ *)
(* Line parsers                                                        *)
(* ------------------------------------------------------------------ *)

(* A parsed left- or right-hand term before sort resolution. *)
type term =
  | T_name of string                    (* bare ident: concept, role or attr *)
  | T_inverse of string                 (* P^- : necessarily a role *)
  | T_exists of Syntax.role             (* exists Q : a concept *)
  | T_exists_qual of Syntax.role * string  (* exists Q . A : a concept rhs *)
  | T_delta of string                   (* delta(U) : a concept *)

let parse_roleterm line = function
  | Ident p :: Inverse_marker :: rest -> (Syntax.Inverse p, rest)
  | Ident p :: rest -> (Syntax.Direct p, rest)
  | _ -> fail line "expected a role term"

let parse_term line tokens =
  match tokens with
  | Kw_exists :: rest ->
    let q, rest = parse_roleterm line rest in
    (match rest with
     | Dot :: Ident a :: rest' -> (T_exists_qual (q, a), rest')
     | _ -> (T_exists q, rest))
  | Kw_delta :: Lparen :: Ident u :: Rparen :: rest -> (T_delta u, rest)
  | Ident x :: Inverse_marker :: rest -> (T_inverse x, rest)
  | Ident x :: rest -> (T_name x, rest)
  | _ -> fail line "expected a concept, role or attribute term"

(* Resolve a term to a basic concept, registering sorts as we learn them. *)
let to_basic ctx line = function
  | T_name x ->
    declare ctx line x S_concept;
    Syntax.Atomic x
  | T_exists q ->
    declare ctx line (Syntax.role_name q) S_role;
    Syntax.Exists q
  | T_delta u ->
    declare ctx line u S_attr;
    Syntax.Attr_domain u
  | T_inverse _ -> fail line "a role inverse is not a concept"
  | T_exists_qual _ ->
    fail line "qualified existentials may only appear on the right-hand side"

let to_role ctx line = function
  | T_name x ->
    declare ctx line x S_role;
    Syntax.Direct x
  | T_inverse x ->
    declare ctx line x S_role;
    Syntax.Inverse x
  | _ -> fail line "expected a role"

let to_attr ctx line = function
  | T_name x ->
    declare ctx line x S_attr;
    x
  | _ -> fail line "expected an attribute name"

(** Parse one [lhs [= rhs] line given the tokens on each side. *)
let parse_axiom ctx line lhs_tokens rhs_tokens =
  let lhs_term, lhs_rest = parse_term line lhs_tokens in
  if lhs_rest <> [] then fail line "trailing tokens after left-hand side";
  let negated, rhs_tokens =
    match rhs_tokens with
    | Kw_not :: rest -> (true, rest)
    | rest -> (false, rest)
  in
  let rhs_term, rhs_rest = parse_term line rhs_tokens in
  if rhs_rest <> [] then fail line "trailing tokens after right-hand side";
  (* Decide the axiom sort from whichever side is least ambiguous. *)
  let lhs_sort =
    match lhs_term with
    | T_inverse _ -> Some S_role
    | T_exists _ | T_delta _ -> Some S_concept
    | T_exists_qual _ -> fail line "qualified existential on left-hand side"
    | T_name x -> sort_of ctx x
  in
  let rhs_sort =
    match rhs_term with
    | T_inverse _ -> Some S_role
    | T_exists _ | T_delta _ | T_exists_qual _ -> Some S_concept
    | T_name x -> sort_of ctx x
  in
  let sort =
    match lhs_sort, rhs_sort with
    | Some s, None | None, Some s -> s
    | Some s1, Some s2 ->
      (* [role [= exists ...] is ill-sorted; report it rather than guess. *)
      if s1 = s2 then s1 else fail line "inclusion sides have different sorts"
    | None, None -> S_concept
  in
  match sort with
  | S_concept ->
    let b = to_basic ctx line lhs_term in
    let rhs =
      match rhs_term, negated with
      | T_exists_qual (q, a), false ->
        declare ctx line (Syntax.role_name q) S_role;
        declare ctx line a S_concept;
        Syntax.C_exists_qual (q, a)
      | T_exists_qual _, true -> fail line "negated qualified existentials are not in DL-Lite_R"
      | t, false -> Syntax.C_basic (to_basic ctx line t)
      | t, true -> Syntax.C_neg (to_basic ctx line t)
    in
    Syntax.Concept_incl (b, rhs)
  | S_role ->
    let q = to_role ctx line lhs_term in
    let q' = to_role ctx line rhs_term in
    Syntax.Role_incl (q, if negated then Syntax.R_neg q' else Syntax.R_role q')
  | S_attr ->
    let u = to_attr ctx line lhs_term in
    let v = to_attr ctx line rhs_term in
    Syntax.Attr_incl (u, if negated then Syntax.A_neg v else Syntax.A_attr v)

let split_on_subsumes tokens =
  let rec go acc = function
    | [] -> None
    | Subsumes :: rest -> Some (List.rev acc, rest)
    | t :: rest -> go (t :: acc) rest
  in
  go [] tokens

(* Constraint lines: "funct q", "funct attr u", "id B q1 q2 ...". *)
let parse_constraint ctx line tokens =
  match tokens with
  | Kw_funct :: Kw_attr :: Ident u :: [] ->
    declare ctx line u S_attr;
    Constraints.Funct_attr u
  | Kw_funct :: rest ->
    let q, rest = parse_roleterm line rest in
    if rest <> [] then fail line "trailing tokens after funct";
    declare ctx line (Syntax.role_name q) S_role;
    Constraints.Funct_role q
  | Kw_id :: Ident b :: rest ->
    declare ctx line b S_concept;
    let rec roles acc = function
      | [] -> List.rev acc
      | tokens ->
        let q, rest = parse_roleterm line tokens in
        declare ctx line (Syntax.role_name q) S_role;
        roles (q :: acc) rest
    in
    let paths = roles [] rest in
    if paths = [] then fail line "id constraint needs at least one role";
    Constraints.Identification (b, paths)
  | _ -> fail line "malformed constraint"

(** [parse_document source] parses a TBox document that may also contain
    functionality and identification constraint lines. *)
let parse_document source =
  let ctx = { sorts = [] } in
  let axioms = ref [] in
  let constraints = ref [] in
  let signature = ref Signature.empty in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      match tokenize_line ~line raw with
      | [] -> ()
      | [ Kw_concept; Ident a ] ->
        declare ctx line a S_concept;
        signature := Signature.add_concept a !signature
      | [ Kw_role; Ident p ] ->
        declare ctx line p S_role;
        signature := Signature.add_role p !signature
      | [ Kw_attr; Ident u ] ->
        declare ctx line u S_attr;
        signature := Signature.add_attribute u !signature
      | (Kw_funct :: _ | Kw_id :: _) as tokens ->
        constraints := parse_constraint ctx line tokens :: !constraints
      | tokens ->
        (match split_on_subsumes tokens with
         | Some (lhs, rhs) -> axioms := parse_axiom ctx line lhs rhs :: !axioms
         | None -> fail line "expected a declaration or an inclusion"))
    lines;
  (* constraint lines may mention otherwise-undeclared names; fold the
     inferred sorts into the signature so downstream checks see them *)
  let signature =
    List.fold_left
      (fun s (name, sort) ->
        match sort with
        | S_concept -> Signature.add_concept name s
        | S_role -> Signature.add_role name s
        | S_attr -> Signature.add_attribute name s)
      !signature ctx.sorts
  in
  ( Tbox.of_axioms ~signature (List.rev !axioms),
    List.rev !constraints )

(** [parse_tbox source] parses a whole TBox document (constraint lines
    are accepted and dropped; use [parse_document] to keep them). *)
let parse_tbox source = fst (parse_document source)

(** [parse_abox source] parses assertions, one per line:
    [A(c)], [P(c1, c2)] (roles), or [U(c, v)] when [U] is not known —
    role vs attribute is decided by an optional leading [attr] keyword:
    [attr U(c, v)]. *)
let parse_abox source =
  let assertions = ref [] in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun idx raw ->
      let line = idx + 1 in
      match tokenize_line ~line raw with
      | [] -> ()
      | [ Ident a; Lparen; Ident c; Rparen ] ->
        assertions := Abox.Concept_assert (a, c) :: !assertions
      | [ Ident p; Lparen; Ident c1; Comma; Ident c2; Rparen ] ->
        assertions := Abox.Role_assert (p, c1, c2) :: !assertions
      | [ Kw_attr; Ident u; Lparen; Ident c; Comma; Ident v; Rparen ] ->
        assertions := Abox.Attr_assert (u, c, v) :: !assertions
      | _ -> fail line "expected an assertion")
    lines;
  Abox.of_list (List.rev !assertions)

(** [tbox_of_string_exn s] is [parse_tbox s]; re-exported under a name
    that signals the exception behaviour. *)
let tbox_of_string_exn = parse_tbox

(** [tbox_of_string s] is [Ok (parse_tbox s)] or [Error message]. *)
let tbox_of_string s =
  match parse_tbox s with
  | t -> Ok t
  | exception Parse_error { line; message } ->
    Error (Printf.sprintf "line %d: %s" line message)
