lib/dllite/signature.pp.ml: Format List Set String Syntax
