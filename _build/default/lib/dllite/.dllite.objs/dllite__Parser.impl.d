lib/dllite/parser.pp.ml: Abox Constraints Format List Printf Signature String Syntax Tbox
