lib/dllite/tbox.pp.ml: Format List Set Signature Syntax
