lib/dllite/constraints.pp.ml: Format List Printf Stdlib String Syntax Tbox
