lib/dllite/owl2ql.pp.ml: Buffer Format List Printf Signature String Syntax Tbox
