lib/dllite/abox.pp.ml: Format List Set Stdlib String
