lib/dllite/syntax.pp.ml: Format Ppx_deriving_runtime
