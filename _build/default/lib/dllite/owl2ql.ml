(** OWL 2 QL interchange: render a DL-Lite_R TBox in the OWL 2
    functional-style syntax and read the same fragment back.

    "The significance of the DL-Lite family is testified by the fact
    that it constitutes the logical underpinning of OWL 2 QL" (Section
    4) — this module is the bridge: ontologies edited in standard OWL
    tooling round-trip into the toolkit.

    The supported fragment is exactly our DL-Lite_R(+attributes):
    [SubClassOf] with the QL-legal class expressions,
    [SubObjectPropertyOf], [DisjointClasses]/[DisjointObjectProperties]/
    [DisjointDataProperties], [SubDataPropertyOf], and declarations.
    Everything else is rejected with a location. *)

open Syntax

exception Unsupported of string

let fail fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let role_to_functional = function
  | Direct p -> Printf.sprintf ":%s" p
  | Inverse p -> Printf.sprintf "ObjectInverseOf(:%s)" p

let basic_to_functional = function
  | Atomic a -> Printf.sprintf ":%s" a
  | Exists q ->
    Printf.sprintf "ObjectSomeValuesFrom(%s owl:Thing)" (role_to_functional q)
  | Attr_domain u -> Printf.sprintf "DataSomeValuesFrom(:%s rdfs:Literal)" u

let axiom_to_functional = function
  | Concept_incl (b, C_basic b') ->
    Printf.sprintf "SubClassOf(%s %s)" (basic_to_functional b) (basic_to_functional b')
  | Concept_incl (b, C_neg b') ->
    (* QL expresses disjointness natively *)
    Printf.sprintf "DisjointClasses(%s %s)" (basic_to_functional b)
      (basic_to_functional b')
  | Concept_incl (b, C_exists_qual (q, a)) ->
    Printf.sprintf "SubClassOf(%s ObjectSomeValuesFrom(%s :%s))"
      (basic_to_functional b) (role_to_functional q) a
  | Role_incl (q, R_role q') ->
    Printf.sprintf "SubObjectPropertyOf(%s %s)" (role_to_functional q)
      (role_to_functional q')
  | Role_incl (q, R_neg q') ->
    Printf.sprintf "DisjointObjectProperties(%s %s)" (role_to_functional q)
      (role_to_functional q')
  | Attr_incl (u, A_attr u') -> Printf.sprintf "SubDataPropertyOf(:%s :%s)" u u'
  | Attr_incl (u, A_neg u') ->
    Printf.sprintf "DisjointDataProperties(:%s :%s)" u u'

(** [to_functional ?iri tbox] renders the whole document, declarations
    included. *)
let to_functional ?(iri = "http://example.org/ontology") tbox =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "Prefix(:=<";
  Buffer.add_string buf iri;
  Buffer.add_string buf "#>)\n";
  Buffer.add_string buf "Prefix(owl:=<http://www.w3.org/2002/07/owl#>)\n";
  Buffer.add_string buf "Prefix(rdfs:=<http://www.w3.org/2000/01/rdf-schema#>)\n";
  Buffer.add_string buf (Printf.sprintf "Ontology(<%s>\n" iri);
  let signature = Tbox.signature tbox in
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf "Declaration(Class(:%s))\n" a))
    (Signature.concepts signature);
  List.iter
    (fun p ->
      Buffer.add_string buf (Printf.sprintf "Declaration(ObjectProperty(:%s))\n" p))
    (Signature.roles signature);
  List.iter
    (fun u ->
      Buffer.add_string buf (Printf.sprintf "Declaration(DataProperty(:%s))\n" u))
    (Signature.attributes signature);
  List.iter
    (fun ax -> Buffer.add_string buf (axiom_to_functional ax ^ "\n"))
    (Tbox.axioms tbox);
  Buffer.add_string buf ")\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

(* A tiny s-expression-ish reader for the functional syntax: tokens are
   names, '(' and ')'. *)
type sexp =
  | Atom of string
  | App of string * sexp list

let tokenize source =
  let tokens = ref [] in
  let buf = Buffer.create 32 in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := `Name (Buffer.contents buf) :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '(' ->
        flush ();
        tokens := `Open :: !tokens
      | ')' ->
        flush ();
        tokens := `Close :: !tokens
      | ' ' | '\t' | '\n' | '\r' -> flush ()
      | c -> Buffer.add_char buf c)
    source;
  flush ();
  List.rev !tokens

let parse_sexps tokens =
  (* returns (sexps, rest) up to an unmatched Close *)
  let rec go acc = function
    | [] -> (List.rev acc, [])
    | `Close :: rest -> (List.rev acc, rest)
    | `Open :: _ -> fail "unexpected bare '('"
    | `Name n :: `Open :: rest ->
      let args, rest = go [] rest in
      go (App (n, args) :: acc) rest
    | `Name n :: rest -> go (Atom n :: acc) rest
  in
  let sexps, rest = go [] tokens in
  if rest <> [] then fail "unbalanced parentheses";
  sexps

let local name =
  (* strip a ":" prefix; reject full IRIs beyond the known prefixes *)
  if String.length name > 1 && name.[0] = ':' then
    String.sub name 1 (String.length name - 1)
  else name

let parse_role = function
  | Atom p -> Direct (local p)
  | App ("ObjectInverseOf", [ Atom p ]) -> Inverse (local p)
  | App (f, _) -> fail "unsupported property expression %s" f

let parse_class = function
  | Atom "owl:Thing" -> fail "owl:Thing is only allowed as a filler"
  | Atom a -> Atomic (local a)
  | App ("ObjectSomeValuesFrom", [ r; Atom "owl:Thing" ]) -> Exists (parse_role r)
  | App ("DataSomeValuesFrom", [ Atom u; Atom "rdfs:Literal" ]) ->
    Attr_domain (local u)
  | App (f, _) -> fail "unsupported class expression %s" f

(* class expressions allowed on the RHS of SubClassOf in our fragment *)
let parse_rhs = function
  | App ("ObjectSomeValuesFrom", [ r; Atom filler ]) when filler <> "owl:Thing" ->
    C_exists_qual (parse_role r, local filler)
  | App ("ObjectComplementOf", [ c ]) -> C_neg (parse_class c)
  | c -> C_basic (parse_class c)

let axiom_of_sexp = function
  | App ("SubClassOf", [ lhs; rhs ]) -> Some (Concept_incl (parse_class lhs, parse_rhs rhs))
  | App ("DisjointClasses", [ lhs; rhs ]) ->
    Some (Concept_incl (parse_class lhs, C_neg (parse_class rhs)))
  | App ("SubObjectPropertyOf", [ r; s ]) ->
    Some (Role_incl (parse_role r, R_role (parse_role s)))
  | App ("DisjointObjectProperties", [ r; s ]) ->
    Some (Role_incl (parse_role r, R_neg (parse_role s)))
  | App ("SubDataPropertyOf", [ Atom u; Atom w ]) ->
    Some (Attr_incl (local u, A_attr (local w)))
  | App ("DisjointDataProperties", [ Atom u; Atom w ]) ->
    Some (Attr_incl (local u, A_neg (local w)))
  | App ("Declaration", _) | App ("Prefix", _) -> None
  | App (f, _) -> fail "unsupported axiom %s" f
  | Atom a -> fail "stray token %s" a

let declaration_of_sexp signature = function
  | App ("Declaration", [ App ("Class", [ Atom a ]) ]) ->
    Signature.add_concept (local a) signature
  | App ("Declaration", [ App ("ObjectProperty", [ Atom p ]) ]) ->
    Signature.add_role (local p) signature
  | App ("Declaration", [ App ("DataProperty", [ Atom u ]) ]) ->
    Signature.add_attribute (local u) signature
  | _ -> signature

(** [of_functional source] parses a functional-syntax document in the QL
    fragment above.  @raise Unsupported on anything else. *)
let of_functional source =
  let sexps = parse_sexps (tokenize source) in
  (* unwrap Ontology(...) if present, skip Prefix lines *)
  let body =
    List.concat_map
      (function
        | App ("Ontology", items) ->
          (* the first item may be the ontology IRI atom *)
          List.filter (function Atom _ -> false | App _ -> true) items
        | App ("Prefix", _) -> []
        | other -> [ other ])
      sexps
  in
  let signature =
    List.fold_left declaration_of_sexp Signature.empty body
  in
  let axioms = List.filter_map axiom_of_sexp body in
  Tbox.of_axioms ~signature axioms
