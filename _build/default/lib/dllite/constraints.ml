(** Extensional constraints beyond plain DL-Lite_R: functionality and
    identification assertions, the "constraint management" service the
    paper attributes to Mastro (Section 2).

    These constraints are *checked*, not reasoned with: following the
    DL-Lite_A / Mastro design they are evaluated against the (virtual)
    ABox as integrity constraints, and a well-formedness condition keeps
    them from interacting with the positive-inclusion machinery — a
    functional role or attribute may not be specialized (no proper
    sub-roles), which is exactly the syntactic restriction DL-Lite_A
    imposes to stay first-order rewritable. *)

type t =
  | Funct_role of Syntax.role      (** (funct Q): at most one Q-filler *)
  | Funct_attr of string           (** (funct U): at most one U-value *)
  | Identification of string * Syntax.role list
      (** (id B Q1 .. Qn): no two distinct instances of [B] agree on
          (some filler of) every [Qi] *)

let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp fmt = function
  | Funct_role q -> Format.fprintf fmt "funct %a" Syntax.pp_role_ascii q
  | Funct_attr u -> Format.fprintf fmt "funct attr %s" u
  | Identification (b, roles) ->
    Format.fprintf fmt "id %s %s" b
      (String.concat " "
         (List.map (fun q -> Format.asprintf "%a" Syntax.pp_role_ascii q) roles))

let to_string c = Format.asprintf "%a" pp c

(** Why a constraint set is not admissible over a TBox. *)
type violation = {
  constraint_ : t;
  reason : string;
}

(** [well_formed tbox constraints] — the DL-Lite_A admissibility check:
    a functional role (or attribute) must not appear on the right-hand
    side of a role (attribute) inclusion with a different left-hand
    side, i.e. it has no proper specializations.  Returns the offending
    constraints ([] = admissible). *)
let well_formed tbox constraints =
  let role_specialized q =
    List.exists
      (fun ax ->
        match ax with
        | Syntax.Role_incl (q1, Syntax.R_role q2) ->
          (not (Syntax.equal_role q1 q))
          && (Syntax.equal_role q2 q
              || Syntax.equal_role q2 (Syntax.role_inverse q))
        | _ -> false)
      (Tbox.axioms tbox)
  in
  let attr_specialized u =
    List.exists
      (fun ax ->
        match ax with
        | Syntax.Attr_incl (u1, Syntax.A_attr u2) -> u1 <> u && u2 = u
        | _ -> false)
      (Tbox.axioms tbox)
  in
  List.filter_map
    (fun c ->
      match c with
      | Funct_role q when role_specialized q ->
        Some
          {
            constraint_ = c;
            reason =
              Printf.sprintf "functional role %s has proper sub-roles (DL-Lite_A \
                              admissibility)"
                (Syntax.role_name q);
          }
      | Funct_attr u when attr_specialized u ->
        Some
          {
            constraint_ = c;
            reason =
              Printf.sprintf "functional attribute %s has proper sub-attributes" u;
          }
      | Identification (_, []) ->
        Some { constraint_ = c; reason = "identification needs at least one path" }
      | Funct_role _ | Funct_attr _ | Identification _ -> None)
    constraints
