lib/graph/reduction.mli: Closure Graph Scc
