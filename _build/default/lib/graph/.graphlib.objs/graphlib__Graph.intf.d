lib/graph/graph.mli: Bitvec
