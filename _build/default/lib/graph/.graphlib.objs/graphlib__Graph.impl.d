lib/graph/graph.ml: Array Bitvec Hashtbl List Queue Stack
