lib/graph/reduction.ml: Bitvec Closure List Scc
