lib/graph/closure.ml: Array Bitvec Graph Hashtbl List Scc
