lib/graph/bitvec.ml: Array List Sys
