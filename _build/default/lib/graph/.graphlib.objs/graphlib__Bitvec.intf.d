lib/graph/bitvec.mli:
