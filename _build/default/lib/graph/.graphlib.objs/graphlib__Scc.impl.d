lib/graph/scc.ml: Array Graph Stack
