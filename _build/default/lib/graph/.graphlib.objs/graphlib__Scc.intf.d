lib/graph/scc.mli: Graph
