lib/graph/closure.mli: Bitvec Graph
