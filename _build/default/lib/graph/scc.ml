(** Strongly connected components (Tarjan) and graph condensation.

    The condensation is the heart of the fastest transitive-closure
    algorithm used by the classifier: within an SCC every node reaches
    every other, so reachability only needs to be solved once per
    component on the (acyclic) condensation. *)

type result = {
  count : int;              (** number of components *)
  component : int array;    (** [component.(v)] is the component id of node [v] *)
  members : int list array; (** [members.(c)] is the node list of component [c] *)
}

(** [tarjan g] computes the strongly connected components of [g].
    Component ids are assigned in *reverse topological order* of the
    condensation: if there is an edge from component [c1] to [c2] with
    [c1 <> c2] then [c1 > c2].  This is the order Tarjan naturally emits
    and the closure algorithm exploits it directly.

    Implemented iteratively (explicit stack) so that deep hierarchies —
    e.g. a 40k-concept FMA-like chain — cannot overflow the OCaml stack. *)
let tarjan g =
  let n = Graph.node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_component = ref 0 in
  (* Explicit DFS frames: (node, remaining successors). *)
  let frames = Stack.create () in
  let start_visit v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    Stack.push v stack;
    on_stack.(v) <- true;
    Stack.push (v, ref (Graph.successors g v)) frames
  in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      start_visit root;
      while not (Stack.is_empty frames) do
        let v, rest = Stack.top frames in
        match !rest with
        | w :: tl ->
          rest := tl;
          if index.(w) = -1 then start_visit w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
          ignore (Stack.pop frames);
          if lowlink.(v) = index.(v) then begin
            let c = !next_component in
            incr next_component;
            let continue = ref true in
            while !continue do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              component.(w) <- c;
              if w = v then continue := false
            done
          end;
          (* propagate lowlink to the parent frame, if any *)
          if not (Stack.is_empty frames) then begin
            let parent, _ = Stack.top frames in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
      done
    end
  done;
  let count = !next_component in
  let members = Array.make count [] in
  for v = n - 1 downto 0 do
    let c = component.(v) in
    members.(c) <- v :: members.(c)
  done;
  { count; component; members }

(** [condensation g r] is the acyclic graph whose nodes are the components
    of [r] and whose edges are the inter-component edges of [g]
    (deduplicated, without self-loops). *)
let condensation g r =
  let dag = Graph.create ~initial_nodes:r.count () in
  Graph.iter_edges g (fun u v ->
      let cu = r.component.(u) and cv = r.component.(v) in
      if cu <> cv then Graph.add_edge dag cu cv);
  dag
