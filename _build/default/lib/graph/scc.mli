(** Strongly connected components (Tarjan) and graph condensation. *)

type result = {
  count : int;              (** number of components *)
  component : int array;    (** [component.(v)] is the component id of node [v] *)
  members : int list array; (** [members.(c)] is the node list of component [c] *)
}

(** [tarjan g] computes the strongly connected components of [g].
    Component ids are assigned in *reverse topological order* of the
    condensation: an inter-component edge always goes from a larger to a
    smaller id.  Implemented iteratively, so arbitrarily deep graphs are
    safe. *)
val tarjan : Graph.t -> result

(** [condensation g r] is the acyclic graph whose nodes are the
    components of [r] and whose edges are the deduplicated
    inter-component edges of [g]. *)
val condensation : Graph.t -> result -> Graph.t
