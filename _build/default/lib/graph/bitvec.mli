(** Fixed-length mutable bit vectors backed by [int] words.

    Used as adjacency/reachability rows by the transitive-closure
    algorithms, where the word-parallel {!union_into} is the inner
    loop. *)

type t

(** [create n] is an all-zero bit vector of length [n].
    @raise Invalid_argument on negative [n]. *)
val create : int -> t

(** [length t] is the number of addressable bits. *)
val length : t -> int

(** [set t i] sets bit [i].
    @raise Invalid_argument when [i] is out of bounds. *)
val set : t -> int -> unit

(** [clear t i] clears bit [i]. *)
val clear : t -> int -> unit

(** [get t i] is the value of bit [i]. *)
val get : t -> int -> bool

(** [copy t] is an independent copy of [t]. *)
val copy : t -> t

(** [union_into ~src ~dst] sets [dst := dst ∪ src]; returns [true] iff
    [dst] changed.  Both vectors must have the same length. *)
val union_into : src:t -> dst:t -> bool

(** [inter ~a ~b] is a fresh vector holding [a ∩ b]. *)
val inter : a:t -> b:t -> t

(** [is_empty t] is [true] iff no bit is set. *)
val is_empty : t -> bool

(** [popcount t] is the number of set bits. *)
val popcount : t -> int

(** [iter_set t f] applies [f] to every set bit index in increasing
    order. *)
val iter_set : t -> (int -> unit) -> unit

(** [to_list t] is the increasing list of set bit indices. *)
val to_list : t -> int list

(** [equal a b] is extensional equality of contents. *)
val equal : t -> t -> bool
