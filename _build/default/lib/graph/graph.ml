(** Mutable directed graphs over dense integer node ids.

    Nodes are the integers [0 .. node_count - 1].  Parallel edges are
    collapsed; self-loops are allowed.  The structure maintains both
    successor and predecessor adjacency so that forward and backward
    traversals are equally cheap — the classification algorithms need
    predecessor queries ([computeUnsat]) as much as successor ones. *)

type t = {
  mutable node_count : int;
  mutable succ : int list array;   (* successors, most-recent first *)
  mutable pred : int list array;   (* predecessors, most-recent first *)
  mutable edge_count : int;
  edges : (int * int, unit) Hashtbl.t;  (* membership for dedup / mem query *)
}

(** [create ?initial_nodes ()] is an empty graph with [initial_nodes]
    pre-allocated nodes (default 0). *)
let create ?(initial_nodes = 0) () =
  if initial_nodes < 0 then invalid_arg "Graph.create";
  {
    node_count = initial_nodes;
    succ = Array.make (max initial_nodes 16) [];
    pred = Array.make (max initial_nodes 16) [];
    edge_count = 0;
    edges = Hashtbl.create 64;
  }

let node_count t = t.node_count
let edge_count t = t.edge_count

let ensure_capacity t n =
  let cap = Array.length t.succ in
  if n > cap then begin
    let new_cap = max n (cap * 2) in
    let grow a =
      let b = Array.make new_cap [] in
      Array.blit a 0 b 0 cap;
      b
    in
    t.succ <- grow t.succ;
    t.pred <- grow t.pred
  end

(** [add_node t] allocates and returns a fresh node id. *)
let add_node t =
  let id = t.node_count in
  ensure_capacity t (id + 1);
  t.node_count <- id + 1;
  id

(** [ensure_nodes t n] makes sure node ids [0 .. n-1] exist. *)
let ensure_nodes t n =
  if n > t.node_count then begin
    ensure_capacity t n;
    t.node_count <- n
  end

let check_node t v =
  if v < 0 || v >= t.node_count then invalid_arg "Graph: node out of bounds"

(** [mem_edge t u v] is [true] iff the edge [(u, v)] is present. *)
let mem_edge t u v =
  check_node t u;
  check_node t v;
  Hashtbl.mem t.edges (u, v)

(** [add_edge t u v] inserts the edge [(u, v)]; duplicates are ignored. *)
let add_edge t u v =
  check_node t u;
  check_node t v;
  if not (Hashtbl.mem t.edges (u, v)) then begin
    Hashtbl.add t.edges (u, v) ();
    t.succ.(u) <- v :: t.succ.(u);
    t.pred.(v) <- u :: t.pred.(v);
    t.edge_count <- t.edge_count + 1
  end

(** [successors t v] is the list of direct successors of [v]. *)
let successors t v =
  check_node t v;
  t.succ.(v)

(** [predecessors t v] is the list of direct predecessors of [v]. *)
let predecessors t v =
  check_node t v;
  t.pred.(v)

(** [iter_edges t f] applies [f u v] to every edge. *)
let iter_edges t f =
  for u = 0 to t.node_count - 1 do
    List.iter (fun v -> f u v) t.succ.(u)
  done

(** [edges t] is the list of all edges in unspecified order. *)
let edges t =
  let acc = ref [] in
  iter_edges t (fun u v -> acc := (u, v) :: !acc);
  !acc

(** [copy t] is an independent copy of [t]. *)
let copy t =
  {
    node_count = t.node_count;
    succ = Array.copy t.succ;
    pred = Array.copy t.pred;
    edge_count = t.edge_count;
    edges = Hashtbl.copy t.edges;
  }

(** [transpose t] is a fresh graph with every edge reversed. *)
let transpose t =
  let g = create ~initial_nodes:t.node_count () in
  iter_edges t (fun u v -> add_edge g v u);
  g

(** [reachable_from t v] is the bit-set of nodes reachable from [v] by a
    path of length >= 1 ... no: of length >= 0?  We use length >= 0, i.e.
    [v] itself is always included; callers that need irreflexive
    reachability must mask the source out. *)
let reachable_from t v =
  check_node t v;
  let seen = Bitvec.create t.node_count in
  let rec visit u =
    if not (Bitvec.get seen u) then begin
      Bitvec.set seen u;
      List.iter visit t.succ.(u)
    end
  in
  visit v;
  seen

(** [reaches t u v] is [true] iff there is a (possibly empty) path from
    [u] to [v]. *)
let reaches t u v =
  check_node t u;
  check_node t v;
  u = v
  ||
  let seen = Bitvec.create t.node_count in
  let stack = Stack.create () in
  Stack.push u stack;
  Bitvec.set seen u;
  let found = ref false in
  while (not !found) && not (Stack.is_empty stack) do
    let x = Stack.pop stack in
    List.iter
      (fun y ->
        if y = v then found := true
        else if not (Bitvec.get seen y) then begin
          Bitvec.set seen y;
          Stack.push y stack
        end)
      t.succ.(x)
  done;
  !found

(** [ancestors t v] is the bit-set of nodes from which [v] is reachable,
    including [v] itself (reflexive predecessors). *)
let ancestors t v =
  check_node t v;
  let seen = Bitvec.create t.node_count in
  let rec visit u =
    if not (Bitvec.get seen u) then begin
      Bitvec.set seen u;
      List.iter visit t.pred.(u)
    end
  in
  visit v;
  seen

(** [topological_order t] is a list of all nodes such that every edge goes
    from an earlier to a later node, when the graph is acyclic; raises
    [Failure] on a cyclic graph.  Use [Scc] for the cyclic case. *)
let topological_order t =
  let n = t.node_count in
  let indegree = Array.make n 0 in
  iter_edges t (fun _ v -> indegree.(v) <- indegree.(v) + 1);
  let queue = Queue.create () in
  for v = 0 to n - 1 do
    if indegree.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let emitted = ref 0 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    order := u :: !order;
    incr emitted;
    List.iter
      (fun v ->
        indegree.(v) <- indegree.(v) - 1;
        if indegree.(v) = 0 then Queue.add v queue)
      t.succ.(u)
  done;
  if !emitted <> n then failwith "Graph.topological_order: graph is cyclic";
  List.rev !order
