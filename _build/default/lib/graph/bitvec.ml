(** Fixed-length mutable bit vectors backed by [int] words.

    Used as adjacency/reachability rows in the transitive-closure
    algorithms, where the word-parallel [union_into] is the inner loop. *)

type t = {
  length : int;          (** number of addressable bits *)
  words : int array;     (** packed little-endian words of [bits_per_word] bits *)
}

let bits_per_word = Sys.int_size

let word_count length =
  if length = 0 then 0 else ((length - 1) / bits_per_word) + 1

(** [create n] is an all-zero bit vector of length [n]. *)
let create length =
  if length < 0 then invalid_arg "Bitvec.create: negative length";
  { length; words = Array.make (word_count length) 0 }

let length t = t.length

let check_index t i =
  if i < 0 || i >= t.length then invalid_arg "Bitvec: index out of bounds"

(** [set t i] sets bit [i]. *)
let set t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

(** [clear t i] clears bit [i]. *)
let clear t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

(** [get t i] is the value of bit [i]. *)
let get t i =
  check_index t i;
  let w = i / bits_per_word and b = i mod bits_per_word in
  t.words.(w) land (1 lsl b) <> 0

(** [copy t] is an independent copy of [t]. *)
let copy t = { length = t.length; words = Array.copy t.words }

(** [union_into ~src ~dst] sets [dst := dst ∪ src].  Returns [true] iff
    [dst] changed.  Both vectors must have the same length. *)
let union_into ~src ~dst =
  if src.length <> dst.length then invalid_arg "Bitvec.union_into: length mismatch";
  let changed = ref false in
  for w = 0 to Array.length src.words - 1 do
    let before = dst.words.(w) in
    let after = before lor src.words.(w) in
    if after <> before then begin
      dst.words.(w) <- after;
      changed := true
    end
  done;
  !changed

(** [inter ~a ~b] is a fresh vector holding [a ∩ b]. *)
let inter ~a ~b =
  if a.length <> b.length then invalid_arg "Bitvec.inter: length mismatch";
  let r = create a.length in
  for w = 0 to Array.length a.words - 1 do
    r.words.(w) <- a.words.(w) land b.words.(w)
  done;
  r

(** [is_empty t] is [true] iff no bit is set. *)
let is_empty t = Array.for_all (fun w -> w = 0) t.words

(** [popcount t] is the number of set bits. *)
let popcount t =
  let count_word w =
    let rec go w acc = if w = 0 then acc else go (w land (w - 1)) (acc + 1) in
    go w 0
  in
  Array.fold_left (fun acc w -> acc + count_word w) 0 t.words

(** [iter_set t f] applies [f] to every set bit index in increasing order. *)
let iter_set t f =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to bits_per_word - 1 do
        if word land (1 lsl b) <> 0 then f ((w * bits_per_word) + b)
      done
  done

(** [to_list t] is the increasing list of set bit indices. *)
let to_list t =
  let acc = ref [] in
  iter_set t (fun i -> acc := i :: !acc);
  List.rev !acc

(** [equal a b] is structural equality of contents. *)
let equal a b = a.length = b.length && a.words = b.words
