(** Transitive closure of directed graphs.

    Four interchangeable algorithms are provided; they compute the same
    relation (checked by property tests) but have very different cost
    profiles, which the ablation bench [A1] measures:

    - [Dfs]: one DFS per node, O(V * E).  Simple, good on sparse graphs.
    - [Warshall]: bit-parallel Warshall, O(V^3 / word).  Good on small
      dense graphs, hopeless at FMA scale.
    - [Scc_condense]: Tarjan condensation, then one bottom-up pass over
      the DAG unioning descendant bit-sets.  The default: ontology
      hierarchies are mostly DAGs with a few equivalence cycles, where
      this is the fastest by a wide margin.
    - [On_demand]: no precomputation; memoized per-source DFS, for
      workloads that only ask a few reachability queries.

    Closures are *reflexive*: every node reaches itself.  This matches
    the logical reading ([T |= S ⊑ S] always holds) and makes the
    predecessor sets of [computeUnsat] directly usable. *)

type algorithm = Dfs | Warshall | Scc_condense

(** Materialized closure: [rows.(v)] is the reflexive descendant set of
    node [v]. *)
type t = {
  size : int;
  rows : Bitvec.t array;
}

let size t = t.size

(** [reaches t u v] is [true] iff [v] is a (reflexive) descendant of [u]. *)
let reaches t u v =
  if u < 0 || u >= t.size || v < 0 || v >= t.size then
    invalid_arg "Closure.reaches";
  Bitvec.get t.rows.(u) v

(** [descendants t v] is the reflexive descendant set of [v]. *)
let descendants t v =
  if v < 0 || v >= t.size then invalid_arg "Closure.descendants";
  t.rows.(v)

(** [ancestors t v] is the freshly computed reflexive ancestor set of [v]
    (the column of the closure matrix). *)
let ancestors t v =
  if v < 0 || v >= t.size then invalid_arg "Closure.ancestors";
  let col = Bitvec.create t.size in
  for u = 0 to t.size - 1 do
    if Bitvec.get t.rows.(u) v then Bitvec.set col u
  done;
  col

(** [edge_count t] counts reachable pairs, including the reflexive ones. *)
let edge_count t =
  Array.fold_left (fun acc row -> acc + Bitvec.popcount row) 0 t.rows

(** [iter_pairs t f] applies [f u v] to every pair with [u] reaching [v],
    including [u = v]. *)
let iter_pairs t f =
  for u = 0 to t.size - 1 do
    Bitvec.iter_set t.rows.(u) (fun v -> f u v)
  done

let dfs_closure g =
  let n = Graph.node_count g in
  let rows = Array.init n (fun v -> Graph.reachable_from g v) in
  { size = n; rows }

let warshall_closure g =
  let n = Graph.node_count g in
  let rows = Array.init n (fun _ -> Bitvec.create n) in
  for v = 0 to n - 1 do
    Bitvec.set rows.(v) v;
    List.iter (fun w -> Bitvec.set rows.(v) w) (Graph.successors g v)
  done;
  (* rows.(i) |= rows.(k) whenever i reaches k *)
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      if i <> k && Bitvec.get rows.(i) k then
        ignore (Bitvec.union_into ~src:rows.(k) ~dst:rows.(i))
    done
  done;
  { size = n; rows }

let scc_closure g =
  let n = Graph.node_count g in
  let r = Scc.tarjan g in
  let dag = Scc.condensation g r in
  (* Tarjan ids are in reverse topological order: successors of a
     component always have *smaller* ids, so a single ascending pass
     sees every successor's row fully computed. *)
  let comp_rows = Array.init r.Scc.count (fun _ -> Bitvec.create r.Scc.count) in
  for c = 0 to r.Scc.count - 1 do
    Bitvec.set comp_rows.(c) c;
    List.iter
      (fun c' -> ignore (Bitvec.union_into ~src:comp_rows.(c') ~dst:comp_rows.(c)))
      (Graph.successors dag c)
  done;
  (* Expand component reachability back to node granularity. *)
  let rows = Array.init n (fun _ -> Bitvec.create n) in
  let comp_node_rows =
    Array.init r.Scc.count (fun c ->
        let row = Bitvec.create n in
        Bitvec.iter_set comp_rows.(c) (fun c' ->
            List.iter (fun v -> Bitvec.set row v) r.Scc.members.(c'));
        row)
  in
  for v = 0 to n - 1 do
    rows.(v) <- Bitvec.copy comp_node_rows.(r.Scc.component.(v))
  done;
  { size = n; rows }

(** [compute ?algorithm g] materializes the reflexive transitive closure
    of [g].  Default algorithm: [Scc_condense]. *)
let compute ?(algorithm = Scc_condense) g =
  match algorithm with
  | Dfs -> dfs_closure g
  | Warshall -> warshall_closure g
  | Scc_condense -> scc_closure g

(** [to_graph t] is the closure as an ordinary graph, *without* the
    reflexive edges (they carry no information for classification
    output). *)
let to_graph t =
  let g = Graph.create ~initial_nodes:t.size () in
  iter_pairs t (fun u v -> if u <> v then Graph.add_edge g u v);
  g

(** [equal a b] is extensional equality of the two closures. *)
let equal a b =
  a.size = b.size
  &&
  let ok = ref true in
  for v = 0 to a.size - 1 do
    if not (Bitvec.equal a.rows.(v) b.rows.(v)) then ok := false
  done;
  !ok

(** Memoized on-demand reachability: computes and caches one DFS row per
    distinct source actually queried. *)
module On_demand = struct
  type nonrec t = {
    graph : Graph.t;
    cache : (int, Bitvec.t) Hashtbl.t;
  }

  (** [create g] wraps [g]; [g] must not be mutated afterwards. *)
  let create graph = { graph; cache = Hashtbl.create 64 }

  (** [row t v] is the (cached) reflexive descendant set of [v]. *)
  let row t v =
    match Hashtbl.find_opt t.cache v with
    | Some r -> r
    | None ->
      let r = Graph.reachable_from t.graph v in
      Hashtbl.add t.cache v r;
      r

  (** [reaches t u v] is reflexive reachability, computed lazily. *)
  let reaches t u v = Bitvec.get (row t u) v
end
