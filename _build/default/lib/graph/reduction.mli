(** Transitive reduction of a DAG: the minimal edge set with the same
    reachability relation (the Hasse diagram of the subsumption
    order). *)

(** [reduce_dag closure] — given a *materialized reflexive closure* of a
    DAG, the direct-edge list of its (unique) transitive reduction. *)
val reduce_dag : Closure.t -> (int * int) list

(** [reduce g] — transitive reduction of an arbitrary digraph:
    mutually-reachable nodes collapse into their SCC, and the edge list
    is the unique reduction of the condensation DAG (edges are pairs of
    component ids). *)
val reduce : Graph.t -> Scc.result * (int * int) list
