(** Transitive reduction of a DAG: the minimal edge set with the same
    reachability relation (the Hasse diagram of the subsumption order).

    Classification output is a preorder; collapsing each equivalence
    class (SCC) to one node and reducing the rest gives exactly the
    taxonomy a navigation UI or a documentation generator wants: direct
    parents only. *)

(** [reduce_dag closure] — given a *materialized reflexive closure* of a
    DAG over [n] nodes, return the direct-edge list of its transitive
    reduction: [(u, v)] is kept iff [u] reaches [v], [u <> v], and no
    intermediate [w] has [u -> w -> v].

    For a DAG the transitive reduction is unique.  Cost O(V * E_closure)
    with bit-set rows. *)
let reduce_dag closure =
  let n = Closure.size closure in
  let edges = ref [] in
  for u = 0 to n - 1 do
    let desc_u = Closure.descendants closure u in
    Bitvec.iter_set desc_u (fun v ->
        if u <> v then begin
          (* v is direct iff no w with u->w->v, w not in {u, v} *)
          let direct = ref true in
          Bitvec.iter_set desc_u (fun w ->
              if !direct && w <> u && w <> v && Closure.reaches closure w v then
                direct := false);
          if !direct then edges := (u, v) :: !edges
        end)
  done;
  List.rev !edges

(** [reduce g] — transitive reduction of an arbitrary digraph, returned
    as (components, component-level direct edges):

    - [components.(c)] lists the original nodes of SCC [c] (mutually
      reachable nodes are order-equivalent and collapse);
    - the edge list is the unique transitive reduction of the
      condensation DAG. *)
let reduce g =
  let scc = Scc.tarjan g in
  let dag = Scc.condensation g scc in
  let closure = Closure.compute dag in
  let edges = reduce_dag closure in
  (scc, edges)
