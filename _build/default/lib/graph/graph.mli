(** Mutable directed graphs over dense integer node ids.

    Nodes are the integers [0 .. node_count - 1].  Parallel edges are
    collapsed; self-loops are allowed.  Both successor and predecessor
    adjacency are maintained, so forward and backward traversals are
    equally cheap. *)

type t

(** [create ?initial_nodes ()] is an empty graph with [initial_nodes]
    pre-allocated nodes (default 0). *)
val create : ?initial_nodes:int -> unit -> t

val node_count : t -> int
val edge_count : t -> int

(** [add_node t] allocates and returns a fresh node id. *)
val add_node : t -> int

(** [ensure_nodes t n] makes sure node ids [0 .. n-1] exist. *)
val ensure_nodes : t -> int -> unit

(** [mem_edge t u v] is [true] iff the edge [(u, v)] is present.
    @raise Invalid_argument on out-of-range nodes (all traversal
    functions below share this behaviour). *)
val mem_edge : t -> int -> int -> bool

(** [add_edge t u v] inserts the edge [(u, v)]; duplicates are
    ignored. *)
val add_edge : t -> int -> int -> unit

(** [successors t v] is the list of direct successors of [v]. *)
val successors : t -> int -> int list

(** [predecessors t v] is the list of direct predecessors of [v]. *)
val predecessors : t -> int -> int list

(** [iter_edges t f] applies [f u v] to every edge. *)
val iter_edges : t -> (int -> int -> unit) -> unit

(** [edges t] is the list of all edges in unspecified order. *)
val edges : t -> (int * int) list

(** [copy t] is an independent copy of [t]. *)
val copy : t -> t

(** [transpose t] is a fresh graph with every edge reversed. *)
val transpose : t -> t

(** [reachable_from t v] is the bit-set of nodes reachable from [v],
    [v] itself included (reflexive reachability). *)
val reachable_from : t -> int -> Bitvec.t

(** [reaches t u v] is [true] iff there is a (possibly empty) path from
    [u] to [v]. *)
val reaches : t -> int -> int -> bool

(** [ancestors t v] is the bit-set of nodes from which [v] is reachable,
    including [v] itself. *)
val ancestors : t -> int -> Bitvec.t

(** [topological_order t] lists all nodes with every edge going from an
    earlier to a later node.
    @raise Failure on a cyclic graph (use {!Scc} for the cyclic case). *)
val topological_order : t -> int list
