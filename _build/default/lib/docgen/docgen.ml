(** Automated ontology documentation (Section 8: "the alignment between
    ontology and project documentation must be handled in an automated
    way, through tools that are able to extract information from the
    ontology, and to generate at least a preliminary documentation").

    From a TBox (plus optional free-text annotations) the generator
    produces a self-contained document: overview statistics, the concept
    taxonomy as an indented tree, one section per concept (direct
    supers/subs, equivalents, participations in roles and attributes,
    disjointness, unsatisfiability warnings), and role/attribute
    glossaries.  Markdown and HTML back ends share the same document
    model, so the two renderings never drift apart. *)

open Dllite

(* ------------------------------------------------------------------ *)
(* Annotations                                                         *)
(* ------------------------------------------------------------------ *)

(** Free-text annotations keyed by entity name — the "auxiliary
    documentation regarding the design choices" of Section 3. *)
type annotations = (string * string) list

let annotation annotations name = List.assoc_opt name annotations

(* ------------------------------------------------------------------ *)
(* Document model                                                      *)
(* ------------------------------------------------------------------ *)

type inline =
  | Text of string
  | Code of string
  | Link of string  (** link to an entity section *)

type block =
  | Heading of int * string
  | Paragraph of inline list
  | Bullets of inline list list
  | Preformatted of string

type document = {
  title : string;
  blocks : block list;
}

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

(* Role participations of a concept name: role typings that mention it
   as domain or range. *)
let participations tbox name =
  List.filter_map
    (fun ax ->
      match ax with
      | Syntax.Concept_incl (Syntax.Exists q, Syntax.C_basic (Syntax.Atomic a))
        when a = name -> (
        match q with
        | Syntax.Direct p -> Some (Printf.sprintf "domain of role %s" p)
        | Syntax.Inverse p -> Some (Printf.sprintf "range of role %s" p))
      | Syntax.Concept_incl (Syntax.Atomic a, Syntax.C_basic (Syntax.Exists q))
        when a = name ->
        Some
          (Printf.sprintf "mandatory participation in %s%s" (Syntax.role_name q)
             (match q with Syntax.Direct _ -> "" | Syntax.Inverse _ -> " (as target)"))
      | Syntax.Concept_incl (Syntax.Atomic a, Syntax.C_exists_qual (q, b)) when a = name
        ->
        Some
          (Printf.sprintf "each instance has a %s-successor in %s"
             (Syntax.role_name q) b)
      | Syntax.Concept_incl (Syntax.Attr_domain u, Syntax.C_basic (Syntax.Atomic a))
        when a = name -> Some (Printf.sprintf "carrier of attribute %s" u)
      | _ -> None)
    (Tbox.axioms tbox)

let disjoint_with cls signature name =
  let d = Quonto.Deductive.of_classification cls in
  List.filter
    (fun b ->
      b <> name
      && Quonto.Deductive.entails_disjoint d
           (Syntax.E_concept (Syntax.Atomic name))
           (Syntax.E_concept (Syntax.Atomic b)))
    (Signature.concepts signature)

(** [generate ?annotations ?title tbox] builds the document model. *)
let generate ?(annotations = []) ?(title = "Ontology documentation") tbox =
  let cls = Quonto.Classify.classify tbox in
  let taxonomy = Quonto.Taxonomy.build cls Quonto.Taxonomy.Concepts in
  let signature = Tbox.signature tbox in
  let blocks = ref [] in
  let push b = blocks := b :: !blocks in
  (* overview *)
  push (Heading (1, title));
  push
    (Paragraph
       [
         Text
           (Printf.sprintf
              "%d axioms over %d concepts, %d roles and %d attributes; taxonomy \
               depth %d; %s."
              (Tbox.axiom_count tbox)
              (Signature.concept_count signature)
              (Signature.role_count signature)
              (Signature.attribute_count signature)
              (Quonto.Taxonomy.depth taxonomy)
              (if Quonto.Unsat.coherent (Quonto.Classify.unsat cls) then
                 "the ontology is coherent"
               else "WARNING: the ontology has unsatisfiable predicates"));
       ]);
  (* taxonomy tree *)
  push (Heading (2, "Concept taxonomy"));
  push (Preformatted (Format.asprintf "%a" Quonto.Taxonomy.pp taxonomy));
  (* per-concept sections *)
  push (Heading (2, "Concepts"));
  List.iter
    (fun name ->
      push (Heading (3, name));
      (match annotation annotations name with
       | Some text -> push (Paragraph [ Text text ])
       | None -> ());
      if List.mem name taxonomy.Quonto.Taxonomy.unsatisfiable then
        push
          (Paragraph
             [
               Text "WARNING: this concept is unsatisfiable — review the axioms \
                     involving it.";
             ]);
      let bullet_of_names label names =
        if names = [] then None
        else
          Some
            (Text (label ^ ": ")
             :: List.concat_map (fun n -> [ Link n; Text " " ]) names)
      in
      let bullets =
        List.filter_map Fun.id
          [
            bullet_of_names "direct superconcepts"
              (Quonto.Taxonomy.direct_supers taxonomy name);
            bullet_of_names "direct subconcepts"
              (Quonto.Taxonomy.direct_subs taxonomy name);
            bullet_of_names "equivalent to" (Quonto.Taxonomy.equivalents taxonomy name);
            bullet_of_names "disjoint with" (disjoint_with cls signature name);
          ]
        @ List.map (fun p -> [ Text p ]) (participations tbox name)
      in
      if bullets <> [] then push (Bullets bullets))
    (Signature.concepts signature);
  (* role glossary *)
  if Signature.roles signature <> [] then begin
    push (Heading (2, "Roles"));
    push
      (Bullets
         (List.map
            (fun p ->
              let domain =
                List.filter_map
                  (function
                    | Syntax.Concept_incl
                        (Syntax.Exists (Syntax.Direct p'), Syntax.C_basic (Syntax.Atomic a))
                      when p' = p -> Some a
                    | _ -> None)
                  (Tbox.axioms tbox)
              in
              let range =
                List.filter_map
                  (function
                    | Syntax.Concept_incl
                        (Syntax.Exists (Syntax.Inverse p'), Syntax.C_basic (Syntax.Atomic a))
                      when p' = p -> Some a
                    | _ -> None)
                  (Tbox.axioms tbox)
              in
              let describe label = function
                | [] -> label ^ " unconstrained"
                | xs -> label ^ " " ^ String.concat ", " xs
              in
              [
                Code p;
                Text
                  (Printf.sprintf " — %s; %s%s"
                     (describe "domain" domain) (describe "range" range)
                     (match annotation annotations p with
                      | Some text -> ". " ^ text
                      | None -> ""));
              ])
            (Signature.roles signature)))
  end;
  (* attribute glossary *)
  if Signature.attributes signature <> [] then begin
    push (Heading (2, "Attributes"));
    push
      (Bullets
         (List.map
            (fun u ->
              let carriers =
                List.filter_map
                  (function
                    | Syntax.Concept_incl
                        (Syntax.Attr_domain u', Syntax.C_basic (Syntax.Atomic a))
                      when u' = u -> Some a
                    | _ -> None)
                  (Tbox.axioms tbox)
              in
              [
                Code u;
                Text
                  (Printf.sprintf " — attribute of %s%s"
                     (match carriers with
                      | [] -> "(unconstrained)"
                      | xs -> String.concat ", " xs)
                     (match annotation annotations u with
                      | Some text -> ". " ^ text
                      | None -> ""));
              ])
            (Signature.attributes signature)))
  end;
  { title; blocks = List.rev !blocks }

(* ------------------------------------------------------------------ *)
(* Markdown back end                                                   *)
(* ------------------------------------------------------------------ *)

let anchor name =
  String.map
    (fun c -> if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then c else '-')
    (String.lowercase_ascii name)

let markdown_inline = function
  | Text s -> s
  | Code s -> "`" ^ s ^ "`"
  | Link s -> Printf.sprintf "[%s](#%s)" s (anchor s)

(** [to_markdown doc] renders the document as Markdown. *)
let to_markdown doc =
  let buf = Buffer.create 4096 in
  List.iter
    (fun block ->
      (match block with
       | Heading (level, text) ->
         Buffer.add_string buf (String.make level '#' ^ " " ^ text)
       | Paragraph inlines ->
         List.iter (fun i -> Buffer.add_string buf (markdown_inline i)) inlines
       | Bullets items ->
         List.iter
           (fun inlines ->
             Buffer.add_string buf "- ";
             List.iter (fun i -> Buffer.add_string buf (markdown_inline i)) inlines;
             Buffer.add_char buf '\n')
           items
       | Preformatted text ->
         Buffer.add_string buf "```\n";
         Buffer.add_string buf text;
         if text <> "" && text.[String.length text - 1] <> '\n' then
           Buffer.add_char buf '\n';
         Buffer.add_string buf "```");
      Buffer.add_string buf "\n\n")
    doc.blocks;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* HTML back end                                                       *)
(* ------------------------------------------------------------------ *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let html_inline = function
  | Text s -> html_escape s
  | Code s -> "<code>" ^ html_escape s ^ "</code>"
  | Link s -> Printf.sprintf "<a href=\"#%s\">%s</a>" (anchor s) (html_escape s)

(** [to_html doc] renders the document as a standalone HTML page. *)
let to_html doc =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title>\n\
        <style>body{font-family:sans-serif;max-width:60em;margin:2em auto}\n\
        pre{background:#f6f6f6;padding:1em;overflow-x:auto}\n\
        code{background:#f0f0f0}</style></head><body>\n"
       (html_escape doc.title));
  List.iter
    (fun block ->
      match block with
      | Heading (level, text) ->
        Buffer.add_string buf
          (Printf.sprintf "<h%d id=\"%s\">%s</h%d>\n" level (anchor text)
             (html_escape text) level)
      | Paragraph inlines ->
        Buffer.add_string buf "<p>";
        List.iter (fun i -> Buffer.add_string buf (html_inline i)) inlines;
        Buffer.add_string buf "</p>\n"
      | Bullets items ->
        Buffer.add_string buf "<ul>\n";
        List.iter
          (fun inlines ->
            Buffer.add_string buf "<li>";
            List.iter (fun i -> Buffer.add_string buf (html_inline i)) inlines;
            Buffer.add_string buf "</li>\n")
          items;
        Buffer.add_string buf "</ul>\n"
      | Preformatted text ->
        Buffer.add_string buf ("<pre>" ^ html_escape text ^ "</pre>\n"))
    doc.blocks;
  Buffer.add_string buf "</body></html>\n";
  Buffer.contents buf
