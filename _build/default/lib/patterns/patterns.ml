(** Ontology design patterns (Section 8: "aspects of domain modeling
    that commonly occur in different scenarios ... such as temporally
    changing information or part-whole relations, and ... patterns for
    effectively modeling them").

    Each pattern is a parameterized axiom bundle: instantiating it
    returns a TBox fragment ready to be [Tbox.union]ed into a design,
    plus the list of *intended consequences* — entailments the pattern
    promises, used both as executable documentation and as test
    fixtures (the test suite checks every instantiation entails its own
    promises). *)

open Dllite

type instance = {
  pattern : string;           (** pattern name *)
  tbox : Tbox.t;              (** the axioms to merge into the design *)
  intended : Syntax.axiom list;  (** consequences the pattern guarantees *)
}

let concept a = Syntax.Atomic a
let incl b c = Syntax.Concept_incl (b, Syntax.C_basic c)
let qual b q a = Syntax.Concept_incl (b, Syntax.C_exists_qual (q, a))
let disjoint b c = Syntax.Concept_incl (b, Syntax.C_neg c)

(* ------------------------------------------------------------------ *)
(* Part-whole                                                          *)
(* ------------------------------------------------------------------ *)

(** [part_whole ~part ~whole ?role ()] — the pattern behind Figure 2:
    every part is part of some whole, every whole has some part, and the
    part-of role is typed on both sides.

    Intended: the two qualified existentials of Figure 2, plus the
    domain/range typings. *)
let part_whole ~part ~whole ?(role = "isPartOf") () =
  let q = Syntax.Direct role in
  let axioms =
    [
      qual (concept part) q whole;
      qual (concept whole) (Syntax.role_inverse q) part;
      incl (Syntax.Exists q) (concept part);
      incl (Syntax.Exists (Syntax.role_inverse q)) (concept whole);
    ]
  in
  {
    pattern = "part-whole";
    tbox = Tbox.of_axioms axioms;
    intended =
      [
        qual (concept part) q whole;
        incl (concept part) (Syntax.Exists q);
        incl (concept whole) (Syntax.Exists (Syntax.role_inverse q));
      ];
  }

(* ------------------------------------------------------------------ *)
(* Temporal snapshots                                                  *)
(* ------------------------------------------------------------------ *)

(** [temporal_snapshot ~entity ?time ()] — "temporally changing
    information": the entity's mutable state is reified as a snapshot
    concept linked to the entity and carrying a validity-time
    attribute.  DL-Lite cannot quantify over time, so this is the
    standard reification encoding used in practice.

    Produces, for entity [E]: concepts [E] and [ESnapshot], role
    [hasSnapshot] typed [E] to [ESnapshot], mandatory participation of
    snapshots in their entity, and attributes [validFrom]/[validTo] on
    snapshots. *)
let temporal_snapshot ~entity ?(time_attr_prefix = "valid") () =
  let snapshot = entity ^ "Snapshot" in
  let role = "has" ^ snapshot in
  let q = Syntax.Direct role in
  let valid_from = time_attr_prefix ^ "From" in
  let valid_to = time_attr_prefix ^ "To" in
  let axioms =
    [
      incl (Syntax.Exists q) (concept entity);
      incl (Syntax.Exists (Syntax.role_inverse q)) (concept snapshot);
      (* every snapshot belongs to exactly-one... DL-Lite_R: at least one *)
      incl (concept snapshot) (Syntax.Exists (Syntax.role_inverse q));
      incl (concept snapshot) (Syntax.Attr_domain valid_from);
      incl (Syntax.Attr_domain valid_from) (concept snapshot);
      incl (Syntax.Attr_domain valid_to) (concept snapshot);
      disjoint (concept entity) (concept snapshot);
    ]
  in
  {
    pattern = "temporal-snapshot";
    tbox = Tbox.of_axioms axioms;
    intended =
      [
        incl (concept snapshot) (Syntax.Exists (Syntax.role_inverse q));
        qual (concept snapshot) (Syntax.role_inverse q) entity;
        disjoint (concept snapshot) (concept entity);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Role qualification (n-ary reification)                              *)
(* ------------------------------------------------------------------ *)

(** [qualified_relationship ~name ~source ~target ()] — reify a
    relationship that needs attributes of its own (the classic n-ary
    relation pattern): concept [Name], roles [nameSource]/[nameTarget]
    with mandatory participation from the reified concept, typed ends,
    and disjointness from the participants. *)
let qualified_relationship ~name ~source ~target () =
  let lower = String.uncapitalize_ascii name in
  let src_role = Syntax.Direct (lower ^ "Source") in
  let tgt_role = Syntax.Direct (lower ^ "Target") in
  let axioms =
    [
      incl (concept name) (Syntax.Exists src_role);
      incl (concept name) (Syntax.Exists tgt_role);
      incl (Syntax.Exists src_role) (concept name);
      incl (Syntax.Exists tgt_role) (concept name);
      incl (Syntax.Exists (Syntax.role_inverse src_role)) (concept source);
      incl (Syntax.Exists (Syntax.role_inverse tgt_role)) (concept target);
      disjoint (concept name) (concept source);
      disjoint (concept name) (concept target);
    ]
  in
  {
    pattern = "qualified-relationship";
    tbox = Tbox.of_axioms axioms;
    intended =
      [
        qual (concept name) src_role source;
        qual (concept name) tgt_role target;
        disjoint (concept name) (concept source);
      ];
  }

(* ------------------------------------------------------------------ *)
(* Partitioned hierarchy                                               *)
(* ------------------------------------------------------------------ *)

(** [partition ~parent ~cases ()] — a complete-looking disjoint
    specialization: every case is a subclass of [parent] and the cases
    are pairwise disjoint.  (DL-Lite cannot express covering, which is
    the documented loss; the pattern records it in the instance name.)

    Intended: all subclass axioms and all pairwise disjointness. *)
let partition ~parent ~cases () =
  let subclass = List.map (fun c -> incl (concept c) (concept parent)) cases in
  let rec pairs = function
    | [] -> []
    | c :: rest -> List.map (fun c' -> disjoint (concept c) (concept c')) rest @ pairs rest
  in
  let disjointness = pairs cases in
  {
    pattern = "partition (no covering: beyond DL-Lite)";
    tbox = Tbox.of_axioms (subclass @ disjointness);
    intended =
      subclass
      @ disjointness
      @ (* symmetry of disjointness comes for free *)
      (match cases with
       | c1 :: c2 :: _ -> [ disjoint (concept c2) (concept c1) ]
       | _ -> []);
  }

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

(** [verify instance] — do the pattern's axioms entail every intended
    consequence?  Returns the violated promises ([] = pattern holds). *)
let verify instance =
  let d = Quonto.Deductive.compute instance.tbox in
  List.filter (fun ax -> not (Quonto.Deductive.entails d ax)) instance.intended

(** [apply design instance] merges an instantiated pattern into a
    design-in-progress. *)
let apply design instance = Tbox.union design instance.tbox

(** [diagram instance] — the pattern rendered in the graphical
    language, ready for the documentation of Section 3's workflow. *)
let diagram instance = Graphical.Translate.of_tbox instance.tbox
