(** Digraph representation of a DL-Lite_R TBox (Definition 1 of the
    paper), extended uniformly to attributes.

    Nodes:
    - one node per atomic concept [A];
    - four nodes per atomic role [P]: [P], [P⁻], [∃P], [∃P⁻];
    - two nodes per attribute [U]: [U] and [δ(U)].

    Arcs, one group per *positive* inclusion:
    - [B1 ⊑ B2]        → arc [(B1, B2)];
    - [Q1 ⊑ Q2]        → arcs [(Q1, Q2)], [(Q1⁻, Q2⁻)], [(∃Q1, ∃Q2)],
                          [(∃Q1⁻, ∃Q2⁻)];
    - [B ⊑ ∃Q.A]       → arc [(B, ∃Q)] (the qualifier is kept aside in
                          [qualified_axioms] for [computeUnsat] and the
                          deductive closure);
    - [U1 ⊑ U2]        → arcs [(U1, U2)], [(δ(U1), δ(U2))].

    Negative inclusions contribute no arcs; they are collected in
    [negative_pairs] as node pairs for [computeUnsat]. *)

open Dllite

type t = {
  tbox : Tbox.t;
  graph : Graphlib.Graph.t;
  node_of_expr : (Syntax.expr, int) Hashtbl.t;
  expr_of_node : Syntax.expr array;
  negative_pairs : (int * int) list;
      (** [(n1, n2)] for every entailed-by-syntax disjointness
          [S1 ⊑ ¬S2], already expanded with the inverse-component pair
          for role disjointness *)
  qualified_axioms : (int * Syntax.role * string) list;
      (** [(node(B), Q, A)] for every axiom [B ⊑ ∃Q.A] *)
}

let node_count t = Array.length t.expr_of_node
let graph t = t.graph
let tbox t = t.tbox

(** [node t e] is the node id of expression [e].
    @raise Not_found if [e] is not over the TBox signature. *)
let node t e = Hashtbl.find t.node_of_expr e

let node_opt t e = Hashtbl.find_opt t.node_of_expr e

(** [expr t n] is the expression labelling node [n]. *)
let expr t n = t.expr_of_node.(n)

(** [concept_nodes t] lists the nodes of concept sort (atomic concepts,
    unqualified existentials, attribute domains). *)
let concept_nodes t =
  let acc = ref [] in
  Array.iteri
    (fun i e -> match e with Syntax.E_concept _ -> acc := i :: !acc | _ -> ())
    t.expr_of_node;
  List.rev !acc

let role_nodes t =
  let acc = ref [] in
  Array.iteri
    (fun i e -> match e with Syntax.E_role _ -> acc := i :: !acc | _ -> ())
    t.expr_of_node;
  List.rev !acc

let attr_nodes t =
  let acc = ref [] in
  Array.iteri
    (fun i e -> match e with Syntax.E_attr _ -> acc := i :: !acc | _ -> ())
    t.expr_of_node;
  List.rev !acc

(** [same_sort e1 e2] holds when an inclusion [e1 ⊑ e2] is well-sorted. *)
let same_sort e1 e2 =
  match e1, e2 with
  | Syntax.E_concept _, Syntax.E_concept _ -> true
  | Syntax.E_role _, Syntax.E_role _ -> true
  | Syntax.E_attr _, Syntax.E_attr _ -> true
  | (Syntax.E_concept _ | Syntax.E_role _ | Syntax.E_attr _), _ -> false

(** [build tbox] constructs the Definition-1 digraph representation. *)
let build tbox =
  let signature = Tbox.signature tbox in
  let node_of_expr = Hashtbl.create 256 in
  let exprs = ref [] in
  let next = ref 0 in
  let intern e =
    match Hashtbl.find_opt node_of_expr e with
    | Some id -> id
    | None ->
      let id = !next in
      incr next;
      Hashtbl.add node_of_expr e id;
      exprs := e :: !exprs;
      id
  in
  (* Allocate the signature-driven node set first (Definition 1, items
     1 and 2): ids are stable under axiom reordering. *)
  List.iter
    (fun a -> ignore (intern (Syntax.E_concept (Syntax.Atomic a))))
    (Signature.concepts signature);
  List.iter
    (fun p ->
      ignore (intern (Syntax.E_role (Syntax.Direct p)));
      ignore (intern (Syntax.E_role (Syntax.Inverse p)));
      ignore (intern (Syntax.E_concept (Syntax.Exists (Syntax.Direct p))));
      ignore (intern (Syntax.E_concept (Syntax.Exists (Syntax.Inverse p)))))
    (Signature.roles signature);
  List.iter
    (fun u ->
      ignore (intern (Syntax.E_attr u));
      ignore (intern (Syntax.E_concept (Syntax.Attr_domain u))))
    (Signature.attributes signature);
  let graph = Graphlib.Graph.create ~initial_nodes:!next () in
  let concept_node b = intern (Syntax.E_concept b) in
  let role_node q = intern (Syntax.E_role q) in
  let attr_node u = intern (Syntax.E_attr u) in
  let add u v =
    Graphlib.Graph.ensure_nodes graph (max u v + 1);
    Graphlib.Graph.add_edge graph u v
  in
  let negative_pairs = ref [] in
  let qualified_axioms = ref [] in
  List.iter
    (fun ax ->
      match ax with
      | Syntax.Concept_incl (b1, Syntax.C_basic b2) ->
        add (concept_node b1) (concept_node b2)
      | Syntax.Concept_incl (b1, Syntax.C_exists_qual (q, a)) ->
        let nb = concept_node b1 in
        add nb (concept_node (Syntax.Exists q));
        (* make sure the qualifier's node exists even if it is nowhere
           else in the TBox *)
        ignore (concept_node (Syntax.Atomic a));
        qualified_axioms := (nb, q, a) :: !qualified_axioms
      | Syntax.Concept_incl (b1, Syntax.C_neg b2) ->
        negative_pairs := (concept_node b1, concept_node b2) :: !negative_pairs
      | Syntax.Role_incl (q1, Syntax.R_role q2) ->
        add (role_node q1) (role_node q2);
        add (role_node (Syntax.role_inverse q1)) (role_node (Syntax.role_inverse q2));
        add (concept_node (Syntax.Exists q1)) (concept_node (Syntax.Exists q2));
        add
          (concept_node (Syntax.Exists (Syntax.role_inverse q1)))
          (concept_node (Syntax.Exists (Syntax.role_inverse q2)))
      | Syntax.Role_incl (q1, Syntax.R_neg q2) ->
        negative_pairs := (role_node q1, role_node q2) :: !negative_pairs;
        negative_pairs :=
          (role_node (Syntax.role_inverse q1), role_node (Syntax.role_inverse q2))
          :: !negative_pairs
      | Syntax.Attr_incl (u1, Syntax.A_attr u2) ->
        add (attr_node u1) (attr_node u2);
        add (concept_node (Syntax.Attr_domain u1)) (concept_node (Syntax.Attr_domain u2))
      | Syntax.Attr_incl (u1, Syntax.A_neg u2) ->
        negative_pairs := (attr_node u1, attr_node u2) :: !negative_pairs)
    (Tbox.axioms tbox);
  (* Interning above may have created nodes after graph creation. *)
  Graphlib.Graph.ensure_nodes graph !next;
  let expr_of_node = Array.of_list (List.rev !exprs) in
  {
    tbox;
    graph;
    node_of_expr;
    expr_of_node;
    negative_pairs = !negative_pairs;
    qualified_axioms = !qualified_axioms;
  }
