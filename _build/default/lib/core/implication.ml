(** On-demand logical implication: decide [T ⊨ α] *without* materializing
    the transitive closure (the second research direction of Section 5).

    Positive inclusions are answered by a graph search from the
    left-hand node; negative inclusions and unsatisfiability need the
    [computeUnsat] fixpoint, which is itself cheap, but the expensive
    closure matrix is never built.  Ablation [A3] compares this against
    the closure-based [Deductive.entails]. *)

open Dllite

type t = {
  encoding : Encoding.t;
  unsat : Unsat.t;
  reach : Graphlib.Closure.On_demand.t;
}

(** [prepare tbox] builds the digraph and the unsat fixpoint, but no
    closure. *)
let prepare tbox =
  let encoding = Encoding.build tbox in
  let unsat = Unsat.compute encoding in
  let reach = Graphlib.Closure.On_demand.create (Encoding.graph encoding) in
  { encoding; unsat; reach }

let is_unsat t e = Unsat.is_unsat t.unsat e

(** [subsumes t e1 e2] — [T ⊨ e1 ⊑ e2] by memoized reachability. *)
let subsumes t e1 e2 =
  Encoding.same_sort e1 e2
  &&
  match Encoding.node_opt t.encoding e1, Encoding.node_opt t.encoding e2 with
  | Some n1, Some n2 ->
    Graphlib.Closure.On_demand.reaches t.reach n1 n2 || Unsat.is_unsat_node t.unsat n1
  | Some n1, None -> Unsat.is_unsat_node t.unsat n1
  | None, Some _ | None, None -> Syntax.equal_expr e1 e2

(* See [Deductive.entails_disjoint] for the component rule on roles and
   attributes. *)
let rec entails_disjoint t e1 e2 =
  Encoding.same_sort e1 e2
  && (is_unsat t e1 || is_unsat t e2
      || List.exists
           (fun (n1', n2') ->
             let s1' = Encoding.expr t.encoding n1' in
             let s2' = Encoding.expr t.encoding n2' in
             (subsumes t e1 s1' && subsumes t e2 s2')
             || (subsumes t e1 s2' && subsumes t e2 s1'))
           t.encoding.Encoding.negative_pairs
      ||
      match e1, e2 with
      | Syntax.E_role q1, Syntax.E_role q2 ->
        entails_disjoint t
          (Syntax.E_concept (Syntax.Exists q1))
          (Syntax.E_concept (Syntax.Exists q2))
        || entails_disjoint t
             (Syntax.E_concept (Syntax.Exists (Syntax.role_inverse q1)))
             (Syntax.E_concept (Syntax.Exists (Syntax.role_inverse q2)))
      | Syntax.E_attr u1, Syntax.E_attr u2 ->
        entails_disjoint t
          (Syntax.E_concept (Syntax.Attr_domain u1))
          (Syntax.E_concept (Syntax.Attr_domain u2))
      | Syntax.E_concept _, _ | _, Syntax.E_concept _
      | Syntax.E_role _, _ | Syntax.E_attr _, _ -> false)

let entails_qualified t b q a =
  let c_b = Syntax.E_concept b in
  let c_a = Syntax.E_concept (Syntax.Atomic a) in
  is_unsat t c_b
  || List.exists
       (fun (nb', q', a') ->
         subsumes t c_b (Encoding.expr t.encoding nb')
         && subsumes t (Syntax.E_role q') (Syntax.E_role q)
         && subsumes t (Syntax.E_concept (Syntax.Atomic a')) c_a)
       t.encoding.Encoding.qualified_axioms
  ||
  let signature = Tbox.signature (Encoding.tbox t.encoding) in
  List.exists
    (fun p ->
      List.exists
        (fun q' ->
          subsumes t c_b (Syntax.E_concept (Syntax.Exists q'))
          && subsumes t (Syntax.E_role q') (Syntax.E_role q)
          && subsumes t (Syntax.E_concept (Syntax.Exists (Syntax.role_inverse q'))) c_a)
        [ Syntax.Direct p; Syntax.Inverse p ])
    (Signature.roles signature)

(** [entails t ax] decides [T ⊨ ax] lazily. *)
let entails t = function
  | Syntax.Concept_incl (b, Syntax.C_basic b') ->
    subsumes t (Syntax.E_concept b) (Syntax.E_concept b')
  | Syntax.Concept_incl (b, Syntax.C_neg b') ->
    entails_disjoint t (Syntax.E_concept b) (Syntax.E_concept b')
  | Syntax.Concept_incl (b, Syntax.C_exists_qual (q, a)) -> entails_qualified t b q a
  | Syntax.Role_incl (q, Syntax.R_role q') ->
    subsumes t (Syntax.E_role q) (Syntax.E_role q')
  | Syntax.Role_incl (q, Syntax.R_neg q') ->
    entails_disjoint t (Syntax.E_role q) (Syntax.E_role q')
  | Syntax.Attr_incl (u, Syntax.A_attr u') ->
    subsumes t (Syntax.E_attr u) (Syntax.E_attr u')
  | Syntax.Attr_incl (u, Syntax.A_neg u') ->
    entails_disjoint t (Syntax.E_attr u) (Syntax.E_attr u')
