(** The [computeUnsat] algorithm (Section 5 of the paper): compute the
    set of unsatisfiable basic concepts, basic roles and attributes of a
    DL-Lite_R TBox from its digraph representation.

    Seeds — for every syntactic disjointness [S1 ⊑ ¬S2], every node in
    [predecessors(S1, G) ∩ predecessors(S2, G)] (reflexively: [T ⊨ S ⊑ S])
    is unsatisfiable.

    The seeds are then propagated to a fixpoint under the rules the paper
    leaves to the refinement step:
    - if [S] is unsatisfiable, every predecessor of [S] is;
    - the four nodes of a role stand or fall together:
      [P], [P⁻], [∃P], [∃P⁻] are equi-satisfiable;
    - an attribute [U] and its domain [δ(U)] are equi-satisfiable;
    - for an axiom [B ⊑ ∃Q.A]: if [A] is unsatisfiable then so is [B]
      (the [Q]-unsatisfiable case follows from the [(B, ∃Q)] arc and the
      component rule);
    - for an axiom [B ⊑ ∃Q.A]: the created witness carries *both* type
      sources [A] and [∃Q⁻]; if some disjointness [S1 ⊑ ¬S2] has [S1]
      reachable from one source and [S2] from the other, the witness is
      contradictory and [B] is unsatisfiable even though [A] and [∃Q⁻]
      may each be satisfiable alone (e.g. [∃p⁻ ⊑ ¬C, ∃p⁻ ⊑ ∃p.C]). *)

open Dllite

type t = {
  encoding : Encoding.t;
  flags : bool array;  (* flags.(n) <=> node n is unsatisfiable *)
}

(** [compute enc] runs [computeUnsat] on a built encoding. *)
let compute (enc : Encoding.t) =
  let g = Encoding.graph enc in
  let n = Encoding.node_count enc in
  let flags = Array.make n false in
  let queue = Queue.create () in
  let mark v =
    if not flags.(v) then begin
      flags.(v) <- true;
      Queue.add v queue
    end
  in
  (* Seeds: reflexive-ancestor intersections of each disjointness. *)
  List.iter
    (fun (n1, n2) ->
      let a1 = Graphlib.Graph.ancestors g n1 in
      let a2 = Graphlib.Graph.ancestors g n2 in
      Graphlib.Bitvec.iter_set (Graphlib.Bitvec.inter ~a:a1 ~b:a2) mark)
    enc.Encoding.negative_pairs;
  (* Witness-inconsistency rule: for each axiom B ⊑ ∃Q.A, check whether
     the type sources A and ∃Q⁻ of the created witness cross a
     disjointness.  The descendant sets are static (they live in the
     fixed positive graph), so this check runs once; if one of the
     sources *becomes* unsatisfiable later, the predecessor and
     qualifier rules below catch B anyway. *)
  List.iter
    (fun (nb, q, a) ->
      let na = Encoding.node enc (Syntax.E_concept (Syntax.Atomic a)) in
      let nrange =
        Encoding.node enc (Syntax.E_concept (Syntax.Exists (Syntax.role_inverse q)))
      in
      let da = Graphlib.Graph.reachable_from g na in
      let dr = Graphlib.Graph.reachable_from g nrange in
      let crosses (n1, n2) =
        (Graphlib.Bitvec.get da n1 && Graphlib.Bitvec.get dr n2)
        || (Graphlib.Bitvec.get dr n1 && Graphlib.Bitvec.get da n2)
      in
      if List.exists crosses enc.Encoding.negative_pairs then mark nb)
    enc.Encoding.qualified_axioms;
  (* Index qualified axioms by qualifier name for the fourth rule. *)
  let by_qualifier = Hashtbl.create 16 in
  List.iter
    (fun (nb, _q, a) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_qualifier a) in
      Hashtbl.replace by_qualifier a (nb :: prev))
    enc.Encoding.qualified_axioms;
  (* Propagate to fixpoint. *)
  let partners v =
    match Encoding.expr enc v with
    | Syntax.E_role q ->
      let p = Syntax.role_name q in
      [
        Encoding.node enc (Syntax.E_role (Syntax.Direct p));
        Encoding.node enc (Syntax.E_role (Syntax.Inverse p));
        Encoding.node enc (Syntax.E_concept (Syntax.Exists (Syntax.Direct p)));
        Encoding.node enc (Syntax.E_concept (Syntax.Exists (Syntax.Inverse p)));
      ]
    | Syntax.E_concept (Syntax.Exists q) ->
      [ Encoding.node enc (Syntax.E_role q) ]
    | Syntax.E_concept (Syntax.Attr_domain u) -> [ Encoding.node enc (Syntax.E_attr u) ]
    | Syntax.E_attr u ->
      [ Encoding.node enc (Syntax.E_concept (Syntax.Attr_domain u)) ]
    | Syntax.E_concept (Syntax.Atomic _) -> []
  in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter mark (Graphlib.Graph.predecessors g v);
    List.iter mark (partners v);
    (match Encoding.expr enc v with
     | Syntax.E_concept (Syntax.Atomic a) ->
       List.iter mark (Option.value ~default:[] (Hashtbl.find_opt by_qualifier a))
     | Syntax.E_concept (Syntax.Exists _ | Syntax.Attr_domain _)
     | Syntax.E_role _ | Syntax.E_attr _ -> ())
  done;
  { encoding = enc; flags }

(** [is_unsat_node t v] tests node [v]. *)
let is_unsat_node t v = t.flags.(v)

(** [is_unsat t e] tests an expression; expressions outside the TBox
    signature are trivially satisfiable. *)
let is_unsat t e =
  match Encoding.node_opt t.encoding e with
  | Some v -> t.flags.(v)
  | None -> false

(** [unsat_exprs t] lists all unsatisfiable expressions. *)
let unsat_exprs t =
  let acc = ref [] in
  Array.iteri
    (fun v b -> if b then acc := Encoding.expr t.encoding v :: !acc)
    t.flags;
  List.rev !acc

(** [count t] is the number of unsatisfiable nodes. *)
let count t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.flags

(** [tbox_satisfiable t] — a DL-Lite TBox alone is always satisfiable
    (the empty model), but it is *coherent* iff no named predicate is
    unsatisfiable; this is the design-quality check of Section 5. *)
let coherent t = count t = 0
