lib/core/unsat.ml: Array Dllite Encoding Graphlib Hashtbl List Option Queue Syntax
