lib/core/implication.ml: Dllite Encoding Graphlib List Signature Syntax Tbox Unsat
