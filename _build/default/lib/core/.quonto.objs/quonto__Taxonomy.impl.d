lib/core/taxonomy.ml: Array Classify Dllite Format Graphlib Hashtbl List Signature String Syntax Tbox
