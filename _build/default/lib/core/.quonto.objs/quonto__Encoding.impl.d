lib/core/encoding.ml: Array Dllite Graphlib Hashtbl List Signature Syntax Tbox
