lib/core/classify.ml: Array Dllite Encoding Format Graphlib Hashtbl List Logs Option Signature Stdlib Syntax Tbox Unsat
