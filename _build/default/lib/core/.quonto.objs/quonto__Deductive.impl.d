lib/core/deductive.ml: Classify Dllite Encoding List Signature Syntax Tbox
