(** Full deductive closure of a DL-Lite_R TBox (the extension sketched at
    the end of Section 5): beyond [Phi_T ∪ Omega_T], also derive

    - all entailed *negative* inclusions, and
    - all entailed inclusions with a *qualified existential* right-hand
      side ([B ⊑ ∃Q.A]).

    Entailment conditions (justified by the canonical-model construction
    of DL-Lite; cross-checked against the tableau oracle in the tests):

    [T ⊨ S1 ⊑ ¬S2] iff
      (i)   some disjointness [S1' ⊑ ¬S2'] (or its symmetric variant) has
            [T ⊨ S1 ⊑ S1'] and [T ⊨ S2 ⊑ S2'], or
      (ii)  [S1] or [S2] is unsatisfiable.

    [T ⊨ B ⊑ ∃Q.A] iff
      (i)   [B] is unsatisfiable, or
      (ii)  some axiom [B' ⊑ ∃Q'.A'] has [T ⊨ B ⊑ B'], [T ⊨ Q' ⊑ Q] and
            [T ⊨ A' ⊑ A]  (the created witness is typed [A']), or
      (iii) some basic role [Q'] has [T ⊨ B ⊑ ∃Q'], [T ⊨ Q' ⊑ Q] and
            [T ⊨ ∃Q'⁻ ⊑ A]  (every [Q']-successor is typed [∃Q'⁻]). *)

open Dllite

type t = { classification : Classify.t }

let of_classification classification = { classification }

(** [compute tbox] classifies and wraps. *)
let compute tbox = { classification = Classify.classify tbox }

let classification t = t.classification

let subsumes t = Classify.subsumes t.classification

(** [entails_disjoint t e1 e2] decides [T ⊨ e1 ⊑ ¬e2].  Besides matching
    a declared disjointness up to subsumption, role (resp. attribute)
    disjointness also follows from disjointness of the [∃Q] (resp.
    [δ(U)]) components: a pair in [Q1 ∩ Q2] would put its first
    component in [∃Q1 ⊓ ∃Q2] and its second in [∃Q1⁻ ⊓ ∃Q2⁻]. *)
let rec entails_disjoint t e1 e2 =
  Encoding.same_sort e1 e2
  && (Classify.is_unsat t.classification e1
      || Classify.is_unsat t.classification e2
      || (let enc = Classify.encoding t.classification in
          let covered n1' n2' =
            (* original disjointness S1' ⊑ ¬S2' as node pair (n1', n2') *)
            let s1' = Encoding.expr enc n1' and s2' = Encoding.expr enc n2' in
            (subsumes t e1 s1' && subsumes t e2 s2')
            || (subsumes t e1 s2' && subsumes t e2 s1')
          in
          List.exists (fun (n1', n2') -> covered n1' n2') enc.Encoding.negative_pairs)
      ||
      match e1, e2 with
      | Syntax.E_role q1, Syntax.E_role q2 ->
        entails_disjoint t
          (Syntax.E_concept (Syntax.Exists q1))
          (Syntax.E_concept (Syntax.Exists q2))
        || entails_disjoint t
             (Syntax.E_concept (Syntax.Exists (Syntax.role_inverse q1)))
             (Syntax.E_concept (Syntax.Exists (Syntax.role_inverse q2)))
      | Syntax.E_attr u1, Syntax.E_attr u2 ->
        entails_disjoint t
          (Syntax.E_concept (Syntax.Attr_domain u1))
          (Syntax.E_concept (Syntax.Attr_domain u2))
      | Syntax.E_concept _, _ | _, Syntax.E_concept _
      | Syntax.E_role _, _ | Syntax.E_attr _, _ -> false)

(** [entails_qualified t b q a] decides [T ⊨ B ⊑ ∃Q.A]. *)
let entails_qualified t b q a =
  let cls = t.classification in
  let enc = Classify.encoding cls in
  let c_b = Syntax.E_concept b in
  let c_a = Syntax.E_concept (Syntax.Atomic a) in
  Classify.is_unsat cls c_b
  || List.exists
       (fun (nb', q', a') ->
         let b' = Encoding.expr enc nb' in
         subsumes t c_b b'
         && subsumes t (Syntax.E_role q') (Syntax.E_role q)
         && subsumes t (Syntax.E_concept (Syntax.Atomic a')) c_a)
       enc.Encoding.qualified_axioms
  ||
  let signature = Tbox.signature (Classify.tbox cls) in
  let role_candidates =
    List.concat_map
      (fun p -> [ Syntax.Direct p; Syntax.Inverse p ])
      (Signature.roles signature)
  in
  List.exists
    (fun q' ->
      subsumes t c_b (Syntax.E_concept (Syntax.Exists q'))
      && subsumes t (Syntax.E_role q') (Syntax.E_role q)
      && subsumes t (Syntax.E_concept (Syntax.Exists (Syntax.role_inverse q'))) c_a)
    role_candidates

(** [entails t ax] decides [T ⊨ ax] for an arbitrary DL-Lite_R axiom —
    the *logical implication* service of Section 5, closure-based
    variant. *)
let entails t = function
  | Syntax.Concept_incl (b, Syntax.C_basic b') ->
    subsumes t (Syntax.E_concept b) (Syntax.E_concept b')
  | Syntax.Concept_incl (b, Syntax.C_neg b') ->
    entails_disjoint t (Syntax.E_concept b) (Syntax.E_concept b')
  | Syntax.Concept_incl (b, Syntax.C_exists_qual (q, a)) -> entails_qualified t b q a
  | Syntax.Role_incl (q, Syntax.R_role q') ->
    subsumes t (Syntax.E_role q) (Syntax.E_role q')
  | Syntax.Role_incl (q, Syntax.R_neg q') ->
    entails_disjoint t (Syntax.E_role q) (Syntax.E_role q')
  | Syntax.Attr_incl (u, Syntax.A_attr u') ->
    subsumes t (Syntax.E_attr u) (Syntax.E_attr u')
  | Syntax.Attr_incl (u, Syntax.A_neg u') ->
    entails_disjoint t (Syntax.E_attr u) (Syntax.E_attr u')

(** [closure_axioms t] materializes the finite deductive closure over the
    TBox signature: every entailed positive basic inclusion, negative
    inclusion and qualified-existential inclusion, reflexive inclusions
    omitted.  Exponential neither in theory nor practice (the closure of
    a DL-Lite TBox is polynomial in the signature), but still quadratic:
    meant for inspection and tests, not for FMA-sized inputs. *)
let closure_axioms t =
  let cls = t.classification in
  let signature = Tbox.signature (Classify.tbox cls) in
  let concepts =
    List.map (fun a -> Syntax.Atomic a) (Signature.concepts signature)
    @ List.concat_map
        (fun p ->
          [ Syntax.Exists (Syntax.Direct p); Syntax.Exists (Syntax.Inverse p) ])
        (Signature.roles signature)
    @ List.map (fun u -> Syntax.Attr_domain u) (Signature.attributes signature)
  in
  let roles =
    List.concat_map
      (fun p -> [ Syntax.Direct p; Syntax.Inverse p ])
      (Signature.roles signature)
  in
  let attrs = Signature.attributes signature in
  let acc = ref [] in
  let push ax = acc := ax :: !acc in
  (* concept-to-concept, concept-to-negated-concept *)
  List.iter
    (fun b1 ->
      List.iter
        (fun b2 ->
          if not (Syntax.equal_basic b1 b2) then begin
            if subsumes t (Syntax.E_concept b1) (Syntax.E_concept b2) then
              push (Syntax.Concept_incl (b1, Syntax.C_basic b2))
          end;
          if entails_disjoint t (Syntax.E_concept b1) (Syntax.E_concept b2) then
            push (Syntax.Concept_incl (b1, Syntax.C_neg b2)))
        concepts)
    concepts;
  (* qualified existentials: B ⊑ ∃Q.A with A atomic *)
  List.iter
    (fun b ->
      List.iter
        (fun q ->
          List.iter
            (fun a ->
              if entails_qualified t b q a then
                push (Syntax.Concept_incl (b, Syntax.C_exists_qual (q, a))))
            (Signature.concepts signature))
        roles)
    concepts;
  (* roles *)
  List.iter
    (fun q1 ->
      List.iter
        (fun q2 ->
          if not (Syntax.equal_role q1 q2) then begin
            if subsumes t (Syntax.E_role q1) (Syntax.E_role q2) then
              push (Syntax.Role_incl (q1, Syntax.R_role q2))
          end;
          if entails_disjoint t (Syntax.E_role q1) (Syntax.E_role q2) then
            push (Syntax.Role_incl (q1, Syntax.R_neg q2)))
        roles)
    roles;
  (* attributes *)
  List.iter
    (fun u1 ->
      List.iter
        (fun u2 ->
          if u1 <> u2 && subsumes t (Syntax.E_attr u1) (Syntax.E_attr u2) then
            push (Syntax.Attr_incl (u1, Syntax.A_attr u2));
          if entails_disjoint t (Syntax.E_attr u1) (Syntax.E_attr u2) then
            push (Syntax.Attr_incl (u1, Syntax.A_neg u2)))
        attrs)
    attrs;
  List.sort_uniq Syntax.compare_axiom !acc
