(** Taxonomies: classification output shaped for consumption — direct
    ("told-or-inferred minimal") subsumers only, equivalence classes
    collapsed, unsatisfiable predicates quarantined.

    This is the structure ontology navigation, the documentation
    generator and the diagram renderer want, and it is how real
    reasoners report classification (a Hasse diagram, not all pairs). *)

open Dllite

(** One taxonomy node: an equivalence class of names. *)
type node = {
  members : string list;       (** mutually equivalent names, sorted *)
  parents : int list;          (** indices of direct super-nodes *)
  children : int list;         (** indices of direct sub-nodes *)
}

type t = {
  nodes : node array;
  index : (string, int) Hashtbl.t;  (** name -> node id *)
  unsatisfiable : string list;      (** names equivalent to ⊥, kept apart *)
}

(** Which sort of names to build the taxonomy over. *)
type sort =
  | Concepts
  | Roles
  | Attributes

let names_of_sort signature = function
  | Concepts -> Signature.concepts signature
  | Roles -> Signature.roles signature
  | Attributes -> Signature.attributes signature

let expr_of_sort sort name =
  match sort with
  | Concepts -> Syntax.E_concept (Syntax.Atomic name)
  | Roles -> Syntax.E_role (Syntax.Direct name)
  | Attributes -> Syntax.E_attr name

(** [build cls sort] — the taxonomy of the given name sort from a
    classification. *)
let build cls sort =
  let signature = Tbox.signature (Classify.tbox cls) in
  let names = names_of_sort signature sort in
  let unsatisfiable, live =
    List.partition (fun a -> Classify.is_unsat cls (expr_of_sort sort a)) names
  in
  let live = Array.of_list live in
  let n = Array.length live in
  (* subsumption graph over satisfiable names *)
  let g = Graphlib.Graph.create ~initial_nodes:n () in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j
         && Classify.subsumes cls (expr_of_sort sort live.(i)) (expr_of_sort sort live.(j))
      then Graphlib.Graph.add_edge g i j
    done
  done;
  let scc, direct_edges = Graphlib.Reduction.reduce g in
  let node_count = scc.Graphlib.Scc.count in
  let members =
    Array.map
      (fun ms -> List.sort compare (List.map (fun i -> live.(i)) ms))
      scc.Graphlib.Scc.members
  in
  let parents = Array.make node_count [] in
  let children = Array.make node_count [] in
  List.iter
    (fun (c_sub, c_super) ->
      parents.(c_sub) <- c_super :: parents.(c_sub);
      children.(c_super) <- c_sub :: children.(c_super))
    direct_edges;
  let nodes =
    Array.init node_count (fun c ->
        {
          members = members.(c);
          parents = List.sort compare parents.(c);
          children = List.sort compare children.(c);
        })
  in
  let index = Hashtbl.create 64 in
  Array.iteri
    (fun c node -> List.iter (fun name -> Hashtbl.replace index name c) node.members)
    nodes;
  { nodes; index; unsatisfiable = List.sort compare unsatisfiable }

let node_count t = Array.length t.nodes
let node t c = t.nodes.(c)

(** [find t name] is the node id of [name], if satisfiable and known. *)
let find t name = Hashtbl.find_opt t.index name

(** [roots t] — nodes with no parents (the most general classes). *)
let roots t =
  let acc = ref [] in
  Array.iteri (fun c node -> if node.parents = [] then acc := c :: !acc) t.nodes;
  List.rev !acc

(** [leaves t] — nodes with no children. *)
let leaves t =
  let acc = ref [] in
  Array.iteri (fun c node -> if node.children = [] then acc := c :: !acc) t.nodes;
  List.rev !acc

(** [direct_supers t name] — the names of the direct super-classes
    ([[]] for unknown or unsatisfiable names). *)
let direct_supers t name =
  match find t name with
  | None -> []
  | Some c ->
    List.concat_map (fun p -> t.nodes.(p).members) t.nodes.(c).parents
    |> List.sort compare

(** [direct_subs t name] — the names of the direct sub-classes. *)
let direct_subs t name =
  match find t name with
  | None -> []
  | Some c ->
    List.concat_map (fun ch -> t.nodes.(ch).members) t.nodes.(c).children
    |> List.sort compare

(** [equivalents t name] — the other members of [name]'s class. *)
let equivalents t name =
  match find t name with
  | None -> []
  | Some c -> List.filter (fun m -> m <> name) t.nodes.(c).members

(** [depth t] — length of the longest root-to-leaf chain (0 for an
    empty taxonomy). *)
let depth t =
  let n = node_count t in
  let memo = Array.make n (-1) in
  let rec go c =
    if memo.(c) >= 0 then memo.(c)
    else begin
      let d =
        match t.nodes.(c).children with
        | [] -> 1
        | cs -> 1 + List.fold_left (fun m ch -> max m (go ch)) 0 cs
      in
      memo.(c) <- d;
      d
    end
  in
  List.fold_left (fun m r -> max m (go r)) 0 (roots t)

(** [pp fmt t] — indented tree rendering (nodes under their first
    parent only, so shared subtrees print once). *)
let pp fmt t =
  let printed = Hashtbl.create 16 in
  let rec go indent c =
    let node = t.nodes.(c) in
    Format.fprintf fmt "%s%s@." indent (String.concat " = " node.members);
    if not (Hashtbl.mem printed c) then begin
      Hashtbl.replace printed c ();
      List.iter (go (indent ^ "  ")) node.children
    end
  in
  List.iter (go "") (roots t);
  if t.unsatisfiable <> [] then
    Format.fprintf fmt "unsatisfiable: %s@." (String.concat ", " t.unsatisfiable)
