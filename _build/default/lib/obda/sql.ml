(** SQL generation: the last step of the OBDA chain — "query answering
    for unions of conjunctive queries can be reduced to the evaluation
    of a first-order query (directly translatable into SQL) over a
    database" (Section 7).

    A database-level UCQ (the output of rewriting + unfolding) is
    compiled into a [statement] AST — SELECT-(DISTINCT)-FROM-WHERE
    blocks joined by UNION — which can be pretty-printed as portable SQL
    text or evaluated directly against the in-memory [Database] (the
    evaluator keeps the generator honest: tests check it agrees with
    [Cq.evaluate_ucq]).

    Relations are positional, so columns are named [c0, c1, ...]. *)

type column = {
  alias : string;   (** table alias, [t0], [t1], ... *)
  index : int;      (** 0-based column position *)
}

type condition =
  | Eq_columns of column * column
  | Eq_const of column * string

type select = {
  projections : column list;     (** one per answer variable, in order *)
  froms : (string * string) list;  (** (relation, alias) *)
  where : condition list;
}

(** A UCQ compiles to a union of selects; the empty union is the
    canonical "no answers" statement. *)
type statement = Union of select list

exception Unsupported of string

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(** [of_cq q] compiles one conjunctive query.
    @raise Unsupported if an answer variable has no binding occurrence
    (cannot happen for [Cq.make]-validated queries). *)
let of_cq (q : Cq.t) =
  let froms =
    List.mapi (fun i atom -> (atom.Cq.pred, Printf.sprintf "t%d" i)) q.Cq.body
  in
  (* first binding occurrence of each variable *)
  let binding = Hashtbl.create 16 in
  let where = ref [] in
  List.iteri
    (fun i atom ->
      let alias = Printf.sprintf "t%d" i in
      List.iteri
        (fun j term ->
          let col = { alias; index = j } in
          match term with
          | Cq.Const c -> where := Eq_const (col, c) :: !where
          | Cq.Var v -> (
            match Hashtbl.find_opt binding v with
            | None -> Hashtbl.replace binding v col
            | Some first -> where := Eq_columns (first, col) :: !where))
        atom.Cq.args)
    q.Cq.body;
  let projections =
    List.map
      (fun v ->
        match Hashtbl.find_opt binding v with
        | Some col -> col
        | None -> raise (Unsupported ("unbound answer variable " ^ v)))
      q.Cq.answer_vars
  in
  { projections; froms; where = List.rev !where }

(** [of_ucq ucq] compiles a union query; all disjuncts must share the
    answer arity (guaranteed by the rewriting pipeline). *)
let of_ucq (ucq : Cq.ucq) = Union (List.map of_cq ucq)

(* ------------------------------------------------------------------ *)
(* Pretty-printing                                                     *)
(* ------------------------------------------------------------------ *)

let column_to_string c = Printf.sprintf "%s.c%d" c.alias c.index

let escape_literal s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      if ch = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf ch)
    s;
  Buffer.contents buf

let condition_to_string = function
  | Eq_columns (a, b) ->
    Printf.sprintf "%s = %s" (column_to_string a) (column_to_string b)
  | Eq_const (a, v) -> Printf.sprintf "%s = '%s'" (column_to_string a) (escape_literal v)

let select_to_string s =
  let projections =
    match s.projections with
    | [] -> "1"  (* boolean query: any constant row *)
    | cols -> String.concat ", " (List.map column_to_string cols)
  in
  let froms =
    String.concat ", " (List.map (fun (rel, alias) -> rel ^ " " ^ alias) s.froms)
  in
  let base = Printf.sprintf "SELECT DISTINCT %s FROM %s" projections froms in
  match s.where with
  | [] -> base
  | conds -> base ^ " WHERE " ^ String.concat " AND " (List.map condition_to_string conds)

(** [to_string stmt] renders the statement as SQL text. *)
let to_string (Union selects) =
  match selects with
  | [] -> "SELECT 1 WHERE 1 = 0"  (* empty union: no rows *)
  | _ -> String.concat "\nUNION\n" (List.map select_to_string selects)

(* ------------------------------------------------------------------ *)
(* Direct evaluation                                                   *)
(* ------------------------------------------------------------------ *)

(* Evaluate one select block by nested loops over its FROM relations. *)
let eval_select db s =
  let relations = List.map (fun (rel, _) -> Database.rows db rel) s.froms in
  let aliases = List.map snd s.froms in
  let results = Hashtbl.create 16 in
  (* env: alias -> row *)
  let rec loop env rels als =
    match rels, als with
    | [], [] ->
      let value col = List.nth (List.assoc col.alias env) col.index in
      let ok =
        List.for_all
          (function
            | Eq_columns (a, b) -> value a = value b
            | Eq_const (a, v) -> value a = v)
          s.where
      in
      if ok then Hashtbl.replace results (List.map value s.projections) ()
    | rows :: rels', alias :: als' ->
      List.iter (fun row -> loop ((alias, row) :: env) rels' als') rows
    | _ -> assert false
  in
  loop [] relations aliases;
  Hashtbl.fold (fun row () acc -> row :: acc) results []

(** [eval db stmt] evaluates the statement against the store;
    duplicates across union branches are removed (UNION semantics). *)
let eval db (Union selects) =
  let results = Hashtbl.create 16 in
  List.iter
    (fun s -> List.iter (fun row -> Hashtbl.replace results row ()) (eval_select db s))
    selects;
  Hashtbl.fold (fun row () acc -> row :: acc) results []
