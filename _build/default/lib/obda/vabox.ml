(** The ontology-level fact view: atoms over concept, role and attribute
    predicates.

    Ontology predicates share one namespace with query atoms via a
    sort-tagged naming convention ([c$A], [r$P], [a$U]) so that a
    concept and a role with the same name cannot collide inside the
    generic CQ machinery. *)

open Dllite

let concept_pred a = "c$" ^ a
let role_pred p = "r$" ^ p
let attr_pred u = "a$" ^ u

(** [pred_of_expr e] is the evaluation-level predicate name of a named
    DL-Lite predicate. *)
let pred_of_expr = function
  | Syntax.E_concept (Syntax.Atomic a) -> concept_pred a
  | Syntax.E_role (Syntax.Direct p) | Syntax.E_role (Syntax.Inverse p) -> role_pred p
  | Syntax.E_attr u -> attr_pred u
  | Syntax.E_concept (Syntax.Exists _ | Syntax.Attr_domain _) ->
    invalid_arg "Vabox.pred_of_expr: only named predicates have facts"

(** [atom_of_basic b t] is the query atom asserting [t ∈ B], introducing
    [fresh] for the existentially quantified position of [∃Q] and
    [δ(U)]. *)
let atom_of_basic b t ~fresh =
  match b with
  | Syntax.Atomic a -> Cq.atom (concept_pred a) [ t ]
  | Syntax.Exists (Syntax.Direct p) -> Cq.atom (role_pred p) [ t; fresh ]
  | Syntax.Exists (Syntax.Inverse p) -> Cq.atom (role_pred p) [ fresh; t ]
  | Syntax.Attr_domain u -> Cq.atom (attr_pred u) [ t; fresh ]

(** [facts_of_abox abox] turns a materialized ABox into a fact source
    for [Cq.evaluate]. *)
let facts_of_abox abox =
  let table = Hashtbl.create 64 in
  let add pred row =
    let prev = Option.value ~default:[] (Hashtbl.find_opt table pred) in
    Hashtbl.replace table pred (row :: prev)
  in
  List.iter
    (function
      | Abox.Concept_assert (a, c) -> add (concept_pred a) [ c ]
      | Abox.Role_assert (p, c1, c2) -> add (role_pred p) [ c1; c2 ]
      | Abox.Attr_assert (u, c, v) -> add (attr_pred u) [ c; v ])
    (Abox.assertions abox);
  fun pred -> Option.value ~default:[] (Hashtbl.find_opt table pred)

(** [abox_of_facts facts preds] — inverse direction, used by mapping
    materialization: collect the extension of the given named predicates
    into an ABox. *)
let abox_of_facts facts exprs =
  List.fold_left
    (fun abox e ->
      let pred = pred_of_expr e in
      List.fold_left
        (fun abox row ->
          match e, row with
          | Syntax.E_concept (Syntax.Atomic a), [ c ] ->
            Abox.add (Abox.Concept_assert (a, c)) abox
          | Syntax.E_role (Syntax.Direct p), [ c1; c2 ] ->
            Abox.add (Abox.Role_assert (p, c1, c2)) abox
          | Syntax.E_attr u, [ c; v ] -> Abox.add (Abox.Attr_assert (u, c, v)) abox
          | _ -> abox)
        abox (facts pred))
    Abox.empty exprs
